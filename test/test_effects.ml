(* The static effect-and-monitorability layer (AN010–AN015): write
   effects per trigger, monitorability labels under an explicit observer
   visibility, subscription maps with shard-closure verdicts — and the
   two claims that make them trustworthy: the 10k-case dynamic oracle
   (an event outside a contract's map never changes its verdict) and
   byte-stable golden dumps (drift in the maps fails the build). *)

module BM = Cm_uml.Behavior_model
module Footprint = Cm_ocl.Footprint
module Effects = Cm_analysis.Effects
module Monitorability = Cm_analysis.Monitorability
module Interference = Cm_analysis.Interference
module Crosscheck = Cm_analysis.Crosscheck
module Rules = Cm_analysis.Rules
module Defects = Cm_analysis.Defects
module Lint = Cm_lint.Lint
module Json = Cm_json.Json

let ocl = Cm_ocl.Ocl_parser.parse_exn

let sec table =
  Some
    { Cm_contracts.Generate.table;
      assignment = Cm_rbac.Security_table.cinder_assignment
    }

let cinder =
  { Rules.resources = Cm_uml.Cinder_model.resources;
    behavior = Cm_uml.Cinder_model.behavior;
    security = sec Cm_rbac.Security_table.cinder
  }

let cross =
  { Rules.resources = Cm_uml.Cross_model.resources;
    behavior = Cm_uml.Cross_model.behavior;
    security = sec Cm_rbac.Security_table.cross
  }

let trigger_label (t : BM.trigger) = Fmt.str "%a" BM.pp_trigger t

let events_exn input =
  match Effects.events input with
  | Error msg -> Alcotest.fail msg
  | Ok evs -> evs

let subscriptions_exn input =
  match Interference.subscriptions input with
  | Error msg -> Alcotest.fail msg
  | Ok subs -> subs

let reports_exn ?visibility input =
  match Monitorability.reports ?visibility input with
  | Error msg -> Alcotest.fail msg
  | Ok reports -> reports

let find_event events label =
  match
    List.find_opt
      (fun (e : Effects.event) -> trigger_label e.ev_trigger = label)
      events
  with
  | Some e -> e
  | None -> Alcotest.failf "no event %s" label

let find_sub subs label =
  match
    List.find_opt
      (fun (s : Interference.subscription) ->
        trigger_label s.sub_trigger = label)
      subs
  with
  | Some s -> s
  | None -> Alcotest.failf "no subscription for %s" label

let subscribed s label =
  List.exists
    (fun (e : Effects.event) -> trigger_label e.ev_trigger = label)
    s.Interference.sub_events

(* ---- write effects ---- *)

let test_cinder_events () =
  let events = events_exn cinder in
  (* one per distinct trigger plus the identity pseudo-event, which is
     last *)
  Alcotest.(check int) "event count" 6 (List.length events);
  let last = List.nth events (List.length events - 1) in
  Alcotest.(check bool) "identity last" true last.Effects.ev_identity;
  Alcotest.(check bool) "identity not tenant-keyed" false
    last.Effects.ev_tenant_keyed;
  Alcotest.(check bool) "identity writes the user binding" true
    (Footprint.mentions last.Effects.ev_writes "user");
  (* creation writes the project's volume collection, addressed to one
     tenant *)
  let post = find_event events "POST(volume)" in
  Alcotest.(check bool) "POST writes project.volumes" true
    (Footprint.needs_field post.Effects.ev_writes ~root:"project" "volumes");
  Alcotest.(check bool) "POST tenant-keyed" true post.Effects.ev_tenant_keyed;
  (* safe methods have no write effect — the AN013 invariant the
     test-level shard-safe projection in test_parallel relies on *)
  List.iter
    (fun label ->
      let e = find_event events label in
      Alcotest.(check bool)
        (label ^ " writes nothing")
        true
        (e.Effects.ev_writes = Footprint.empty))
    [ "GET(volume)"; "GET(Volumes)" ]

let test_event_order_is_stable () =
  let one = events_exn cinder and two = events_exn cinder in
  Alcotest.(check (list string)) "same order"
    (List.map (fun (e : Effects.event) -> trigger_label e.ev_trigger) one)
    (List.map (fun (e : Effects.event) -> trigger_label e.ev_trigger) two)

(* ---- monitorability ---- *)

let test_shipped_fully_monitorable () =
  List.iter
    (fun (label, input) ->
      List.iter
        (fun (r : Monitorability.report) ->
          Alcotest.(check string)
            (Printf.sprintf "%s %s fully monitorable" label
               (trigger_label r.rep_trigger))
            "fully"
            (Monitorability.label_to_string r.rep_label);
          Alcotest.(check (list string)) "no reasons" [] r.rep_reasons)
        (reports_exn input))
    [ ("cinder", cinder); ("cross", cross) ]

let test_path_prefix_degrades_cross () =
  let visibility =
    { Monitorability.default_visibility with
      Monitorability.cache = Monitorability.Path_prefix
    }
  in
  let reports = reports_exn ~visibility cross in
  let partial =
    List.filter
      (fun (r : Monitorability.report) ->
        r.rep_label = Monitorability.Partially)
      reports
  in
  Alcotest.(check bool)
    "some contract is only partially monitorable under path-prefix caching"
    true (partial <> []);
  (* the shipped observer discharges the same obligations *)
  List.iter
    (fun (r : Monitorability.report) ->
      Alcotest.(check bool) "write-effects discharge" true
        (r.rep_label = Monitorability.Fully))
    (reports_exn cross)

let test_no_pre_state_non_monitorable () =
  let visibility =
    { Monitorability.default_visibility with Monitorability.pre_state = false }
  in
  let reports = reports_exn ~visibility cinder in
  let non =
    List.filter
      (fun (r : Monitorability.report) ->
        r.rep_label = Monitorability.Non_monitorable)
      reports
  in
  (* every contract whose postcondition compares against pre() dies
     without pre-state snapshots — cinder's POST/DELETE/PUT do *)
  Alcotest.(check bool) "pre()-dependent contracts non-monitorable" true
    (List.length non >= 3)

let test_captured_pre_binders () =
  Alcotest.(check (list string)) "binder under pre()" [ "v" ]
    (Monitorability.captured_pre_binders
       (ocl "project.volumes->forAll(v | v.size = pre(v.size))"));
  Alcotest.(check (list string)) "pre() of free state is fine" []
    (Monitorability.captured_pre_binders
       (ocl "project.volumes->size() = pre(project.volumes->size()) + 1"))

(* ---- interference / subscription maps ---- *)

let test_own_trigger_subscribed () =
  List.iter
    (fun (s : Interference.subscription) ->
      Alcotest.(check bool)
        (trigger_label s.sub_trigger ^ " subscribes to itself")
        true
        (subscribed s (trigger_label s.sub_trigger)))
    (subscriptions_exn cinder)

let test_listing_subscription_is_minimal () =
  let s = find_sub (subscriptions_exn cinder) "GET(Volumes)" in
  (* the listing reads the collection count: creation and deletion can
     change its verdict, a volume-attribute update cannot *)
  Alcotest.(check bool) "hears POST(volume)" true (subscribed s "POST(volume)");
  Alcotest.(check bool) "hears DELETE(volume)" true
    (subscribed s "DELETE(volume)");
  Alcotest.(check bool) "does not hear PUT(volume)" false
    (subscribed s "PUT(volume)");
  Alcotest.(check bool) "does not hear GET(volume)" false
    (subscribed s "GET(volume)")

let test_auth_guard_forces_identity () =
  let subs = subscriptions_exn cinder in
  List.iter
    (fun (s : Interference.subscription) ->
      Alcotest.(check bool)
        (trigger_label s.sub_trigger ^ " hears token revocation")
        true
        (List.exists
           (fun (e : Effects.event) -> e.Effects.ev_identity)
           s.sub_events);
      Alcotest.(check bool) "therefore not shard-closed" false
        s.sub_shard_closed;
      Alcotest.(check (list string)) "identity is the only cross-shard event"
        [ "DELETE(token)" ]
        (List.map
           (fun (e : Effects.event) -> trigger_label e.ev_trigger)
           (Interference.cross_shard_events s)))
    subs

let test_unguarded_contracts_shard_closed () =
  (* without a security table there is no auth guard, hence no identity
     subscription: every cinder contract is statically shard-closed *)
  let subs = subscriptions_exn { cinder with Rules.security = None } in
  Alcotest.(check bool) "subscriptions derived" true (subs <> []);
  List.iter
    (fun (s : Interference.subscription) ->
      Alcotest.(check bool)
        (trigger_label s.sub_trigger ^ " shard-closed")
        true s.sub_shard_closed;
      Alcotest.(check (list string)) "no cross-shard events" []
        (List.map
           (fun (e : Effects.event) -> trigger_label e.ev_trigger)
           (Interference.cross_shard_events s)))
    subs

let test_runtime_image () =
  let s = find_sub (subscriptions_exn cinder) "GET(Volumes)" in
  let rt = Interference.to_runtime s in
  Alcotest.(check bool) "runtime map not shard-closed" false
    rt.Cm_contracts.Runtime.sub_shard_closed;
  Alcotest.(check bool) "runtime map hears the identity event" true
    rt.Cm_contracts.Runtime.sub_identity;
  Alcotest.(check bool) "runtime map lists POST volume" true
    (List.exists
       (fun (m, r, _) -> m = Cm_http.Meth.POST && r = "volume")
       rt.Cm_contracts.Runtime.sub_events)

(* ---- the dynamic subscription-soundness oracle ---- *)

let oracle_case name input =
  Alcotest.test_case name `Quick (fun () ->
      match Crosscheck.run_subscriptions ~cases:10_000 ~seed:42 input with
      | Error msg -> Alcotest.fail msg
      | Ok r ->
        Alcotest.(check (list string)) "no unsubscribed-event verdict changes"
          [] r.Crosscheck.sub_violations;
        Alcotest.(check int) "all cases ran" 10_000 r.Crosscheck.sub_cases;
        Alcotest.(check bool) "pairs actually compared" true
          (r.Crosscheck.sub_checks > 0))

(* ---- golden dumps: byte-stable machine formats ---- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Mirrors `cmonitor analyze --model all --subscriptions` /
   `--monitorability`: one stable-JSON object keyed by model label,
   trailing newline from the @. print. *)
let all_inputs =
  [ ("cinder", cinder);
    ( "glance",
      { Rules.resources = Cm_uml.Glance_model.resources;
        behavior = Cm_uml.Glance_model.behavior;
        security = sec Cm_rbac.Security_table.glance
      } );
    ( "snapshot",
      { Rules.resources = Cm_uml.Snapshot_model.resources;
        behavior = Cm_uml.Snapshot_model.behavior;
        security = sec Cm_uml.Snapshot_model.security_table
      } );
    ("cross", cross)
  ]

let golden_check name rendered path =
  Alcotest.test_case name `Quick (fun () ->
      let expected = read_file path in
      if rendered <> expected then
        Alcotest.failf
          "%s drifted from %s — if the change is intentional, regenerate \
           with `dune exec bin/cmonitor.exe -- analyze --model all %s > %s`"
          name path
          (if name = "subscriptions" then "--subscriptions"
           else "--monitorability")
          ("test/" ^ path))

let subscription_dump () =
  Fmt.str "%a@." Json.pp
    (Json.Obj
       [ ( "subscriptions",
           Json.Obj
             (List.map
                (fun (label, input) ->
                  (label, Interference.to_json (subscriptions_exn input)))
                all_inputs) )
       ])

let monitorability_dump () =
  Fmt.str "%a@." Json.pp
    (Json.Obj
       [ ( "monitorability",
           Json.Obj
             (List.map
                (fun (label, input) ->
                  ( label,
                    Monitorability.to_json
                      ~visibility:Monitorability.default_visibility
                      (reports_exn input) ))
                all_inputs) )
       ])

let lint_defect_dump () =
  let entry =
    List.find
      (fun (e : Defects.entry) -> e.name = "rbac_unreachable")
      Defects.corpus
  in
  Fmt.str "%a@." Json.pp (Lint.to_json (Rules.analyze entry.input))

let golden_tests =
  [ golden_check "subscriptions" (subscription_dump ())
      "golden/subscriptions.json";
    golden_check "monitorability" (monitorability_dump ())
      "golden/monitorability.json";
    Alcotest.test_case "lint --json of a defective model" `Quick (fun () ->
        let expected = read_file "golden/lint_rbac_unreachable.json" in
        Alcotest.(check string) "byte-stable lint dump" expected
          (lint_defect_dump ()))
  ]

let () =
  Alcotest.run "cm_effects"
    [ ( "effects",
        [ Alcotest.test_case "cinder write effects and tenant keys" `Quick
            test_cinder_events;
          Alcotest.test_case "event order is stable" `Quick
            test_event_order_is_stable
        ] );
      ( "monitorability",
        [ Alcotest.test_case "shipped models fully monitorable" `Quick
            test_shipped_fully_monitorable;
          Alcotest.test_case "path-prefix caching degrades the cross model"
            `Quick test_path_prefix_degrades_cross;
          Alcotest.test_case "no pre-state snapshot: non-monitorable" `Quick
            test_no_pre_state_non_monitorable;
          Alcotest.test_case "captured pre() binders" `Quick
            test_captured_pre_binders
        ] );
      ( "interference",
        [ Alcotest.test_case "own trigger always subscribed" `Quick
            test_own_trigger_subscribed;
          Alcotest.test_case "listing subscription is minimal" `Quick
            test_listing_subscription_is_minimal;
          Alcotest.test_case "auth guard forces the identity subscription"
            `Quick test_auth_guard_forces_identity;
          Alcotest.test_case "unguarded contracts are shard-closed" `Quick
            test_unguarded_contracts_shard_closed;
          Alcotest.test_case "runtime image of a subscription" `Quick
            test_runtime_image
        ] );
      ( "subscription-oracle",
        [ oracle_case "cinder: 10k cases, maps sound" cinder;
          oracle_case "cross: 10k cases, maps sound" cross
        ] );
      ("golden", golden_tests)
    ]
