(* Static read-set analysis: what a contract can observe is what the
   observer must fetch — nothing more.  The pruning in the observer is
   only sound if these footprints over-approximate every read, so the
   cases below pin the refinement rules (first-level navigation), the
   widening rules (bare roots, iteration sources used whole), binder
   shadowing, and the footprint of a real generated contract. *)

module Footprint = Cm_ocl.Footprint
module P = Cm_ocl.Ocl_parser

let parse = P.parse_exn

let fp_of s = Footprint.of_expr (parse s)

let fields_to_string = function
  | Footprint.All -> "*"
  | Footprint.Fields fs -> "{" ^ String.concat "," fs ^ "}"

let fp_to_string fp =
  String.concat "; "
    (List.map (fun (root, fs) -> root ^ ":" ^ fields_to_string fs) fp)

let check_fp msg expected expr =
  Alcotest.(check string) msg expected (fp_to_string (fp_of expr))

let test_navigation () =
  check_fp "single navigation" "project:{volumes}" "project.volumes->size() = 0";
  check_fp "two roots"
    "project:{volumes}; quota_sets:{volumes}"
    "project.volumes->size() <= quota_sets.volumes";
  check_fp "same root, merged fields"
    "project:{id,volumes}"
    "project.id->size() = 1 and project.volumes->size() = 0"

let test_bare_root_is_all () =
  check_fp "bare variable reads everything" "volume:*" "volume = null";
  check_fp "comparison of whole roots" "a:*; b:*" "a = b";
  (* deep navigation starts from a nav, not a var: the root is still
     recorded through the inner walk *)
  check_fp "deep navigation keeps first level" "user:{id}"
    "user.id.groups->size() = 1"

let test_pre_state () =
  check_fp "pre reads the same footprint" "project:{volumes}"
    "pre(project.volumes->size()) = project.volumes->size()"

let test_iterator_shadowing () =
  check_fp "binder is not a root" "project:{volumes}"
    "project.volumes->forAll(v | v.size > 0)";
  check_fp "body can read other roots"
    "project:{volumes}; volume:{id}"
    "project.volumes->exists(v | v.id = volume.id)";
  (* a root with the binder's name outside the body is still free *)
  check_fp "shadowing is scoped to the body"
    "project:{volumes}; v:{size}"
    "project.volumes->forAll(v | v.size > 0) and v.size = 1"

(* pre() and iterators compose in both orders; the footprint must be
   identical either way, because the observer snapshots whole documents,
   not expression values. *)
let test_pre_under_nested_iterators () =
  check_fp "pre() around a nested quantification"
    "project:{volumes}"
    "pre(project.volumes->forAll(v | v.size > 0)) = \
     project.volumes->forAll(v | v.size > 0)";
  check_fp "pre() buried inside the inner body"
    "project:{volumes}; quota_sets:{volumes}"
    "project.volumes->forAll(v | quota_sets.volumes->exists(q | pre(q) = \
     v.size))";
  (* the binder of the outer iterator shadows inside pre() too: [v] is
     not a free root even when the pre() call wraps its whole body *)
  check_fp "binder stays bound under pre()"
    "project:{volumes}"
    "project.volumes->forAll(v | pre(v.size) = v.size)"

let test_shadowing_across_chains () =
  (* collect feeds select: the binder name is reused at both levels,
     and neither occurrence escapes as a free root *)
  check_fp "reused binder across collect/select"
    "project:{volumes}"
    "project.volumes->collect(v | v.size)->select(v | v > 1)->size() = 1";
  (* an inner iterator over a different source: both sources read,
     neither binder free *)
  check_fp "nested iterators over distinct sources"
    "project:{volumes}; quota_sets:{volumes}"
    "project.volumes->select(v | quota_sets.volumes->exists(q | q = \
     v.size))->size() = 0";
  (* same binder name inside and outside: only the free occurrence
     contributes, with its own navigated field *)
  check_fp "free occurrence survives a chained shadow"
    "project:{volumes}; v:{status}"
    "project.volumes->collect(v | v.size)->size() = 1 and v.status = \
     'in-use'"

(* is_total and needs_field must agree: a total root needs every field,
   and a root needing every named field we can probe is not thereby
   total (Fields is finite, All is not). *)
let test_is_total_needs_field_agreement () =
  let total = fp_of "volume = null" in
  let partial = fp_of "volume.id->size() = 1 and volume.status = 'in-use'" in
  Alcotest.(check bool) "total root is_total" true
    (Footprint.is_total total "volume");
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "total root needs %s" f)
        true
        (Footprint.needs_field total ~root:"volume" f))
    [ "id"; "status"; "size"; "anything" ];
  Alcotest.(check bool) "field root is not total" false
    (Footprint.is_total partial "volume");
  Alcotest.(check bool) "field root needs listed field" true
    (Footprint.needs_field partial ~root:"volume" "id");
  Alcotest.(check bool) "field root rejects unlisted field" false
    (Footprint.needs_field partial ~root:"volume" "size");
  (* union with a total occurrence flips both views at once *)
  let widened = Footprint.union partial total in
  Alcotest.(check bool) "union is total" true
    (Footprint.is_total widened "volume");
  Alcotest.(check bool) "union needs unlisted field" true
    (Footprint.needs_field widened ~root:"volume" "size");
  (* absent root: not total, needs nothing — both sides agree *)
  Alcotest.(check bool) "absent root not total" false
    (Footprint.is_total partial "server");
  Alcotest.(check bool) "absent root needs nothing" false
    (Footprint.needs_field partial ~root:"server" "id")

let test_queries () =
  let fp = fp_of "project.volumes->size() <= quota_sets.volumes" in
  Alcotest.(check bool) "mentions project" true (Footprint.mentions fp "project");
  Alcotest.(check bool) "does not mention usergroups" false
    (Footprint.mentions fp "usergroups");
  Alcotest.(check bool) "needs project.volumes" true
    (Footprint.needs_field fp ~root:"project" "volumes");
  Alcotest.(check bool) "does not need project.id" false
    (Footprint.needs_field fp ~root:"project" "id");
  Alcotest.(check bool) "absent root needs nothing" false
    (Footprint.needs_field fp ~root:"usergroups" "name");
  let total = fp_of "volume = null" in
  Alcotest.(check bool) "All root is total" true (Footprint.is_total total "volume");
  Alcotest.(check bool) "All needs any field" true
    (Footprint.needs_field total ~root:"volume" "whatever")

let test_union () =
  let a = fp_of "project.volumes->size() = 0" in
  let b = fp_of "project = null" in
  Alcotest.(check string) "All absorbs fields" "project:*"
    (fp_to_string (Footprint.union a b));
  Alcotest.(check string) "union with empty is identity"
    (fp_to_string a)
    (fp_to_string (Footprint.union a Footprint.empty))

(* The generated DELETE(volume) contract must read volumes and the
   addressed volume but never the usergroups collection — that is the
   prunable observation the ISSUE's GET reduction comes from. *)
let test_generated_contract_footprint () =
  let security =
    { Cm_contracts.Generate.table = Cm_rbac.Security_table.cinder;
      assignment = Cm_rbac.Security_table.cinder_assignment
    }
  in
  match
    Cm_contracts.Generate.contract_for ~security
      Cm_uml.Cinder_model.behavior
      { Cm_uml.Behavior_model.meth = Cm_http.Meth.DELETE; resource = "volume" }
  with
  | Error msg -> Alcotest.fail msg
  | Ok contract ->
    let prepared = Cm_contracts.Runtime.prepare contract in
    let fp = Cm_contracts.Runtime.footprint prepared in
    Alcotest.(check bool) "reads project" true (Footprint.mentions fp "project");
    Alcotest.(check bool) "reads the volume" true (Footprint.mentions fp "volume");
    Alcotest.(check bool) "reads the user binding" true
      (Footprint.mentions fp "user");
    Alcotest.(check bool) "never reads usergroups" false
      (Footprint.mentions fp "usergroups")

let () =
  Alcotest.run "cm_footprint"
    [ ( "analysis",
        [ Alcotest.test_case "first-level navigation" `Quick test_navigation;
          Alcotest.test_case "bare roots widen to All" `Quick
            test_bare_root_is_all;
          Alcotest.test_case "pre-state operator" `Quick test_pre_state;
          Alcotest.test_case "iterator binder shadowing" `Quick
            test_iterator_shadowing;
          Alcotest.test_case "pre() under nested iterators" `Quick
            test_pre_under_nested_iterators;
          Alcotest.test_case "shadowing across collect/select chains" `Quick
            test_shadowing_across_chains
        ] );
      ( "queries",
        [ Alcotest.test_case "mentions/needs_field/is_total" `Quick test_queries;
          Alcotest.test_case "is_total vs needs_field agreement" `Quick
            test_is_total_needs_field_agreement;
          Alcotest.test_case "union" `Quick test_union
        ] );
      ( "contracts",
        [ Alcotest.test_case "generated DELETE(volume) read-set" `Quick
            test_generated_contract_footprint
        ] )
    ]
