(* Tests for the cloud monitor: observation, both modes of the Fig. 2
   workflow, verdicts, coverage, composition. *)

module Cloud = Cm_cloudsim.Cloud
module Identity = Cm_cloudsim.Identity
module Faults = Cm_cloudsim.Faults
module Store = Cm_cloudsim.Store
module Monitor = Cm_monitor.Monitor
module Observer = Cm_monitor.Observer
module Outcome = Cm_monitor.Outcome
module Report = Cm_monitor.Report
module Request = Cm_http.Request
module Response = Cm_http.Response
module Meth = Cm_http.Meth
module Json = Cm_json.Json
module Cinder = Cm_uml.Cinder_model

let security =
  { Cm_contracts.Generate.table = Cm_rbac.Security_table.cinder;
    assignment = Cm_rbac.Security_table.cinder_assignment
  }

type fixture = {
  cloud : Cloud.t;
  monitor : Monitor.t;
  alice : string;
  bob : string;
  carol : string;
  service : string;
}

let fixture ?(mode = Monitor.Oracle) () =
  let cloud = Cloud.create () in
  Cloud.seed cloud Cloud.my_project;
  Identity.add_user (Cloud.identity cloud) ~password:"svc"
    (Cm_rbac.Subject.make "svc" [ "proj_administrator" ]);
  let login user pw =
    match Cloud.login cloud ~user ~password:pw ~project_id:"myProject" with
    | Ok t -> t
    | Error e -> failwith e
  in
  let service = login "svc" "svc" in
  let config =
    Monitor.default_config ~mode ~service_token:service ~security
      Cinder.resources Cinder.behavior
  in
  match Monitor.create config (Cloud.handle cloud) with
  | Ok monitor ->
    { cloud;
      monitor;
      alice = login "alice" "alice-pw";
      bob = login "bob" "bob-pw";
      carol = login "carol" "carol-pw";
      service
    }
  | Error msgs -> failwith (String.concat "; " msgs)

let volume_body name =
  Json.obj
    [ ("volume", Json.obj [ ("name", Json.string name); ("size", Json.int 10) ]) ]

let run fx token meth path ?body () =
  Monitor.handle fx.monitor
    (Request.make ?body meth path |> Request.with_auth_token token)

let conformance_testable =
  Alcotest.testable Outcome.pp_conformance (fun a b -> a = b)

let observer_tests =
  [ Alcotest.test_case "bindings reflect observable state" `Quick (fun () ->
        let fx = fixture () in
        ignore
          (run fx fx.alice Meth.POST "/v3/myProject/volumes"
             ~body:(volume_body "v") ());
        let observer =
          Observer.create_exn ~backend:(Cloud.handle fx.cloud) ~token:fx.service
            ~model:Cinder.resources ~project_id:"myProject"
        in
        let bindings = Observer.observe observer in
        (match List.assoc_opt "project" bindings with
         | Some project ->
           Alcotest.(check (option string)) "project id" (Some "myProject")
             (Option.bind (Json.member "id" project) Json.to_string);
           (match Json.member "volumes" project with
            | Some (Json.List vols) ->
              Alcotest.(check int) "one volume" 1 (List.length vols)
            | _ -> Alcotest.fail "no volumes binding")
         | None -> Alcotest.fail "no project binding");
        (match List.assoc_opt "quota_sets" bindings with
         | Some quota ->
           Alcotest.(check (option int)) "quota" (Some 3)
             (Option.bind (Json.member "volumes" quota) Json.to_int)
         | None -> Alcotest.fail "no quota binding"));
    Alcotest.test_case "volume binding only when id given and exists" `Quick
      (fun () ->
        let fx = fixture () in
        ignore
          (run fx fx.alice Meth.POST "/v3/myProject/volumes"
             ~body:(volume_body "v") ());
        let observer =
          Observer.create_exn ~backend:(Cloud.handle fx.cloud) ~token:fx.service
            ~model:Cinder.resources ~project_id:"myProject"
        in
        Alcotest.(check bool) "present" true
          (List.mem_assoc "volume"
             (Observer.observe ~item:("volume", "vol-1") observer));
        Alcotest.(check bool) "absent for ghost" false
          (List.mem_assoc "volume"
             (Observer.observe ~item:("volume", "ghost") observer)));
    Alcotest.test_case "nonexistent project observes as empty" `Quick (fun () ->
        let fx = fixture () in
        let observer =
          Observer.create_exn ~backend:(Cloud.handle fx.cloud) ~token:fx.service
            ~model:Cinder.resources ~project_id:"ghost"
        in
        let env = Observer.env observer in
        Alcotest.(check bool) "invariant of no-project" true
          (Cm_ocl.Eval.check env
             (Cm_ocl.Ocl_parser.parse_exn "project.id->size() = 0")
          = Cm_ocl.Value.True));
    Alcotest.test_case "subject binding from token introspection" `Quick
      (fun () ->
        let fx = fixture () in
        match Observer.subject_binding (Cloud.handle fx.cloud) ~token:fx.bob with
        | Some user ->
          Alcotest.(check (option string)) "role" (Some "member")
            (Option.bind (Json.member "role" user) Json.to_string)
        | None -> Alcotest.fail "no binding");
    Alcotest.test_case "invalid token has no subject binding" `Quick (fun () ->
        let fx = fixture () in
        Alcotest.(check bool) "none" true
          (Observer.subject_binding (Cloud.handle fx.cloud) ~token:"bogus" = None))
  ]

let oracle_tests =
  [ Alcotest.test_case "conform on correct exchange" `Quick (fun () ->
        let fx = fixture () in
        let outcome =
          run fx fx.alice Meth.POST "/v3/myProject/volumes"
            ~body:(volume_body "v") ()
        in
        Alcotest.check conformance_testable "conform" Outcome.Conform
          outcome.Outcome.conformance;
        Alcotest.(check bool) "snapshot small but nonzero" true
          (outcome.Outcome.snapshot_bytes > 0
          && outcome.Outcome.snapshot_bytes < 256));
    Alcotest.test_case "denied unauthorized exchange is conform-denied" `Quick
      (fun () ->
        let fx = fixture () in
        let outcome =
          run fx fx.carol Meth.POST "/v3/myProject/volumes"
            ~body:(volume_body "v") ()
        in
        Alcotest.check conformance_testable "denied" Outcome.Conform_denied
          outcome.Outcome.conformance);
    Alcotest.test_case "security violation when mutant allows" `Quick (fun () ->
        let fx = fixture () in
        ignore
          (run fx fx.alice Meth.POST "/v3/myProject/volumes"
             ~body:(volume_body "v") ());
        Cloud.set_faults fx.cloud
          (Faults.of_list [ Faults.Skip_policy_check "volume:delete" ]);
        let outcome = run fx fx.bob Meth.DELETE "/v3/myProject/volumes/vol-1" () in
        Alcotest.check conformance_testable "unauthorized allowed"
          Outcome.Security_unauthorized_allowed outcome.Outcome.conformance);
    Alcotest.test_case "security violation when mutant denies" `Quick (fun () ->
        let fx = fixture () in
        ignore
          (run fx fx.alice Meth.POST "/v3/myProject/volumes"
             ~body:(volume_body "v") ());
        (* restrict GET to admin: members/users are wrongly denied while
           the monitor's (admin) observer keeps its view *)
        Cloud.set_faults fx.cloud
          (Faults.of_list
             [ Faults.Policy_override ("volume:get", Cm_rbac.Policy.Role "admin")
             ]);
        let outcome = run fx fx.carol Meth.GET "/v3/myProject/volumes/vol-1" () in
        Alcotest.check conformance_testable "authorized denied"
          Outcome.Security_authorized_denied outcome.Outcome.conformance);
    Alcotest.test_case "post violation on zombie delete" `Quick (fun () ->
        let fx = fixture () in
        ignore
          (run fx fx.alice Meth.POST "/v3/myProject/volumes"
             ~body:(volume_body "v") ());
        Cloud.set_faults fx.cloud (Faults.of_list [ Faults.Zombie_delete ]);
        let outcome = run fx fx.alice Meth.DELETE "/v3/myProject/volumes/vol-1" () in
        Alcotest.check conformance_testable "post violated" Outcome.Post_violated
          outcome.Outcome.conformance);
    Alcotest.test_case "bad status flagged" `Quick (fun () ->
        let fx = fixture () in
        ignore
          (run fx fx.alice Meth.POST "/v3/myProject/volumes"
             ~body:(volume_body "v") ());
        Cloud.set_faults fx.cloud
          (Faults.of_list [ Faults.Wrong_success_status ("volume:delete", 200) ]);
        let outcome = run fx fx.alice Meth.DELETE "/v3/myProject/volumes/vol-1" () in
        Alcotest.check conformance_testable "bad status"
          Outcome.Functional_bad_status outcome.Outcome.conformance);
    Alcotest.test_case "unmodelled URI is forwarded untouched" `Quick (fun () ->
        let fx = fixture () in
        let outcome =
          run fx fx.alice Meth.GET "/identity/v3/auth/tokens" ()
        in
        Alcotest.check conformance_testable "not monitored"
          Outcome.Not_monitored outcome.Outcome.conformance);
    Alcotest.test_case "method without contract" `Quick (fun () ->
        let fx = fixture () in
        (* DELETE on the quota singleton: modelled URI, no contract *)
        let outcome = run fx fx.alice Meth.DELETE "/v3/myProject/quota_sets" () in
        Alcotest.check conformance_testable "denied by cloud too"
          Outcome.Conform_denied outcome.Outcome.conformance)
  ]

let enforce_tests =
  [ Alcotest.test_case "unauthorized request never reaches the cloud" `Quick
      (fun () ->
        let fx = fixture ~mode:Monitor.Enforce () in
        ignore
          (run fx fx.alice Meth.POST "/v3/myProject/volumes"
             ~body:(volume_body "v") ());
        (* open the cloud's policy wide: the monitor must still block *)
        Cloud.set_faults fx.cloud
          (Faults.of_list [ Faults.Skip_policy_check "volume:delete" ]);
        let outcome = run fx fx.carol Meth.DELETE "/v3/myProject/volumes/vol-1" () in
        Alcotest.(check int) "blocked with 403" 403
          outcome.Outcome.response.Response.status;
        Alcotest.(check bool) "cloud never called" true
          (outcome.Outcome.cloud_response = None);
        (* the volume survived because the monitor blocked the call *)
        let show = run fx fx.alice Meth.GET "/v3/myProject/volumes/vol-1" () in
        Alcotest.(check int) "still there" 200
          show.Outcome.response.Response.status);
    Alcotest.test_case "good requests pass through with postcondition check"
      `Quick (fun () ->
        let fx = fixture ~mode:Monitor.Enforce () in
        let outcome =
          run fx fx.alice Meth.POST "/v3/myProject/volumes"
            ~body:(volume_body "v") ()
        in
        Alcotest.(check int) "201" 201 outcome.Outcome.response.Response.status;
        Alcotest.check conformance_testable "conform" Outcome.Conform
          outcome.Outcome.conformance);
    Alcotest.test_case "postcondition violation turns into 500 diagnostic"
      `Quick (fun () ->
        let fx = fixture ~mode:Monitor.Enforce () in
        ignore
          (run fx fx.alice Meth.POST "/v3/myProject/volumes"
             ~body:(volume_body "v") ());
        Cloud.set_faults fx.cloud (Faults.of_list [ Faults.Zombie_delete ]);
        let outcome = run fx fx.alice Meth.DELETE "/v3/myProject/volumes/vol-1" () in
        Alcotest.(check int) "500" 500 outcome.Outcome.response.Response.status;
        Alcotest.check conformance_testable "post violated"
          Outcome.Post_violated outcome.Outcome.conformance);
    Alcotest.test_case "method not permitted by the model is 405" `Quick
      (fun () ->
        let fx = fixture ~mode:Monitor.Enforce () in
        let outcome = run fx fx.alice Meth.DELETE "/v3/myProject/quota_sets" () in
        Alcotest.(check int) "405" 405 outcome.Outcome.response.Response.status)
  ]

let reporting_tests =
  [ Alcotest.test_case "coverage counts per requirement" `Quick (fun () ->
        let fx = fixture () in
        ignore
          (run fx fx.alice Meth.POST "/v3/myProject/volumes"
             ~body:(volume_body "v") ());
        ignore (run fx fx.bob Meth.GET "/v3/myProject/volumes" ());
        let coverage = Monitor.coverage fx.monitor in
        Alcotest.(check (option int)) "1.3 once" (Some 1)
          (List.assoc_opt "1.3" coverage);
        Alcotest.(check (option int)) "1.1 once" (Some 1)
          (List.assoc_opt "1.1" coverage);
        Alcotest.(check (option int)) "1.4 zero" (Some 0)
          (List.assoc_opt "1.4" coverage));
    Alcotest.test_case "summary and render" `Quick (fun () ->
        let fx = fixture () in
        ignore
          (run fx fx.alice Meth.POST "/v3/myProject/volumes"
             ~body:(volume_body "v") ());
        ignore
          (run fx fx.carol Meth.POST "/v3/myProject/volumes"
             ~body:(volume_body "x") ());
        let summary = Report.summarize (Monitor.outcomes fx.monitor) in
        Alcotest.(check int) "total" 2 summary.Report.total;
        Alcotest.(check int) "conform" 1 summary.Report.conform;
        Alcotest.(check int) "denied" 1 summary.Report.denied;
        Alcotest.(check int) "violations" 0 summary.Report.violations;
        let rendered =
          Report.render summary ~coverage:(Monitor.coverage fx.monitor)
        in
        Alcotest.(check bool) "mentions uncovered" true
          (Astring_contains.contains rendered "NOT COVERED"));
    Alcotest.test_case "summary exports to JSON" `Quick (fun () ->
        let fx = fixture () in
        ignore
          (run fx fx.alice Meth.POST "/v3/myProject/volumes"
             ~body:(volume_body "v") ());
        let json =
          Report.to_json
            (Report.summarize (Monitor.outcomes fx.monitor))
            ~coverage:(Monitor.coverage fx.monitor)
        in
        Alcotest.(check (option int)) "total" (Some 1)
          (Option.bind (Json.member "total" json) Json.to_int);
        (match Json.member "uncovered_requirements" json with
         | Some (Json.List uncovered) ->
           Alcotest.(check int) "1.1 1.2 1.4 uncovered" 3
             (List.length uncovered)
         | _ -> Alcotest.fail "no uncovered list");
        (* and it round-trips through the JSON printer *)
        Alcotest.(check bool) "serializable" true
          (Result.is_ok
             (Cm_json.Parser.parse (Cm_json.Printer.to_string json))));
    Alcotest.test_case "reset_log clears outcomes" `Quick (fun () ->
        let fx = fixture () in
        ignore (run fx fx.bob Meth.GET "/v3/myProject/volumes" ());
        Monitor.reset_log fx.monitor;
        Alcotest.(check int) "empty" 0 (List.length (Monitor.outcomes fx.monitor)))
  ]

let composition_tests =
  [ Alcotest.test_case "monitors compose (monitor over monitor)" `Quick
      (fun () ->
        let fx = fixture () in
        let outer_config =
          Monitor.default_config ~service_token:fx.service ~security
            Cinder.resources Cinder.behavior
        in
        match
          Monitor.create outer_config (Monitor.handle_response fx.monitor)
        with
        | Error msgs -> Alcotest.fail (String.concat "; " msgs)
        | Ok outer ->
          let outcome =
            Monitor.handle outer
              (Request.make Meth.POST "/v3/myProject/volumes"
                 ~body:(volume_body "v")
              |> Request.with_auth_token fx.alice)
          in
          Alcotest.check conformance_testable "outer conform" Outcome.Conform
            outcome.Outcome.conformance);
    Alcotest.test_case "create rejects broken models with all issues" `Quick
      (fun () ->
        let bad_machine =
          { Cinder.behavior with Cm_uml.Behavior_model.initial = "nowhere" }
        in
        let config =
          Monitor.default_config ~service_token:"t" ~security Cinder.resources
            bad_machine
        in
        match Monitor.create config (fun _ -> Response.no_content) with
        | Error msgs -> Alcotest.(check bool) "has issues" true (msgs <> [])
        | Ok _ -> Alcotest.fail "expected failure")
  ]

(* ---- concurrent interference ---- *)

let interference_tests =
  [ Alcotest.test_case
      "a concurrent writer causes a false alarm without the stability check"
      `Quick (fun () ->
        (* a backend wrapper that sneaks an extra volume into the store on
           every listing GET — a stand-in for another client racing the
           monitor between its observations *)
        let make_noisy_backend cloud =
          let counter = ref 0 in
          fun req ->
            (match Store.find_project (Cloud.store cloud) "myProject" with
             | Some project
               when req.Request.meth = Meth.GET
                    && req.Request.path = "/v3/myProject/volumes" ->
               incr counter;
               ignore
                 (Store.add_volume (Cloud.store cloud) project
                    ~name:(Printf.sprintf "racer-%d" !counter)
                    ~size_gb:1 ())
             | _ -> ());
            Cloud.handle cloud req
        in
        let build ~stability_check =
          let cloud = Cloud.create () in
          Cloud.seed cloud
            { Cloud.my_project with Cm_cloudsim.Cloud.seed_quota_volumes = 100 };
          Identity.add_user (Cloud.identity cloud) ~password:"svc"
            (Cm_rbac.Subject.make "svc" [ "proj_administrator" ]);
          let login user pw =
            match
              Cloud.login cloud ~user ~password:pw ~project_id:"myProject"
            with
            | Ok t -> t
            | Error e -> failwith e
          in
          let service = login "svc" "svc" in
          let config =
            Monitor.default_config ~stability_check ~service_token:service
              ~security Cinder.resources Cinder.behavior
          in
          match Monitor.create config (make_noisy_backend cloud) with
          | Ok monitor -> (cloud, monitor, login "alice" "alice-pw")
          | Error msgs -> failwith (String.concat "; " msgs)
        in
        let delete_under_noise ~stability_check =
          let cloud, monitor, alice = build ~stability_check in
          (* create a volume to delete, directly on the cloud (no noise) *)
          let created =
            Cloud.handle cloud
              (Request.make Meth.POST "/v3/myProject/volumes"
                 ~body:(volume_body "target")
              |> Request.with_auth_token alice)
          in
          let id =
            match created.Response.body with
            | Some body ->
              (match Cm_json.Pointer.get [ Key "volume"; Key "id" ] body with
               | Some (Json.String id) -> id
               | _ -> failwith "no id")
            | None -> failwith "no body"
          in
          Monitor.handle monitor
            (Request.make Meth.DELETE ("/v3/myProject/volumes/" ^ id)
            |> Request.with_auth_token alice)
        in
        (* without the check: the racer makes the count grow, the DELETE
           postcondition (size = pre - 1) fails -> false alarm *)
        let naive = delete_under_noise ~stability_check:false in
        Alcotest.check conformance_testable "false alarm" Outcome.Post_violated
          naive.Outcome.conformance;
        (* with the check: the second observation differs -> undefined *)
        let guarded = delete_under_noise ~stability_check:true in
        (match guarded.Outcome.conformance with
         | Outcome.Undefined _ -> ()
         | other ->
           Alcotest.failf "expected undefined, got %s"
             (Outcome.conformance_to_string other)));
    Alcotest.test_case "stability check is inert on a quiet cloud" `Quick
      (fun () ->
        let fx = fixture () in
        (* rebuild the monitor with the check on, same backend *)
        let config =
          Monitor.default_config ~stability_check:true
            ~service_token:fx.service ~security Cinder.resources
            Cinder.behavior
        in
        match Monitor.create config (Cloud.handle fx.cloud) with
        | Error msgs -> Alcotest.fail (String.concat "; " msgs)
        | Ok monitor ->
          let outcome =
            Monitor.handle monitor
              (Request.make Meth.POST "/v3/myProject/volumes"
                 ~body:(volume_body "v")
              |> Request.with_auth_token fx.alice)
          in
          Alcotest.check conformance_testable "conform" Outcome.Conform
            outcome.Outcome.conformance)
  ]

(* ---- attack-surface audit ---- *)

module Audit = Cm_monitor.Audit

let audit_tests =
  [ Alcotest.test_case "cinder surface fully classified, no gaps" `Quick
      (fun () ->
        let fx = fixture () in
        let surface = Audit.surface fx.monitor in
        Alcotest.(check int) "7 URIs x 4 verbs" 28 (List.length surface);
        Alcotest.(check int) "no authorization gaps" 0
          (List.length (Audit.gaps fx.monitor));
        let contracted =
          List.filter
            (fun (c : Audit.cell) ->
              match c.status with Audit.Contracted _ -> true | _ -> false)
            surface
        in
        Alcotest.(check int) "5 contracted cells" 5 (List.length contracted));
    Alcotest.test_case "POST on an item URI is blocked, not the create"
      `Quick (fun () ->
        let fx = fixture () in
        (* via the audit *)
        let cell =
          List.find
            (fun (c : Audit.cell) ->
              c.uri = "/v3/{project_id}/volumes/{volume_id}"
              && c.meth = Meth.POST)
            (Audit.surface fx.monitor)
        in
        Alcotest.(check bool) "blocked" true (cell.status = Audit.Blocked);
        (* and at run time *)
        let outcome =
          run fx fx.alice Meth.POST "/v3/myProject/volumes/vol-1"
            ~body:(volume_body "x") ()
        in
        Alcotest.(check bool) "no contract applied" true
          (outcome.Outcome.conformance = Outcome.Conform_denied
          || outcome.Outcome.conformance = Outcome.Functional_wrongly_accepted));
    Alcotest.test_case "missing security table reported as gaps" `Quick
      (fun () ->
        let fx = fixture () in
        let config =
          Monitor.default_config ~service_token:fx.service Cinder.resources
            Cinder.behavior
        in
        match Monitor.create config (Cloud.handle fx.cloud) with
        | Error msgs -> Alcotest.fail (String.concat "; " msgs)
        | Ok unsecured ->
          Alcotest.(check int) "all contracted cells are gaps" 5
            (List.length (Audit.gaps unsecured)));
    Alcotest.test_case "render summarizes" `Quick (fun () ->
        let fx = fixture () in
        let text = Audit.render (Audit.surface fx.monitor) in
        Alcotest.(check bool) "summary line" true
          (Astring_contains.contains text "0 authorization gaps"))
  ]

(* ---- dispatch tables agree with the naive scans they replaced ---- *)

module BM = Cm_uml.Behavior_model
module Uri_template = Cm_http.Uri_template

(* A monitor over a model with a stub backend — [create] never calls the
   backend, and these tests only exercise lookup. *)
let lookup_monitor resources behavior =
  let config = Monitor.default_config ~service_token:"t" resources behavior in
  match
    Monitor.create config (fun _ -> Response.error Cm_http.Status.not_found "")
  with
  | Ok m -> m
  | Error msgs -> failwith (String.concat "; " msgs)

(* The pre-dispatch-table classification: match every entry, keep the
   most specific (stable sort preserves derivation order on ties). *)
let reference_entry entries path =
  let candidates =
    List.filter
      (fun (e : Cm_uml.Paths.entry) ->
        Uri_template.matches e.template path <> None)
      entries
  in
  match
    List.stable_sort
      (fun (a : Cm_uml.Paths.entry) b ->
        Int.compare
          (Uri_template.specificity b.template)
          (Uri_template.specificity a.template))
      candidates
  with
  | [] -> None
  | e :: _ -> Some e

let entry_equal (a : Cm_uml.Paths.entry) (b : Cm_uml.Paths.entry) =
  a.resource = b.resource && a.is_item = b.is_item
  && Uri_template.equal a.template b.template

let sample_paths entries =
  let expanded =
    List.map
      (fun (e : Cm_uml.Paths.entry) ->
        let bindings =
          List.map
            (fun p -> (p, "x-" ^ p))
            (Uri_template.param_names e.template)
        in
        Uri_template.expand_exn e.template bindings)
      entries
  in
  expanded
  @ [ "/"; "/nope"; "/v3"; "/v3/p"; "/v3/p/volumes/v/extra/deep"; "" ]

let dispatch_case name resources behavior =
  Alcotest.test_case name `Quick (fun () ->
      let m = lookup_monitor resources behavior in
      let entries = Monitor.uri_table m in
      (* URI dispatch: table lookup = match-all + sort, on every derived
         URI and on unmatched paths *)
      List.iter
        (fun path ->
          let got = Monitor.entry_for_path m path in
          let expected = reference_entry entries path in
          match got, expected with
          | None, None -> ()
          | Some g, Some e when entry_equal g e -> ()
          | _ ->
            Alcotest.failf "dispatch disagrees on %s: got %s, expected %s"
              path
              (match got with
               | Some (g : Cm_uml.Paths.entry) -> g.resource
               | None -> "none")
              (match expected with
               | Some (e : Cm_uml.Paths.entry) -> e.resource
               | None -> "none"))
        (sample_paths entries);
      (* trigger dispatch: hashed lookup = linear scan over the
         generated contracts, plus misses on foreign triggers *)
      let contracts = Monitor.contracts m in
      let linear trigger =
        List.find_opt
          (fun (c : Cm_contracts.Contract.t) ->
            BM.trigger_equal c.trigger trigger)
          contracts
      in
      let check_trigger trigger =
        let got = Monitor.contract_for_trigger m trigger in
        let expected = linear trigger in
        match got, expected with
        | None, None -> ()
        | Some g, Some e when BM.trigger_equal g.trigger e.trigger -> ()
        | _ ->
          Alcotest.failf "trigger lookup disagrees on %a" BM.pp_trigger
            trigger
      in
      List.iter check_trigger (BM.triggers behavior);
      List.iter check_trigger
        [ { BM.meth = Meth.PATCH; resource = "volume" };
          { BM.meth = Meth.DELETE; resource = "nonexistent" };
          { BM.meth = Meth.POST; resource = "volume:item" }
        ])

let dispatch_tests =
  [ dispatch_case "cinder dispatch tables = naive scans" Cinder.resources
      Cinder.behavior;
    dispatch_case "glance dispatch tables = naive scans"
      Cm_uml.Glance_model.resources Cm_uml.Glance_model.behavior
  ]

let () =
  Alcotest.run "cm_monitor"
    [ ("observer", observer_tests);
      ("oracle", oracle_tests);
      ("enforce", enforce_tests);
      ("reporting", reporting_tests);
      ("composition", composition_tests);
      ("interference", interference_tests);
      ("audit", audit_tests);
      ("dispatch", dispatch_tests)
    ]
