(* Tests for the nested-resource vertical: snapshots under volumes —
   store, endpoints, depth-2 observation, and a monitored lifecycle. *)

module Cloud = Cm_cloudsim.Cloud
module Identity = Cm_cloudsim.Identity
module Store = Cm_cloudsim.Store
module Faults = Cm_cloudsim.Faults
module Monitor = Cm_monitor.Monitor
module Observer = Cm_monitor.Observer
module Outcome = Cm_monitor.Outcome
module Request = Cm_http.Request
module Response = Cm_http.Response
module Meth = Cm_http.Meth
module Json = Cm_json.Json
module Snap = Cm_uml.Snapshot_model

let security =
  { Cm_contracts.Generate.table = Snap.security_table;
    assignment = Cm_rbac.Security_table.cinder_assignment
  }

type fixture = {
  cloud : Cloud.t;
  monitor : Monitor.t;
  alice : string;
  bob : string;
  carol : string;
  service : string;
}

let fixture () =
  let cloud = Cloud.create () in
  Cloud.seed cloud Cloud.my_project;
  Identity.add_user (Cloud.identity cloud) ~password:"svc"
    (Cm_rbac.Subject.make "svc" [ "proj_administrator" ]);
  let login user pw =
    match Cloud.login cloud ~user ~password:pw ~project_id:"myProject" with
    | Ok t -> t
    | Error e -> failwith e
  in
  let service = login "svc" "svc" in
  let config =
    Monitor.default_config ~service_token:service ~security Snap.resources
      Snap.behavior
  in
  match Monitor.create config (Cloud.handle cloud) with
  | Ok monitor ->
    { cloud;
      monitor;
      alice = login "alice" "alice-pw";
      bob = login "bob" "bob-pw";
      carol = login "carol" "carol-pw";
      service
    }
  | Error msgs -> failwith (String.concat "; " msgs)

let direct fx token ?body meth path =
  Cloud.handle fx.cloud
    (Request.make ?body meth path |> Request.with_auth_token token)

let volume_body =
  Json.obj
    [ ("volume", Json.obj [ ("name", Json.string "v"); ("size", Json.int 10) ]) ]

let snapshot_body name =
  Json.obj [ ("snapshot", Json.obj [ ("name", Json.string name) ]) ]

let make_volume fx =
  let resp = direct fx fx.alice ~body:volume_body Meth.POST "/v3/myProject/volumes" in
  match resp.Response.body with
  | Some body ->
    (match Cm_json.Pointer.get [ Key "volume"; Key "id" ] body with
     | Some (Json.String id) -> id
     | _ -> failwith "no volume id")
  | None -> failwith "no body"

let snap_base vid = "/v3/myProject/volumes/" ^ vid ^ "/snapshots"

let conformance_testable =
  Alcotest.testable Outcome.pp_conformance (fun a b -> a = b)

let run fx token meth path ?body () =
  Monitor.handle fx.monitor
    (Request.make ?body meth path |> Request.with_auth_token token)

let model_tests =
  [ Alcotest.test_case "snapshot models are well-formed" `Quick (fun () ->
        let issues = Cm_uml.Validate.all Snap.resources [ Snap.behavior ] in
        if issues <> [] then
          Alcotest.failf "issues: %a"
            Fmt.(list ~sep:(any "; ") Cm_lint.Lint.pp_finding)
            issues);
    Alcotest.test_case "nested URI templates derived" `Quick (fun () ->
        match Cm_uml.Paths.derive Snap.resources with
        | Error msg -> Alcotest.fail msg
        | Ok entries ->
          let has text =
            List.exists
              (fun (e : Cm_uml.Paths.entry) ->
                Cm_http.Uri_template.to_string e.template = text)
              entries
          in
          Alcotest.(check bool) "snapshots collection" true
            (has "/v3/{project_id}/volumes/{volume_id}/snapshots");
          Alcotest.(check bool) "snapshot item" true
            (has
               "/v3/{project_id}/volumes/{volume_id}/snapshots/{snapshot_id}"));
    Alcotest.test_case "contracts typecheck (incl. nested navigation)" `Quick
      (fun () ->
        match Cm_contracts.Generate.all ~security Snap.behavior with
        | Error msg -> Alcotest.fail msg
        | Ok contracts ->
          Alcotest.(check int) "four triggers" 4 (List.length contracts);
          List.iter
            (fun c ->
              Alcotest.(check (list string)) "no type errors" []
                (List.map
                   (Fmt.str "%a" Cm_ocl.Typecheck.pp_error)
                   (Cm_contracts.Generate.typecheck Snap.resources c)))
            contracts)
  ]

let endpoint_tests =
  [ Alcotest.test_case "snapshot CRUD on the cloud" `Quick (fun () ->
        let fx = fixture () in
        let vid = make_volume fx in
        let created =
          direct fx fx.alice ~body:(snapshot_body "before-upgrade") Meth.POST
            (snap_base vid)
        in
        Alcotest.(check int) "201" 201 created.Response.status;
        let listing = direct fx fx.carol Meth.GET (snap_base vid) in
        Alcotest.(check int) "list 200" 200 listing.Response.status;
        (match listing.Response.body with
         | Some body ->
           (match Json.member "snapshots" body with
            | Some (Json.List snaps) ->
              Alcotest.(check int) "one snapshot" 1 (List.length snaps)
            | _ -> Alcotest.fail "no snapshots array")
         | None -> Alcotest.fail "no body");
        let sid =
          match created.Response.body with
          | Some body ->
            (match Cm_json.Pointer.get [ Key "snapshot"; Key "id" ] body with
             | Some (Json.String id) -> id
             | _ -> failwith "no id")
          | None -> failwith "no body"
        in
        let show = direct fx fx.bob Meth.GET (snap_base vid ^ "/" ^ sid) in
        Alcotest.(check int) "show 200" 200 show.Response.status;
        let del = direct fx fx.alice Meth.DELETE (snap_base vid ^ "/" ^ sid) in
        Alcotest.(check int) "delete 204" 204 del.Response.status);
    Alcotest.test_case "snapshotting an in-use volume is refused" `Quick
      (fun () ->
        let fx = fixture () in
        let vid = make_volume fx in
        ignore
          (direct fx fx.alice Meth.POST
             ("/v3/myProject/volumes/" ^ vid ^ "/action")
             ~body:
               (Json.obj
                  [ ( "os-attach",
                      Json.obj [ ("instance_uuid", Json.string "s") ] )
                  ]));
        let resp =
          direct fx fx.alice ~body:(snapshot_body "x") Meth.POST (snap_base vid)
        in
        Alcotest.(check int) "400" 400 resp.Response.status);
    Alcotest.test_case "snapshot authorization" `Quick (fun () ->
        let fx = fixture () in
        let vid = make_volume fx in
        let carol_create =
          direct fx fx.carol ~body:(snapshot_body "x") Meth.POST (snap_base vid)
        in
        Alcotest.(check int) "carol create 403" 403 carol_create.Response.status;
        ignore (direct fx fx.alice ~body:(snapshot_body "x") Meth.POST (snap_base vid));
        let bob_delete =
          direct fx fx.bob Meth.DELETE (snap_base vid ^ "/snap-2")
        in
        Alcotest.(check int) "bob delete 403" 403 bob_delete.Response.status)
  ]

let observer_tests =
  [ Alcotest.test_case "depth-2 observation binds volume and snapshot" `Quick
      (fun () ->
        let fx = fixture () in
        let vid = make_volume fx in
        ignore
          (direct fx fx.alice ~body:(snapshot_body "s1") Meth.POST
             (snap_base vid));
        let observer =
          Observer.create_exn ~backend:(Cloud.handle fx.cloud) ~token:fx.service
            ~model:Snap.resources ~project_id:"myProject"
        in
        let request_bindings =
          [ ("volume_id", vid); ("snapshot_id", "snap-2") ]
        in
        let bindings = Observer.observe ~bindings:request_bindings observer in
        (match List.assoc_opt "volume" bindings with
         | Some volume ->
           Alcotest.(check (option string)) "volume id" (Some vid)
             (Option.bind (Json.member "id" volume) Json.to_string);
           (match Json.member "snapshots" volume with
            | Some (Json.List snaps) ->
              Alcotest.(check int) "grafted listing" 1 (List.length snaps)
            | _ -> Alcotest.fail "no snapshots member grafted")
         | None -> Alcotest.fail "no volume binding");
        (match List.assoc_opt "snapshot" bindings with
         | Some snapshot ->
           Alcotest.(check (option string)) "snapshot id" (Some "snap-2")
             (Option.bind (Json.member "id" snapshot) Json.to_string)
         | None -> Alcotest.fail "no snapshot binding"));
    Alcotest.test_case "invariants evaluable over nested bindings" `Quick
      (fun () ->
        let fx = fixture () in
        let vid = make_volume fx in
        ignore
          (direct fx fx.alice ~body:(snapshot_body "s1") Meth.POST
             (snap_base vid));
        let observer =
          Observer.create_exn ~backend:(Cloud.handle fx.cloud) ~token:fx.service
            ~model:Snap.resources ~project_id:"myProject"
        in
        let env =
          Observer.env ~bindings:[ ("volume_id", vid) ] observer
        in
        Alcotest.(check bool) "with-snapshot invariant holds" true
          (Cm_ocl.Eval.check env
             (Cm_ocl.Ocl_parser.parse_exn
                "volume.id->size() = 1 and volume.snapshots->size() >= 1")
          = Cm_ocl.Value.True))
  ]

let monitored_tests =
  [ Alcotest.test_case "monitored snapshot lifecycle conforms" `Quick (fun () ->
        let fx = fixture () in
        let vid = make_volume fx in
        let steps =
          [ ( "create",
              fun () ->
                run fx fx.alice Meth.POST (snap_base vid)
                  ~body:(snapshot_body "s1") () );
            ("list", fun () -> run fx fx.carol Meth.GET (snap_base vid) ());
            ( "show",
              fun () -> run fx fx.bob Meth.GET (snap_base vid ^ "/snap-2") () );
            ( "create second",
              fun () ->
                run fx fx.alice Meth.POST (snap_base vid)
                  ~body:(snapshot_body "s2") () );
            ( "delete",
              fun () ->
                run fx fx.alice Meth.DELETE (snap_base vid ^ "/snap-2") () )
          ]
        in
        List.iter
          (fun (label, step) ->
            let outcome = step () in
            Alcotest.check conformance_testable label Outcome.Conform
              outcome.Outcome.conformance)
          steps);
    Alcotest.test_case "snapshot on in-use volume is conform-denied" `Quick
      (fun () ->
        let fx = fixture () in
        let vid = make_volume fx in
        ignore
          (direct fx fx.alice Meth.POST
             ("/v3/myProject/volumes/" ^ vid ^ "/action")
             ~body:
               (Json.obj
                  [ ( "os-attach",
                      Json.obj [ ("instance_uuid", Json.string "s") ] )
                  ]));
        let outcome =
          run fx fx.alice Meth.POST (snap_base vid) ~body:(snapshot_body "x") ()
        in
        Alcotest.check conformance_testable "denied" Outcome.Conform_denied
          outcome.Outcome.conformance);
    Alcotest.test_case "snapshot escalation mutant killed" `Quick (fun () ->
        let fx = fixture () in
        let vid = make_volume fx in
        ignore
          (run fx fx.alice Meth.POST (snap_base vid) ~body:(snapshot_body "x") ());
        Cloud.set_faults fx.cloud
          (Faults.of_list [ Faults.Skip_policy_check "snapshot:delete" ]);
        let outcome = run fx fx.bob Meth.DELETE (snap_base vid ^ "/snap-2") () in
        Alcotest.check conformance_testable "killed"
          Outcome.Security_unauthorized_allowed outcome.Outcome.conformance);
    Alcotest.test_case "SecReq 3.x coverage" `Quick (fun () ->
        let fx = fixture () in
        let vid = make_volume fx in
        ignore
          (run fx fx.alice Meth.POST (snap_base vid) ~body:(snapshot_body "x") ());
        ignore (run fx fx.carol Meth.GET (snap_base vid) ());
        let coverage = Monitor.coverage fx.monitor in
        Alcotest.(check (option int)) "3.2" (Some 1)
          (List.assoc_opt "3.2" coverage);
        Alcotest.(check (option int)) "3.1" (Some 1)
          (List.assoc_opt "3.1" coverage);
        Alcotest.(check (option int)) "3.3 uncovered" (Some 0)
          (List.assoc_opt "3.3" coverage))
  ]

let () =
  Alcotest.run "cm_snapshots"
    [ ("models", model_tests);
      ("endpoints", endpoint_tests);
      ("observer", observer_tests);
      ("monitored", monitored_tests)
    ]
