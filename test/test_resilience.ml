(* Tests for fault-tolerant forwarding: backoff determinism, circuit
   breaker transitions, idempotent mutation retry, timeout semantics,
   chaos determinism, degradation modes and exception containment. *)

module Resilience = Cm_monitor.Resilience
module Monitor = Cm_monitor.Monitor
module Outcome = Cm_monitor.Outcome
module Clock = Cm_core.Clock
module Transport = Cm_core.Transport
module Chaos = Cm_cloudsim.Chaos
module Cloud = Cm_cloudsim.Cloud
module Faults = Cm_cloudsim.Faults
module Request = Cm_http.Request
module Response = Cm_http.Response
module Status = Cm_http.Status
module Meth = Cm_http.Meth
module Json = Cm_json.Json
module Scenario = Cm_mutation.Scenario

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let req ?token ?body meth path =
  let r = Request.make ?body meth path in
  match token with Some t -> Request.with_auth_token t r | None -> r

let login cloud user pw =
  match Cloud.login cloud ~user ~password:pw ~project_id:"myProject" with
  | Ok t -> t
  | Error e -> failwith e

let volume_body name =
  Json.obj
    [ ("volume", Json.obj [ ("name", Json.string name); ("size", Json.int 10) ])
    ]

(* ---- backoff ---- *)

let test_backoff_deterministic () =
  let p = Resilience.default in
  let s1 = Resilience.schedule p ~seed:7 in
  let s2 = Resilience.schedule p ~seed:7 in
  Alcotest.(check (list int)) "same seed, same schedule" s1 s2;
  Alcotest.(check bool) "different seed, different schedule" true
    (s1 <> Resilience.schedule p ~seed:8);
  Alcotest.(check int) "one pause per retry"
    (p.Resilience.max_attempts - 1)
    (List.length s1);
  (* jitter-free schedule is the exact capped exponential *)
  let p0 =
    { p with Resilience.jitter = 0.0; max_attempts = 8; backoff_base_ms = 25;
      backoff_multiplier = 2.0; backoff_cap_ms = 1_600
    }
  in
  Alcotest.(check (list int)) "capped exponential"
    [ 25; 50; 100; 200; 400; 800; 1_600 ]
    (Resilience.schedule p0 ~seed:1);
  (* jittered pauses stay inside the +-(jitter/2) envelope *)
  List.iteri
    (fun i pause ->
      let nominal = Float.min (25.0 *. (2.0 ** float_of_int i)) 1_600.0 in
      let spread = p.Resilience.jitter *. nominal /. 2.0 in
      Alcotest.(check bool)
        (Printf.sprintf "pause %d within envelope" i)
        true
        (float_of_int pause >= nominal -. spread -. 1.0
        && float_of_int pause <= nominal +. spread +. 1.0))
    s1

(* ---- 5xx handling ---- *)

let test_5xx_blips () =
  let clock = Clock.create () in
  let n = ref 0 in
  let backend _ =
    incr n;
    if !n = 1 then Response.error Status.service_unavailable "blip"
    else Response.ok (Json.obj [])
  in
  let r = Resilience.create Resilience.default clock backend in
  (match Resilience.call r (req Meth.GET "/a/b") with
   | Ok resp -> Alcotest.(check int) "blip absorbed by retry" 200 resp.Response.status
   | Error f -> Alcotest.fail (Resilience.failure_to_string f));
  (* a *persistent* 5xx is the backend's actual answer, not transport
     noise: it must come back Ok so verdicts match a resilience-free run *)
  let down _ = Response.error Status.service_unavailable "down" in
  let r2 = Resilience.create Resilience.default clock down in
  match Resilience.call r2 (req Meth.GET "/a/b") with
  | Ok resp -> Alcotest.(check int) "persistent 503 passed through" 503 resp.Response.status
  | Error f -> Alcotest.fail (Resilience.failure_to_string f)

(* ---- circuit breaker ---- *)

let test_breaker_transitions () =
  let clock = Clock.create () in
  let healthy = ref false in
  let backend _ =
    if !healthy then Response.ok (Json.obj [])
    else raise Transport.Connection_reset
  in
  let policy =
    { Resilience.default with Resilience.max_attempts = 1;
      breaker_threshold = 2; breaker_reset_ms = 1_000
    }
  in
  let r = Resilience.create policy clock backend in
  let request = req Meth.GET "/v3/p/volumes" in
  let route = "GET /v3/p" in
  let state () =
    Resilience.breaker_state_to_string (Resilience.breaker_state r route)
  in
  (match Resilience.call r request with
   | Error (Resilience.Exhausted { attempts; _ }) ->
     Alcotest.(check int) "single attempt" 1 attempts
   | _ -> Alcotest.fail "expected Exhausted");
  Alcotest.(check string) "closed after one failure" "closed" (state ());
  (match Resilience.call r request with
   | Error (Resilience.Exhausted _) -> ()
   | _ -> Alcotest.fail "expected Exhausted");
  Alcotest.(check string) "open at the threshold" "open" (state ());
  (match Resilience.call r request with
   | Error (Resilience.Circuit_open _ as f) ->
     Alcotest.(check bool) "short-circuit means not executed" false
       (Resilience.executed_possible f)
   | _ -> Alcotest.fail "expected Circuit_open");
  (* reset window elapses -> half-open -> a successful probe closes it *)
  Clock.advance clock 1_000;
  healthy := true;
  (match Resilience.call r request with
   | Ok _ -> ()
   | Error f -> Alcotest.fail (Resilience.failure_to_string f));
  Alcotest.(check string) "closed after probe success" "closed" (state ());
  let metrics = List.assoc route (Resilience.metrics r) in
  Alcotest.(check int) "one short-circuit counted" 1
    metrics.Resilience.short_circuited;
  Alcotest.(check int) "one breaker open counted" 1
    metrics.Resilience.breaker_opens

let test_breaker_reopens_from_half_open () =
  let clock = Clock.create () in
  let backend _ = raise Transport.Connection_reset in
  let policy =
    { Resilience.default with Resilience.max_attempts = 1;
      breaker_threshold = 1; breaker_reset_ms = 500
    }
  in
  let r = Resilience.create policy clock backend in
  let request = req Meth.GET "/v3/p/volumes" in
  ignore (Resilience.call r request);
  Alcotest.(check string) "open" "open"
    (Resilience.breaker_state_to_string (Resilience.breaker_state r "GET /v3/p"));
  Clock.advance clock 500;
  (* the half-open probe fails -> straight back to open *)
  (match Resilience.call r request with
   | Error (Resilience.Exhausted _) -> ()
   | _ -> Alcotest.fail "probe should have been admitted and failed");
  Alcotest.(check string) "re-opened" "open"
    (Resilience.breaker_state_to_string (Resilience.breaker_state r "GET /v3/p"))

(* ---- idempotency-aware retry ---- *)

let test_retried_post_creates_one_volume () =
  let clock = Clock.create () in
  let cloud = Cloud.create ~clock () in
  Cloud.seed cloud Cloud.my_project;
  let token = login cloud "alice" "alice-pw" in
  (* the cloud executes the POST, then the connection dies: the classic
     ambiguous mutation *)
  let drops = ref 1 in
  let backend request =
    let resp = Cloud.handle cloud request in
    if request.Request.meth = Meth.POST && !drops > 0 then begin
      decr drops;
      raise Transport.Connection_reset
    end
    else resp
  in
  let r = Resilience.create Resilience.default clock backend in
  (match
     Resilience.call r
       (req ~token ~body:(volume_body "data1") Meth.POST "/v3/myProject/volumes")
   with
   | Ok resp ->
     Alcotest.(check int) "replayed creation response" 201 resp.Response.status
   | Error f -> Alcotest.fail (Resilience.failure_to_string f));
  let listing = Cloud.handle cloud (req ~token Meth.GET "/v3/myProject/volumes") in
  match listing.Response.body with
  | Some (Json.Obj [ ("volumes", Json.List vols) ]) ->
    Alcotest.(check int) "exactly one volume despite the retry" 1
      (List.length vols)
  | _ -> Alcotest.fail "unexpected listing shape"

let test_mutation_retry_disabled () =
  let clock = Clock.create () in
  let calls = ref 0 in
  let backend _ =
    incr calls;
    raise Transport.Connection_reset
  in
  let policy = { Resilience.default with Resilience.retry_mutations = false } in
  let r = Resilience.create policy clock backend in
  (match Resilience.call r (req ~body:(volume_body "x") Meth.POST "/a/b") with
   | Error (Resilience.Exhausted { attempts; _ }) ->
     Alcotest.(check int) "no retry without idempotency" 1 attempts
   | _ -> Alcotest.fail "expected Exhausted");
  Alcotest.(check int) "backend called once" 1 !calls

(* ---- timeouts ---- *)

let test_timeout_exhausts () =
  let clock = Clock.create () in
  let backend _ =
    Clock.advance clock 5_000;
    (* the answer exists, but it arrives after the caller gave up *)
    Response.ok (Json.obj [])
  in
  let r =
    Resilience.create
      { Resilience.default with Resilience.max_attempts = 3 }
      clock backend
  in
  match Resilience.call r (req Meth.GET "/a/b") with
  | Error (Resilience.Exhausted { attempts; last_error; _ } as f) ->
    Alcotest.(check int) "all attempts timed out" 3 attempts;
    Alcotest.(check bool) "described as timeout" true
      (contains ~affix:"timed out" last_error);
    Alcotest.(check bool) "may have executed" true
      (Resilience.executed_possible f)
  | _ -> Alcotest.fail "expected Exhausted"

let spike_profile =
  { Chaos.fault_free with
    Chaos.name = "always-spike";
    description = "every call blows the attempt budget";
    latency = { Chaos.base_ms = 0; jitter_ms = 0; spike_p = 1.0; spike_ms = 5_000 }
  }

let test_monitor_timeout_is_undefined () =
  match
    Scenario.setup ~chaos:spike_profile ~resilience:Resilience.default ()
  with
  | Error msgs -> Alcotest.fail (String.concat "; " msgs)
  | Ok ctx ->
    let outcome =
      Scenario.request ctx ~user:"alice" Meth.GET "/v3/myProject/volumes" ()
    in
    Alcotest.(check bool) "not a violation" false
      (Outcome.is_violation outcome.Outcome.conformance);
    Alcotest.(check bool) "not a definite verdict" false
      (Outcome.is_definite outcome.Outcome.conformance)

(* ---- chaos determinism ---- *)

let test_chaos_deterministic () =
  let run seed =
    let clock = Clock.create () in
    let chaos =
      Chaos.create ~seed Chaos.adversarial clock (fun _ ->
          Response.ok (Json.obj [ ("thing", Json.obj []) ]))
    in
    let backend = Chaos.backend chaos in
    let observed =
      List.init 200 (fun i ->
          let request = req Meth.GET ("/p/" ^ string_of_int (i mod 7)) in
          match backend request with
          | resp -> resp.Response.status
          | exception Transport.Connection_reset -> -1)
    in
    (observed, Chaos.stats chaos, Clock.now clock)
  in
  let a1 = run 9 in
  let a2 = run 9 in
  Alcotest.(check bool) "same seed, identical faults and latency" true (a1 = a2);
  Alcotest.(check bool) "different seed, different run" true (a1 <> run 10)

(* ---- degradation modes ---- *)

let dead_monitor degradation =
  let config =
    Monitor.default_config ~mode:Monitor.Oracle ~degradation
      ~resilience:
        { Resilience.default with Resilience.max_attempts = 1;
          breaker_threshold = 1
        }
      ~service_token:"svc" Cm_uml.Cinder_model.resources
      Cm_uml.Cinder_model.behavior
  in
  match Monitor.create config (fun _ -> raise Transport.Connection_reset) with
  | Ok monitor -> monitor
  | Error msgs -> failwith (String.concat "; " msgs)

let degraded_request monitor =
  (* two requests: the first opens the route's breaker, the second is
     short-circuited and exercises the degradation mode *)
  let request = req ~token:"tok" Meth.GET "/v3/myProject/volumes" in
  ignore (Monitor.handle monitor request);
  Monitor.handle monitor request

let test_fail_closed () =
  let outcome = degraded_request (dead_monitor Monitor.Fail_closed) in
  (match outcome.Outcome.conformance with
   | Outcome.Degraded detail ->
     Alcotest.(check bool) "labelled fail-closed" true
       (contains ~affix:"fail-closed" detail)
   | c ->
     Alcotest.fail ("expected Degraded, got " ^ Outcome.conformance_to_string c));
  Alcotest.(check int) "rejected with 503" 503
    outcome.Outcome.response.Response.status;
  Alcotest.(check bool) "nothing was forwarded" true
    (outcome.Outcome.cloud_response = None)

let test_fail_open_logged () =
  let outcome = degraded_request (dead_monitor Monitor.Fail_open_logged) in
  (match outcome.Outcome.conformance with
   | Outcome.Degraded detail ->
     Alcotest.(check bool) "labelled fail-open" true
       (contains ~affix:"fail-open" detail)
   | c ->
     Alcotest.fail ("expected Degraded, got " ^ Outcome.conformance_to_string c));
  Alcotest.(check bool) "never a violation" false
    (Outcome.is_violation outcome.Outcome.conformance)

(* ---- exception containment ---- *)

let plain_monitor backend =
  let config =
    Monitor.default_config ~mode:Monitor.Oracle ~service_token:"svc"
      Cm_uml.Cinder_model.resources Cm_uml.Cinder_model.behavior
  in
  match Monitor.create config backend with
  | Ok monitor -> monitor
  | Error msgs -> failwith (String.concat "; " msgs)

let test_monitor_bug_contained () =
  let monitor = plain_monitor (fun _ -> failwith "boom") in
  let outcome =
    Monitor.handle monitor (req ~token:"tok" Meth.GET "/v3/myProject/volumes")
  in
  (match outcome.Outcome.conformance with
   | Outcome.Monitor_error detail ->
     Alcotest.(check bool) "names the exception" true
       (contains ~affix:"boom" detail)
   | c ->
     Alcotest.fail
       ("expected Monitor_error, got " ^ Outcome.conformance_to_string c));
  Alcotest.(check int) "500 to the client" 500
    outcome.Outcome.response.Response.status;
  Alcotest.(check bool) "a monitor bug is never a cloud violation" false
    (Outcome.is_violation outcome.Outcome.conformance)

let test_transport_escape_degrades () =
  let monitor = plain_monitor (fun _ -> raise Transport.Connection_reset) in
  let outcome =
    Monitor.handle monitor (req ~token:"tok" Meth.GET "/v3/myProject/volumes")
  in
  match outcome.Outcome.conformance with
  | Outcome.Degraded _ ->
    Alcotest.(check int) "502 to the client" 502
      outcome.Outcome.response.Response.status
  | c ->
    Alcotest.fail ("expected Degraded, got " ^ Outcome.conformance_to_string c)

(* ---- Slow/Flaky faults ---- *)

let test_slow_and_flaky_faults () =
  let clock = Clock.create () in
  let cloud = Cloud.create ~clock () in
  Cloud.seed cloud Cloud.my_project;
  let token = login cloud "alice" "alice-pw" in
  let list () = Cloud.handle cloud (req ~token Meth.GET "/v3/myProject/volumes") in
  Cloud.set_faults cloud
    (Faults.of_list [ Faults.Slow_action ("volumes:get", 500) ]);
  let before = Clock.now clock in
  Alcotest.(check int) "slow action still succeeds" 200 (list ()).Response.status;
  Alcotest.(check int) "and costs 500 virtual ms" 500 (Clock.now clock - before);
  Cloud.set_faults cloud
    (Faults.of_list [ Faults.Flaky_action ("volumes:get", 1.0) ]);
  Alcotest.(check int) "certain flakiness yields 503" 503
    (list ()).Response.status;
  Cloud.set_faults cloud
    (Faults.of_list [ Faults.Flaky_action ("volumes:get", 0.0) ]);
  Alcotest.(check int) "zero flakiness never fires" 200 (list ()).Response.status

(* ---- verdict serialization ---- *)

let test_new_verdicts_round_trip () =
  List.iter
    (fun c ->
      let text = Outcome.conformance_to_string c in
      match Outcome.conformance_of_string text with
      | Some back ->
        Alcotest.(check bool) (text ^ " round-trips") true (back = c)
      | None -> Alcotest.fail ("no parse for " ^ text))
    [ Outcome.Degraded "fail-closed: circuit open on GET /v3/p";
      Outcome.Monitor_error "internal monitor exception contained: boom";
      Outcome.Undefined "forwarding outcome unknown"
    ]

let () =
  Alcotest.run "cm_resilience"
    [ ( "backoff",
        [ Alcotest.test_case "deterministic jittered schedule" `Quick
            test_backoff_deterministic
        ] );
      ( "retry",
        [ Alcotest.test_case "5xx blips absorbed, persistent 5xx passed" `Quick
            test_5xx_blips;
          Alcotest.test_case "retried POST creates exactly one volume" `Quick
            test_retried_post_creates_one_volume;
          Alcotest.test_case "mutations not retried when disabled" `Quick
            test_mutation_retry_disabled;
          Alcotest.test_case "timeouts exhaust into unknown outcome" `Quick
            test_timeout_exhausts
        ] );
      ( "breaker",
        [ Alcotest.test_case "closed -> open -> half-open -> closed" `Quick
            test_breaker_transitions;
          Alcotest.test_case "failed half-open probe re-opens" `Quick
            test_breaker_reopens_from_half_open
        ] );
      ( "chaos",
        [ Alcotest.test_case "seeded chaos is bit-reproducible" `Quick
            test_chaos_deterministic;
          Alcotest.test_case "monitor timeout yields three-valued verdict"
            `Quick test_monitor_timeout_is_undefined
        ] );
      ( "degradation",
        [ Alcotest.test_case "fail-closed rejects with 503" `Quick
            test_fail_closed;
          Alcotest.test_case "fail-open forwards and logs Degraded" `Quick
            test_fail_open_logged
        ] );
      ( "containment",
        [ Alcotest.test_case "monitor bug becomes Monitor_error" `Quick
            test_monitor_bug_contained;
          Alcotest.test_case "escaped transport failure becomes Degraded"
            `Quick test_transport_escape_degrades
        ] );
      ( "faults",
        [ Alcotest.test_case "Slow_action and Flaky_action" `Quick
            test_slow_and_flaky_faults
        ] );
      ( "verdicts",
        [ Alcotest.test_case "Degraded/Monitor_error round-trip" `Quick
            test_new_verdicts_round_trip
        ] )
    ]
