(* Determinism under parallelism: everything the monitor reports must
   be a pure function of the request stream and the shard count, never
   of how many domains served it.  The suites below re-run the mutation
   campaign, a fuzz slice and a sharded multi-tenant workload at 1, 2
   and 4 domains and require bit-identical verdicts, plus the
   cache-invalidation properties that make the observation cache unable
   to mask real state changes or concurrent interference. *)

module Campaign = Cm_mutation.Campaign
module Mutant = Cm_mutation.Mutant
module Scenario = Cm_mutation.Scenario
module Chaos = Cm_cloudsim.Chaos
module Monitor = Cm_monitor.Monitor
module Obs_cache = Cm_monitor.Obs_cache
module Outcome = Cm_monitor.Outcome
module Response = Cm_http.Response
module Meth = Cm_http.Meth
module SB = Cloudmon.Serve_bench

let domain_counts = [ 1; 2; 4 ]

(* ---- mutation campaign at several domain counts ---- *)

let campaign_projection results =
  List.map
    (fun (r : Campaign.result) ->
      ( (match r.mutant with None -> "baseline" | Some m -> m.Mutant.name),
        r.killed,
        r.exchanges,
        r.first_violation ))
    results

let test_campaign_domains () =
  let runs =
    List.map
      (fun domains ->
        match Campaign.run ~domains Mutant.all with
        | Ok results -> results
        | Error msgs -> Alcotest.fail (String.concat "; " msgs))
      domain_counts
  in
  List.iter
    (fun results ->
      Alcotest.(check bool) "all mutants killed, baseline clean" true
        (Campaign.all_killed results))
    runs;
  match List.map campaign_projection runs with
  | [] -> ()
  | reference :: rest ->
    List.iteri
      (fun i other ->
        Alcotest.(check bool)
          (Printf.sprintf "kill matrix identical at %d domains"
             (List.nth domain_counts (i + 1)))
          true (other = reference))
      rest

let chaos_projection runs =
  List.map
    (fun (r : Campaign.chaos_run) ->
      ( (match r.cr_mutant with None -> "baseline" | Some m -> m.Mutant.name),
        r.cr_killed,
        r.cr_exchanges,
        List.length r.cr_flips,
        r.cr_indefinite ))
    runs

let test_chaos_campaign_domains () =
  let profile =
    match Chaos.find_profile "flaky-network" with
    | Some p -> p
    | None -> Alcotest.fail "flaky-network profile missing"
  in
  let runs =
    List.map
      (fun domains ->
        match Campaign.run_chaos ~domains profile Mutant.all with
        | Ok runs -> runs
        | Error msgs -> Alcotest.fail (String.concat "; " msgs))
      [ 1; 2 ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "no flips, mutants still killed under chaos" true
        (Campaign.chaos_ok r))
    runs;
  match List.map chaos_projection runs with
  | [ reference; two ] ->
    Alcotest.(check bool) "chaos matrix identical at 2 domains" true
      (two = reference)
  | _ -> Alcotest.fail "expected two chaos runs"

(* ---- fuzz slice at several domain counts ---- *)

(* Each fuzz case builds its own cloud + monitor, so cases are
   independent jobs; the verdict of case [i] must not depend on which
   domain ran it.  500 cases of the monitor oracle (the verdict-bearing
   one) without shrinking. *)
let test_fuzz_domains () =
  let oracle =
    match Cm_proptest.Oracle.find "monitor" with
    | Some o -> o
    | None -> Alcotest.fail "monitor oracle missing"
  in
  let cases = 500 in
  let verdict_name index =
    match
      oracle.Cm_proptest.Oracle.run_case ~shrink:false ~seed:42 ~index
        ~size:(2 + (index mod 9))
    with
    | Cm_proptest.Oracle.Pass -> (index, "pass", "")
    | Cm_proptest.Oracle.Fail f ->
      (index, "fail", f.Cm_proptest.Oracle.detail)
  in
  let indices = List.init cases (fun i -> i) in
  let runs =
    List.map
      (fun domains ->
        Cm_core.Domain_pool.map_list ~domains verdict_name indices)
      domain_counts
  in
  match runs with
  | reference :: rest ->
    Alcotest.(check int) "all cases ran" cases (List.length reference);
    List.iter
      (fun (_, verdict, _) ->
        Alcotest.(check string) "fuzz baseline passes" "pass" verdict)
      reference;
    List.iteri
      (fun i other ->
        Alcotest.(check bool)
          (Printf.sprintf "fuzz verdicts identical at %d domains"
             (List.nth domain_counts (i + 1)))
          true (other = reference))
      rest
  | [] -> ()

(* ---- sharded serving: arrival order and per-shard sequences ---- *)

let test_shard_determinism () =
  let spec =
    { SB.projects = 4; requests_per_project = 25; seed = 7 }
  in
  let runs =
    List.map
      (fun domains ->
        match SB.verdict_run spec ~domains with
        | Ok r -> r
        | Error msgs -> Alcotest.fail (String.concat "; " msgs))
      domain_counts
  in
  match runs with
  | (ref_arrival, ref_shards) :: rest ->
    Alcotest.(check int) "expected workload size" 100
      (List.length ref_arrival);
    List.iteri
      (fun i (arrival, shards) ->
        let d = List.nth domain_counts (i + 1) in
        Alcotest.(check bool)
          (Printf.sprintf "arrival-order verdicts identical at %d domains" d)
          true
          (arrival = ref_arrival);
        Alcotest.(check bool)
          (Printf.sprintf "per-shard sequences identical at %d domains" d)
          true
          (shards = ref_shards))
      rest
  | [] -> ()

(* ---- the cache cannot change what the monitor concludes ---- *)

(* Same standard workload, cache off vs per-request vs cross-request:
   identical verdict sequences. *)
let test_cache_scope_equivalence () =
  let verdicts cache =
    match Scenario.setup ~cache () with
    | Error msgs -> Alcotest.fail (String.concat "; " msgs)
    | Ok ctx ->
      Scenario.standard ctx;
      List.map
        (fun (o : Outcome.t) ->
          Outcome.conformance_to_string o.Outcome.conformance)
        (Monitor.outcomes ctx.Scenario.monitor)
  in
  let off = verdicts Obs_cache.Disabled in
  Alcotest.(check bool) "per-request cache preserves verdicts" true
    (verdicts Obs_cache.Per_request = off);
  Alcotest.(check bool) "cross-request cache preserves verdicts" true
    (verdicts Obs_cache.Cross_request = off)

(* Chaos with stale reads plus the cross-request cache: the double-read
   (verified reads) defense re-observes with [fresh:true], so the cache
   must never convert a would-be flip into a wrong definite verdict. *)
let test_cache_under_stale_chaos () =
  let profile =
    match Chaos.find_profile "degraded-cloud" with
    | Some p -> p
    | None -> Alcotest.fail "degraded-cloud profile missing"
  in
  List.iter
    (fun mutant ->
      let faults =
        match mutant with
        | Some (m : Mutant.t) -> m.Mutant.faults
        | None -> Cm_cloudsim.Faults.none
      in
      let outcomes_with cache =
        match
          Scenario.setup ~faults ~chaos:profile ~chaos_seed:99
            ~resilience:Campaign.chaos_policy ~cache ()
        with
        | Error msgs -> Alcotest.fail (String.concat "; " msgs)
        | Ok ctx ->
          Scenario.standard ctx;
          Monitor.outcomes ctx.Scenario.monitor
      in
      let definite outcomes =
        List.filter_map
          (fun (o : Outcome.t) ->
            if Outcome.is_definite o.Outcome.conformance then
              Some
                ( o.Outcome.request.Cm_http.Request.meth,
                  o.Outcome.request.Cm_http.Request.path,
                  Outcome.conformance_to_string o.Outcome.conformance )
            else None)
          outcomes
      in
      let uncached = outcomes_with Obs_cache.Disabled in
      let cached = outcomes_with Obs_cache.Cross_request in
      Alcotest.(check bool)
        "definite verdicts unchanged by the cache under stale chaos" true
        (definite cached = definite uncached);
      match mutant with
      | Some _ ->
        Alcotest.(check bool) "mutant still killed with cache on" true
          (Cm_monitor.Report.violations cached <> [])
      | None ->
        Alcotest.(check bool) "baseline still clean with cache on" true
          (Cm_monitor.Report.violations cached = []))
    [ None; Mutant.find "M1-delete-privilege-escalation" ]

(* ---- invalidation properties of the cache itself ---- *)

let ok_response body =
  Response.ok (Cm_json.Json.obj [ ("v", Cm_json.Json.string body) ])

let test_cache_invalidation_overlap () =
  let cache = Obs_cache.create Obs_cache.Cross_request in
  let remember path = Obs_cache.remember cache ~token:None path (ok_response path) in
  let cached path = Obs_cache.find cache ~token:None path <> None in
  remember "/v3/p/volumes";
  remember "/v3/p/volumes/vol-1";
  remember "/v3/p/volumes/vol-1/snapshots";
  remember "/v3/p/images";
  Obs_cache.invalidate_overlapping cache "/v3/p/volumes/vol-1";
  Alcotest.(check bool) "ancestor listing dropped" false (cached "/v3/p/volumes");
  Alcotest.(check bool) "the resource itself dropped" false
    (cached "/v3/p/volumes/vol-1");
  Alcotest.(check bool) "descendants dropped" false
    (cached "/v3/p/volumes/vol-1/snapshots");
  Alcotest.(check bool) "unrelated subtree kept" true (cached "/v3/p/images");
  (* segment-prefix, not string-prefix *)
  let cache = Obs_cache.create Obs_cache.Cross_request in
  Obs_cache.remember cache ~token:None "/v3/p/volumes/vol-10"
    (ok_response "ten");
  Obs_cache.invalidate_overlapping cache "/v3/p/volumes/vol-1";
  Alcotest.(check bool) "vol-10 is not a segment-prefix match" true
    (Obs_cache.find cache ~token:None "/v3/p/volumes/vol-10" <> None)

let test_cache_definite_answers_only () =
  let cache = Obs_cache.create Obs_cache.Cross_request in
  Obs_cache.remember cache ~token:None "/a"
    (Response.error Cm_http.Status.service_unavailable "transient");
  Alcotest.(check bool) "5xx never pinned" true
    (Obs_cache.find cache ~token:None "/a" = None);
  Obs_cache.remember cache ~token:None "/b"
    (Response.error Cm_http.Status.not_found "gone");
  Alcotest.(check bool) "404 is a definite answer" true
    (Obs_cache.find cache ~token:None "/b" <> None)

let test_cache_token_isolation () =
  let cache = Obs_cache.create Obs_cache.Cross_request in
  Obs_cache.remember cache ~token:(Some "tok-a") "/a" (ok_response "a");
  Alcotest.(check bool) "other token misses" true
    (Obs_cache.find cache ~token:(Some "tok-b") "/a" = None);
  Alcotest.(check bool) "same token hits" true
    (Obs_cache.find cache ~token:(Some "tok-a") "/a" <> None)

let test_per_request_scope_clears () =
  let cache = Obs_cache.create Obs_cache.Per_request in
  Obs_cache.remember cache ~token:None "/a" (ok_response "a");
  Alcotest.(check bool) "hit within the exchange" true
    (Obs_cache.find cache ~token:None "/a" <> None);
  Obs_cache.begin_request cache;
  Alcotest.(check bool) "cleared at the next exchange" true
    (Obs_cache.find cache ~token:None "/a" = None);
  let cross = Obs_cache.create Obs_cache.Cross_request in
  Obs_cache.remember cross ~token:None "/a" (ok_response "a");
  Obs_cache.begin_request cross;
  Alcotest.(check bool) "cross-request survives exchanges" true
    (Obs_cache.find cross ~token:None "/a" <> None)

let () =
  Alcotest.run "cm_parallel"
    [ ( "campaigns",
        [ Alcotest.test_case "mutant kill matrix at 1/2/4 domains" `Slow
            test_campaign_domains;
          Alcotest.test_case "chaos campaign at 1/2 domains" `Slow
            test_chaos_campaign_domains
        ] );
      ( "fuzz",
        [ Alcotest.test_case "500 monitor cases at 1/2/4 domains" `Slow
            test_fuzz_domains
        ] );
      ( "sharding",
        [ Alcotest.test_case "arrival + per-shard sequences" `Slow
            test_shard_determinism
        ] );
      ( "cache-verdicts",
        [ Alcotest.test_case "scope equivalence" `Quick
            test_cache_scope_equivalence;
          Alcotest.test_case "stale chaos not masked" `Slow
            test_cache_under_stale_chaos
        ] );
      ( "cache-properties",
        [ Alcotest.test_case "overlap invalidation" `Quick
            test_cache_invalidation_overlap;
          Alcotest.test_case "definite answers only" `Quick
            test_cache_definite_answers_only;
          Alcotest.test_case "token isolation" `Quick test_cache_token_isolation;
          Alcotest.test_case "per-request scope clears" `Quick
            test_per_request_scope_clears
        ] )
    ]
