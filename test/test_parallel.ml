(* Determinism under parallelism: everything the monitor reports must
   be a pure function of the request stream and the shard count, never
   of how many domains served it.  The suites below re-run the mutation
   campaign, a fuzz slice and a sharded multi-tenant workload at 1, 2
   and 4 domains and require bit-identical verdicts, plus the
   cache-invalidation properties that make the observation cache unable
   to mask real state changes or concurrent interference. *)

module Campaign = Cm_mutation.Campaign
module Mutant = Cm_mutation.Mutant
module Scenario = Cm_mutation.Scenario
module Chaos = Cm_cloudsim.Chaos
module Monitor = Cm_monitor.Monitor
module Obs_cache = Cm_monitor.Obs_cache
module Outcome = Cm_monitor.Outcome
module Response = Cm_http.Response
module Meth = Cm_http.Meth
module SB = Cloudmon.Serve_bench

let domain_counts = [ 1; 2; 4 ]

(* ---- mutation campaign at several domain counts ---- *)

let campaign_projection results =
  List.map
    (fun (r : Campaign.result) ->
      ( (match r.mutant with None -> "baseline" | Some m -> m.Mutant.name),
        r.killed,
        r.exchanges,
        r.first_violation ))
    results

let test_campaign_domains () =
  let runs =
    List.map
      (fun domains ->
        match Campaign.run ~domains Mutant.all with
        | Ok results -> results
        | Error msgs -> Alcotest.fail (String.concat "; " msgs))
      domain_counts
  in
  List.iter
    (fun results ->
      Alcotest.(check bool) "all mutants killed, baseline clean" true
        (Campaign.all_killed results))
    runs;
  match List.map campaign_projection runs with
  | [] -> ()
  | reference :: rest ->
    List.iteri
      (fun i other ->
        Alcotest.(check bool)
          (Printf.sprintf "kill matrix identical at %d domains"
             (List.nth domain_counts (i + 1)))
          true (other = reference))
      rest

let chaos_projection runs =
  List.map
    (fun (r : Campaign.chaos_run) ->
      ( (match r.cr_mutant with None -> "baseline" | Some m -> m.Mutant.name),
        r.cr_killed,
        r.cr_exchanges,
        List.length r.cr_flips,
        r.cr_indefinite ))
    runs

let test_chaos_campaign_domains () =
  let profile =
    match Chaos.find_profile "flaky-network" with
    | Some p -> p
    | None -> Alcotest.fail "flaky-network profile missing"
  in
  let runs =
    List.map
      (fun domains ->
        match Campaign.run_chaos ~domains profile Mutant.all with
        | Ok runs -> runs
        | Error msgs -> Alcotest.fail (String.concat "; " msgs))
      [ 1; 2 ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "no flips, mutants still killed under chaos" true
        (Campaign.chaos_ok r))
    runs;
  match List.map chaos_projection runs with
  | [ reference; two ] ->
    Alcotest.(check bool) "chaos matrix identical at 2 domains" true
      (two = reference)
  | _ -> Alcotest.fail "expected two chaos runs"

(* ---- fuzz slice at several domain counts ---- *)

(* Each fuzz case builds its own cloud + monitor, so cases are
   independent jobs; the verdict of case [i] must not depend on which
   domain ran it.  500 cases of the monitor oracle (the verdict-bearing
   one) without shrinking. *)
let test_fuzz_domains () =
  let oracle =
    match Cm_proptest.Oracle.find "monitor" with
    | Some o -> o
    | None -> Alcotest.fail "monitor oracle missing"
  in
  let cases = 500 in
  let verdict_name index =
    match
      oracle.Cm_proptest.Oracle.run_case ~shrink:false ~seed:42 ~index
        ~size:(2 + (index mod 9))
    with
    | Cm_proptest.Oracle.Pass -> (index, "pass", "")
    | Cm_proptest.Oracle.Fail f ->
      (index, "fail", f.Cm_proptest.Oracle.detail)
  in
  let indices = List.init cases (fun i -> i) in
  let runs =
    List.map
      (fun domains ->
        Cm_core.Domain_pool.map_list ~domains verdict_name indices)
      domain_counts
  in
  match runs with
  | reference :: rest ->
    Alcotest.(check int) "all cases ran" cases (List.length reference);
    List.iter
      (fun (_, verdict, _) ->
        Alcotest.(check string) "fuzz baseline passes" "pass" verdict)
      reference;
    List.iteri
      (fun i other ->
        Alcotest.(check bool)
          (Printf.sprintf "fuzz verdicts identical at %d domains"
             (List.nth domain_counts (i + 1)))
          true (other = reference))
      rest
  | [] -> ()

(* ---- sharded serving: arrival order and per-shard sequences ---- *)

let test_shard_determinism () =
  let spec =
    { SB.projects = 4; requests_per_project = 25; seed = 7 }
  in
  let runs =
    List.map
      (fun domains ->
        match SB.verdict_run spec ~domains with
        | Ok r -> r
        | Error msgs -> Alcotest.fail (String.concat "; " msgs))
      domain_counts
  in
  match runs with
  | (ref_arrival, ref_shards) :: rest ->
    Alcotest.(check int) "expected workload size" 100
      (List.length ref_arrival);
    List.iteri
      (fun i (arrival, shards) ->
        let d = List.nth domain_counts (i + 1) in
        Alcotest.(check bool)
          (Printf.sprintf "arrival-order verdicts identical at %d domains" d)
          true
          (arrival = ref_arrival);
        Alcotest.(check bool)
          (Printf.sprintf "per-shard sequences identical at %d domains" d)
          true
          (shards = ref_shards))
      rest
  | [] -> ()

(* ---- workload mixes over the partitioned store at 1/2/4 domains ---- *)

(* The batch-served mixes are restricted to their shard-closed
   projection — but which requests are shard-closed is the static
   analysis' call, not the test's.  A request stays iff the write-effect
   analysis proved its event tenant-keyed
   ({!Monitor.tenant_keyed_classifier}), or it is a safe method (reads
   have no write effect — the AN013 invariant — so they cannot couple
   shards).  Everything else — token revocations writing shared identity
   state, unmodelled cross-service mutations — is conservatively
   cross-shard and serializes outside the batch determinism contract;
   revocation visibility has its own sequential scenario coverage. *)
let shard_safe_predicate config =
  match Monitor.tenant_keyed_classifier config with
  | Error msgs -> Alcotest.fail (String.concat "; " msgs)
  | Ok tenant_keyed ->
    fun (req : Cm_http.Request.t) ->
      tenant_keyed req || Meth.is_safe req.Cm_http.Request.meth

(* A miniature serve-bench world: one cloud, [projects] tenants over the
   RCU-partitioned store, each tenant replaying the same symbolic mix
   (statically compiled, so the stream is a pure function of the mix and
   the tenant).  Per-tenant request lists are projected onto their
   shard-safe part and interleave round-robin; every domain count must
   produce bit-identical verdicts. *)
let mix_world ~projects trace_for =
  let module Cloud = Cm_cloudsim.Cloud in
  let module Store = Cm_cloudsim.Store in
  let module Identity = Cm_cloudsim.Identity in
  let module Request = Cm_http.Request in
  let module Json = Cm_json.Json in
  let cloud = Cloud.create () in
  let identity = Cloud.identity cloud in
  let login user project_id =
    match Cloud.login cloud ~user ~password:"pw" ~project_id with
    | Ok t -> t
    | Error e -> Alcotest.fail ("mix_world login failed: " ^ e)
  in
  let tenants =
    Array.init projects (fun i ->
        let pid = Printf.sprintf "mix-proj-%02d" i in
        ignore
          (Store.add_project (Cloud.store cloud) ~id:pid ~name:pid
             ~quota_volumes:64 ~quota_gigabytes:100_000 ~quota_images:8 ());
        Identity.set_assignment identity ~project_id:pid
          Cm_rbac.Security_table.cinder_assignment;
        let add name groups =
          Identity.add_user identity ~password:"pw"
            (Cm_rbac.Subject.make name groups)
        in
        add (Printf.sprintf "mx-admin-%d" i) [ "proj_administrator" ];
        add (Printf.sprintf "mx-member-%d" i) [ "service_architect" ];
        let admin = login (Printf.sprintf "mx-admin-%d" i) pid in
        let member = login (Printf.sprintf "mx-member-%d" i) pid in
        let create name =
          let body =
            Json.obj
              [ ( "volume",
                  Json.obj
                    [ ("name", Json.string name); ("size", Json.int 1) ] )
              ]
          in
          let resp =
            Cloud.handle cloud
              (Request.make ~body Meth.POST
                 (Printf.sprintf "/v3/%s/volumes" pid)
              |> Request.with_auth_token member)
          in
          match
            Option.bind resp.Response.body (fun b ->
                Cm_json.Pointer.get [ Key "volume"; Key "id" ] b)
          with
          | Some (Json.String id) -> id
          | Some _ | None -> Alcotest.fail "mix_world volume seeding failed"
        in
        let stable = List.init 4 (fun v -> create (Printf.sprintf "s-%d" v)) in
        let victims = List.init 6 (fun v -> create (Printf.sprintf "v-%d" v)) in
        let st =
          { Cm_workload.Exec.st_project = pid;
            st_token =
              (function
              | Cm_workload.Workload.Admin -> admin
              | Cm_workload.Workload.Member | Cm_workload.Workload.User ->
                member);
            st_stable_volumes = stable;
            st_victim_volumes = victims
          }
        in
        (pid, admin, Array.of_list (Cm_workload.Exec.requests st (trace_for i))))
  in
  let service_token_for =
    let table =
      Array.to_list tenants |> List.map (fun (pid, admin, _) -> (pid, admin))
    in
    fun project -> List.assoc_opt project table
  in
  let config =
    Monitor.default_config ~cache:Obs_cache.Cross_request
      ~service_token:(match tenants.(0) with _, admin, _ -> admin)
      ~service_token_for
      ~security:
        { Cm_contracts.Generate.table = Cm_rbac.Security_table.cinder;
          assignment = Cm_rbac.Security_table.cinder_assignment
        }
      Cm_uml.Cinder_model.resources Cm_uml.Cinder_model.behavior
  in
  let shard_safe = shard_safe_predicate config in
  let per_tenant =
    Array.map
      (fun (_, _, reqs) ->
        Array.of_list (List.filter shard_safe (Array.to_list reqs)))
      tenants
  in
  let steps = Array.fold_left (fun m a -> min m (Array.length a)) max_int per_tenant in
  let reqs =
    List.init (steps * projects) (fun step ->
        per_tenant.(step mod projects).(step / projects))
  in
  (config, Cloud.handle cloud, reqs)

let mix_verdicts ~projects trace_for domains =
  let config, backend, reqs = mix_world ~projects trace_for in
  match Cm_monitor.Shard.create ~shards:projects config backend with
  | Error msgs -> Alcotest.fail (String.concat "; " msgs)
  | Ok pool ->
    let outcomes = Cm_monitor.Shard.handle_all ~domains pool reqs in
    let names arr =
      List.map
        (fun (o : Outcome.t) ->
          Outcome.conformance_to_string o.Outcome.conformance)
        arr
    in
    ( names (Array.to_list outcomes),
      Array.map names (Cm_monitor.Shard.outcomes_by_shard pool) )

let check_mix_deterministic name trace_for =
  let runs =
    List.map (fun d -> mix_verdicts ~projects:4 trace_for d) domain_counts
  in
  match runs with
  | (ref_arrival, ref_shards) :: rest ->
    Alcotest.(check bool)
      (name ^ ": workload is non-trivial")
      true
      (List.length ref_arrival > 0);
    List.iteri
      (fun i (arrival, shards) ->
        let d = List.nth domain_counts (i + 1) in
        Alcotest.(check bool)
          (Printf.sprintf "%s: arrival verdicts identical at %d domains" name d)
          true (arrival = ref_arrival);
        Alcotest.(check bool)
          (Printf.sprintf "%s: per-shard sequences identical at %d domains"
             name d)
          true (shards = ref_shards))
      rest
  | [] -> ()

let test_mix_standard () =
  check_mix_deterministic "standard"
    (fun _ -> Cm_workload.Workload.standard_trace)

let test_mix_cross () =
  check_mix_deterministic "cross"
    (fun _ -> Cm_workload.Workload.cross_trace)

let test_mix_churn_heavy () =
  check_mix_deterministic "churn-heavy" (fun i ->
      Cm_workload.Workload.churn_heavy_trace ~steps:40 ~seed:(11 + i))

(* The projection itself: per symbolic op, is its request kept?  Token
   revocation — a DELETE writing shared identity state from a path that
   binds no project — must be flagged cross-shard {e by the analysis}
   (the old hand-written "drop the revocations" filter), every modelled
   volume operation must be proven tenant-keyed, and unmodelled
   cross-service mutations are conservatively cross-shard while their
   reads stay. *)
let test_shard_safe_projection () =
  let config =
    Monitor.default_config ~service_token:"svc"
      ~security:
        { Cm_contracts.Generate.table = Cm_rbac.Security_table.cinder;
          assignment = Cm_rbac.Security_table.cinder_assignment
        }
      Cm_uml.Cinder_model.resources Cm_uml.Cinder_model.behavior
  in
  let tenant_keyed =
    match Monitor.tenant_keyed_classifier config with
    | Ok f -> f
    | Error msgs -> Alcotest.fail (String.concat "; " msgs)
  in
  let shard_safe = shard_safe_predicate config in
  let st =
    { Cm_workload.Exec.st_project = "proj-a";
      st_token = (fun _ -> "tok");
      st_stable_volumes = [ "sv-0" ];
      st_victim_volumes = [ "vv-0" ]
    }
  in
  let expected (op : Cm_workload.Workload.op) =
    match op with
    (* modelled volume operations: the analysis proves them tenant-keyed *)
    | Cm_workload.Workload.Create_volume _ | Cm_workload.Workload.List_volumes
    | Cm_workload.Workload.Show_volume _ | Cm_workload.Workload.Rename_volume _
    | Cm_workload.Workload.Delete_volume _ ->
      Some true
    (* unmodelled reads: safe methods have no write effect *)
    | Cm_workload.Workload.List_servers | Cm_workload.Workload.Show_server _
    | Cm_workload.Workload.List_images | Cm_workload.Workload.Show_image _ ->
      Some true
    (* unmodelled mutations and the identity write: cross-shard *)
    | Cm_workload.Workload.Volume_action_attach _
    | Cm_workload.Workload.Volume_action_detach _
    | Cm_workload.Workload.Create_server _ | Cm_workload.Workload.Delete_server _
    | Cm_workload.Workload.Attach _ | Cm_workload.Workload.Detach _
    | Cm_workload.Workload.Create_image _
    | Cm_workload.Workload.Set_image_status _
    | Cm_workload.Workload.Delete_image _ | Cm_workload.Workload.Revoke_token _
      ->
      Some false
    (* out-of-band: no request to classify *)
    | Cm_workload.Workload.Relogin _ | Cm_workload.Workload.Churn_project _ ->
      None
  in
  let check_trace name trace =
    List.iter
      (fun (s : Cm_workload.Workload.step) ->
        match
          (Cm_workload.Exec.requests st [ s ], expected s.Cm_workload.Workload.op)
        with
        | [], None -> ()
        | [ req ], Some want ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s shard-safe?" name
               (String.trim (Cm_workload.Workload.render [ s ])))
            want (shard_safe req);
          (* revocations specifically: the *classifier* itself must call
             them cross-shard, not the safe-method escape hatch *)
          (match s.Cm_workload.Workload.op with
           | Cm_workload.Workload.Revoke_token _ ->
             Alcotest.(check bool)
               (name ^ ": revocation flagged cross-shard by the analysis")
               false (tenant_keyed req)
           | _ -> ())
        | reqs, _ ->
          Alcotest.fail
            (Printf.sprintf "%s: unexpected request/expectation shape (%d)"
               name (List.length reqs)))
      trace
  in
  check_trace "standard" Cm_workload.Workload.standard_trace;
  check_trace "cross" Cm_workload.Workload.cross_trace;
  check_trace "churn-heavy"
    (Cm_workload.Workload.churn_heavy_trace ~steps:40 ~seed:11);
  (* and the projection is non-trivial in both directions: something is
     kept, something is dropped *)
  let reqs = Cm_workload.Exec.requests st Cm_workload.Workload.standard_trace in
  let kept = List.filter shard_safe reqs in
  Alcotest.(check bool) "projection keeps work" true (kept <> []);
  Alcotest.(check bool) "projection drops the cross-shard steps" true
    (List.length kept < List.length reqs)

(* ---- RCU snapshots: no torn publishes ---- *)

(* A reader domain hammers [find_project] while a writer adds and
   removes projects.  Snapshot publication is a single [Atomic.set] of
   an immutable map, so every lookup must observe either nothing or a
   fully-formed project — never a half-initialized one. *)
let test_store_torn_publish () =
  let module Store = Cm_cloudsim.Store in
  let store = Store.create () in
  let keys = Array.init 8 (fun i -> Printf.sprintf "torn-%d" i) in
  let stop = Atomic.make false in
  let torn = Atomic.make 0 in
  let reader =
    Domain.spawn (fun () ->
        let reads = ref 0 in
        while not (Atomic.get stop) do
          Array.iter
            (fun key ->
              incr reads;
              match Store.find_project store key with
              | None -> ()
              | Some p ->
                if
                  p.Store.project_id <> key
                  || p.Store.quota_volumes <> 17
                  || p.Store.quota_gigabytes <> 1000
                then Atomic.incr torn)
            keys
        done;
        !reads)
  in
  for round = 1 to 400 do
    Array.iter
      (fun key ->
        if round land 1 = 1 then
          ignore
            (Store.add_project store ~id:key ~name:key ~quota_volumes:17
               ~quota_gigabytes:1000 ())
        else ignore (Store.remove_project store key))
      keys
  done;
  Atomic.set stop true;
  let reads = Domain.join reader in
  Alcotest.(check bool) "reader made progress" true (reads > 0);
  Alcotest.(check int) "no torn project observed" 0 (Atomic.get torn)

(* Same shape for identity: tokens are issued and revoked by a writer
   while a reader validates the latest published token.  [validate]
   must answer [None] or a complete token_info for the right project —
   a revoked token must never resolve. *)
let test_identity_torn_publish () =
  let module Identity = Cm_cloudsim.Identity in
  let identity = Identity.create () in
  Identity.add_user identity ~password:"pw"
    (Cm_rbac.Subject.make "torn-user" [ "proj_administrator" ]);
  Identity.set_assignment identity ~project_id:"torn-proj"
    Cm_rbac.Security_table.cinder_assignment;
  let current = Atomic.make "" in
  let stop = Atomic.make false in
  let torn = Atomic.make 0 in
  let reader =
    Domain.spawn (fun () ->
        let reads = ref 0 in
        while not (Atomic.get stop) do
          let token = Atomic.get current in
          if token <> "" then begin
            incr reads;
            match Identity.validate identity ~token with
            | None -> ()
            | Some info ->
              if
                info.Identity.project_id <> "torn-proj"
                || info.Identity.subject.Cm_rbac.Subject.user_name
                   <> "torn-user"
              then Atomic.incr torn
          end
        done;
        !reads)
  in
  for _ = 1 to 2000 do
    match
      Identity.issue_token identity ~user:"torn-user" ~password:"pw"
        ~project_id:"torn-proj"
    with
    | Error e -> Alcotest.fail ("issue_token failed: " ^ e)
    | Ok token ->
      Atomic.set current token;
      Identity.revoke identity ~token
  done;
  Atomic.set stop true;
  ignore (Domain.join reader);
  Alcotest.(check int) "no torn token_info observed" 0 (Atomic.get torn);
  (* after the dust settles, the last token is revoked and must not
     resolve through the normal read path *)
  Alcotest.(check bool) "revoked token stays dead" true
    (Identity.validate identity ~token:(Atomic.get current) = None)

(* ---- persistent pool: no spawns in the steady state ---- *)

let test_pool_no_steady_state_spawns () =
  let module DP = Cm_core.Domain_pool in
  let pool = DP.create ~size:0 in
  let batch () =
    let r = DP.run ~pool ~domains:3 12 (fun i -> i * i) in
    Alcotest.(check int) "batch result intact" (11 * 11) r.(11)
  in
  batch ();
  (* first batch may grow the pool *)
  Alcotest.(check int) "pool grew to domains-1 workers" 2 (DP.size pool);
  let spawned_before = DP.spawn_count () in
  for _ = 1 to 25 do
    batch ()
  done;
  Alcotest.(check int) "steady-state batches spawn no domains"
    spawned_before (DP.spawn_count ());
  DP.shutdown pool;
  Alcotest.(check int) "shutdown empties the pool" 0 (DP.size pool)

(* The shard layer serves batches on the shared pool: repeated
   [handle_all] calls at the same domain count must not spawn. *)
let test_shard_serving_reuses_pool () =
  let config, backend, reqs =
    mix_world ~projects:2 (fun _ -> Cm_workload.Workload.standard_trace)
  in
  match Cm_monitor.Shard.create ~shards:2 config backend with
  | Error msgs -> Alcotest.fail (String.concat "; " msgs)
  | Ok pool ->
    ignore (Cm_monitor.Shard.handle_all ~domains:2 pool reqs);
    let spawned_before = Cm_core.Domain_pool.spawn_count () in
    for _ = 1 to 5 do
      ignore (Cm_monitor.Shard.handle_all ~domains:2 pool reqs)
    done;
    Alcotest.(check int) "steady-state serving spawns no domains"
      spawned_before
      (Cm_core.Domain_pool.spawn_count ())

(* ---- worker failures are collected, not dropped ---- *)

exception Boom of int

let test_single_failure_reraised () =
  let module DP = Cm_core.Domain_pool in
  let run () =
    ignore
      (DP.run ~domains:2 8 (fun i -> if i = 5 then raise (Boom i) else i))
  in
  (match run () with
   | () -> Alcotest.fail "expected Boom"
   | exception Boom 5 -> ()
   | exception e ->
     Alcotest.fail ("expected Boom 5, got " ^ Printexc.to_string e))

let test_multiple_failures_aggregated () =
  let module DP = Cm_core.Domain_pool in
  let attempt domains =
    match
      DP.run ~domains 8 (fun i -> if i >= 5 then raise (Boom i) else i)
    with
    | _ -> Alcotest.fail "expected Task_failures"
    | exception DP.Task_failures { first; failed; total } ->
      Alcotest.(check int) "every failed task counted" 3 failed;
      Alcotest.(check int) "total is the batch size" 8 total;
      (match first with
       | Boom 5 -> ()
       | e ->
         Alcotest.fail
           ("first should be the lowest failed index: " ^ Printexc.to_string e))
  in
  (* both the spawning path and the pooled path must aggregate *)
  attempt 2;
  let pool = DP.create ~size:0 in
  (match
     DP.run ~pool ~domains:3 8 (fun i -> if i >= 5 then raise (Boom i) else i)
   with
   | _ -> Alcotest.fail "expected Task_failures (pooled)"
   | exception DP.Task_failures { failed; total; _ } ->
     Alcotest.(check int) "pooled path counts failures too" 3 failed;
     Alcotest.(check int) "pooled total" 8 total);
  (* a failing batch must not poison the pool for the next batch *)
  let r = DP.run ~pool ~domains:3 6 (fun i -> i + 1) in
  Alcotest.(check int) "pool still serves after failures" 6 r.(5);
  DP.shutdown pool

(* ---- the monitored read path takes zero locks ---- *)

let test_get_path_lock_free () =
  let spec = { SB.projects = 2; requests_per_project = 30; seed = 21 } in
  match SB.run ~spec ~domains_list:[ 1 ] () with
  | Error msgs -> Alcotest.fail (String.concat "; " msgs)
  | Ok report ->
    (match SB.check_contention report with
     | Ok () -> ()
     | Error msg -> Alcotest.fail msg);
    Alcotest.(check bool) "gate metric is exactly zero" true
      (report.SB.rp_get_locks_per_req = 0.)

(* ---- the cache cannot change what the monitor concludes ---- *)

(* Same standard workload, cache off vs per-request vs cross-request:
   identical verdict sequences. *)
let test_cache_scope_equivalence () =
  let verdicts cache =
    match Scenario.setup ~cache () with
    | Error msgs -> Alcotest.fail (String.concat "; " msgs)
    | Ok ctx ->
      Scenario.standard ctx;
      List.map
        (fun (o : Outcome.t) ->
          Outcome.conformance_to_string o.Outcome.conformance)
        (Monitor.outcomes ctx.Scenario.monitor)
  in
  let off = verdicts Obs_cache.Disabled in
  Alcotest.(check bool) "per-request cache preserves verdicts" true
    (verdicts Obs_cache.Per_request = off);
  Alcotest.(check bool) "cross-request cache preserves verdicts" true
    (verdicts Obs_cache.Cross_request = off)

(* Chaos with stale reads plus the cross-request cache: the double-read
   (verified reads) defense re-observes with [fresh:true], so the cache
   must never convert a would-be flip into a wrong definite verdict. *)
let test_cache_under_stale_chaos () =
  let profile =
    match Chaos.find_profile "degraded-cloud" with
    | Some p -> p
    | None -> Alcotest.fail "degraded-cloud profile missing"
  in
  List.iter
    (fun mutant ->
      let faults =
        match mutant with
        | Some (m : Mutant.t) -> m.Mutant.faults
        | None -> Cm_cloudsim.Faults.none
      in
      let outcomes_with cache =
        match
          Scenario.setup ~faults ~chaos:profile ~chaos_seed:99
            ~resilience:Campaign.chaos_policy ~cache ()
        with
        | Error msgs -> Alcotest.fail (String.concat "; " msgs)
        | Ok ctx ->
          Scenario.standard ctx;
          Monitor.outcomes ctx.Scenario.monitor
      in
      let definite outcomes =
        List.filter_map
          (fun (o : Outcome.t) ->
            if Outcome.is_definite o.Outcome.conformance then
              Some
                ( o.Outcome.request.Cm_http.Request.meth,
                  o.Outcome.request.Cm_http.Request.path,
                  Outcome.conformance_to_string o.Outcome.conformance )
            else None)
          outcomes
      in
      let uncached = outcomes_with Obs_cache.Disabled in
      let cached = outcomes_with Obs_cache.Cross_request in
      Alcotest.(check bool)
        "definite verdicts unchanged by the cache under stale chaos" true
        (definite cached = definite uncached);
      match mutant with
      | Some _ ->
        Alcotest.(check bool) "mutant still killed with cache on" true
          (Cm_monitor.Report.violations cached <> [])
      | None ->
        Alcotest.(check bool) "baseline still clean with cache on" true
          (Cm_monitor.Report.violations cached = []))
    [ None; Mutant.find "M1-delete-privilege-escalation" ]

(* ---- invalidation properties of the cache itself ---- *)

let ok_response body =
  Response.ok (Cm_json.Json.obj [ ("v", Cm_json.Json.string body) ])

let test_cache_invalidation_overlap () =
  let cache = Obs_cache.create Obs_cache.Cross_request in
  let remember path = Obs_cache.remember cache ~token:None path (ok_response path) in
  let cached path = Obs_cache.find cache ~token:None path <> None in
  remember "/v3/p/volumes";
  remember "/v3/p/volumes/vol-1";
  remember "/v3/p/volumes/vol-1/snapshots";
  remember "/v3/p/images";
  Obs_cache.invalidate_overlapping cache "/v3/p/volumes/vol-1";
  Alcotest.(check bool) "ancestor listing dropped" false (cached "/v3/p/volumes");
  Alcotest.(check bool) "the resource itself dropped" false
    (cached "/v3/p/volumes/vol-1");
  Alcotest.(check bool) "descendants dropped" false
    (cached "/v3/p/volumes/vol-1/snapshots");
  Alcotest.(check bool) "unrelated subtree kept" true (cached "/v3/p/images");
  (* segment-prefix, not string-prefix *)
  let cache = Obs_cache.create Obs_cache.Cross_request in
  Obs_cache.remember cache ~token:None "/v3/p/volumes/vol-10"
    (ok_response "ten");
  Obs_cache.invalidate_overlapping cache "/v3/p/volumes/vol-1";
  Alcotest.(check bool) "vol-10 is not a segment-prefix match" true
    (Obs_cache.find cache ~token:None "/v3/p/volumes/vol-10" <> None)

let test_cache_definite_answers_only () =
  let cache = Obs_cache.create Obs_cache.Cross_request in
  Obs_cache.remember cache ~token:None "/a"
    (Response.error Cm_http.Status.service_unavailable "transient");
  Alcotest.(check bool) "5xx never pinned" true
    (Obs_cache.find cache ~token:None "/a" = None);
  Obs_cache.remember cache ~token:None "/b"
    (Response.error Cm_http.Status.not_found "gone");
  Alcotest.(check bool) "404 is a definite answer" true
    (Obs_cache.find cache ~token:None "/b" <> None)

let test_cache_token_isolation () =
  let cache = Obs_cache.create Obs_cache.Cross_request in
  Obs_cache.remember cache ~token:(Some "tok-a") "/a" (ok_response "a");
  Alcotest.(check bool) "other token misses" true
    (Obs_cache.find cache ~token:(Some "tok-b") "/a" = None);
  Alcotest.(check bool) "same token hits" true
    (Obs_cache.find cache ~token:(Some "tok-a") "/a" <> None)

let test_per_request_scope_clears () =
  let cache = Obs_cache.create Obs_cache.Per_request in
  Obs_cache.remember cache ~token:None "/a" (ok_response "a");
  Alcotest.(check bool) "hit within the exchange" true
    (Obs_cache.find cache ~token:None "/a" <> None);
  Obs_cache.begin_request cache;
  Alcotest.(check bool) "cleared at the next exchange" true
    (Obs_cache.find cache ~token:None "/a" = None);
  let cross = Obs_cache.create Obs_cache.Cross_request in
  Obs_cache.remember cross ~token:None "/a" (ok_response "a");
  Obs_cache.begin_request cross;
  Alcotest.(check bool) "cross-request survives exchanges" true
    (Obs_cache.find cross ~token:None "/a" <> None)

let () =
  Alcotest.run "cm_parallel"
    [ ( "campaigns",
        [ Alcotest.test_case "mutant kill matrix at 1/2/4 domains" `Slow
            test_campaign_domains;
          Alcotest.test_case "chaos campaign at 1/2 domains" `Slow
            test_chaos_campaign_domains
        ] );
      ( "fuzz",
        [ Alcotest.test_case "500 monitor cases at 1/2/4 domains" `Slow
            test_fuzz_domains
        ] );
      ( "sharding",
        [ Alcotest.test_case "arrival + per-shard sequences" `Slow
            test_shard_determinism
        ] );
      ( "mixes",
        [ Alcotest.test_case "standard mix at 1/2/4 domains" `Slow
            test_mix_standard;
          Alcotest.test_case "cross mix at 1/2/4 domains" `Slow
            test_mix_cross;
          Alcotest.test_case "churn-heavy mix at 1/2/4 domains" `Slow
            test_mix_churn_heavy;
          Alcotest.test_case "shard-safe projection is analysis-derived" `Quick
            test_shard_safe_projection
        ] );
      ( "rcu",
        [ Alcotest.test_case "store snapshots never tear" `Slow
            test_store_torn_publish;
          Alcotest.test_case "identity snapshots never tear" `Slow
            test_identity_torn_publish
        ] );
      ( "pool",
        [ Alcotest.test_case "no steady-state spawns" `Quick
            test_pool_no_steady_state_spawns;
          Alcotest.test_case "shard serving reuses the pool" `Slow
            test_shard_serving_reuses_pool;
          Alcotest.test_case "single failure re-raised" `Quick
            test_single_failure_reraised;
          Alcotest.test_case "multiple failures aggregated" `Quick
            test_multiple_failures_aggregated
        ] );
      ( "contention",
        [ Alcotest.test_case "monitored GET path takes zero locks" `Slow
            test_get_path_lock_free
        ] );
      ( "cache-verdicts",
        [ Alcotest.test_case "scope equivalence" `Quick
            test_cache_scope_equivalence;
          Alcotest.test_case "stale chaos not masked" `Slow
            test_cache_under_stale_chaos
        ] );
      ( "cache-properties",
        [ Alcotest.test_case "overlap invalidation" `Quick
            test_cache_invalidation_overlap;
          Alcotest.test_case "definite answers only" `Quick
            test_cache_definite_answers_only;
          Alcotest.test_case "token isolation" `Quick test_cache_token_isolation;
          Alcotest.test_case "per-request scope clears" `Quick
            test_per_request_scope_clears
        ] )
    ]
