(* Tests for the workload DSL and the cross-service scenario suite.

   The determinism contract — same (mix, seed) => bit-identical trace —
   is checked over 1000 cases; the cross-service contracts are checked
   by a full kill matrix over the extended mutant catalog under both
   evaluation modes, several domain counts, and every chaos profile. *)

module Workload = Cm_workload.Workload
module Exec = Cm_workload.Exec
module Mutant = Cm_mutation.Mutant
module Campaign = Cm_mutation.Campaign
module Scenario = Cm_mutation.Scenario
module Monitor = Cm_monitor.Monitor
module Outcome = Cm_monitor.Outcome
module Runtime = Cm_contracts.Runtime
module Chaos = Cm_cloudsim.Chaos

let conformances ctx =
  List.map
    (fun (o : Outcome.t) -> Outcome.conformance_to_string o.Outcome.conformance)
    (Monitor.outcomes ctx.Scenario.monitor)

let violations ctx =
  Cm_monitor.Report.violations (Monitor.outcomes ctx.Scenario.monitor)

let require_ctx = function
  | Ok ctx -> ctx
  | Error msgs -> Alcotest.fail (String.concat "; " msgs)

(* ---- the determinism contract ---- *)

let cases = 1000

let dsl_tests =
  [ Alcotest.test_case
      (Printf.sprintf "same (mix, seed) => bit-identical trace (%d cases)" cases)
      `Quick (fun () ->
        let renders =
          Array.init cases (fun case ->
              let mix = List.nth Workload.mixes (case mod 5) in
              let seed = case in
              let first = Workload.render (mix.Workload.compile ~seed) in
              let again = Workload.render (mix.Workload.compile ~seed) in
              Alcotest.(check string)
                (Printf.sprintf "%s/%d recompiles identically"
                   mix.Workload.mix_name seed)
                first again;
              first)
        in
        (* recompile in reverse order: compilation must not depend on
           hidden global state *)
        for case = cases - 1 downto 0 do
          let mix = List.nth Workload.mixes (case mod 5) in
          Alcotest.(check string)
            (Printf.sprintf "%s/%d order-independent" mix.Workload.mix_name case)
            renders.(case)
            (Workload.render (mix.Workload.compile ~seed:case))
        done);
    Alcotest.test_case "fingerprint witnesses render equality" `Quick (fun () ->
        List.iter
          (fun (mix : Workload.mix) ->
            let a = mix.Workload.compile ~seed:7 in
            let b = mix.Workload.compile ~seed:7 in
            Alcotest.(check string) mix.Workload.mix_name
              (Workload.fingerprint a) (Workload.fingerprint b))
          Workload.mixes);
    Alcotest.test_case "seed changes seeded mixes" `Quick (fun () ->
        List.iter
          (fun (mix : Workload.mix) ->
            Alcotest.(check bool) mix.Workload.mix_name false
              (String.equal
                 (Workload.render (mix.Workload.compile ~seed:0))
                 (Workload.render (mix.Workload.compile ~seed:1))))
          [ Workload.read_heavy; Workload.churn_heavy; Workload.adversarial ]);
    Alcotest.test_case "scripted mixes ignore the seed" `Quick (fun () ->
        List.iter
          (fun (mix : Workload.mix) ->
            Alcotest.(check string) mix.Workload.mix_name
              (Workload.render (mix.Workload.compile ~seed:0))
              (Workload.render (mix.Workload.compile ~seed:42)))
          [ Workload.standard; Workload.cross ]);
    Alcotest.test_case "mix catalog" `Quick (fun () ->
        Alcotest.(check int) "five mixes" 5 (List.length Workload.mixes);
        let names = List.map (fun m -> m.Workload.mix_name) Workload.mixes in
        Alcotest.(check int) "unique names" (List.length names)
          (List.length (List.sort_uniq String.compare names));
        Alcotest.(check bool) "find read-heavy" true
          (Workload.find "read-heavy" <> None);
        Alcotest.(check bool) "find unknown" true (Workload.find "nope" = None));
    Alcotest.test_case "cross trace extends the standard trace" `Quick
      (fun () ->
        let std = Workload.standard_trace and cross = Workload.cross_trace in
        Alcotest.(check bool) "longer" true
          (List.length cross > List.length std);
        let prefix = List.filteri (fun i _ -> i < List.length std) cross in
        Alcotest.(check string) "standard is a prefix" (Workload.render std)
          (Workload.render prefix));
    Alcotest.test_case "static compilation is deterministic" `Quick (fun () ->
        let st =
          { Exec.st_project = "myProject";
            st_token = (fun _ -> "tok");
            st_stable_volumes = [ "v1"; "v2" ];
            st_victim_volumes = [ "d1" ]
          }
        in
        let trace = Workload.read_heavy_trace ~steps:64 ~victims:1 ~seed:3 in
        let render reqs =
          String.concat "\n"
            (List.map
               (fun (r : Cm_http.Request.t) ->
                 Cm_http.Meth.to_string r.meth ^ " " ^ r.path)
               reqs)
        in
        Alcotest.(check string) "same requests"
          (render (Exec.requests st trace))
          (render (Exec.requests st trace)))
  ]

(* ---- cross-service baseline ---- *)

let baseline_tests =
  [ Alcotest.test_case "cross baseline is violation-free" `Quick (fun () ->
        match Campaign.run_cross_one None with
        | Error msgs -> Alcotest.fail (String.concat "; " msgs)
        | Ok result ->
          Alcotest.(check bool) "clean" false result.Campaign.killed;
          Alcotest.(check bool) "ran the full workload" true
            (result.Campaign.exchanges > 40));
    Alcotest.test_case "cross baseline covers the 2.x and 3.x requirements"
      `Quick (fun () ->
        let ctx = require_ctx (Scenario.setup_cross ()) in
        Scenario.cross ctx;
        let coverage = Monitor.coverage ctx.Scenario.monitor in
        List.iter
          (fun req_id ->
            match List.assoc_opt req_id coverage with
            | Some n -> Alcotest.(check bool) ("SecReq " ^ req_id) true (n > 0)
            | None -> Alcotest.fail ("SecReq " ^ req_id ^ " not covered"))
          [ "1.1"; "1.2"; "1.3"; "1.4"; "2.1"; "2.2"; "2.3"; "2.4";
            "3.1"; "3.2"; "3.5"; "3.6"
          ]);
    Alcotest.test_case "seeded mixes run violation-free on a correct cloud"
      `Slow (fun () ->
        List.iter
          (fun (mix : Workload.mix) ->
            let ctx = require_ctx (Scenario.setup_cross ()) in
            let issued =
              Scenario.run_trace ctx (mix.Workload.compile ~seed:7)
            in
            Alcotest.(check bool)
              (mix.Workload.mix_name ^ " issued requests")
              true (issued > 0);
            Alcotest.(check int)
              (mix.Workload.mix_name ^ " violation-free")
              0
              (List.length (violations ctx)))
          [ Workload.read_heavy; Workload.churn_heavy; Workload.adversarial ])
  ]

(* ---- verdict determinism across evaluation modes and domains ---- *)

let determinism_tests =
  [ Alcotest.test_case
      "cross verdict sequence identical under Full_eval and Incremental"
      `Quick (fun () ->
        let run eval =
          let ctx = require_ctx (Scenario.setup_cross ~eval ()) in
          Scenario.cross ctx;
          conformances ctx
        in
        Alcotest.(check (list string))
          "same verdicts" (run Runtime.Full_eval) (run Runtime.Incremental));
    Alcotest.test_case
      "mutant verdict sequence identical under Full_eval and Incremental"
      `Quick (fun () ->
        let faults = (List.hd Mutant.cross_mutants).Mutant.faults in
        let run eval =
          let ctx = require_ctx (Scenario.setup_cross ~eval ~faults ()) in
          Scenario.cross ctx;
          conformances ctx
        in
        Alcotest.(check (list string))
          "same verdicts" (run Runtime.Full_eval) (run Runtime.Incremental));
    Alcotest.test_case "kill matrix identical at 1, 2 and 4 domains" `Slow
      (fun () ->
        let summarise results =
          List.map
            (fun (r : Campaign.result) ->
              ( (match r.Campaign.mutant with
                 | None -> "baseline"
                 | Some m -> m.Mutant.name),
                r.Campaign.killed,
                r.Campaign.exchanges,
                Option.value ~default:"-" r.Campaign.first_violation ))
            results
        in
        let at domains =
          match Campaign.run_cross ~domains Mutant.all_extended with
          | Ok results -> summarise results
          | Error msgs -> Alcotest.fail (String.concat "; " msgs)
        in
        let reference = at 1 in
        List.iter
          (fun domains ->
            List.iter2
              (fun (n1, k1, e1, v1) (n2, k2, e2, v2) ->
                let label = Printf.sprintf "%s @ %d domains" n1 domains in
                Alcotest.(check string) label n1 n2;
                Alcotest.(check bool) (label ^ " killed") k1 k2;
                Alcotest.(check int) (label ^ " exchanges") e1 e2;
                Alcotest.(check string) (label ^ " verdict") v1 v2)
              reference (at domains))
          [ 2; 4 ])
  ]

(* ---- the kill matrix ---- *)

let kill_tests =
  [ Alcotest.test_case "cross mutants are in the catalog" `Quick (fun () ->
        Alcotest.(check int) "eight" 8 (List.length Mutant.cross_mutants);
        Alcotest.(check int) "extended = all + cross"
          (List.length Mutant.all + 8)
          (List.length Mutant.all_extended);
        let names = List.map (fun m -> m.Mutant.name) Mutant.all_extended in
        Alcotest.(check int) "unique names" (List.length names)
          (List.length (List.sort_uniq String.compare names));
        Alcotest.(check bool) "find X7" true
          (Mutant.find "X7-zombie-token" <> None));
    Alcotest.test_case
      "full kill matrix: every mutant killed, baseline clean (Full_eval)"
      `Slow (fun () ->
        match Campaign.run_cross ~eval:Runtime.Full_eval Mutant.all_extended with
        | Error msgs -> Alcotest.fail (String.concat "; " msgs)
        | Ok results ->
          if not (Campaign.all_killed results) then
            Alcotest.fail (Campaign.kill_matrix results));
    Alcotest.test_case
      "full kill matrix: every mutant killed, baseline clean (Incremental)"
      `Slow (fun () ->
        match
          Campaign.run_cross ~eval:Runtime.Incremental Mutant.all_extended
        with
        | Error msgs -> Alcotest.fail (String.concat "; " msgs)
        | Ok results ->
          if not (Campaign.all_killed results) then
            Alcotest.fail (Campaign.kill_matrix results))
  ]

(* ---- chaos: detection power and verdict integrity ---- *)

let chaos_tests =
  [ Alcotest.test_case
      "cross mutants killed without verdict flips under every chaos profile"
      `Slow (fun () ->
        List.iter
          (fun profile ->
            match Campaign.run_chaos_cross profile Mutant.cross_mutants with
            | Error msgs -> Alcotest.fail (String.concat "; " msgs)
            | Ok runs ->
              if not (Campaign.chaos_ok runs) then
                Alcotest.fail
                  (profile.Chaos.name ^ ":\n" ^ Campaign.chaos_matrix runs))
          Chaos.profiles)
  ]

let () =
  Alcotest.run "workload"
    [ ("dsl", dsl_tests);
      ("baseline", baseline_tests);
      ("determinism", determinism_tests);
      ("kill-matrix", kill_tests);
      ("chaos", chaos_tests)
    ]
