(* Tests for the durable event journal and crash recovery.

   The framing layer is checked exhaustively: the journal of a real
   recorded run is truncated at EVERY byte offset and corrupted at
   EVERY byte offset, and the scanner must return exactly the frames
   that are completely and correctly present.  End-to-end, the same
   truncation sweep runs through full recovery: at every offset the
   recovered verdict stream must be exactly-once per journaled request,
   with every durably-concluded exchange reproduced verbatim.  On top
   of that: crash-point injection at every site, journal-replay
   bit-identity for all five workload mixes under both evaluation
   modes, and a bounded run of the [journal] fuzz oracle. *)

module Device = Cm_journal.Device
module Record = Cm_journal.Record
module Event = Cm_journal.Event
module Journal = Cm_journal.Journal
module Jmonitor = Cm_journal.Jmonitor
module Scenario = Cm_mutation.Scenario
module Campaign = Cm_mutation.Campaign
module Mutant = Cm_mutation.Mutant
module Workload = Cm_workload.Workload
module Runtime = Cm_contracts.Runtime
module Clock = Cm_core.Clock

let require = function
  | Ok v -> v
  | Error msgs -> Alcotest.fail (String.concat "; " msgs)

let record_standard () =
  let ctx = require (Scenario.setup_journaled ()) in
  let _ = Scenario.jrun_trace ctx Workload.standard_trace in
  Jmonitor.sync ctx.Scenario.jmon;
  ctx

(* ---- record framing ---- *)

let fresh_device () =
  let clock = Clock.create () in
  Device.create ~clock ~seed:11 ()

let record_tests =
  [ Alcotest.test_case "frame/scan round-trip" `Quick (fun () ->
        let payloads = [ ""; "x"; String.make 300 'a'; "{\"k\":[1,2]}" ] in
        let data = String.concat "" (List.map Record.frame payloads) in
        let scanned, clean = Record.scan data in
        Alcotest.(check (list string)) "payloads" payloads scanned;
        Alcotest.(check int) "clean offset" (String.length data) clean);
    Alcotest.test_case "truncation at every byte offset" `Quick (fun () ->
        let payloads = [ "alpha"; ""; "gamma-gamma"; String.make 64 'z' ] in
        let frames = List.map Record.frame payloads in
        let data = String.concat "" frames in
        (* frame start offsets *)
        let starts, _ =
          List.fold_left
            (fun (acc, off) f -> (off :: acc, off + String.length f))
            ([], 0) frames
        in
        let starts = List.rev starts in
        for n = 0 to String.length data do
          let scanned, clean = Record.scan (String.sub data 0 n) in
          (* exactly the frames wholly inside the first [n] bytes *)
          let expect =
            List.filteri
              (fun i _ ->
                List.nth starts i + String.length (List.nth frames i) <= n)
              payloads
          in
          Alcotest.(check (list string))
            (Printf.sprintf "payloads at cut %d" n)
            expect scanned;
          let expect_clean =
            List.fold_left2
              (fun acc start f ->
                if start + String.length f <= n then start + String.length f
                else acc)
              0 starts frames
          in
          Alcotest.(check int)
            (Printf.sprintf "clean offset at cut %d" n)
            expect_clean clean
        done);
    Alcotest.test_case "corruption at every byte offset" `Quick (fun () ->
        let payloads = [ "alpha"; "beta!"; String.make 48 'q'; "" ] in
        let frames = List.map Record.frame payloads in
        let data = String.concat "" frames in
        let starts, _ =
          List.fold_left
            (fun (acc, off) f -> (off :: acc, off + String.length f))
            ([], 0) frames
        in
        let starts = List.rev starts in
        for n = 0 to String.length data - 1 do
          let corrupted = Bytes.of_string data in
          Bytes.set corrupted n
            (Char.chr (Char.code (Bytes.get corrupted n) lxor 0x41));
          let scanned, _clean = Record.scan (Bytes.to_string corrupted) in
          (* the frames strictly before the corrupted one, exactly *)
          let expect =
            List.filteri
              (fun i _ ->
                List.nth starts i + String.length (List.nth frames i) <= n)
              payloads
          in
          Alcotest.(check (list string))
            (Printf.sprintf "payloads with byte %d corrupted" n)
            expect scanned
        done);
    Alcotest.test_case "crc32 detects single-byte damage" `Quick (fun () ->
        let p = "the quick brown fox" in
        let c = Record.crc32 p in
        String.iteri
          (fun i ch ->
            let b = Bytes.of_string p in
            Bytes.set b i (Char.chr (Char.code ch lxor 1));
            if Record.crc32 (Bytes.to_string b) = c then
              Alcotest.failf "collision flipping byte %d" i)
          p)
  ]

(* ---- event serialization ---- *)

let event_tests =
  [ Alcotest.test_case "every recorded event round-trips" `Quick (fun () ->
        let ctx = record_standard () in
        let events, clean = Journal.scan ctx.Scenario.jdevice in
        Alcotest.(check bool) "journal non-trivial" true (List.length events > 20);
        Alcotest.(check int)
          "journal clean" (Device.size ctx.Scenario.jdevice) clean;
        List.iter
          (fun e ->
            let enc = Event.encode e in
            match Event.decode enc with
            | None -> Alcotest.failf "does not decode: %s" enc
            | Some e' ->
              Alcotest.(check string) "re-encodes identically" enc
                (Event.encode e'))
          events;
        (* the standard trace exercises Request/Pre/Verdict; Mark is
           covered by a constructed event *)
        let has p = List.exists p events in
        Alcotest.(check bool) "has Request" true
          (has (function Event.Request _ -> true | _ -> false));
        Alcotest.(check bool) "has Pre" true
          (has (function Event.Pre _ -> true | _ -> false));
        Alcotest.(check bool) "has Verdict" true
          (has (function Event.Verdict _ -> true | _ -> false));
        let mark = Event.Mark { seq = 99; note = "relogin:alice" } in
        (match Event.decode (Event.encode mark) with
         | Some (Event.Mark { seq = 99; note = "relogin:alice" }) -> ()
         | _ -> Alcotest.fail "Mark does not round-trip"));
    Alcotest.test_case "decode is total on garbage" `Quick (fun () ->
        List.iter
          (fun s ->
            match Event.decode s with
            | None -> ()
            | Some _ -> Alcotest.failf "garbage decoded: %s" s)
          [ ""; "{}"; "[\"zzz\"]"; "[\"ver\"]"; "not json"; "[\"req\",1]" ])
  ]

(* ---- device semantics ---- *)

let device_tests =
  [ Alcotest.test_case "sync moves the durability watermark" `Quick (fun () ->
        let d = fresh_device () in
        Device.append d "abc";
        Alcotest.(check int) "unsynced" 0 (Device.durable_size d);
        Device.sync d;
        Alcotest.(check int) "synced" 3 (Device.durable_size d);
        let before = Device.syncs d in
        Device.sync d;
        Alcotest.(check int) "empty sync is a no-op" before (Device.syncs d));
    Alcotest.test_case "crash keeps synced bytes, tears the tail" `Quick
      (fun () ->
        (* over many seeds: the survivor is always a prefix, always at
           least the durable bytes, and the torn draw actually varies *)
        let lengths = Hashtbl.create 8 in
        for seed = 0 to 63 do
          let clock = Clock.create () in
          let d = Device.create ~clock ~seed () in
          Device.append d "abc";
          Device.sync d;
          Device.append d "defgh";
          Device.crash d;
          let c = Device.contents d in
          Alcotest.(check bool)
            "prefix of the pre-crash bytes" true
            (String.length c <= 8
            && String.sub "abcdefgh" 0 (String.length c) = c);
          Alcotest.(check bool) "synced bytes survive" true
            (String.length c >= 3);
          Hashtbl.replace lengths (String.length c) ()
        done;
        Alcotest.(check bool) "torn lengths vary across seeds" true
          (Hashtbl.length lengths > 2));
    Alcotest.test_case "truncate discards and caps the watermark" `Quick
      (fun () ->
        let d = fresh_device () in
        Device.append d "abcdef";
        Device.sync d;
        Device.truncate d 2;
        Alcotest.(check int) "size" 2 (Device.size d);
        Alcotest.(check bool) "watermark capped" true
          (Device.durable_size d <= 2))
  ]

(* ---- torn-tail recovery sweep ---- *)

(* One recorded run; then the journal image is cut at every byte
   offset and mounted on a fresh device, recovering after each cut
   (each recovery gets its own device — a recovery truncates the torn
   tail and appends its own verdicts, so reusing one device would let
   iterations contaminate each other).  At every offset:

   - recovery must succeed,
   - the recovered verdicts are exactly one per journaled request
     (exactly-once, no duplicates, no inventions),
   - every exchange whose verdict was durable is reproduced
     bit-identically to the crash-free run.

   Exchanges concluded during recovery (resumed from a durable
   pre-image, or re-handled from the bare request) are covered by the
   exactly-once checks but not line-compared: this sweep cuts the
   journal of a run that went on to completion, so post-state
   re-observation sees effects of later steps — unlike a real crash,
   where the cloud stops with the journal.  The crash-injection tests
   below cover the real model, where resumed verdicts do match the
   crash-free run verbatim. *)

let torn_tests =
  [ Alcotest.test_case "recovery at every truncation offset" `Slow (fun () ->
        let ctx = record_standard () in
        let clean_by_seq =
          List.map
            (fun (v : Event.verdict_record) ->
              (v.Event.v_seq, Event.verdict_line v))
            (Jmonitor.verdicts ctx.Scenario.jmon)
        in
        let image = Device.contents ctx.Scenario.jdevice in
        let total = String.length image in
        for n = total downto 0 do
          let device =
            Device.create
              ~contents:(String.sub image 0 n)
              ~clock:ctx.Scenario.jclock ~seed:3 ()
          in
          let events, _ = Journal.scan device in
          let req_seqs =
            List.filter_map
              (function Event.Request { seq; _ } -> Some seq | _ -> None)
              events
          in
          let concluded_seqs =
            List.filter_map
              (function
                | Event.Verdict v -> Some v.Event.v_seq
                | _ -> None)
              events
          in
          let jm =
            match Jmonitor.recover device ctx.Scenario.jmake with
            | Error msgs ->
              Alcotest.failf "cut %d: recovery failed: %s" n
                (String.concat "; " msgs)
            | Ok (jm, _) -> jm
          in
          let recovered = Jmonitor.verdicts jm in
          let seqs = List.map (fun v -> v.Event.v_seq) recovered in
          Alcotest.(check (list int))
            (Printf.sprintf "cut %d: exactly one verdict per request" n)
            (List.sort compare req_seqs)
            (List.sort compare seqs);
          List.iter
            (fun (v : Event.verdict_record) ->
              if List.mem v.Event.v_seq concluded_seqs then
                match List.assoc_opt v.Event.v_seq clean_by_seq with
                | None ->
                  Alcotest.failf "cut %d: seq %d not in the clean run" n
                    v.Event.v_seq
                | Some line ->
                  Alcotest.(check string)
                    (Printf.sprintf "cut %d: seq %d verbatim" n v.Event.v_seq)
                    line (Event.verdict_line v))
            recovered
        done)
  ]

(* ---- crash-point injection ---- *)

let crash_tests =
  [ Alcotest.test_case "every site: crash, recover, exactly-once" `Slow
      (fun () ->
        List.iter
          (fun site ->
            let run =
              match
                Campaign.run_crash_one ~cross:false ~index:0 ~site ~nth:2
                  None None
              with
              | Ok r -> r
              | Error msgs ->
                Alcotest.failf "%s: %s" site (String.concat "; " msgs)
            in
            Alcotest.(check bool)
              (site ^ ": crash fired") true run.Campaign.xr_fired;
            if not (Campaign.crash_ok [ run ]) then
              Alcotest.failf "%s:\n%s" site (Campaign.crash_matrix [ run ]))
          Campaign.crash_sites);
    Alcotest.test_case "a mutant stays killed across the crash" `Slow
      (fun () ->
        let mutant =
          match Mutant.find "M1-delete-privilege-escalation" with
          | Some m -> m
          | None -> Alcotest.fail "mutant M1 not in the catalog"
        in
        let run =
          match
            Campaign.run_crash_one ~index:0 ~site:"monitor.after-forward"
              ~nth:2 None (Some mutant)
          with
          | Ok r -> r
          | Error msgs -> Alcotest.fail (String.concat "; " msgs)
        in
        Alcotest.(check bool) "fired" true run.Campaign.xr_fired;
        Alcotest.(check bool) "killed" true run.Campaign.xr_killed;
        if not (Campaign.crash_ok [ run ]) then
          Alcotest.fail (Campaign.crash_matrix [ run ]))
  ]

(* ---- replay bit-identity ---- *)

let replay_tests =
  [ Alcotest.test_case "all five mixes replay bit-identically" `Slow (fun () ->
        List.iter
          (fun mix ->
            let trace = mix.Workload.compile ~seed:42 in
            let ctx = require (Scenario.setup_journaled ~cross:true ()) in
            let _ = Scenario.jrun_trace ctx trace in
            Jmonitor.sync ctx.Scenario.jmon;
            let events = Scenario.journal_events ctx in
            let recorded = Jmonitor.journaled_verdict_lines events in
            Alcotest.(check bool)
              (mix.Workload.mix_name ^ ": verdicts recorded") true
              (List.length recorded > 0);
            List.iter
              (fun (eval, label) ->
                let lines =
                  require (Scenario.replay_journal ~cross:true ~eval events)
                in
                Alcotest.(check (list string))
                  (Printf.sprintf "%s under %s" mix.Workload.mix_name label)
                  recorded lines)
              [ (Runtime.Full_eval, "full"); (Runtime.Incremental, "incremental")
              ])
          Workload.mixes)
  ]

(* ---- the fuzz oracle, bounded ---- *)

let oracle_tests =
  [ Alcotest.test_case "journal oracle passes a bounded run" `Slow (fun () ->
        let oracle = Cm_proptest.Oracle.journal in
        for index = 0 to 4 do
          match
            oracle.Cm_proptest.Oracle.run_case ~shrink:false ~seed:42 ~index
              ~size:1
          with
          | Cm_proptest.Oracle.Pass -> ()
          | Cm_proptest.Oracle.Fail f ->
            Alcotest.failf "case %d: %s (%s)" index
              f.Cm_proptest.Oracle.detail f.Cm_proptest.Oracle.repr
        done)
  ]

let () =
  Alcotest.run "journal"
    [ ("record", record_tests);
      ("event", event_tests);
      ("device", device_tests);
      ("torn-tail", torn_tests);
      ("crash", crash_tests);
      ("replay", replay_tests);
      ("oracle", oracle_tests)
    ]
