(* Tests for the HTTP substrate: methods, statuses, headers, requests,
   URI templates, router. *)

module Meth = Cm_http.Meth
module Status = Cm_http.Status
module Headers = Cm_http.Headers
module Request = Cm_http.Request
module Response = Cm_http.Response
module Uri_template = Cm_http.Uri_template
module Router = Cm_http.Router
module Json = Cm_json.Json

let meth_tests =
  [ Alcotest.test_case "round-trip names" `Quick (fun () ->
        List.iter
          (fun m ->
            Alcotest.(check bool)
              (Meth.to_string m) true
              (Meth.of_string (Meth.to_string m) = Some m))
          Meth.all);
    Alcotest.test_case "case-insensitive parse" `Quick (fun () ->
        Alcotest.(check bool) "delete" true (Meth.of_string "delete" = Some Meth.DELETE);
        Alcotest.(check bool) "unknown" true (Meth.of_string "FROB" = None));
    Alcotest.test_case "safety and idempotence" `Quick (fun () ->
        Alcotest.(check bool) "GET safe" true (Meth.is_safe Meth.GET);
        Alcotest.(check bool) "POST unsafe" false (Meth.is_safe Meth.POST);
        Alcotest.(check bool) "DELETE idempotent" true (Meth.is_idempotent Meth.DELETE);
        Alcotest.(check bool) "POST not idempotent" false (Meth.is_idempotent Meth.POST))
  ]

let status_tests =
  [ Alcotest.test_case "classes" `Quick (fun () ->
        Alcotest.(check bool) "200" true (Status.is_success Status.ok);
        Alcotest.(check bool) "204" true (Status.is_success Status.no_content);
        Alcotest.(check bool) "403" true (Status.is_client_error Status.forbidden);
        Alcotest.(check bool) "500" true (Status.is_server_error Status.internal_server_error);
        Alcotest.(check bool) "403 not success" false (Status.is_success Status.forbidden));
    Alcotest.test_case "reason phrases" `Quick (fun () ->
        Alcotest.(check string) "404" "Not Found" (Status.reason_phrase Status.not_found);
        Alcotest.(check string) "413" "Request Entity Too Large"
          (Status.reason_phrase Status.request_entity_too_large);
        Alcotest.(check string) "unknown" "Status 418" (Status.reason_phrase 418))
  ]

let headers_tests =
  [ Alcotest.test_case "case-insensitive get" `Quick (fun () ->
        let h = Headers.of_list [ ("X-Auth-Token", "t1") ] in
        Alcotest.(check (option string)) "lower" (Some "t1") (Headers.get "x-auth-token" h);
        Alcotest.(check (option string)) "upper" (Some "t1") (Headers.get "X-AUTH-TOKEN" h));
    Alcotest.test_case "replace drops duplicates" `Quick (fun () ->
        let h =
          Headers.empty |> Headers.add "Accept" "a" |> Headers.add "Accept" "b"
          |> Headers.replace "Accept" "c"
        in
        Alcotest.(check int) "one left" 1 (List.length (Headers.to_list h));
        Alcotest.(check (option string)) "value" (Some "c") (Headers.get "accept" h));
    Alcotest.test_case "auth token helpers" `Quick (fun () ->
        let h = Headers.with_auth_token "tok" Headers.empty in
        Alcotest.(check (option string)) "token" (Some "tok") (Headers.auth_token h))
  ]

let request_tests =
  [ Alcotest.test_case "query string parsed" `Quick (fun () ->
        let req = Request.make Meth.GET "/v3/p/volumes?limit=10&marker=v1&flag" in
        Alcotest.(check string) "path" "/v3/p/volumes" req.Request.path;
        Alcotest.(check (option string)) "limit" (Some "10") (Request.query_param "limit" req);
        Alcotest.(check (option string)) "flag" (Some "") (Request.query_param "flag" req));
    Alcotest.test_case "path segments" `Quick (fun () ->
        let req = Request.make Meth.GET "/v3//p/volumes/" in
        Alcotest.(check (list string)) "segments" [ "v3"; "p"; "volumes" ]
          (Request.path_segments req));
    Alcotest.test_case "to_curl mirrors the paper's usage" `Quick (fun () ->
        let req =
          Request.make Meth.DELETE "/cmonitor/volumes/4"
          |> Request.with_auth_token "tok"
        in
        let curl = Request.to_curl req in
        Alcotest.(check bool) "has -X DELETE" true
          (Astring_contains.contains curl "-X DELETE");
        Alcotest.(check bool) "has path" true
          (Astring_contains.contains curl "/cmonitor/volumes/4"))
  ]

let response_tests =
  [ Alcotest.test_case "error body shape" `Quick (fun () ->
        let resp = Response.error Status.forbidden "no way" in
        Alcotest.(check (option string)) "message" (Some "no way")
          (Response.error_message resp);
        Alcotest.(check bool) "not success" false (Response.is_success resp));
    Alcotest.test_case "constructors" `Quick (fun () ->
        Alcotest.(check int) "ok" 200 (Response.ok Json.Null).Response.status;
        Alcotest.(check int) "created" 201 (Response.created Json.Null).Response.status;
        Alcotest.(check int) "no_content" 204 Response.no_content.Response.status)
  ]

let template_tests =
  [ Alcotest.test_case "parse and to_string" `Quick (fun () ->
        let t = Uri_template.parse_exn "/v3/{project_id}/volumes/{volume_id}" in
        Alcotest.(check string) "printed" "/v3/{project_id}/volumes/{volume_id}"
          (Uri_template.to_string t);
        Alcotest.(check (list string)) "params" [ "project_id"; "volume_id" ]
          (Uri_template.param_names t));
    Alcotest.test_case "bad templates rejected" `Quick (fun () ->
        Alcotest.(check bool) "empty name" true
          (Result.is_error (Uri_template.parse "/a/{}"));
        Alcotest.(check bool) "unbalanced" true
          (Result.is_error (Uri_template.parse "/a/{x"));
        Alcotest.(check bool) "nested" true
          (Result.is_error (Uri_template.parse "/a/{{x}}")));
    Alcotest.test_case "matching binds parameters" `Quick (fun () ->
        let t = Uri_template.parse_exn "/v3/{project_id}/volumes/{volume_id}" in
        (match Uri_template.matches t "/v3/myProject/volumes/vol-7" with
         | Some bindings ->
           Alcotest.(check (option string)) "project" (Some "myProject")
             (List.assoc_opt "project_id" bindings);
           Alcotest.(check (option string)) "volume" (Some "vol-7")
             (List.assoc_opt "volume_id" bindings)
         | None -> Alcotest.fail "no match");
        Alcotest.(check bool) "wrong literal" true
          (Uri_template.matches t "/v2/p/volumes/v" = None);
        Alcotest.(check bool) "wrong arity" true
          (Uri_template.matches t "/v3/p/volumes" = None);
        Alcotest.(check bool) "trailing slash ok" true
          (Uri_template.matches t "/v3/p/volumes/v/" <> None));
    Alcotest.test_case "expand" `Quick (fun () ->
        let t = Uri_template.parse_exn "/v3/{p}/volumes" in
        Alcotest.(check string) "expanded" "/v3/x/volumes"
          (Uri_template.expand_exn t [ ("p", "x") ]);
        Alcotest.(check bool) "missing binding" true
          (Result.is_error (Uri_template.expand t [])));
    Alcotest.test_case "specificity counts literals" `Quick (fun () ->
        let a = Uri_template.parse_exn "/v3/{p}/volumes/detail" in
        let b = Uri_template.parse_exn "/v3/{p}/volumes/{id}" in
        Alcotest.(check bool) "a > b" true
          (Uri_template.specificity a > Uri_template.specificity b));
    Alcotest.test_case "empty segments collapse on both sides" `Quick
      (fun () ->
        (* split_path drops empty segments, so duplicate and leading or
           trailing slashes normalize away — in the template and in the
           matched path alike. *)
        let t = Uri_template.parse_exn "//v3//{p}///volumes/" in
        Alcotest.(check string) "normalized print" "/v3/{p}/volumes"
          (Uri_template.to_string t);
        Alcotest.(check bool) "doubled slashes in path match" true
          (Uri_template.matches t "/v3//myProject///volumes" <> None);
        Alcotest.(check bool) "root collapses to the empty template" true
          (Uri_template.matches (Uri_template.parse_exn "///") "/" <> None));
    Alcotest.test_case "trailing slash on either side" `Quick (fun () ->
        let t = Uri_template.parse_exn "/v3/{p}/volumes/" in
        Alcotest.(check bool) "path without trailing slash" true
          (Uri_template.matches t "/v3/p1/volumes" <> None);
        Alcotest.(check bool) "path with trailing slash" true
          (Uri_template.matches t "/v3/p1/volumes/" <> None);
        Alcotest.(check bool) "extra segment still rejected" true
          (Uri_template.matches t "/v3/p1/volumes/x" = None));
    Alcotest.test_case "duplicate parameter names: last match wins lookup"
      `Quick (fun () ->
        (* The parser does not reject a repeated name; matching binds
           each occurrence and assoc finds the first (leftmost). *)
        let t = Uri_template.parse_exn "/pair/{id}/{id}" in
        Alcotest.(check (list string)) "both occurrences reported"
          [ "id"; "id" ]
          (Uri_template.param_names t);
        match Uri_template.matches t "/pair/a/b" with
        | None -> Alcotest.fail "no match"
        | Some bindings ->
          Alcotest.(check (option string)) "leftmost binding" (Some "a")
            (List.assoc_opt "id" bindings);
          Alcotest.(check int) "two bindings recorded" 2
            (List.length bindings));
    Alcotest.test_case "percent-encoded ids are matched verbatim" `Quick
      (fun () ->
        (* No percent-decoding happens anywhere in the template layer:
           an encoded id binds as the raw octets, and an encoded slash
           does NOT split a segment. *)
        let t = Uri_template.parse_exn "/v3/{p}/volumes/{id}" in
        match Uri_template.matches t "/v3/my%20Project/volumes/vol%2F7" with
        | None -> Alcotest.fail "no match"
        | Some bindings ->
          Alcotest.(check (option string)) "space stays encoded"
            (Some "my%20Project")
            (List.assoc_opt "p" bindings);
          Alcotest.(check (option string)) "slash stays encoded"
            (Some "vol%2F7")
            (List.assoc_opt "id" bindings))
  ]

let dummy_handler body : Router.handler =
 fun _req _bindings -> Response.ok (Json.string body)

let router_tests =
  [ Alcotest.test_case "dispatch to most specific" `Quick (fun () ->
        let router =
          Router.of_routes
            [ ("/v3/{p}/volumes/{id}", Meth.GET, dummy_handler "item");
              ("/v3/{p}/volumes/detail", Meth.GET, dummy_handler "detail")
            ]
        in
        let get path =
          (Router.dispatch router (Request.make Meth.GET path)).Response.body
        in
        Alcotest.(check bool) "detail wins" true
          (get "/v3/p/volumes/detail" = Some (Json.string "detail"));
        Alcotest.(check bool) "item" true
          (get "/v3/p/volumes/vol-1" = Some (Json.string "item")));
    Alcotest.test_case "404 and 405" `Quick (fun () ->
        let router =
          Router.of_routes [ ("/v3/{p}/volumes", Meth.GET, dummy_handler "l") ]
        in
        let resp404 = Router.dispatch router (Request.make Meth.GET "/nope") in
        Alcotest.(check int) "404" 404 resp404.Response.status;
        let resp405 =
          Router.dispatch router (Request.make Meth.DELETE "/v3/p/volumes")
        in
        Alcotest.(check int) "405" 405 resp405.Response.status;
        Alcotest.(check (option string)) "Allow header" (Some "GET")
          (Headers.get "allow" resp405.Response.headers));
    Alcotest.test_case "handler exceptions become 500" `Quick (fun () ->
        let router =
          Router.of_routes
            [ ("/boom", Meth.GET, fun _ _ -> failwith "kaboom") ]
        in
        let resp = Router.dispatch router (Request.make Meth.GET "/boom") in
        Alcotest.(check int) "500" 500 resp.Response.status);
    Alcotest.test_case "allowed_methods" `Quick (fun () ->
        let router =
          Router.of_routes
            [ ("/r", Meth.GET, dummy_handler "a");
              ("/r", Meth.POST, dummy_handler "b")
            ]
        in
        Alcotest.(check int) "two" 2
          (List.length (Router.allowed_methods router "/r")))
  ]

(* property: expand then match recovers the bindings *)
let gen_bindings =
  QCheck2.Gen.(
    list_size (int_range 1 4)
      (pair
         (string_size ~gen:(char_range 'a' 'z') (int_range 1 6))
         (string_size ~gen:(char_range 'a' 'z') (int_range 1 6))))

let prop_expand_match =
  QCheck2.Test.make ~count:200 ~name:"expand |> matches recovers bindings"
    gen_bindings (fun bindings ->
      (* distinct parameter names *)
      let bindings =
        let rec dedup seen = function
          | [] -> []
          | (k, v) :: rest ->
            if List.mem k seen then dedup seen rest
            else (k, v) :: dedup (k :: seen) rest
        in
        dedup [] bindings
      in
      let template_text =
        "/api/"
        ^ String.concat "/" (List.map (fun (k, _) -> "{" ^ k ^ "}") bindings)
      in
      let template = Uri_template.parse_exn template_text in
      match Uri_template.expand template bindings with
      | Error _ -> false
      | Ok path ->
        (match Uri_template.matches template path with
         | Some recovered ->
           List.sort compare recovered = List.sort compare bindings
         | None -> false))

(* property: the router answers every request with a well-formed status,
   never an exception, whatever the path *)
let prop_router_total =
  let router =
    Router.of_routes
      [ ("/v3/{p}/volumes", Meth.GET, dummy_handler "l");
        ("/v3/{p}/volumes", Meth.POST, dummy_handler "c");
        ("/v3/{p}/volumes/{id}", Meth.GET, dummy_handler "s");
        ("/v3/{p}/volumes/{id}", Meth.DELETE, dummy_handler "d")
      ]
  in
  let gen_path =
    QCheck2.Gen.(
      let* segments =
        list_size (int_range 0 6)
          (oneof
             [ oneofl [ "v3"; "volumes"; "p"; "vol-1"; ""; "." ];
               string_size ~gen:(char_range 'a' 'z') (int_range 0 5)
             ])
      in
      return ("/" ^ String.concat "/" segments))
  in
  QCheck2.Test.make ~count:300 ~name:"router is total over arbitrary paths"
    QCheck2.Gen.(pair gen_path (oneofl Meth.all))
    (fun (path, meth) ->
      let resp = Router.dispatch router (Request.make meth path) in
      resp.Response.status >= 200 && resp.Response.status <= 599)

let properties =
  [ QCheck_alcotest.to_alcotest prop_expand_match;
    QCheck_alcotest.to_alcotest prop_router_total
  ]

let () =
  Alcotest.run "cm_http"
    [ ("meth", meth_tests);
      ("status", status_tests);
      ("headers", headers_tests);
      ("request", request_tests);
      ("response", response_tests);
      ("uri_template", template_tests);
      ("router", router_tests);
      ("properties", properties)
    ]
