(* The property-based fuzzing subsystem: corpus replay first (every
   checked-in regression must stay fixed), then the harness's own
   guarantees — PRNG determinism, generator well-typedness, shrinker
   behaviour — then bounded fuzz budgets over all four differential
   oracles. *)

module Rng = Cm_proptest.Rng
module Gen = Cm_proptest.Gen
module Shrink = Cm_proptest.Shrink
module Ocl_gen = Cm_proptest.Ocl_gen
module Trace_gen = Cm_proptest.Trace_gen
module Corpus = Cm_proptest.Corpus
module Oracle = Cm_proptest.Oracle
module Runner = Cm_proptest.Runner
module Typecheck = Cm_ocl.Typecheck
module Pretty = Cm_ocl.Pretty

let corpus_path = "corpus/regressions.fuzz"

let corpus_tests =
  [ Alcotest.test_case "every checked-in regression replays clean" `Quick
      (fun () ->
        match Corpus.load corpus_path with
        | Error msg -> Alcotest.failf "corpus does not parse: %s" msg
        | Ok entries ->
          Alcotest.(check bool) "corpus is not empty" true (entries <> []);
          let failing = Runner.replay_corpus Oracle.all entries in
          List.iter
            (fun ((e : Corpus.entry), detail) ->
              Printf.printf "CORPUS FAIL %s case %d: %s\n" e.oracle e.index
                detail)
            failing;
          Alcotest.(check int) "no corpus entry fails" 0 (List.length failing));
    Alcotest.test_case "entry line round-trip" `Quick (fun () ->
        let entry =
          Corpus.make ~oracle:"engine" ~seed:42 ~index:7 ~size:5
            [ ("expr", "pre(true) implies pre(true)"); ("note", "kleene") ]
        in
        match Corpus.of_line (Corpus.to_line entry) with
        | Ok reread -> Alcotest.(check bool) "identical" true (reread = entry)
        | Error msg -> Alcotest.fail msg)
  ]

let rng_tests =
  [ Alcotest.test_case "same seed, same stream" `Quick (fun () ->
        let draw rng = List.init 32 (fun _ -> Rng.bits64 rng) in
        Alcotest.(check bool) "identical outputs" true
          (draw (Rng.of_seed 42) = draw (Rng.of_seed 42));
        Alcotest.(check bool) "different seeds differ" false
          (draw (Rng.of_seed 42) = draw (Rng.of_seed 43)));
    Alcotest.test_case "case streams are replayable in isolation" `Quick
      (fun () ->
        (* Case i's stream must not depend on whether cases 0..i-1 were
           generated — it is derived directly from (seed, i). *)
        let direct = Rng.bits64 (Rng.case ~seed:7 500) in
        let after_others =
          for i = 0 to 499 do
            ignore (Rng.bits64 (Rng.case ~seed:7 i))
          done;
          Rng.bits64 (Rng.case ~seed:7 500)
        in
        Alcotest.(check bool) "identical" true (direct = after_others);
        Alcotest.(check bool) "cases decorrelated" false
          (Rng.bits64 (Rng.case ~seed:7 0) = Rng.bits64 (Rng.case ~seed:7 1)));
    Alcotest.test_case "split streams are independent" `Quick (fun () ->
        let rng = Rng.of_seed 1 in
        let a = Rng.split rng in
        let b = Rng.split rng in
        let b_first = Rng.bits64 (Rng.copy b) in
        (* Consuming a lot from [a] must not perturb [b]. *)
        for _ = 1 to 100 do
          ignore (Rng.bits64 a)
        done;
        Alcotest.(check bool) "b unaffected by a" true
          (Rng.bits64 b = b_first));
    Alcotest.test_case "bounded draws stay in range" `Quick (fun () ->
        let rng = Rng.of_seed 3 in
        for _ = 1 to 1000 do
          let n = Rng.int rng 7 in
          if n < 0 || n >= 7 then Alcotest.failf "int out of range: %d" n;
          let m = Rng.int_in rng (-3) 3 in
          if m < -3 || m > 3 then Alcotest.failf "int_in out of range: %d" m
        done;
        (* All residues are reachable. *)
        let seen = Array.make 7 false in
        for _ = 1 to 500 do
          seen.(Rng.int rng 7) <- true
        done;
        Alcotest.(check bool) "full support" true
          (Array.for_all Fun.id seen))
  ]

let gen_tests =
  [ Alcotest.test_case "generated expressions are well-typed" `Quick (fun () ->
        for index = 0 to 199 do
          let rng = Rng.case ~seed:11 index in
          let size = 2 + (index mod 10) in
          let expr = Ocl_gen.gen_bool rng ~size in
          if not (Typecheck.well_typed Ocl_gen.signature expr) then
            Alcotest.failf "ill-typed at case %d: %s" index
              (Pretty.to_string expr)
        done);
    Alcotest.test_case "generation is a pure function of the stream" `Quick
      (fun () ->
        let gen i = Ocl_gen.gen_bool (Rng.case ~seed:5 i) ~size:8 in
        for i = 0 to 49 do
          Alcotest.(check string)
            (Printf.sprintf "case %d" i)
            (Pretty.to_string (gen i))
            (Pretty.to_string (gen i))
        done);
    Alcotest.test_case "trace serialization round-trips" `Quick (fun () ->
        for index = 0 to 49 do
          let rng = Rng.case ~seed:13 index in
          let noise = Trace_gen.gen_noise rng ~size:10 in
          let trace =
            Trace_gen.with_probe ~mutant:"M1-delete-privilege-escalation" rng
              noise
          in
          match Trace_gen.of_string (Trace_gen.to_string trace) with
          | Ok reread ->
            Alcotest.(check bool)
              (Printf.sprintf "case %d" index)
              true (reread = trace)
          | Error msg -> Alcotest.fail msg
        done)
  ]

let shrink_tests =
  [ Alcotest.test_case "list minimization reaches a single element" `Quick
      (fun () ->
        let input = [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
        let still_fails l = List.mem 5 l in
        let shrunk, steps =
          Shrink.minimize ~candidates:Shrink.shrink_list ~still_fails input
        in
        Alcotest.(check (list int)) "minimal witness" [ 5 ] shrunk;
        Alcotest.(check bool) "made progress" true (steps > 0));
    Alcotest.test_case "budget caps evaluations" `Quick (fun () ->
        let evals = ref 0 in
        let still_fails _ =
          incr evals;
          true
        in
        let candidates x = [ x ] in
        ignore
          (Shrink.minimize ~budget:25 ~candidates ~still_fails [ 1; 2; 3 ]);
        Alcotest.(check bool) "bounded" true (!evals <= 25));
    Alcotest.test_case "expression shrinking preserves the property" `Quick
      (fun () ->
        let open Cm_ocl.Ast in
        let rec mentions_x = function
          | Var "x" -> true
          | Bool_lit _ | Int_lit _ | String_lit _ | Null_lit | Var _ -> false
          | Nav (e, _) | At_pre e | Coll (e, _) | Unop (_, e) -> mentions_x e
          | Member (a, _, b) | Count (a, b) | Binop (_, a, b) ->
            mentions_x a || mentions_x b
          | Iter (e, _, _, body) -> mentions_x e || mentions_x body
        in
        let expr =
          Binop
            ( And,
              Binop (Eq, Var "x", Int_lit 1),
              Binop (Or, Bool_lit true, Bool_lit false) )
        in
        let shrunk, _ =
          Shrink.minimize ~candidates:Ocl_gen.shrink_expr
            ~still_fails:mentions_x expr
        in
        Alcotest.(check bool) "still mentions x" true (mentions_x shrunk);
        Alcotest.(check bool) "strictly smaller" true
          (String.length (Pretty.to_string shrunk)
          < String.length (Pretty.to_string expr)))
  ]

let check_clean name report =
  List.iter
    (fun (f : Oracle.failure) ->
      Printf.printf "FUZZ FAIL %s case %d: %s\n  %s\n" f.oracle f.index
        f.detail f.repr)
    report.Runner.failures;
  Alcotest.(check int) (name ^ " has no failures") 0
    (List.length report.Runner.failures)

let oracle_tests =
  [ Alcotest.test_case "engine differential: 300 cases" `Quick (fun () ->
        check_clean "engine"
          (Runner.run ~oracles:[ Oracle.engine ] ~seed:42 ~cases:300 ()));
    Alcotest.test_case "rbac differential: 200 cases" `Quick (fun () ->
        check_clean "rbac"
          (Runner.run ~oracles:[ Oracle.rbac ] ~seed:42 ~cases:200 ()));
    Alcotest.test_case "codegen round-trip: 200 cases" `Quick (fun () ->
        check_clean "codegen"
          (Runner.run ~oracles:[ Oracle.codegen ] ~seed:42 ~cases:200 ()));
    Alcotest.test_case "monitor differential + mutants: 25 cases" `Quick
      (fun () ->
        check_clean "monitor"
          (Runner.run ~oracles:[ Oracle.monitor ] ~seed:42 ~cases:25 ()))
  ]

let runner_tests =
  [ Alcotest.test_case "budget allocation is exact" `Quick (fun () ->
        List.iter
          (fun cases ->
            let plan = Runner.allocate ~cases Oracle.all in
            let total = List.fold_left (fun acc (_, n) -> acc + n) 0 plan in
            Alcotest.(check int)
              (Printf.sprintf "sums to %d" cases)
              cases total)
          [ 0; 1; 7; 100; 2000 ]);
    Alcotest.test_case "report is deterministic" `Quick (fun () ->
        let render () =
          Runner.render (Runner.run ~seed:9 ~cases:120 ())
        in
        Alcotest.(check string) "identical renders" (render ()) (render ()))
  ]

let () =
  Alcotest.run "cm_proptest"
    [ ("corpus-replay", corpus_tests);
      ("rng", rng_tests);
      ("generators", gen_tests);
      ("shrinking", shrink_tests);
      ("oracles", oracle_tests);
      ("runner", runner_tests)
    ]
