(* Tests for the UML metamodel: multiplicities, resource/behavior models,
   path derivation, validation, XMI round-trips. *)

module M = Cm_uml.Multiplicity
module RM = Cm_uml.Resource_model
module BM = Cm_uml.Behavior_model
module Paths = Cm_uml.Paths
module Validate = Cm_uml.Validate
module Xmi = Cm_uml.Xmi
module Cinder = Cm_uml.Cinder_model
module Meth = Cm_http.Meth

let multiplicity_tests =
  [ Alcotest.test_case "to_string" `Quick (fun () ->
        Alcotest.(check string) "1" "1" (M.to_string M.exactly_one);
        Alcotest.(check string) "0..1" "0..1" (M.to_string M.optional);
        Alcotest.(check string) "0..*" "0..*" (M.to_string M.many);
        Alcotest.(check string) "1..*" "1..*" (M.to_string M.at_least_one));
    Alcotest.test_case "of_string round-trips" `Quick (fun () ->
        List.iter
          (fun m ->
            match M.of_string (M.to_string m) with
            | Ok parsed -> Alcotest.(check bool) (M.to_string m) true (M.equal m parsed)
            | Error e -> Alcotest.fail e)
          [ M.exactly_one; M.optional; M.many; M.at_least_one ]);
    Alcotest.test_case "invalid ranges rejected" `Quick (fun () ->
        Alcotest.(check bool) "negative" true (Result.is_error (M.make (-1) None));
        Alcotest.(check bool) "upper<lower" true (Result.is_error (M.make 3 (Some 1)));
        Alcotest.(check bool) "bad text" true (Result.is_error (M.of_string "x..y")));
    Alcotest.test_case "admits" `Quick (fun () ->
        Alcotest.(check bool) "1 admits 1" true (M.admits M.exactly_one 1);
        Alcotest.(check bool) "1 rejects 2" false (M.admits M.exactly_one 2);
        Alcotest.(check bool) "many admits 100" true (M.admits M.many 100));
    Alcotest.test_case "is_collection" `Quick (fun () ->
        Alcotest.(check bool) "many" true (M.is_collection M.many);
        Alcotest.(check bool) "one" false (M.is_collection M.exactly_one))
  ]

let cinder_tests =
  [ Alcotest.test_case "cinder models are well-formed" `Quick (fun () ->
        let issues = Validate.all Cinder.resources [ Cinder.behavior ] in
        if issues <> [] then
          Alcotest.failf "issues: %a"
            Fmt.(list ~sep:(any "; ") Cm_lint.Lint.pp_finding)
            issues);
    Alcotest.test_case "derived URI templates match the paper" `Quick (fun () ->
        match Paths.derive Cinder.resources with
        | Error msg -> Alcotest.fail msg
        | Ok entries ->
          let find resource item =
            List.find_opt
              (fun (e : Paths.entry) -> e.resource = resource && e.is_item = item)
              entries
            |> Option.map (fun (e : Paths.entry) ->
                   Cm_http.Uri_template.to_string e.template)
          in
          Alcotest.(check (option string)) "volumes collection"
            (Some "/v3/{project_id}/volumes")
            (find "Volumes" false);
          Alcotest.(check (option string)) "volume item"
            (Some "/v3/{project_id}/volumes/{volume_id}")
            (find "volume" true);
          Alcotest.(check (option string)) "quota singleton"
            (Some "/v3/{project_id}/quota_sets")
            (find "quota_sets" true);
          Alcotest.(check (option string)) "project item"
            (Some "/v3/{project_id}")
            (find "project" true);
          Alcotest.(check (option string)) "projects root" (Some "/v3")
            (find "Projects" false));
    Alcotest.test_case "triggers of the behavioral model" `Quick (fun () ->
        let triggers = BM.triggers Cinder.behavior in
        Alcotest.(check int) "five distinct triggers" 5 (List.length triggers);
        Alcotest.(check bool) "DELETE(volume) present" true
          (List.exists
             (fun (t : BM.trigger) ->
               t.meth = Meth.DELETE && t.resource = "volume")
             triggers));
    Alcotest.test_case "DELETE fires three transitions (Listing 1)" `Quick
      (fun () ->
        let delete = { BM.meth = Meth.DELETE; resource = "volume" } in
        Alcotest.(check int) "three" 3
          (List.length (BM.transitions_for delete Cinder.behavior)));
    Alcotest.test_case "methods_on" `Quick (fun () ->
        Alcotest.(check int) "volume has 4 methods" 4
          (List.length (BM.methods_on "volume" Cinder.behavior));
        Alcotest.(check int) "Volumes has 1" 1
          (List.length (BM.methods_on "Volumes" Cinder.behavior)));
    Alcotest.test_case "signature types the guards" `Quick (fun () ->
        let signature = Cinder.signature in
        List.iter
          (fun text ->
            let expr = Cm_ocl.Ocl_parser.parse_exn text in
            Alcotest.(check bool) text true
              (Cm_ocl.Typecheck.well_typed signature expr))
          [ "project.volumes->size() < quota_sets.volumes";
            "volume.status <> 'in-use'";
            "user.groups->includes('proj_administrator')"
          ])
  ]

let broken_model_tests =
  [ Alcotest.test_case "duplicate resource names" `Quick (fun () ->
        let model =
          { Cinder.resources with
            RM.resources =
              Cinder.resources.RM.resources @ [ RM.collection "Volumes" ]
          }
        in
        Alcotest.(check bool) "flagged" true (Validate.resource_model model <> []));
    Alcotest.test_case "dangling association" `Quick (fun () ->
        let model =
          { Cinder.resources with
            RM.associations =
              RM.assoc ~role:"ghost" "project" "Ghost"
              :: Cinder.resources.RM.associations
          }
        in
        Alcotest.(check bool) "flagged" true (Validate.resource_model model <> []));
    Alcotest.test_case "root must be a collection" `Quick (fun () ->
        let model = { Cinder.resources with RM.root = "project" } in
        Alcotest.(check bool) "flagged" true (Validate.resource_model model <> []));
    Alcotest.test_case "unknown initial state" `Quick (fun () ->
        let machine = { Cinder.behavior with BM.initial = "nowhere" } in
        Alcotest.(check bool) "flagged" true
          (Validate.behavior_model Cinder.resources machine <> []));
    Alcotest.test_case "ill-typed guard" `Quick (fun () ->
        let bad_guard = Cm_ocl.Ocl_parser.parse_exn "volume.nonexistent = 1" in
        let machine =
          { Cinder.behavior with
            BM.transitions =
              [ BM.transition ~guard:bad_guard ~source:Cinder.s_no_volume
                  ~target:Cinder.s_no_volume Meth.GET "volume"
              ]
          }
        in
        Alcotest.(check bool) "flagged" true
          (Validate.behavior_model Cinder.resources machine <> []));
    Alcotest.test_case "guard must not use pre()" `Quick (fun () ->
        let pre_guard =
          Cm_ocl.Ocl_parser.parse_exn "pre(project.volumes->size()) = 0"
        in
        let machine =
          { Cinder.behavior with
            BM.transitions =
              [ BM.transition ~guard:pre_guard ~source:Cinder.s_no_volume
                  ~target:Cinder.s_no_volume Meth.GET "volume"
              ]
          }
        in
        Alcotest.(check bool) "flagged" true
          (List.exists
             (fun (i : Validate.issue) ->
               Astring_contains.contains i.message "pre-state")
             (Validate.behavior_model Cinder.resources machine)));
    Alcotest.test_case "unreachable state" `Quick (fun () ->
        let machine =
          { Cinder.behavior with
            BM.states =
              Cinder.behavior.BM.states
              @ [ BM.state "orphan" (Cm_ocl.Ast.Bool_lit true) ]
          }
        in
        Alcotest.(check bool) "flagged" true
          (List.exists
             (fun (i : Validate.issue) -> i.where = "orphan")
             (Validate.behavior_model Cinder.resources machine)))
  ]

let xmi_tests =
  [ Alcotest.test_case "cinder round-trips through XMI" `Quick (fun () ->
        let doc =
          { Xmi.resource_model = Cinder.resources;
            behavior_models = [ Cinder.behavior ]
          }
        in
        let text = Xmi.write doc in
        match Xmi.read text with
        | Error msg -> Alcotest.fail msg
        | Ok parsed ->
          Alcotest.(check bool) "resource model equal" true
            (parsed.Xmi.resource_model = Cinder.resources);
          (match parsed.Xmi.behavior_models with
           | [ machine ] ->
             Alcotest.(check string) "name" Cinder.behavior.BM.machine_name
               machine.BM.machine_name;
             Alcotest.(check string) "initial" Cinder.behavior.BM.initial
               machine.BM.initial;
             Alcotest.(check int) "states"
               (List.length Cinder.behavior.BM.states)
               (List.length machine.BM.states);
             Alcotest.(check int) "transitions"
               (List.length Cinder.behavior.BM.transitions)
               (List.length machine.BM.transitions);
             Alcotest.(check bool) "transitions exactly equal" true
               (machine.BM.transitions = Cinder.behavior.BM.transitions);
             Alcotest.(check bool) "states exactly equal" true
               (machine.BM.states = Cinder.behavior.BM.states)
           | _ -> Alcotest.fail "expected one state machine"));
    Alcotest.test_case "requirement comments survive" `Quick (fun () ->
        let doc =
          { Xmi.resource_model = Cinder.resources;
            behavior_models = [ Cinder.behavior ]
          }
        in
        let parsed = Xmi.read_exn (Xmi.write doc) in
        let machine = List.hd parsed.Xmi.behavior_models in
        let delete_reqs =
          BM.transitions_for
            { BM.meth = Meth.DELETE; resource = "volume" }
            machine
          |> List.concat_map (fun (t : BM.transition) -> t.requirements)
          |> List.sort_uniq String.compare
        in
        Alcotest.(check (list string)) "1.4" [ "1.4" ] delete_reqs);
    Alcotest.test_case "malformed XMI rejected with context" `Quick (fun () ->
        Alcotest.(check bool) "not xml" true (Result.is_error (Xmi.read "nope"));
        Alcotest.(check bool) "no model" true
          (Result.is_error (Xmi.read "<xmi:XMI/>"));
        let bad_ocl =
          {|<uml:Model name="m" cm:basePath="/v1" cm:root="R">
             <packagedElement xmi:type="uml:Class" name="R" cm:kind="collection"/>
             <packagedElement xmi:type="uml:StateMachine" name="sm" cm:context="r">
               <region>
                 <subvertex xmi:type="uml:State" name="s">
                   <ownedRule><specification><body>a and</body></specification></ownedRule>
                 </subvertex>
               </region>
             </packagedElement>
           </uml:Model>|}
        in
        (match Xmi.read bad_ocl with
         | Error msg ->
           Alcotest.(check bool) "mentions state" true
             (Astring_contains.contains msg "state s")
         | Ok _ -> Alcotest.fail "expected OCL error"));
    Alcotest.test_case "unknown elements tolerated" `Quick (fun () ->
        let text =
          {|<xmi:XMI><vendor:junk/><uml:Model name="m" cm:basePath="/v1" cm:root="R">
              <packagedElement xmi:type="uml:Class" name="R" cm:kind="collection"/>
              <packagedElement xmi:type="uml:Class" name="item" cm:kind="normal">
                <ownedAttribute name="id" type="String"/>
              </packagedElement>
              <packagedElement xmi:type="uml:Association" name="items">
                <memberEnd source="R" target="item" multiplicity="0..*"/>
              </packagedElement>
              <extension ignored="true"/>
            </uml:Model></xmi:XMI>|}
        in
        match Xmi.read text with
        | Error msg -> Alcotest.fail msg
        | Ok doc ->
          Alcotest.(check int) "resources" 2
            (List.length doc.Xmi.resource_model.RM.resources));
    Alcotest.test_case "root inferred when absent" `Quick (fun () ->
        let text =
          {|<uml:Model name="m" cm:basePath="/v1">
              <packagedElement xmi:type="uml:Class" name="Top" cm:kind="collection"/>
              <packagedElement xmi:type="uml:Class" name="item" cm:kind="normal"/>
              <packagedElement xmi:type="uml:Association" name="items">
                <memberEnd source="Top" target="item"/>
              </packagedElement>
            </uml:Model>|}
        in
        match Xmi.read text with
        | Error msg -> Alcotest.fail msg
        | Ok doc ->
          Alcotest.(check string) "root" "Top" doc.Xmi.resource_model.RM.root)
  ]

let signature_tests =
  [ Alcotest.test_case "resource_type follows associations" `Quick (fun () ->
        match RM.resource_type Cinder.resources "project" with
        | Cm_ocl.Ty.Object props ->
          Alcotest.(check bool) "has id" true (List.mem_assoc "id" props);
          Alcotest.(check bool) "has volumes role" true
            (List.mem_assoc "volumes" props);
          Alcotest.(check bool) "has quota_sets role" true
            (List.mem_assoc "quota_sets" props)
        | other ->
          Alcotest.failf "expected object, got %a" Cm_ocl.Ty.pp other);
    Alcotest.test_case "signature binds user" `Quick (fun () ->
        Alcotest.(check bool) "user bound" true
          (List.mem_assoc "user" Cinder.signature));
    Alcotest.test_case "cyclic models get a finite signature" `Quick (fun () ->
        (* a -> b -> a cycle *)
        let model =
          { RM.model_name = "cyclic";
            base_path = "/v1";
            root = "As";
            resources =
              [ RM.collection "As";
                RM.normal "a" [ ("id", RM.A_string) ];
                RM.normal "b" [ ("id", RM.A_string) ]
              ];
            associations =
              [ RM.assoc ~role:"as" "As" "a";
                RM.assoc ~multiplicity:M.exactly_one ~role:"b" "a" "b";
                RM.assoc ~multiplicity:M.exactly_one ~role:"a" "b" "a"
              ]
          }
        in
        (* must terminate and produce some object type *)
        match RM.resource_type model "a" with
        | Cm_ocl.Ty.Object _ -> ()
        | other -> Alcotest.failf "expected object, got %a" Cm_ocl.Ty.pp other)
  ]

let analysis_tests =
  let sample = Cm_uml.Analysis.cinder_sample () in
  [ Alcotest.test_case "cinder model is semantically clean" `Quick (fun () ->
        let findings = Cm_uml.Analysis.analyze Cinder.behavior sample in
        if findings <> [] then
          Alcotest.failf "findings: %a"
            Fmt.(list ~sep:(any "; ") Cm_uml.Analysis.pp_finding)
            findings);
    Alcotest.test_case "overlapping invariants detected" `Quick (fun () ->
        (* duplicate a state under a new name: invariants now overlap *)
        let machine =
          { Cinder.behavior with
            BM.states =
              Cinder.behavior.BM.states
              @ [ BM.state "copy_of_no_volume"
                    (Cm_ocl.Ocl_parser.parse_exn
                       "project.id->size() = 1 and project.volumes->size() = 0")
                ]
          }
        in
        let findings = Cm_uml.Analysis.exclusivity machine sample in
        Alcotest.(check bool) "flagged" true
          (List.exists
             (fun (f : Cm_uml.Analysis.finding) -> f.check = "exclusivity")
             findings));
    Alcotest.test_case "coverage hole detected" `Quick (fun () ->
        (* drop the full-quota state: n = quota observations are
           uncovered *)
        let machine =
          { Cinder.behavior with
            BM.states =
              List.filter
                (fun (s : BM.state) -> s.state_name <> Cinder.s_full)
                Cinder.behavior.BM.states;
            transitions =
              List.filter
                (fun (t : BM.transition) ->
                  t.source <> Cinder.s_full && t.target <> Cinder.s_full)
                Cinder.behavior.BM.transitions
          }
        in
        let findings = Cm_uml.Analysis.coverage machine sample in
        Alcotest.(check bool) "flagged" true (findings <> []));
    Alcotest.test_case "conflicting guards detected" `Quick (fun () ->
        (* two DELETE transitions from the same state with overlapping
           guards but different targets *)
        let machine =
          { Cinder.behavior with
            BM.transitions =
              Cinder.behavior.BM.transitions
              @ [ BM.transition
                    ~guard:
                      (Cm_ocl.Ocl_parser.parse_exn "volume.status <> 'in-use'")
                    ~source:Cinder.s_not_full ~target:Cinder.s_full
                    Cm_http.Meth.DELETE "volume"
                ]
          }
        in
        let findings = Cm_uml.Analysis.guard_determinism machine sample in
        Alcotest.(check bool) "flagged" true (findings <> []));
    Alcotest.test_case "vacuous transition detected" `Quick (fun () ->
        let machine =
          { Cinder.behavior with
            BM.transitions =
              Cinder.behavior.BM.transitions
              @ [ BM.transition
                    ~guard:
                      (Cm_ocl.Ocl_parser.parse_exn
                         "project.volumes->size() > 1000")
                    ~source:Cinder.s_not_full ~target:Cinder.s_full
                    Cm_http.Meth.PUT "volume"
                ]
          }
        in
        let findings =
          Cm_uml.Analysis.vacuity machine ~pre_states:sample
            ~post_states:sample
        in
        Alcotest.(check bool) "flagged" true
          (List.exists
             (fun (f : Cm_uml.Analysis.finding) -> f.check = "vacuity")
             findings))
  ]

let slice_tests =
  let delete_only =
    Cm_uml.Slice.behavior
      (Cm_uml.Slice.By_methods [ Cm_http.Meth.DELETE ])
      Cinder.behavior
  in
  [ Alcotest.test_case "slice keeps only matching transitions" `Quick
      (fun () ->
        Alcotest.(check int) "three DELETE transitions" 3
          (List.length delete_only.BM.transitions);
        Alcotest.(check bool) "all DELETE" true
          (List.for_all
             (fun (t : BM.transition) -> t.trigger.meth = Meth.DELETE)
             delete_only.BM.transitions));
    Alcotest.test_case "slice prunes untouched states, keeps initial" `Quick
      (fun () ->
        (* DELETE touches s_full and s_not_full and targets s_no_volume;
           the initial state is s_no_volume: all three stay here.  Slice
           by a GET-on-collection criterion instead to see pruning. *)
        let listing_only =
          Cm_uml.Slice.behavior
            (Cm_uml.Slice.By_resources [ "Volumes" ])
            Cinder.behavior
        in
        Alcotest.(check int) "three states kept (self-loops everywhere)" 3
          (List.length listing_only.BM.states);
        let put_only =
          Cm_uml.Slice.behavior
            (Cm_uml.Slice.By_methods [ Meth.PUT ])
            Cinder.behavior
        in
        (* PUT only touches not_full and full; initial is kept too *)
        Alcotest.(check int) "three (incl. initial)" 3
          (List.length put_only.BM.states);
        Alcotest.(check bool) "initial kept" true
          (BM.find_state put_only.BM.initial put_only <> None));
    Alcotest.test_case "slice by requirement" `Quick (fun () ->
        let sliced =
          Cm_uml.Slice.behavior
            (Cm_uml.Slice.By_requirements [ "1.4" ])
            Cinder.behavior
        in
        Alcotest.(check int) "delete transitions only" 3
          (List.length sliced.BM.transitions));
    Alcotest.test_case "union and intersection" `Quick (fun () ->
        let union =
          Cm_uml.Slice.behavior
            (Cm_uml.Slice.Union
               [ Cm_uml.Slice.By_requirements [ "1.4" ];
                 Cm_uml.Slice.By_requirements [ "1.3" ]
               ])
            Cinder.behavior
        in
        Alcotest.(check int) "POST+DELETE" 7 (List.length union.BM.transitions);
        let inter =
          Cm_uml.Slice.behavior
            (Cm_uml.Slice.Intersection
               [ Cm_uml.Slice.By_resources [ "volume" ];
                 Cm_uml.Slice.By_methods [ Meth.GET ]
               ])
            Cinder.behavior
        in
        Alcotest.(check int) "GET(volume) loops" 2
          (List.length inter.BM.transitions));
    Alcotest.test_case "slicing preserves contracts of retained triggers"
      `Quick (fun () ->
        let security =
          { Cm_contracts.Generate.table = Cm_rbac.Security_table.cinder;
            assignment = Cm_rbac.Security_table.cinder_assignment
          }
        in
        let trigger = { BM.meth = Meth.DELETE; resource = "volume" } in
        let from_full =
          Cm_contracts.Generate.contract_for ~security Cinder.behavior trigger
        in
        let from_slice =
          Cm_contracts.Generate.contract_for ~security delete_only trigger
        in
        match from_full, from_slice with
        | Ok a, Ok b ->
          Alcotest.(check bool) "same pre" true
            (Cm_ocl.Ast.equal a.Cm_contracts.Contract.pre
               b.Cm_contracts.Contract.pre);
          Alcotest.(check bool) "same post" true
            (Cm_ocl.Ast.equal a.Cm_contracts.Contract.post
               b.Cm_contracts.Contract.post)
        | _ -> Alcotest.fail "generation failed");
    Alcotest.test_case "resource-model slice keeps containment path" `Quick
      (fun () ->
        let sliced =
          Cm_uml.Slice.resource_model ~keep:[ "volume" ] Cinder.resources
        in
        let names =
          List.map (fun (r : RM.resource_def) -> r.def_name)
            sliced.RM.resources
        in
        List.iter
          (fun expected ->
            Alcotest.(check bool) expected true (List.mem expected names))
          [ "Projects"; "project"; "Volumes"; "volume" ];
        Alcotest.(check bool) "quota dropped" false
          (List.mem "quota_sets" names);
        (* and it is still a valid model *)
        Alcotest.(check (list string)) "no issues" []
          (List.map
             (Fmt.str "%a" Cm_lint.Lint.pp_finding)
             (Cm_uml.Validate.resource_model sliced)))
  ]

let mermaid_tests =
  [ Alcotest.test_case "class diagram carries all resources and roles" `Quick
      (fun () ->
        let text = Cm_uml.Mermaid.class_diagram Cinder.resources in
        List.iter
          (fun needle ->
            Alcotest.(check bool) needle true
              (Astring_contains.contains text needle))
          [ "classDiagram"; "class Projects"; "<<collection>>";
            "class volume"; "+String status"; ": volumes"; "\"0..*\"" ]);
    Alcotest.test_case "state diagram carries states and triggers" `Quick
      (fun () ->
        let text = Cm_uml.Mermaid.state_diagram Cinder.behavior in
        List.iter
          (fun needle ->
            Alcotest.(check bool) needle true
              (Astring_contains.contains text needle))
          [ "stateDiagram-v2"; "[*] --> project_with_no_volume";
            "POST(volume)"; "DELETE(volume)";
            "project_with_volume_and_full_quota" ]);
    Alcotest.test_case "edge labels stay bounded" `Quick (fun () ->
        let text = Cm_uml.Mermaid.state_diagram Cinder.behavior in
        String.split_on_char '\n' text
        |> List.iter (fun line ->
               Alcotest.(check bool)
                 ("line under 200 chars: " ^ line)
                 true
                 (String.length line < 200)))
  ]

(* ---- property tests over randomly generated models ---- *)

let gen_small_model =
  QCheck2.Gen.(
    let* n_kinds = int_range 1 4 in
    let* quota_attr = oneofl [ "limit"; "cap" ] in
    let kinds = List.init n_kinds (fun i -> Printf.sprintf "res%d" i) in
    let resources =
      RM.collection "Roots"
      :: RM.normal "root" [ ("id", RM.A_string) ]
      :: RM.normal "settings" [ ("id", RM.A_string); (quota_attr, RM.A_int) ]
      :: List.concat_map
           (fun kind ->
             [ RM.collection ("C_" ^ kind);
               RM.normal kind
                 [ ("id", RM.A_string); ("status", RM.A_string) ]
             ])
           kinds
    in
    let associations =
      RM.assoc ~role:"roots" "Roots" "root"
      :: RM.assoc ~multiplicity:M.exactly_one ~role:"settings" "root" "settings"
      :: List.concat_map
           (fun kind ->
             [ RM.assoc ~multiplicity:M.exactly_one ~role:kind "root"
                 ("C_" ^ kind);
               RM.assoc ~role:("item_" ^ kind) ("C_" ^ kind) kind
             ])
           kinds
    in
    let model =
      { RM.model_name = "random";
        base_path = "/api";
        root = "Roots";
        resources;
        associations
      }
    in
    (* a small machine over the first kind *)
    let kind = List.hd kinds in
    let* depth = int_range 1 3 in
    let state_name i = Printf.sprintf "s%d" i in
    let inv i =
      Cm_ocl.Ocl_parser.parse_exn
        (Printf.sprintf "root.%s->size() = %d" kind i)
    in
    let states =
      List.init (depth + 1) (fun i -> BM.state (state_name i) (inv i))
    in
    let ups =
      List.init depth (fun i ->
          BM.transition
            ~effect:
              (Cm_ocl.Ocl_parser.parse_exn
                 (Printf.sprintf "root.%s->size() = %d" kind (i + 1)))
            ~requirements:[ Printf.sprintf "r.%d" i ]
            ~source:(state_name i)
            ~target:(state_name (i + 1))
            Meth.POST kind)
    in
    let downs =
      List.init depth (fun i ->
          BM.transition
            ~guard:
              (Cm_ocl.Ocl_parser.parse_exn
                 (Printf.sprintf "%s.status <> 'busy'" kind))
            ~source:(state_name (i + 1))
            ~target:(state_name i) Meth.DELETE kind)
    in
    return
      ( model,
        { BM.machine_name = "randomProtocol";
          context = "root";
          initial = state_name 0;
          states;
          transitions = ups @ downs
        } ))

let prop_random_models_validate =
  QCheck2.Test.make ~count:100 ~name:"generated models are well-formed"
    gen_small_model (fun (model, machine) ->
      Validate.all model [ machine ] = [])

let prop_random_models_xmi_roundtrip =
  QCheck2.Test.make ~count:100 ~name:"XMI round-trips random models"
    gen_small_model (fun (model, machine) ->
      let doc = { Xmi.resource_model = model; behavior_models = [ machine ] } in
      match Xmi.read (Xmi.write doc) with
      | Ok parsed ->
        parsed.Xmi.resource_model = model
        && parsed.Xmi.behavior_models = [ machine ]
      | Error _ -> false)

let prop_random_models_contracts =
  QCheck2.Test.make ~count:100
    ~name:"contracts generate and typecheck on random models" gen_small_model
    (fun (model, machine) ->
      match Cm_contracts.Generate.all machine with
      | Error _ -> false
      | Ok contracts ->
        List.for_all
          (fun c -> Cm_contracts.Generate.typecheck model c = [])
          contracts)

let prop_slice_preserves_contracts =
  QCheck2.Test.make ~count:100
    ~name:"slicing preserves contracts of retained triggers" gen_small_model
    (fun (_, machine) ->
      let sliced =
        Cm_uml.Slice.behavior (Cm_uml.Slice.By_methods [ Meth.DELETE ]) machine
      in
      let trigger =
        List.find_map
          (fun (tr : BM.transition) ->
            if tr.trigger.meth = Meth.DELETE then Some tr.trigger else None)
          machine.BM.transitions
      in
      match trigger with
      | None -> true
      | Some trigger ->
        (match
           ( Cm_contracts.Generate.contract_for machine trigger,
             Cm_contracts.Generate.contract_for sliced trigger )
         with
         | Ok a, Ok b ->
           Cm_ocl.Ast.equal a.Cm_contracts.Contract.pre
             b.Cm_contracts.Contract.pre
           && Cm_ocl.Ast.equal a.Cm_contracts.Contract.post
                b.Cm_contracts.Contract.post
         | _ -> false))

let paths_index_tests =
  let case name resources =
    Alcotest.test_case name `Quick (fun () ->
        match Paths.derive resources with
        | Error msg -> Alcotest.fail msg
        | Ok entries ->
          let idx = Paths.index entries in
          let linear resource item =
            List.find_opt
              (fun (e : Paths.entry) ->
                e.resource = resource && e.is_item = item)
              entries
          in
          let tmpl (e : Paths.entry) =
            Cm_http.Uri_template.to_string e.template
          in
          (* every (resource, is_item) key present in the table — both
             polarities, so misses are exercised too *)
          List.iter
            (fun (e : Paths.entry) ->
              List.iter
                (fun item ->
                  Alcotest.(check (option string))
                    (Printf.sprintf "%s/item:%b" e.resource item)
                    (Option.map tmpl (linear e.resource item))
                    (Option.map tmpl
                       (Paths.find idx ~resource:e.resource ~item)))
                [ true; false ])
            entries;
          Alcotest.(check bool) "unknown resource misses" true
            (Paths.find idx ~resource:"no-such-resource" ~item:false = None))
  in
  [ case "cinder: index = List.find_opt" Cinder.resources;
    case "glance: index = List.find_opt" Cm_uml.Glance_model.resources
  ]

let model_properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_random_models_validate;
      prop_random_models_xmi_roundtrip;
      prop_random_models_contracts;
      prop_slice_preserves_contracts
    ]

let () =
  Alcotest.run "cm_uml"
    [ ("multiplicity", multiplicity_tests);
      ("cinder", cinder_tests);
      ("broken-models", broken_model_tests);
      ("xmi", xmi_tests);
      ("signature", signature_tests);
      ("analysis", analysis_tests);
      ("slice", slice_tests);
      ("paths-index", paths_index_tests);
      ("model-properties", model_properties);
      ("mermaid", mermaid_tests)
    ]
