(* Tests for the OCL subset: lexing, parsing, evaluation, typechecking,
   simplification, pretty-printing. *)

module Ast = Cm_ocl.Ast
module P = Cm_ocl.Ocl_parser
module Pretty = Cm_ocl.Pretty
module Eval = Cm_ocl.Eval
module Value = Cm_ocl.Value
module Simplify = Cm_ocl.Simplify
module Ty = Cm_ocl.Ty
module Typecheck = Cm_ocl.Typecheck
module Json = Cm_json.Json

let expr_testable = Alcotest.testable Pretty.pp Ast.equal
let parse = P.parse_exn

let parse_tests =
  [ Alcotest.test_case "literals" `Quick (fun () ->
        Alcotest.check expr_testable "true" (Ast.Bool_lit true) (parse "true");
        Alcotest.check expr_testable "int" (Ast.Int_lit 42) (parse "42");
        Alcotest.check expr_testable "single-quoted string"
          (Ast.String_lit "in-use") (parse "'in-use'");
        Alcotest.check expr_testable "double-quoted string"
          (Ast.String_lit "x") (parse "\"x\"");
        Alcotest.check expr_testable "null" Ast.Null_lit (parse "null"));
    Alcotest.test_case "navigation chains" `Quick (fun () ->
        Alcotest.check expr_testable "two levels"
          (Ast.nav "project" [ "volumes" ])
          (parse "project.volumes");
        Alcotest.check expr_testable "three levels"
          (Ast.nav "user" [ "id"; "groups" ])
          (parse "user.id.groups"));
    Alcotest.test_case "collection operations" `Quick (fun () ->
        Alcotest.check expr_testable "size"
          (Ast.Coll (Ast.nav "project" [ "volumes" ], Ast.Size))
          (parse "project.volumes->size()");
        Alcotest.check expr_testable "isEmpty"
          (Ast.Coll (Ast.Var "v", Ast.Is_empty))
          (parse "v->isEmpty()");
        Alcotest.check expr_testable "includes"
          (Ast.Member (Ast.nav "user" [ "groups" ], true, Ast.String_lit "admin"))
          (parse "user.groups->includes('admin')"));
    Alcotest.test_case "iterators" `Quick (fun () ->
        Alcotest.check expr_testable "forAll with binder"
          (Ast.Iter
             ( Ast.nav "project" [ "volumes" ],
               Ast.For_all,
               "v",
               Ast.Binop (Ast.Neq, Ast.nav "v" [ "status" ], Ast.String_lit "error")
             ))
          (parse "project.volumes->forAll(v | v.status <> 'error')");
        Alcotest.check expr_testable "implicit binder"
          (Ast.Iter (Ast.Var "xs", Ast.Exists, "self", Ast.Var "ok"))
          (parse "xs->exists(ok)"));
    Alcotest.test_case "pre-state operators" `Quick (fun () ->
        let inner = Ast.Coll (Ast.nav "project" [ "volumes" ], Ast.Size) in
        Alcotest.check expr_testable "pre()" (Ast.At_pre inner)
          (parse "pre(project.volumes->size())");
        Alcotest.check expr_testable "@pre on navigation"
          (Ast.Coll (Ast.At_pre (Ast.nav "project" [ "volumes" ]), Ast.Size))
          (parse "project.volumes@pre->size()"));
    Alcotest.test_case "paper Listing 1 fragment parses" `Quick (fun () ->
        let text =
          "project.id->size()=1 and project.volumes->size()>=1 and \
           project.volumes->size() < quota_sets.volumes and volume.status <> \
           'in-use' and user.id.groups='admin'"
        in
        ignore (parse text));
    Alcotest.test_case "implies spellings" `Quick (fun () ->
        let reference = parse "a implies b" in
        Alcotest.check expr_testable "=>" reference (parse "a => b");
        Alcotest.check expr_testable "==>" reference (parse "a ==> b"));
    Alcotest.test_case "precedence" `Quick (fun () ->
        Alcotest.check expr_testable "and over or"
          (Ast.Binop
             ( Ast.Or,
               Ast.Var "a",
               Ast.Binop (Ast.And, Ast.Var "b", Ast.Var "c") ))
          (parse "a or b and c");
        Alcotest.check expr_testable "comparison over and"
          (Ast.Binop
             ( Ast.And,
               Ast.Binop (Ast.Lt, Ast.Var "x", Ast.Int_lit 1),
               Ast.Binop (Ast.Gt, Ast.Var "y", Ast.Int_lit 2) ))
          (parse "x < 1 and y > 2");
        Alcotest.check expr_testable "arithmetic over comparison"
          (Ast.Binop
             ( Ast.Eq,
               Ast.Binop (Ast.Add, Ast.Var "x", Ast.Int_lit 1),
               Ast.Var "q" ))
          (parse "x + 1 = q");
        Alcotest.check expr_testable "implies right-assoc"
          (Ast.Binop
             ( Ast.Implies,
               Ast.Var "a",
               Ast.Binop (Ast.Implies, Ast.Var "b", Ast.Var "c") ))
          (parse "a implies b implies c");
        Alcotest.check expr_testable "not binds tight"
          (Ast.Binop (Ast.And, Ast.Unop (Ast.Not, Ast.Var "a"), Ast.Var "b"))
          (parse "not a and b"));
    Alcotest.test_case "lexer edges" `Quick (fun () ->
        (* @pre at the very end of input *)
        Alcotest.check expr_testable "@pre at end"
          (Ast.At_pre (Ast.nav "project" [ "volumes" ]))
          (parse "project.volumes@pre");
        (* pre as a plain property name *)
        Alcotest.check expr_testable "x.pre navigates"
          (Ast.nav "x" [ "pre" ]) (parse "x.pre");
        (* pre as a bare variable *)
        Alcotest.check expr_testable "pre alone" (Ast.Var "pre") (parse "pre");
        (* minus vs arrow disambiguation *)
        Alcotest.check expr_testable "a - b"
          (Ast.Binop (Ast.Sub, Ast.Var "a", Ast.Var "b"))
          (parse "a - b");
        Alcotest.(check bool) "bad @x" true (Result.is_error (P.parse "a@x"));
        Alcotest.(check bool) "lone @" true (Result.is_error (P.parse "@")));
    Alcotest.test_case "parse errors" `Quick (fun () ->
        let is_err text = Result.is_error (P.parse text) in
        Alcotest.(check bool) "empty" true (is_err "");
        Alcotest.(check bool) "dangling and" true (is_err "a and");
        Alcotest.(check bool) "unknown arrow op" true (is_err "x->frobnicate()");
        Alcotest.(check bool) "unbalanced paren" true (is_err "(a or b");
        Alcotest.(check bool) "trailing junk" true (is_err "a b");
        Alcotest.(check bool) "binder not a name" true (is_err "xs->forAll(1 | x)"))
  ]

(* ---- evaluation ---- *)

let project_json volumes =
  Json.obj
    [ ("id", Json.string "p1");
      ("volumes", Json.list volumes)
    ]

let volume_json status =
  Json.obj [ ("id", Json.string "v1"); ("status", Json.string status) ]

let env ?(volumes = [ volume_json "available" ]) ?(quota = 3) () =
  Eval.env_of_bindings
    [ ("project", project_json volumes);
      ("quota_sets", Json.obj [ ("volumes", Json.int quota) ]);
      ("volume", volume_json "available");
      ( "user",
        Json.obj
          [ ("groups", Json.list [ Json.string "proj_administrator" ]) ] )
    ]

let check_tri name expected env_ text =
  Alcotest.(check string) name expected
    (Fmt.str "%a" Value.pp_tribool (Eval.check env_ (parse text)))

let eval_tests =
  [ Alcotest.test_case "size over collections and scalars" `Quick (fun () ->
        check_tri "one volume" "true" (env ()) "project.volumes->size() = 1";
        check_tri "scalar is singleton" "true" (env ()) "project.id->size() = 1";
        check_tri "missing is empty" "true" (env ())
          "project.nonexistent->size() = 0");
    Alcotest.test_case "empty volumes state invariant" `Quick (fun () ->
        let e = env ~volumes:[] () in
        check_tri "no volume invariant" "true" e
          "project.id->size() = 1 and project.volumes->size() = 0");
    Alcotest.test_case "comparisons" `Quick (fun () ->
        check_tri "lt" "true" (env ()) "project.volumes->size() < quota_sets.volumes";
        check_tri "status neq" "true" (env ()) "volume.status <> 'in-use'";
        check_tri "string eq false" "false" (env ()) "volume.status = 'in-use'");
    Alcotest.test_case "three-valued logic" `Quick (fun () ->
        check_tri "undefined comparison" "unknown" (env ()) "ghost.x = 1";
        check_tri "false and undefined = false" "false" (env ())
          "1 = 2 and ghost.x = 1";
        check_tri "true or undefined = true" "true" (env ())
          "1 = 1 or ghost.x = 1";
        check_tri "undefined implies anything" "unknown" (env ())
          "ghost.x = 1 implies 1 = 2";
        check_tri "false implies undefined = true" "true" (env ())
          "1 = 2 implies ghost.x = 1");
    Alcotest.test_case "includes / excludes" `Quick (fun () ->
        check_tri "includes" "true" (env ())
          "user.groups->includes('proj_administrator')";
        check_tri "excludes" "true" (env ())
          "user.groups->excludes('service_architect')";
        check_tri "not member" "false" (env ())
          "user.groups->includes('nope')");
    Alcotest.test_case "iterators" `Quick (fun () ->
        let e =
          env ~volumes:[ volume_json "available"; volume_json "in-use" ] ()
        in
        check_tri "exists" "true" e
          "project.volumes->exists(v | v.status = 'in-use')";
        check_tri "forAll false" "false" e
          "project.volumes->forAll(v | v.status = 'available')";
        check_tri "one" "true" e
          "project.volumes->one(v | v.status = 'in-use')";
        check_tri "select size" "true" e
          "project.volumes->select(v | v.status = 'in-use')->size() = 1";
        check_tri "reject size" "true" e
          "project.volumes->reject(v | v.status = 'in-use')->size() = 1";
        check_tri "collect" "true" e
          "project.volumes->collect(v | v.status)->includes('in-use')");
    Alcotest.test_case "collection navigation (collect shorthand)" `Quick
      (fun () ->
        let e =
          env ~volumes:[ volume_json "available"; volume_json "in-use" ] ()
        in
        check_tri "navigate over list" "true" e
          "project.volumes.status->includes('in-use')");
    Alcotest.test_case "count / asSet / any / isUnique" `Quick (fun () ->
        let e =
          Eval.env_of_bindings
            [ ( "xs",
                Json.list
                  [ Json.string "a"; Json.string "b"; Json.string "a" ] );
              ( "vols",
                Json.list
                  [ volume_json "available";
                    volume_json "in-use";
                    volume_json "available"
                  ] )
            ]
        in
        check_tri "count" "true" e "xs->count('a') = 2";
        check_tri "count zero" "true" e "xs->count('z') = 0";
        check_tri "asSet dedups" "true" e "xs->asSet()->size() = 2";
        check_tri "any picks a match" "true" e
          "vols->any(v | v.status = 'in-use').status = 'in-use'";
        check_tri "any with no match is undefined" "unknown" e
          "vols->any(v | v.status = 'gone') = null";
        check_tri "isUnique false on duplicates" "false" e
          "xs->isUnique(x | x)";
        (* all volume_json fixtures share id "v1" *)
        check_tri "isUnique false on duplicate ids" "false" e
          "vols->isUnique(v | v.id)";
        check_tri "isUnique true on singleton" "true" e
          "xs->asSet()->isUnique(x | x)");
    Alcotest.test_case "arithmetic" `Quick (fun () ->
        check_tri "add" "true" (env ()) "1 + 2 * 3 = 7";
        check_tri "sub" "true" (env ()) "10 - 3 - 2 = 5";
        check_tri "div" "true" (env ()) "7 / 2 = 3";
        check_tri "div by zero undefined" "unknown" (env ()) "1 / 0 = 1";
        check_tri "sum" "true"
          (Eval.env_of_bindings
             [ ("xs", Json.list [ Json.int 1; Json.int 2; Json.int 3 ]) ])
          "xs->sum() = 6");
    Alcotest.test_case "first / last / notEmpty" `Quick (fun () ->
        let e =
          Eval.env_of_bindings
            [ ("xs", Json.list [ Json.int 5; Json.int 7 ]); ("ys", Json.list []) ]
        in
        check_tri "first" "true" e "xs->first() = 5";
        check_tri "last" "true" e "xs->last() = 7";
        check_tri "notEmpty" "true" e "xs->notEmpty()";
        check_tri "empty first undefined" "unknown" e "ys->first() = 1";
        check_tri "isEmpty" "true" e "ys->isEmpty()");
    Alcotest.test_case "pre-state evaluation" `Quick (fun () ->
        let pre_env = env ~volumes:[ volume_json "a"; volume_json "b" ] () in
        let post_env = Eval.with_pre ~pre:pre_env (env ()) in
        check_tri "delete decremented" "true" post_env
          "project.volumes->size() = pre(project.volumes->size()) - 1";
        check_tri "pre is idempotent" "true" post_env
          "pre(pre(project.volumes->size())) = 2";
        check_tri "@pre suffix" "true" post_env
          "project.volumes@pre->size() = 2");
    Alcotest.test_case "pre without snapshot is undefined" `Quick (fun () ->
        check_tri "no pre env" "unknown" (env ())
          "pre(project.volumes->size()) = 1");
    Alcotest.test_case "verdict helper" `Quick (fun () ->
        Alcotest.(check bool) "holds" true
          (Eval.verdict (env ()) (parse "1 = 1") = Eval.Holds);
        Alcotest.(check bool) "violated" true
          (Eval.verdict (env ()) (parse "1 = 2") = Eval.Violated);
        match Eval.verdict (env ()) (parse "ghost.x = 1") with
        | Eval.Undefined_verdict _ -> ()
        | _ -> Alcotest.fail "expected undefined")
  ]

(* ---- typechecking ---- *)

let signature : Ty.signature =
  [ ( "project",
      Ty.Object
        [ ("id", Ty.String);
          ("volumes", Ty.Collection (Ty.Object [ ("status", Ty.String) ]))
        ] );
    ("quota_sets", Ty.Object [ ("volumes", Ty.Int) ]);
    ("user", Ty.Object [ ("groups", Ty.Collection Ty.String) ])
  ]

let typecheck_tests =
  [ Alcotest.test_case "valid expressions" `Quick (fun () ->
        List.iter
          (fun text ->
            Alcotest.(check bool) text true
              (Typecheck.well_typed signature (parse text)))
          [ "project.id->size() = 1";
            "project.volumes->size() < quota_sets.volumes";
            "user.groups->includes('admin')";
            "project.volumes->forAll(v | v.status <> 'in-use')";
            "pre(project.volumes->size()) + 1 = project.volumes->size()"
          ]);
    Alcotest.test_case "errors detected" `Quick (fun () ->
        List.iter
          (fun text ->
            Alcotest.(check bool) text false
              (Typecheck.well_typed signature (parse text)))
          [ "unknown_var = 1";
            "project.nope = 1";
            "project.id + 1 = 2";
            "quota_sets.volumes->includes('x')";
            "project.volumes->forAll(v | v.status)";
            "1 + 1" (* not boolean at top level *)
          ]);
    Alcotest.test_case "all errors reported at once" `Quick (fun () ->
        let _, errors = Typecheck.infer signature (parse "a = 1 and b = 2") in
        Alcotest.(check int) "two unknown vars" 2 (List.length errors))
  ]

(* ---- simplifier ---- *)

let ty_tests =
  [ Alcotest.test_case "compatibility" `Quick (fun () ->
        Alcotest.(check bool) "int/real" true (Ty.compatible Ty.Int Ty.Real);
        Alcotest.(check bool) "any/anything" true
          (Ty.compatible Ty.Any (Ty.Collection Ty.String));
        Alcotest.(check bool) "bool/string" false (Ty.compatible Ty.Bool Ty.String);
        Alcotest.(check bool) "collections by element" true
          (Ty.compatible (Ty.Collection Ty.Int) (Ty.Collection Ty.Real));
        Alcotest.(check bool) "collections incompatible" false
          (Ty.compatible (Ty.Collection Ty.Int) (Ty.Collection Ty.String));
        Alcotest.(check bool) "objects on common fields" true
          (Ty.compatible
             (Ty.Object [ ("a", Ty.Int) ])
             (Ty.Object [ ("a", Ty.Real); ("b", Ty.String) ]));
        Alcotest.(check bool) "objects conflicting field" false
          (Ty.compatible
             (Ty.Object [ ("a", Ty.Int) ])
             (Ty.Object [ ("a", Ty.String) ])));
    Alcotest.test_case "element coercion" `Quick (fun () ->
        Alcotest.(check bool) "collection" true
          (Ty.equal (Ty.element (Ty.Collection Ty.Int)) Ty.Int);
        Alcotest.(check bool) "scalar is its own element" true
          (Ty.equal (Ty.element Ty.String) Ty.String));
    Alcotest.test_case "property lookup" `Quick (fun () ->
        let obj = Ty.Object [ ("status", Ty.String) ] in
        Alcotest.(check bool) "direct" true
          (Ty.property "status" obj = Some Ty.String);
        Alcotest.(check bool) "collect shorthand" true
          (Ty.property "status" (Ty.Collection obj)
          = Some (Ty.Collection Ty.String));
        Alcotest.(check bool) "missing" true (Ty.property "nope" obj = None);
        Alcotest.(check bool) "any is permissive" true
          (Ty.property "anything" Ty.Any = Some Ty.Any));
    Alcotest.test_case "to_string" `Quick (fun () ->
        Alcotest.(check string) "collection" "Collection(Integer)"
          (Ty.to_string (Ty.Collection Ty.Int)))
  ]

let simplify_tests =
  [ Alcotest.test_case "boolean identities" `Quick (fun () ->
        let check_simpl name input expected =
          Alcotest.check expr_testable name (parse expected)
            (Simplify.simplify (parse input))
        in
        check_simpl "true and e" "true and x = 1" "x = 1";
        check_simpl "e or false" "x = 1 or false" "x = 1";
        check_simpl "false and e" "false and x = 1" "false";
        check_simpl "true or e" "true or x = 1" "true";
        check_simpl "dedup" "x = 1 and x = 1" "x = 1";
        check_simpl "double negation" "not (not (x = 1))" "x = 1";
        check_simpl "not over eq" "not (x = 1)" "x <> 1";
        check_simpl "not over lt" "not (x < 1)" "x >= 1";
        check_simpl "implies true" "x = 1 implies true" "true";
        (* Not simplified to true: when x is unbound both sides are
           Unknown, and Unknown implies Unknown is Unknown. *)
        check_simpl "self implication stays" "x = 1 implies x = 1"
          "x = 1 implies x = 1";
        check_simpl "constant folding" "1 + 2 = 3" "true");
    Alcotest.test_case "disjuncts and conjuncts flatten" `Quick (fun () ->
        Alcotest.(check int) "3 disjuncts" 3
          (List.length (Simplify.disjuncts (parse "a or (b or c)")));
        Alcotest.(check int) "3 conjuncts" 3
          (List.length (Simplify.conjuncts (parse "(a and b) and c"))))
  ]

(* ---- generators for property tests ---- *)

let gen_var = QCheck2.Gen.oneofl [ "project"; "quota_sets"; "user"; "volume" ]

(* Closed boolean expressions over a small JSON environment. *)
let gen_expr =
  QCheck2.Gen.(
    sized @@ fix (fun self size ->
        let atom =
          oneof
            [ map (fun b -> Ast.Bool_lit b) bool;
              (let* v = gen_var in
               let* prop = oneofl [ "id"; "volumes"; "status"; "x" ] in
               return
                 (Ast.Binop
                    ( Ast.Ge,
                      Ast.Coll (Ast.Nav (Ast.Var v, prop), Ast.Size),
                      Ast.Int_lit 0 )));
              (let* v = gen_var in
               let* n = int_range 0 3 in
               return
                 (Ast.Binop
                    ( Ast.Eq,
                      Ast.Coll (Ast.Var v, Ast.Size),
                      Ast.Int_lit n )))
            ]
        in
        if size <= 0 then atom
        else
          oneof
            [ atom;
              map2
                (fun op (a, b) -> Ast.Binop (op, a, b))
                (oneofl [ Ast.And; Ast.Or; Ast.Implies; Ast.Xor ])
                (pair (self (size / 2)) (self (size / 2)));
              map (fun e -> Ast.Unop (Ast.Not, e)) (self (size / 2))
            ]))

let gen_env =
  QCheck2.Gen.(
    let* n = int_range 0 3 in
    let* quota = int_range 0 3 in
    return
      (Eval.env_of_bindings
         [ ("project", project_json (List.init n (fun _ -> volume_json "s")));
           ("quota_sets", Json.obj [ ("volumes", Json.int quota) ]);
           ("volume", volume_json "available");
           ("user", Json.obj [ ("groups", Json.list []) ])
         ]))

let prop_pretty_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"pretty |> parse is the identity"
    gen_expr (fun expr ->
      match P.parse (Pretty.to_string expr) with
      | Ok parsed -> Ast.equal parsed expr
      | Error _ -> false)

let prop_simplify_preserves =
  QCheck2.Test.make ~count:500 ~name:"simplify preserves defined verdicts"
    QCheck2.Gen.(pair gen_expr gen_env)
    (fun (expr, env_) ->
      let before = Eval.check env_ expr in
      let after = Eval.check env_ (Simplify.simplify expr) in
      match before with
      | Value.Unknown -> true (* simplification may only gain definedness *)
      | defined -> after = defined)

let prop_nnf_preserves =
  QCheck2.Test.make ~count:500 ~name:"nnf preserves defined verdicts"
    QCheck2.Gen.(pair gen_expr gen_env)
    (fun (expr, env_) ->
      let before = Eval.check env_ expr in
      let after = Eval.check env_ (Simplify.nnf expr) in
      match before with Value.Unknown -> true | defined -> after = defined)

let prop_multiline_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"multiline layout reparses equal"
    gen_expr (fun expr ->
      let text =
        Pretty.to_string_multiline expr
        |> String.map (fun c -> if c = '\n' then ' ' else c)
      in
      match P.parse text with
      | Ok parsed ->
        (* Multiline groups disjuncts with parens, so compare by
           evaluation on a fixed env rather than syntactically. *)
        Ast.equal (Simplify.simplify parsed) (Simplify.simplify expr)
        ||
        let env_ = env () in
        Eval.check env_ parsed = Eval.check env_ expr
      | Error _ -> false)

let prop_free_vars_sound =
  QCheck2.Test.make ~count:300 ~name:"eval only reads free variables"
    QCheck2.Gen.(pair gen_expr gen_env)
    (fun (expr, env_) ->
      (* Evaluating with bindings restricted to the free variables gives
         the same verdict. *)
      let free = Ast.free_vars expr in
      let restricted =
        Eval.env_of_bindings
          (List.filter (fun (k, _) -> List.mem k free) (Eval.bindings env_))
      in
      Eval.check restricted expr = Eval.check env_ expr)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_pretty_roundtrip;
      prop_simplify_preserves;
      prop_nnf_preserves;
      prop_multiline_roundtrip;
      prop_free_vars_sound
    ]

(* Exhaustive Kleene truth tables for the tribool operators.  These are
   the reference semantics that both evaluation engines are tested
   against — spelled out value by value so any edit to Value is caught
   directly, not just through a differential failure downstream. *)
let kleene_tests =
  let module V = Value in
  let tri = Alcotest.testable V.pp_tribool ( = ) in
  let all = [ V.True; V.False; V.Unknown ] in
  let name a op b =
    Fmt.str "%a %s %a" V.pp_tribool a op V.pp_tribool b
  in
  let table op f expected =
    List.iteri
      (fun i a ->
        List.iteri
          (fun j b ->
            Alcotest.check tri (name a op b) expected.(i).(j) (f a b))
          all)
      all
  in
  let t = V.True and f = V.False and u = V.Unknown in
  [ Alcotest.test_case "not" `Quick (fun () ->
        Alcotest.check tri "not true" f (V.tri_not t);
        Alcotest.check tri "not false" t (V.tri_not f);
        Alcotest.check tri "not unknown" u (V.tri_not u));
    Alcotest.test_case "and: false absorbs, unknown propagates" `Quick
      (fun () ->
        table "and" V.tri_and
          [| [| t; f; u |]; [| f; f; f |]; [| u; f; u |] |]);
    Alcotest.test_case "or: true absorbs, unknown propagates" `Quick
      (fun () ->
        table "or" V.tri_or [| [| t; t; t |]; [| t; f; u |]; [| t; u; u |] |]);
    Alcotest.test_case "implies: (not a) or b" `Quick (fun () ->
        table "implies" V.tri_implies
          [| [| t; f; u |]; [| t; t; t |]; [| t; u; u |] |]);
    Alcotest.test_case "xor: unknown poisons" `Quick (fun () ->
        table "xor" V.tri_xor
          [| [| f; t; u |]; [| t; f; u |]; [| u; u; u |] |])
  ]

let () =
  Alcotest.run "cm_ocl"
    [ ("parser", parse_tests);
      ("eval", eval_tests);
      ("typecheck", typecheck_tests);
      ("ty", ty_tests);
      ("simplify", simplify_tests);
      ("kleene", kleene_tests);
      ("properties", properties)
    ]
