(* Differential tests for the staged compiler (Cm_ocl.Compile): on every
   generated Cinder and Glance contract, the compiled closures must
   produce the same values and verdicts as the tree-walking interpreter
   (Cm_ocl.Eval) — including in states with missing bindings, wrongly
   typed documents and Undef-producing subexpressions, and with nested
   [pre(...)] under an attached pre-state. *)

module Ast = Cm_ocl.Ast
module Eval = Cm_ocl.Eval
module Value = Cm_ocl.Value
module Compile = Cm_ocl.Compile
module Contract = Cm_contracts.Contract
module Generate = Cm_contracts.Generate
module Runtime = Cm_contracts.Runtime
module BM = Cm_uml.Behavior_model
module Json = Cm_json.Json

let ocl = Cm_ocl.Ocl_parser.parse_exn

let cinder_security =
  { Generate.table = Cm_rbac.Security_table.cinder;
    assignment = Cm_rbac.Security_table.cinder_assignment
  }

let glance_security =
  { Generate.table = Cm_rbac.Security_table.glance;
    assignment = Cm_rbac.Security_table.cinder_assignment
  }

let contracts_of label security behavior =
  match Generate.all ~security behavior with
  | Ok cs -> cs
  | Error msg -> Alcotest.failf "%s contract generation failed: %s" label msg

let cinder_contracts =
  contracts_of "cinder" cinder_security Cm_uml.Cinder_model.behavior

let glance_contracts =
  contracts_of "glance" glance_security Cm_uml.Glance_model.behavior

let all_contracts =
  List.map (fun c -> ("cinder", c)) cinder_contracts
  @ List.map (fun c -> ("glance", c)) glance_contracts

(* ---- the environment grid ---- *)

let item i status =
  Json.obj
    [ ("id", Json.string (Printf.sprintf "id-%d" i));
      ("name", Json.string "thing");
      ("status", Json.string status);
      ("visibility", Json.string (if i mod 2 = 0 then "private" else "public"));
      ("size", Json.int (i mod 4))
    ]

let statuses = [| "available"; "in-use"; "error"; "queued"; "active" |]

let listing n =
  Json.list (List.init n (fun i -> item i statuses.(i mod Array.length statuses)))

let container i =
  Json.obj
    [ ("id", Json.string "p");
      ("volumes", listing (i mod 4));
      ("images", listing ((i + 1) mod 4));
      ("snapshots", listing (i mod 2));
      ("backups", listing (i mod 3))
    ]

let subject i =
  let groups =
    match i mod 3 with
    | 0 -> [ "proj_administrator" ]
    | 1 -> [ "proj_member"; "other" ]
    | _ -> []
  in
  Json.obj
    [ ("name", Json.string "alice");
      ("groups", Json.list (List.map Json.string groups));
      ("roles", Json.list (List.map Json.string groups));
      ("role", Json.string (match groups with g :: _ -> g | [] -> ""));
      ("id", Json.obj [ ("groups", Json.string (match groups with g :: _ -> g | [] -> "")) ])
    ]

let quota i =
  Json.obj
    [ ("id", Json.string "p");
      ("volumes", Json.int (i mod 4));
      ("images", Json.int (i mod 4))
    ]

(* Candidate documents for one variable: plausible states of varying
   fullness, then degenerate ones (empty object, null, wrong type) that
   drive navigations and comparisons to Undef. *)
let candidates var =
  let valid i =
    match var with
    | "project" -> container i
    | "user" -> subject i
    | "quota_sets" -> quota i
    | _ -> item i statuses.(i mod Array.length statuses)
  in
  [ Some (valid 0); Some (valid 1); Some (valid 2); Some (valid 3);
    Some (Json.obj []); Some Json.Null; Some (Json.int 7);
    None  (* unbound: Eval.lookup yields Undef *)
  ]

(* Deterministic sampling: seed [s] assigns variable [k] its candidate
   [(s + 3k) mod n], so consecutive seeds move every variable through
   valid, degenerate and missing states in different combinations. *)
let env_for_seed vars s =
  Eval.env_of_bindings
    (List.concat
       (List.mapi
          (fun k var ->
            let cands = candidates var in
            match List.nth cands ((s + (3 * k)) mod List.length cands) with
            | Some doc -> [ (var, doc) ]
            | None -> [])
          vars))

let seeds = List.init 16 (fun s -> s)

let contract_vars (c : Contract.t) =
  let exprs =
    (c.Contract.pre :: c.Contract.functional_pre :: c.Contract.post
     :: Option.to_list c.Contract.auth_guard)
    @ List.map (fun (b : Contract.branch) -> b.Contract.branch_pre)
        c.Contract.branches
  in
  List.sort_uniq String.compare (List.concat_map Ast.free_vars exprs)

let grid c = List.map (env_for_seed (contract_vars c)) seeds

(* ---- expression-level agreement ---- *)

(* One shared plan per family, frames built only after all compiles —
   the discipline Compile documents. *)
let agree_on ?pre label env expr =
  let plan = Compile.plan () in
  let staged = Compile.compile plan expr in
  let staged_raw = Compile.compile_raw plan expr in
  let ienv =
    match pre with Some p -> Eval.with_pre ~pre:p env | None -> env
  in
  let frame =
    let fr = Compile.frame_of_env plan env in
    match pre with
    | Some p -> Compile.with_pre ~pre:(Compile.frame_of_env plan p) fr
    | None -> fr
  in
  let expected = Eval.eval ienv expr in
  let got = Compile.eval staged frame in
  let got_raw = Compile.eval staged_raw frame in
  if got <> expected then
    Alcotest.failf "%s: compiled %a <> interpreted %a on %s" label Value.pp got
      Value.pp expected
      (Cm_ocl.Pretty.to_string expr);
  if got_raw <> expected then
    Alcotest.failf "%s: raw-compiled %a <> interpreted %a on %s" label
      Value.pp got_raw Value.pp expected
      (Cm_ocl.Pretty.to_string expr);
  if not (Eval.verdict_equal (Eval.verdict ienv expr) (Compile.verdict staged frame))
  then
    Alcotest.failf "%s: verdict mismatch on %s" label
      (Cm_ocl.Pretty.to_string expr)

let contract_exprs (c : Contract.t) =
  [ ("pre", c.Contract.pre);
    ("functional_pre", c.Contract.functional_pre);
    ("post", c.Contract.post)
  ]
  @ (match c.Contract.auth_guard with
     | Some g -> [ ("auth_guard", g) ]
     | None -> [])
  @ List.mapi
      (fun i (b : Contract.branch) ->
        (Printf.sprintf "branch-%d" i, b.Contract.branch_pre))
      c.Contract.branches

let expr_differential_tests =
  List.map
    (fun (service, (c : Contract.t)) ->
      let name =
        Fmt.str "%s %a: compiled = interpreted on the state grid" service
          BM.pp_trigger c.Contract.trigger
      in
      Alcotest.test_case name `Quick (fun () ->
          let envs = grid c in
          List.iteri
            (fun i env ->
              let pre_env = List.nth envs ((i + 5) mod List.length envs) in
              List.iter
                (fun (part, expr) ->
                  let label = Fmt.str "%s/%s/seed-%d" service part i in
                  (* no pre-state attached: pre(...) is Undef on both *)
                  agree_on label env expr;
                  (* with a pre-state from a different grid point *)
                  agree_on ~pre:pre_env label env expr)
                (contract_exprs c))
            envs))
    all_contracts

(* ---- handwritten corners: nested pre, iterators, Undef arithmetic ---- *)

let corner_exprs =
  [ "pre(project.volumes->size()) = project.volumes->size()";
    "pre(pre(project.volumes->size())) >= 0";
    "pre(project.volumes->size() + 1) > project.volumes->size()";
    "project.volumes->select(v | v.status = 'available')->size() >= 0";
    "project.volumes->forAll(v | v.size > 0)";
    "project.volumes->exists(v | v.status = volume.status)";
    "project.volumes->reject(v | v.status = 'error')->size() \
     <= project.volumes->size()";
    "project.volumes->collect(v | v.status)->includes('in-use')";
    "project.volumes->one(v | v.status = 'in-use')";
    "project.volumes->any(v | v.size > 1).status = 'in-use'";
    "project.volumes->isUnique(v | v.id)";
    "user.groups->includes('proj_administrator') or \
     user.groups->includes('proj_member')";
    "quota_sets.volumes > project.volumes->size()";
    "volume.status <> 'in-use' and volume.status <> 'error'";
    "volume.size + quota_sets.volumes >= 0";
    "not (volume.status = 'error') implies volume.size >= 0";
    "volume.missing_member = 1";
    "volume.missing_member->size() = 0"
  ]

let corner_tests =
  [ Alcotest.test_case "handwritten corners across the grid" `Quick (fun () ->
        let vars = [ "project"; "user"; "quota_sets"; "volume" ] in
        List.iter
          (fun text ->
            let expr = ocl text in
            List.iter
              (fun s ->
                let env = env_for_seed vars s in
                let pre_env = env_for_seed vars (s + 7) in
                agree_on (Fmt.str "corner/seed-%d" s) env expr;
                agree_on ~pre:pre_env (Fmt.str "corner+pre/seed-%d" s) env
                  expr)
              seeds)
          corner_exprs)
  ]

(* ---- runtime-level agreement: Interpreted vs Compiled engines ---- *)

let verdict_t = Alcotest.testable Eval.pp_verdict Eval.verdict_equal

let runtime_differential_tests =
  List.map
    (fun (service, (c : Contract.t)) ->
      let name =
        Fmt.str "%s %a: Runtime engines agree (Lean and Full)" service
          BM.pp_trigger c.Contract.trigger
      in
      Alcotest.test_case name `Quick (fun () ->
          let envs = grid c in
          List.iter
            (fun strategy ->
              let pi = Runtime.prepare ~strategy ~engine:Interpreted c in
              let pc = Runtime.prepare ~strategy ~engine:Compiled c in
              List.iteri
                (fun i pre_env ->
                  let post_env =
                    List.nth envs ((i + 1) mod List.length envs)
                  in
                  Alcotest.check verdict_t
                    (Fmt.str "check_pre/seed-%d" i)
                    (Runtime.check_pre pi pre_env)
                    (Runtime.check_pre pc pre_env);
                  Alcotest.(check (list string))
                    (Fmt.str "covered/seed-%d" i)
                    (Runtime.covered_requirements pi pre_env)
                    (Runtime.covered_requirements pc pre_env);
                  let si = Runtime.take_snapshot pi pre_env in
                  let sc = Runtime.take_snapshot pc pre_env in
                  Alcotest.check verdict_t
                    (Fmt.str "check_post/seed-%d" i)
                    (Runtime.check_post pi si post_env)
                    (Runtime.check_post pc sc post_env))
                envs)
            [ Runtime.Lean; Runtime.Full ]))
    all_contracts

(* ---- exhaustive Kleene connectives ----

   The compiler stages [and]/[or]/[implies] through short-circuiting
   closures with separate constant-folded paths, so a drift from the
   Kleene truth tables would be silent on happy-path contracts.  Cover
   the full operand grid: each of the three truth values both as a
   compile-time constant (literal) and as a runtime value (variable
   binding — including an unbound variable for Unknown). *)

let tribool = Alcotest.testable Value.pp_tribool ( = )

let kleene_env =
  Eval.env_of_bindings [ ("t", Json.bool true); ("f", Json.bool false) ]

(* label, expression, its truth value *)
let kleene_operands =
  [ ("const-true", Ast.Bool_lit true, Value.True);
    ("const-false", Ast.Bool_lit false, Value.False);
    ("const-unknown", Ast.Null_lit, Value.Unknown);
    ("dyn-true", Ast.Var "t", Value.True);
    ("dyn-false", Ast.Var "f", Value.False);
    ("dyn-unknown", Ast.Var "u", Value.Unknown)
  ]

let check_kleene label expr expected =
  Alcotest.check tribool (label ^ " interpreted") expected
    (Eval.check kleene_env expr);
  let plan = Compile.plan () in
  let staged = Compile.compile plan expr in
  let staged_raw = Compile.compile_raw plan expr in
  let frame = Compile.frame_of_env plan kleene_env in
  Alcotest.check tribool (label ^ " compiled") expected
    (Compile.check staged frame);
  Alcotest.check tribool (label ^ " raw-compiled") expected
    (Compile.check staged_raw frame)

let kleene_tests =
  let connectives =
    [ ("and", Ast.And, Value.tri_and);
      ("or", Ast.Or, Value.tri_or);
      ("implies", Ast.Implies, Value.tri_implies);
      ("xor", Ast.Xor, Value.tri_xor)
    ]
  in
  List.map
    (fun (name, op, reference) ->
      Alcotest.test_case (name ^ ": full 6x6 operand grid") `Quick (fun () ->
          List.iter
            (fun (la, ea, ta) ->
              List.iter
                (fun (lb, eb, tb) ->
                  check_kleene
                    (Printf.sprintf "%s %s %s" la name lb)
                    (Ast.Binop (op, ea, eb))
                    (reference ta tb))
                kleene_operands)
            kleene_operands))
    connectives
  @ [ Alcotest.test_case "not: all 6 operands" `Quick (fun () ->
          List.iter
            (fun (l, e, t) ->
              check_kleene ("not " ^ l)
                (Ast.Unop (Ast.Not, e))
                (Value.tri_not t))
            kleene_operands)
    ]

let () =
  Alcotest.run "cm_compile"
    [ ("expr-differential", expr_differential_tests);
      ("corners", corner_tests);
      ("runtime-differential", runtime_differential_tests);
      ("kleene-connectives", kleene_tests)
    ]
