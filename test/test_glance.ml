(* Tests for the second worked example: the Glance-like image service,
   its models, its monitor, and dual-service monitoring. *)

module Cloud = Cm_cloudsim.Cloud
module Identity = Cm_cloudsim.Identity
module Faults = Cm_cloudsim.Faults
module Monitor = Cm_monitor.Monitor
module Outcome = Cm_monitor.Outcome
module Request = Cm_http.Request
module Response = Cm_http.Response
module Meth = Cm_http.Meth
module Json = Cm_json.Json
module Glance = Cm_uml.Glance_model
module BM = Cm_uml.Behavior_model

let glance_security =
  { Cm_contracts.Generate.table = Cm_rbac.Security_table.glance;
    assignment = Cm_rbac.Security_table.cinder_assignment
  }

let cinder_security =
  { Cm_contracts.Generate.table = Cm_rbac.Security_table.cinder;
    assignment = Cm_rbac.Security_table.cinder_assignment
  }

(* A Glance observation sample for the semantic analysis. *)
let glance_sample =
  let image i status =
    Json.obj
      [ ("id", Json.string (Printf.sprintf "img-%d" i));
        ("name", Json.string "img");
        ("status", Json.string status);
        ("visibility", Json.string "private");
        ("size", Json.int 512)
      ]
  in
  let states = ref [] in
  for quota = 1 to 3 do
    for n = 0 to quota do
      let mixes =
        if n = 0 then [ [] ]
        else
          [ List.init n (fun i -> image i "queued");
            image 0 "active" :: List.init (n - 1) (fun i -> image (i + 1) "queued")
          ]
      in
      List.iter
        (fun images ->
          states :=
            Cm_ocl.Eval.env_of_bindings
              [ ( "project",
                  Json.obj
                    [ ("id", Json.string "p");
                      ("images", Json.list images)
                    ] );
                ( "quota_sets",
                  Json.obj
                    [ ("id", Json.string "p"); ("images", Json.int quota) ] );
                ( "image",
                  match images with first :: _ -> first | [] -> Json.obj [] );
                ( "user",
                  Json.obj
                    [ ( "groups",
                        Json.list [ Json.string "proj_administrator" ] )
                    ] )
              ]
            :: !states)
        mixes
    done
  done;
  !states

let model_tests =
  [ Alcotest.test_case "glance models are well-formed" `Quick (fun () ->
        let issues = Cm_uml.Validate.all Glance.resources [ Glance.behavior ] in
        if issues <> [] then
          Alcotest.failf "issues: %a"
            Fmt.(list ~sep:(any "; ") Cm_lint.Lint.pp_finding)
            issues);
    Alcotest.test_case "glance model is semantically clean" `Quick (fun () ->
        let findings = Cm_uml.Analysis.analyze Glance.behavior glance_sample in
        if findings <> [] then
          Alcotest.failf "findings: %a"
            Fmt.(list ~sep:(any "; ") Cm_uml.Analysis.pp_finding)
            findings);
    Alcotest.test_case "URI table" `Quick (fun () ->
        match Cm_uml.Paths.derive Glance.resources with
        | Error msg -> Alcotest.fail msg
        | Ok entries ->
          Alcotest.(check bool) "images collection" true
            (List.exists
               (fun (e : Cm_uml.Paths.entry) ->
                 Cm_http.Uri_template.to_string e.template
                 = "/v3/{project_id}/images")
               entries));
    Alcotest.test_case "contracts generate and typecheck" `Quick (fun () ->
        match
          Cm_contracts.Generate.all ~security:glance_security Glance.behavior
        with
        | Error msg -> Alcotest.fail msg
        | Ok contracts ->
          Alcotest.(check int) "five triggers" 5 (List.length contracts);
          List.iter
            (fun c ->
              Alcotest.(check (list string)) "no type errors" []
                (List.map
                   (Fmt.str "%a" Cm_ocl.Typecheck.pp_error)
                   (Cm_contracts.Generate.typecheck Glance.resources c)))
            contracts)
  ]

(* ---- a monitored glance deployment ---- *)

type fixture = {
  cloud : Cloud.t;
  monitor : Monitor.t;
  alice : string;
  bob : string;
  carol : string;
}

let fixture ?(mode = Monitor.Oracle) () =
  let cloud = Cloud.create () in
  Cloud.seed cloud Cloud.my_project;
  Identity.add_user (Cloud.identity cloud) ~password:"svc"
    (Cm_rbac.Subject.make "svc" [ "proj_administrator" ]);
  let login user pw =
    match Cloud.login cloud ~user ~password:pw ~project_id:"myProject" with
    | Ok t -> t
    | Error e -> failwith e
  in
  let service = login "svc" "svc" in
  let config =
    Monitor.default_config ~mode ~service_token:service
      ~security:glance_security Glance.resources Glance.behavior
  in
  match Monitor.create config (Cloud.handle cloud) with
  | Ok monitor ->
    { cloud;
      monitor;
      alice = login "alice" "alice-pw";
      bob = login "bob" "bob-pw";
      carol = login "carol" "carol-pw"
    }
  | Error msgs -> failwith (String.concat "; " msgs)

let image_body name =
  Json.obj
    [ ("image", Json.obj [ ("name", Json.string name); ("size", Json.int 512) ]) ]

let status_body status =
  Json.obj [ ("image", Json.obj [ ("status", Json.string status) ]) ]

let run fx token meth path ?body () =
  Monitor.handle fx.monitor
    (Request.make ?body meth path |> Request.with_auth_token token)

let conformance_testable =
  Alcotest.testable Outcome.pp_conformance (fun a b -> a = b)

let base = "/v3/myProject/images"

let monitoring_tests =
  [ Alcotest.test_case "image lifecycle conforms" `Quick (fun () ->
        let fx = fixture () in
        let created = run fx fx.alice Meth.POST base ~body:(image_body "web") () in
        Alcotest.check conformance_testable "create" Outcome.Conform
          created.Outcome.conformance;
        let id =
          match created.Outcome.cloud_response with
          | Some { Response.body = Some body; _ } ->
            (match Cm_json.Pointer.get [ Key "image"; Key "id" ] body with
             | Some (Json.String id) -> id
             | _ -> "img-1")
          | _ -> "img-1"
        in
        let path = base ^ "/" ^ id in
        List.iter
          (fun (label, step) ->
            let outcome = step () in
            Alcotest.check conformance_testable label Outcome.Conform
              outcome.Outcome.conformance)
          [ ("list", fun () -> run fx fx.carol Meth.GET base ());
            ("show", fun () -> run fx fx.bob Meth.GET path ());
            ( "activate",
              fun () -> run fx fx.bob Meth.PUT path ~body:(status_body "active") () );
            ( "deactivate",
              fun () ->
                run fx fx.alice Meth.PUT path ~body:(status_body "deactivated") () );
            ("delete", fun () -> run fx fx.alice Meth.DELETE path ())
          ]);
    Alcotest.test_case "active image delete is conform-denied" `Quick (fun () ->
        let fx = fixture () in
        ignore (run fx fx.alice Meth.POST base ~body:(image_body "a") ());
        ignore
          (run fx fx.alice Meth.PUT (base ^ "/img-1")
             ~body:(status_body "active") ());
        let outcome = run fx fx.alice Meth.DELETE (base ^ "/img-1") () in
        Alcotest.check conformance_testable "denied" Outcome.Conform_denied
          outcome.Outcome.conformance);
    Alcotest.test_case "image quota enforced and observed" `Quick (fun () ->
        let fx = fixture () in
        ignore (run fx fx.alice Meth.POST base ~body:(image_body "1") ());
        ignore (run fx fx.alice Meth.POST base ~body:(image_body "2") ());
        let outcome = run fx fx.alice Meth.POST base ~body:(image_body "3") () in
        Alcotest.(check int) "413" 413
          outcome.Outcome.response.Response.status;
        Alcotest.check conformance_testable "denied" Outcome.Conform_denied
          outcome.Outcome.conformance);
    Alcotest.test_case "image listing filters and paginates" `Quick (fun () ->
        let fx = fixture () in
        ignore (run fx fx.alice Meth.POST base ~body:(image_body "a") ());
        ignore (run fx fx.alice Meth.POST base ~body:(image_body "b") ());
        ignore
          (run fx fx.bob Meth.PUT (base ^ "/img-1")
             ~body:(status_body "active") ());
        let count query =
          let resp =
            Cm_cloudsim.Cloud.handle fx.cloud
              (Request.make Meth.GET (base ^ query)
              |> Request.with_auth_token fx.alice)
          in
          match resp.Response.body with
          | Some body ->
            (match Json.member "images" body with
             | Some (Json.List items) -> List.length items
             | _ -> -1)
          | None -> -1
        in
        Alcotest.(check int) "all" 2 (count "");
        Alcotest.(check int) "active only" 1 (count "?status=active");
        Alcotest.(check int) "limit" 1 (count "?limit=1");
        Alcotest.(check int) "private" 2 (count "?visibility=private"));
    Alcotest.test_case "plain user cannot create images" `Quick (fun () ->
        let fx = fixture () in
        let outcome = run fx fx.carol Meth.POST base ~body:(image_body "x") () in
        Alcotest.check conformance_testable "denied" Outcome.Conform_denied
          outcome.Outcome.conformance);
    Alcotest.test_case "image authorization mutant killed" `Quick (fun () ->
        let fx = fixture () in
        ignore (run fx fx.alice Meth.POST base ~body:(image_body "x") ());
        Cloud.set_faults fx.cloud
          (Faults.of_list [ Faults.Skip_policy_check "image:delete" ]);
        let outcome = run fx fx.bob Meth.DELETE (base ^ "/img-1") () in
        Alcotest.check conformance_testable "killed"
          Outcome.Security_unauthorized_allowed outcome.Outcome.conformance);
    Alcotest.test_case "SecReq 2.x coverage" `Quick (fun () ->
        let fx = fixture () in
        ignore (run fx fx.alice Meth.POST base ~body:(image_body "x") ());
        ignore (run fx fx.carol Meth.GET base ());
        let coverage = Monitor.coverage fx.monitor in
        Alcotest.(check (option int)) "2.3" (Some 1)
          (List.assoc_opt "2.3" coverage);
        Alcotest.(check (option int)) "2.1" (Some 1)
          (List.assoc_opt "2.1" coverage);
        Alcotest.(check (option int)) "2.4 uncovered" (Some 0)
          (List.assoc_opt "2.4" coverage))
  ]

let dual_service_tests =
  [ Alcotest.test_case "cinder and glance monitors stack over one cloud"
      `Quick (fun () ->
        let cloud = Cloud.create () in
        Cloud.seed cloud Cloud.my_project;
        Identity.add_user (Cloud.identity cloud) ~password:"svc"
          (Cm_rbac.Subject.make "svc" [ "proj_administrator" ]);
        let login user pw =
          match Cloud.login cloud ~user ~password:pw ~project_id:"myProject" with
          | Ok t -> t
          | Error e -> failwith e
        in
        let service = login "svc" "svc" in
        let glance_monitor =
          match
            Monitor.create
              (Monitor.default_config ~service_token:service
                 ~security:glance_security Glance.resources Glance.behavior)
              (Cloud.handle cloud)
          with
          | Ok m -> m
          | Error msgs -> failwith (String.concat "; " msgs)
        in
        (* the Cinder monitor sits in front, forwarding volume traffic to
           the cloud and image traffic through the Glance monitor *)
        let cinder_monitor =
          match
            Monitor.create
              (Monitor.default_config ~service_token:service
                 ~security:cinder_security Cm_uml.Cinder_model.resources
                 Cm_uml.Cinder_model.behavior)
              (Monitor.handle_response glance_monitor)
          with
          | Ok m -> m
          | Error msgs -> failwith (String.concat "; " msgs)
        in
        let alice = login "alice" "alice-pw" in
        let through req = Monitor.handle cinder_monitor req in
        let volume =
          through
            (Request.make Meth.POST "/v3/myProject/volumes"
               ~body:
                 (Json.obj
                    [ ( "volume",
                        Json.obj
                          [ ("name", Json.string "v"); ("size", Json.int 1) ]
                      )
                    ])
            |> Request.with_auth_token alice)
        in
        Alcotest.check conformance_testable "volume conform" Outcome.Conform
          volume.Outcome.conformance;
        let image =
          through
            (Request.make Meth.POST base ~body:(image_body "i")
            |> Request.with_auth_token alice)
        in
        (* image traffic is not in the Cinder models: passed through and
           judged by the Glance monitor behind *)
        Alcotest.check conformance_testable "outer: not monitored"
          Outcome.Not_monitored image.Outcome.conformance;
        let glance_outcomes = Monitor.outcomes glance_monitor in
        Alcotest.(check bool) "inner judged it" true
          (List.exists
             (fun (o : Outcome.t) ->
               o.request.Request.path = base
               && o.conformance = Outcome.Conform)
             glance_outcomes))
  ]

let () =
  Alcotest.run "cm_glance"
    [ ("models", model_tests);
      ("monitoring", monitoring_tests);
      ("dual-service", dual_service_tests)
    ]
