(* Delta-driven incremental evaluation: the change-tracking layer of
   {!Cm_ocl.Compile} (slot diffing, epoch invalidation, memoized
   replay, strict disjunction) and its end-to-end equivalence with full
   re-evaluation through the monitor runtime.  The randomized
   generalization of the same property lives in the fuzzer's
   [incremental] oracle; these are the deterministic unit cases. *)

module Compile = Cm_ocl.Compile
module Eval = Cm_ocl.Eval
module Value = Cm_ocl.Value
module Runtime = Cm_contracts.Runtime
module Scenario = Cm_mutation.Scenario
module Monitor = Cm_monitor.Monitor
module Outcome = Cm_monitor.Outcome
module Json = Cm_json.Json

let parse text =
  match Cm_ocl.Ocl_parser.parse text with
  | Ok expr -> expr
  | Error err -> Alcotest.failf "parse %S: %a" text Cm_ocl.Ocl_parser.pp_error err

let env_ab ?a ?b () =
  Eval.env_of_bindings
    ((match a with Some n -> [ ("a", Json.int n) ] | None -> [])
    @ (match b with Some n -> [ ("b", Json.int n) ] | None -> []))

let sync _ = true

(* ---- delta computation ---- *)

let test_refresh_counts_changes () =
  let plan = Compile.plan ~memoize:true () in
  let _ta = Compile.compile_tracked plan (parse "a > 1") in
  let _tb = Compile.compile_tracked plan (parse "b > 1") in
  let memo = Compile.make_memo plan in
  let frame = Compile.memo_frame plan memo in
  let changed = Compile.refresh plan memo frame (env_ab ~a:2 ~b:0 ()) ~sync in
  Alcotest.(check int) "first refresh writes both slots" 2 changed;
  let changed = Compile.refresh plan memo frame (env_ab ~a:2 ~b:0 ()) ~sync in
  Alcotest.(check int) "identical environment changes nothing" 0 changed;
  let changed = Compile.refresh plan memo frame (env_ab ~a:7 ~b:0 ()) ~sync in
  Alcotest.(check int) "one mutated root, one changed slot" 1 changed

let test_refresh_epoch_stable_when_unchanged () =
  let plan = Compile.plan ~memoize:true () in
  let _t = Compile.compile_tracked plan (parse "a > 1") in
  let memo = Compile.make_memo plan in
  let frame = Compile.memo_frame plan memo in
  ignore (Compile.refresh plan memo frame (env_ab ~a:2 ()) ~sync);
  let epoch = Compile.epoch memo in
  for _ = 1 to 5 do
    ignore (Compile.refresh plan memo frame (env_ab ~a:2 ()) ~sync)
  done;
  Alcotest.(check int) "no-change refreshes keep the epoch" epoch
    (Compile.epoch memo)

let test_refresh_sync_skips_roots () =
  let plan = Compile.plan ~memoize:true () in
  let _ta = Compile.compile_tracked plan (parse "a > 1") in
  let _tb = Compile.compile_tracked plan (parse "b > 1") in
  let memo = Compile.make_memo plan in
  let frame = Compile.memo_frame plan memo in
  ignore (Compile.refresh plan memo frame (env_ab ~a:2 ~b:2 ()) ~sync);
  (* both roots mutated, but only [a] is synced *)
  let changed =
    Compile.refresh plan memo frame (env_ab ~a:9 ~b:9 ())
      ~sync:(fun name -> name = "a")
  in
  Alcotest.(check int) "skipped root not diffed in" 1 changed

(* ---- epoch invalidation ---- *)

let test_change_invalidates_dependents_only () =
  let plan = Compile.plan ~memoize:true () in
  let ta = Compile.compile_tracked plan (parse "a > 1") in
  let tb = Compile.compile_tracked plan (parse "b > 1") in
  let memo = Compile.make_memo plan in
  let frame = Compile.memo_frame plan memo in
  ignore (Compile.refresh plan memo frame (env_ab ~a:2 ~b:2 ()) ~sync);
  ignore (Compile.eval ta.Compile.run frame);
  ignore (Compile.eval tb.Compile.run frame);
  Alcotest.(check bool) "a cached after evaluation" true
    (Compile.cached memo ta);
  Alcotest.(check bool) "b cached after evaluation" true
    (Compile.cached memo tb);
  ignore (Compile.refresh plan memo frame (env_ab ~a:0 ~b:2 ()) ~sync);
  Alcotest.(check bool) "changing a invalidates a's verdict" false
    (Compile.cached memo ta);
  Alcotest.(check bool) "b untouched, verdict replayable" true
    (Compile.cached memo tb);
  Alcotest.(check bool) "replayed b verdict is the cached True" true
    (Value.truth (Compile.cached_value memo tb) = Value.True)

let test_replay_equals_reevaluation () =
  let plan = Compile.plan ~memoize:true () in
  let t = Compile.compile_tracked plan (parse "a > 1 and b > 1") in
  let memo = Compile.make_memo plan in
  let frame = Compile.memo_frame plan memo in
  let reference = Compile.plan () in
  let ref_t = Compile.compile reference (parse "a > 1 and b > 1") in
  List.iter
    (fun (a, b) ->
      let env = env_ab ?a ?b () in
      ignore (Compile.refresh plan memo frame env ~sync);
      let live = Compile.eval t.Compile.run frame in
      (if Compile.cached memo t then
         Alcotest.(check bool)
           (Printf.sprintf "cached verdict matches at a=%s b=%s"
              (match a with Some n -> string_of_int n | None -> "-")
              (match b with Some n -> string_of_int n | None -> "-"))
           true
           (Compile.cached_value memo t = live));
      let fresh = Compile.eval ref_t (Compile.frame_of_env reference env) in
      Alcotest.(check bool) "memoized equals memoless evaluation" true
        (live = fresh))
    [ (Some 2, Some 2); (Some 2, Some 2); (Some 0, Some 2); (Some 2, None);
      (None, None); (Some 2, Some 2); (Some 0, Some 0); (Some 2, Some 2)
    ]

(* ---- strict disjunction ---- *)

let test_strict_disjunction_equivalence () =
  (* Every tribool combination of the two disjuncts: absent bindings
     make a comparison Undef, so a/b in {-, 0, 2} spans
     Unknown/False/True on each side. *)
  let choices = [ None; Some 0; Some 2 ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let plan = Compile.plan ~memoize:true () in
          let strict =
            Compile.strict_disjunction plan
              [ Compile.compile_tracked plan (parse "a > 1");
                Compile.compile_tracked plan (parse "b > 1")
              ]
          in
          let memo = Compile.make_memo plan in
          let frame = Compile.memo_frame plan memo in
          let env = env_ab ?a ?b () in
          ignore (Compile.refresh plan memo frame env ~sync);
          let got = Value.truth (Compile.eval strict.Compile.run frame) in
          let expected = Eval.check env (parse "a > 1 or b > 1") in
          Alcotest.(check bool)
            (Printf.sprintf "strict or = kleene or at a=%s b=%s"
               (match a with Some n -> string_of_int n | None -> "-")
               (match b with Some n -> string_of_int n | None -> "-"))
            true (got = expected))
        choices)
    choices

let test_strict_disjunction_stamps_all () =
  (* The point of the strict fold: even when the first disjunct already
     decides the verdict, the second one's memo node gets stamped, so a
     later check of the same observation replays it. *)
  let plan = Compile.plan ~memoize:true () in
  let ta = Compile.compile_tracked plan (parse "a > 1") in
  let tb = Compile.compile_tracked plan (parse "b > 1") in
  let strict = Compile.strict_disjunction plan [ ta; tb ] in
  let memo = Compile.make_memo plan in
  let frame = Compile.memo_frame plan memo in
  ignore (Compile.refresh plan memo frame (env_ab ~a:2 ~b:0 ()) ~sync);
  ignore (Compile.eval strict.Compile.run frame);
  Alcotest.(check bool) "deciding disjunct stamped" true
    (Compile.cached memo ta);
  Alcotest.(check bool) "non-deciding disjunct stamped too" true
    (Compile.cached memo tb)

let test_strict_disjunction_edges () =
  let plan = Compile.plan ~memoize:true () in
  let empty = Compile.strict_disjunction plan [] in
  let memo = Compile.make_memo plan in
  let frame = Compile.memo_frame plan memo in
  Alcotest.(check bool) "empty disjunction is False" true
    (Value.truth (Compile.eval empty.Compile.run frame) = Value.False);
  let t = Compile.compile_tracked plan (parse "a > 1") in
  let single = Compile.strict_disjunction plan [ t ] in
  Alcotest.(check bool) "singleton returned unchanged" true (single == t)

(* ---- allocation ---- *)

let test_memoized_hit_allocation () =
  (* The bench gate asserts 0 words with microbench-grade isolation;
     here we only guard against the hot path regrowing an allocating
     closure, so the bound is deliberately tolerant. *)
  let ns, words = Cloudmon.Serve_bench.measure_hit ~checks:20_000 () in
  Alcotest.(check bool)
    (Printf.sprintf "memoized-hit check allocates ~0 words (got %.2f)" words)
    true (words <= 2.0);
  Alcotest.(check bool)
    (Printf.sprintf "memoized-hit check under 1us (got %.0f ns)" ns)
    true (ns <= 1_000.0)

(* ---- end-to-end equivalence through the monitor ---- *)

let outcome_key (o : Outcome.t) =
  Fmt.str "%d|%s|%s"
    o.Outcome.response.Cm_http.Response.status
    (Outcome.conformance_to_string o.Outcome.conformance)
    (String.concat "," o.Outcome.covered_requirements)

let run_standard eval =
  match Scenario.setup ~eval () with
  | Error msgs -> Alcotest.fail (String.concat "; " msgs)
  | Ok ctx ->
    Scenario.standard ctx;
    ctx

let test_modes_agree_on_standard_workload () =
  let ctx_full = run_standard Runtime.Full_eval in
  let ctx_inc = run_standard Runtime.Incremental in
  let keys ctx = List.map outcome_key (Monitor.outcomes ctx.Scenario.monitor) in
  Alcotest.(check (list string))
    "incremental outcomes identical to full re-evaluation" (keys ctx_full)
    (keys ctx_inc);
  let full = Monitor.eval_stats ctx_full.Scenario.monitor in
  let inc = Monitor.eval_stats ctx_inc.Scenario.monitor in
  Alcotest.(check int) "full evaluation never replays" 0 full.Runtime.replays;
  Alcotest.(check bool)
    (Printf.sprintf "incremental replays verdicts (%d)" inc.Runtime.replays)
    true
    (inc.Runtime.replays > 0);
  Alcotest.(check bool)
    (Printf.sprintf "incremental evaluates less (%d < %d)" inc.Runtime.evals
       full.Runtime.evals)
    true
    (inc.Runtime.evals < full.Runtime.evals)

let kill_row eval (mutant : Cm_mutation.Mutant.t) =
  match Scenario.setup ~eval ~faults:mutant.Cm_mutation.Mutant.faults () with
  | Error msgs -> Alcotest.fail (String.concat "; " msgs)
  | Ok ctx ->
    Scenario.standard ctx;
    List.exists
      (fun (o : Outcome.t) -> Outcome.is_violation o.Outcome.conformance)
      (Monitor.outcomes ctx.Scenario.monitor)

let test_kill_matrix_identical () =
  (* The paper experiment generalized: every mutant's kill bit must be
     identical under full and delta-driven evaluation, and every mutant
     must actually be killed. *)
  List.iter
    (fun (mutant : Cm_mutation.Mutant.t) ->
      let full = kill_row Runtime.Full_eval mutant in
      let inc = kill_row Runtime.Incremental mutant in
      Alcotest.(check bool)
        (mutant.Cm_mutation.Mutant.name ^ " killed under full evaluation")
        true full;
      Alcotest.(check bool)
        (mutant.Cm_mutation.Mutant.name ^ " kill bit preserved incrementally")
        full inc)
    Cm_mutation.Mutant.all

let () =
  Alcotest.run "cm_incremental"
    [ ( "delta",
        [ Alcotest.test_case "refresh counts changed slots" `Quick
            test_refresh_counts_changes;
          Alcotest.test_case "no-change refresh keeps epoch" `Quick
            test_refresh_epoch_stable_when_unchanged;
          Alcotest.test_case "sync skips unobserved roots" `Quick
            test_refresh_sync_skips_roots
        ] );
      ( "epochs",
        [ Alcotest.test_case "change invalidates dependents only" `Quick
            test_change_invalidates_dependents_only;
          Alcotest.test_case "replay equals re-evaluation" `Quick
            test_replay_equals_reevaluation
        ] );
      ( "strict-disjunction",
        [ Alcotest.test_case "kleene equivalence" `Quick
            test_strict_disjunction_equivalence;
          Alcotest.test_case "stamps every disjunct" `Quick
            test_strict_disjunction_stamps_all;
          Alcotest.test_case "empty and singleton" `Quick
            test_strict_disjunction_edges
        ] );
      ( "allocation",
        [ Alcotest.test_case "memoized hit is allocation-free" `Quick
            test_memoized_hit_allocation
        ] );
      ( "monitor",
        [ Alcotest.test_case "modes agree on the standard workload" `Quick
            test_modes_agree_on_standard_workload;
          Alcotest.test_case "kill matrix identical across modes" `Quick
            test_kill_matrix_identical
        ] )
    ]
