(* Tests for the design-time analysis subsystem: the satisfiability
   solver (soundness of Unsat, evaluator-verified witnesses), the
   AN001..AN009 rule registry against the seeded defect corpus, the
   shipped models' cleanliness, the dynamic cross-check, the lint
   framework, and the enriched typechecker diagnostics. *)

module Ast = Cm_ocl.Ast
module Eval = Cm_ocl.Eval
module Ty = Cm_ocl.Ty
module Lint = Cm_lint.Lint
module Solver = Cm_analysis.Solver
module Rules = Cm_analysis.Rules
module Defects = Cm_analysis.Defects
module Crosscheck = Cm_analysis.Crosscheck

let ocl = Cm_ocl.Ocl_parser.parse_exn

let outcome_label = function
  | Solver.Unsat -> "unsat"
  | Solver.Sat _ -> "sat"
  | Solver.Unknown -> "unknown"

(* ---- solver unit suite ---- *)

(* Each [sat] witness must replay to True under Eval — the solver
   promises evaluator-verified models, so we re-check the promise here
   rather than trusting the implementation. *)
let expect_outcome name source expected =
  Alcotest.test_case name `Quick (fun () ->
      let e = ocl source in
      let got = Solver.satisfiable e in
      Alcotest.(check string) source expected (outcome_label got);
      match got with
      | Solver.Sat env ->
        Alcotest.(check bool)
          (Printf.sprintf "witness for %s replays to True" source)
          true
          (Eval.check env e = Cm_ocl.Value.True)
      | Solver.Unsat | Solver.Unknown -> ())

let solver_tests =
  [ expect_outcome "trivial true" "1 = 1" "sat";
    expect_outcome "trivial false" "1 = 2" "unsat";
    expect_outcome "interval conflict"
      "project.volumes->size() >= 1 and project.volumes->size() = 0" "unsat";
    expect_outcome "interval witness"
      "project.volumes->size() >= 1 and project.volumes->size() < 3" "sat";
    expect_outcome "size is never negative" "project.volumes->size() < 0"
      "unsat";
    expect_outcome "difference constraint chain"
      "project.volumes->size() < quota_sets.volumes and quota_sets.volumes \
       <= project.volumes->size()"
      "unsat";
    expect_outcome "string equality conflict"
      "volume.status = 'in-use' and volume.status <> 'in-use'" "unsat";
    expect_outcome "string enum witness"
      "volume.status <> 'in-use' and volume.status <> 'available'" "sat";
    expect_outcome "membership conflict"
      "user.groups->includes('admin') and user.groups->excludes('admin')"
      "unsat";
    expect_outcome "membership forces size"
      "user.groups->includes('admin') and user.groups->size() = 0" "unsat";
    expect_outcome "isEmpty rewrites to size"
      "project.volumes->isEmpty() and project.volumes->size() >= 1" "unsat";
    expect_outcome "notEmpty witness" "project.volumes->notEmpty()" "sat";
    expect_outcome "implication kept satisfiable"
      "quota_sets.volumes > 1 implies project.volumes->size() >= 0" "sat";
    expect_outcome "non-convex disequality enumeration"
      "quota_sets.volumes <> 3 and quota_sets.volumes >= 3 and \
       quota_sets.volumes <= 3"
      "unsat";
    expect_outcome "combined cinder branch"
      "project.id->size() = 1 and project.volumes->size() >= 1 and \
       project.volumes->size() < quota_sets.volumes and \
       user.groups->includes('proj_administrator') and volume.status <> \
       'in-use'"
      "sat";
    Alcotest.test_case "never_false flags tautologies" `Quick (fun () ->
        Alcotest.(check string) "size >= 0 is a tautology" "unsat"
          (outcome_label
             (Solver.never_false (ocl "project.volumes->size() >= 0")));
        Alcotest.(check string) "size >= 1 is falsifiable" "sat"
          (outcome_label
             (Solver.never_false (ocl "project.volumes->size() >= 1"))));
    Alcotest.test_case "opaque atoms degrade to unknown" `Quick (fun () ->
        Alcotest.(check string) "forAll over a forced-nonempty collection"
          "unknown"
          (outcome_label
             (Solver.satisfiable
                (ocl
                   "project.volumes->forAll(v | v.size > 0) and \
                    project.volumes->size() >= 1")));
        Alcotest.(check string) "exists body is out of fragment" "unknown"
          (outcome_label
             (Solver.satisfiable (ocl "project.volumes->exists(v | v.size > 0)")));
        Alcotest.(check string)
          "but a propositionally false context still closes" "unsat"
          (outcome_label
             (Solver.satisfiable
                (ocl "project.volumes->forAll(v | v.size > 0) and 1 = 2"))));
    Alcotest.test_case "pre-state and post-state are distinct atoms" `Quick
      (fun () ->
        Alcotest.(check string) "x = pre(x)+1 and x = pre(x) is unsat" "unsat"
          (outcome_label
             (Solver.satisfiable
                (ocl
                   "project.volumes->size() = pre(project.volumes->size()) + \
                    1 and project.volumes->size() = \
                    pre(project.volumes->size())"))));
    Alcotest.test_case "atom budget caps to unknown" `Quick (fun () ->
        let wide =
          Ast.conj
            (List.init (Solver.atom_budget + 2) (fun i ->
                 ocl (Printf.sprintf "project.a%d->size() >= %d" i i)))
        in
        Alcotest.(check string) "too many atoms" "unknown"
          (outcome_label (Solver.satisfiable wide)))
  ]

(* ---- the seeded defect corpus ---- *)

let corpus_tests =
  List.map
    (fun (e : Defects.entry) ->
      Alcotest.test_case e.name `Quick (fun () ->
          match Defects.check e with
          | Ok () -> ()
          | Error msg -> Alcotest.fail msg))
    Defects.corpus

let corpus_meta_tests =
  [ Alcotest.test_case "corpus has sixteen distinct entries" `Quick (fun () ->
        Alcotest.(check int) "size" 16 (List.length Defects.corpus);
        let names =
          List.map (fun (e : Defects.entry) -> e.name) Defects.corpus
        in
        Alcotest.(check int) "distinct names" 16
          (List.length (List.sort_uniq String.compare names)));
    Alcotest.test_case "every AN rule is exercised by some entry" `Quick
      (fun () ->
        let covered =
          List.concat_map (fun (e : Defects.entry) -> e.expected) Defects.corpus
          |> List.sort_uniq String.compare
        in
        let all_codes =
          List.map (fun (r : Lint.rule) -> r.code) Rules.catalogue
          |> List.sort String.compare
        in
        Alcotest.(check (list string)) "coverage" all_codes covered)
  ]

(* ---- shipped models analyze clean ---- *)

let sec table =
  Some
    { Cm_contracts.Generate.table;
      assignment = Cm_rbac.Security_table.cinder_assignment }

let shipped =
  [ ( "cinder",
      { Rules.resources = Cm_uml.Cinder_model.resources;
        behavior = Cm_uml.Cinder_model.behavior;
        security = sec Cm_rbac.Security_table.cinder } );
    ( "glance",
      { Rules.resources = Cm_uml.Glance_model.resources;
        behavior = Cm_uml.Glance_model.behavior;
        security = sec Cm_rbac.Security_table.glance } );
    ( "snapshot",
      { Rules.resources = Cm_uml.Snapshot_model.resources;
        behavior = Cm_uml.Snapshot_model.behavior;
        security = sec Cm_uml.Snapshot_model.security_table } );
    ( "cross",
      { Rules.resources = Cm_uml.Cross_model.resources;
        behavior = Cm_uml.Cross_model.behavior;
        security = sec Cm_rbac.Security_table.cross } )
  ]

let clean_tests =
  List.map
    (fun (label, input) ->
      Alcotest.test_case (label ^ " analyzes clean") `Quick (fun () ->
          let findings = Rules.analyze input in
          if findings <> [] then
            Alcotest.failf "%s: %a" label
              Fmt.(list ~sep:(any "; ") Lint.pp_finding)
              findings))
    shipped

(* ---- dynamic cross-check of the static verdicts ---- *)

let crosscheck_case name input ~dead ~vacuous =
  Alcotest.test_case name `Quick (fun () ->
      match Crosscheck.run ~cases:10_000 ~seed:42 input with
      | Error msg -> Alcotest.fail msg
      | Ok r ->
        Alcotest.(check (list string)) "no violations" [] r.violations;
        Alcotest.(check int) "flagged dead" dead r.flagged_dead;
        Alcotest.(check int) "flagged vacuous" vacuous r.flagged_vacuous;
        Alcotest.(check bool) "live branches witnessed" true
          (r.live_witnessed > 0);
        Alcotest.(check int) "all cases ran" 10_000 r.cases)

let defective name =
  (List.find (fun (e : Defects.entry) -> e.name = name) Defects.corpus).input

let crosscheck_tests =
  [ crosscheck_case "cinder: 10k cases, no verdict contradicted"
      (List.assoc "cinder" shipped) ~dead:0 ~vacuous:0;
    crosscheck_case "seeded dead branch never fires over 10k cases"
      (defective "dead_guard_vs_invariant") ~dead:1 ~vacuous:0;
    crosscheck_case "seeded vacuous branch never violated over 10k cases"
      (defective "vacuous_post_tautology") ~dead:0 ~vacuous:1
  ]

(* ---- lint framework ---- *)

let sample_rule =
  Lint.rule ~code:"XX001" ~title:"sample" ~severity:Lint.Warning "sample rule"

let lint_tests =
  [ Alcotest.test_case "findings sort by severity then location" `Quick
      (fun () ->
        let f sev where = Lint.finding ~rule:"XX001" ~severity:sev ~where "m" in
        let sorted =
          Lint.sort [ f Lint.Info "a"; f Lint.Error "b"; f Lint.Warning "a" ]
        in
        Alcotest.(check (list string)) "order" [ "b"; "a"; "a" ]
          (List.map (fun (x : Lint.finding) -> x.where) sorted));
    Alcotest.test_case "summary counts by severity" `Quick (fun () ->
        let f sev = Lint.finding ~rule:"XX001" ~severity:sev ~where:"w" "m" in
        Alcotest.(check string) "summary" "2 errors, 1 warning, 0 info"
          (Lint.summary [ f Lint.Error; f Lint.Error; f Lint.Warning ]));
    Alcotest.test_case "waivers demote matching findings to Info" `Quick
      (fun () ->
        let f =
          Lint.finding ~rule:"XX001" ~severity:Lint.Error ~where:"spot" "m"
        in
        let w =
          { Lint.waive_rule = "XX001";
            where_fragment = "spo";
            reason = "accepted"
          }
        in
        match Lint.apply_waivers [ w ] [ f ] with
        | [ waived ] ->
          Alcotest.(check bool) "demoted" true (waived.severity = Lint.Info);
          Alcotest.(check bool) "reason recorded" true
            (Lint.contains waived.message "accepted")
        | _ -> Alcotest.fail "expected one finding");
    Alcotest.test_case "render includes witness and summary" `Quick (fun () ->
        let f =
          Lint.finding ~witness:"x=1" ~rule:"XX001" ~severity:Lint.Warning
            ~where:"here" "msg"
        in
        let text = Lint.render ~catalogue:[ sample_rule ] [ f ] in
        List.iter
          (fun needle ->
            Alcotest.(check bool) needle true (Lint.contains text needle))
          [ "XX001"; "here"; "msg"; "x=1"; "1 warning" ]);
    Alcotest.test_case "to_json carries every field" `Quick (fun () ->
        let f =
          Lint.finding ~witness:"w" ~rule:"XX001" ~severity:Lint.Error
            ~where:"place" "msg"
        in
        let text = Fmt.str "%a" Cm_json.Json.pp (Lint.to_json [ f ]) in
        List.iter
          (fun needle ->
            Alcotest.(check bool) needle true (Lint.contains text needle))
          [ "XX001"; "place"; "msg"; "error" ]);
    Alcotest.test_case "canonical is emission-order independent and dedups"
      `Quick (fun () ->
        let f rule where sev =
          Lint.finding ~rule ~severity:sev ~where "m"
        in
        let a = f "XX001" "a" Lint.Error
        and b = f "XX002" "b" Lint.Warning
        and c = f "XX001" "c" Lint.Info in
        let one = Lint.canonical [ b; a; c; a ]
        and two = Lint.canonical [ a; c; a; b ] in
        Alcotest.(check bool) "same list both ways" true (one = two);
        Alcotest.(check int) "duplicates dropped" 3 (List.length one);
        Alcotest.(check (list string)) "rule-major order"
          [ "XX001"; "XX001"; "XX002" ]
          (List.map (fun (x : Lint.finding) -> x.rule) one));
    Alcotest.test_case "at_least keeps findings at or above the threshold"
      `Quick (fun () ->
        let f sev = Lint.finding ~rule:"XX001" ~severity:sev ~where:"w" "m" in
        let all = [ f Lint.Info; f Lint.Error; f Lint.Warning ] in
        Alcotest.(check int) "error" 1 (List.length (Lint.at_least Lint.Error all));
        Alcotest.(check int) "warning" 2
          (List.length (Lint.at_least Lint.Warning all));
        Alcotest.(check int) "info" 3 (List.length (Lint.at_least Lint.Info all)))
  ]

(* ---- validate rides on the lint framework ---- *)

let validate_tests =
  [ Alcotest.test_case "validate findings carry VAL codes" `Quick (fun () ->
        let module RM = Cm_uml.Resource_model in
        let dup =
          { Cm_uml.Cinder_model.resources with
            RM.resources =
              Cm_uml.Cinder_model.resources.RM.resources
              @ [ RM.normal "volume" [] ]
          }
        in
        let issues = Cm_uml.Validate.resource_model dup in
        Alcotest.(check bool) "nonempty" true (issues <> []);
        Alcotest.(check bool) "VAL-coded" true
          (List.for_all
             (fun (f : Lint.finding) ->
               String.length f.rule = 6 && String.sub f.rule 0 3 = "VAL")
             issues));
    Alcotest.test_case "full catalogue spans VAL and AN rules" `Quick
      (fun () ->
        let codes =
          List.map (fun (r : Lint.rule) -> r.code) Rules.full_catalogue
        in
        Alcotest.(check bool) "has VAL001" true (List.mem "VAL001" codes);
        Alcotest.(check bool) "has AN009" true (List.mem "AN009" codes);
        Alcotest.(check int) "distinct" (List.length codes)
          (List.length (List.sort_uniq String.compare codes)))
  ]

(* ---- typechecker diagnostics carry expected/actual types ---- *)

let typecheck_tests =
  [ Alcotest.test_case "type mismatch names both types" `Quick (fun () ->
        let signature = [ ("volume", Ty.Object [ ("size", Ty.Int) ]) ] in
        match
          Cm_ocl.Typecheck.check_boolean signature (ocl "volume.size = 'x'")
        with
        | [ err ] ->
          Alcotest.(check (option string)) "expected" (Some "Integer")
            (Option.map Ty.to_string err.expected);
          Alcotest.(check (option string)) "actual" (Some "String")
            (Option.map Ty.to_string err.actual);
          let rendered = Fmt.str "%a" Cm_ocl.Typecheck.pp_error err in
          Alcotest.(check bool) "message mentions both" true
            (Lint.contains rendered "expected Integer, found String")
        | errs -> Alcotest.failf "expected one error, got %d" (List.length errs));
    Alcotest.test_case "non-boolean top level reports actual type" `Quick
      (fun () ->
        let signature = [ ("volume", Ty.Object [ ("size", Ty.Int) ]) ] in
        match
          Cm_ocl.Typecheck.check_boolean signature (ocl "volume.size + 1")
        with
        | [ err ] ->
          Alcotest.(check (option string)) "expected Bool" (Some "Boolean")
            (Option.map Ty.to_string err.expected);
          Alcotest.(check (option string)) "actual Integer" (Some "Integer")
            (Option.map Ty.to_string err.actual)
        | errs -> Alcotest.failf "expected one error, got %d" (List.length errs))
  ]

let () =
  Alcotest.run "analysis"
    [ ("solver", solver_tests);
      ("defect-corpus", corpus_tests);
      ("corpus-meta", corpus_meta_tests);
      ("shipped-models", clean_tests);
      ("crosscheck", crosscheck_tests);
      ("lint", lint_tests);
      ("validate-on-lint", validate_tests);
      ("typecheck-diagnostics", typecheck_tests)
    ]
