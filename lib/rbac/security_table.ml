type entry = {
  resource : string;
  req_id : string;
  meth : Cm_http.Meth.t;
  roles : string list;
}

type t = entry list

let entry ~resource ~req meth roles = { resource; req_id = req; meth; roles }

let find ~resource ~meth t =
  List.find_opt
    (fun e ->
      String.lowercase_ascii e.resource = String.lowercase_ascii resource
      && e.meth = meth)
    t

let requirement_ids t =
  List.map (fun e -> e.req_id) t |> List.sort_uniq String.compare

let allowed t assignment ~resource ~meth subject =
  match find ~resource ~meth t with
  | None -> false
  | Some e ->
    let subject_roles = Role_assignment.roles_of subject assignment in
    List.exists (fun role -> List.mem role subject_roles) e.roles

let auth_guard e assignment =
  let groups =
    e.roles
    |> List.concat_map (fun role -> Role_assignment.groups_of_role role assignment)
    |> List.sort_uniq String.compare
  in
  let group_atom group =
    Cm_ocl.Ast.Member
      ( Cm_ocl.Ast.Nav (Cm_ocl.Ast.Var "user", "groups"),
        true,
        Cm_ocl.Ast.String_lit group )
  in
  Cm_ocl.Ast.disj (List.map group_atom groups)

let cinder =
  let open Cm_http.Meth in
  [ entry ~resource:"volume" ~req:"1.1" GET [ "admin"; "member"; "user" ];
    entry ~resource:"volume" ~req:"1.2" PUT [ "admin"; "member" ];
    entry ~resource:"volume" ~req:"1.3" POST [ "admin"; "member" ];
    entry ~resource:"volume" ~req:"1.4" DELETE [ "admin" ];
    (* Listing the collection requires the same right as reading an
       item. *)
    entry ~resource:"Volumes" ~req:"1.1" GET [ "admin"; "member"; "user" ]
  ]

let glance =
  let open Cm_http.Meth in
  [ entry ~resource:"image" ~req:"2.1" GET [ "admin"; "member"; "user" ];
    entry ~resource:"image" ~req:"2.2" PUT [ "admin"; "member" ];
    entry ~resource:"image" ~req:"2.3" POST [ "admin"; "member" ];
    entry ~resource:"image" ~req:"2.4" DELETE [ "admin" ];
    entry ~resource:"Images" ~req:"2.1" GET [ "admin"; "member"; "user" ]
  ]

(* The cross-service table: block-storage and image entries as above,
   plus the compute surface.  Role grants mirror the cloud's default
   policy: reads for everyone, mutations for admin/member, deletions for
   admin only; attach/detach follow volume:attach/volume:detach
   (admin|member). *)
let cross =
  let open Cm_http.Meth in
  cinder @ glance
  @ [ entry ~resource:"server" ~req:"3.5" GET [ "admin"; "member"; "user" ];
      entry ~resource:"server" ~req:"3.5" POST [ "admin"; "member" ];
      entry ~resource:"server" ~req:"3.6" DELETE [ "admin" ];
      entry ~resource:"Servers" ~req:"3.5" GET [ "admin"; "member"; "user" ];
      entry ~resource:"attachment" ~req:"3.1" POST [ "admin"; "member" ];
      entry ~resource:"detachment" ~req:"3.2" POST [ "admin"; "member" ]
    ]

let cinder_assignment =
  Role_assignment.of_list
    [ ("proj_administrator", "admin");
      ("service_architect", "member");
      ("business_analyst", "user")
    ]

let render ?resources t assignment =
  let keep e =
    match resources with
    | None -> true
    | Some names ->
      List.exists
        (fun n -> String.lowercase_ascii n = String.lowercase_ascii e.resource)
        names
  in
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%-10s %-7s %-8s %-8s %s" "Resource" "SecReq" "Request" "Role" "UserGroup";
  line "%s" (String.make 60 '-');
  let previous_resource = ref "" in
  List.iter
    (fun e ->
      if keep e then begin
        let resource_cell =
          if e.resource = !previous_resource then "" else e.resource
        in
        previous_resource := e.resource;
        List.iteri
          (fun i role ->
            let groups = Role_assignment.groups_of_role role assignment in
            let group_cell = String.concat "," groups in
            if i = 0 then
              line "%-10s %-7s %-8s %-8s %s" resource_cell e.req_id
                (Cm_http.Meth.to_string e.meth)
                role group_cell
            else line "%-10s %-7s %-8s %-8s %s" "" "" "" role group_cell)
          e.roles
      end)
    t;
  Buffer.contents buf

let pp_entry ppf e =
  Fmt.pf ppf "%s %s %a [%s]" e.req_id e.resource Cm_http.Meth.pp e.meth
    (String.concat "," e.roles)
