(** The security-requirements table (Table I of the paper).

    Each entry states which roles (and, through the project's role
    assignment, which usergroups) may invoke a method on a resource, and
    carries the requirement identifier used for traceability. *)

type entry = {
  resource : string;  (** resource definition name, e.g. "volume" *)
  req_id : string;  (** e.g. "1.4" *)
  meth : Cm_http.Meth.t;
  roles : string list;  (** roles allowed to perform the request *)
}

type t = entry list

val entry :
  resource:string -> req:string -> Cm_http.Meth.t -> string list -> entry

val find : resource:string -> meth:Cm_http.Meth.t -> t -> entry option
val requirement_ids : t -> string list

val allowed : t -> Role_assignment.t -> resource:string ->
  meth:Cm_http.Meth.t -> Subject.t -> bool
(** The access decision: is some role of the subject among the entry's
    roles?  A (resource, method) pair with no entry is denied —
    fail-closed, every URI must be safeguarded. *)

val auth_guard : entry -> Role_assignment.t -> Cm_ocl.Ast.expr
(** The OCL guard encoding the entry, as a disjunction over the
    usergroups assigned any allowed role:
    [user.groups->includes('proj_administrator') or ...].  This is the
    "authorization information added into the appropriate views" (§VI,
    step 3). *)

val cinder : t
(** Table I: GET (1.1) for admin, member, user; PUT (1.2) and POST (1.3)
    for admin, member; DELETE (1.4) for admin only — on [volume]; plus
    the listing entry for the [Volumes] collection under 1.1. *)

val glance : t
(** The image-service analogue using the 2.x requirement range: GET
    (2.1) for admin, member, user; PUT (2.2) and POST (2.3) for admin,
    member; DELETE (2.4) for admin only — on [image]; plus the listing
    entry for [Images] under 2.1. *)

val cross : t
(** The cross-service table: {!cinder} and {!glance} plus the compute
    surface in the 3.x range — server GET (3.5) for all roles, POST
    (3.5) for admin/member, DELETE (3.6) for admin; the [Servers]
    listing under 3.5; and POST on [attachment] (3.1) / [detachment]
    (3.2) for admin/member, mirroring the cloud's volume:attach and
    volume:detach policy. *)

val cinder_assignment : Role_assignment.t
(** The usergroup/role mapping of Table I: proj_administrator -> admin,
    service_architect -> member, business_analyst -> user. *)

val render : ?resources:string list -> t -> Role_assignment.t -> string
(** Render in the layout of Table I (Resource / SecReq / Request / Role /
    UserGroup), optionally filtered to the given resources. *)

val pp_entry : Format.formatter -> entry -> unit
