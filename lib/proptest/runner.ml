type oracle_stats = { name : string; cases : int; failures : int }

type report = {
  seed : int;
  shrink : bool;
  total_cases : int;
  stats : oracle_stats list;
  failures : Oracle.failure list;
}

let allocate ~cases oracles =
  let total_weight =
    List.fold_left (fun acc (o : Oracle.t) -> acc + o.weight) 0 oracles
  in
  if total_weight = 0 then List.map (fun o -> (o, 0)) oracles
  else begin
    let base =
      List.map
        (fun (o : Oracle.t) -> (o, cases * o.weight / total_weight))
        oracles
    in
    let assigned = List.fold_left (fun acc (_, n) -> acc + n) 0 base in
    let leftover = cases - assigned in
    (* Hand the integer-division remainder to the first oracles, one
       case each — keeps the total exact and the split deterministic. *)
    List.mapi (fun i (o, n) -> (o, if i < leftover then n + 1 else n)) base
  end

let size_for ~max_size index = 2 + (index mod max_size)

let run ?(oracles = Oracle.all) ?(shrink = true) ?(max_size = 10) ~seed ~cases
    () =
  let plan = allocate ~cases oracles in
  let stats, failures =
    List.fold_left
      (fun (stats, failures) ((o : Oracle.t), n) ->
        let oracle_failures = ref [] in
        for index = 0 to n - 1 do
          match
            o.run_case ~shrink ~seed ~index ~size:(size_for ~max_size index)
          with
          | Oracle.Pass -> ()
          | Oracle.Fail f -> oracle_failures := f :: !oracle_failures
        done;
        let fs = List.rev !oracle_failures in
        ( { name = o.name; cases = n; failures = List.length fs } :: stats,
          fs :: failures ))
      ([], []) plan
  in
  { seed; shrink; total_cases = cases;
    stats = List.rev stats;
    failures = List.concat (List.rev failures)
  }

let failed report = report.failures <> []

let render report =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "fuzz: seed=%d cases=%d shrink=%b" report.seed report.total_cases
    report.shrink;
  List.iter
    (fun s -> line "  %-8s %6d cases  %d failures" s.name s.cases s.failures)
    report.stats;
  let shown = 20 in
  List.iteri
    (fun i (f : Oracle.failure) ->
      if i < shown then begin
        line "FAIL %s case %d (%d shrink steps): %s" f.oracle f.index
          f.shrink_steps f.detail;
        line "  counterexample: %s" f.repr;
        line "  corpus: %s" (Corpus.to_line f.entry)
      end)
    report.failures;
  let n = List.length report.failures in
  if n > shown then line "... and %d more failures" (n - shown);
  if n = 0 then line "result: OK (no conformance mismatches)"
  else line "result: %d failure%s" n (if n = 1 then "" else "s");
  Buffer.contents buf

let replay_corpus oracles entries =
  List.filter_map
    (fun (e : Corpus.entry) ->
      match List.find_opt (fun (o : Oracle.t) -> o.name = e.oracle) oracles with
      | None -> Some (e, "unknown oracle " ^ e.oracle)
      | Some o ->
        (match o.replay e with
         | Ok () -> None
         | Error detail -> Some (e, detail)))
    entries
