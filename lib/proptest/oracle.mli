(** The differential oracles the fuzzer drives.

    - [engine]: random well-typed OCL expressions must evaluate to the
      same value and Kleene verdict under the staged compiler
      ({!Cm_ocl.Compile}, both the simplifying and raw pipelines) and
      the tree-walking interpreter ({!Cm_ocl.Eval}), in every random
      environment, with and without an attached pre-state.
    - [rbac]: on random security tables, role assignments and subjects,
      the generated OCL authorization guard must agree between both
      engines {e and} with the reference access decision
      ({!Cm_rbac.Security_table.allowed}).
    - [codegen]: random expressions and random state-machine models must
      survive the printers — pretty-print/re-parse is the identity, and
      the OCL-to-Python translation of generated contracts never raises.
    - [monitor]: random request traces against the simulated cloud must
      produce identical verdict sequences under Interpreted and Compiled
      monitors, no violation on the fault-free cloud, and at least one
      violation for every injected mutant (the randomized
      generalization of the paper's three-mutant experiment).
    - [incremental]: the same random traces must produce bit-identical
      outcomes (status, full conformance string, verdicts, covered
      requirements — no normalization) under [Full_eval] and
      [Incremental] compiled monitors, and every mutant killed under
      full re-evaluation must stay killed under delta-driven
      evaluation.

    Every case is a pure function of [(seed, index, size)]; a failure is
    shrunk greedily and packaged as a replayable {!Corpus.entry}. *)

type failure = {
  oracle : string;
  index : int;
  repr : string;  (** shrunk counterexample, human-readable *)
  detail : string;  (** what disagreed *)
  shrink_steps : int;
  entry : Corpus.entry;  (** replayable record for the corpus *)
}

type verdict = Pass | Fail of failure

type t = {
  name : string;
  weight : int;  (** share of the case budget *)
  run_case : shrink:bool -> seed:int -> index:int -> size:int -> verdict;
  replay : Corpus.entry -> (unit, string) result;
      (** Re-check a corpus entry; [Ok ()] means it passes now. *)
}

val engine : t
val rbac : t
val codegen : t
val monitor : t

val chaos : t
(** Verdict integrity under unreliable transport: a random trace runs
    once fault-free and once under a random bounded chaos profile
    ({!Chaos_gen}) with the monitor's resilience layer on.  Definite
    verdicts must not flip between the two runs, and a mutant the
    fault-free run kills must still be killed under chaos. *)

val workload : t
(** Workload-DSL integrity: compiling the case's (mix, seed) twice must
    yield bit-identical traces, and executing the trace against the
    cross-service monitor must produce identical strict outcome
    sequences under full and incremental evaluation with a
    violation-free baseline. *)

val journal : t
(** Durable-journal integrity: the case's workload mix is recorded live
    through the journaled monitor, then the scanned journal is replayed
    against a fresh same-seed cloud under both [Full_eval] and
    [Incremental]; the replayed verdict lines must be bit-identical to
    the journaled ones. *)

val all : t list
val find : string -> t option
