(** Size-driven generator combinators.

    A generator is a function of a {!Rng.t} stream and a [size] budget;
    recursive generators spend the budget so that generated structures
    stay bounded and early cases (small sizes) stay readable.  All
    combinators are deterministic in the stream. *)

type 'a t = Rng.t -> size:int -> 'a

val return : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val pair : 'a t -> 'b t -> ('a * 'b) t

val int_range : int -> int -> int t
(** Inclusive; ignores [size]. *)

val bool : bool t

val oneof : 'a t list -> 'a t
(** Uniform choice among sub-generators. *)

val oneof_const : 'a list -> 'a t
(** Uniform choice among constants. *)

val frequency : (int * 'a t) list -> 'a t
(** Weighted choice; weights must be positive. *)

val list_len : int t -> 'a t -> 'a list t
(** Length drawn from the first generator. *)

val sized : (int -> 'a t) -> 'a t
(** Read the current size budget. *)

val resize : int -> 'a t -> 'a t
(** Override the size budget for a sub-generator. *)

val smaller : 'a t -> 'a t
(** Halve the budget (recursion step). *)

val run : seed:int -> size:int -> 'a t -> 'a
(** Run against a fresh stream — convenience for tests. *)
