module Ast = Cm_ocl.Ast
module Ty = Cm_ocl.Ty
module Eval = Cm_ocl.Eval
module Value = Cm_ocl.Value
module Compile = Cm_ocl.Compile
module Pretty = Cm_ocl.Pretty
module Typecheck = Cm_ocl.Typecheck
module Contract = Cm_contracts.Contract
module Generate = Cm_contracts.Generate
module Runtime = Cm_contracts.Runtime
module BM = Cm_uml.Behavior_model
module Meth = Cm_http.Meth
module Security_table = Cm_rbac.Security_table
module Role_assignment = Cm_rbac.Role_assignment
module Subject = Cm_rbac.Subject
module Mutant = Cm_mutation.Mutant
module Scenario = Cm_mutation.Scenario
module Outcome = Cm_monitor.Outcome

type failure = {
  oracle : string;
  index : int;
  repr : string;
  detail : string;
  shrink_steps : int;
  entry : Corpus.entry;
}

type verdict = Pass | Fail of failure

type t = {
  name : string;
  weight : int;
  run_case : shrink:bool -> seed:int -> index:int -> size:int -> verdict;
  replay : Corpus.entry -> (unit, string) result;
}

(* Streams: every case splits its stream into independent substreams up
   front, so shrinking one component (say, the expression) re-evaluates
   the property against the *same* environments that exposed the
   failure. *)
let case_streams ~seed index =
  let rng = Rng.case ~seed index in
  let a = Rng.split rng in
  let b = Rng.split rng in
  (a, b)

(* ---- engine conformance ---- *)

(* The same discipline as test_compile.agree_on: one plan, compile both
   pipelines, then build frames. *)
let check_expr_on expr (env, pre) =
  let plan = Compile.plan () in
  let staged = Compile.compile plan expr in
  let staged_raw = Compile.compile_raw plan expr in
  let ienv =
    match pre with Some p -> Eval.with_pre ~pre:p env | None -> env
  in
  let frame =
    let fr = Compile.frame_of_env plan env in
    match pre with
    | Some p -> Compile.with_pre ~pre:(Compile.frame_of_env plan p) fr
    | None -> fr
  in
  let expected = Eval.eval ienv expr in
  let got = Compile.eval staged frame in
  let got_raw = Compile.eval staged_raw frame in
  if got <> expected then
    Some (Fmt.str "compiled %a <> interpreted %a" Value.pp got Value.pp expected)
  else if got_raw <> expected then
    Some
      (Fmt.str "raw-compiled %a <> interpreted %a" Value.pp got_raw Value.pp
         expected)
  else if
    not
      (Eval.verdict_equal (Eval.verdict ienv expr)
         (Compile.verdict staged frame))
  then Some "verdict mismatch"
  else None

let env_pairs rng n =
  List.init n (fun _ ->
      let env = Ocl_gen.gen_env rng ~size:0 in
      let pre =
        if Rng.bool rng then Some (Ocl_gen.gen_env rng ~size:0) else None
      in
      (env, pre))

let envs_per_case = 6

let check_expr_all expr envs =
  let rec first = function
    | [] -> None
    | pair :: rest ->
      (match check_expr_on expr pair with
       | Some detail -> Some detail
       | None -> first rest)
  in
  first envs

let shrink_failing_expr ~shrink expr fails =
  if not shrink then (expr, 0)
  else
    Shrink.minimize ~candidates:Ocl_gen.shrink_expr
      ~still_fails:(fun e -> fails e <> None)
      expr

let engine_run ~shrink ~seed ~index ~size =
  let rng_expr, rng_envs = case_streams ~seed index in
  let expr = Ocl_gen.gen_bool rng_expr ~size in
  let envs = env_pairs rng_envs envs_per_case in
  let fails e = check_expr_all e envs in
  match fails expr with
  | None -> Pass
  | Some detail0 ->
    let shrunk, steps = shrink_failing_expr ~shrink expr fails in
    let detail = Option.value ~default:detail0 (fails shrunk) in
    let repr = Pretty.to_string shrunk in
    Fail
      { oracle = "engine"; index; repr; detail; shrink_steps = steps;
        entry =
          Corpus.make ~oracle:"engine" ~seed ~index ~size [ ("expr", repr) ]
      }

let engine_replay (entry : Corpus.entry) =
  let rng_expr, rng_envs = case_streams ~seed:entry.seed entry.index in
  let expr_result =
    match List.assoc_opt "expr" entry.payload with
    | Some text ->
      (match Cm_ocl.Ocl_parser.parse text with
       | Ok expr -> Ok expr
       | Error err ->
         Error (Fmt.str "corpus expr does not parse: %a" Cm_ocl.Ocl_parser.pp_error err))
    | None -> Ok (Ocl_gen.gen_bool rng_expr ~size:entry.size)
  in
  match expr_result with
  | Error _ as err -> err
  | Ok expr ->
    (match check_expr_all expr (env_pairs rng_envs envs_per_case) with
     | None -> Ok ()
     | Some detail ->
       Error (Fmt.str "%s on %s" detail (Pretty.to_string expr)))

let engine =
  { name = "engine"; weight = 5; run_case = engine_run; replay = engine_replay }

(* ---- RBAC guard conformance ---- *)

let groups_pool =
  [ "proj_administrator"; "service_architect"; "business_analyst"; "auditors" ]

let roles_pool = [ "admin"; "member"; "user" ]
let rbac_meths = Meth.[ GET; PUT; POST; DELETE ]

let subset rng items = List.filter (fun _ -> Rng.bool rng) items

let rbac_case rng =
  let assignment =
    Role_assignment.of_list
      (List.concat_map
         (fun group ->
           List.filter_map
             (fun role ->
               if Rng.bool rng then Some (group, role) else None)
             roles_pool)
         groups_pool)
  in
  let table =
    List.filteri (fun i _ -> i >= 0) (* keep order deterministic *)
      (List.concat
         (List.mapi
            (fun i meth ->
              if Rng.int rng 4 = 0 then []
              else
                [ Security_table.entry ~resource:"volume"
                    ~req:(Printf.sprintf "f.%d" (i + 1))
                    meth (subset rng roles_pool)
                ])
            rbac_meths))
  in
  let subject = Subject.make "fuzz-user" (subset rng groups_pool) in
  (assignment, table, subject)

let rbac_repr assignment table subject =
  Fmt.str "assignment=[%s] entries=[%s] subject-groups=[%s]"
    (String.concat "; "
       (List.map
          (fun (g, r) -> g ^ "->" ^ r)
          (Role_assignment.to_list assignment)))
    (String.concat "; "
       (List.map
          (fun (e : Security_table.entry) ->
            Meth.to_string e.meth ^ ":" ^ String.concat "," e.roles)
          table))
    (String.concat "," subject.Subject.groups)

let rbac_check (assignment, table, subject) =
  let user_doc = Role_assignment.enrich subject assignment in
  let env = Eval.env_of_bindings [ ("user", user_doc) ] in
  let rec first = function
    | [] -> None
    | (e : Security_table.entry) :: rest ->
      let guard = Security_table.auth_guard e assignment in
      let interpreted = Eval.check env guard in
      let plan = Compile.plan () in
      let compiled_guard = Compile.compile plan guard in
      let compiled = Compile.check compiled_guard (Compile.frame_of_env plan env) in
      let allowed =
        Security_table.allowed table assignment ~resource:"volume"
          ~meth:e.meth subject
      in
      if interpreted <> compiled then
        Some
          (Fmt.str "%s guard: interpreted %a <> compiled %a"
             (Meth.to_string e.meth) Value.pp_tribool interpreted
             Value.pp_tribool compiled)
      else if (interpreted = Value.True) <> allowed then
        Some
          (Fmt.str "%s guard truth %a contradicts allowed=%b on %s"
             (Meth.to_string e.meth) Value.pp_tribool interpreted allowed
             (Pretty.to_string guard))
      else first rest
  in
  first table

let rbac_run ~shrink:_ ~seed ~index ~size =
  let rng, _ = case_streams ~seed index in
  let (assignment, table, subject) as case = rbac_case rng in
  match rbac_check case with
  | None -> Pass
  | Some detail ->
    Fail
      { oracle = "rbac"; index; detail;
        repr = rbac_repr assignment table subject;
        shrink_steps = 0;
        entry = Corpus.make ~oracle:"rbac" ~seed ~index ~size []
      }

let rbac_replay (entry : Corpus.entry) =
  let rng, _ = case_streams ~seed:entry.seed entry.index in
  match rbac_check (rbac_case rng) with
  | None -> Ok ()
  | Some detail -> Error detail

let rbac = { name = "rbac"; weight = 2; run_case = rbac_run; replay = rbac_replay }

(* ---- codegen round-trip ---- *)

(* Round-trip and translation failures only — the well-typedness
   self-check is deliberately *not* part of this predicate, so shrinking
   cannot walk out of the typed fragment and call it progress. *)
let codegen_fails expr =
  match Cm_ocl.Ocl_parser.parse (Pretty.to_string expr) with
  | Error err ->
    Some (Fmt.str "re-parse failed: %a" Cm_ocl.Ocl_parser.pp_error err)
  | Ok reparsed when not (Ast.equal reparsed expr) ->
    Some
      (Fmt.str "print/parse round-trip changed the expression: got %s"
         (Pretty.to_string reparsed))
  | Ok _ ->
    (match Cm_codegen.Ocl_to_python.translate expr with
     | exception exn ->
       Some ("python translation raised " ^ Printexc.to_string exn)
     | "" -> Some "empty python translation"
     | _ ->
       (match Cm_codegen.Ocl_to_python.variables expr with
        | exception exn ->
          Some ("python variable extraction raised " ^ Printexc.to_string exn)
        | _ -> None))

let cinder_security =
  { Generate.table = Security_table.cinder;
    assignment = Security_table.cinder_assignment
  }

let gen_machine rng ~size =
  let n_states = 2 + Rng.int rng 3 in
  let state_name i = Printf.sprintf "S%d" i in
  let small = max 2 (min 5 size) in
  let states =
    List.init n_states (fun i ->
        BM.state (state_name i) (Ocl_gen.gen_bool rng ~size:small))
  in
  let transitions =
    List.init
      (1 + Rng.int rng 5)
      (fun _ ->
        let guard =
          if Rng.bool rng then Some (Ocl_gen.gen_bool rng ~size:3) else None
        in
        let effect =
          if Rng.bool rng then Some (Ocl_gen.gen_bool rng ~size:3) else None
        in
        BM.transition ?guard ?effect
          ~source:(state_name (Rng.int rng n_states))
          ~target:(state_name (Rng.int rng n_states))
          (Rng.choose rng rbac_meths) "volume")
  in
  { BM.machine_name = "FuzzMachine"; context = "project"; initial = "S0";
    states; transitions
  }

let contract_exprs (c : Contract.t) =
  [ ("pre", c.Contract.pre);
    ("functional_pre", c.Contract.functional_pre);
    ("post", c.Contract.post)
  ]
  @ (match c.Contract.auth_guard with
     | Some g -> [ ("auth_guard", g) ]
     | None -> [])
  @ List.mapi
      (fun i (b : Contract.branch) ->
        (Printf.sprintf "branch-%d" i, b.Contract.branch_pre))
      c.Contract.branches

let codegen_case ~shrink ~seed ~index ~size rng =
  let fail detail expr steps =
    let repr = Pretty.to_string expr in
    Fail
      { oracle = "codegen"; index; repr; detail; shrink_steps = steps;
        entry =
          Corpus.make ~oracle:"codegen" ~seed ~index ~size [ ("expr", repr) ]
      }
  in
  if Rng.int rng 3 < 2 then begin
    (* Expression mode: generator self-check, then printer round-trips. *)
    let expr = Ocl_gen.gen_bool rng ~size in
    if not (Typecheck.well_typed Ocl_gen.signature expr) then
      fail "generator produced an ill-typed expression" expr 0
    else
      match codegen_fails expr with
      | None -> Pass
      | Some detail0 ->
        let shrunk, steps =
          if shrink then
            Shrink.minimize ~candidates:Ocl_gen.shrink_expr
              ~still_fails:(fun e -> codegen_fails e <> None)
              expr
          else (expr, 0)
        in
        let detail = Option.value ~default:detail0 (codegen_fails shrunk) in
        fail detail shrunk steps
  end
  else begin
    (* Machine mode: random state machine -> generated contracts -> every
       contract expression survives the printers. *)
    let machine = gen_machine rng ~size in
    let security = if Rng.bool rng then Some cinder_security else None in
    match Generate.all ?security machine with
    | Error msg ->
      Fail
        { oracle = "codegen"; index;
          repr = Fmt.str "machine with %d transitions" (List.length machine.BM.transitions);
          detail = "contract generation failed: " ^ msg;
          shrink_steps = 0;
          entry = Corpus.make ~oracle:"codegen" ~seed ~index ~size []
        }
    | Ok contracts ->
      let rec first = function
        | [] -> Pass
        | (part, expr) :: rest ->
          (match codegen_fails expr with
           | None -> first rest
           | Some detail ->
             let shrunk, steps =
               if shrink then
                 Shrink.minimize ~candidates:Ocl_gen.shrink_expr
                   ~still_fails:(fun e -> codegen_fails e <> None)
                   expr
               else (expr, 0)
             in
             let detail =
               Fmt.str "%s (in generated %s)"
                 (Option.value ~default:detail (codegen_fails shrunk))
                 part
             in
             fail detail shrunk steps)
      in
      first (List.concat_map contract_exprs contracts)
  end

let codegen_run ~shrink ~seed ~index ~size =
  let rng, _ = case_streams ~seed index in
  codegen_case ~shrink ~seed ~index ~size rng

let codegen_replay (entry : Corpus.entry) =
  match List.assoc_opt "expr" entry.payload with
  | Some text ->
    (match Cm_ocl.Ocl_parser.parse text with
     | Error err ->
       Error (Fmt.str "corpus expr does not parse: %a" Cm_ocl.Ocl_parser.pp_error err)
     | Ok expr ->
       (match codegen_fails expr with
        | None -> Ok ()
        | Some detail -> Error detail))
  | None ->
    let rng, _ = case_streams ~seed:entry.seed entry.index in
    (match
       codegen_case ~shrink:false ~seed:entry.seed ~index:entry.index
         ~size:entry.size rng
     with
     | Pass -> Ok ()
     | Fail f -> Error f.detail)

let codegen =
  { name = "codegen"; weight = 2; run_case = codegen_run;
    replay = codegen_replay
  }

(* ---- monitor conformance ---- *)

(* Undefined verdicts carry engine-specific fault-localization hints
   (the interpreter names the undefined atoms, the compiler does not);
   normalize them away — the *class* of the verdict must agree. *)
let conf_key = function
  | Outcome.Undefined _ -> "undefined"
  | c -> Outcome.conformance_to_string c

let verdict_key = function
  | None -> "-"
  | Some Eval.Holds -> "H"
  | Some Eval.Violated -> "V"
  | Some (Eval.Undefined_verdict _) -> "U"

let outcome_key (o : Outcome.t) =
  Fmt.str "%d|%s|%s|%s|%s" o.response.Cm_http.Response.status
    (conf_key o.conformance) (verdict_key o.pre_verdict)
    (verdict_key o.post_verdict)
    (String.concat "," o.covered_requirements)

let has_violation outcomes =
  List.exists (fun (o : Outcome.t) -> Outcome.is_violation o.conformance) outcomes

let mutant_engine index =
  if index land 1 = 0 then Runtime.Compiled else Runtime.Interpreted

let monitor_check ~index ~mutant trace =
  match
    ( Scenario.setup ~engine:Runtime.Interpreted (),
      Scenario.setup ~engine:Runtime.Compiled () )
  with
  | Error msgs, _ | _, Error msgs ->
    Some ("monitor setup failed: " ^ String.concat "; " msgs)
  | Ok ctx_i, Ok ctx_c ->
    let out_i = Trace_gen.run ctx_i trace in
    let out_c = Trace_gen.run ctx_c trace in
    let keys_i = List.map outcome_key out_i in
    let keys_c = List.map outcome_key out_c in
    if keys_i <> keys_c then begin
      let rec first_diff n a b =
        match a, b with
        | x :: a', y :: b' -> if x = y then first_diff (n + 1) a' b' else
            Fmt.str "exchange %d: interpreted [%s] vs compiled [%s]" n x y
        | [], y :: _ -> Fmt.str "exchange %d only under compiled: [%s]" n y
        | x :: _, [] -> Fmt.str "exchange %d only under interpreted: [%s]" n x
        | [], [] -> "lengths differ"
      in
      Some ("engine verdicts diverge at " ^ first_diff 0 keys_i keys_c)
    end
    else if has_violation out_c then
      Some "violation raised on the fault-free cloud"
    else begin
      match
        Scenario.setup ~engine:(mutant_engine index)
          ~faults:mutant.Mutant.faults ()
      with
      | Error msgs -> Some ("mutant setup failed: " ^ String.concat "; " msgs)
      | Ok ctx_m ->
        if has_violation (Trace_gen.run ctx_m trace) then None
        else Some ("mutant " ^ mutant.Mutant.name ^ " survived the trace")
    end

let monitor_noise_size size = min size 12

let monitor_run ~shrink ~seed ~index ~size =
  let rng_noise, rng_probe = case_streams ~seed index in
  let mutants = Mutant.all in
  let mutant = List.nth mutants (index mod List.length mutants) in
  let noise = Trace_gen.gen_noise rng_noise ~size:(monitor_noise_size size) in
  let tail =
    { Trace_gen.user = "alice"; op = Trace_gen.Drain }
    :: Trace_gen.probe_for mutant.Mutant.name rng_probe
  in
  let fails noise = monitor_check ~index ~mutant (noise @ tail) in
  match fails noise with
  | None -> Pass
  | Some detail0 ->
    let shrunk, steps =
      if shrink then
        (* Each evaluation spins up three clouds: keep the budget tight. *)
        Shrink.minimize ~budget:30 ~candidates:Shrink.shrink_list
          ~still_fails:(fun n -> fails n <> None)
          noise
      else (noise, 0)
    in
    let detail = Option.value ~default:detail0 (fails shrunk) in
    let trace = shrunk @ tail in
    Fail
      { oracle = "monitor"; index; detail; shrink_steps = steps;
        repr = Fmt.str "%s vs %s" mutant.Mutant.name (Trace_gen.to_string trace);
        entry =
          Corpus.make ~oracle:"monitor" ~seed ~index ~size
            [ ("mutant", mutant.Mutant.name);
              ("trace", Trace_gen.to_string trace)
            ]
      }

let monitor_replay (entry : Corpus.entry) =
  let mutant_name =
    match List.assoc_opt "mutant" entry.payload with
    | Some name -> name
    | None ->
      (List.nth Mutant.all (entry.index mod List.length Mutant.all)).Mutant.name
  in
  match Mutant.find mutant_name with
  | None -> Error ("unknown mutant " ^ mutant_name)
  | Some mutant ->
    let trace_result =
      match List.assoc_opt "trace" entry.payload with
      | Some text -> Trace_gen.of_string text
      | None ->
        let rng_noise, rng_probe = case_streams ~seed:entry.seed entry.index in
        let noise =
          Trace_gen.gen_noise rng_noise ~size:(monitor_noise_size entry.size)
        in
        Ok
          (noise
          @ ({ Trace_gen.user = "alice"; op = Trace_gen.Drain }
            :: Trace_gen.probe_for mutant.Mutant.name rng_probe))
    in
    (match trace_result with
     | Error msg -> Error ("corpus trace does not parse: " ^ msg)
     | Ok trace ->
       (match monitor_check ~index:entry.index ~mutant trace with
        | None -> Ok ()
        | Some detail -> Error detail))

let monitor =
  { name = "monitor"; weight = 1; run_case = monitor_run;
    replay = monitor_replay
  }

(* ---- chaos: verdict integrity under unreliable transport ---- *)

(* Position-wise comparison of the fault-free and chaos verdict
   sequences for the same trace.  Only steps where both runs issued the
   same request are comparable; a failure is two *definite* verdicts
   disagreeing (degrading to Undefined/Degraded/Monitor_error is the
   allowed escape hatch). *)
let chaos_flip ref_out chaos_out =
  let rec walk i refs steps =
    match refs, steps with
    | (r : Outcome.t) :: rtl, (s : Outcome.t) :: stl ->
      if
        r.request.Cm_http.Request.meth = s.request.Cm_http.Request.meth
        && r.request.Cm_http.Request.path = s.request.Cm_http.Request.path
        && Outcome.is_definite r.conformance
        && Outcome.is_definite s.conformance
        && r.conformance <> s.conformance
      then
        Some
          (Fmt.str "exchange %d (%s %s): fault-free %s, chaos %s" i
             (Meth.to_string r.request.Cm_http.Request.meth)
             r.request.Cm_http.Request.path
             (Outcome.conformance_to_string r.conformance)
             (Outcome.conformance_to_string s.conformance))
      else walk (i + 1) rtl stl
    | _, _ -> None
  in
  walk 0 ref_out chaos_out

let chaos_check ~mutant ~profile ~chaos_seed trace =
  match
    ( Scenario.setup ~faults:mutant.Mutant.faults (),
      Scenario.setup ~faults:mutant.Mutant.faults ~chaos:profile ~chaos_seed
        ~resilience:Cm_mutation.Campaign.chaos_policy () )
  with
  | Error msgs, _ | _, Error msgs ->
    Some ("chaos setup failed: " ^ String.concat "; " msgs)
  | Ok ref_ctx, Ok chaos_ctx ->
    let ref_out = Trace_gen.run ref_ctx trace in
    let chaos_out = Trace_gen.run chaos_ctx trace in
    (match chaos_flip ref_out chaos_out with
     | Some detail -> Some ("verdict flip under chaos: " ^ detail)
     | None ->
       if has_violation ref_out && not (has_violation chaos_out) then
         Some ("kill of " ^ mutant.Mutant.name ^ " lost under chaos")
       else None)

(* Everything a chaos case needs is re-derivable from (seed, index,
   size), so corpus entries carry no payload and replay regenerates. *)
let chaos_case_inputs ~seed ~index ~size =
  let rng_noise, rng_probe = case_streams ~seed index in
  let rng_profile = Rng.split rng_noise in
  let profile = Chaos_gen.gen_profile rng_profile ~size in
  let mutants = Mutant.all in
  let mutant = List.nth mutants (index mod List.length mutants) in
  let noise = Trace_gen.gen_noise rng_noise ~size:(monitor_noise_size size) in
  let trace =
    noise
    @ { Trace_gen.user = "alice"; op = Trace_gen.Drain }
      :: Trace_gen.probe_for mutant.Mutant.name rng_probe
  in
  (mutant, profile, trace, seed + (7919 * index))

let chaos_run ~shrink:_ ~seed ~index ~size =
  let mutant, profile, trace, chaos_seed =
    chaos_case_inputs ~seed ~index ~size
  in
  match chaos_check ~mutant ~profile ~chaos_seed trace with
  | None -> Pass
  | Some detail ->
    Fail
      { oracle = "chaos";
        index;
        detail;
        shrink_steps = 0;
        repr =
          Fmt.str "%s under %s vs %s" mutant.Mutant.name
            (Chaos_gen.describe profile)
            (Trace_gen.to_string trace);
        entry = Corpus.make ~oracle:"chaos" ~seed ~index ~size []
      }

let chaos_replay (entry : Corpus.entry) =
  let mutant, profile, trace, chaos_seed =
    chaos_case_inputs ~seed:entry.seed ~index:entry.index ~size:entry.size
  in
  match chaos_check ~mutant ~profile ~chaos_seed trace with
  | None -> Ok ()
  | Some detail -> Error detail

let chaos =
  { name = "chaos"; weight = 1; run_case = chaos_run; replay = chaos_replay }

(* ---- incremental vs full evaluation ---- *)

(* The delta-driven engine must be observationally identical to full
   re-evaluation.  Both sides run the compiled engine, so unlike the
   engine oracle no hint normalization is applied: status, the full
   conformance string (payload included), both verdicts and the covered
   requirement set must agree bit-for-bit at every exchange.  A mutant
   killed under full evaluation must stay killed under incremental. *)
let strict_outcome_key (o : Outcome.t) =
  Fmt.str "%d|%s|%s|%s|%s" o.response.Cm_http.Response.status
    (Outcome.conformance_to_string o.conformance)
    (verdict_key o.pre_verdict)
    (verdict_key o.post_verdict)
    (String.concat "," o.covered_requirements)

let incremental_check ~mutant trace =
  match
    ( Scenario.setup ~eval:Runtime.Full_eval (),
      Scenario.setup ~eval:Runtime.Incremental () )
  with
  | Error msgs, _ | _, Error msgs ->
    Some ("incremental setup failed: " ^ String.concat "; " msgs)
  | Ok ctx_full, Ok ctx_inc ->
    let out_full = Trace_gen.run ctx_full trace in
    let out_inc = Trace_gen.run ctx_inc trace in
    let keys_full = List.map strict_outcome_key out_full in
    let keys_inc = List.map strict_outcome_key out_inc in
    if keys_full <> keys_inc then begin
      let rec first_diff n a b =
        match a, b with
        | x :: a', y :: b' ->
          if x = y then first_diff (n + 1) a' b'
          else Fmt.str "exchange %d: full [%s] vs incremental [%s]" n x y
        | [], y :: _ -> Fmt.str "exchange %d only under incremental: [%s]" n y
        | x :: _, [] -> Fmt.str "exchange %d only under full: [%s]" n x
        | [], [] -> "lengths differ"
      in
      Some ("eval modes diverge at " ^ first_diff 0 keys_full keys_inc)
    end
    else begin
      match
        Scenario.setup ~eval:Runtime.Incremental ~faults:mutant.Mutant.faults
          ()
      with
      | Error msgs -> Some ("mutant setup failed: " ^ String.concat "; " msgs)
      | Ok ctx_m ->
        if has_violation (Trace_gen.run ctx_m trace) then None
        else
          Some
            ("mutant " ^ mutant.Mutant.name
           ^ " survived the trace under incremental evaluation")
    end

let incremental_run ~shrink ~seed ~index ~size =
  let rng_noise, rng_probe = case_streams ~seed index in
  let mutants = Mutant.all in
  let mutant = List.nth mutants (index mod List.length mutants) in
  let noise = Trace_gen.gen_noise rng_noise ~size:(monitor_noise_size size) in
  let tail =
    { Trace_gen.user = "alice"; op = Trace_gen.Drain }
    :: Trace_gen.probe_for mutant.Mutant.name rng_probe
  in
  let fails noise = incremental_check ~mutant (noise @ tail) in
  match fails noise with
  | None -> Pass
  | Some detail0 ->
    let shrunk, steps =
      if shrink then
        Shrink.minimize ~budget:30 ~candidates:Shrink.shrink_list
          ~still_fails:(fun n -> fails n <> None)
          noise
      else (noise, 0)
    in
    let detail = Option.value ~default:detail0 (fails shrunk) in
    let trace = shrunk @ tail in
    Fail
      { oracle = "incremental"; index; detail; shrink_steps = steps;
        repr = Fmt.str "%s vs %s" mutant.Mutant.name (Trace_gen.to_string trace);
        entry =
          Corpus.make ~oracle:"incremental" ~seed ~index ~size
            [ ("mutant", mutant.Mutant.name);
              ("trace", Trace_gen.to_string trace)
            ]
      }

let incremental_replay (entry : Corpus.entry) =
  let mutant_name =
    match List.assoc_opt "mutant" entry.payload with
    | Some name -> name
    | None ->
      (List.nth Mutant.all (entry.index mod List.length Mutant.all)).Mutant.name
  in
  match Mutant.find mutant_name with
  | None -> Error ("unknown mutant " ^ mutant_name)
  | Some mutant ->
    let trace_result =
      match List.assoc_opt "trace" entry.payload with
      | Some text -> Trace_gen.of_string text
      | None ->
        let rng_noise, rng_probe = case_streams ~seed:entry.seed entry.index in
        let noise =
          Trace_gen.gen_noise rng_noise ~size:(monitor_noise_size entry.size)
        in
        Ok
          (noise
          @ ({ Trace_gen.user = "alice"; op = Trace_gen.Drain }
            :: Trace_gen.probe_for mutant.Mutant.name rng_probe))
    in
    (match trace_result with
     | Error msg -> Error ("corpus trace does not parse: " ^ msg)
     | Ok trace ->
       (match incremental_check ~mutant trace with
        | None -> Ok ()
        | Some detail -> Error detail))

let incremental =
  { name = "incremental"; weight = 2; run_case = incremental_run;
    replay = incremental_replay
  }

(* ---- workload DSL ---- *)

(* Two halves.  Determinism: compiling the same (mix, seed) twice must
   yield bit-identical traces — the DSL draws only from its own
   splitmix stream, never from hidden global state.  Agreement:
   executing the compiled trace against the cross-service monitor must
   produce the same strict outcome sequence under full and incremental
   evaluation, and the baseline (no mutant) must stay violation-free:
   every denial a mix provokes is one the cloud also refuses. *)

module Workload = Cm_workload.Workload

let workload_steps size = 8 + (4 * min size 10)

let workload_trace ~mix_name ~wl_seed ~steps =
  match mix_name with
  | "standard" -> Some Workload.standard_trace
  | "cross" -> Some Workload.cross_trace
  | "read-heavy" ->
    Some (Workload.read_heavy_trace ~steps ~victims:4 ~seed:wl_seed)
  | "churn-heavy" -> Some (Workload.churn_heavy_trace ~steps ~seed:wl_seed)
  | "adversarial" -> Some (Workload.adversarial_trace ~steps ~seed:wl_seed)
  | _ -> None

let workload_case_inputs ~seed ~index ~size =
  let mixes = Workload.mixes in
  let mix = List.nth mixes (index mod List.length mixes) in
  (mix.Workload.mix_name, seed + (7919 * index), workload_steps size)

let workload_check ~mix_name ~wl_seed ~steps =
  match workload_trace ~mix_name ~wl_seed ~steps with
  | None -> Some ("unknown workload mix " ^ mix_name)
  | Some trace ->
    let first = Workload.render trace in
    let again =
      Workload.render
        (Option.get (workload_trace ~mix_name ~wl_seed ~steps))
    in
    if first <> again then
      Some
        (Fmt.str "mix %s at seed %d does not recompile identically" mix_name
           wl_seed)
    else (
      match
        ( Scenario.setup_cross ~eval:Runtime.Full_eval (),
          Scenario.setup_cross ~eval:Runtime.Incremental () )
      with
      | Error msgs, _ | _, Error msgs ->
        Some ("workload setup failed: " ^ String.concat "; " msgs)
      | Ok ctx_full, Ok ctx_inc ->
        let _ = Scenario.run_trace ctx_full trace in
        let _ = Scenario.run_trace ctx_inc trace in
        let keys ctx =
          List.map strict_outcome_key
            (Cm_monitor.Monitor.outcomes ctx.Scenario.monitor)
        in
        let keys_full = keys ctx_full and keys_inc = keys ctx_inc in
        if keys_full <> keys_inc then (
          let rec first_diff n a b =
            match a, b with
            | x :: a', y :: b' ->
              if x = y then first_diff (n + 1) a' b'
              else
                Fmt.str "exchange %d: full [%s] vs incremental [%s]" n x y
            | [], y :: _ ->
              Fmt.str "exchange %d only under incremental: [%s]" n y
            | x :: _, [] -> Fmt.str "exchange %d only under full: [%s]" n x
            | [], [] -> "lengths differ"
          in
          Some
            (Fmt.str "mix %s seed %d: eval modes diverge at %s" mix_name
               wl_seed
               (first_diff 0 keys_full keys_inc)))
        else (
          match
            Cm_monitor.Report.violations
              (Cm_monitor.Monitor.outcomes ctx_full.Scenario.monitor)
          with
          | [] -> None
          | v :: _ ->
            Some
              (Fmt.str "mix %s seed %d: baseline violation on %s %s" mix_name
                 wl_seed
                 (Cm_http.Meth.to_string
                    v.Outcome.request.Cm_http.Request.meth)
                 v.Outcome.request.Cm_http.Request.path)))

let workload_run ~shrink ~seed ~index ~size =
  let mix_name, wl_seed, steps0 = workload_case_inputs ~seed ~index ~size in
  let fails steps = workload_check ~mix_name ~wl_seed ~steps in
  match fails steps0 with
  | None -> Pass
  | Some detail0 ->
    (* Shrinking halves the step budget while the failure persists;
       scripted mixes ignore the budget, so this terminates quickly. *)
    let rec minimize steps count =
      let next = steps / 2 in
      if next >= 1 && fails next <> None then minimize next (count + 1)
      else (steps, count)
    in
    let steps, shrink_steps =
      if shrink then minimize steps0 0 else (steps0, 0)
    in
    let detail = Option.value ~default:detail0 (fails steps) in
    Fail
      { oracle = "workload"; index; detail; shrink_steps;
        repr = Fmt.str "%s seed=%d steps=%d" mix_name wl_seed steps;
        entry =
          Corpus.make ~oracle:"workload" ~seed ~index ~size
            [ ("mix", mix_name); ("wl_seed", string_of_int wl_seed);
              ("steps", string_of_int steps)
            ]
      }

let workload_replay (entry : Corpus.entry) =
  let d_name, d_seed, d_steps =
    workload_case_inputs ~seed:entry.seed ~index:entry.index ~size:entry.size
  in
  let lookup key default parse =
    match List.assoc_opt key entry.payload with
    | Some v -> (try parse v with _ -> default)
    | None -> default
  in
  let mix_name = lookup "mix" d_name Fun.id in
  let wl_seed = lookup "wl_seed" d_seed int_of_string in
  let steps = lookup "steps" d_steps int_of_string in
  match workload_check ~mix_name ~wl_seed ~steps with
  | None -> Ok ()
  | Some detail -> Error detail

let workload =
  { name = "workload"; weight = 1; run_case = workload_run;
    replay = workload_replay
  }

(* ---- durable journal ---- *)

(* Record a workload mix through the journaled monitor, then replay the
   scanned journal against a fresh same-seed cloud under both
   evaluation modes.  The property is bit-identity: the replayed
   verdict lines must equal the journaled ones — any hidden
   nondeterminism in tokens, sequence numbers or evaluation order shows
   up as the first diverging line. *)

let journal_line_diff recorded replayed =
  let rec go n a b =
    match a, b with
    | x :: a', y :: b' ->
      if x = y then go (n + 1) a' b'
      else Fmt.str "line %d: recorded [%s] vs replayed [%s]" n x y
    | [], y :: _ -> Fmt.str "line %d only in replay: [%s]" n y
    | x :: _, [] -> Fmt.str "line %d only in recording: [%s]" n x
    | [], [] -> "identical"
  in
  go 0 recorded replayed

let journal_check ~mix_name ~wl_seed ~steps =
  match workload_trace ~mix_name ~wl_seed ~steps with
  | None -> Some ("unknown workload mix " ^ mix_name)
  | Some trace ->
    (match Scenario.setup_journaled ~cross:true () with
     | Error msgs ->
       Some ("journal setup failed: " ^ String.concat "; " msgs)
     | Ok jctx ->
       let _ = Scenario.jrun_trace jctx trace in
       Cm_journal.Jmonitor.sync jctx.Scenario.jmon;
       let events = Scenario.journal_events jctx in
       let recorded = Cm_journal.Jmonitor.journaled_verdict_lines events in
       let check_eval eval label =
         match Scenario.replay_journal ~cross:true ~eval events with
         | Error msgs ->
           Some
             (Fmt.str "mix %s seed %d: %s replay failed: %s" mix_name
                wl_seed label (String.concat "; " msgs))
         | Ok lines ->
           if lines = recorded then None
           else
             Some
               (Fmt.str "mix %s seed %d: %s replay diverges at %s" mix_name
                  wl_seed label (journal_line_diff recorded lines))
       in
       (match check_eval Runtime.Full_eval "full" with
        | Some detail -> Some detail
        | None -> check_eval Runtime.Incremental "incremental"))

let journal_run ~shrink ~seed ~index ~size =
  let mix_name, wl_seed, steps0 = workload_case_inputs ~seed ~index ~size in
  let fails steps = journal_check ~mix_name ~wl_seed ~steps in
  match fails steps0 with
  | None -> Pass
  | Some detail0 ->
    let rec minimize steps count =
      let next = steps / 2 in
      if next >= 1 && fails next <> None then minimize next (count + 1)
      else (steps, count)
    in
    let steps, shrink_steps =
      if shrink then minimize steps0 0 else (steps0, 0)
    in
    let detail = Option.value ~default:detail0 (fails steps) in
    Fail
      { oracle = "journal"; index; detail; shrink_steps;
        repr = Fmt.str "%s seed=%d steps=%d" mix_name wl_seed steps;
        entry =
          Corpus.make ~oracle:"journal" ~seed ~index ~size
            [ ("mix", mix_name); ("wl_seed", string_of_int wl_seed);
              ("steps", string_of_int steps)
            ]
      }

let journal_replay (entry : Corpus.entry) =
  let d_name, d_seed, d_steps =
    workload_case_inputs ~seed:entry.seed ~index:entry.index ~size:entry.size
  in
  let lookup key default parse =
    match List.assoc_opt key entry.payload with
    | Some v -> (try parse v with _ -> default)
    | None -> default
  in
  let mix_name = lookup "mix" d_name Fun.id in
  let wl_seed = lookup "wl_seed" d_seed int_of_string in
  let steps = lookup "steps" d_steps int_of_string in
  match journal_check ~mix_name ~wl_seed ~steps with
  | None -> Ok ()
  | Some detail -> Error detail

let journal =
  { name = "journal"; weight = 1; run_case = journal_run;
    replay = journal_replay
  }

let all =
  [ engine; rbac; codegen; monitor; incremental; chaos; workload; journal ]
let find name = List.find_opt (fun o -> o.name = name) all
