type entry = {
  oracle : string;
  seed : int;
  index : int;
  size : int;
  payload : (string * string) list;
}

let make ~oracle ~seed ~index ~size payload =
  { oracle; seed; index; size; payload }

let to_line e =
  String.concat "\t"
    ([ "oracle=" ^ e.oracle;
       "seed=" ^ string_of_int e.seed;
       "index=" ^ string_of_int e.index;
       "size=" ^ string_of_int e.size
     ]
    @ List.map (fun (k, v) -> k ^ "=" ^ v) e.payload)

let split_kv field =
  match String.index_opt field '=' with
  | Some i ->
    Ok
      ( String.sub field 0 i,
        String.sub field (i + 1) (String.length field - i - 1) )
  | None -> Error (Printf.sprintf "malformed field %S (expected key=value)" field)

let of_line line =
  let ( let* ) = Result.bind in
  let fields = String.split_on_char '\t' line in
  let* kvs =
    List.fold_left
      (fun acc field ->
        let* acc = acc in
        let* kv = split_kv field in
        Ok (kv :: acc))
      (Ok []) fields
  in
  let kvs = List.rev kvs in
  let find key =
    match List.assoc_opt key kvs with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing %s in %S" key line)
  in
  let int_of key v =
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "non-integer %s=%S" key v)
  in
  let* oracle = find "oracle" in
  let* seed = Result.bind (find "seed") (int_of "seed") in
  let* index = Result.bind (find "index") (int_of "index") in
  let* size = Result.bind (find "size") (int_of "size") in
  let payload =
    List.filter
      (fun (k, _) -> not (List.mem k [ "oracle"; "seed"; "index"; "size" ]))
      kvs
  in
  Ok { oracle; seed; index; size; payload }

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec build acc n = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then build acc (n + 1) rest
      else
        (match of_line trimmed with
         | Ok entry -> build (entry :: acc) (n + 1) rest
         | Error msg -> Error (Printf.sprintf "line %d: %s" n msg))
  in
  build [] 1 lines

let load path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    of_string text
  end

let append path entry =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (to_line entry);
  output_char oc '\n';
  close_out oc
