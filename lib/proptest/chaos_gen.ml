module Chaos = Cm_cloudsim.Chaos

(* Per-mille probability draw, capped.  Caps are chosen so that six
   retry attempts absorb a fault class with overwhelming probability —
   the generator explores the space where resilience is *supposed* to
   win; profiles beyond it (e.g. a 50% drop rate) are outages, not
   transport noise. *)
let pm rng cap = float_of_int (Rng.int rng (cap + 1)) /. 1000.0

let gen_profile rng ~size =
  (* size scales fault intensity: small cases are nearly clean, large
     ones push every class toward its cap at once *)
  let intensity = min (max size 1) 10 in
  let scale cap = max 1 (cap * intensity / 10) in
  let latency =
    { Chaos.base_ms = Rng.int rng 41;
      jitter_ms = Rng.int rng 61;
      spike_p = pm rng (scale 30);
      spike_ms = 20_000 + Rng.int rng 20_001
    }
  in
  { Chaos.name = "random";
    description = "randomly generated bounded chaos profile";
    latency;
    drop_before_p = pm rng (scale 70);
    drop_after_p = pm rng (scale 40);
    blip_5xx_p = pm rng (scale 70);
    stale_p = pm rng (scale 90);
    corrupt_p = pm rng (scale 70);
    duplicate_p = pm rng (scale 50);
    route_prefix = None
  }

let describe (p : Chaos.profile) =
  Printf.sprintf
    "chaos{lat=%d+%d spike=%.3f/%dms drop<%.3f drop>%.3f blip=%.3f \
     stale=%.3f corrupt=%.3f dup=%.3f}"
    p.Chaos.latency.Chaos.base_ms p.Chaos.latency.Chaos.jitter_ms
    p.Chaos.latency.Chaos.spike_p p.Chaos.latency.Chaos.spike_ms
    p.Chaos.drop_before_p p.Chaos.drop_after_p p.Chaos.blip_5xx_p
    p.Chaos.stale_p p.Chaos.corrupt_p p.Chaos.duplicate_p
