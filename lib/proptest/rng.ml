(* Splitmix64 (Steele, Lea & Flood, OOPSLA 2014): a 64-bit state stepped
   by an odd gamma, finalized through a murmur-style mixer.  Chosen here
   because splitting is O(1) and the whole generator is a pure function
   of (state, gamma) — exactly what seed-replayable fuzzing needs. *)

type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Gammas must be odd; weak gammas (too few bit flips between
   consecutive multiples) get an extra xor-shift, as in the paper. *)
let mix_gamma z =
  let z = Int64.logor (mix64 z) 1L in
  let flips = Int64.logxor z (Int64.shift_right_logical z 1) in
  let popcount x =
    let rec loop acc x =
      if x = 0L then acc
      else loop (acc + 1) (Int64.logand x (Int64.sub x 1L))
    in
    loop 0 x
  in
  if popcount flips < 24 then Int64.logxor z 0xAAAAAAAAAAAAAAAAL else z

let next t =
  t.state <- Int64.add t.state t.gamma;
  mix64 t.state

let of_seed seed =
  { state = mix64 (Int64.of_int seed); gamma = golden_gamma }

let case ~seed i =
  (* Mix the case index into both state and gamma so streams for
     different cases of the same run share no structure. *)
  let base = mix64 (Int64.logxor (Int64.of_int seed) (mix64 (Int64.of_int i))) in
  { state = base; gamma = mix_gamma (Int64.add base golden_gamma) }

let split t =
  let state = next t in
  let gamma = mix_gamma (next t) in
  { state; gamma }

let copy t = { state = t.state; gamma = t.gamma }

let bits64 = next

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (next t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | items -> List.nth items (int t (List.length items))

let choose_arr t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose_arr: empty array";
  arr.(int t (Array.length arr))
