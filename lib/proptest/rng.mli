(** Deterministic splittable PRNG (splitmix64).

    Every random decision the fuzzer makes flows through this module —
    never [Stdlib.Random] and never [Random.self_init] — so a run is a
    pure function of its seed: [cmonitor fuzz --seed 42] replays the
    identical case sequence on every machine.

    The generator is {e splittable}: {!split} derives an independent
    stream, and {!case} derives the stream for the [i]-th test case
    directly from the root seed, so any single case can be replayed
    without regenerating its predecessors. *)

type t

val of_seed : int -> t
(** A fresh generator from an integer seed. *)

val case : seed:int -> int -> t
(** [case ~seed i] is the independent stream for case number [i] of the
    run rooted at [seed].  [case ~seed i] and [case ~seed j] are
    decorrelated for [i <> j]; the same pair always yields the same
    stream. *)

val split : t -> t
(** Draw an independent child stream.  The parent advances by two
    steps; the child shares no future output with it. *)

val copy : t -> t
(** Snapshot the current state (for re-running a generator). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform-ish in [\[0, bound)].  [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is in [\[lo, hi\]] inclusive. *)

val bool : t -> bool
val choose : t -> 'a list -> 'a
(** Uniform pick; the list must be non-empty. *)

val choose_arr : t -> 'a array -> 'a
