module Ast = Cm_ocl.Ast
module Ty = Cm_ocl.Ty
module Eval = Cm_ocl.Eval
module Json = Cm_json.Json

let volume_ty =
  Ty.Object
    [ ("id", Ty.String); ("name", Ty.String); ("status", Ty.String);
      ("size", Ty.Int)
    ]

let signature =
  [ ( "project",
      Ty.Object
        [ ("id", Ty.String);
          ("volumes", Ty.Collection volume_ty);
          ("images", Ty.Collection volume_ty)
        ] );
    ("volume", volume_ty);
    ( "user",
      Ty.Object
        [ ("name", Ty.String);
          ("groups", Ty.Collection Ty.String);
          ("roles", Ty.Collection Ty.String)
        ] );
    ("quota_sets", Ty.Object [ ("id", Ty.String); ("volumes", Ty.Int); ("images", Ty.Int) ])
  ]

let string_pool =
  [| "available"; "in-use"; "error"; "queued"; "proj_administrator";
     "proj_member"; "data1"; "x"
  |]

(* ---- access paths ---- *)

(* All navigation chains (up to depth 2) reachable from the environment,
   with their static types.  Navigating a Collection(Object) property is
   the OCL collect shorthand and yields a collection. *)
let paths env =
  let rec from depth (expr, ty) =
    (expr, ty)
    ::
    (if depth = 0 then []
     else
       match ty with
       | Ty.Object props ->
         List.concat_map
           (fun (prop, t) -> from (depth - 1) (Ast.Nav (expr, prop), t))
           props
       | Ty.Collection (Ty.Object props) ->
         List.concat_map
           (fun (prop, t) ->
             from (depth - 1) (Ast.Nav (expr, prop), Ty.Collection t))
           props
       | _ -> [])
  in
  List.concat_map (fun (name, ty) -> from 2 (Ast.Var name, ty)) env

let paths_of_ty env ty =
  List.filter_map
    (fun (expr, t) -> if Ty.equal t ty then Some expr else None)
    (paths env)

let collection_paths env =
  List.filter_map
    (fun (expr, t) ->
      match t with Ty.Collection elem -> Some (expr, elem) | _ -> None)
    (paths env)

(* ---- leaves ---- *)

let literal rng ty =
  match ty with
  | Ty.Bool -> Some (Ast.Bool_lit (Rng.bool rng))
  | Ty.Int -> Some (Ast.Int_lit (Rng.int rng 7))
  | Ty.String -> Some (Ast.String_lit (Rng.choose_arr rng string_pool))
  | _ -> None

let leaf env rng ty =
  let path_choices = paths_of_ty env ty in
  match literal rng ty, path_choices with
  | Some lit, [] -> lit
  | Some lit, _ -> if Rng.bool rng then lit else Rng.choose rng path_choices
  | None, _ :: _ -> Rng.choose rng path_choices
  | None, [] ->
    (* No literal and no path of this type: build a collection via
       collect over some reachable collection (only Collection types can
       end up here; the signature always provides collections). *)
    (match ty with
     | Ty.Collection elem ->
       let source, selem = Rng.choose rng (collection_paths env) in
       let var = "c0" in
       let inner = (var, selem) :: env in
       (match literal rng elem, paths_of_ty inner elem with
        | Some lit, _ -> Ast.Iter (source, Ast.Collect, var, lit)
        | None, body :: _ -> Ast.Iter (source, Ast.Collect, var, body)
        | None, [] -> Ast.Iter (source, Ast.Collect, var, Ast.Int_lit 0))
     | _ -> Ast.Null_lit)

(* ---- recursive generation ---- *)

let elem_pool = [ Ty.Int; Ty.String ]
let coll_elem_pool = [ Ty.Int; Ty.String ]

let rec gen env depth rng ~size ty =
  if size <= 1 then leaf env rng ty
  else
    let sub = size / 2 in
    let go ?(n = env) t = gen n (depth + 1) rng ~size:sub t in
    let fresh = Printf.sprintf "it%d" depth in
    match ty with
    | Ty.Bool ->
      (match Rng.int rng 12 with
       | 0 -> Ast.Unop (Ast.Not, gen env depth rng ~size:(size - 1) Ty.Bool)
       | 1 | 2 ->
         let op =
           Rng.choose rng [ Ast.And; Ast.Or; Ast.Xor; Ast.Implies ]
         in
         Ast.Binop (op, go Ty.Bool, go Ty.Bool)
       | 3 ->
         let t = Rng.choose rng (Ty.Bool :: elem_pool) in
         Ast.Binop ((if Rng.bool rng then Ast.Eq else Ast.Neq), go t, go t)
       | 4 ->
         let t = Rng.choose rng elem_pool in
         let op = Rng.choose rng [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ] in
         Ast.Binop (op, go t, go t)
       | 5 ->
         let t = Rng.choose rng coll_elem_pool in
         Ast.Member (go (Ty.Collection t), Rng.bool rng, go t)
       | 6 ->
         let t = Rng.choose rng coll_elem_pool in
         Ast.Coll
           ( go (Ty.Collection t),
             if Rng.bool rng then Ast.Is_empty else Ast.Not_empty )
       | 7 | 8 ->
         let source, selem = Rng.choose rng (collection_paths env) in
         let kind = Rng.choose rng [ Ast.For_all; Ast.Exists; Ast.One ] in
         Ast.Iter
           (source, kind, fresh, go ~n:((fresh, selem) :: env) Ty.Bool)
       | 9 ->
         let source, selem = Rng.choose rng (collection_paths env) in
         let t = Rng.choose rng elem_pool in
         Ast.Iter
           (source, Ast.Is_unique, fresh, go ~n:((fresh, selem) :: env) t)
       | 10 -> Ast.At_pre (gen env depth rng ~size:(size - 1) Ty.Bool)
       | _ -> leaf env rng Ty.Bool)
    | Ty.Int ->
      (match Rng.int rng 8 with
       | 0 | 1 ->
         let op =
           Rng.choose rng [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div ]
         in
         Ast.Binop (op, go Ty.Int, go Ty.Int)
       | 2 | 3 ->
         let t = Rng.choose rng coll_elem_pool in
         Ast.Coll (go (Ty.Collection t), Ast.Size)
       | 4 -> Ast.Coll (go (Ty.Collection Ty.Int), Ast.Sum)
       | 5 ->
         let t = Rng.choose rng coll_elem_pool in
         Ast.Count (go (Ty.Collection t), go t)
       | 6 -> Ast.At_pre (gen env depth rng ~size:(size - 1) Ty.Int)
       | _ -> leaf env rng Ty.Int)
    | Ty.String ->
      (match Rng.int rng 4 with
       | 0 ->
         Ast.Coll
           ( go (Ty.Collection Ty.String),
             if Rng.bool rng then Ast.First else Ast.Last )
       | 1 -> Ast.At_pre (gen env depth rng ~size:(size - 1) Ty.String)
       | _ -> leaf env rng Ty.String)
    | Ty.Collection elem ->
      (match Rng.int rng 6 with
       | 0 | 1 ->
         let source = go (Ty.Collection elem) in
         let kind = if Rng.bool rng then Ast.Select else Ast.Reject in
         Ast.Iter
           (source, kind, fresh, go ~n:((fresh, elem) :: env) Ty.Bool)
       | 2 ->
         let source, selem = Rng.choose rng (collection_paths env) in
         Ast.Iter
           (source, Ast.Collect, fresh, go ~n:((fresh, selem) :: env) elem)
       | 3 -> Ast.Coll (go (Ty.Collection elem), Ast.As_set)
       | _ -> leaf env rng ty)
    | Ty.Real | Ty.Object _ | Ty.Any -> leaf env rng ty

let gen_of_ty ty : Ast.expr Gen.t =
  fun rng ~size -> gen signature 0 rng ~size ty

let gen_bool = gen_of_ty Ty.Bool

(* ---- environments ---- *)

let rec doc_of_ty rng ty =
  match ty with
  | Ty.Bool -> Json.bool (Rng.bool rng)
  | Ty.Int -> Json.int (Rng.int_in rng (-2) 9)
  | Ty.Real -> Json.int (Rng.int rng 5)
  | Ty.String -> Json.string (Rng.choose_arr rng string_pool)
  | Ty.Collection t ->
    Json.list (List.init (Rng.int rng 4) (fun _ -> doc_of_ty rng t))
  | Ty.Object props ->
    (* Occasionally drop a field: navigation must go Undef gracefully. *)
    Json.obj
      (List.filter_map
         (fun (prop, t) ->
           if Rng.int rng 8 = 0 then None else Some (prop, doc_of_ty rng t))
         props)
  | Ty.Any -> Json.int 1

let degenerate rng =
  match Rng.int rng 4 with
  | 0 -> Some Json.Null
  | 1 -> Some (Json.obj [])
  | 2 -> Some (Json.int 7)
  | _ -> None (* unbound: lookup yields Undef *)

let gen_env : Eval.env Gen.t =
  fun rng ~size:_ ->
  Eval.env_of_bindings
    (List.filter_map
       (fun (name, ty) ->
         if Rng.int rng 5 = 0 then
           match degenerate rng with
           | Some doc -> Some (name, doc)
           | None -> None
         else Some (name, doc_of_ty rng ty))
       signature)

(* ---- shrinking ---- *)

let rec shrink_expr e =
  let rebuild wrap shrunk = List.map wrap shrunk in
  match e with
  | Ast.Bool_lit _ | Ast.Null_lit | Ast.Var _ -> []
  | Ast.Int_lit n -> if n = 0 then [] else [ Ast.Int_lit 0 ]
  | Ast.String_lit "" -> []
  | Ast.String_lit _ -> [ Ast.String_lit "" ]
  | Ast.Nav (s, p) ->
    (s :: rebuild (fun s' -> Ast.Nav (s', p)) (shrink_expr s))
  | Ast.At_pre i -> i :: rebuild (fun i' -> Ast.At_pre i') (shrink_expr i)
  | Ast.Unop (op, i) ->
    i :: rebuild (fun i' -> Ast.Unop (op, i')) (shrink_expr i)
  | Ast.Coll (s, op) ->
    s :: rebuild (fun s' -> Ast.Coll (s', op)) (shrink_expr s)
  | Ast.Member (s, inc, a) ->
    [ s; a ]
    @ rebuild (fun s' -> Ast.Member (s', inc, a)) (shrink_expr s)
    @ rebuild (fun a' -> Ast.Member (s, inc, a')) (shrink_expr a)
  | Ast.Count (s, a) ->
    [ s; a ]
    @ rebuild (fun s' -> Ast.Count (s', a)) (shrink_expr s)
    @ rebuild (fun a' -> Ast.Count (s, a')) (shrink_expr a)
  | Ast.Iter (s, k, v, b) ->
    [ s; b ]
    @ rebuild (fun s' -> Ast.Iter (s', k, v, b)) (shrink_expr s)
    @ rebuild (fun b' -> Ast.Iter (s, k, v, b')) (shrink_expr b)
  | Ast.Binop (op, a, b) ->
    [ a; b ]
    @ rebuild (fun a' -> Ast.Binop (op, a', b)) (shrink_expr a)
    @ rebuild (fun b' -> Ast.Binop (op, a, b')) (shrink_expr b)
