(** Type-directed random OCL expressions and evaluation environments.

    The generator produces expressions that are {e well-typed} over the
    canonical cloud signature ({!signature}: project / volume / user /
    quota_sets, the vocabulary of the generated Cinder contracts), which
    is asserted as a generator self-check in the test suite.  The
    environments it produces deliberately include degenerate states —
    missing bindings, null documents, wrongly typed documents, dropped
    object fields — because the differential property must hold on the
    whole Kleene domain, not just on happy-path states. *)

val signature : Cm_ocl.Ty.signature
(** Variables the generated expressions range over. *)

val gen_bool : Cm_ocl.Ast.expr Gen.t
(** A well-typed boolean expression (a contract-shaped formula). *)

val gen_of_ty : Cm_ocl.Ty.t -> Cm_ocl.Ast.expr Gen.t
(** A well-typed expression of the requested type. *)

val gen_env : Cm_ocl.Eval.env Gen.t
(** Bindings for {!signature}: mostly canonical documents with random
    content, salted with degenerate ones. *)

val shrink_expr : Cm_ocl.Ast.expr -> Cm_ocl.Ast.expr list
(** Structural shrink candidates: subterms and one-hole reductions.
    Candidates are not guaranteed well-typed — the differential
    property is total, so minimization may leave the typed fragment. *)
