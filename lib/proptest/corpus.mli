(** The regression corpus: shrunk counterexamples, serialized with the
    seed that produced them.

    One entry per line, tab-separated [key=value] fields; [#] comments
    and blank lines are skipped.  Required keys: [oracle], [seed],
    [index], [size] — enough to regenerate the exact case stream via
    {!Rng.case}.  Optional payload keys ([expr], [trace], [mutant],
    [note]) carry the shrunk artifact itself so an entry replays even
    after the generators evolve. *)

type entry = {
  oracle : string;
  seed : int;
  index : int;
  size : int;
  payload : (string * string) list;
}

val make :
  oracle:string -> seed:int -> index:int -> size:int ->
  (string * string) list -> entry

val to_line : entry -> string
val of_line : string -> (entry, string) result
(** [Error] on malformed lines; comment/blank lines are not valid input
    here (the file parser filters them). *)

val of_string : string -> (entry list, string) result
val load : string -> (entry list, string) result
(** Read a corpus file; a missing file is an empty corpus. *)

val append : string -> entry -> unit
(** Append one entry to the file, creating it if needed. *)
