(** Greedy counterexample minimization.

    A shrinker proposes strictly "smaller" variants of a failing input;
    {!minimize} repeatedly commits to the first variant that still
    fails, until no variant fails or the evaluation budget runs out.
    Greedy first-fit keeps re-evaluation counts low — important here
    because one monitor-trace evaluation spins up whole simulated
    clouds. *)

val minimize :
  ?budget:int ->
  candidates:('a -> 'a list) ->
  still_fails:('a -> bool) ->
  'a ->
  'a * int
(** [minimize ~candidates ~still_fails x] with [still_fails x = true]
    returns the minimized input and the number of shrink steps taken
    (committed candidates).  [budget] (default 1000) caps the total
    number of [still_fails] evaluations. *)

val shrink_list : 'a list -> 'a list list
(** Structural list shrinks: drop the first/second half, drop single
    elements.  Ordered largest-cut-first so greedy minimization removes
    noise quickly. *)
