module Json = Cm_json.Json
module Request = Cm_http.Request
module Meth = Cm_http.Meth
module Scenario = Cm_mutation.Scenario
module Cloud = Cm_cloudsim.Cloud

type target = Ghost | Nth of int | Last_created

type op =
  | List_volumes
  | Create of string * int
  | Get of target
  | Update of target * string
  | Delete of target
  | Attach of target
  | Detach of target
  | Drain

type step = { user : string; op : op }
type t = step list

let users = [ "alice"; "bob"; "carol" ]

(* ---- generation ---- *)

let gen_target rng =
  match Rng.int rng 6 with
  | 0 -> Ghost
  | 1 | 2 -> Last_created
  | _ -> Nth (Rng.int rng 4)

let gen_step rng =
  let user = Rng.choose rng users in
  let op =
    match Rng.int rng 8 with
    | 0 -> List_volumes
    | 1 | 2 -> Create (Printf.sprintf "w%d" (Rng.int rng 100), 1 + Rng.int rng 20)
    | 3 -> Get (gen_target rng)
    | 4 -> Update (gen_target rng, Printf.sprintf "r%d" (Rng.int rng 100))
    | 5 -> Delete (gen_target rng)
    | 6 -> Attach (gen_target rng)
    | _ -> Detach (gen_target rng)
  in
  { user; op }

let gen_noise : t Gen.t =
  fun rng ~size ->
  let n = Rng.int rng (max 1 size) in
  List.init n (fun _ -> gen_step rng)

let probe_for mutant rng =
  let name prefix = Printf.sprintf "%s%d" prefix (Rng.int rng 100) in
  let size () = 1 + Rng.int rng 5 in
  let create user prefix = { user; op = Create (name prefix, size ()) } in
  match mutant with
  | "M1-delete-privilege-escalation" ->
    [ create "alice" "p"; { user = "bob"; op = Delete Last_created } ]
  | "M2-update-check-missing" ->
    [ create "alice" "p";
      { user = "carol"; op = Update (Last_created, name "h") }
    ]
  | "M3-get-wrongly-denied" ->
    [ create "alice" "p"; { user = "carol"; op = Get Last_created } ]
  | "M4-quota-ignored" ->
    List.init 4 (fun _ -> create "alice" "q")
  | "M5-delete-in-use-allowed" ->
    [ create "alice" "p";
      { user = "alice"; op = Attach Last_created };
      { user = "alice"; op = Delete Last_created }
    ]
  | "M6-wrong-delete-status" | "M8-zombie-delete" ->
    [ create "alice" "p"; { user = "alice"; op = Delete Last_created } ]
  | "M7-phantom-create" -> [ create "alice" "p" ]
  | "M9-create-open-to-all" -> [ create "carol" "p" ]
  | "M10-list-wrongly-denied" -> [ { user = "alice"; op = List_volumes } ]
  | other -> invalid_arg ("Trace_gen.probe_for: unknown mutant " ^ other)

let with_probe ~mutant rng noise =
  noise @ ({ user = "alice"; op = Drain } :: probe_for mutant rng)

(* ---- execution ---- *)

let volumes_path = "/v3/myProject/volumes"
let volume_path id = volumes_path ^ "/" ^ id

(* Listing goes straight to the cloud (not through the monitor) as the
   admin service view: target resolution is scaffolding, not monitored
   traffic. *)
let list_ids ctx =
  let token = List.assoc "alice" ctx.Scenario.tokens in
  let resp =
    Cloud.handle ctx.Scenario.cloud
      (Request.make Meth.GET volumes_path |> Request.with_auth_token token)
  in
  match resp.Cm_http.Response.body with
  | Some body ->
    (match Json.member "volumes" body with
     | Some (Json.List vols) ->
       List.filter_map
         (fun v ->
           match Json.member "id" v with
           | Some (Json.String id) -> Some id
           | _ -> None)
         vols
     | _ -> [])
  | None -> []

let run ctx trace =
  let last_created = ref None in
  let resolve = function
    | Ghost -> Some "vol-ghost"
    | Last_created -> !last_created
    | Nth i ->
      (match list_ids ctx with
       | [] -> None
       | ids -> Some (List.nth ids (i mod List.length ids)))
  in
  let send ~user meth path ?body () =
    ignore (Scenario.request ctx ~user meth path ?body ())
  in
  let volume_body name size =
    Json.obj
      [ ( "volume",
          Json.obj [ ("name", Json.string name); ("size", Json.int size) ] )
      ]
  in
  let action_body kind fields = Json.obj [ (kind, Json.obj fields) ] in
  let exec { user; op } =
    match op with
    | List_volumes -> send ~user Meth.GET volumes_path ()
    | Create (name, size) ->
      let outcome =
        Scenario.request ctx ~user Meth.POST volumes_path
          ~body:(volume_body name size) ()
      in
      (match Scenario.created_volume_id outcome with
       | Some id -> last_created := Some id
       | None -> ())
    | Get target ->
      Option.iter
        (fun id -> send ~user Meth.GET (volume_path id) ())
        (resolve target)
    | Update (target, new_name) ->
      Option.iter
        (fun id ->
          send ~user Meth.PUT (volume_path id)
            ~body:
              (Json.obj
                 [ ("volume", Json.obj [ ("name", Json.string new_name) ]) ])
            ())
        (resolve target)
    | Delete target ->
      Option.iter
        (fun id -> send ~user Meth.DELETE (volume_path id) ())
        (resolve target)
    | Attach target ->
      Option.iter
        (fun id ->
          send ~user Meth.POST
            (volume_path id ^ "/action")
            ~body:
              (action_body "os-attach"
                 [ ("instance_uuid", Json.string "srv-fuzz") ])
            ())
        (resolve target)
    | Detach target ->
      Option.iter
        (fun id ->
          send ~user Meth.POST
            (volume_path id ^ "/action")
            ~body:(action_body "os-detach" [])
            ())
        (resolve target)
    | Drain ->
      List.iter
        (fun id ->
          send ~user Meth.POST
            (volume_path id ^ "/action")
            ~body:(action_body "os-detach" [])
            ();
          send ~user Meth.DELETE (volume_path id) ())
        (list_ids ctx)
  in
  List.iter exec trace;
  Cm_monitor.Monitor.outcomes ctx.Scenario.monitor

(* ---- serialization ---- *)

let target_to_string = function
  | Ghost -> "ghost"
  | Last_created -> "last"
  | Nth i -> "n" ^ string_of_int i

let target_of_string = function
  | "ghost" -> Ok Ghost
  | "last" -> Ok Last_created
  | s when String.length s > 1 && s.[0] = 'n' ->
    (match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
     | Some i -> Ok (Nth i)
     | None -> Error ("bad target " ^ s))
  | s -> Error ("bad target " ^ s)

let step_to_string { user; op } =
  let parts =
    match op with
    | List_volumes -> [ "list" ]
    | Create (name, size) -> [ "create"; name; string_of_int size ]
    | Get t -> [ "get"; target_to_string t ]
    | Update (t, name) -> [ "update"; target_to_string t; name ]
    | Delete t -> [ "delete"; target_to_string t ]
    | Attach t -> [ "attach"; target_to_string t ]
    | Detach t -> [ "detach"; target_to_string t ]
    | Drain -> [ "drain" ]
  in
  String.concat ":" (user :: parts)

let step_of_string text =
  let ( let* ) = Result.bind in
  match String.split_on_char ':' text with
  | user :: rest ->
    let* op =
      match rest with
      | [ "list" ] -> Ok List_volumes
      | [ "create"; name; size ] ->
        (match int_of_string_opt size with
         | Some n -> Ok (Create (name, n))
         | None -> Error ("bad size in " ^ text))
      | [ "get"; t ] -> Result.map (fun t -> Get t) (target_of_string t)
      | [ "update"; t; name ] ->
        Result.map (fun t -> Update (t, name)) (target_of_string t)
      | [ "delete"; t ] -> Result.map (fun t -> Delete t) (target_of_string t)
      | [ "attach"; t ] -> Result.map (fun t -> Attach t) (target_of_string t)
      | [ "detach"; t ] -> Result.map (fun t -> Detach t) (target_of_string t)
      | [ "drain" ] -> Ok Drain
      | _ -> Error ("bad step " ^ text)
    in
    Ok { user; op }
  | [] -> Error "empty step"

let to_string trace = String.concat ";" (List.map step_to_string trace)

let of_string text =
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | piece :: rest ->
      (match step_of_string piece with
       | Ok step -> build (step :: acc) rest
       | Error _ as err -> err)
  in
  if String.trim text = "" then Ok []
  else build [] (String.split_on_char ';' text)
