type 'a t = Rng.t -> size:int -> 'a

let return x : 'a t = fun _ ~size:_ -> x
let map f g : 'b t = fun rng ~size -> f (g rng ~size)
let bind g f : 'b t = fun rng ~size -> (f (g rng ~size)) rng ~size

let pair ga gb : ('a * 'b) t =
  fun rng ~size ->
  let a = ga rng ~size in
  let b = gb rng ~size in
  (a, b)

let int_range lo hi : int t = fun rng ~size:_ -> Rng.int_in rng lo hi
let bool : bool t = fun rng ~size:_ -> Rng.bool rng

let oneof gens : 'a t =
  fun rng ~size -> (Rng.choose rng gens) rng ~size

let oneof_const items : 'a t = fun rng ~size:_ -> Rng.choose rng items

let frequency weighted : 'a t =
  fun rng ~size ->
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  if total <= 0 then invalid_arg "Gen.frequency: weights must be positive";
  let roll = Rng.int rng total in
  let rec pick acc = function
    | [] -> invalid_arg "Gen.frequency: empty"
    | (w, g) :: rest -> if roll < acc + w then g else pick (acc + w) rest
  in
  (pick 0 weighted) rng ~size

let list_len len_gen elem_gen : 'a list t =
  fun rng ~size ->
  let n = len_gen rng ~size in
  List.init n (fun _ -> elem_gen rng ~size)

let sized f : 'a t = fun rng ~size -> (f size) rng ~size
let resize k g : 'a t = fun rng ~size:_ -> g rng ~size:k
let smaller g : 'a t = fun rng ~size -> g rng ~size:(max 0 (size / 2))

let run ~seed ~size g = g (Rng.of_seed seed) ~size
