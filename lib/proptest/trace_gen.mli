(** Random monitored request sequences over the simulated cloud.

    A trace is an {e abstract} script — users, operations, symbolic
    volume targets — resolved against the live cloud state while it
    runs, so the same trace replays identically on any fresh cloud with
    the same faults (the resolution only depends on cloud state, which
    evolves deterministically).

    For the mutation oracle a trace is [noise @ Drain @ probe]: random
    noise, a deterministic drain that empties the project (so quota and
    attachment state cannot mask the probe), then a randomized probe
    guaranteed by construction to exercise the injected fault — the
    randomized generalization of the paper's three-mutant experiment. *)

type target =
  | Ghost  (** a non-existent id — exercises 404 paths *)
  | Nth of int  (** the [i mod n]-th currently listed volume *)
  | Last_created  (** the most recent successfully created volume *)

type op =
  | List_volumes
  | Create of string * int  (** name, size *)
  | Get of target
  | Update of target * string  (** new name *)
  | Delete of target
  | Attach of target
  | Detach of target
  | Drain  (** detach and delete every volume (as admin) *)

type step = { user : string; op : op }
type t = step list

val gen_noise : t Gen.t
(** Random steps by alice/bob/carol; length grows with [size]. *)

val probe_for : string -> Rng.t -> t
(** Killing steps for the named mutant (names from
    {!Cm_mutation.Mutant}); raises [Invalid_argument] on an unknown
    mutant.  Randomized in its payload, fixed in its shape. *)

val with_probe : mutant:string -> Rng.t -> t -> t
(** [noise @ [Drain as admin] @ probe_for mutant]. *)

val run : Cm_mutation.Scenario.ctx -> t -> Cm_monitor.Outcome.t list
(** Execute the trace through the monitor; returns all monitored
    outcomes (oldest first).  Steps whose target cannot be resolved are
    skipped — identically on every cloud in the same state. *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** Compact one-line serialization for corpus files;
    [of_string (to_string t) = Ok t]. *)
