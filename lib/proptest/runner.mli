(** Drives the oracles over a deterministic case budget.

    The budget is split across oracles proportionally to their weights;
    each oracle then runs its cases at indices [0..n-1] with sizes
    cycling through [2 .. 2 + max_size - 1].  The whole run is a pure
    function of [(seed, cases, oracles)] — re-running with the same
    arguments reproduces the identical case sequence and report. *)

type oracle_stats = { name : string; cases : int; failures : int }

type report = {
  seed : int;
  shrink : bool;
  total_cases : int;
  stats : oracle_stats list;
  failures : Oracle.failure list;
}

val allocate : cases:int -> Oracle.t list -> (Oracle.t * int) list
(** Weighted split of the case budget; allocations sum to [cases]. *)

val run :
  ?oracles:Oracle.t list ->
  ?shrink:bool ->
  ?max_size:int ->
  seed:int ->
  cases:int ->
  unit ->
  report
(** Run the fuzz campaign.  Defaults: all oracles, shrinking on,
    [max_size] 10. *)

val failed : report -> bool

val render : report -> string
(** Deterministic human-readable report (no timestamps). *)

val replay_corpus :
  Oracle.t list -> Corpus.entry list -> (Corpus.entry * string) list
(** Re-check corpus entries; returns the entries that still fail (or
    reference an unknown oracle) with the failure detail. *)
