(** Random bounded chaos profiles for the fuzzer.

    Draws an unreliable-transport profile whose per-class probabilities
    stay inside the envelope a six-attempt retry policy is designed to
    absorb.  The chaos oracle runs a random trace with and without the
    generated profile and demands verdict integrity: no definite
    verdict flips, no mutant kill lost. *)

val gen_profile : Rng.t -> size:int -> Cm_cloudsim.Chaos.profile
(** Deterministic in the stream; [size] (the generator budget, 2..11)
    scales fault intensity. *)

val describe : Cm_cloudsim.Chaos.profile -> string
(** One-line rendering of the drawn probabilities, for counterexample
    reports. *)
