let minimize ?(budget = 1000) ~candidates ~still_fails x =
  let evals = ref 0 in
  let fails c =
    incr evals;
    still_fails c
  in
  let rec go current steps =
    if !evals >= budget then (current, steps)
    else begin
      let rec first = function
        | [] -> None
        | c :: rest ->
          if !evals >= budget then None
          else if fails c then Some c
          else first rest
      in
      match first (candidates current) with
      | Some smaller -> go smaller (steps + 1)
      | None -> (current, steps)
    end
  in
  go x 0

let shrink_list items =
  let n = List.length items in
  if n = 0 then []
  else begin
    let take k = List.filteri (fun i _ -> i < k) items in
    let drop k = List.filteri (fun i _ -> i >= k) items in
    let halves = if n >= 2 then [ take (n / 2); drop (n / 2) ] else [] in
    let drop_one =
      List.init n (fun i -> List.filteri (fun j _ -> j <> i) items)
    in
    halves @ drop_one
  end
