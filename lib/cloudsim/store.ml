module Json = Cm_json.Json

type snapshot = {
  snapshot_id : string;
  snapshot_name : string;
  mutable snapshot_status : string;
}

type volume = {
  volume_id : string;
  mutable volume_name : string;
  mutable status : string;
  mutable size_gb : int;
  mutable attached_to : string option;
  mutable source_image : string;
  snapshots : (string, snapshot) Hashtbl.t;
}

type server = {
  server_id : string;
  server_name : string;
  mutable server_status : string;
}

type image = {
  image_id : string;
  mutable image_name : string;
  mutable image_status : string;
  mutable visibility : string;
  image_size_mb : int;
}

type project = {
  project_id : string;
  project_name : string;
  mutable quota_volumes : int;
  mutable quota_gigabytes : int;
  mutable quota_images : int;
  volumes : (string, volume) Hashtbl.t;
  servers : (string, server) Hashtbl.t;
  images : (string, image) Hashtbl.t;
}

(* Domain-safety boundary: the store is shared by all shards, so the
   cross-project surface — the id counter and the project table — is
   Atomic/Mutex-protected.  Everything *inside* a project (its volume,
   server and image tables, the mutable resource fields) is owned by
   exactly one shard at a time: requests are partitioned by project and
   each shard serves its projects sequentially, so per-project state
   needs no locks.  Cross-shard readers of per-project state (benches,
   assertions) must run while serving is quiesced. *)
type t = {
  project_table : (string, project) Hashtbl.t;
  table_lock : Mutex.t;
  next_id : int Atomic.t;
}

let create () =
  { project_table = Hashtbl.create 16;
    table_lock = Mutex.create ();
    next_id = Atomic.make 1
  }

let fresh_id t ~prefix =
  Printf.sprintf "%s-%d" prefix (Atomic.fetch_and_add t.next_id 1)

let add_project t ~id ~name ~quota_volumes ~quota_gigabytes
    ?(quota_images = 2) () =
  let project =
    { project_id = id;
      project_name = name;
      quota_volumes;
      quota_gigabytes;
      quota_images;
      volumes = Hashtbl.create 16;
      servers = Hashtbl.create 16;
      images = Hashtbl.create 16
    }
  in
  Mutex.protect t.table_lock (fun () ->
      Hashtbl.replace t.project_table id project);
  project

let find_project t id =
  Mutex.protect t.table_lock (fun () -> Hashtbl.find_opt t.project_table id)

let projects t =
  Mutex.protect t.table_lock (fun () ->
      Hashtbl.fold (fun _ p acc -> p :: acc) t.project_table [])
  |> List.sort (fun a b -> String.compare a.project_id b.project_id)

let add_volume t project ?(source_image = "") ~name ~size_gb () =
  let volume =
    { volume_id = fresh_id t ~prefix:"vol";
      volume_name = name;
      status = "available";
      size_gb;
      attached_to = None;
      source_image;
      snapshots = Hashtbl.create 4
    }
  in
  Hashtbl.replace project.volumes volume.volume_id volume;
  volume

let find_volume project id = Hashtbl.find_opt project.volumes id

let volumes project =
  Hashtbl.fold (fun _ v acc -> v :: acc) project.volumes []
  |> List.sort (fun a b -> String.compare a.volume_id b.volume_id)

let remove_volume project id =
  if Hashtbl.mem project.volumes id then begin
    Hashtbl.remove project.volumes id;
    true
  end
  else false

let volume_count project = Hashtbl.length project.volumes

let used_gigabytes project =
  Hashtbl.fold (fun _ v acc -> acc + v.size_gb) project.volumes 0

let add_snapshot t volume ~name =
  let snapshot =
    { snapshot_id = fresh_id t ~prefix:"snap";
      snapshot_name = name;
      snapshot_status = "available"
    }
  in
  Hashtbl.replace volume.snapshots snapshot.snapshot_id snapshot;
  snapshot

let find_snapshot volume id = Hashtbl.find_opt volume.snapshots id

let snapshots volume =
  Hashtbl.fold (fun _ s acc -> s :: acc) volume.snapshots []
  |> List.sort (fun a b -> String.compare a.snapshot_id b.snapshot_id)

let remove_snapshot volume id =
  if Hashtbl.mem volume.snapshots id then begin
    Hashtbl.remove volume.snapshots id;
    true
  end
  else false

let add_server t project ~name =
  let server =
    { server_id = fresh_id t ~prefix:"srv";
      server_name = name;
      server_status = "ACTIVE"
    }
  in
  Hashtbl.replace project.servers server.server_id server;
  server

let find_server project id = Hashtbl.find_opt project.servers id

let servers project =
  Hashtbl.fold (fun _ s acc -> s :: acc) project.servers []
  |> List.sort (fun a b -> String.compare a.server_id b.server_id)

let remove_server project id =
  if Hashtbl.mem project.servers id then begin
    Hashtbl.remove project.servers id;
    true
  end
  else false

let add_image t project ~name ~size_mb =
  let image =
    { image_id = fresh_id t ~prefix:"img";
      image_name = name;
      image_status = "queued";
      visibility = "private";
      image_size_mb = size_mb
    }
  in
  Hashtbl.replace project.images image.image_id image;
  image

let find_image project id = Hashtbl.find_opt project.images id

let images project =
  Hashtbl.fold (fun _ i acc -> i :: acc) project.images []
  |> List.sort (fun a b -> String.compare a.image_id b.image_id)

let remove_image project id =
  if Hashtbl.mem project.images id then begin
    Hashtbl.remove project.images id;
    true
  end
  else false

let image_count project = Hashtbl.length project.images

let volume_json v =
  Json.obj
    [ ("id", Json.string v.volume_id);
      ("name", Json.string v.volume_name);
      ("status", Json.string v.status);
      ("size", Json.int v.size_gb);
      (* Always emitted (default "") so contracts selecting on these
         never see a missing member. *)
      ("source_image", Json.string v.source_image);
      ( "attached_server",
        Json.string (Option.value ~default:"" v.attached_to) );
      ( "attachments",
        Json.list
          (match v.attached_to with
           | Some server_id ->
             [ Json.obj [ ("server_id", Json.string server_id) ] ]
           | None -> []) )
    ]

let snapshot_json s =
  Json.obj
    [ ("id", Json.string s.snapshot_id);
      ("name", Json.string s.snapshot_name);
      ("status", Json.string s.snapshot_status)
    ]

let server_json s =
  Json.obj
    [ ("id", Json.string s.server_id);
      ("name", Json.string s.server_name);
      ("status", Json.string s.server_status)
    ]

let project_json p =
  Json.obj
    [ ("id", Json.string p.project_id); ("name", Json.string p.project_name) ]

let image_json i =
  Json.obj
    [ ("id", Json.string i.image_id);
      ("name", Json.string i.image_name);
      ("status", Json.string i.image_status);
      ("visibility", Json.string i.visibility);
      ("size", Json.int i.image_size_mb)
    ]

let quota_set_json p =
  Json.obj
    [ ("id", Json.string p.project_id);
      ("volumes", Json.int p.quota_volumes);
      ("gigabytes", Json.int p.quota_gigabytes);
      ("images", Json.int p.quota_images)
    ]
