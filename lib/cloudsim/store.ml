module Json = Cm_json.Json

type snapshot = {
  snapshot_id : string;
  snapshot_name : string;
  mutable snapshot_status : string;
}

type volume = {
  volume_id : string;
  mutable volume_name : string;
  mutable status : string;
  mutable size_gb : int;
  mutable attached_to : string option;
  mutable source_image : string;
  snapshots : (string, snapshot) Hashtbl.t;
}

type server = {
  server_id : string;
  server_name : string;
  mutable server_status : string;
}

type image = {
  image_id : string;
  mutable image_name : string;
  mutable image_status : string;
  mutable visibility : string;
  image_size_mb : int;
}

type project = {
  project_id : string;
  project_name : string;
  mutable quota_volumes : int;
  mutable quota_gigabytes : int;
  mutable quota_images : int;
  volumes : (string, volume) Hashtbl.t;
  servers : (string, server) Hashtbl.t;
  images : (string, image) Hashtbl.t;
}

module Smap = Map.Make (String)

(* Domain-safety boundary: the store is shared by all shards, so the
   cross-project surface — the id counter and the project table — must
   be safe to touch from any domain.  The table is RCU-style: each
   partition publishes an immutable [Smap] snapshot through an [Atomic];
   the per-request read path ([find_project]) is one [Atomic.get] plus a
   persistent-map lookup — no lock, no CAS, no write of any kind.
   Writers (project creation/removal — setup and churn traffic, not the
   serving hot path) serialize on the partition's instrumented mutex,
   rebuild the map, and publish the successor with a plain atomic store;
   the mutex makes writers mutually exclusive, so the store is a
   linearization point, and a reader sees either the old map or the new
   one, never a partially-applied mutation.

   Everything *inside* a project (its volume, server and image tables,
   the mutable resource fields) is owned by exactly one shard at a time:
   requests are partitioned by project and each shard serves its
   projects sequentially, so per-project state needs no locks.
   Cross-shard readers of per-project state (benches, assertions) must
   run while serving is quiesced. *)

type partition = {
  snapshot : project Smap.t Atomic.t;
  write_lock : Cm_core.Lockstat.t;
}

(* Enough partitions that concurrent churn writers rarely share one;
   readers never care (they touch only the snapshot). *)
let partitions = 16

type t = {
  parts : partition array;
  next_id : int Atomic.t;
}

(* FNV-1a over the project id — any stable hash works, the partition
   only has to be a pure function of the id. *)
let partition_hash s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    s;
  !h

let partition_of t id = t.parts.(partition_hash id mod partitions)

let create () =
  { parts =
      Array.init partitions (fun i ->
          { snapshot = Atomic.make Smap.empty;
            write_lock =
              Cm_core.Lockstat.create
                (Printf.sprintf "store.partition-%02d" i)
          });
    next_id = Atomic.make 1
  }

let fresh_id t ~prefix =
  Printf.sprintf "%s-%d" prefix (Atomic.fetch_and_add t.next_id 1)

let add_project t ~id ~name ~quota_volumes ~quota_gigabytes
    ?(quota_images = 2) () =
  let project =
    { project_id = id;
      project_name = name;
      quota_volumes;
      quota_gigabytes;
      quota_images;
      volumes = Hashtbl.create 16;
      servers = Hashtbl.create 16;
      images = Hashtbl.create 16
    }
  in
  let part = partition_of t id in
  Cm_core.Lockstat.protect part.write_lock (fun () ->
      Atomic.set part.snapshot
        (Smap.add id project (Atomic.get part.snapshot)));
  project

let find_project t id =
  Smap.find_opt id (Atomic.get (partition_of t id).snapshot)

let remove_project t id =
  let part = partition_of t id in
  Cm_core.Lockstat.protect part.write_lock (fun () ->
      let before = Atomic.get part.snapshot in
      if Smap.mem id before then begin
        Atomic.set part.snapshot (Smap.remove id before);
        true
      end
      else false)

let projects t =
  Array.fold_left
    (fun acc part ->
      Smap.fold (fun _ p acc -> p :: acc) (Atomic.get part.snapshot) acc)
    [] t.parts
  |> List.sort (fun a b -> String.compare a.project_id b.project_id)

let add_volume t project ?(source_image = "") ~name ~size_gb () =
  let volume =
    { volume_id = fresh_id t ~prefix:"vol";
      volume_name = name;
      status = "available";
      size_gb;
      attached_to = None;
      source_image;
      snapshots = Hashtbl.create 4
    }
  in
  Hashtbl.replace project.volumes volume.volume_id volume;
  volume

let find_volume project id = Hashtbl.find_opt project.volumes id

let volumes project =
  Hashtbl.fold (fun _ v acc -> v :: acc) project.volumes []
  |> List.sort (fun a b -> String.compare a.volume_id b.volume_id)

let remove_volume project id =
  if Hashtbl.mem project.volumes id then begin
    Hashtbl.remove project.volumes id;
    true
  end
  else false

let volume_count project = Hashtbl.length project.volumes

let used_gigabytes project =
  Hashtbl.fold (fun _ v acc -> acc + v.size_gb) project.volumes 0

let add_snapshot t volume ~name =
  let snapshot =
    { snapshot_id = fresh_id t ~prefix:"snap";
      snapshot_name = name;
      snapshot_status = "available"
    }
  in
  Hashtbl.replace volume.snapshots snapshot.snapshot_id snapshot;
  snapshot

let find_snapshot volume id = Hashtbl.find_opt volume.snapshots id

let snapshots volume =
  Hashtbl.fold (fun _ s acc -> s :: acc) volume.snapshots []
  |> List.sort (fun a b -> String.compare a.snapshot_id b.snapshot_id)

let remove_snapshot volume id =
  if Hashtbl.mem volume.snapshots id then begin
    Hashtbl.remove volume.snapshots id;
    true
  end
  else false

let add_server t project ~name =
  let server =
    { server_id = fresh_id t ~prefix:"srv";
      server_name = name;
      server_status = "ACTIVE"
    }
  in
  Hashtbl.replace project.servers server.server_id server;
  server

let find_server project id = Hashtbl.find_opt project.servers id

let servers project =
  Hashtbl.fold (fun _ s acc -> s :: acc) project.servers []
  |> List.sort (fun a b -> String.compare a.server_id b.server_id)

let remove_server project id =
  if Hashtbl.mem project.servers id then begin
    Hashtbl.remove project.servers id;
    true
  end
  else false

let add_image t project ~name ~size_mb =
  let image =
    { image_id = fresh_id t ~prefix:"img";
      image_name = name;
      image_status = "queued";
      visibility = "private";
      image_size_mb = size_mb
    }
  in
  Hashtbl.replace project.images image.image_id image;
  image

let find_image project id = Hashtbl.find_opt project.images id

let images project =
  Hashtbl.fold (fun _ i acc -> i :: acc) project.images []
  |> List.sort (fun a b -> String.compare a.image_id b.image_id)

let remove_image project id =
  if Hashtbl.mem project.images id then begin
    Hashtbl.remove project.images id;
    true
  end
  else false

let image_count project = Hashtbl.length project.images

let volume_json v =
  Json.obj
    [ ("id", Json.string v.volume_id);
      ("name", Json.string v.volume_name);
      ("status", Json.string v.status);
      ("size", Json.int v.size_gb);
      (* Always emitted (default "") so contracts selecting on these
         never see a missing member. *)
      ("source_image", Json.string v.source_image);
      ( "attached_server",
        Json.string (Option.value ~default:"" v.attached_to) );
      ( "attachments",
        Json.list
          (match v.attached_to with
           | Some server_id ->
             [ Json.obj [ ("server_id", Json.string server_id) ] ]
           | None -> []) )
    ]

let snapshot_json s =
  Json.obj
    [ ("id", Json.string s.snapshot_id);
      ("name", Json.string s.snapshot_name);
      ("status", Json.string s.snapshot_status)
    ]

let server_json s =
  Json.obj
    [ ("id", Json.string s.server_id);
      ("name", Json.string s.server_name);
      ("status", Json.string s.server_status)
    ]

let project_json p =
  Json.obj
    [ ("id", Json.string p.project_id); ("name", Json.string p.project_name) ]

let image_json i =
  Json.obj
    [ ("id", Json.string i.image_id);
      ("name", Json.string i.image_name);
      ("status", Json.string i.image_status);
      ("visibility", Json.string i.visibility);
      ("size", Json.int i.image_size_mb)
    ]

let quota_set_json p =
  Json.obj
    [ ("id", Json.string p.project_id);
      ("volumes", Json.int p.quota_volumes);
      ("gigabytes", Json.int p.quota_gigabytes);
      ("images", Json.int p.quota_images)
    ]
