module Json = Cm_json.Json
module Request = Cm_http.Request
module Response = Cm_http.Response
module Status = Cm_http.Status

type t = { store : Store.t; ctx : Guarded.ctx }

let create ~store ~ctx = { store; ctx }

let ( let* ) r f = match r with Ok v -> f v | Error resp -> resp

let with_project t bindings f =
  let project_id =
    Option.value ~default:"" (List.assoc_opt "project_id" bindings)
  in
  match Store.find_project t.store project_id with
  | None -> Response.error Status.not_found "project not found"
  | Some project -> f project

let with_server project bindings f =
  let server_id =
    Option.value ~default:"" (List.assoc_opt "server_id" bindings)
  in
  match Store.find_server project server_id with
  | None -> Response.error Status.not_found "server not found"
  | Some server -> f server

let body_volume_id req =
  match req.Request.body with
  | Some body ->
    (match Cm_json.Pointer.get [ Key "volume_id" ] body with
     | Some (Json.String id) -> Some id
     | Some _ | None -> None)
  | None -> None

let list_servers t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"servers:get"
          ~project_id:project.Store.project_id req
      in
      Response.ok
        (Json.obj
           [ ( "servers",
               Json.list (List.map Store.server_json (Store.servers project)) )
           ]))

let create_server t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"server:create"
          ~project_id:project.Store.project_id req
      in
      let name =
        match req.Request.body with
        | Some body ->
          (match Cm_json.Pointer.get [ Key "server"; Key "name" ] body with
           | Some (Json.String n) -> n
           | Some _ | None -> "server")
        | None -> "server"
      in
      let server = Store.add_server t.store project ~name in
      Response.created (Json.obj [ ("server", Store.server_json server) ]))

let show_server t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"server:get"
          ~project_id:project.Store.project_id req
      in
      with_server project bindings (fun server ->
          Response.ok (Json.obj [ ("server", Store.server_json server) ])))

let delete_server t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"server:delete"
          ~project_id:project.Store.project_id req
      in
      with_server project bindings (fun server ->
          (* Deleting a server releases its volumes — unless the
             [Server_delete_leak] mutant forgets to, leaving them in-use
             and attached to a server that no longer exists. *)
          if not (Faults.server_delete_leak (Guarded.faults t.ctx)) then
            List.iter
              (fun (v : Store.volume) ->
                match v.attached_to with
                | Some sid when sid = server.Store.server_id ->
                  v.status <- "available";
                  v.attached_to <- None
                | Some _ | None -> ())
              (Store.volumes project);
          ignore (Store.remove_server project server.Store.server_id);
          Response.no_content))

let attach_volume t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"volume:attach"
          ~project_id:project.Store.project_id req
      in
      let faults = Guarded.faults t.ctx in
      let do_attach server_id =
        match body_volume_id req with
        | None -> Response.error Status.bad_request "missing volume_id"
        | Some volume_id ->
          (match Store.find_volume project volume_id with
           | None ->
             if Faults.attach_missing_volume_ok faults then
               (* Mutant: acknowledge an attachment whose volume does
                  not exist. *)
               Response.make Status.accepted
             else Response.error Status.not_found "volume not found"
           | Some volume ->
             if
               volume.Store.status = "in-use"
               && not (Faults.attach_in_use_ok faults)
             then Response.error Status.conflict "volume already attached"
             else begin
               volume.Store.status <- "in-use";
               volume.Store.attached_to <- Some server_id;
               Response.make Status.accepted
             end)
      in
      let server_id =
        Option.value ~default:"" (List.assoc_opt "server_id" bindings)
      in
      match Store.find_server project server_id with
      | Some server -> do_attach server.Store.server_id
      | None ->
        if Faults.attach_dead_server_ok faults then
          (* Mutant: attach to a server that does not exist. *)
          do_attach server_id
        else Response.error Status.not_found "server not found")

let detach_volume t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"volume:detach"
          ~project_id:project.Store.project_id req
      in
      with_server project bindings (fun server ->
          match body_volume_id req with
          | None -> Response.error Status.bad_request "missing volume_id"
          | Some volume_id ->
            (match Store.find_volume project volume_id with
             | None -> Response.error Status.not_found "volume not found"
             | Some volume ->
               (match volume.Store.attached_to with
                | Some sid when sid = server.Store.server_id ->
                  if Faults.detach_noop (Guarded.faults t.ctx) then
                    (* Mutant: acknowledge but leave the volume
                       attached. *)
                    Response.make Status.accepted
                  else begin
                    volume.Store.status <- "available";
                    volume.Store.attached_to <- None;
                    Response.make Status.accepted
                  end
                | Some _ | None ->
                  Response.error Status.conflict
                    "volume is not attached to this server"))))

let routes t =
  let open Cm_http.Meth in
  [ ("/v3/{project_id}/servers", GET, list_servers t);
    ("/v3/{project_id}/servers", POST, create_server t);
    ("/v3/{project_id}/servers/{server_id}", GET, show_server t);
    ("/v3/{project_id}/servers/{server_id}", DELETE, delete_server t);
    ("/v3/{project_id}/servers/{server_id}/attach", POST, attach_volume t);
    ("/v3/{project_id}/servers/{server_id}/detach", POST, detach_volume t)
  ]
