(** Deterministic unreliable-transport simulation.

    Wraps a backend ([Request.t -> Response.t]) in the crash-fault
    classes a proxy deployed in front of a real cloud must survive —
    the infrastructure failures Cotroneo et al. observe cloud runtime
    verifiers themselves hit.  Every decision is drawn from a seeded
    PRNG and all latency is {e virtual} ({!Cm_core.Clock}), so a chaos
    campaign is bit-reproducible and runs with no wall-clock sleeps.

    Fault classes (independent per-request draws):
    - {b latency}: base + jitter, plus rare budget-busting spikes — the
      caller abandoning the wait is what a "timeout" is;
    - {b drop-before}: connection reset before the cloud saw the
      request (safe to retry);
    - {b drop-after}: the cloud {e executed} the request, then the
      connection died (retry only behind an idempotency key);
    - {b 5xx blips}: a gateway answers 502/503 without reaching the
      cloud;
    - {b duplicate}: the request is delivered twice (at-least-once
      transport);
    - {b stale}: a GET is answered from a one-update-old cache;
    - {b corrupt}: a GET body arrives truncated or malformed.

    Mutations are only duplicated, never dropped silently: every
    response the caller receives is either the cloud's answer, a
    well-formed 5xx, a stale/corrupted read, or a raised
    {!Cm_core.Transport} exception. *)

type latency = {
  base_ms : int;
  jitter_ms : int;  (** uniform extra in [\[0, jitter_ms\]] *)
  spike_p : float;  (** probability of a spike of [spike_ms] more *)
  spike_ms : int;
}

val instant : latency
(** Zero latency. *)

type profile = {
  name : string;
  description : string;
  latency : latency;
  drop_before_p : float;
  drop_after_p : float;
  blip_5xx_p : float;
  stale_p : float;  (** GETs only *)
  corrupt_p : float;  (** GETs only *)
  duplicate_p : float;
  route_prefix : string option;
      (** only requests whose path starts with this are affected *)
}

val fault_free : profile
val flaky_network : profile
val slow_backend : profile
val degraded_cloud : profile
val adversarial : profile

val profiles : profile list
(** All named profiles, [fault_free] first. *)

val find_profile : string -> profile option
val pp_profile : Format.formatter -> profile -> unit

type t

val create :
  ?seed:int ->
  profile ->
  Cm_core.Clock.t ->
  (Cm_http.Request.t -> Cm_http.Response.t) ->
  t

val backend : t -> Cm_http.Request.t -> Cm_http.Response.t
(** The wrapped transport.  May raise {!Cm_core.Transport.Connection_reset};
    latency is applied by advancing the virtual clock. *)

val stats : t -> (string * int) list
(** Injected-fault counters by class, sorted by name. *)
