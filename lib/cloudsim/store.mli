(** In-memory state of the simulated cloud: projects, volumes, servers,
    quotas.

    The store is deliberately simple and mutable — it stands in for
    OpenStack's databases.  Determinism matters more than realism here:
    identifiers are sequential ([vol-1], [srv-1], …) so that tests and
    benches are reproducible.

    {b Domain safety.}  The cross-project surface is safe to call from
    any domain: {!fresh_id} is an [Atomic] counter and the project
    table is an RCU-style published snapshot — readers resolve a
    project with one [Atomic.get] of an immutable map (no lock),
    writers serialize on a per-partition instrumented mutex and
    publish a new snapshot.  Per-project state (the tables and
    mutable fields inside a {!project}) follows a shard-ownership
    discipline instead of locks: requests are partitioned by project
    and each project is served by exactly one domain at a time, so
    concurrent access to {e different} projects is safe while
    concurrent access to the {e same} project is the caller's bug.
    Note that under parallel serving the interleaving of [fresh_id]
    calls across shards is scheduler-dependent, so id {e values} are
    not reproducible run-to-run — contracts never read ids' spellings,
    so verdicts stay deterministic (see DESIGN.md §8). *)

type snapshot = {
  snapshot_id : string;
  snapshot_name : string;
  mutable snapshot_status : string;  (** "creating", "available" *)
}

type volume = {
  volume_id : string;
  mutable volume_name : string;
  mutable status : string;  (** "available", "in-use", "error", … *)
  mutable size_gb : int;
  mutable attached_to : string option;  (** server id when in-use *)
  mutable source_image : string;
      (** backing image id for image-backed volumes, [""] otherwise *)
  snapshots : (string, snapshot) Hashtbl.t;
}

type server = {
  server_id : string;
  server_name : string;
  mutable server_status : string;
}

type image = {
  image_id : string;
  mutable image_name : string;
  mutable image_status : string;  (** "queued", "active", "deactivated" *)
  mutable visibility : string;  (** "private" or "public" *)
  image_size_mb : int;
}

type project = {
  project_id : string;
  project_name : string;
  mutable quota_volumes : int;
  mutable quota_gigabytes : int;
  mutable quota_images : int;
  volumes : (string, volume) Hashtbl.t;
  servers : (string, server) Hashtbl.t;
  images : (string, image) Hashtbl.t;
}

type t

val create : unit -> t
val fresh_id : t -> prefix:string -> string

(** [add_project] creates and registers a project; [quota_images]
    defaults to 2. *)
val add_project :
  t -> id:string -> name:string -> quota_volumes:int -> quota_gigabytes:int ->
  ?quota_images:int -> unit -> project

val find_project : t -> string -> project option
(** Lock-free: a single [Atomic.get] of the partition's published
    snapshot — the per-request hot path acquires zero locks. *)

val remove_project : t -> string -> bool
(** Unpublish a project (tenant teardown).  Requests already holding
    the {!project} keep a consistent view: snapshots are immutable, so
    removal only stops {e new} lookups from seeing it. *)

val projects : t -> project list
(** All projects, sorted by id for deterministic listings. *)

(** [add_volume] creates a volume; [source_image] defaults to [""]
    (not image-backed). *)
val add_volume :
  t -> project -> ?source_image:string -> name:string -> size_gb:int ->
  unit -> volume
val find_volume : project -> string -> volume option
val volumes : project -> volume list
(** Sorted by id for deterministic listings. *)

val remove_volume : project -> string -> bool
val volume_count : project -> int
val used_gigabytes : project -> int

val add_server : t -> project -> name:string -> server
val find_server : project -> string -> server option
val servers : project -> server list
val remove_server : project -> string -> bool

val add_snapshot : t -> volume -> name:string -> snapshot
val find_snapshot : volume -> string -> snapshot option
val snapshots : volume -> snapshot list
val remove_snapshot : volume -> string -> bool

val add_image : t -> project -> name:string -> size_mb:int -> image
val find_image : project -> string -> image option
val images : project -> image list
val remove_image : project -> string -> bool
val image_count : project -> int

(** {1 JSON representations (API body shapes)} *)

val volume_json : volume -> Cm_json.Json.t
val snapshot_json : snapshot -> Cm_json.Json.t
val server_json : server -> Cm_json.Json.t
val image_json : image -> Cm_json.Json.t
val project_json : project -> Cm_json.Json.t
val quota_set_json : project -> Cm_json.Json.t
