module Json = Cm_json.Json
module Request = Cm_http.Request
module Response = Cm_http.Response
module Status = Cm_http.Status

type t = { store : Store.t; ctx : Guarded.ctx }

let create ~store ~ctx = { store; ctx }

let ( let* ) r f = match r with Ok v -> f v | Error resp -> resp

let with_project t bindings f =
  let project_id =
    Option.value ~default:"" (List.assoc_opt "project_id" bindings)
  in
  match Store.find_project t.store project_id with
  | None -> Response.error Status.not_found "project not found"
  | Some project -> f project

let with_image project bindings f =
  let image_id =
    Option.value ~default:"" (List.assoc_opt "image_id" bindings)
  in
  match Store.find_image project image_id with
  | None -> Response.error Status.not_found "image not found"
  | Some image -> f image

let legal_status_move current requested =
  match current, requested with
  | "queued", "active" -> true
  | "active", "deactivated" -> true
  | "deactivated", "active" -> true
  | same, requested when same = requested -> true
  | _, _ -> false

let faulty_status t ~action ~default =
  match Faults.success_status_for (Guarded.faults t.ctx) action with
  | Some status -> status
  | None -> default

let list_images t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"images:get"
          ~project_id:project.Store.project_id req
      in
      let filtered =
        Store.images project
        |> Listing.filter_param req "status"
             (fun (i : Store.image) -> i.image_status)
        |> Listing.filter_param req "visibility"
             (fun (i : Store.image) -> i.visibility)
      in
      match
        Listing.paginate req filtered
          ~id_of:(fun (i : Store.image) -> i.image_id)
      with
      | Error msg -> Response.error Status.bad_request msg
      | Ok page ->
        Response.make
          ~body:
            (Json.obj [ ("images", Json.list (List.map Store.image_json page)) ])
          (faulty_status t ~action:"images:get" ~default:Status.ok))

let create_image t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"image:create"
          ~project_id:project.Store.project_id req
      in
      let name, size_mb =
        match req.Request.body with
        | Some body ->
          let get field = Cm_json.Pointer.get [ Key "image"; Key field ] body in
          ( (match get "name" with
             | Some (Json.String n) -> n
             | Some _ | None -> "image"),
            match get "size" with Some (Json.Int n) -> n | Some _ | None -> 512
          )
        | None -> ("image", 512)
      in
      if size_mb <= 0 then
        Response.error Status.bad_request "image size must be positive"
      else begin
        let faults = Guarded.faults t.ctx in
        if
          Store.image_count project >= project.Store.quota_images
          && not (Faults.ignores_quota faults)
        then
          Response.error Status.request_entity_too_large
            "ImageLimitExceeded: quota exceeded for images"
        else begin
          let image = Store.add_image t.store project ~name ~size_mb in
          Response.make
            ~body:(Json.obj [ ("image", Store.image_json image) ])
            (faulty_status t ~action:"image:create" ~default:Status.created)
        end
      end)

let show_image t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"image:get"
          ~project_id:project.Store.project_id req
      in
      with_image project bindings (fun image ->
          Response.make
            ~body:(Json.obj [ ("image", Store.image_json image) ])
            (faulty_status t ~action:"image:get" ~default:Status.ok)))

let update_image t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"image:update"
          ~project_id:project.Store.project_id req
      in
      with_image project bindings (fun image ->
          let get field =
            Option.bind req.Request.body
              (Cm_json.Pointer.get [ Key "image"; Key field ])
          in
          let status_request =
            match get "status" with
            | Some (Json.String s) -> Some s
            | Some _ | None -> None
          in
          match status_request with
          | Some requested
            when not (legal_status_move image.Store.image_status requested) ->
            Response.error Status.bad_request
              (Printf.sprintf "illegal status move %s -> %s"
                 image.Store.image_status requested)
          | _ ->
            (match status_request with
             | Some requested -> image.Store.image_status <- requested
             | None -> ());
            (match get "name" with
             | Some (Json.String n) -> image.Store.image_name <- n
             | Some _ | None -> ());
            (match get "visibility" with
             | Some (Json.String v) when v = "private" || v = "public" ->
               image.Store.visibility <- v
             | Some _ | None -> ());
            Response.make
              ~body:(Json.obj [ ("image", Store.image_json image) ])
              (faulty_status t ~action:"image:update" ~default:Status.ok)))

let delete_image t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"image:delete"
          ~project_id:project.Store.project_id req
      in
      with_image project bindings (fun image ->
          let faults = Guarded.faults t.ctx in
          let backs_volume =
            List.exists
              (fun (v : Store.volume) ->
                v.source_image = image.Store.image_id)
              (Store.volumes project)
          in
          if
            image.Store.image_status = "active"
            && not (Faults.allows_delete_in_use faults)
          then
            Response.error Status.bad_request
              "image is active and cannot be deleted (deactivate first)"
          else if
            backs_volume && not (Faults.allows_delete_backing_image faults)
          then
            Response.error Status.conflict
              "image still backs volumes and cannot be deleted"
          else begin
            ignore (Store.remove_image project image.Store.image_id);
            Response.make
              (faulty_status t ~action:"image:delete" ~default:Status.no_content)
          end))

let routes t =
  let open Cm_http.Meth in
  [ ("/v3/{project_id}/images", GET, list_images t);
    ("/v3/{project_id}/images", POST, create_image t);
    ("/v3/{project_id}/images/{image_id}", GET, show_image t);
    ("/v3/{project_id}/images/{image_id}", PUT, update_image t);
    ("/v3/{project_id}/images/{image_id}", DELETE, delete_image t)
  ]
