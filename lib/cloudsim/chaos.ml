module Clock = Cm_core.Clock
module Prng = Cm_core.Prng
module Transport = Cm_core.Transport
module Request = Cm_http.Request
module Response = Cm_http.Response
module Status = Cm_http.Status
module Json = Cm_json.Json

type latency = {
  base_ms : int;
  jitter_ms : int;
  spike_p : float;
  spike_ms : int;
}

let instant = { base_ms = 0; jitter_ms = 0; spike_p = 0.0; spike_ms = 0 }

type profile = {
  name : string;
  description : string;
  latency : latency;
  drop_before_p : float;
  drop_after_p : float;
  blip_5xx_p : float;
  stale_p : float;
  corrupt_p : float;
  duplicate_p : float;
  route_prefix : string option;
}

let fault_free =
  { name = "fault-free";
    description = "perfect transport: zero latency, no faults";
    latency = instant;
    drop_before_p = 0.0;
    drop_after_p = 0.0;
    blip_5xx_p = 0.0;
    stale_p = 0.0;
    corrupt_p = 0.0;
    duplicate_p = 0.0;
    route_prefix = None
  }

let flaky_network =
  { fault_free with
    name = "flaky-network";
    description = "resets and gateway blips on an otherwise fast link";
    latency = { base_ms = 2; jitter_ms = 6; spike_p = 0.0; spike_ms = 0 };
    drop_before_p = 0.06;
    drop_after_p = 0.03;
    blip_5xx_p = 0.06
  }

let slow_backend =
  { fault_free with
    name = "slow-backend";
    description = "high latency with budget-busting spikes (timeouts)";
    latency = { base_ms = 40; jitter_ms = 80; spike_p = 0.05; spike_ms = 30_000 }
  }

let degraded_cloud =
  { fault_free with
    name = "degraded-cloud";
    description = "stale caches and corrupted bodies on reads";
    latency = { base_ms = 5; jitter_ms = 10; spike_p = 0.0; spike_ms = 0 };
    stale_p = 0.10;
    corrupt_p = 0.08
  }

let adversarial =
  { name = "adversarial";
    description = "every fault class at once, still within retry reach";
    latency = { base_ms = 10; jitter_ms = 30; spike_p = 0.03; spike_ms = 30_000 };
    drop_before_p = 0.05;
    drop_after_p = 0.03;
    blip_5xx_p = 0.05;
    stale_p = 0.06;
    corrupt_p = 0.05;
    duplicate_p = 0.04;
    route_prefix = None
  }

let profiles =
  [ fault_free; flaky_network; slow_backend; degraded_cloud; adversarial ]

let find_profile name =
  List.find_opt (fun p -> p.name = name) profiles

let pp_profile ppf p = Fmt.pf ppf "%s (%s)" p.name p.description

type t = {
  profile : profile;
  clock : Clock.t;
  inner : Request.t -> Response.t;
  rng : Prng.t;
  (* previous GET response per path, for stale serving (one update deep) *)
  cache : (string, Response.t) Hashtbl.t;
  stats : (string, int) Hashtbl.t;
}

let create ?(seed = 0xC405) profile clock inner =
  { profile; clock; inner; rng = Prng.of_seed seed;
    cache = Hashtbl.create 64; stats = Hashtbl.create 16
  }

let bump t what =
  Hashtbl.replace t.stats what
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.stats what))

let stats t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.stats []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let in_scope t (req : Request.t) =
  match t.profile.route_prefix with
  | None -> true
  | Some prefix ->
    String.length req.Request.path >= String.length prefix
    && String.sub req.Request.path 0 (String.length prefix) = prefix

let sample_latency t =
  let l = t.profile.latency in
  let base =
    l.base_ms + (if l.jitter_ms > 0 then Prng.int t.rng (l.jitter_ms + 1) else 0)
  in
  if Prng.chance t.rng l.spike_p then base + l.spike_ms else base

(* Corrupt a response body so it no longer parses as an API envelope:
   either a truncated-text stand-in or an empty object.  Both defeat the
   observer's single-key unwrap, exactly like a cut-off TCP stream. *)
let corrupt_body t (resp : Response.t) =
  match resp.Response.body with
  | None -> resp
  | Some body ->
    let printed = Cm_json.Printer.to_string body in
    let corrupted =
      if Prng.chance t.rng 0.5 then Json.Obj []
      else
        Json.String
          (String.sub printed 0 (max 1 (String.length printed / 2)) ^ "\xe2\x80\xa6")
    in
    { resp with Response.body = Some corrupted }

let is_get (req : Request.t) = req.Request.meth = Cm_http.Meth.GET

let backend_of t (req : Request.t) =
  if not (in_scope t req) then t.inner req
  else begin
    Clock.advance t.clock (sample_latency t);
    if Prng.chance t.rng t.profile.drop_before_p then begin
      bump t "drop-before";
      raise Transport.Connection_reset
    end;
    if Prng.chance t.rng t.profile.blip_5xx_p then begin
      bump t "blip-5xx";
      Response.error
        (if Prng.chance t.rng 0.5 then Status.bad_gateway
         else Status.service_unavailable)
        "chaos: gateway blip"
    end
    else begin
      let resp = t.inner req in
      (* duplicated delivery: the backend sees the request twice; the
         caller gets the first answer (idempotency is the cloud's
         problem — X-Request-Id dedup absorbs it). *)
      if Prng.chance t.rng t.profile.duplicate_p then begin
        bump t "duplicate";
        ignore (t.inner req)
      end;
      if Prng.chance t.rng t.profile.drop_after_p then begin
        bump t "drop-after";
        raise Transport.Connection_reset
      end;
      let resp =
        if not (is_get req) then resp
        else begin
          let key = req.Request.path in
          let serve_stale =
            Prng.chance t.rng t.profile.stale_p && Hashtbl.mem t.cache key
          in
          let stale = Hashtbl.find_opt t.cache key in
          Hashtbl.replace t.cache key resp;
          if serve_stale then begin
            bump t "stale";
            Option.value ~default:resp stale
          end
          else resp
        end
      in
      if is_get req && Prng.chance t.rng t.profile.corrupt_p then begin
        bump t "corrupt";
        corrupt_body t resp
      end
      else resp
    end
  end

let backend t = backend_of t
