(** The assembled private cloud.

    Wires the identity, block-storage and compute services behind one
    request dispatcher — the simulated counterpart of the OpenStack
    deployment of §VI-D (controller + compute nodes).  The monitor talks
    to a cloud only through {!handle}, exactly as it would talk to a
    real endpoint through HTTP. *)

type t

val create :
  ?policy:Cm_rbac.Policy.t -> ?clock:Cm_core.Clock.t -> ?seed:int -> unit -> t
(** [policy] defaults to {!default_policy}.  [clock] is the virtual
    clock advanced by [Slow_action] faults (fresh by default); [seed]
    drives [Flaky_action] draws. *)

val handle : t -> Cm_http.Request.t -> Cm_http.Response.t
(** Dispatch one request (the cloud's HTTP entry point).  A mutating
    request (POST/PUT/DELETE/PATCH) carrying an [X-Request-Id] header is
    idempotent: the first response for that id is cached and replayed on
    retries, so a client retrying after an uncertain transport failure
    never executes the mutation twice. *)

val request_id_header : string
(** ["X-Request-Id"] — the idempotency-key header {!handle} dedups on. *)

val store : t -> Store.t
val identity : t -> Identity.t

val clock : t -> Cm_core.Clock.t
(** The cloud's virtual clock (shared with whoever passed it in). *)

val set_faults : t -> Faults.set -> unit
(** Activate a mutant (empty set restores the correct implementation). *)

val faults : t -> Faults.set

val default_policy : Cm_rbac.Policy.t
(** The policy derived from the paper's Table I plus the auxiliary
    actions every project member may perform (reading quotas, groups and
    project info; servers; attach/detach for admin and member). *)

(** {1 Seeding (the cloud administrator's setup, §VI-D)} *)

type seed = {
  seed_project_id : string;
  seed_project_name : string;
  seed_quota_volumes : int;
  seed_quota_gigabytes : int;
  seed_quota_images : int;
  seed_assignment : Cm_rbac.Role_assignment.t;
  seed_users : (Cm_rbac.Subject.t * string) list;  (** subject, password *)
}

val seed : t -> seed -> unit

val my_project : seed
(** The paper's validation setup: project [myProject] with three users —
    alice in proj_administrator (admin role), bob in service_architect
    (member), carol in business_analyst (user) — and a quota of 3
    volumes / 100 GiB. *)

val login :
  t -> user:string -> password:string -> project_id:string ->
  (string, string) result
(** Convenience wrapper over the Keystone auth endpoint; returns the
    token value. *)
