module Json = Cm_json.Json
module Subject = Cm_rbac.Subject
module Role_assignment = Cm_rbac.Role_assignment

type user_record = { subject : Subject.t; password : string }
type token_info = { subject : Subject.t; project_id : string }

(* Identity writes (user/assignment setup, token issue/revoke) are
   mutex-serialized so multi-tenant fixtures can be seeded from anywhere;
   validation — the hot per-request read — stays lock-free under the
   discipline that writes quiesce before parallel serving begins (the
   serve path never logs in; only the setup phase does). *)
type t = {
  users : (string, user_record) Hashtbl.t;
  assignments : (string, Role_assignment.t) Hashtbl.t;
  tokens : (string, token_info) Hashtbl.t;
  revoked : (string, unit) Hashtbl.t;
  next_token : int Atomic.t;
  write_lock : Mutex.t;
}

let create () =
  { users = Hashtbl.create 16;
    assignments = Hashtbl.create 4;
    tokens = Hashtbl.create 16;
    revoked = Hashtbl.create 4;
    next_token = Atomic.make 1;
    write_lock = Mutex.create ()
  }

let add_user t ?(password = "secret") subject =
  Mutex.protect t.write_lock (fun () ->
      Hashtbl.replace t.users subject.Subject.user_name { subject; password })

let set_assignment t ~project_id assignment =
  Mutex.protect t.write_lock (fun () ->
      Hashtbl.replace t.assignments project_id assignment)

let assignment_for t ~project_id =
  Option.value ~default:Role_assignment.empty
    (Hashtbl.find_opt t.assignments project_id)

let issue_token t ~user ~password ~project_id =
  match Hashtbl.find_opt t.users user with
  | None -> Error "no such user"
  | Some record ->
    if record.password <> password then Error "invalid credentials"
    else begin
      let value =
        Printf.sprintf "tok-%d-%s" (Atomic.fetch_and_add t.next_token 1) user
      in
      Mutex.protect t.write_lock (fun () ->
          Hashtbl.replace t.tokens value
            { subject = record.subject; project_id });
      Ok value
    end

(* Revocation marks instead of removing: the record survives so that a
   buggy service with a stale token cache ([Faults.Zombie_token]) can
   still resolve it via [validate_even_revoked], while honest validation
   and introspection treat the token as gone. *)
let validate t ~token =
  if Hashtbl.mem t.revoked token then None
  else Hashtbl.find_opt t.tokens token

let validate_even_revoked t ~token = Hashtbl.find_opt t.tokens token

let revoke t ~token =
  Mutex.protect t.write_lock (fun () ->
      if Hashtbl.mem t.tokens token then Hashtbl.replace t.revoked token ())

let roles_of_token t info =
  Role_assignment.roles_of info.subject (assignment_for t ~project_id:info.project_id)

let token_json t token_value info =
  Json.obj
    [ ( "token",
        Json.obj
          [ ("value", Json.string token_value);
            ("user", Json.string info.subject.Subject.user_name);
            ("project_id", Json.string info.project_id);
            ( "groups",
              Json.list (List.map Json.string info.subject.Subject.groups) );
            ( "roles",
              Json.list (List.map Json.string (roles_of_token t info)) )
          ] )
    ]

let auth_handler t : Cm_http.Router.handler =
 fun req _bindings ->
  let missing field =
    Cm_http.Response.error Cm_http.Status.bad_request
      (Printf.sprintf "missing %s in auth request" field)
  in
  match req.Cm_http.Request.body with
  | None -> missing "body"
  | Some body ->
    let get field = Cm_json.Pointer.get [ Key "auth"; Key field ] body in
    (match get "user", get "password", get "project_id" with
     | Some (Json.String user), Some (Json.String password),
       Some (Json.String project_id) ->
       (match issue_token t ~user ~password ~project_id with
        | Ok token_value ->
          (match validate t ~token:token_value with
           | Some info ->
             Cm_http.Response.created (token_json t token_value info)
           | None ->
             Cm_http.Response.error Cm_http.Status.internal_server_error
               "token vanished")
        | Error msg ->
          Cm_http.Response.error Cm_http.Status.unauthorized msg)
     | None, _, _ -> missing "auth.user"
     | _, None, _ -> missing "auth.password"
     | _, _, None -> missing "auth.project_id"
     | _ ->
       Cm_http.Response.error Cm_http.Status.bad_request
         "auth fields must be strings")

let introspect_handler t : Cm_http.Router.handler =
 fun req _bindings ->
  match Cm_http.Headers.get "X-Subject-Token" req.Cm_http.Request.headers with
  | None ->
    Cm_http.Response.error Cm_http.Status.bad_request "missing X-Subject-Token"
  | Some token_value ->
    (match validate t ~token:token_value with
     | Some info -> Cm_http.Response.ok (token_json t token_value info)
     | None ->
       Cm_http.Response.error Cm_http.Status.not_found "token not found")

let revoke_handler t : Cm_http.Router.handler =
 fun req _bindings ->
  match Cm_http.Headers.get "X-Subject-Token" req.Cm_http.Request.headers with
  | None ->
    Cm_http.Response.error Cm_http.Status.bad_request "missing X-Subject-Token"
  | Some token_value ->
    (match validate t ~token:token_value with
     | Some _ ->
       revoke t ~token:token_value;
       Cm_http.Response.no_content
     | None ->
       Cm_http.Response.error Cm_http.Status.not_found "token not found")

let routes t =
  [ ("/identity/v3/auth/tokens", Cm_http.Meth.POST, auth_handler t);
    ("/identity/v3/auth/tokens", Cm_http.Meth.GET, introspect_handler t);
    ("/identity/v3/auth/tokens", Cm_http.Meth.DELETE, revoke_handler t)
  ]
