module Json = Cm_json.Json
module Subject = Cm_rbac.Subject
module Role_assignment = Cm_rbac.Role_assignment

type user_record = { subject : Subject.t; password : string }
type token_info = { subject : Subject.t; project_id : string }

module Smap = Map.Make (String)

(* Identity writes (user/assignment setup, token issue/revoke) serialize
   on one instrumented mutex and RCU-publish immutable snapshots; every
   read — including token validation, the hot per-request path the
   backend runs on each authorized call — is an [Atomic.get] of a
   published map plus a persistent lookup.  No quiescence discipline
   required anymore: a validation racing a revocation sees either the
   pre- or post-revocation snapshot, never a torn table. *)
type t = {
  users : user_record Smap.t Atomic.t;
  assignments : Role_assignment.t Smap.t Atomic.t;
  tokens : token_info Smap.t Atomic.t;
  revoked : unit Smap.t Atomic.t;
  next_token : int Atomic.t;
  write_lock : Cm_core.Lockstat.t;
}

let create () =
  { users = Atomic.make Smap.empty;
    assignments = Atomic.make Smap.empty;
    tokens = Atomic.make Smap.empty;
    revoked = Atomic.make Smap.empty;
    next_token = Atomic.make 1;
    write_lock = Cm_core.Lockstat.create "identity.write"
  }

(* All writers hold [write_lock], so read-modify-publish is atomic with
   respect to other writers; readers just see one snapshot or the
   next. *)
let publish cell f = Atomic.set cell (f (Atomic.get cell))

let add_user t ?(password = "secret") subject =
  Cm_core.Lockstat.protect t.write_lock (fun () ->
      publish t.users
        (Smap.add subject.Subject.user_name { subject; password }))

let set_assignment t ~project_id assignment =
  Cm_core.Lockstat.protect t.write_lock (fun () ->
      publish t.assignments (Smap.add project_id assignment))

let assignment_for t ~project_id =
  Option.value ~default:Role_assignment.empty
    (Smap.find_opt project_id (Atomic.get t.assignments))

let issue_token t ~user ~password ~project_id =
  match Smap.find_opt user (Atomic.get t.users) with
  | None -> Error "no such user"
  | Some record ->
    if record.password <> password then Error "invalid credentials"
    else begin
      let value =
        Printf.sprintf "tok-%d-%s" (Atomic.fetch_and_add t.next_token 1) user
      in
      Cm_core.Lockstat.protect t.write_lock (fun () ->
          publish t.tokens
            (Smap.add value { subject = record.subject; project_id }));
      Ok value
    end

(* Revocation marks instead of removing: the record survives so that a
   buggy service with a stale token cache ([Faults.Zombie_token]) can
   still resolve it via [validate_even_revoked], while honest validation
   and introspection treat the token as gone. *)
let validate t ~token =
  if Smap.mem token (Atomic.get t.revoked) then None
  else Smap.find_opt token (Atomic.get t.tokens)

let validate_even_revoked t ~token =
  Smap.find_opt token (Atomic.get t.tokens)

let revoke t ~token =
  Cm_core.Lockstat.protect t.write_lock (fun () ->
      if Smap.mem token (Atomic.get t.tokens) then
        publish t.revoked (Smap.add token ()))

let roles_of_token t info =
  Role_assignment.roles_of info.subject (assignment_for t ~project_id:info.project_id)

let token_json t token_value info =
  Json.obj
    [ ( "token",
        Json.obj
          [ ("value", Json.string token_value);
            ("user", Json.string info.subject.Subject.user_name);
            ("project_id", Json.string info.project_id);
            ( "groups",
              Json.list (List.map Json.string info.subject.Subject.groups) );
            ( "roles",
              Json.list (List.map Json.string (roles_of_token t info)) )
          ] )
    ]

let auth_handler t : Cm_http.Router.handler =
 fun req _bindings ->
  let missing field =
    Cm_http.Response.error Cm_http.Status.bad_request
      (Printf.sprintf "missing %s in auth request" field)
  in
  match req.Cm_http.Request.body with
  | None -> missing "body"
  | Some body ->
    let get field = Cm_json.Pointer.get [ Key "auth"; Key field ] body in
    (match get "user", get "password", get "project_id" with
     | Some (Json.String user), Some (Json.String password),
       Some (Json.String project_id) ->
       (match issue_token t ~user ~password ~project_id with
        | Ok token_value ->
          (match validate t ~token:token_value with
           | Some info ->
             Cm_http.Response.created (token_json t token_value info)
           | None ->
             Cm_http.Response.error Cm_http.Status.internal_server_error
               "token vanished")
        | Error msg ->
          Cm_http.Response.error Cm_http.Status.unauthorized msg)
     | None, _, _ -> missing "auth.user"
     | _, None, _ -> missing "auth.password"
     | _, _, None -> missing "auth.project_id"
     | _ ->
       Cm_http.Response.error Cm_http.Status.bad_request
         "auth fields must be strings")

let introspect_handler t : Cm_http.Router.handler =
 fun req _bindings ->
  match Cm_http.Headers.get "X-Subject-Token" req.Cm_http.Request.headers with
  | None ->
    Cm_http.Response.error Cm_http.Status.bad_request "missing X-Subject-Token"
  | Some token_value ->
    (match validate t ~token:token_value with
     | Some info -> Cm_http.Response.ok (token_json t token_value info)
     | None ->
       Cm_http.Response.error Cm_http.Status.not_found "token not found")

let revoke_handler t : Cm_http.Router.handler =
 fun req _bindings ->
  match Cm_http.Headers.get "X-Subject-Token" req.Cm_http.Request.headers with
  | None ->
    Cm_http.Response.error Cm_http.Status.bad_request "missing X-Subject-Token"
  | Some token_value ->
    (match validate t ~token:token_value with
     | Some _ ->
       revoke t ~token:token_value;
       Cm_http.Response.no_content
     | None ->
       Cm_http.Response.error Cm_http.Status.not_found "token not found")

let routes t =
  [ ("/identity/v3/auth/tokens", Cm_http.Meth.POST, auth_handler t);
    ("/identity/v3/auth/tokens", Cm_http.Meth.GET, introspect_handler t);
    ("/identity/v3/auth/tokens", Cm_http.Meth.DELETE, revoke_handler t)
  ]
