module Policy = Cm_rbac.Policy

type t = {
  store : Store.t;
  identity : Identity.t;
  ctx : Guarded.ctx;
  router : Cm_http.Router.t;
  (* Idempotency cache: first response per X-Request-Id for mutating
     requests, so a client retrying after an uncertain transport failure
     (timeout, connection reset) never executes the mutation twice.
     Mutex-protected: it is the one table every shard's mutations
     deliberately share — exactly-once semantics need a cross-shard
     linearization point.  The lock is instrumented so the contention
     gate can prove it never shows up on the monitored GET path (GETs
     bypass it entirely). *)
  dedup : (string, Cm_http.Response.t) Hashtbl.t;
  dedup_lock : Cm_core.Lockstat.t;
}

let default_policy =
  let admin_or_member = Policy.Or (Policy.Role "admin", Policy.Role "member") in
  let any_project_role =
    Policy.Or (admin_or_member, Policy.Role "user")
  in
  Policy.of_list
    [ ("volumes:get", any_project_role);
      ("volume:get", any_project_role);
      ("volume:create", admin_or_member);
      ("volume:update", admin_or_member);
      ("volume:delete", Policy.Role "admin");
      ("volume:attach", admin_or_member);
      ("volume:detach", admin_or_member);
      ("snapshots:get", any_project_role);
      ("snapshot:get", any_project_role);
      ("snapshot:create", admin_or_member);
      ("snapshot:delete", Policy.Role "admin");
      ("images:get", any_project_role);
      ("image:get", any_project_role);
      ("image:create", admin_or_member);
      ("image:update", admin_or_member);
      ("image:delete", Policy.Role "admin");
      ("quota_sets:get", any_project_role);
      ("usergroups:get", any_project_role);
      ("project:get", any_project_role);
      ("servers:get", any_project_role);
      ("server:get", any_project_role);
      ("server:create", admin_or_member);
      ("server:delete", Policy.Role "admin")
    ]

let create ?(policy = default_policy) ?clock ?seed () =
  let store = Store.create () in
  let identity = Identity.create () in
  let ctx = Guarded.make ?clock ?seed ~identity ~policy () in
  let block_storage = Block_storage.create ~store ~ctx in
  let compute = Compute.create ~store ~ctx in
  let image_service = Image_service.create ~store ~ctx in
  let router =
    Cm_http.Router.of_routes
      (Identity.routes identity @ Block_storage.routes block_storage
      @ Compute.routes compute
      @ Image_service.routes image_service)
  in
  { store; identity; ctx; router;
    dedup = Hashtbl.create 64;
    dedup_lock = Cm_core.Lockstat.create "cloud.dedup"
  }

let request_id_header = "X-Request-Id"

let mutating = function
  | Cm_http.Meth.POST | Cm_http.Meth.PUT | Cm_http.Meth.DELETE
  | Cm_http.Meth.PATCH -> true
  | Cm_http.Meth.GET | Cm_http.Meth.HEAD | Cm_http.Meth.OPTIONS -> false

let handle t req =
  match Cm_http.Headers.get request_id_header req.Cm_http.Request.headers with
  | Some id when mutating req.Cm_http.Request.meth ->
    (* The check-dispatch-store must be atomic or two shards retrying
       the same request id could both execute the mutation.  Holding the
       lock across dispatch serializes cross-shard mutations that carry
       request ids; within a shard mutations are sequential anyway. *)
    Cm_core.Lockstat.protect t.dedup_lock (fun () ->
        match Hashtbl.find_opt t.dedup id with
        | Some cached -> cached
        | None ->
          let resp = Cm_http.Router.dispatch t.router req in
          Hashtbl.replace t.dedup id resp;
          resp)
  | Some _ | None -> Cm_http.Router.dispatch t.router req

let store t = t.store
let identity t = t.identity
let clock t = Guarded.clock t.ctx
let set_faults t faults = Guarded.set_faults t.ctx faults
let faults t = Guarded.faults t.ctx

type seed = {
  seed_project_id : string;
  seed_project_name : string;
  seed_quota_volumes : int;
  seed_quota_gigabytes : int;
  seed_quota_images : int;
  seed_assignment : Cm_rbac.Role_assignment.t;
  seed_users : (Cm_rbac.Subject.t * string) list;
}

let seed t s =
  ignore
    (Store.add_project t.store ~id:s.seed_project_id ~name:s.seed_project_name
       ~quota_volumes:s.seed_quota_volumes
       ~quota_gigabytes:s.seed_quota_gigabytes
       ~quota_images:s.seed_quota_images ());
  Identity.set_assignment t.identity ~project_id:s.seed_project_id
    s.seed_assignment;
  List.iter
    (fun (subject, password) -> Identity.add_user t.identity ~password subject)
    s.seed_users

let my_project =
  { seed_project_id = "myProject";
    seed_project_name = "myProject";
    seed_quota_volumes = 3;
    seed_quota_gigabytes = 100;
    seed_quota_images = 2;
    seed_assignment = Cm_rbac.Security_table.cinder_assignment;
    seed_users =
      [ (Cm_rbac.Subject.make "alice" [ "proj_administrator" ], "alice-pw");
        (Cm_rbac.Subject.make "bob" [ "service_architect" ], "bob-pw");
        (Cm_rbac.Subject.make "carol" [ "business_analyst" ], "carol-pw")
      ]
  }

let login t ~user ~password ~project_id =
  Identity.issue_token t.identity ~user ~password ~project_id
