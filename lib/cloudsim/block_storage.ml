module Json = Cm_json.Json
module Request = Cm_http.Request
module Response = Cm_http.Response
module Status = Cm_http.Status

type t = { store : Store.t; ctx : Guarded.ctx }

let create ~store ~ctx = { store; ctx }

let ( let* ) r f = match r with Ok v -> f v | Error resp -> resp

let with_project t bindings f =
  let project_id =
    Option.value ~default:"" (List.assoc_opt "project_id" bindings)
  in
  match Store.find_project t.store project_id with
  | None -> Response.error Status.not_found "project not found"
  | Some project -> f project

let with_volume project bindings f =
  let volume_id =
    Option.value ~default:"" (List.assoc_opt "volume_id" bindings)
  in
  match Store.find_volume project volume_id with
  | None -> Response.error Status.not_found "volume not found"
  | Some volume -> f volume

let faulty_status t ~action ~default =
  match Faults.success_status_for (Guarded.faults t.ctx) action with
  | Some status -> status
  | None -> default

(* ---- handlers ---- *)

let list_projects t : Cm_http.Router.handler =
 fun _req _bindings ->
  let body =
    Json.obj
      [ ( "projects",
          Json.list (List.map Store.project_json (Store.projects t.store)) )
      ]
  in
  Response.ok body

let show_project t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* info =
        Guarded.authorize t.ctx ~action:"project:get"
          ~project_id:project.Store.project_id req
      in
      ignore info;
      Response.ok (Json.obj [ ("project", Store.project_json project) ]))

let list_volumes t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"volumes:get"
          ~project_id:project.Store.project_id req
      in
      let filtered =
        Listing.filter_param req "status"
          (fun (v : Store.volume) -> v.status)
          (Store.volumes project)
      in
      match
        Listing.paginate req filtered
          ~id_of:(fun (v : Store.volume) -> v.volume_id)
      with
      | Error msg -> Response.error Status.bad_request msg
      | Ok page ->
        let body =
          Json.obj [ ("volumes", Json.list (List.map Store.volume_json page)) ]
        in
        Response.make ~body
          (faulty_status t ~action:"volumes:get" ~default:Status.ok))

let create_volume t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"volume:create"
          ~project_id:project.Store.project_id req
      in
      let name, size_gb, image_ref =
        match req.Request.body with
        | Some body ->
          let get field = Cm_json.Pointer.get [ Key "volume"; Key field ] body in
          ( (match get "name" with
             | Some (Json.String n) -> n
             | Some _ | None -> "volume"),
            (match get "size" with Some (Json.Int n) -> n | Some _ | None -> 1),
            match get "imageRef" with
            | Some (Json.String r) -> Some r
            | Some _ | None -> None )
        | None -> ("volume", 1, None)
      in
      let faults = Guarded.faults t.ctx in
      let image_backing_ok =
        match image_ref with
        | None -> true
        | Some _ when Faults.ignores_image_backing faults -> true
        | Some ref ->
          (match Store.find_image project ref with
           | Some image -> image.Store.image_status = "active"
           | None -> false)
      in
      if size_gb <= 0 then
        Response.error Status.bad_request "volume size must be positive"
      else if not image_backing_ok then
        Response.error Status.bad_request
          "imageRef does not name an active image in this project"
      else begin
        let over_quota =
          Store.volume_count project >= project.Store.quota_volumes
          || Store.used_gigabytes project + size_gb
             > project.Store.quota_gigabytes
        in
        if over_quota && not (Faults.ignores_quota faults) then
          Response.error Status.request_entity_too_large
            "VolumeLimitExceeded: quota exceeded for volumes"
        else if Faults.phantom_create faults then
          (* The mutant acknowledges creation without storing anything. *)
          Response.make
            ~body:
              (Json.obj
                 [ ( "volume",
                     Json.obj
                       [ ("id", Json.string "phantom");
                         ("name", Json.string name);
                         ("status", Json.string "creating");
                         ("size", Json.int size_gb)
                       ] )
                 ])
            (faulty_status t ~action:"volume:create" ~default:Status.created)
        else begin
          let volume =
            Store.add_volume t.store project
              ?source_image:image_ref ~name ~size_gb ()
          in
          Response.make
            ~body:(Json.obj [ ("volume", Store.volume_json volume) ])
            (faulty_status t ~action:"volume:create" ~default:Status.created)
        end
      end)

let show_volume t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"volume:get"
          ~project_id:project.Store.project_id req
      in
      with_volume project bindings (fun volume ->
          Response.make
            ~body:(Json.obj [ ("volume", Store.volume_json volume) ])
            (faulty_status t ~action:"volume:get" ~default:Status.ok)))

let update_volume t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"volume:update"
          ~project_id:project.Store.project_id req
      in
      with_volume project bindings (fun volume ->
          if volume.Store.status = "in-use" then
            Response.error Status.bad_request
              "volume is in-use and cannot be updated"
          else begin
            (match req.Request.body with
             | Some body ->
               (match Cm_json.Pointer.get [ Key "volume"; Key "name" ] body with
                | Some (Json.String n) -> volume.Store.volume_name <- n
                | Some _ | None -> ());
               (match Cm_json.Pointer.get [ Key "volume"; Key "size" ] body with
                | Some (Json.Int n) when n > 0 -> volume.Store.size_gb <- n
                | Some _ | None -> ())
             | None -> ());
            Response.make
              ~body:(Json.obj [ ("volume", Store.volume_json volume) ])
              (faulty_status t ~action:"volume:update" ~default:Status.ok)
          end))

let delete_volume t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"volume:delete"
          ~project_id:project.Store.project_id req
      in
      with_volume project bindings (fun volume ->
          let faults = Guarded.faults t.ctx in
          if
            volume.Store.status = "in-use"
            && not (Faults.allows_delete_in_use faults)
          then
            Response.error Status.bad_request
              "volume is attached and cannot be deleted"
          else if Faults.zombie_delete faults then
            (* The mutant acknowledges deletion but keeps the volume. *)
            Response.make
              (faulty_status t ~action:"volume:delete" ~default:Status.no_content)
          else begin
            ignore (Store.remove_volume project volume.Store.volume_id);
            Response.make
              (faulty_status t ~action:"volume:delete" ~default:Status.no_content)
          end))

let volume_action t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      with_volume project bindings (fun volume ->
          match req.Request.body with
          | Some (Json.Obj [ ("os-attach", attach) ]) ->
            let* _info =
              Guarded.authorize t.ctx ~action:"volume:attach"
                ~project_id:project.Store.project_id req
            in
            if volume.Store.status = "in-use" then
              Response.error Status.bad_request "volume already attached"
            else begin
              let server_id =
                match Cm_json.Pointer.get [ Key "instance_uuid" ] attach with
                | Some (Json.String s) -> s
                | Some _ | None -> "unknown"
              in
              volume.Store.status <- "in-use";
              volume.Store.attached_to <- Some server_id;
              Response.make Status.accepted
            end
          | Some (Json.Obj [ ("os-detach", _) ]) ->
            let* _info =
              Guarded.authorize t.ctx ~action:"volume:detach"
                ~project_id:project.Store.project_id req
            in
            if volume.Store.status <> "in-use" then
              Response.error Status.bad_request "volume is not attached"
            else begin
              volume.Store.status <- "available";
              volume.Store.attached_to <- None;
              Response.make Status.accepted
            end
          | Some _ | None ->
            Response.error Status.bad_request "unknown volume action"))

(* ---- snapshots (nested under a volume) ---- *)

let with_snapshot volume bindings f =
  let snapshot_id =
    Option.value ~default:"" (List.assoc_opt "snapshot_id" bindings)
  in
  match Store.find_snapshot volume snapshot_id with
  | None -> Response.error Status.not_found "snapshot not found"
  | Some snapshot -> f snapshot

let list_snapshots t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"snapshots:get"
          ~project_id:project.Store.project_id req
      in
      with_volume project bindings (fun volume ->
          Response.ok
            (Json.obj
               [ ( "snapshots",
                   Json.list
                     (List.map Store.snapshot_json (Store.snapshots volume)) )
               ])))

let create_snapshot t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"snapshot:create"
          ~project_id:project.Store.project_id req
      in
      with_volume project bindings (fun volume ->
          (* snapshotting needs a quiesced volume *)
          if volume.Store.status = "in-use" then
            Response.error Status.bad_request
              "volume is in-use and cannot be snapshotted"
          else begin
            let name =
              match req.Request.body with
              | Some body ->
                (match
                   Cm_json.Pointer.get [ Key "snapshot"; Key "name" ] body
                 with
                 | Some (Json.String n) -> n
                 | Some _ | None -> "snapshot")
              | None -> "snapshot"
            in
            let snapshot = Store.add_snapshot t.store volume ~name in
            Response.make
              ~body:(Json.obj [ ("snapshot", Store.snapshot_json snapshot) ])
              (faulty_status t ~action:"snapshot:create"
                 ~default:Status.created)
          end))

let show_snapshot t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"snapshot:get"
          ~project_id:project.Store.project_id req
      in
      with_volume project bindings (fun volume ->
          with_snapshot volume bindings (fun snapshot ->
              Response.ok
                (Json.obj [ ("snapshot", Store.snapshot_json snapshot) ]))))

let delete_snapshot t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"snapshot:delete"
          ~project_id:project.Store.project_id req
      in
      with_volume project bindings (fun volume ->
          with_snapshot volume bindings (fun snapshot ->
              ignore
                (Store.remove_snapshot volume snapshot.Store.snapshot_id);
              Response.make
                (faulty_status t ~action:"snapshot:delete"
                   ~default:Status.no_content))))

let show_quota t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"quota_sets:get"
          ~project_id:project.Store.project_id req
      in
      Response.ok (Json.obj [ ("quota_set", Store.quota_set_json project) ]))

let list_usergroups t : Cm_http.Router.handler =
 fun req bindings ->
  with_project t bindings (fun project ->
      let* _info =
        Guarded.authorize t.ctx ~action:"usergroups:get"
          ~project_id:project.Store.project_id req
      in
      let assignment =
        Identity.assignment_for t.ctx.Guarded.identity
          ~project_id:project.Store.project_id
      in
      let groups =
        Cm_rbac.Role_assignment.to_list assignment
        |> List.map (fun (group, role) ->
               Json.obj
                 [ ("name", Json.string group); ("role", Json.string role) ])
      in
      Response.ok (Json.obj [ ("usergroups", Json.list groups) ]))

let routes t =
  let open Cm_http.Meth in
  [ ("/v3", GET, list_projects t);
    ("/v3/{project_id}", GET, show_project t);
    ("/v3/{project_id}/volumes", GET, list_volumes t);
    ("/v3/{project_id}/volumes", POST, create_volume t);
    ("/v3/{project_id}/volumes/{volume_id}", GET, show_volume t);
    ("/v3/{project_id}/volumes/{volume_id}", PUT, update_volume t);
    ("/v3/{project_id}/volumes/{volume_id}", DELETE, delete_volume t);
    ("/v3/{project_id}/volumes/{volume_id}/action", POST, volume_action t);
    ("/v3/{project_id}/volumes/{volume_id}/snapshots", GET, list_snapshots t);
    ("/v3/{project_id}/volumes/{volume_id}/snapshots", POST, create_snapshot t);
    ( "/v3/{project_id}/volumes/{volume_id}/snapshots/{snapshot_id}",
      GET,
      show_snapshot t );
    ( "/v3/{project_id}/volumes/{volume_id}/snapshots/{snapshot_id}",
      DELETE,
      delete_snapshot t );
    ("/v3/{project_id}/quota_sets", GET, show_quota t);
    ("/v3/{project_id}/usergroups", GET, list_usergroups t)
  ]
