(** Fault injection into the simulated cloud.

    The paper's validation "systematically introduced [three] mutants
    (errors) in the cloud implementation to detect wrong authorization
    on resources" (§VI-D).  A fault is a deviation of the cloud's
    behaviour from its specification; the mutation library activates
    them one at a time and checks that the monitor kills each. *)

type t =
  | Policy_override of string * Cm_rbac.Policy.rule
      (** enforce a different rule for the action — e.g. DELETE opened
          up to [role:member] (privilege escalation) *)
  | Skip_policy_check of string
      (** the developer forgot the authorization check on one action *)
  | Policy_deny of string
      (** the opposite error: authorised users are rejected *)
  | Ignore_quota  (** volumes can be created beyond the project quota *)
  | Allow_delete_in_use  (** attached volumes can be deleted *)
  | Wrong_success_status of string * Cm_http.Status.t
      (** the action answers with an unexpected status code on success *)
  | Phantom_create
      (** POST answers 201 but does not actually create the volume *)
  | Zombie_delete
      (** DELETE answers 204 but does not actually delete the volume *)
  | Slow_action of string * int
      (** the action takes the given extra virtual milliseconds — a
          degraded backend; composes with behavioural faults in one set *)
  | Flaky_action of string * float
      (** the action fails with 503 with the given probability before
          executing (drawn from the cloud's own seeded PRNG) *)
  | Attach_missing_volume_ok
      (** compute accepts an attachment whose volume_id resolves to no
          volume in the project (dangling reference) *)
  | Attach_in_use_ok
      (** compute attaches a volume that is already in use elsewhere *)
  | Attach_dead_server_ok
      (** compute accepts an attachment on a server id that does not
          exist (ghost server) *)
  | Detach_noop
      (** detach answers success but leaves the volume attached *)
  | Ignore_image_backing
      (** block storage accepts [imageRef]s that name a missing or
          non-active image when creating an image-backed volume *)
  | Allow_delete_backing_image
      (** the image service deletes images that still back volumes *)
  | Zombie_token
      (** services keep honouring revoked tokens (a stale token cache);
          identity introspection still honestly reports them revoked *)
  | Server_delete_leak
      (** deleting a server leaks its attachments: attached volumes are
          left in-use instead of being released *)

val to_string : t -> string
val equal : t -> t -> bool

type set

val none : set
val of_list : t list -> set
val to_list : set -> t list

val overridden_rule : set -> string -> Cm_rbac.Policy.rule option
val skips_policy : set -> string -> bool
val denies : set -> string -> bool
val ignores_quota : set -> bool
val allows_delete_in_use : set -> bool
val success_status_for : set -> string -> Cm_http.Status.t option
val phantom_create : set -> bool
val zombie_delete : set -> bool

val slow_ms : set -> string -> int option
(** Extra virtual latency for the action, when a [Slow_action] fault is
    active on it. *)

val flaky_p : set -> string -> float option
(** Probability of a transient 503 on the action, when a [Flaky_action]
    fault is active on it. *)

val attach_missing_volume_ok : set -> bool
val attach_in_use_ok : set -> bool
val attach_dead_server_ok : set -> bool
val detach_noop : set -> bool
val ignores_image_backing : set -> bool
val allows_delete_backing_image : set -> bool
val zombie_token : set -> bool
val server_delete_leak : set -> bool
