(** Authentication and policy enforcement shared by the simulated
    services (the Keystone middleware every OpenStack service mounts).

    Order of checks, matching OpenStack semantics: crash faults first
    ([Slow_action] advances the virtual clock, [Flaky_action] may answer
    503 before anything executes); then missing/invalid token -> 401;
    token scoped to a different project -> 403; policy denies the action
    for the subject's roles/groups -> 403.  Fault injection can skip,
    deny or override the policy decision. *)

type ctx = {
  identity : Identity.t;
  policy : Cm_rbac.Policy.t;
  faults : Faults.set ref;
  clock : Cm_core.Clock.t;  (** advanced by [Slow_action] faults *)
  rng : Cm_core.Prng.t;  (** drives [Flaky_action] draws, seeded *)
}

val make :
  ?clock:Cm_core.Clock.t ->
  ?seed:int ->
  identity:Identity.t ->
  policy:Cm_rbac.Policy.t ->
  unit ->
  ctx
(** Starts with no faults.  [clock] defaults to a fresh virtual clock;
    [seed] (default [0x5EED]) seeds the flaky-fault PRNG. *)

val set_faults : ctx -> Faults.set -> unit
val faults : ctx -> Faults.set
val clock : ctx -> Cm_core.Clock.t

val authorize :
  ctx ->
  action:string ->
  project_id:string ->
  Cm_http.Request.t ->
  (Identity.token_info, Cm_http.Response.t) result
