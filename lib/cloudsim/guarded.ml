type ctx = {
  identity : Identity.t;
  policy : Cm_rbac.Policy.t;
  faults : Faults.set ref;
  clock : Cm_core.Clock.t;
  rng : Cm_core.Prng.t;
}

let make ?clock ?(seed = 0x5EED) ~identity ~policy () =
  let clock =
    match clock with Some c -> c | None -> Cm_core.Clock.create ()
  in
  { identity; policy; faults = ref Faults.none; clock;
    rng = Cm_core.Prng.of_seed seed
  }

let set_faults ctx faults = ctx.faults := faults
let faults ctx = !(ctx.faults)
let clock ctx = ctx.clock

let authorize ctx ~action ~project_id req =
  (match Faults.slow_ms !(ctx.faults) action with
   | Some ms -> Cm_core.Clock.advance ctx.clock ms
   | None -> ());
  match Faults.flaky_p !(ctx.faults) action with
  | Some p when Cm_core.Prng.chance ctx.rng p ->
    Error
      (Cm_http.Response.error Cm_http.Status.service_unavailable
         (Printf.sprintf "transient backend failure on %s" action))
  | Some _ | None ->
    (match Cm_http.Request.auth_token req with
     | None ->
       Error
         (Cm_http.Response.error Cm_http.Status.unauthorized
            "authentication required")
     | Some token ->
       (* A [Zombie_token] service trusts its stale token cache and never
          notices revocation — identity's honest validation is bypassed. *)
       let lookup =
         if Faults.zombie_token !(ctx.faults) then
           Identity.validate_even_revoked
         else Identity.validate
       in
       (match lookup ctx.identity ~token with
        | None ->
          Error
            (Cm_http.Response.error Cm_http.Status.unauthorized "invalid token")
        | Some info ->
          if info.Identity.project_id <> project_id then
            Error
              (Cm_http.Response.error Cm_http.Status.forbidden
                 "token not scoped to this project")
          else if Faults.skips_policy !(ctx.faults) action then Ok info
          else if Faults.denies !(ctx.faults) action then
            Error
              (Cm_http.Response.error Cm_http.Status.forbidden
                 (Printf.sprintf "policy does not allow %s" action))
          else begin
            let roles = Identity.roles_of_token ctx.identity info in
            let groups = info.Identity.subject.Cm_rbac.Subject.groups in
            let permitted =
              match Faults.overridden_rule !(ctx.faults) action with
              | Some rule -> Cm_rbac.Policy.satisfies rule ~roles ~groups
              | None ->
                Cm_rbac.Policy.authorize ctx.policy ~action ~roles ~groups
            in
            if permitted then Ok info
            else
              Error
                (Cm_http.Response.error Cm_http.Status.forbidden
                   (Printf.sprintf "policy does not allow %s" action))
          end))
