type t =
  | Policy_override of string * Cm_rbac.Policy.rule
  | Skip_policy_check of string
  | Policy_deny of string
  | Ignore_quota
  | Allow_delete_in_use
  | Wrong_success_status of string * Cm_http.Status.t
  | Phantom_create
  | Zombie_delete
  | Slow_action of string * int
  | Flaky_action of string * float

let to_string = function
  | Policy_override (action, rule) ->
    Printf.sprintf "policy-override(%s := %s)" action
      (Cm_rbac.Policy.rule_to_string rule)
  | Skip_policy_check action -> Printf.sprintf "skip-policy-check(%s)" action
  | Policy_deny action -> Printf.sprintf "policy-deny(%s)" action
  | Ignore_quota -> "ignore-quota"
  | Allow_delete_in_use -> "allow-delete-in-use"
  | Wrong_success_status (action, status) ->
    Printf.sprintf "wrong-success-status(%s -> %d)" action status
  | Phantom_create -> "phantom-create"
  | Zombie_delete -> "zombie-delete"
  | Slow_action (action, ms) -> Printf.sprintf "slow-action(%s, %dms)" action ms
  | Flaky_action (action, p) ->
    Printf.sprintf "flaky-action(%s, p=%.2f)" action p

let equal a b = a = b

type set = t list

let none = []
let of_list faults = faults
let to_list set = set

let overridden_rule set action =
  List.find_map
    (function
      | Policy_override (a, rule) when a = action -> Some rule
      | _ -> None)
    set

let skips_policy set action =
  List.exists (function Skip_policy_check a -> a = action | _ -> false) set

let denies set action =
  List.exists (function Policy_deny a -> a = action | _ -> false) set

let ignores_quota set = List.mem Ignore_quota set
let allows_delete_in_use set = List.mem Allow_delete_in_use set

let success_status_for set action =
  List.find_map
    (function
      | Wrong_success_status (a, status) when a = action -> Some status
      | _ -> None)
    set

let phantom_create set = List.mem Phantom_create set
let zombie_delete set = List.mem Zombie_delete set

let slow_ms set action =
  List.find_map
    (function Slow_action (a, ms) when a = action -> Some ms | _ -> None)
    set

let flaky_p set action =
  List.find_map
    (function Flaky_action (a, p) when a = action -> Some p | _ -> None)
    set
