type t =
  | Policy_override of string * Cm_rbac.Policy.rule
  | Skip_policy_check of string
  | Policy_deny of string
  | Ignore_quota
  | Allow_delete_in_use
  | Wrong_success_status of string * Cm_http.Status.t
  | Phantom_create
  | Zombie_delete
  | Slow_action of string * int
  | Flaky_action of string * float
  | Attach_missing_volume_ok
  | Attach_in_use_ok
  | Attach_dead_server_ok
  | Detach_noop
  | Ignore_image_backing
  | Allow_delete_backing_image
  | Zombie_token
  | Server_delete_leak

let to_string = function
  | Policy_override (action, rule) ->
    Printf.sprintf "policy-override(%s := %s)" action
      (Cm_rbac.Policy.rule_to_string rule)
  | Skip_policy_check action -> Printf.sprintf "skip-policy-check(%s)" action
  | Policy_deny action -> Printf.sprintf "policy-deny(%s)" action
  | Ignore_quota -> "ignore-quota"
  | Allow_delete_in_use -> "allow-delete-in-use"
  | Wrong_success_status (action, status) ->
    Printf.sprintf "wrong-success-status(%s -> %d)" action status
  | Phantom_create -> "phantom-create"
  | Zombie_delete -> "zombie-delete"
  | Slow_action (action, ms) -> Printf.sprintf "slow-action(%s, %dms)" action ms
  | Flaky_action (action, p) ->
    Printf.sprintf "flaky-action(%s, p=%.2f)" action p
  | Attach_missing_volume_ok -> "attach-missing-volume-ok"
  | Attach_in_use_ok -> "attach-in-use-ok"
  | Attach_dead_server_ok -> "attach-dead-server-ok"
  | Detach_noop -> "detach-noop"
  | Ignore_image_backing -> "ignore-image-backing"
  | Allow_delete_backing_image -> "allow-delete-backing-image"
  | Zombie_token -> "zombie-token"
  | Server_delete_leak -> "server-delete-leak"

let equal a b = a = b

type set = t list

let none = []
let of_list faults = faults
let to_list set = set

let overridden_rule set action =
  List.find_map
    (function
      | Policy_override (a, rule) when a = action -> Some rule
      | _ -> None)
    set

let skips_policy set action =
  List.exists (function Skip_policy_check a -> a = action | _ -> false) set

let denies set action =
  List.exists (function Policy_deny a -> a = action | _ -> false) set

let ignores_quota set = List.mem Ignore_quota set
let allows_delete_in_use set = List.mem Allow_delete_in_use set

let success_status_for set action =
  List.find_map
    (function
      | Wrong_success_status (a, status) when a = action -> Some status
      | _ -> None)
    set

let phantom_create set = List.mem Phantom_create set
let zombie_delete set = List.mem Zombie_delete set

let slow_ms set action =
  List.find_map
    (function Slow_action (a, ms) when a = action -> Some ms | _ -> None)
    set

let flaky_p set action =
  List.find_map
    (function Flaky_action (a, p) when a = action -> Some p | _ -> None)
    set

let attach_missing_volume_ok set = List.mem Attach_missing_volume_ok set
let attach_in_use_ok set = List.mem Attach_in_use_ok set
let attach_dead_server_ok set = List.mem Attach_dead_server_ok set
let detach_noop set = List.mem Detach_noop set
let ignores_image_backing set = List.mem Ignore_image_backing set
let allows_delete_backing_image set = List.mem Allow_delete_backing_image set
let zombie_token set = List.mem Zombie_token set
let server_delete_leak set = List.mem Server_delete_leak set
