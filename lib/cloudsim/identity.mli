(** The Keystone-like identity service.

    Keystone validates user credentials and authorization requests for
    every other OpenStack service.  The simulator keeps users (with
    passwords and usergroup memberships), per-project role assignments,
    and issued tokens.  Tokens are opaque strings carried in the
    [X-Auth-Token] header. *)

type t

type token_info = {
  subject : Cm_rbac.Subject.t;
  project_id : string;
}

val create : unit -> t

(** {1 Administration (the cloud administrator's console)} *)

val add_user : t -> ?password:string -> Cm_rbac.Subject.t -> unit
(** Default password is ["secret"]. *)

val set_assignment : t -> project_id:string -> Cm_rbac.Role_assignment.t -> unit
val assignment_for : t -> project_id:string -> Cm_rbac.Role_assignment.t

(** {1 Token lifecycle} *)

val issue_token :
  t -> user:string -> password:string -> project_id:string ->
  (string, string) result

val validate : t -> token:string -> token_info option
(** [None] for unknown {e and} revoked tokens. *)

val validate_even_revoked : t -> token:string -> token_info option
(** Resolves revoked tokens too — the stale-token-cache view a service
    with the [Faults.Zombie_token] fault has.  Honest services never
    call this. *)

val revoke : t -> token:string -> unit
(** Marks the token revoked.  [validate] and introspection answer as if
    it never existed; [validate_even_revoked] still resolves it. *)

val roles_of_token : t -> token_info -> string list
(** Roles the token's subject holds in the token's project. *)

(** {1 HTTP surface}

    [POST /identity/v3/auth/tokens] with
    [{"auth": {"user": ..., "password": ..., "project_id": ...}}]
    answers 201 with [{"token": {"value": ..., "roles": [...]}}];
    [GET /identity/v3/auth/tokens] with the token in [X-Subject-Token]
    introspects it. *)

val routes : t -> (string * Cm_http.Meth.t * Cm_http.Router.handler) list
