module BM = Cm_uml.Behavior_model
module Cloud = Cm_cloudsim.Cloud
module Request = Cm_http.Request
module Json = Cm_json.Json

let quota = 3
let project = "myProject"

let security =
  { Cm_contracts.Generate.table = Cm_rbac.Security_table.cinder;
    assignment = Cm_rbac.Security_table.cinder_assignment
  }

let role_user = function
  | "admin" -> Some "alice"
  | "member" -> Some "bob"
  | "user" -> Some "carol"
  | _ -> None

let volume_body =
  Json.obj
    [ ( "volume",
        Json.obj [ ("name", Json.string "generated"); ("size", Json.int 10) ]
      )
    ]

let driver ?(faults = Cm_cloudsim.Faults.none) () () =
  let cloud = Cloud.create () in
  Cloud.seed cloud Cloud.my_project;
  Cm_cloudsim.Identity.add_user (Cloud.identity cloud) ~password:"svc"
    (Cm_rbac.Subject.make "svc" [ "proj_administrator" ]);
  let login user pw =
    match Cloud.login cloud ~user ~password:pw ~project_id:project with
    | Ok t -> t
    | Error e -> failwith e
  in
  let service_token = login "svc" "svc" in
  let tokens =
    [ ("alice", login "alice" "alice-pw");
      ("bob", login "bob" "bob-pw");
      ("carol", login "carol" "carol-pw")
    ]
  in
  Cloud.set_faults cloud faults;
  let monitor =
    match
      Cm_monitor.Monitor.create
        (Cm_monitor.Monitor.default_config ~service_token ~security
           Cm_uml.Cinder_model.resources Cm_uml.Cinder_model.behavior)
        (Cloud.handle cloud)
    with
    | Ok m -> m
    | Error msgs -> failwith (String.concat "; " msgs)
  in
  let token_for_role role =
    Option.bind (role_user role) (fun user -> List.assoc_opt user tokens)
  in
  (* The first existing volume, read through the cloud as the service
     account (an observable query, not a peek into internals). *)
  let first_volume_id () =
    let listing =
      Cloud.handle cloud
        (Request.make Cm_http.Meth.GET ("/v3/" ^ project ^ "/volumes")
        |> Request.with_auth_token service_token)
    in
    match listing.Cm_http.Response.body with
    | Some body ->
      (match Cm_json.Pointer.get [ Key "volumes"; Index 0; Key "id" ] body with
       | Some (Json.String id) -> Some id
       | Some _ | None -> None)
    | None -> None
  in
  let base = "/v3/" ^ project ^ "/volumes" in
  let request_for (tr : BM.transition) ~role =
    match token_for_role role with
    | None -> None
    | Some token ->
      let make ?body meth path =
        Some (Request.make ?body meth path |> Request.with_auth_token token)
      in
      (match tr.trigger.BM.meth, String.lowercase_ascii tr.trigger.BM.resource with
       | Cm_http.Meth.POST, "volume" ->
         make ~body:volume_body Cm_http.Meth.POST base
       | Cm_http.Meth.GET, "volumes" -> make Cm_http.Meth.GET base
       | (Cm_http.Meth.GET | Cm_http.Meth.PUT | Cm_http.Meth.DELETE), "volume"
         ->
         (match first_volume_id () with
          | Some id ->
            let path = base ^ "/" ^ id in
            (match tr.trigger.BM.meth with
             | Cm_http.Meth.PUT ->
               make
                 ~body:
                   (Json.obj
                      [ ( "volume",
                          Json.obj [ ("name", Json.string "renamed") ] )
                      ])
                 Cm_http.Meth.PUT path
             | meth -> make meth path)
          | None -> None)
       | _, _ -> None)
  in
  let observe () =
    let observer =
      Cm_monitor.Observer.create_exn ~backend:(Cloud.handle cloud)
        ~token:service_token ~model:Cm_uml.Cinder_model.resources
        ~project_id:project
    in
    let item =
      Option.map (fun id -> ("volume", id)) (first_volume_id ())
    in
    Cm_monitor.Observer.env ?item observer
  in
  { Execute.request_for;
    observe;
    handle = Cm_monitor.Monitor.handle monitor
  }
