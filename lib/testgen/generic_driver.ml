module BM = Cm_uml.Behavior_model
module RM = Cm_uml.Resource_model
module Paths = Cm_uml.Paths
module Cloud = Cm_cloudsim.Cloud
module Request = Cm_http.Request
module Json = Cm_json.Json

type spec = {
  resources : RM.t;
  behavior : BM.t;
  security : Cm_contracts.Generate.security;
  create_body : string -> Json.t option;
  update_body : string -> Json.t option;
}

let project = "myProject"

let cinder_spec =
  { resources = Cm_uml.Cinder_model.resources;
    behavior = Cm_uml.Cinder_model.behavior;
    security =
      { Cm_contracts.Generate.table = Cm_rbac.Security_table.cinder;
        assignment = Cm_rbac.Security_table.cinder_assignment
      };
    create_body =
      (function
        | "volume" ->
          Some
            (Json.obj
               [ ( "volume",
                   Json.obj
                     [ ("name", Json.string "generated"); ("size", Json.int 10) ]
                 )
               ])
        | _ -> None);
    update_body =
      (function
        | "volume" ->
          Some
            (Json.obj
               [ ("volume", Json.obj [ ("name", Json.string "renamed") ]) ])
        | _ -> None)
  }

let glance_spec =
  { resources = Cm_uml.Glance_model.resources;
    behavior = Cm_uml.Glance_model.behavior;
    security =
      { Cm_contracts.Generate.table = Cm_rbac.Security_table.glance;
        assignment = Cm_rbac.Security_table.cinder_assignment
      };
    create_body =
      (function
        | "image" ->
          Some
            (Json.obj
               [ ( "image",
                   Json.obj
                     [ ("name", Json.string "generated"); ("size", Json.int 256) ]
                 )
               ])
        | _ -> None);
    update_body =
      (function
        | "image" ->
          Some
            (Json.obj
               [ ("image", Json.obj [ ("name", Json.string "renamed") ]) ])
        | _ -> None)
  }

let role_user = function
  | "admin" -> Some "alice"
  | "member" -> Some "bob"
  | "user" -> Some "carol"
  | _ -> None

(* The collection entry whose contained item definition is [resource]. *)
let collection_path entries resources resource =
  List.find_map
    (fun (e : Paths.entry) ->
      if e.is_item then None
      else if e.resource = resource then
        Some (Cm_http.Uri_template.to_string e.template)
      else
        match RM.outgoing e.resource resources with
        | child :: _ when child.RM.target = resource ->
          Some (Cm_http.Uri_template.to_string e.template)
        | _ -> None)
    entries

let driver ?(faults = Cm_cloudsim.Faults.none) spec () =
  let cloud = Cloud.create () in
  Cloud.seed cloud Cloud.my_project;
  Cm_cloudsim.Identity.add_user (Cloud.identity cloud) ~password:"svc"
    (Cm_rbac.Subject.make "svc" [ "proj_administrator" ]);
  let login user pw =
    match Cloud.login cloud ~user ~password:pw ~project_id:project with
    | Ok t -> t
    | Error e -> failwith e
  in
  let service_token = login "svc" "svc" in
  let tokens =
    [ ("alice", login "alice" "alice-pw");
      ("bob", login "bob" "bob-pw");
      ("carol", login "carol" "carol-pw")
    ]
  in
  Cloud.set_faults cloud faults;
  let monitor =
    match
      Cm_monitor.Monitor.create
        (Cm_monitor.Monitor.default_config ~service_token
           ~security:spec.security spec.resources spec.behavior)
        (Cloud.handle cloud)
    with
    | Ok m -> m
    | Error msgs -> failwith (String.concat "; " msgs)
  in
  let entries =
    match Paths.derive spec.resources with
    | Ok entries -> entries
    | Error msg -> failwith msg
  in
  let id_param = Cm_uml.Paths.id_param in
  let context_param =
    match RM.outgoing spec.resources.RM.root spec.resources with
    | child :: _ -> id_param child.RM.target
    | [] -> "project_id"
  in
  let expand template bindings =
    Cm_http.Uri_template.expand_exn template
      ((context_param, project) :: bindings)
  in
  let collection_uri resource =
    Option.map
      (fun path_text ->
        expand (Cm_http.Uri_template.parse_exn path_text) [])
      (collection_path entries spec.resources resource)
  in
  (* First existing item of the resource, via the listing. *)
  let first_item_id resource =
    match collection_uri resource with
    | None -> None
    | Some path ->
      let listing =
        Cloud.handle cloud
          (Request.make Cm_http.Meth.GET path
          |> Request.with_auth_token service_token)
      in
      (match listing.Cm_http.Response.body with
       | Some (Json.Obj [ (_, Json.List (first :: _)) ]) ->
         (match Json.member "id" first with
          | Some (Json.String id) -> Some id
          | _ -> None)
       | _ -> None)
  in
  let item_uri resource id =
    List.find_map
      (fun (e : Paths.entry) ->
        if e.is_item && e.resource = resource then
          Some (expand e.template [ (id_param resource, id) ])
        else None)
      entries
  in
  let token_for_role role =
    Option.bind (role_user role) (fun user -> List.assoc_opt user tokens)
  in
  let request_for (tr : BM.transition) ~role =
    match token_for_role role with
    | None -> None
    | Some token ->
      let with_token r = Some (Request.with_auth_token token r) in
      let resource = tr.trigger.BM.resource in
      let is_collection_resource =
        match RM.find_resource resource spec.resources with
        | Some def -> def.RM.kind = RM.Collection
        | None -> false
      in
      (match tr.trigger.BM.meth with
       | Cm_http.Meth.POST ->
         Option.bind (collection_uri resource) (fun path ->
             Option.bind (spec.create_body resource) (fun body ->
                 with_token (Request.make ~body Cm_http.Meth.POST path)))
       | Cm_http.Meth.GET when is_collection_resource ->
         Option.bind (collection_uri resource) (fun path ->
             with_token (Request.make Cm_http.Meth.GET path))
       | (Cm_http.Meth.GET | Cm_http.Meth.PUT | Cm_http.Meth.DELETE) as meth ->
         Option.bind (first_item_id resource) (fun id ->
             Option.bind (item_uri resource id) (fun path ->
                 match meth with
                 | Cm_http.Meth.PUT ->
                   Option.bind (spec.update_body resource) (fun body ->
                       with_token (Request.make ~body Cm_http.Meth.PUT path))
                 | meth -> with_token (Request.make meth path)))
       | Cm_http.Meth.HEAD | Cm_http.Meth.PATCH | Cm_http.Meth.OPTIONS -> None)
  in
  let observe () =
    let observer =
      Cm_monitor.Observer.create_exn ~backend:(Cloud.handle cloud)
        ~token:service_token ~model:spec.resources ~project_id:project
    in
    (* bind the first item of the behaviour's most specific resource so
       that item guards are decidable *)
    let item =
      List.find_map
        (fun (trigger : BM.trigger) ->
          match RM.find_resource trigger.resource spec.resources with
          | Some def when def.RM.kind = RM.Normal ->
            Option.map
              (fun id -> (trigger.resource, id))
              (first_item_id trigger.resource)
          | _ -> None)
        (BM.triggers spec.behavior)
    in
    Cm_monitor.Observer.env ?item observer
  in
  { Execute.request_for;
    observe;
    handle = Cm_monitor.Monitor.handle monitor
  }
