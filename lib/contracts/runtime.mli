(** Contract checking at run time.

    The monitor uses this module per request: check the precondition in
    the observed pre-state, take a snapshot, let the cloud act, then
    check the postcondition in the observed post-state against the
    snapshot.

    {!prepare} stages everything that does not depend on the request —
    snapshot plan, and (with the default {!Compiled} engine) one
    {!Cm_ocl.Compile} closure per contract expression over a shared slot
    plan — so the per-request work is a frame projection plus direct
    closure calls. *)

type strategy =
  | Lean  (** snapshot only the values under [pre(...)] — the paper's *)
  | Full  (** retain the whole pre-state environment *)

type engine =
  | Interpreted  (** walk the AST with {!Cm_ocl.Eval} on every check *)
  | Compiled     (** evaluate staged closures ({!Cm_ocl.Compile}) *)

(** How observed states are (re)built between requests. *)
type eval_mode =
  | Full_eval
      (** fresh frame per observation, every expression re-evaluated per
          check — the seed behaviour *)
  | Incremental
      (** one persistent frame per contract; re-observed values are
          diffed in ({!Cm_ocl.Compile.refresh}) and checks replay
          memoized verdicts whenever their dependency slots are
          unchanged.  Only effective with the {!Compiled} engine;
          verdict-equivalent to [Full_eval] by construction (diffing is
          value-based, not delta-trust-based). *)

type subscription = {
  sub_events : (Cm_http.Meth.t * string * bool) list;
      (** the (method, resource, tenant-keyed) events whose write effects
          can change this contract's verdict — lowercased resource names,
          sorted (resource, method) *)
  sub_identity : bool;
      (** subscribed to the identity (token-revocation) pseudo-event *)
  sub_shard_closed : bool;
      (** every subscribed event is tenant-keyed: the contract's verdicts
          are a function of one tenant's event stream *)
}
(** Statically computed event interest.  Produced by the analysis layer
    and threaded in through {!prepare}; the runtime stores and serves
    it. *)

type prepared
(** A contract with its snapshot plan compiled and its expressions
    staged (do this once, not per request). *)

val prepare :
  ?strategy:strategy -> ?engine:engine -> ?eval:eval_mode ->
  ?subscription:subscription -> Contract.t -> prepared
(** Defaults: [Lean], [Compiled], [Full_eval], no subscription. *)

val subscription : prepared -> subscription option

val subscribed_to :
  prepared -> meth:Cm_http.Meth.t -> resource:string -> bool
(** Can a request on [(meth, resource)] change this contract's verdict?
    Conservatively [true] when no subscription was supplied. *)

val contract : prepared -> Contract.t
val strategy : prepared -> strategy
val engine : prepared -> engine
val eval_mode : prepared -> eval_mode

val footprint : prepared -> Cm_ocl.Footprint.t
(** Static read-set over all of the contract's expressions (pre,
    functional pre, auth guard, branches, post).  The observer prunes
    its state fetches to this. *)

type observed
(** One observed cloud state: the observer's environment plus its
    one-time projection onto the contract's compiled frame.  Build it
    once per observation and reuse it for every check against that
    state. *)

val observe : ?changed:(string -> bool) -> prepared -> Cm_ocl.Eval.env -> observed
(** Project an environment.  Under {!Incremental} this refreshes the
    contract's persistent frame in place and returns the same [observed]
    record every time.  [changed] (trusted-delta mode) marks roots the
    caller {e proves} were untouched since the last observation: those
    are skipped without even diffing.  Omit it — the default diffs
    every root — unless staleness of skipped roots is acceptable. *)

val observed_env : observed -> Cm_ocl.Eval.env

val check_pre : prepared -> Cm_ocl.Eval.env -> Cm_ocl.Eval.verdict
val check_pre_observed : prepared -> observed -> Cm_ocl.Eval.verdict

val covered_requirements : prepared -> Cm_ocl.Eval.env -> string list
(** SecReq ids of the branches active in the pre-state. *)

val covered_requirements_observed : prepared -> observed -> string list

val auth_guard_tri : prepared -> observed -> Cm_ocl.Value.tribool option
(** Truth of the contract's authorization guard in the observed state;
    [None] when the contract has no guard. *)

val functional_pre_tri : prepared -> observed -> Cm_ocl.Value.tribool
(** Truth of the functional (non-authorization) precondition. *)

type snapshot

val take_snapshot : prepared -> Cm_ocl.Eval.env -> snapshot
val take_snapshot_observed : prepared -> observed -> snapshot
(** Under {!Lean}, every snapshot slot is evaluated exactly once. *)

val snapshot_bytes : snapshot -> int

val snapshot_values : snapshot -> (string * Cm_ocl.Value.t) list option
(** The serializable face of a {!Lean} snapshot: its (slot, value)
    list, exactly as {!snapshot_of_values} will rebuild it.  [None] for
    {!Full} snapshots, which hold a live frame and cannot be persisted
    — the crash-recovery journal only runs under [Lean]. *)

val snapshot_of_values : (string * Cm_ocl.Value.t) list -> snapshot
(** Rebuild a [Lean] snapshot from journaled slot values.
    [check_post_observed] over the result is verdict-identical to the
    original snapshot. *)

val check_post :
  prepared -> snapshot -> Cm_ocl.Eval.env -> Cm_ocl.Eval.verdict

val check_post_observed :
  prepared -> snapshot -> observed -> Cm_ocl.Eval.verdict

(** {2 Incremental-evaluation statistics} *)

type eval_stats = {
  evals : int;  (** top-level expression evaluations *)
  replays : int;  (** top-level memoized verdict replays *)
  node_hits : int;  (** inner connective cache hits *)
  node_evals : int;  (** inner connective evaluations *)
  refreshes : int;  (** frame refreshes (observations) *)
  slots_changed : int;  (** slot values that actually changed *)
}

val eval_stats : prepared -> eval_stats
(** Counters since prepare (or the last reset).  [evals]/[replays] are
    also maintained under {!Full_eval} (where [replays] stays 0), so
    the two modes can be compared on identical workloads. *)

val reset_eval_counters : prepared -> unit
(** Resets [evals]/[replays] (the memo's node counters keep running). *)
