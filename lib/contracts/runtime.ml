module Compile = Cm_ocl.Compile
module Eval = Cm_ocl.Eval
module Value = Cm_ocl.Value

type strategy = Lean | Full
type engine = Interpreted | Compiled

(* Everything staged once per contract at prepare time: one slot plan
   shared by all of the contract's expressions, and one closure per
   expression the monitor evaluates on the request path. *)
type staged = {
  plan : Compile.plan;
  pre_c : Compile.t;
  functional_pre_c : Compile.t;
  auth_guard_c : Compile.t option;
  branches_c : (Compile.t * string list) list;
  post_lean_c : Compile.t;  (* rewritten post: pre(e_k) -> slot vars *)
  post_full_c : Compile.t;  (* original post, evaluated against a pre frame *)
  slots_c : (string * int * Compile.t) list;
      (* snapshot slot: name, its slot index in the plan, compiled e_k *)
}

type prepared = {
  contract : Contract.t;
  strategy : strategy;
  engine : engine;
  compiled : Snapshot.compiled;
  staged : staged;
  footprint : Cm_ocl.Footprint.t;
}

(* The read-set is computed over the contract's original expressions,
   not the slot-rewritten post: slot variables are synthetic and the
   slot expressions themselves are sub-expressions of the post. *)
let contract_footprint (contract : Contract.t) =
  Cm_ocl.Footprint.of_exprs
    ([ contract.Contract.pre;
       contract.Contract.functional_pre;
       contract.Contract.post
     ]
    @ Option.to_list contract.Contract.auth_guard
    @ List.concat_map
        (fun (b : Contract.branch) ->
          [ b.Contract.branch_pre; b.Contract.branch_post ])
        contract.Contract.branches)

let stage_contract (contract : Contract.t) (compiled : Snapshot.compiled) =
  let plan = Compile.plan () in
  let pre_c = Compile.compile plan contract.Contract.pre in
  let functional_pre_c = Compile.compile plan contract.Contract.functional_pre in
  let auth_guard_c =
    Option.map (Compile.compile plan) contract.Contract.auth_guard
  in
  let branches_c =
    List.map
      (fun (b : Contract.branch) ->
        (Compile.compile plan b.Contract.branch_pre, b.Contract.branch_requirements))
      contract.Contract.branches
  in
  let post_lean_c = Compile.compile plan compiled.Snapshot.rewritten_post in
  let post_full_c = Compile.compile plan contract.Contract.post in
  let slots_c =
    List.map
      (fun (name, expr) ->
        (name, Compile.var_slot plan name, Compile.compile plan expr))
      compiled.Snapshot.slots
  in
  { plan;
    pre_c;
    functional_pre_c;
    auth_guard_c;
    branches_c;
    post_lean_c;
    post_full_c;
    slots_c
  }

let prepare ?(strategy = Lean) ?(engine = Compiled) contract =
  let compiled = Snapshot.compile contract.Contract.post in
  { contract;
    strategy;
    engine;
    compiled;
    staged = stage_contract contract compiled;
    footprint = contract_footprint contract
  }

let contract p = p.contract
let strategy p = p.strategy
let engine p = p.engine
let footprint p = p.footprint

(* An observed state: the interpreter environment as delivered by the
   observer, plus its one-time projection onto the contract's frame.
   Built once per observation; every check against the same state reuses
   it. *)
type observed = {
  env : Eval.env;
  frame : Compile.frame;
}

let observe p env = { env; frame = Compile.frame_of_env p.staged.plan env }
let observed_env obs = obs.env

let verdict_of_tribool tb hint =
  match tb with
  | Value.True -> Eval.Holds
  | Value.False -> Eval.Violated
  | Value.Unknown -> Eval.Undefined_verdict hint

let check_pre_observed p obs =
  match p.engine with
  | Interpreted -> Eval.verdict obs.env p.contract.Contract.pre
  | Compiled ->
    (match Compile.check p.staged.pre_c obs.frame with
     | Value.True -> Eval.Holds
     | Value.False -> Eval.Violated
     | Value.Unknown ->
       (* Rare path: re-run the interpreter for its fault-localization
          hint (verdict is necessarily Undefined_verdict — the two
          evaluators agree on tribools). *)
       Eval.verdict obs.env p.contract.Contract.pre)

let check_pre p env = check_pre_observed p (observe p env)

let covered_requirements_observed p obs =
  match p.engine with
  | Interpreted ->
    Contract.active_branches p.contract obs.env
    |> List.concat_map (fun b -> b.Contract.branch_requirements)
    |> List.sort_uniq String.compare
  | Compiled ->
    List.concat_map
      (fun (branch_c, requirements) ->
        if Compile.check branch_c obs.frame = Value.True then requirements
        else [])
      p.staged.branches_c
    |> List.sort_uniq String.compare

let covered_requirements p env =
  covered_requirements_observed p (observe p env)

let auth_guard_tri p obs =
  match p.contract.Contract.auth_guard, p.staged.auth_guard_c, p.engine with
  | None, _, _ | _, None, _ -> None
  | Some guard, _, Interpreted -> Some (Eval.check obs.env guard)
  | _, Some guard_c, Compiled -> Some (Compile.check guard_c obs.frame)

let functional_pre_tri p obs =
  match p.engine with
  | Interpreted -> Eval.check obs.env p.contract.Contract.functional_pre
  | Compiled -> Compile.check p.staged.functional_pre_c obs.frame

type snapshot =
  | Lean_values of Snapshot.taken
  | Full_state of observed

let take_snapshot_observed p obs =
  match p.strategy, p.engine with
  | Lean, Interpreted -> Lean_values (Snapshot.take p.compiled obs.env)
  | Lean, Compiled ->
    (* Slot expressions may themselves contain pre() (idempotent), so
       evaluate them against a frame marked as the pre-state — each slot
       exactly once. *)
    let marked = Compile.with_pre ~pre:obs.frame obs.frame in
    Lean_values
      (List.map
         (fun (name, _slot, slot_c) -> (name, Compile.eval slot_c marked))
         p.staged.slots_c)
  | Full, _ -> Full_state obs

let take_snapshot p env = take_snapshot_observed p (observe p env)

let snapshot_bytes = function
  | Lean_values taken -> Snapshot.size_bytes taken
  | Full_state obs -> Snapshot.full_size_bytes obs.env

let post_hint = "postcondition undefined"

let check_post_observed p snapshot obs =
  match snapshot, p.engine with
  | Lean_values taken, Interpreted ->
    verdict_of_tribool (Snapshot.check_post_lean p.compiled taken obs.env) post_hint
  | Lean_values taken, Compiled ->
    List.iter
      (fun (name, slot, _slot_c) ->
        match List.assoc_opt name taken with
        | Some value -> Compile.write_slot obs.frame slot value
        | None -> Compile.write_slot obs.frame slot Value.Undef)
      p.staged.slots_c;
    verdict_of_tribool (Compile.check p.staged.post_lean_c obs.frame) post_hint
  | Full_state pre, Interpreted ->
    verdict_of_tribool
      (Snapshot.check_post_full p.contract.Contract.post ~pre:pre.env obs.env)
      post_hint
  | Full_state pre, Compiled ->
    let frame = Compile.with_pre ~pre:pre.frame obs.frame in
    verdict_of_tribool (Compile.check p.staged.post_full_c frame) post_hint

let check_post p snapshot env =
  check_post_observed p snapshot (observe p env)
