module Compile = Cm_ocl.Compile
module Eval = Cm_ocl.Eval
module Value = Cm_ocl.Value

type strategy = Lean | Full
type engine = Interpreted | Compiled

(* How observed states are (re)built between requests.  [Full_eval]
   re-projects a fresh frame and re-evaluates every expression per
   check, exactly as the seed engine did.  [Incremental] keeps one
   persistent frame per contract, diffs re-observed values into it
   ({!Compile.refresh}) and replays memoized verdicts whenever the
   dependency slots are unchanged. *)
type eval_mode = Full_eval | Incremental

(* Everything staged once per contract at prepare time: one slot plan
   shared by all of the contract's expressions, and one tracked closure
   (closure + dependency summary) per expression the monitor evaluates
   on the request path. *)
type staged = {
  plan : Compile.plan;
  pre_t : Compile.tracked;
  functional_pre_t : Compile.tracked;
  functional_disjuncts_t : Compile.tracked list;
      (* the functional precondition's top-level disjuncts — under
         memoization these share memo nodes with the branch guards
         staged inside [pre_t], so a functional check can be replayed
         from their cached verdicts even though its own root (a
         different or-chain) was never evaluated *)
  auth_guard_t : Compile.tracked option;
  branches_t : (Compile.tracked * string list) list;
  post_lean_t : Compile.tracked;  (* rewritten post: pre(e_k) -> slot vars *)
  post_full_t : Compile.tracked;  (* original post, against a pre frame *)
  slots_t : (string * int * Compile.tracked) list;
      (* snapshot slot: name, its slot index in the plan, compiled e_k *)
  branches_mask : int;  (* union of branch dependency masks *)
  branches_impure : bool;
  slots_mask : int;  (* union of snapshot-expression masks *)
  slots_impure : bool;  (* any slot expression reads pre() *)
}

(* Top-level check counters: [evals] are real expression evaluations,
   [replays] memoized verdict replays.  Single-threaded per prepared
   contract (each monitor shard owns its own prepared list). *)
type counters = { mutable evals : int; mutable replays : int }

(* An observed state: the interpreter environment as delivered by the
   observer, plus its projection onto the contract's frame.  In
   [Full_eval] mode a fresh record per observation; in [Incremental]
   mode one record per contract, refreshed in place. *)
type observed = {
  mutable env : Eval.env;
  frame : Compile.frame;
}

type snapshot =
  | Lean_values of Snapshot.taken
  | Full_state of observed

(* Persistent incremental-evaluation state of one prepared contract. *)
type inc = {
  memo : Compile.memo;
  frame : Compile.frame;
  obs : observed;
  mutable covered_stamp : int;  (* epoch of the cached covered list; -1 = none *)
  mutable covered_cache : string list;
  mutable snap_stamp : int;  (* epoch of the cached lean snapshot; -1 = none *)
  mutable snap_cache : snapshot;
  mutable refreshes : int;
  mutable slots_changed : int;
}

(* Statically computed event interest, produced by the analysis layer
   (which sits above this library) and threaded in through {!prepare}.
   The runtime only stores and serves it; the monitor uses it to skip
   contracts that cannot react to a request, and the sharded driver to
   prove tenant-closure. *)
type subscription = {
  sub_events : (Cm_http.Meth.t * string * bool) list;
  sub_identity : bool;
  sub_shard_closed : bool;
}

type prepared = {
  contract : Contract.t;
  strategy : strategy;
  engine : engine;
  eval_mode : eval_mode;
  compiled : Snapshot.compiled;
  staged : staged;
  footprint : Cm_ocl.Footprint.t;
  subscription : subscription option;
  counters : counters;
  inc : inc option;
}

(* The read-set is computed over the contract's original expressions,
   not the slot-rewritten post: slot variables are synthetic and the
   slot expressions themselves are sub-expressions of the post. *)
let contract_footprint (contract : Contract.t) =
  Cm_ocl.Footprint.of_exprs
    ([ contract.Contract.pre;
       contract.Contract.functional_pre;
       contract.Contract.post
     ]
    @ Option.to_list contract.Contract.auth_guard
    @ List.concat_map
        (fun (b : Contract.branch) ->
          [ b.Contract.branch_pre; b.Contract.branch_post ])
        contract.Contract.branches)

let tracked_mask (t : Compile.tracked) = t.Compile.mask
let tracked_impure (t : Compile.tracked) = t.Compile.impure

let stage_contract ~memoize (contract : Contract.t) (compiled : Snapshot.compiled)
    =
  let plan = Compile.plan ~memoize () in
  (* Stage the narrower expressions first: compile_tracked publishes each
     wrapped root into the plan's CSE table, and the precondition contains
     all of them as subtrees (pre = disj over branches of
     [functional_pre and auth]), so staging it last makes one pre
     evaluation stamp every guard's memo node for intra-request replay.
     Snapshot slot expressions come before everything else: an atom like
     [coll(project.volumes)] is only memoizable through its own wrapped
     root, and the comparisons that contain it capture whatever staging
     the CSE table holds at the time. *)
  let slots_t =
    List.map
      (fun (name, expr) ->
        (name, Compile.var_slot plan name, Compile.compile_tracked plan expr))
      compiled.Snapshot.slots
  in
  let functional_pre_t =
    Compile.compile_tracked plan contract.Contract.functional_pre
  in
  let auth_guard_t =
    Option.map (Compile.compile_tracked plan) contract.Contract.auth_guard
  in
  let branches_t =
    List.map
      (fun (b : Contract.branch) ->
        ( Compile.compile_tracked plan b.Contract.branch_pre,
          b.Contract.branch_requirements ))
      contract.Contract.branches
  in
  let functional_disjuncts_t =
    List.map (Compile.compile_tracked plan)
      (Cm_ocl.Simplify.disjuncts
         (Cm_ocl.Simplify.simplify contract.Contract.functional_pre))
  in
  let pre_t =
    if memoize then
      (* Strict disjunction over the branch guards: short-circuiting
         [or] would leave every guard right of the deciding branch
         unevaluated, so the covered-requirements and functional checks
         of the same observation could not replay.  [tri_or] is total
         and True-absorbing, so the verdict is bit-identical. *)
      Compile.strict_disjunction plan
        (List.map (Compile.compile_tracked plan)
           (Cm_ocl.Simplify.disjuncts
              (Cm_ocl.Simplify.simplify contract.Contract.pre)))
    else Compile.compile_tracked plan contract.Contract.pre
  in
  let post_lean_t = Compile.compile_tracked plan compiled.Snapshot.rewritten_post in
  let post_full_t = Compile.compile_tracked plan contract.Contract.post in
  { plan;
    pre_t;
    functional_pre_t;
    functional_disjuncts_t;
    auth_guard_t;
    branches_t;
    post_lean_t;
    post_full_t;
    slots_t;
    branches_mask =
      List.fold_left (fun acc (t, _) -> acc lor tracked_mask t) 0 branches_t;
    branches_impure = List.exists (fun (t, _) -> tracked_impure t) branches_t;
    slots_mask =
      List.fold_left (fun acc (_, _, t) -> acc lor tracked_mask t) 0 slots_t;
    slots_impure = List.exists (fun (_, _, t) -> tracked_impure t) slots_t
  }

let prepare ?(strategy = Lean) ?(engine = Compiled) ?(eval = Full_eval)
    ?subscription contract =
  let compiled = Snapshot.compile contract.Contract.post in
  let memoize = eval = Incremental && engine = Compiled in
  let staged = stage_contract ~memoize contract compiled in
  let inc =
    if memoize then begin
      let memo = Compile.make_memo staged.plan in
      let frame = Compile.memo_frame staged.plan memo in
      Some
        { memo;
          frame;
          obs = { env = Eval.env_of_bindings []; frame };
          covered_stamp = -1;
          covered_cache = [];
          snap_stamp = -1;
          snap_cache = Lean_values [];
          refreshes = 0;
          slots_changed = 0
        }
    end
    else None
  in
  { contract;
    strategy;
    engine;
    eval_mode = eval;
    compiled;
    staged;
    footprint = contract_footprint contract;
    subscription;
    counters = { evals = 0; replays = 0 };
    inc
  }

let contract p = p.contract
let strategy p = p.strategy
let engine p = p.engine
let eval_mode p = p.eval_mode
let footprint p = p.footprint
let subscription p = p.subscription

(* Does the subscription admit a request on (meth, resource)?  [None]
   (no analysis ran) admits everything — the pre-analysis behaviour. *)
let subscribed_to p ~meth ~resource =
  match p.subscription with
  | None -> true
  | Some s ->
    let r = String.lowercase_ascii resource in
    List.exists
      (fun (m, res, _) -> Cm_http.Meth.equal m meth && String.equal res r)
      s.sub_events

(* Snapshot slots ([__pre0], [__pre1], …) are written by the snapshot
   machinery, never synced from the observer's environment — a refresh
   that overwrote them with Undef would wrongly invalidate every
   post-condition memo. *)
let is_snap_name name =
  String.length name >= 5
  && String.unsafe_get name 0 = '_'
  && String.unsafe_get name 1 = '_'
  && String.unsafe_get name 2 = 'p'
  && String.unsafe_get name 3 = 'r'
  && String.unsafe_get name 4 = 'e'

let not_snap_name name = not (is_snap_name name)

let observe ?changed p env =
  match p.inc with
  | None -> { env; frame = Compile.frame_of_env p.staged.plan env }
  | Some inc ->
    inc.refreshes <- inc.refreshes + 1;
    let sync =
      match changed with
      | None -> not_snap_name
      | Some pred -> fun name -> not_snap_name name && pred name
    in
    let n = Compile.refresh p.staged.plan inc.memo inc.frame env ~sync in
    inc.slots_changed <- inc.slots_changed + n;
    inc.obs.env <- env;
    inc.obs

let observed_env obs = obs.env

let verdict_of_tribool tb hint =
  match tb with
  | Value.True -> Eval.Holds
  | Value.False -> Eval.Violated
  | Value.Unknown -> Eval.Undefined_verdict hint

(* Memoized truth of a tracked expression against an observed state:
   replay the cached verdict when the dependency slots are clean,
   evaluate (and let the node caches restamp themselves) otherwise. *)
let tracked_truth p (t : Compile.tracked) (obs : observed) =
  match p.inc with
  | Some inc when Compile.cached inc.memo t ->
    p.counters.replays <- p.counters.replays + 1;
    Value.truth (Compile.cached_value inc.memo t)
  | _ ->
    p.counters.evals <- p.counters.evals + 1;
    Value.truth (Compile.eval t.Compile.run obs.frame)

let check_pre_observed p obs =
  match p.engine with
  | Interpreted ->
    p.counters.evals <- p.counters.evals + 1;
    Eval.verdict obs.env p.contract.Contract.pre
  | Compiled ->
    (match tracked_truth p p.staged.pre_t obs with
     | Value.True -> Eval.Holds
     | Value.False -> Eval.Violated
     | Value.Unknown ->
       (* Rare path: re-run the interpreter for its fault-localization
          hint (verdict is necessarily Undefined_verdict — the two
          evaluators agree on tribools). *)
       Eval.verdict obs.env p.contract.Contract.pre)

let check_pre p env = check_pre_observed p (observe p env)

let covered_requirements_observed p obs =
  match p.engine with
  | Interpreted ->
    p.counters.evals <- p.counters.evals + 1;
    Contract.active_branches p.contract obs.env
    |> List.concat_map (fun b -> b.Contract.branch_requirements)
    |> List.sort_uniq String.compare
  | Compiled ->
    (match p.inc with
     | Some inc
       when (not p.staged.branches_impure)
            && inc.covered_stamp >= 0
            && Compile.deps_clean inc.memo ~mask:p.staged.branches_mask
                 ~stamp:inc.covered_stamp ->
       p.counters.replays <- p.counters.replays + 1;
       inc.covered_cache
     | Some inc
       when (not p.staged.branches_impure)
            && List.for_all
                 (fun ((t : Compile.tracked), _) -> Compile.cached inc.memo t)
                 p.staged.branches_t ->
       (* The branch guards were already evaluated this epoch — typically
          as subtrees of the precondition, whose staging shares their
          memo nodes — so the covered set can be rebuilt from the node
          caches without re-running any guard. *)
       p.counters.replays <- p.counters.replays + 1;
       let covered =
         List.concat_map
           (fun ((t : Compile.tracked), requirements) ->
             if Value.truth (Compile.cached_value inc.memo t) = Value.True then
               requirements
             else [])
           p.staged.branches_t
         |> List.sort_uniq String.compare
       in
       inc.covered_stamp <- Compile.epoch inc.memo;
       inc.covered_cache <- covered;
       covered
     | _ ->
       p.counters.evals <- p.counters.evals + 1;
       let covered =
         List.concat_map
           (fun ((branch_t : Compile.tracked), requirements) ->
             if Value.truth (Compile.eval branch_t.Compile.run obs.frame) = Value.True then
               requirements
             else [])
           p.staged.branches_t
         |> List.sort_uniq String.compare
       in
       (match p.inc with
        | Some inc when not p.staged.branches_impure ->
          inc.covered_stamp <- Compile.epoch inc.memo;
          inc.covered_cache <- covered
        | _ -> ());
       covered)

let covered_requirements p env =
  covered_requirements_observed p (observe p env)

(* Preallocated option results: the guard replays must not allocate. *)
let some_true = Some Value.True
let some_false = Some Value.False
let some_unknown = Some Value.Unknown

let some_tri = function
  | Value.True -> some_true
  | Value.False -> some_false
  | Value.Unknown -> some_unknown

let auth_guard_tri p obs =
  match p.contract.Contract.auth_guard, p.staged.auth_guard_t, p.engine with
  | None, _, _ | _, None, _ -> None
  | Some guard, _, Interpreted ->
    p.counters.evals <- p.counters.evals + 1;
    some_tri (Eval.check obs.env guard)
  | _, Some guard_t, Compiled -> some_tri (tracked_truth p guard_t obs)

(* Kleene-or replay over per-disjunct caches: a cached True disjunct
   decides the whole disjunction even when other disjuncts are stale
   (True absorbs under [tri_or]); short of that, every disjunct must be
   clean and the fold mirrors the staged or-chain exactly. *)
let rec disjuncts_any_cached_true memo = function
  | [] -> false
  | (t : Compile.tracked) :: rest ->
    (Compile.cached memo t
     && Value.truth (Compile.cached_value memo t) = Value.True)
    || disjuncts_any_cached_true memo rest

let rec disjuncts_fold_cached memo acc = function
  | [] -> Some acc
  | (t : Compile.tracked) :: rest ->
    if Compile.cached memo t then
      disjuncts_fold_cached memo
        (Value.tri_or acc (Value.truth (Compile.cached_value memo t)))
        rest
    else None

let functional_pre_tri p obs =
  match p.engine with
  | Interpreted ->
    p.counters.evals <- p.counters.evals + 1;
    Eval.check obs.env p.contract.Contract.functional_pre
  | Compiled ->
    (match p.inc with
     | Some inc when not (Compile.cached inc.memo p.staged.functional_pre_t) ->
       (* The root or-chain was not itself evaluated this epoch, but a
          pre evaluation stamps the shared branch-guard nodes — its
          disjuncts — so the verdict usually replays from those. *)
       let ds = p.staged.functional_disjuncts_t in
       if disjuncts_any_cached_true inc.memo ds then begin
         p.counters.replays <- p.counters.replays + 1;
         Value.True
       end
       else
         (match disjuncts_fold_cached inc.memo Value.False ds with
          | Some tri ->
            p.counters.replays <- p.counters.replays + 1;
            tri
          | None -> tracked_truth p p.staged.functional_pre_t obs)
     | _ -> tracked_truth p p.staged.functional_pre_t obs)

let take_snapshot_observed p obs =
  match p.strategy, p.engine with
  | Lean, Interpreted ->
    p.counters.evals <- p.counters.evals + 1;
    Lean_values (Snapshot.take p.compiled obs.env)
  | Lean, Compiled ->
    (match p.inc with
     | Some inc
       when (not p.staged.slots_impure)
            && inc.snap_stamp >= 0
            && Compile.deps_clean inc.memo ~mask:p.staged.slots_mask
                 ~stamp:inc.snap_stamp ->
       p.counters.replays <- p.counters.replays + 1;
       inc.snap_cache
     | Some inc
       when (not p.staged.slots_impure)
            && List.for_all
                 (fun (_, _, (t : Compile.tracked)) -> Compile.cached inc.memo t)
                 p.staged.slots_t ->
       (* Every slot expression was already evaluated this epoch — the
          branch guards and quota atoms it snapshots are subtrees of the
          precondition, whose staging shares their memo nodes — so the
          snapshot values can be read back from the node caches. *)
       p.counters.replays <- p.counters.replays + 1;
       let snap =
         Lean_values
           (List.map
              (fun (name, _slot, (t : Compile.tracked)) ->
                (name, Compile.cached_value inc.memo t))
              p.staged.slots_t)
       in
       inc.snap_stamp <- Compile.epoch inc.memo;
       inc.snap_cache <- snap;
       snap
     | _ ->
       p.counters.evals <- p.counters.evals + 1;
       (* Slot expressions may themselves contain pre() (idempotent), so
          when they do, evaluate them against a frame marked as the
          pre-state — each slot exactly once. *)
       let marked =
         if p.staged.slots_impure then Compile.with_pre ~pre:obs.frame obs.frame
         else obs.frame
       in
       let snap =
         Lean_values
           (List.map
              (fun (name, _slot, (slot_t : Compile.tracked)) ->
                (name, Compile.eval slot_t.Compile.run marked))
              p.staged.slots_t)
       in
       (match p.inc with
        | Some inc when not p.staged.slots_impure ->
          inc.snap_stamp <- Compile.epoch inc.memo;
          inc.snap_cache <- snap
        | _ -> ());
       snap)
  | Full, _ ->
    (match p.inc with
     | Some _ ->
       (* The persistent frame is refreshed in place; a Full snapshot
          must detach a copy or the "pre-state" would track the present. *)
       Full_state { env = obs.env; frame = Compile.copy_frame obs.frame }
     | None -> Full_state obs)

let take_snapshot p env = take_snapshot_observed p (observe p env)

let snapshot_bytes = function
  | Lean_values taken -> Snapshot.size_bytes taken
  | Full_state obs -> Snapshot.full_size_bytes obs.env

(* Lean snapshots are plain (slot, value) lists, which makes them
   serializable — the crash-recovery journal persists them as the
   durable pre-image of a forwarded request.  Full-state snapshots hold
   a live evaluation frame and cannot round-trip through bytes. *)
let snapshot_values = function
  | Lean_values taken -> Some taken
  | Full_state _ -> None

let snapshot_of_values taken = Lean_values taken

let post_hint = "postcondition undefined"

(* Allocation-free lookup of a captured slot value (assoc lists here
   are one or two entries long). *)
let rec snap_value name = function
  | [] -> Value.Undef
  | (n, v) :: rest -> if String.equal n name then v else snap_value name rest

let rec write_snap_slots frame taken = function
  | [] -> ()
  | (name, slot, _) :: rest ->
    Compile.write_slot_versioned frame slot (snap_value name taken);
    write_snap_slots frame taken rest

let check_post_observed p snapshot obs =
  match snapshot, p.engine with
  | Lean_values taken, Interpreted ->
    p.counters.evals <- p.counters.evals + 1;
    verdict_of_tribool (Snapshot.check_post_lean p.compiled taken obs.env) post_hint
  | Lean_values taken, Compiled ->
    write_snap_slots obs.frame taken p.staged.slots_t;
    (match tracked_truth p p.staged.post_lean_t obs with
     | Value.True -> Eval.Holds
     | Value.False -> Eval.Violated
     | Value.Unknown -> Eval.Undefined_verdict post_hint)
  | Full_state pre, Interpreted ->
    p.counters.evals <- p.counters.evals + 1;
    verdict_of_tribool
      (Snapshot.check_post_full p.contract.Contract.post ~pre:pre.env obs.env)
      post_hint
  | Full_state pre, Compiled ->
    p.counters.evals <- p.counters.evals + 1;
    let frame = Compile.with_pre ~pre:pre.frame obs.frame in
    verdict_of_tribool
      (Value.truth (Compile.eval p.staged.post_full_t.Compile.run frame))
      post_hint

let check_post p snapshot env =
  check_post_observed p snapshot (observe p env)

(* ------------------------------------------------------------------ *)
(* Incremental-evaluation statistics                                   *)

type eval_stats = {
  evals : int;  (* top-level expression evaluations *)
  replays : int;  (* top-level memoized verdict replays *)
  node_hits : int;  (* inner connective cache hits *)
  node_evals : int;  (* inner connective evaluations *)
  refreshes : int;  (* frame refreshes (observations) *)
  slots_changed : int;  (* slot values that actually changed *)
}

let eval_stats p =
  let node_hits, node_evals, refreshes, slots_changed =
    match p.inc with
    | Some inc ->
      ( Compile.memo_hits inc.memo,
        Compile.memo_evals inc.memo,
        inc.refreshes,
        inc.slots_changed )
    | None -> (0, 0, 0, 0)
  in
  { evals = p.counters.evals;
    replays = p.counters.replays;
    node_hits;
    node_evals;
    refreshes;
    slots_changed
  }

let reset_eval_counters p =
  p.counters.evals <- 0;
  p.counters.replays <- 0
