module Json = Cm_json.Json

type severity = Error | Warning | Info

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let pp_severity ppf s = Fmt.string ppf (severity_label s)

type finding = {
  rule : string;
  severity : severity;
  where : string;
  message : string;
  witness : string option;
}

let finding ?witness ~rule ~severity ~where message =
  { rule; severity; where; message; witness }

let pp_finding ppf f =
  Fmt.pf ppf "%s[%s] %s: %s" (severity_label f.severity) f.rule f.where
    f.message;
  match f.witness with
  | None -> ()
  | Some w -> Fmt.pf ppf "@,  witness: %s" w

type rule = {
  code : string;
  title : string;
  default_severity : severity;
  explanation : string;
}

let rule ~code ~title ~severity explanation =
  { code; title; default_severity = severity; explanation }

let find_rule catalogue code =
  List.find_opt (fun r -> String.equal r.code code) catalogue

let sort findings =
  List.stable_sort
    (fun a b ->
      let c = compare (severity_rank a.severity) (severity_rank b.severity) in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.where b.where)
    findings

(* Machine-diffable form: drop exact duplicates, then order by rule
   code, location, severity, message — a total order over every field
   that does {e not} depend on the order the analyses emitted findings
   in.  [sort] (severity-major) stays the human-facing presentation
   order; [canonical] is what dumps and golden files use, so two runs
   over the same input produce byte-identical output. *)
let compare_canonical a b =
  let cmp =
    [ (fun () -> String.compare a.rule b.rule);
      (fun () -> String.compare a.where b.where);
      (fun () -> compare (severity_rank a.severity) (severity_rank b.severity));
      (fun () -> String.compare a.message b.message);
      (fun () -> Option.compare String.compare a.witness b.witness)
    ]
  in
  List.fold_left (fun acc f -> if acc <> 0 then acc else f ()) 0 cmp

let canonical findings = List.sort_uniq compare_canonical findings

let errors findings = List.filter (fun f -> f.severity = Error) findings

let at_least threshold findings =
  List.filter
    (fun f -> severity_rank f.severity <= severity_rank threshold)
    findings

let count sev findings =
  List.length (List.filter (fun f -> f.severity = sev) findings)

let summary findings =
  let plural n = if n = 1 then "" else "s" in
  let errors = count Error findings and warnings = count Warning findings in
  Printf.sprintf "%d error%s, %d warning%s, %d info" errors (plural errors)
    warnings (plural warnings) (count Info findings)

let render ?(catalogue = []) findings =
  let findings = sort findings in
  let buf = Buffer.create 256 in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "%s[%s] %s: %s" (severity_label f.severity) f.rule
           f.where f.message);
      (if not (Hashtbl.mem seen f.rule) then begin
         Hashtbl.add seen f.rule ();
         match find_rule catalogue f.rule with
         | Some r -> Buffer.add_string buf (Printf.sprintf "  (%s)" r.title)
         | None -> ()
       end);
      Buffer.add_char buf '\n';
      match f.witness with
      | None -> ()
      | Some w -> Buffer.add_string buf (Printf.sprintf "  witness: %s\n" w))
    findings;
  if findings <> [] then Buffer.add_char buf '\n';
  Buffer.add_string buf (summary findings);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let finding_to_json f =
  Json.Obj
    ([ ("rule", Json.String f.rule);
       ("severity", Json.String (severity_label f.severity));
       ("where", Json.String f.where);
       ("message", Json.String f.message)
     ]
    @ match f.witness with
      | None -> []
      | Some w -> [ ("witness", Json.String w) ])

let to_json findings =
  let findings = canonical findings in
  Json.Obj
    [ ("findings", Json.List (List.map finding_to_json findings));
      ("errors", Json.Int (count Error findings));
      ("warnings", Json.Int (count Warning findings));
      ("info", Json.Int (count Info findings))
    ]

type waiver = {
  waive_rule : string;
  where_fragment : string;
  reason : string;
}

let waiver ~rule ~where ~reason =
  { waive_rule = rule; where_fragment = where; reason }

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  if nl = 0 then true
  else if nl > hl then false
  else
    let rec go i =
      if i + nl > hl then false
      else if String.sub haystack i nl = needle then true
      else go (i + 1)
    in
    go 0

let apply_waivers waivers findings =
  List.map
    (fun f ->
      match
        List.find_opt
          (fun w ->
            String.equal w.waive_rule f.rule
            && contains f.where w.where_fragment)
          waivers
      with
      | None -> f
      | Some w ->
        { f with
          severity = Info;
          message = Printf.sprintf "%s [waived: %s]" f.message w.reason
        })
    findings
