(** The unified lint framework: findings, rule metadata, reporters.

    Both the syntactic well-formedness checks ({!Cm_uml.Validate}) and
    the satisfiability-based design-time analyses ({!Cm_analysis.Rules})
    report through this one finding type, so `cmonitor analyze` renders
    a single, uniformly coded list and CI can gate on severities without
    knowing which layer produced a finding. *)

type severity = Error | Warning | Info

val severity_label : severity -> string
val severity_rank : severity -> int
(** [Error] ranks lowest (most severe first when sorting). *)

val pp_severity : Format.formatter -> severity -> unit

type finding = {
  rule : string;  (** stable rule code, e.g. ["AN002"] or ["VAL005"] *)
  severity : severity;
  where : string;  (** the model element the finding is attached to *)
  message : string;
  witness : string option;
      (** for satisfiability findings: a concrete state exhibiting the
          problem (or [None] when the defect is purely structural) *)
}

val finding :
  ?witness:string -> rule:string -> severity:severity -> where:string ->
  string -> finding

val pp_finding : Format.formatter -> finding -> unit
(** ["error[AN002] <where>: <message>"], plus the witness on a
    continuation line when present. *)

(** {2 Rule metadata} *)

type rule = {
  code : string;
  title : string;
  default_severity : severity;
  explanation : string;
}

val rule :
  code:string -> title:string -> severity:severity -> string -> rule

val find_rule : rule list -> string -> rule option

(** {2 Aggregation and reporting} *)

val sort : finding list -> finding list
(** Stable order: severity, then rule code, then location — the
    human-facing presentation order ({!render}). *)

val canonical : finding list -> finding list
(** Machine-diffable order: exact duplicates dropped, then a total
    order over every field (rule, location, severity, message,
    witness) — independent of emission order, so dumps and golden
    files are byte-stable across runs.  {!to_json} uses it. *)

val errors : finding list -> finding list

val at_least : severity -> finding list -> finding list
(** The findings at or above a severity threshold ([at_least Warning]
    keeps errors and warnings) — what `--fail-on` gates on. *)

val count : severity -> finding list -> int

val summary : finding list -> string
(** ["2 errors, 1 warning, 0 info"]. *)

val render : ?catalogue:rule list -> finding list -> string
(** Text report: one line per finding (plus witness lines), a blank
    line, and the summary.  When a catalogue is supplied, rule titles
    are appended to the first occurrence of each code. *)

val to_json : finding list -> Cm_json.Json.t
(** [{"findings": [...], "errors": n, "warnings": n, "info": n}]. *)

(** {2 Waivers}

    A shipped model may carry a reviewed, documented exception: a waiver
    demotes matching findings to [Info] (annotated with the reason)
    instead of deleting them, so the report still shows what was
    accepted and why. *)

type waiver = {
  waive_rule : string;  (** rule code the waiver applies to *)
  where_fragment : string;  (** substring of the finding's [where] *)
  reason : string;
}

val waiver : rule:string -> where:string -> reason:string -> waiver
val apply_waivers : waiver list -> finding list -> finding list

val contains : string -> string -> bool
(** [contains haystack needle] — substring test used by waiver
    matching, exposed for callers building their own filters. *)
