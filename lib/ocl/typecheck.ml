type error = {
  expr : Ast.expr;
  message : string;
  expected : Ty.t option;
  actual : Ty.t option;
}

let pp_error ppf { expr; message; expected; actual } =
  Fmt.pf ppf "%s in `%a'" message Pretty.pp expr;
  match (expected, actual) with
  | Some want, Some got ->
    Fmt.pf ppf " (expected %a, found %a)" Ty.pp want Ty.pp got
  | Some want, None -> Fmt.pf ppf " (expected %a)" Ty.pp want
  | None, Some got -> Fmt.pf ppf " (found %a)" Ty.pp got
  | None, None -> ()

let infer signature expr =
  let errors = ref [] in
  let report ?expected ?actual e message =
    errors := { expr = e; message; expected; actual } :: !errors;
    Ty.Any
  in
  let rec go env e =
    match e with
    | Ast.Bool_lit _ -> Ty.Bool
    | Ast.Int_lit _ -> Ty.Int
    | Ast.String_lit _ -> Ty.String
    | Ast.Null_lit -> Ty.Any
    | Ast.Var name ->
      (match List.assoc_opt name env with
       | Some t -> t
       | None -> report e (Printf.sprintf "unknown variable %S" name))
    | Ast.Nav (source, prop) ->
      let source_ty = go env source in
      (match Ty.property prop source_ty with
       | Some t -> t
       | None ->
         report ~actual:source_ty e
           (Fmt.str "no property %S on %a" prop Ty.pp source_ty))
    | Ast.At_pre inner -> go env inner
    | Ast.Coll (source, op) ->
      let source_ty = go env source in
      let elem = Ty.element source_ty in
      (match op with
       | Ast.Size -> Ty.Int
       | Ast.Is_empty | Ast.Not_empty -> Ty.Bool
       | Ast.Sum ->
         if Ty.is_numeric elem then elem
         else
           report ~expected:Ty.Int ~actual:elem e
             (Fmt.str "sum over non-numeric elements of type %a" Ty.pp elem)
       | Ast.First | Ast.Last -> elem
       | Ast.As_set -> Ty.Collection elem)
    | Ast.Count (source, arg) ->
      let elem = Ty.element (go env source) in
      let arg_ty = go env arg in
      if Ty.compatible elem arg_ty then Ty.Int
      else
        report ~expected:elem ~actual:arg_ty e
          (Fmt.str "count argument of type %a over elements %a" Ty.pp arg_ty
             Ty.pp elem)
    | Ast.Member (source, _, arg) ->
      let elem = Ty.element (go env source) in
      let arg_ty = go env arg in
      if Ty.compatible elem arg_ty then Ty.Bool
      else
        report ~expected:elem ~actual:arg_ty e
          (Fmt.str "includes/excludes argument of type %a over elements %a"
             Ty.pp arg_ty Ty.pp elem)
    | Ast.Iter (source, kind, var, body) ->
      let source_ty = go env source in
      let elem = Ty.element source_ty in
      let body_ty = go ((var, elem) :: env) body in
      (match kind with
       | Ast.For_all | Ast.Exists | Ast.One ->
         if Ty.compatible body_ty Ty.Bool then Ty.Bool
         else
           report ~expected:Ty.Bool ~actual:body_ty e
             (Fmt.str "iterator body has type %a, expected Boolean"
                Ty.pp body_ty)
       | Ast.Select | Ast.Reject ->
         if Ty.compatible body_ty Ty.Bool then Ty.Collection elem
         else
           report ~expected:Ty.Bool ~actual:body_ty e
             (Fmt.str "select/reject body has type %a, expected Boolean"
                Ty.pp body_ty)
       | Ast.Collect -> Ty.Collection body_ty
       | Ast.Any ->
         if Ty.compatible body_ty Ty.Bool then elem
         else
           report ~expected:Ty.Bool ~actual:body_ty e
             (Fmt.str "any body has type %a, expected Boolean"
                Ty.pp body_ty)
       | Ast.Is_unique -> Ty.Bool)
    | Ast.Unop (Ast.Not, inner) ->
      let inner_ty = go env inner in
      if Ty.compatible inner_ty Ty.Bool then Ty.Bool
      else
        report ~expected:Ty.Bool ~actual:inner_ty e
          (Fmt.str "not applied to %a" Ty.pp inner_ty)
    | Ast.Unop (Ast.Neg, inner) ->
      let inner_ty = go env inner in
      if Ty.is_numeric inner_ty then inner_ty
      else
        report ~expected:Ty.Int ~actual:inner_ty e
          (Fmt.str "unary minus applied to %a" Ty.pp inner_ty)
    | Ast.Binop ((Ast.And | Ast.Or | Ast.Xor | Ast.Implies), a, b) ->
      let ta = go env a and tb = go env b in
      if not (Ty.compatible ta Ty.Bool) then
        ignore
          (report ~expected:Ty.Bool ~actual:ta a
             (Fmt.str "boolean operator over %a" Ty.pp ta));
      if not (Ty.compatible tb Ty.Bool) then
        ignore
          (report ~expected:Ty.Bool ~actual:tb b
             (Fmt.str "boolean operator over %a" Ty.pp tb));
      Ty.Bool
    | Ast.Binop ((Ast.Eq | Ast.Neq), a, b) ->
      let ta = go env a and tb = go env b in
      if Ty.compatible ta tb then Ty.Bool
      else
        report ~expected:ta ~actual:tb e
          (Fmt.str "comparing incompatible types %a and %a" Ty.pp ta
             Ty.pp tb)
    | Ast.Binop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), a, b) ->
      let ta = go env a and tb = go env b in
      let orderable t = Ty.is_numeric t || Ty.equal t Ty.String in
      if orderable ta && orderable tb && Ty.compatible ta tb then Ty.Bool
      else
        report ~expected:ta ~actual:tb e
          (Fmt.str "ordering incompatible types %a and %a" Ty.pp ta
             Ty.pp tb)
    | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div), a, b) ->
      let ta = go env a and tb = go env b in
      if Ty.is_numeric ta && Ty.is_numeric tb then
        if Ty.equal ta Ty.Real || Ty.equal tb Ty.Real then Ty.Real else Ty.Int
      else
        report ~expected:Ty.Int
          ~actual:(if Ty.is_numeric ta then tb else ta)
          e
          (Fmt.str "arithmetic over %a and %a" Ty.pp ta Ty.pp tb)
  in
  let t = go signature expr in
  (t, List.rev !errors)

let check_boolean signature expr =
  let t, errors = infer signature expr in
  if Ty.compatible t Ty.Bool then errors
  else
    errors
    @ [ { expr;
          message = Fmt.str "expression has type %a, expected Boolean" Ty.pp t;
          expected = Some Ty.Bool;
          actual = Some t
        }
      ]

let well_typed signature expr = check_boolean signature expr = []
