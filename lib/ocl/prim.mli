(** Value-level OCL operations, shared verbatim by the tree-walking
    interpreter ({!Eval}) and the staged compiler ({!Compile}).

    Keeping the two evaluators on one set of primitives is what makes
    their verdict-equivalence (asserted by [test/test_compile.ml]) a
    structural property rather than a maintenance promise: the only code
    that differs between them is variable lookup and control flow. *)

val v_true : Value.t
val v_false : Value.t
(** Preallocated boolean results — the hot path must not allocate a
    fresh [Json (Bool _)] per connective. *)

val value_of_bool : bool -> Value.t
val value_of_tribool : Value.tribool -> Value.t
(** Like {!Value.of_bool} / {!Value.of_tribool} but returning the shared
    values above. *)

val navigate : Value.t -> string -> Value.t
(** Property navigation [e.prop], including the collect shorthand over
    lists. *)

val arith : Ast.binop -> Value.t -> Value.t -> Value.t
(** [Add]/[Sub]/[Mul]/[Div]; anything non-numeric (or division by zero)
    is [Undef]. *)

val neg : Value.t -> Value.t

val coll : Ast.coll_op -> Value.t -> Value.t
(** The argument-less arrow operations ([size], [isEmpty], …) applied to
    a value coerced by {!Value.as_collection}. *)

val member : includes:bool -> Value.t -> Value.t -> Value.t
(** [includes]/[excludes]; an undefined needle is [Undef]. *)

val count : Value.t -> Value.t -> Value.t

val iter : Ast.iter_kind -> Value.t -> (Value.t -> Value.t) -> Value.t
(** [iter kind coll body] runs an iterator; [body] evaluates the
    iterator's body with the element bound. *)

val compare : Ast.binop -> Value.t -> Value.t -> Value.t
(** [Lt]/[Le]/[Gt]/[Ge] via {!Value.compare_order}. *)
