(** Static checking of OCL expressions against a signature.

    Contracts are validated at generation time so that a misspelt
    property or an ill-typed comparison in a model is a build error of
    the monitor, not a silent [Unknown] verdict at run time. *)

type error = {
  expr : Ast.expr;  (** the offending subexpression *)
  message : string;
  expected : Ty.t option;  (** the type the context required, if known *)
  actual : Ty.t option;  (** the type actually inferred, if known *)
}

val pp_error : Format.formatter -> error -> unit
(** One self-contained message: the problem, the pretty-printed
    offending subexpression, and — when known — the expected/actual
    types, e.g.
    ["not applied to Integer in `not volume.size' (expected Boolean, found Integer)"]. *)

val infer : Ty.signature -> Ast.expr -> Ty.t * error list
(** Infer the type; errors are collected (the traversal continues with
    [Ty.Any] after each error so all problems are reported at once). *)

val check_boolean : Ty.signature -> Ast.expr -> error list
(** All errors of {!infer} plus one if the top-level type cannot be
    [Boolean] — the shape required of invariants, guards and effects. *)

val well_typed : Ty.signature -> Ast.expr -> bool
