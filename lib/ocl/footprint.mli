(** Static read-set ("footprint") analysis of OCL expressions.

    A contract only ever reads a small part of the observable cloud
    state: the root context variables it mentions and, for each, the
    first-level members it navigates into.  The observer uses this to
    fetch exactly the needed state instead of a full snapshot — the
    classic runtime-verification overhead reduction of monitoring only
    what the property can see.

    The analysis is an over-approximation and therefore safe to prune
    against: a root used whole (compared, iterated, passed to a
    collection operation directly) is recorded as {!All}; only
    first-level navigations on a {e free} root variable are refined to
    {!Fields}.  Iterator binders shadow roots inside their body, and
    [pre(...)] reads the same footprint in the pre-state, so no special
    casing is needed. *)

type fields =
  | All  (** the whole root value may be read *)
  | Fields of string list  (** only these first-level members (sorted) *)

type t = (string * fields) list
(** Root variable name -> what of it is read.  Sorted by root;
    normalized (no duplicate roots, sorted field lists). *)

val empty : t

val of_expr : Ast.expr -> t

val of_exprs : Ast.expr list -> t
(** Union of the individual footprints. *)

val union : t -> t -> t

val roots : t -> string list

val mentions : t -> string -> bool
(** Does the footprint read the root at all?  [false] means the
    observer may skip producing the binding entirely. *)

val needs_field : t -> root:string -> string -> bool
(** Does the footprint read [root.field]?  [true] whenever the root is
    recorded as {!All}; [false] when the root is absent. *)

val is_total : t -> string -> bool
(** [true] when the root is recorded as {!All}. *)

val intersects : t -> string list -> bool
(** Does the footprint read any of the given roots?  The delta-driven
    evaluator uses this to decide whether a mutation's touched-path set
    can affect a contract at all. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Cm_json.Json.t
