(** OCL runtime values.

    Values are JSON data (the observable representation of cloud
    resources) plus [Undef], OCL's {e undefined}: the result of navigating
    a property that does not exist, of arithmetic errors, and of [pre()]
    when no snapshot was taken.  Undefinedness must propagate rather than
    crash — the monitor evaluates contracts over whatever the cloud
    actually returned. *)

type t =
  | Undef
  | Json of Cm_json.Json.t

(** Three-valued truth (Kleene logic).  A contract evaluating to
    [Unknown] is reported as a distinct verdict, never silently treated
    as success. *)
type tribool =
  | True
  | False
  | Unknown

val of_json : Cm_json.Json.t -> t
val of_bool : bool -> t
val of_int : int -> t
val of_string : string -> t

val truth : t -> tribool
(** [Json (Bool b)] is [b]; everything else is [Unknown]. *)

val of_tribool : tribool -> t

val as_collection : t -> t list
(** OCL collection coercion: a JSON list yields its elements; [Undef]
    yields the empty collection (an absent resource has no elements —
    this is what makes [project.volumes->size() = 0] express "GET on
    Volumes did not return 200"); any other value is a singleton. *)

val equal_value : t -> t -> tribool
(** Structural equality; [Unknown] when either side is [Undef]. *)

val same : t -> t -> bool
(** Change detection for the incremental engine: [true] iff the two
    values are observably identical ([Undef] = [Undef], deep JSON
    equality otherwise).  Unlike {!equal_value} this is two-valued —
    [Undef] is treated as a concrete state, not an unknown. *)

val compare_order : t -> t -> int option
(** Ordering for [<] etc.: defined for two numbers or two strings
    ([None] otherwise, which evaluates to [Unknown]). *)

val pp : Format.formatter -> t -> unit
val pp_tribool : Format.formatter -> tribool -> unit

(** Kleene connectives. *)

val tri_not : tribool -> tribool
val tri_and : tribool -> tribool -> tribool
val tri_or : tribool -> tribool -> tribool
val tri_implies : tribool -> tribool -> tribool
val tri_xor : tribool -> tribool -> tribool
