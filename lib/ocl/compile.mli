(** Staged compilation of OCL to closures — the monitor's fast path.

    The tree-walking interpreter ({!Eval}) re-dispatches on the AST and
    re-resolves variables through assoc lists on {e every} request.  This
    module stages that work at monitor-creation time: an expression is
    compiled once into an OCaml closure over a {!frame} — a pre-sized
    value array whose slot layout ({!plan}) is fixed at compile time —
    so a request-time check is a direct closure call with array-indexed
    variable access and no environment allocation.

    Staging performed at compile time:
    - constant subexpressions (after {!Simplify.simplify}) are folded to
      their values — every OCL operation is total and pure, so folding
      cannot change verdicts;
    - boolean connectives become short-circuiting closures that preserve
      the Kleene tribool semantics of the interpreter ([False and _],
      [True or _], [False implies _] decide without the right operand);
    - iterator binders get scratch slots in the frame, written in place
      during iteration instead of allocating extended environments.

    Verdict-equivalence with {!Eval} over every generated contract is
    asserted by [test/test_compile.ml]. *)

type plan
(** A slot layout shared by a family of compiled expressions (one plan
    per contract).  Compiling against a plan allocates slots for the
    free context variables it encounters; frames must therefore be
    created {e after} every expression of the family has been
    compiled. *)

val plan : unit -> plan

val plan_vars : plan -> string list
(** Free context variables with slots, in first-allocation order. *)

val var_slot : plan -> string -> int
(** Slot index of a free context variable, allocating one if needed —
    used by the snapshot runtime to write captured pre-state values
    directly into a post-state frame. *)

type frame
(** A runtime environment projected onto a plan's slot layout, plus the
    optional pre-state frame that [pre(...)] evaluates against. *)

val frame_of_env : plan -> Eval.env -> frame
(** Project an interpreter environment: every plan variable is looked up
    once ({!Eval.lookup}); missing bindings are [Undef].  The
    environment's own attached pre-state is {e not} carried over —
    attach one explicitly with {!with_pre}. *)

val frame_of_bindings : plan -> (string * Cm_json.Json.t) list -> frame

val with_pre : pre:frame -> frame -> frame
(** Attach a pre-state frame (mirrors {!Eval.with_pre}, including the
    idempotence of [pre(...)] inside the pre-state itself). *)

val write_slot : frame -> int -> Value.t -> unit
val read_slot : frame -> int -> Value.t

type t
(** A compiled expression: [frame -> Value.t]. *)

val compile : plan -> Ast.expr -> t
(** [Simplify.simplify] then stage.  Total: evaluation never raises;
    failures yield [Value.Undef], exactly as {!Eval.eval}. *)

val compile_raw : plan -> Ast.expr -> t
(** Stage without the simplification pass (differential-testing hook). *)

val eval : t -> frame -> Value.t
val check : t -> frame -> Value.tribool

val verdict : t -> frame -> Eval.verdict
(** Like {!Eval.verdict} but without the interpreter's fault-localization
    hint (callers wanting a hint re-run the interpreter on the rare
    [Unknown] path). *)
