(** Staged compilation of OCL to closures — the monitor's fast path.

    The tree-walking interpreter ({!Eval}) re-dispatches on the AST and
    re-resolves variables through assoc lists on {e every} request.  This
    module stages that work at monitor-creation time: an expression is
    compiled once into an OCaml closure over a {!frame} — a pre-sized
    value array whose slot layout ({!plan}) is fixed at compile time —
    so a request-time check is a direct closure call with array-indexed
    variable access and no environment allocation.

    Staging performed at compile time:
    - constant subexpressions (after {!Simplify.simplify}) are folded to
      their values — every OCL operation is total and pure, so folding
      cannot change verdicts;
    - boolean connectives become short-circuiting closures that preserve
      the Kleene tribool semantics of the interpreter ([False and _],
      [True or _], [False implies _] decide without the right operand);
    - iterator binders get scratch slots in the frame, written in place
      during iteration instead of allocating extended environments.

    Verdict-equivalence with {!Eval} over every generated contract is
    asserted by [test/test_compile.ml].

    {2 Incremental evaluation}

    A plan created with [~memoize:true] additionally wraps every pure
    [and]/[or]/[implies] node (and each compiled root) in an
    epoch-stamped cache.  A {!memo} tracks, per slot, the epoch at which
    its value last changed; a node whose dependency slots are all
    unchanged since its last evaluation replays its cached verdict
    without recomputing and without allocating.  {!refresh} diffs a
    persistent frame against a new environment ({!Value.same}), bumping
    epochs only for slots that actually changed — so a request that
    touched nothing a contract reads costs a handful of integer
    comparisons. *)

type plan
(** A slot layout shared by a family of compiled expressions (one plan
    per contract).  Compiling against a plan allocates slots for the
    free context variables it encounters; frames must therefore be
    created {e after} every expression of the family has been
    compiled. *)

val plan : ?memoize:bool -> unit -> plan
(** [memoize] (default [false]) enables per-node epoch-stamped caches;
    they only activate on frames carrying a {!memo}. *)

val plan_vars : plan -> string list
(** Free context variables with slots, in first-allocation order. *)

val var_slot : plan -> string -> int
(** Slot index of a free context variable, allocating one if needed —
    used by the snapshot runtime to write captured pre-state values
    directly into a post-state frame. *)

type frame
(** A runtime environment projected onto a plan's slot layout, plus the
    optional pre-state frame that [pre(...)] evaluates against. *)

val frame_of_env : plan -> Eval.env -> frame
(** Project an interpreter environment: every plan variable is looked up
    once ({!Eval.lookup}); missing bindings are [Undef].  The
    environment's own attached pre-state is {e not} carried over —
    attach one explicitly with {!with_pre}. *)

val frame_of_bindings : plan -> (string * Cm_json.Json.t) list -> frame

val with_pre : pre:frame -> frame -> frame
(** Attach a pre-state frame (mirrors {!Eval.with_pre}, including the
    idempotence of [pre(...)] inside the pre-state itself).  The
    attached pre copy drops any memo — node caches are keyed by the
    post-state frame. *)

val copy_frame : frame -> frame
(** Detached snapshot of the frame's current slot values (no pre, no
    memo).  Used by the Full snapshot strategy when the source frame is
    refreshed in place between requests. *)

val write_slot : frame -> int -> Value.t -> unit
val read_slot : frame -> int -> Value.t

type t
(** A compiled expression: [frame -> Value.t]. *)

val compile : plan -> Ast.expr -> t
(** [Simplify.simplify] then stage.  Total: evaluation never raises;
    failures yield [Value.Undef], exactly as {!Eval.eval}. *)

val compile_raw : plan -> Ast.expr -> t
(** Stage without the simplification pass (differential-testing hook). *)

(** {2 Incremental evaluation} *)

type memo
(** Per-plan change-tracking state: slot versions, node caches, and
    hit/eval counters.  Single-threaded — one memo per monitor shard. *)

val make_memo : plan -> memo
(** Create after {e all} expressions of the plan are compiled (slot and
    node counts must be final). *)

val memo_frame : plan -> memo -> frame
(** A persistent frame bound to [memo], refreshed in place between
    requests instead of re-allocated per observation.  Slots start
    [Undef] at epoch 0. *)

type tracked = private {
  run : t;
  const : bool;
  node : int;
  mask : int;
  impure : bool;
}
(** A compiled expression plus its dependency summary: enough to ask,
    before running it, whether a memoized verdict can be replayed. *)

val compile_tracked : plan -> Ast.expr -> tracked

val strict_disjunction : plan -> tracked list -> tracked
(** Non-short-circuiting Kleene disjunction over compiled disjuncts —
    bit-identical to the staged short-circuiting [or] chain ([tri_or]
    is total and True-absorbing) but evaluates {e every} disjunct, so
    one evaluation stamps each disjunct's memo node for replay by later
    checks of the same observation.  The empty list is [False]; a
    singleton is returned unchanged. *)

val refresh : plan -> memo -> frame -> Eval.env -> sync:(string -> bool) -> int
(** Sync the frame's free slots from the environment, diffing with
    {!Value.same}; only actual changes bump the epoch and slot
    versions.  [sync name = false] skips that free entirely (snapshot
    slots; roots a trusted delta proves untouched).  Returns the number
    of changed slots.  Allocation-free when nothing changed. *)

val write_slot_versioned : frame -> int -> Value.t -> unit
(** {!write_slot} that diffs first and bumps the slot's version on real
    changes — keeps post-condition memos valid across requests whose
    snapshots are identical.  Plain write on frames without a memo. *)

val cached : memo -> tracked -> bool
(** Can this expression replay a cached value without evaluating?
    (Constant, or its root node's dependencies are all clean.) *)

val cached_value : memo -> tracked -> Value.t
(** Only meaningful when {!cached} just returned [true]. *)

val deps_clean : memo -> mask:int -> stamp:int -> bool
(** Were none of the slots in [mask] changed after [stamp]?  Exposed so
    runtimes can validate their own derived caches (snapshot values,
    covered-requirement lists) against the same version vector. *)

val epoch : memo -> int
val memo_hits : memo -> int
val memo_evals : memo -> int
val node_count : plan -> int

val eval : t -> frame -> Value.t
val check : t -> frame -> Value.tribool

val verdict : t -> frame -> Eval.verdict
(** Like {!Eval.verdict} but without the interpreter's fault-localization
    hint (callers wanting a hint re-run the interpreter on the rare
    [Unknown] path). *)
