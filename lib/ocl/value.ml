module Json = Cm_json.Json

type t = Undef | Json of Json.t
type tribool = True | False | Unknown

let of_json j = Json j
let of_bool b = Json (Json.Bool b)
let of_int n = Json (Json.Int n)
let of_string s = Json (Json.String s)

let truth = function
  | Json (Json.Bool true) -> True
  | Json (Json.Bool false) -> False
  | Json _ | Undef -> Unknown

let of_tribool = function
  | True -> Json (Json.Bool true)
  | False -> Json (Json.Bool false)
  | Unknown -> Undef

let as_collection = function
  | Undef -> []
  | Json (Json.List items) -> List.map (fun j -> Json j) items
  | Json other -> [ Json other ]

let equal_value a b =
  match a, b with
  | Undef, _ | _, Undef -> Unknown
  | Json x, Json y -> if Json.equal x y then True else False

(* Change detection for the incremental engine: physical equality first
   (re-observed documents are usually the same boxed value when nothing
   mutated), deep JSON equality as the ground truth. *)
let same a b =
  a == b
  ||
  match a, b with
  | Undef, Undef -> true
  | Json x, Json y -> x == y || Json.equal x y
  | Undef, Json _ | Json _, Undef -> false

let compare_order a b =
  match a, b with
  | Json (Json.Int x), Json (Json.Int y) -> Some (Int.compare x y)
  | Json (Json.String x), Json (Json.String y) -> Some (String.compare x y)
  | Json jx, Json jy ->
    (match Json.to_float jx, Json.to_float jy with
     | Some fx, Some fy -> Some (Float.compare fx fy)
     | _, _ -> None)
  | Undef, _ | _, Undef -> None

let pp ppf = function
  | Undef -> Fmt.string ppf "undefined"
  | Json j -> Json.pp ppf j

let pp_tribool ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Unknown -> Fmt.string ppf "unknown"

let tri_not = function True -> False | False -> True | Unknown -> Unknown

let tri_and a b =
  match a, b with
  | False, _ | _, False -> False
  | True, True -> True
  | _ -> Unknown

let tri_or a b =
  match a, b with
  | True, _ | _, True -> True
  | False, False -> False
  | _ -> Unknown

let tri_implies a b = tri_or (tri_not a) b

let tri_xor a b =
  match a, b with
  | Unknown, _ | _, Unknown -> Unknown
  | x, y -> if x <> y then True else False
