module Json = Cm_json.Json

type env = {
  vars : (string * Value.t) list;
  pre : env option;
  is_pre : bool;
      (* true when this env *is* a pre-state: [pre(e)] then means [e]
         (the operator is idempotent), rather than Undef *)
}

let env_of_bindings bindings =
  { vars = List.map (fun (name, json) -> (name, Value.Json json)) bindings;
    pre = None;
    is_pre = false
  }

let with_pre ~pre env = { env with pre = Some { pre with is_pre = true } }
let bind name json env = { env with vars = (name, Value.Json json) :: env.vars }

let bindings env =
  List.filter_map
    (fun (name, value) ->
      match value with
      | Value.Json json -> Some (name, json)
      | Value.Undef -> None)
    env.vars

let lookup name env =
  match List.assoc_opt name env.vars with
  | Some value -> value
  | None -> Value.Undef

let bind_value name value env = { env with vars = (name, value) :: env.vars }

let rec eval env expr =
  match expr with
  | Ast.Bool_lit b -> Prim.value_of_bool b
  | Ast.Int_lit n -> Value.of_int n
  | Ast.String_lit s -> Value.of_string s
  | Ast.Null_lit -> Value.Json Json.Null
  | Ast.Var name -> lookup name env
  | Ast.Nav (e, prop) -> Prim.navigate (eval env e) prop
  | Ast.At_pre e ->
    (match env.pre with
     | Some pre_env -> eval pre_env e
     | None -> if env.is_pre then eval env e else Value.Undef)
  | Ast.Coll (e, op) -> Prim.coll op (eval env e)
  | Ast.Member (e, includes, arg) ->
    Prim.member ~includes (eval env e) (eval env arg)
  | Ast.Count (e, arg) -> Prim.count (eval env e) (eval env arg)
  | Ast.Iter (e, kind, var, body) ->
    Prim.iter kind (eval env e) (fun item ->
        eval (bind_value var item env) body)
  | Ast.Unop (Ast.Not, e) ->
    Prim.value_of_tribool (Value.tri_not (Value.truth (eval env e)))
  | Ast.Unop (Ast.Neg, e) -> Prim.neg (eval env e)
  | Ast.Binop (op, a, b) -> eval_binop env op a b

and eval_binop env op a b =
  match op with
  | Ast.And ->
    Prim.value_of_tribool
      (Value.tri_and (Value.truth (eval env a)) (Value.truth (eval env b)))
  | Ast.Or ->
    Prim.value_of_tribool
      (Value.tri_or (Value.truth (eval env a)) (Value.truth (eval env b)))
  | Ast.Implies ->
    Prim.value_of_tribool
      (Value.tri_implies (Value.truth (eval env a)) (Value.truth (eval env b)))
  | Ast.Xor ->
    Prim.value_of_tribool
      (Value.tri_xor (Value.truth (eval env a)) (Value.truth (eval env b)))
  | Ast.Eq -> Prim.value_of_tribool (Value.equal_value (eval env a) (eval env b))
  | Ast.Neq ->
    Prim.value_of_tribool
      (Value.tri_not (Value.equal_value (eval env a) (eval env b)))
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    Prim.compare op (eval env a) (eval env b)
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
    Prim.arith op (eval env a) (eval env b)

let check env expr = Value.truth (eval env expr)

type verdict = Holds | Violated | Undefined_verdict of string

(* Cheap structural hint: variables involved in the undefined part. *)
let pp_culprit ppf e =
  Fmt.pf ppf "undefined over {%s}" (String.concat ", " (Ast.free_vars e))

let verdict env expr =
  match check env expr with
  | Value.True -> Holds
  | Value.False -> Violated
  | Value.Unknown ->
    (* Point at the first undefined atom to aid fault localization. *)
    let rec first_undef e =
      match e with
      | Ast.Binop ((Ast.And | Ast.Or | Ast.Implies | Ast.Xor), a, b) ->
        (match Value.truth (eval env a) with
         | Value.Unknown -> first_undef a
         | _ ->
           (match Value.truth (eval env b) with
            | Value.Unknown -> first_undef b
            | _ -> e))
      | _ -> e
    in
    let culprit = first_undef expr in
    Undefined_verdict (Fmt.str "%a" pp_culprit culprit)

let pp_verdict ppf = function
  | Holds -> Fmt.string ppf "holds"
  | Violated -> Fmt.string ppf "violated"
  | Undefined_verdict hint -> Fmt.pf ppf "undefined (%s)" hint

let verdict_equal a b =
  match a, b with
  | Holds, Holds | Violated, Violated -> true
  | Undefined_verdict _, Undefined_verdict _ -> true
  | _ -> false
