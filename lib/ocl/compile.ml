module Json = Cm_json.Json

(* A frame is the compiled counterpart of {!Eval.env}: a pre-sized value
   array indexed by compile-time slot numbers, replacing the
   interpreter's assoc-list lookups.  Iterator binders get scratch slots
   in the same array, written in place during iteration — evaluating a
   compiled contract allocates nothing beyond what the OCL collection
   operations themselves build.

   For the incremental engine a frame may additionally carry a [memo]:
   per-slot change epochs plus per-node verdict caches for the
   and/or/implies skeleton.  A staged node whose dependency slots are
   all unchanged since its last evaluation replays its cached value
   without recomputing — and without allocating. *)

type memo = {
  mutable epoch : int;  (* bumped on every slot change *)
  slot_epoch : int array;  (* epoch at which each slot last changed *)
  node_stamp : int array;  (* epoch at last evaluation; -1 = never *)
  node_value : Value.t array;
  mutable node_hits : int;
  mutable node_evals : int;
}

type frame = {
  slots : Value.t array;
  pre : frame option;
  is_pre : bool;
  memo : memo option;
}

type t = frame -> Value.t

(* Staging: subtrees whose value cannot depend on the frame are folded
   to constants at compile time; every OCL operation is total and pure,
   so folding (and the short-circuits below) cannot change verdicts. *)
type staged = Const of Value.t | Dyn of t

(* Compile-time dependency summary of a staged subtree. [mask] has one
   bit per slot the subtree reads; [impure] marks subtrees whose value
   is not a function of the maskable slots alone (pre-state access, or
   slots beyond the bitmask width). [node] is the memo node id when the
   subtree was wrapped in a cache. *)
type info = { mask : int; impure : bool; node : int }

type plan = {
  free_tbl : (string, int) Hashtbl.t;
  mutable frees : (string * int) list;  (* reversed insertion order *)
  mutable size : int;  (* free slots + iterator scratch slots *)
  memoize : bool;  (* wrap connectives in epoch-stamped caches *)
  mutable scratch_mask : int;  (* bits of iterator scratch slots *)
  mutable nodes : int;  (* memo node ids handed out so far *)
  cse : (Ast.expr * (string * int) list, staged * info) Hashtbl.t;
      (* structural common-subexpression table (memoizing plans only):
         the same subtree under the same binder scope stages to the
         same closure and the same memo node, so the generated pre,
         functional pre, auth guard and branch preconditions — which
         are all built from shared model pieces — share verdict
         caches across the contract's expressions *)
}

let plan ?(memoize = false) () =
  { free_tbl = Hashtbl.create 16;
    frees = [];
    size = 0;
    memoize;
    scratch_mask = 0;
    nodes = 0;
    cse = Hashtbl.create 64
  }

(* Slots beyond this index don't fit the dependency bitmask; expressions
   touching them are treated as unconditionally dirty. *)
let max_masked_slot = Sys.int_size - 2

let var_slot plan name =
  match Hashtbl.find_opt plan.free_tbl name with
  | Some i -> i
  | None ->
    let i = plan.size in
    plan.size <- plan.size + 1;
    Hashtbl.add plan.free_tbl name i;
    plan.frees <- (name, i) :: plan.frees;
    i

let scratch_slot plan =
  let i = plan.size in
  plan.size <- plan.size + 1;
  if i <= max_masked_slot then plan.scratch_mask <- plan.scratch_mask lor (1 lsl i);
  i

let plan_vars plan = List.rev_map fst plan.frees

let frame_of_env plan env =
  let slots = Array.make (max 1 plan.size) Value.Undef in
  List.iter
    (fun (name, i) -> slots.(i) <- Eval.lookup name env)
    plan.frees;
  { slots; pre = None; is_pre = false; memo = None }

let frame_of_bindings plan bindings =
  let slots = Array.make (max 1 plan.size) Value.Undef in
  List.iter
    (fun (name, i) ->
      match List.assoc_opt name bindings with
      | Some json -> slots.(i) <- Value.Json json
      | None -> ())
    plan.frees;
  { slots; pre = None; is_pre = false; memo = None }

(* The pre-marked copy drops the memo: node caches are keyed by the
   post-state frame, and replaying them while evaluating in pre context
   would confuse the two. *)
let with_pre ~pre frame =
  { frame with pre = Some { pre with is_pre = true; memo = None } }

(* Detached snapshot of a frame's current state (used by the Full
   snapshot strategy when the underlying frame is reused in place). *)
let copy_frame frame =
  { slots = Array.copy frame.slots; pre = None; is_pre = false; memo = None }

let write_slot frame i value = frame.slots.(i) <- value
let read_slot frame i = frame.slots.(i)

let no_node = -1
let pure_info = { mask = 0; impure = false; node = no_node }
let impure_info = { mask = 0; impure = true; node = no_node }

let slot_info i =
  if i <= max_masked_slot then { mask = 1 lsl i; impure = false; node = no_node }
  else impure_info

let join a b = { mask = a.mask lor b.mask; impure = a.impure || b.impure; node = no_node }

(* Info for a closure {e derived from} a staged subtree (navigation,
   negation, constant-folded connective…): same dependencies, but the
   subtree's cache — if any — holds the subtree's value, not the
   derived one, so the node must not be claimed. *)
let derived info =
  if info.node = no_node then info else { info with node = no_node }

let run = function Const v -> fun _ -> v | Dyn f -> f

let of_tri = Prim.value_of_tribool

(* True when every dependency slot in [mask] is unchanged since epoch
   [stamp].  Allocation-free: walks the mask bit by bit, as a toplevel
   recursive function (an inner [let rec] capturing [memo] would
   allocate a closure on every probe — the hot replay path). *)
let rec deps_clean_from memo ~stamp mask i =
  mask = 0
  || ((mask land 1 = 0 || memo.slot_epoch.(i) <= stamp)
      && deps_clean_from memo ~stamp (mask lsr 1) (i + 1))

let deps_clean memo ~mask ~stamp = deps_clean_from memo ~stamp mask 0

(* Wrap a staged connective in an epoch-stamped cache.  Only pure
   subtrees whose dependencies avoid iterator scratch slots are
   memoizable — scratch writes during iteration don't bump slot
   epochs, and pre-state reads escape the mask entirely. *)
let memo_wrap plan st info =
  match st with
  | Const _ -> (st, info)
  | Dyn f ->
    if
      (not plan.memoize) || info.impure || info.node >= 0
      || info.mask land plan.scratch_mask <> 0
    then (st, info)
    else begin
      let id = plan.nodes in
      plan.nodes <- plan.nodes + 1;
      let mask = info.mask in
      let g fr =
        match fr.memo with
        | None -> f fr
        | Some m ->
          let stamp = m.node_stamp.(id) in
          if stamp >= 0 && deps_clean m ~mask ~stamp then begin
            m.node_hits <- m.node_hits + 1;
            m.node_value.(id)
          end
          else begin
            let v = f fr in
            m.node_evals <- m.node_evals + 1;
            m.node_stamp.(id) <- m.epoch;
            m.node_value.(id) <- v;
            v
          end
      in
      (Dyn g, { info with node = id })
    end

(* [truth_like f] — the connectives only look at the truth of their
   operands, so compile them down to tribool producers.

   Memoizing plans stage through the structural CSE table: the same
   subtree under the same binder scope returns the identical staged
   closure (and memo node), however many expressions of the plan it
   occurs in. *)
let rec stage plan scope expr : staged * info =
  if not plan.memoize then stage_fresh plan scope expr
  else begin
    let key = (expr, scope) in
    match Hashtbl.find_opt plan.cse key with
    | Some r -> r
    | None ->
      let r = stage_fresh plan scope expr in
      Hashtbl.add plan.cse key r;
      r
  end

and stage_fresh plan scope expr : staged * info =
  match expr with
  | Ast.Bool_lit b -> (Const (Prim.value_of_bool b), pure_info)
  | Ast.Int_lit n -> (Const (Value.of_int n), pure_info)
  | Ast.String_lit s -> (Const (Value.of_string s), pure_info)
  | Ast.Null_lit -> (Const (Value.Json Json.Null), pure_info)
  | Ast.Var name ->
    let i =
      match List.assoc_opt name scope with
      | Some i -> i  (* innermost iterator binder shadows context vars *)
      | None -> var_slot plan name
    in
    (Dyn (fun fr -> fr.slots.(i)), slot_info i)
  | Ast.Nav (e, prop) ->
    (match stage plan scope e with
     | Const v, _ -> (Const (Prim.navigate v prop), pure_info)
     | Dyn f, i -> (Dyn (fun fr -> Prim.navigate (f fr) prop), derived i))
  | Ast.At_pre e ->
    (* Never constant: the result depends on whether a pre-state is
       attached to the frame. *)
    let st, _ = stage plan scope e in
    let f = run st in
    ( Dyn
        (fun fr ->
          match fr.pre with
          | Some pre_frame -> f pre_frame
          | None -> if fr.is_pre then f fr else Value.Undef),
      impure_info )
  | Ast.Coll (e, op) ->
    (match stage plan scope e with
     | Const v, _ -> (Const (Prim.coll op v), pure_info)
     | Dyn f, i -> (Dyn (fun fr -> Prim.coll op (f fr)), derived i))
  | Ast.Member (e, includes, arg) ->
    (match stage plan scope e, stage plan scope arg with
     | (Const v, _), (Const x, _) -> (Const (Prim.member ~includes v x), pure_info)
     | (ce, ie), (cx, ix) ->
       let fe = run ce and fx = run cx in
       (Dyn (fun fr -> Prim.member ~includes (fe fr) (fx fr)), join ie ix))
  | Ast.Count (e, arg) ->
    (match stage plan scope e, stage plan scope arg with
     | (Const v, _), (Const x, _) -> (Const (Prim.count v x), pure_info)
     | (ce, ie), (cx, ix) ->
       let fe = run ce and fx = run cx in
       (Dyn (fun fr -> Prim.count (fe fr) (fx fr)), join ie ix))
  | Ast.Iter (e, kind, var, body) ->
    let ce, ie = stage plan scope e in
    let slot = scratch_slot plan in
    let cbody, ib = stage plan ((var, slot) :: scope) body in
    (match ce, cbody with
     | Const cv, Const bv -> (Const (Prim.iter kind cv (fun _ -> bv)), pure_info)
     | _ ->
       let fe = run ce and fb = run cbody in
       (* The binder slot is written per item during iteration; the
          iteration result is fully determined by [e]'s value and the
          body's other dependencies, so drop the binder bit. *)
       let own = if slot <= max_masked_slot then 1 lsl slot else 0 in
       let info =
         { mask = ie.mask lor (ib.mask land lnot own);
           impure = ie.impure || ib.impure;
           node = no_node
         }
       in
       ( Dyn
           (fun fr ->
             Prim.iter kind (fe fr) (fun item ->
                 fr.slots.(slot) <- item;
                 fb fr)),
         info ))
  | Ast.Unop (Ast.Not, e) ->
    (match stage plan scope e with
     | Const v, _ -> (Const (of_tri (Value.tri_not (Value.truth v))), pure_info)
     | Dyn f, i ->
       (Dyn (fun fr -> of_tri (Value.tri_not (Value.truth (f fr)))), derived i))
  | Ast.Unop (Ast.Neg, e) ->
    (match stage plan scope e with
     | Const v, _ -> (Const (Prim.neg v), pure_info)
     | Dyn f, i -> (Dyn (fun fr -> Prim.neg (f fr)), derived i))
  | Ast.Binop (Ast.And, a, b) ->
    let st, info = stage_and plan scope a b in
    memo_wrap plan st info
  | Ast.Binop (Ast.Or, a, b) ->
    let st, info = stage_or plan scope a b in
    memo_wrap plan st info
  | Ast.Binop (Ast.Implies, a, b) ->
    let st, info = stage_implies plan scope a b in
    memo_wrap plan st info
  | Ast.Binop (Ast.Xor, a, b) ->
    (match stage plan scope a, stage plan scope b with
     | (Const va, _), (Const vb, _) ->
       (Const (of_tri (Value.tri_xor (Value.truth va) (Value.truth vb))), pure_info)
     | (ca, ia), (cb, ib) ->
       let fa = run ca and fb = run cb in
       ( Dyn
           (fun fr ->
             of_tri (Value.tri_xor (Value.truth (fa fr)) (Value.truth (fb fr)))),
         join ia ib ))
  | Ast.Binop (Ast.Eq, a, b) ->
    (match stage plan scope a, stage plan scope b with
     | (Const va, _), (Const vb, _) ->
       (Const (of_tri (Value.equal_value va vb)), pure_info)
     | (ca, ia), (cb, ib) ->
       let fa = run ca and fb = run cb in
       (Dyn (fun fr -> of_tri (Value.equal_value (fa fr) (fb fr))), join ia ib))
  | Ast.Binop (Ast.Neq, a, b) ->
    (match stage plan scope a, stage plan scope b with
     | (Const va, _), (Const vb, _) ->
       (Const (of_tri (Value.tri_not (Value.equal_value va vb))), pure_info)
     | (ca, ia), (cb, ib) ->
       let fa = run ca and fb = run cb in
       ( Dyn
           (fun fr -> of_tri (Value.tri_not (Value.equal_value (fa fr) (fb fr)))),
         join ia ib ))
  | Ast.Binop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, a, b) ->
    (match stage plan scope a, stage plan scope b with
     | (Const va, _), (Const vb, _) -> (Const (Prim.compare op va vb), pure_info)
     | (ca, ia), (cb, ib) ->
       let fa = run ca and fb = run cb in
       (Dyn (fun fr -> Prim.compare op (fa fr) (fb fr)), join ia ib))
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div) as op, a, b) ->
    (match stage plan scope a, stage plan scope b with
     | (Const va, _), (Const vb, _) -> (Const (Prim.arith op va vb), pure_info)
     | (ca, ia), (cb, ib) ->
       let fa = run ca and fb = run cb in
       (Dyn (fun fr -> Prim.arith op (fa fr) (fb fr)), join ia ib))

(* Kleene short-circuits: [False and _], [True or _] and [False implies _]
   decide without the second operand; all other combinations still
   evaluate it (Unknown must absorb a later False/True correctly). *)
and stage_and plan scope a b =
  match stage plan scope a, stage plan scope b with
  | (Const va, _), (cb, ib) -> (stage_and_const (Value.truth va) cb, derived ib)
  | (ca, ia), (Const vb, _) ->
    (* symmetric fold: tri_and is commutative and evaluation is pure *)
    (stage_and_const (Value.truth vb) ca, derived ia)
  | (Dyn fa, ia), (Dyn fb, ib) ->
    ( Dyn
        (fun fr ->
          match Value.truth (fa fr) with
          | Value.False -> Prim.v_false
          | ta -> of_tri (Value.tri_and ta (Value.truth (fb fr)))),
      join ia ib )

and stage_and_const ta cb =
  match ta with
  | Value.False -> Const Prim.v_false
  | Value.True ->
    (match cb with
     | Const vb -> Const (of_tri (Value.truth vb))
     | Dyn fb -> Dyn (fun fr -> of_tri (Value.truth (fb fr))))
  | Value.Unknown ->
    (match cb with
     | Const vb -> Const (of_tri (Value.tri_and Value.Unknown (Value.truth vb)))
     | Dyn fb ->
       Dyn
         (fun fr -> of_tri (Value.tri_and Value.Unknown (Value.truth (fb fr)))))

and stage_or plan scope a b =
  match stage plan scope a, stage plan scope b with
  | (Const va, _), (cb, ib) -> (stage_or_const (Value.truth va) cb, derived ib)
  | (ca, ia), (Const vb, _) -> (stage_or_const (Value.truth vb) ca, derived ia)
  | (Dyn fa, ia), (Dyn fb, ib) ->
    ( Dyn
        (fun fr ->
          match Value.truth (fa fr) with
          | Value.True -> Prim.v_true
          | ta -> of_tri (Value.tri_or ta (Value.truth (fb fr)))),
      join ia ib )

and stage_or_const ta cb =
  match ta with
  | Value.True -> Const Prim.v_true
  | Value.False ->
    (match cb with
     | Const vb -> Const (of_tri (Value.truth vb))
     | Dyn fb -> Dyn (fun fr -> of_tri (Value.truth (fb fr))))
  | Value.Unknown ->
    (match cb with
     | Const vb -> Const (of_tri (Value.tri_or Value.Unknown (Value.truth vb)))
     | Dyn fb ->
       Dyn
         (fun fr -> of_tri (Value.tri_or Value.Unknown (Value.truth (fb fr)))))

and stage_implies plan scope a b =
  match stage plan scope a, stage plan scope b with
  | (Const va, _), (cb, ib) ->
    (match Value.truth va with
     | Value.False -> (Const Prim.v_true, pure_info)
     | ta ->
       ( (match cb with
          | Const vb -> Const (of_tri (Value.tri_implies ta (Value.truth vb)))
          | Dyn fb ->
            Dyn (fun fr -> of_tri (Value.tri_implies ta (Value.truth (fb fr))))),
         derived ib ))
  | (ca, ia), (Const vb, _) ->
    (match Value.truth vb with
     | Value.True -> (Const Prim.v_true, pure_info)
     | tb ->
       let fa = run ca in
       ( Dyn (fun fr -> of_tri (Value.tri_implies (Value.truth (fa fr)) tb)),
         derived ia ))
  | (Dyn fa, ia), (Dyn fb, ib) ->
    ( Dyn
        (fun fr ->
          match Value.truth (fa fr) with
          | Value.False -> Prim.v_true
          | ta -> of_tri (Value.tri_implies ta (Value.truth (fb fr)))),
      join ia ib )

(* A compiled expression plus its dependency summary: enough to ask,
   before running it, whether a memoized verdict can be replayed. *)
type tracked = {
  run : t;
  const : bool;  (* staged to a constant — [run] ignores the frame *)
  node : int;  (* root memo node id, or [no_node] *)
  mask : int;
  impure : bool;
}

let compile_tracked plan expr =
  let expr = Simplify.simplify expr in
  let st, info = stage plan [] expr in
  let st, info = memo_wrap plan st info in
  (* Publish the wrapped root back into the CSE table: a later
     expression of the same plan containing this one as a subtree then
     shares its memo node instead of re-wrapping a fresh one. *)
  if plan.memoize then Hashtbl.replace plan.cse (expr, []) (st, info);
  match st with
  | Const v ->
    { run = (fun _ -> v); const = true; node = no_node; mask = 0; impure = false }
  | Dyn f ->
    { run = f; const = false; node = info.node; mask = info.mask;
      impure = info.impure }

(* Non-short-circuiting Kleene disjunction over already-compiled
   disjuncts.  [tri_or] is total and True-absorbing, so the strict fold
   is bit-identical to the staged short-circuiting [or] chain — but it
   evaluates {e every} disjunct, stamping each one's memo node.  A
   memoizing monitor compiles its precondition this way: one pre
   evaluation then leaves every branch guard's verdict cached, so the
   covered-requirements and functional checks of the same observation
   replay instead of re-evaluating. *)
let strict_disjunction plan (ts : tracked list) =
  match ts with
  | [] ->
    let v = of_tri Value.False in
    { run = (fun _ -> v); const = true; node = no_node; mask = 0;
      impure = false }
  | [ t ] -> t
  | _ ->
    let info =
      List.fold_left
        (fun (acc : info) (t : tracked) : info ->
          { mask = acc.mask lor t.mask;
            impure = acc.impure || t.impure;
            node = no_node
          })
        pure_info ts
    in
    let runs = Array.of_list (List.map (fun t -> t.run) ts) in
    let f fr =
      let acc = ref Value.False in
      for i = 0 to Array.length runs - 1 do
        acc := Value.tri_or !acc (Value.truth (runs.(i) fr))
      done;
      of_tri !acc
    in
    (match memo_wrap plan (Dyn f) info with
     | Dyn g, info ->
       { run = g; const = false; node = info.node; mask = info.mask;
         impure = info.impure }
     | Const v, _ ->
       { run = (fun _ -> v); const = true; node = no_node; mask = 0;
         impure = false })

let compile plan expr = (compile_tracked plan expr).run

let compile_raw plan expr =
  let st, info = stage plan [] expr in
  run (fst (memo_wrap plan st info))

(* ------------------------------------------------------------------ *)
(* Incremental-evaluation support                                      *)

(* Call after all expressions of a plan are compiled: node/slot counts
   are final from then on. *)
let make_memo plan =
  { epoch = 0;
    slot_epoch = Array.make (max 1 plan.size) 0;
    node_stamp = Array.make (max 1 plan.nodes) (-1);
    node_value = Array.make (max 1 plan.nodes) Value.Undef;
    node_hits = 0;
    node_evals = 0
  }

(* A persistent frame bound to a memo: refreshed in place between
   requests instead of being re-allocated per observation. *)
let memo_frame plan memo =
  { slots = Array.make (max 1 plan.size) Value.Undef;
    pre = None;
    is_pre = false;
    memo = Some memo
  }

let epoch memo = memo.epoch
let memo_hits memo = memo.node_hits
let memo_evals memo = memo.node_evals
let node_count plan = plan.nodes

(* Sync the frame's free slots from [env], diffing each value against
   what the frame already holds. Only actual changes bump the epoch and
   the slot's version — unchanged slots leave all node caches valid.
   [sync] filters which frees participate (snapshot slots are written
   separately; trusted-delta mode skips untouched roots). Returns the
   number of slots that changed. Allocation-free on the all-unchanged
   path. *)
let refresh plan memo frame env ~sync =
  let rec go frees changed =
    match frees with
    | [] -> changed
    | (name, i) :: rest ->
      let changed =
        if sync name then begin
          let v = Eval.lookup name env in
          if Value.same frame.slots.(i) v then changed
          else begin
            memo.epoch <- memo.epoch + 1;
            memo.slot_epoch.(i) <- memo.epoch;
            frame.slots.(i) <- v;
            changed + 1
          end
        end
        else changed
      in
      go rest changed
  in
  go plan.frees 0

(* Version-aware slot write for snapshot slots: bumps the epoch only
   when the stored value actually changes, so post-condition memos
   survive across requests whose snapshots are identical. *)
let write_slot_versioned frame i value =
  match frame.memo with
  | None -> frame.slots.(i) <- value
  | Some m ->
    if not (Value.same frame.slots.(i) value) then begin
      m.epoch <- m.epoch + 1;
      m.slot_epoch.(i) <- m.epoch;
      frame.slots.(i) <- value
    end

(* Root-level probe: can this tracked expression replay a cached value
   against [memo] without evaluating?  Two-step API ([cached] then
   [cached_value]) so the hit path allocates nothing. *)
let cached memo tracked =
  tracked.const
  || (tracked.node >= 0
      &&
      let stamp = memo.node_stamp.(tracked.node) in
      stamp >= 0 && deps_clean memo ~mask:tracked.mask ~stamp)

(* Constant tracked expressions ignore the frame entirely. *)
let dummy_frame =
  { slots = [| Value.Undef |]; pre = None; is_pre = false; memo = None }

let cached_value memo tracked =
  if tracked.const then tracked.run dummy_frame
  else memo.node_value.(tracked.node)

let eval c frame = c frame
let check c frame = Value.truth (c frame)

let verdict c frame =
  match Value.truth (c frame) with
  | Value.True -> Eval.Holds
  | Value.False -> Eval.Violated
  | Value.Unknown -> Eval.Undefined_verdict "undefined (compiled)"
