module Json = Cm_json.Json

(* A frame is the compiled counterpart of {!Eval.env}: a pre-sized value
   array indexed by compile-time slot numbers, replacing the
   interpreter's assoc-list lookups.  Iterator binders get scratch slots
   in the same array, written in place during iteration — evaluating a
   compiled contract allocates nothing beyond what the OCL collection
   operations themselves build. *)
type frame = {
  slots : Value.t array;
  pre : frame option;
  is_pre : bool;
}

type plan = {
  free_tbl : (string, int) Hashtbl.t;
  mutable frees : (string * int) list;  (* reversed insertion order *)
  mutable size : int;  (* free slots + iterator scratch slots *)
}

let plan () = { free_tbl = Hashtbl.create 16; frees = []; size = 0 }

let var_slot plan name =
  match Hashtbl.find_opt plan.free_tbl name with
  | Some i -> i
  | None ->
    let i = plan.size in
    plan.size <- plan.size + 1;
    Hashtbl.add plan.free_tbl name i;
    plan.frees <- (name, i) :: plan.frees;
    i

let scratch_slot plan =
  let i = plan.size in
  plan.size <- plan.size + 1;
  i

let plan_vars plan = List.rev_map fst plan.frees

let frame_of_env plan env =
  let slots = Array.make (max 1 plan.size) Value.Undef in
  List.iter
    (fun (name, i) -> slots.(i) <- Eval.lookup name env)
    plan.frees;
  { slots; pre = None; is_pre = false }

let frame_of_bindings plan bindings =
  let slots = Array.make (max 1 plan.size) Value.Undef in
  List.iter
    (fun (name, i) ->
      match List.assoc_opt name bindings with
      | Some json -> slots.(i) <- Value.Json json
      | None -> ())
    plan.frees;
  { slots; pre = None; is_pre = false }

let with_pre ~pre frame = { frame with pre = Some { pre with is_pre = true } }

let write_slot frame i value = frame.slots.(i) <- value
let read_slot frame i = frame.slots.(i)

type t = frame -> Value.t

(* Staging: subtrees whose value cannot depend on the frame are folded
   to constants at compile time; every OCL operation is total and pure,
   so folding (and the short-circuits below) cannot change verdicts. *)
type staged = Const of Value.t | Dyn of t

let run = function Const v -> fun _ -> v | Dyn f -> f

let of_tri = Prim.value_of_tribool

(* [truth_like f] — the connectives only look at the truth of their
   operands, so compile them down to tribool producers. *)
let rec stage plan scope expr =
  match expr with
  | Ast.Bool_lit b -> Const (Prim.value_of_bool b)
  | Ast.Int_lit n -> Const (Value.of_int n)
  | Ast.String_lit s -> Const (Value.of_string s)
  | Ast.Null_lit -> Const (Value.Json Json.Null)
  | Ast.Var name ->
    let i =
      match List.assoc_opt name scope with
      | Some i -> i  (* innermost iterator binder shadows context vars *)
      | None -> var_slot plan name
    in
    Dyn (fun fr -> fr.slots.(i))
  | Ast.Nav (e, prop) ->
    (match stage plan scope e with
     | Const v -> Const (Prim.navigate v prop)
     | Dyn f -> Dyn (fun fr -> Prim.navigate (f fr) prop))
  | Ast.At_pre e ->
    (* Never constant: the result depends on whether a pre-state is
       attached to the frame. *)
    let f = run (stage plan scope e) in
    Dyn
      (fun fr ->
        match fr.pre with
        | Some pre_frame -> f pre_frame
        | None -> if fr.is_pre then f fr else Value.Undef)
  | Ast.Coll (e, op) ->
    (match stage plan scope e with
     | Const v -> Const (Prim.coll op v)
     | Dyn f -> Dyn (fun fr -> Prim.coll op (f fr)))
  | Ast.Member (e, includes, arg) ->
    (match stage plan scope e, stage plan scope arg with
     | Const v, Const x -> Const (Prim.member ~includes v x)
     | ce, cx ->
       let fe = run ce and fx = run cx in
       Dyn (fun fr -> Prim.member ~includes (fe fr) (fx fr)))
  | Ast.Count (e, arg) ->
    (match stage plan scope e, stage plan scope arg with
     | Const v, Const x -> Const (Prim.count v x)
     | ce, cx ->
       let fe = run ce and fx = run cx in
       Dyn (fun fr -> Prim.count (fe fr) (fx fr)))
  | Ast.Iter (e, kind, var, body) ->
    let ce = stage plan scope e in
    let slot = scratch_slot plan in
    let cbody = stage plan ((var, slot) :: scope) body in
    (match ce, cbody with
     | Const cv, Const bv -> Const (Prim.iter kind cv (fun _ -> bv))
     | _ ->
       let fe = run ce and fb = run cbody in
       Dyn
         (fun fr ->
           Prim.iter kind (fe fr) (fun item ->
               fr.slots.(slot) <- item;
               fb fr)))
  | Ast.Unop (Ast.Not, e) ->
    (match stage plan scope e with
     | Const v -> Const (of_tri (Value.tri_not (Value.truth v)))
     | Dyn f -> Dyn (fun fr -> of_tri (Value.tri_not (Value.truth (f fr)))))
  | Ast.Unop (Ast.Neg, e) ->
    (match stage plan scope e with
     | Const v -> Const (Prim.neg v)
     | Dyn f -> Dyn (fun fr -> Prim.neg (f fr)))
  | Ast.Binop (Ast.And, a, b) -> stage_and plan scope a b
  | Ast.Binop (Ast.Or, a, b) -> stage_or plan scope a b
  | Ast.Binop (Ast.Implies, a, b) -> stage_implies plan scope a b
  | Ast.Binop (Ast.Xor, a, b) ->
    (match stage plan scope a, stage plan scope b with
     | Const va, Const vb ->
       Const (of_tri (Value.tri_xor (Value.truth va) (Value.truth vb)))
     | ca, cb ->
       let fa = run ca and fb = run cb in
       Dyn
         (fun fr ->
           of_tri (Value.tri_xor (Value.truth (fa fr)) (Value.truth (fb fr)))))
  | Ast.Binop (Ast.Eq, a, b) ->
    (match stage plan scope a, stage plan scope b with
     | Const va, Const vb -> Const (of_tri (Value.equal_value va vb))
     | ca, cb ->
       let fa = run ca and fb = run cb in
       Dyn (fun fr -> of_tri (Value.equal_value (fa fr) (fb fr))))
  | Ast.Binop (Ast.Neq, a, b) ->
    (match stage plan scope a, stage plan scope b with
     | Const va, Const vb ->
       Const (of_tri (Value.tri_not (Value.equal_value va vb)))
     | ca, cb ->
       let fa = run ca and fb = run cb in
       Dyn
         (fun fr -> of_tri (Value.tri_not (Value.equal_value (fa fr) (fb fr)))))
  | Ast.Binop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, a, b) ->
    (match stage plan scope a, stage plan scope b with
     | Const va, Const vb -> Const (Prim.compare op va vb)
     | ca, cb ->
       let fa = run ca and fb = run cb in
       Dyn (fun fr -> Prim.compare op (fa fr) (fb fr)))
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div) as op, a, b) ->
    (match stage plan scope a, stage plan scope b with
     | Const va, Const vb -> Const (Prim.arith op va vb)
     | ca, cb ->
       let fa = run ca and fb = run cb in
       Dyn (fun fr -> Prim.arith op (fa fr) (fb fr)))

(* Kleene short-circuits: [False and _], [True or _] and [False implies _]
   decide without the second operand; all other combinations still
   evaluate it (Unknown must absorb a later False/True correctly). *)
and stage_and plan scope a b =
  match stage plan scope a, stage plan scope b with
  | Const va, cb -> stage_and_const plan (Value.truth va) cb
  | ca, Const vb ->
    (* symmetric fold: tri_and is commutative and evaluation is pure *)
    stage_and_const plan (Value.truth vb) ca
  | Dyn fa, Dyn fb ->
    Dyn
      (fun fr ->
        match Value.truth (fa fr) with
        | Value.False -> Prim.v_false
        | ta -> of_tri (Value.tri_and ta (Value.truth (fb fr))))

and stage_and_const _plan ta cb =
  match ta with
  | Value.False -> Const Prim.v_false
  | Value.True ->
    (match cb with
     | Const vb -> Const (of_tri (Value.truth vb))
     | Dyn fb -> Dyn (fun fr -> of_tri (Value.truth (fb fr))))
  | Value.Unknown ->
    (match cb with
     | Const vb -> Const (of_tri (Value.tri_and Value.Unknown (Value.truth vb)))
     | Dyn fb ->
       Dyn
         (fun fr -> of_tri (Value.tri_and Value.Unknown (Value.truth (fb fr)))))

and stage_or plan scope a b =
  match stage plan scope a, stage plan scope b with
  | Const va, cb -> stage_or_const plan (Value.truth va) cb
  | ca, Const vb -> stage_or_const plan (Value.truth vb) ca
  | Dyn fa, Dyn fb ->
    Dyn
      (fun fr ->
        match Value.truth (fa fr) with
        | Value.True -> Prim.v_true
        | ta -> of_tri (Value.tri_or ta (Value.truth (fb fr))))

and stage_or_const _plan ta cb =
  match ta with
  | Value.True -> Const Prim.v_true
  | Value.False ->
    (match cb with
     | Const vb -> Const (of_tri (Value.truth vb))
     | Dyn fb -> Dyn (fun fr -> of_tri (Value.truth (fb fr))))
  | Value.Unknown ->
    (match cb with
     | Const vb -> Const (of_tri (Value.tri_or Value.Unknown (Value.truth vb)))
     | Dyn fb ->
       Dyn
         (fun fr -> of_tri (Value.tri_or Value.Unknown (Value.truth (fb fr)))))

and stage_implies plan scope a b =
  match stage plan scope a, stage plan scope b with
  | Const va, cb ->
    (match Value.truth va with
     | Value.False -> Const Prim.v_true
     | ta ->
       (match cb with
        | Const vb -> Const (of_tri (Value.tri_implies ta (Value.truth vb)))
        | Dyn fb ->
          Dyn (fun fr -> of_tri (Value.tri_implies ta (Value.truth (fb fr))))))
  | ca, Const vb ->
    (match Value.truth vb with
     | Value.True -> Const Prim.v_true
     | tb ->
       let fa = run ca in
       Dyn (fun fr -> of_tri (Value.tri_implies (Value.truth (fa fr)) tb)))
  | Dyn fa, Dyn fb ->
    Dyn
      (fun fr ->
        match Value.truth (fa fr) with
        | Value.False -> Prim.v_true
        | ta -> of_tri (Value.tri_implies ta (Value.truth (fb fr))))

let compile plan expr = run (stage plan [] (Simplify.simplify expr))

let compile_raw plan expr = run (stage plan [] expr)

let eval c frame = c frame
let check c frame = Value.truth (c frame)

let verdict c frame =
  match Value.truth (c frame) with
  | Value.True -> Eval.Holds
  | Value.False -> Eval.Violated
  | Value.Unknown -> Eval.Undefined_verdict "undefined (compiled)"
