type fields = All | Fields of string list

type t = (string * fields) list

let empty = []

let normalize_fields = function
  | All -> All
  | Fields fs -> Fields (List.sort_uniq String.compare fs)

let merge_fields a b =
  match a, b with
  | All, _ | _, All -> All
  | Fields xs, Fields ys -> normalize_fields (Fields (xs @ ys))

let add root fs acc =
  let merged =
    match List.assoc_opt root acc with
    | Some existing -> merge_fields existing fs
    | None -> normalize_fields fs
  in
  (root, merged) :: List.remove_assoc root acc

let normalize acc =
  List.sort (fun (a, _) (b, _) -> String.compare a b) acc

let of_expr expr =
  let rec walk bound acc = function
    | Ast.Bool_lit _ | Ast.Int_lit _ | Ast.String_lit _ | Ast.Null_lit -> acc
    | Ast.Var name -> if List.mem name bound then acc else add name All acc
    | Ast.Nav (Ast.Var name, field) when not (List.mem name bound) ->
      add name (Fields [ field ]) acc
    | Ast.Nav (e, _) -> walk bound acc e
    | Ast.At_pre e | Ast.Coll (e, _) | Ast.Unop (_, e) -> walk bound acc e
    | Ast.Member (e, _, x) | Ast.Count (e, x) ->
      walk bound (walk bound acc e) x
    | Ast.Iter (e, _, var, body) ->
      (* the binder shadows any same-named root inside the body *)
      walk (var :: bound) (walk bound acc e) body
    | Ast.Binop (_, a, b) -> walk bound (walk bound acc a) b
  in
  normalize (walk [] [] expr)

let union a b = normalize (List.fold_left (fun acc (r, fs) -> add r fs acc) a b)

let of_exprs exprs = List.fold_left (fun acc e -> union acc (of_expr e)) empty exprs

let roots t = List.map fst t

let mentions t root = List.mem_assoc root t

let needs_field t ~root field =
  match List.assoc_opt root t with
  | None -> false
  | Some All -> true
  | Some (Fields fs) -> List.mem field fs

(* Does this footprint read any of the given roots?  Used by the
   delta-driven evaluator to decide whether a mutation's touched-path
   set can affect a contract at all. *)
let intersects t touched_roots =
  List.exists (fun (root, _) -> List.mem root touched_roots) t

let is_total t root =
  match List.assoc_opt root t with Some All -> true | Some (Fields _) | None -> false

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf (root, fs) ->
         match fs with
         | All -> Format.fprintf ppf "%s:*" root
         | Fields fields ->
           Format.fprintf ppf "%s:{%s}" root (String.concat "," fields)))
    t

let to_json t =
  Cm_json.Json.obj
    (List.map
       (fun (root, fs) ->
         ( root,
           match fs with
           | All -> Cm_json.Json.string "*"
           | Fields fields ->
             Cm_json.Json.list (List.map Cm_json.Json.string fields) ))
       t)
