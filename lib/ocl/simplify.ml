let rec disjuncts = function
  | Ast.Binop (Ast.Or, a, b) -> disjuncts a @ disjuncts b
  | e -> [ e ]

let rec conjuncts = function
  | Ast.Binop (Ast.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let dedup exprs =
  let rec loop seen = function
    | [] -> List.rev seen
    | e :: rest ->
      if List.exists (Ast.equal e) seen then loop seen rest
      else loop (e :: seen) rest
  in
  loop [] exprs

let negate_comparison = function
  | Ast.Binop (Ast.Eq, a, b) -> Some (Ast.Binop (Ast.Neq, a, b))
  | Ast.Binop (Ast.Neq, a, b) -> Some (Ast.Binop (Ast.Eq, a, b))
  | Ast.Binop (Ast.Lt, a, b) -> Some (Ast.Binop (Ast.Ge, a, b))
  | Ast.Binop (Ast.Le, a, b) -> Some (Ast.Binop (Ast.Gt, a, b))
  | Ast.Binop (Ast.Gt, a, b) -> Some (Ast.Binop (Ast.Le, a, b))
  | Ast.Binop (Ast.Ge, a, b) -> Some (Ast.Binop (Ast.Lt, a, b))
  | Ast.Coll (e, Ast.Is_empty) -> Some (Ast.Coll (e, Ast.Not_empty))
  | Ast.Coll (e, Ast.Not_empty) -> Some (Ast.Coll (e, Ast.Is_empty))
  | Ast.Member (e, incl, x) -> Some (Ast.Member (e, not incl, x))
  | _ -> None

let rec step expr =
  match expr with
  | Ast.Bool_lit _ | Ast.Int_lit _ | Ast.String_lit _ | Ast.Null_lit
  | Ast.Var _ -> expr
  | Ast.Nav (e, prop) -> Ast.Nav (step e, prop)
  | Ast.At_pre e -> Ast.At_pre (step e)
  | Ast.Coll (e, op) -> Ast.Coll (step e, op)
  | Ast.Member (e, incl, x) -> Ast.Member (step e, incl, step x)
  | Ast.Count (e, x) -> Ast.Count (step e, step x)
  | Ast.Iter (e, kind, var, body) -> Ast.Iter (step e, kind, var, step body)
  | Ast.Unop (Ast.Not, inner) ->
    (match step inner with
     | Ast.Bool_lit b -> Ast.Bool_lit (not b)
     | Ast.Unop (Ast.Not, e) -> e
     | simplified ->
       (match negate_comparison simplified with
        | Some negated -> negated
        | None -> Ast.Unop (Ast.Not, simplified)))
  | Ast.Unop (Ast.Neg, inner) ->
    (match step inner with
     | Ast.Int_lit n -> Ast.Int_lit (-n)
     | Ast.Unop (Ast.Neg, e) -> e
     | simplified -> Ast.Unop (Ast.Neg, simplified))
  | Ast.Binop (Ast.And, _, _) ->
    let parts =
      conjuncts expr |> List.map step
      |> List.concat_map conjuncts
      |> List.filter (fun e -> e <> Ast.Bool_lit true)
      |> dedup
    in
    if List.exists (fun e -> e = Ast.Bool_lit false) parts then
      Ast.Bool_lit false
    else Ast.conj parts
  | Ast.Binop (Ast.Or, _, _) ->
    let parts =
      disjuncts expr |> List.map step
      |> List.concat_map disjuncts
      |> List.filter (fun e -> e <> Ast.Bool_lit false)
      |> dedup
    in
    if List.exists (fun e -> e = Ast.Bool_lit true) parts then Ast.Bool_lit true
    else Ast.disj parts
  | Ast.Binop (Ast.Implies, a, b) ->
    (match step a, step b with
     | Ast.Bool_lit true, b' -> b'
     | Ast.Bool_lit false, _ -> Ast.Bool_lit true
     | _, Ast.Bool_lit true -> Ast.Bool_lit true
     (* No [a implies a -> true]: under Kleene semantics
        Unknown implies Unknown is Unknown, so the rewrite is unsound
        for any operand that can evaluate to Unknown. *)
     | a', b' -> Ast.Binop (Ast.Implies, a', b'))
  | Ast.Binop (Ast.Xor, a, b) ->
    (match step a, step b with
     | Ast.Bool_lit x, Ast.Bool_lit y -> Ast.Bool_lit (x <> y)
     | Ast.Bool_lit false, b' -> b'
     | a', Ast.Bool_lit false -> a'
     | a', b' -> Ast.Binop (Ast.Xor, a', b'))
  | Ast.Binop (Ast.Eq, a, b) ->
    let a' = step a and b' = step b in
    (match a', b' with
     | Ast.Bool_lit x, Ast.Bool_lit y -> Ast.Bool_lit (x = y)
     | Ast.Int_lit x, Ast.Int_lit y -> Ast.Bool_lit (x = y)
     | Ast.String_lit x, Ast.String_lit y -> Ast.Bool_lit (x = y)
     | _ -> Ast.Binop (Ast.Eq, a', b'))
  | Ast.Binop (Ast.Neq, a, b) ->
    let a' = step a and b' = step b in
    (match a', b' with
     | Ast.Bool_lit x, Ast.Bool_lit y -> Ast.Bool_lit (x <> y)
     | Ast.Int_lit x, Ast.Int_lit y -> Ast.Bool_lit (x <> y)
     | Ast.String_lit x, Ast.String_lit y -> Ast.Bool_lit (x <> y)
     | _ -> Ast.Binop (Ast.Neq, a', b'))
  | Ast.Binop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, a, b) ->
    let a' = step a and b' = step b in
    (match a', b' with
     | Ast.Int_lit x, Ast.Int_lit y ->
       let holds =
         match op with
         | Ast.Lt -> x < y
         | Ast.Le -> x <= y
         | Ast.Gt -> x > y
         | Ast.Ge -> x >= y
         | _ -> false
       in
       Ast.Bool_lit holds
     | _ -> Ast.Binop (op, a', b'))
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div) as op, a, b) ->
    let a' = step a and b' = step b in
    (match a', b', op with
     | Ast.Int_lit x, Ast.Int_lit y, Ast.Add -> Ast.Int_lit (x + y)
     | Ast.Int_lit x, Ast.Int_lit y, Ast.Sub -> Ast.Int_lit (x - y)
     | Ast.Int_lit x, Ast.Int_lit y, Ast.Mul -> Ast.Int_lit (x * y)
     | Ast.Int_lit x, Ast.Int_lit y, Ast.Div when y <> 0 -> Ast.Int_lit (x / y)
     | _ -> Ast.Binop (op, a', b'))

let simplify expr =
  let rec fixpoint current fuel =
    if fuel = 0 then current
    else
      let next = step current in
      if Ast.equal next current then current else fixpoint next (fuel - 1)
  in
  fixpoint expr 32

let rec nnf expr =
  match expr with
  | Ast.Unop (Ast.Not, inner) -> nnf_neg inner
  | Ast.Binop (Ast.Implies, a, b) ->
    Ast.Binop (Ast.Or, nnf_neg a, nnf b)
  | Ast.Binop (Ast.Xor, a, b) ->
    Ast.Binop
      ( Ast.Or,
        Ast.Binop (Ast.And, nnf a, nnf_neg b),
        Ast.Binop (Ast.And, nnf_neg a, nnf b) )
  | Ast.Binop ((Ast.And | Ast.Or) as op, a, b) -> Ast.Binop (op, nnf a, nnf b)
  | Ast.Bool_lit _ | Ast.Int_lit _ | Ast.String_lit _ | Ast.Null_lit
  | Ast.Var _ | Ast.Nav _ | Ast.At_pre _ | Ast.Coll _ | Ast.Member _
  | Ast.Count _ | Ast.Iter _ | Ast.Unop (Ast.Neg, _)
  | Ast.Binop
      ( ( Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Add
        | Ast.Sub | Ast.Mul | Ast.Div ),
        _,
        _ ) -> expr

and nnf_neg expr =
  match expr with
  | Ast.Bool_lit b -> Ast.Bool_lit (not b)
  | Ast.Unop (Ast.Not, inner) -> nnf inner
  | Ast.Binop (Ast.And, a, b) -> Ast.Binop (Ast.Or, nnf_neg a, nnf_neg b)
  | Ast.Binop (Ast.Or, a, b) -> Ast.Binop (Ast.And, nnf_neg a, nnf_neg b)
  | Ast.Binop (Ast.Implies, a, b) -> Ast.Binop (Ast.And, nnf a, nnf_neg b)
  | Ast.Binop (Ast.Xor, a, b) ->
    (* not (a xor b) = a = b as booleans *)
    Ast.Binop
      ( Ast.Or,
        Ast.Binop (Ast.And, nnf a, nnf b),
        Ast.Binop (Ast.And, nnf_neg a, nnf_neg b) )
  | other ->
    (match negate_comparison other with
     | Some negated -> negated
     | None -> Ast.Unop (Ast.Not, nnf other))
