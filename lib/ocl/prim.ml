module Json = Cm_json.Json

(* Shared, preallocated truth values: the hot path returns these instead
   of allocating a fresh [Json (Bool _)] per connective. *)
let v_true = Value.of_bool true
let v_false = Value.of_bool false

let value_of_bool b = if b then v_true else v_false

let value_of_tribool = function
  | Value.True -> v_true
  | Value.False -> v_false
  | Value.Unknown -> Value.Undef

let navigate value prop =
  match value with
  | Value.Undef -> Value.Undef
  | Value.Json (Json.Obj _ as obj) ->
    (match Json.member prop obj with
     | Some v -> Value.Json v
     | None -> Value.Undef)
  | Value.Json (Json.List items) ->
    (* OCL collect shorthand: navigating a collection navigates each
       element, dropping undefined results. *)
    let collected =
      List.filter_map
        (fun item ->
          match item with
          | Json.Obj _ -> Json.member prop item
          | _ -> None)
        items
    in
    Value.Json (Json.List collected)
  | Value.Json _ -> Value.Undef

let numeric = function
  | Value.Json (Json.Int n) -> Some (`Int n)
  | Value.Json (Json.Float f) -> Some (`Float f)
  | _ -> None

let arith op a b =
  match numeric a, numeric b with
  | Some (`Int x), Some (`Int y) ->
    (match op with
     | Ast.Add -> Value.of_int (x + y)
     | Ast.Sub -> Value.of_int (x - y)
     | Ast.Mul -> Value.of_int (x * y)
     | Ast.Div -> if y = 0 then Value.Undef else Value.of_int (x / y)
     | _ -> Value.Undef)
  | Some nx, Some ny ->
    let to_f = function `Int n -> float_of_int n | `Float f -> f in
    let x = to_f nx and y = to_f ny in
    (match op with
     | Ast.Add -> Value.Json (Json.Float (x +. y))
     | Ast.Sub -> Value.Json (Json.Float (x -. y))
     | Ast.Mul -> Value.Json (Json.Float (x *. y))
     | Ast.Div -> if y = 0. then Value.Undef else Value.Json (Json.Float (x /. y))
     | _ -> Value.Undef)
  | _, _ -> Value.Undef

let neg value =
  match numeric value with
  | Some (`Int n) -> Value.of_int (-n)
  | Some (`Float f) -> Value.Json (Json.Float (-.f))
  | None -> Value.Undef

let coll_sum items =
  let rec loop acc_int acc_float all_int = function
    | [] ->
      if all_int then Value.of_int acc_int
      else Value.Json (Json.Float (acc_float +. float_of_int acc_int))
    | item :: rest ->
      (match numeric item with
       | Some (`Int n) -> loop (acc_int + n) acc_float all_int rest
       | Some (`Float f) -> loop acc_int (acc_float +. f) false rest
       | None -> Value.Undef)
  in
  loop 0 0. true items

let coll op value =
  let items = Value.as_collection value in
  match op with
  | Ast.Size -> Value.of_int (List.length items)
  | Ast.Is_empty -> value_of_bool (items = [])
  | Ast.Not_empty -> value_of_bool (items <> [])
  | Ast.Sum -> coll_sum items
  | Ast.First -> (match items with first :: _ -> first | [] -> Value.Undef)
  | Ast.Last ->
    (match List.rev items with last :: _ -> last | [] -> Value.Undef)
  | Ast.As_set ->
    let rec dedup seen = function
      | [] -> List.rev seen
      | item :: rest ->
        if
          List.exists
            (fun s -> Value.equal_value s item = Value.True)
            seen
        then dedup seen rest
        else dedup (item :: seen) rest
    in
    let distinct =
      dedup [] items
      |> List.filter_map (function
           | Value.Json j -> Some j
           | Value.Undef -> None)
    in
    Value.Json (Json.List distinct)

let member ~includes value needle =
  let items = Value.as_collection value in
  match needle with
  | Value.Undef -> Value.Undef
  | Value.Json _ ->
    let found =
      List.exists (fun item -> Value.equal_value item needle = Value.True) items
    in
    value_of_bool (if includes then found else not found)

let count value needle =
  let items = Value.as_collection value in
  match needle with
  | Value.Undef -> Value.Undef
  | Value.Json _ ->
    Value.of_int
      (List.length
         (List.filter
            (fun item -> Value.equal_value item needle = Value.True)
            items))

let iter kind value body =
  let items = Value.as_collection value in
  let body_truth item = Value.truth (body item) in
  match kind with
  | Ast.For_all ->
    value_of_tribool
      (List.fold_left
         (fun acc item -> Value.tri_and acc (body_truth item))
         Value.True items)
  | Ast.Exists ->
    value_of_tribool
      (List.fold_left
         (fun acc item -> Value.tri_or acc (body_truth item))
         Value.False items)
  | Ast.One ->
    let count_true = ref 0 and unknown = ref false in
    List.iter
      (fun item ->
        match body_truth item with
        | Value.True -> incr count_true
        | Value.False -> ()
        | Value.Unknown -> unknown := true)
      items;
    if !unknown then Value.Undef else value_of_bool (!count_true = 1)
  | Ast.Select | Ast.Reject ->
    let keep_on = if kind = Ast.Select then Value.True else Value.False in
    let rec loop acc = function
      | [] -> Value.Json (Json.List (List.rev acc))
      | item :: rest ->
        (match body_truth item with
         | Value.Unknown -> Value.Undef
         | t ->
           let acc =
             if t = keep_on then
               match item with
               | Value.Json j -> j :: acc
               | Value.Undef -> acc
             else acc
           in
           loop acc rest)
    in
    loop [] items
  | Ast.Any ->
    let rec find = function
      | [] -> Value.Undef
      | item :: rest ->
        (match body_truth item with
         | Value.True -> item
         | Value.False -> find rest
         | Value.Unknown -> Value.Undef)
    in
    find items
  | Ast.Is_unique ->
    let values = List.map body items in
    if List.exists (fun v -> v = Value.Undef) values then Value.Undef
    else begin
      let rec pairwise = function
        | [] -> true
        | v :: rest ->
          List.for_all (fun w -> Value.equal_value v w <> Value.True) rest
          && pairwise rest
      in
      value_of_bool (pairwise values)
    end
  | Ast.Collect ->
    let mapped =
      List.filter_map
        (fun item ->
          match body item with
          | Value.Json j -> Some j
          | Value.Undef -> None)
        items
    in
    Value.Json (Json.List mapped)

let compare op a b =
  match Value.compare_order a b with
  | None -> Value.Undef
  | Some c ->
    let holds =
      match op with
      | Ast.Lt -> c < 0
      | Ast.Le -> c <= 0
      | Ast.Gt -> c > 0
      | Ast.Ge -> c >= 0
      | _ -> false
    in
    value_of_bool holds
