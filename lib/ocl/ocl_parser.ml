type error = { position : int; message : string }

let pp_error ppf { position; message } =
  Fmt.pf ppf "OCL parse error at offset %d: %s" position message

exception Parse_error of error

type state = { mutable tokens : (Lexer.token * int) list }

let peek st =
  match st.tokens with
  | (token, pos) :: _ -> (token, pos)
  | [] -> (Lexer.EOF, 0)

let advance st =
  match st.tokens with
  | _ :: rest -> st.tokens <- rest
  | [] -> ()

let fail pos message = raise (Parse_error { position = pos; message })

let expect st expected description =
  let token, pos = peek st in
  if token = expected then advance st
  else
    fail pos (Fmt.str "expected %s, found %a" description Lexer.pp_token token)

let coll_op_of_name = function
  | "size" -> Some Ast.Size
  | "isEmpty" -> Some Ast.Is_empty
  | "notEmpty" -> Some Ast.Not_empty
  | "sum" -> Some Ast.Sum
  | "first" -> Some Ast.First
  | "last" -> Some Ast.Last
  | "asSet" -> Some Ast.As_set
  | _ -> None

let iter_kind_of_name = function
  | "forAll" -> Some Ast.For_all
  | "exists" -> Some Ast.Exists
  | "select" -> Some Ast.Select
  | "reject" -> Some Ast.Reject
  | "collect" -> Some Ast.Collect
  | "one" -> Some Ast.One
  | "any" -> Some Ast.Any
  | "isUnique" -> Some Ast.Is_unique
  | _ -> None

(* The [pre] keyword doubles as an ordinary property / variable name when
   it is not immediately applied: [pre(e)] is the pre-state operator but
   [x.pre] navigates a property called "pre". *)
let ident_like st =
  let token, pos = peek st in
  match token with
  | Lexer.IDENT name ->
    advance st;
    name
  | Lexer.PRE ->
    advance st;
    "pre"
  | other -> fail pos (Fmt.str "expected identifier, found %a" Lexer.pp_token other)

let rec parse_implies st =
  let left = parse_xor st in
  match peek st with
  | Lexer.IMPLIES, _ ->
    advance st;
    let right = parse_implies st in
    Ast.Binop (Ast.Implies, left, right)
  | _ -> left

and parse_xor st =
  let rec loop left =
    match peek st with
    | Lexer.XOR, _ ->
      advance st;
      loop (Ast.Binop (Ast.Xor, left, parse_or st))
    | _ -> left
  in
  loop (parse_or st)

and parse_or st =
  let rec loop left =
    match peek st with
    | Lexer.OR, _ ->
      advance st;
      loop (Ast.Binop (Ast.Or, left, parse_and st))
    | _ -> left
  in
  loop (parse_and st)

and parse_and st =
  let rec loop left =
    match peek st with
    | Lexer.AND, _ ->
      advance st;
      loop (Ast.Binop (Ast.And, left, parse_equality st))
    | _ -> left
  in
  loop (parse_equality st)

and parse_equality st =
  let rec loop left =
    match peek st with
    | Lexer.EQ, _ ->
      advance st;
      loop (Ast.Binop (Ast.Eq, left, parse_relational st))
    | Lexer.NEQ, _ ->
      advance st;
      loop (Ast.Binop (Ast.Neq, left, parse_relational st))
    | _ -> left
  in
  loop (parse_relational st)

and parse_relational st =
  let left = parse_additive st in
  let op =
    match peek st with
    | Lexer.LT, _ -> Some Ast.Lt
    | Lexer.LE, _ -> Some Ast.Le
    | Lexer.GT, _ -> Some Ast.Gt
    | Lexer.GE, _ -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | Some op ->
    advance st;
    Ast.Binop (op, left, parse_additive st)
  | None -> left

and parse_additive st =
  let rec loop left =
    match peek st with
    | Lexer.PLUS, _ ->
      advance st;
      loop (Ast.Binop (Ast.Add, left, parse_multiplicative st))
    | Lexer.MINUS, _ ->
      advance st;
      loop (Ast.Binop (Ast.Sub, left, parse_multiplicative st))
    | _ -> left
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop left =
    match peek st with
    | Lexer.STAR, _ ->
      advance st;
      loop (Ast.Binop (Ast.Mul, left, parse_unary st))
    | Lexer.SLASH, _ ->
      advance st;
      loop (Ast.Binop (Ast.Div, left, parse_unary st))
    | _ -> left
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.NOT, _ ->
    advance st;
    Ast.Unop (Ast.Not, parse_unary st)
  | Lexer.MINUS, _ ->
    advance st;
    (* Fold the sign into integer literals so that negative constants
       (as produced by constant folding) print and re-parse to the same
       AST. *)
    (match parse_unary st with
     | Ast.Int_lit n -> Ast.Int_lit (-n)
     | inner -> Ast.Unop (Ast.Neg, inner))
  | _ -> parse_postfix st

and parse_postfix st =
  let rec loop expr =
    match peek st with
    | Lexer.DOT, _ ->
      advance st;
      let prop = ident_like st in
      loop (Ast.Nav (expr, prop))
    | Lexer.AT_PRE, _ ->
      advance st;
      loop (Ast.At_pre expr)
    | Lexer.ARROW, pos ->
      advance st;
      loop (parse_arrow_call st pos expr)
    | _ -> expr
  in
  loop (parse_primary st)

and parse_arrow_call st pos source =
  let name = ident_like st in
  expect st Lexer.LPAREN "'('";
  match coll_op_of_name name with
  | Some op ->
    expect st Lexer.RPAREN "')'";
    Ast.Coll (source, op)
  | None ->
    (match name with
     | "includes" | "excludes" ->
       let arg = parse_implies st in
       expect st Lexer.RPAREN "')'";
       Ast.Member (source, name = "includes", arg)
     | "count" ->
       let arg = parse_implies st in
       expect st Lexer.RPAREN "')'";
       Ast.Count (source, arg)
     | _ ->
       (match iter_kind_of_name name with
        | Some kind ->
          let first = parse_implies st in
          (match peek st with
           | Lexer.BAR, bar_pos ->
             advance st;
             let binder =
               match first with
               | Ast.Var v -> v
               | _ -> fail bar_pos "iterator binder must be a plain name"
             in
             let body = parse_implies st in
             expect st Lexer.RPAREN "')'";
             Ast.Iter (source, kind, binder, body)
           | _ ->
             expect st Lexer.RPAREN "')'";
             (* Implicit iterator: the body refers to the element as
                [self]. *)
             Ast.Iter (source, kind, "self", first))
        | None -> fail pos (Printf.sprintf "unknown collection operation %S" name)))

and parse_primary st =
  let token, pos = peek st in
  match token with
  | Lexer.TRUE ->
    advance st;
    Ast.Bool_lit true
  | Lexer.FALSE ->
    advance st;
    Ast.Bool_lit false
  | Lexer.NULL ->
    advance st;
    Ast.Null_lit
  | Lexer.INT n ->
    advance st;
    Ast.Int_lit n
  | Lexer.STRING s ->
    advance st;
    Ast.String_lit s
  | Lexer.PRE ->
    advance st;
    (match peek st with
     | Lexer.LPAREN, _ ->
       advance st;
       let inner = parse_implies st in
       expect st Lexer.RPAREN "')'";
       Ast.At_pre inner
     | _ -> Ast.Var "pre")
  | Lexer.IDENT name ->
    advance st;
    Ast.Var name
  | Lexer.LPAREN ->
    advance st;
    let inner = parse_implies st in
    expect st Lexer.RPAREN "')'";
    inner
  | other -> fail pos (Fmt.str "unexpected %a" Lexer.pp_token other)

let parse input =
  match Lexer.tokenize input with
  | Error { Lexer.position; message } -> Error { position; message }
  | Ok tokens ->
    let st = { tokens } in
    (match
       let expr = parse_implies st in
       (match peek st with
        | Lexer.EOF, _ -> ()
        | other, pos ->
          fail pos (Fmt.str "trailing %a after expression" Lexer.pp_token other));
       expr
     with
     | expr -> Ok expr
     | exception Parse_error err -> Error err)

let parse_exn input =
  match parse input with
  | Ok expr -> expr
  | Error err -> failwith (Fmt.str "%a" pp_error err)
