(** The cloud monitor: a contract-checking proxy over a private cloud.

    Implements the workflow of Fig. 2.  Each incoming request is matched
    against the URI templates derived from the resource model; the
    matching trigger's contract is evaluated over the observed pre-state;
    the request is forwarded (or blocked, depending on {!mode}); the
    postcondition is evaluated over the observed post-state against the
    snapshot taken before forwarding; and a conformance verdict is
    logged.

    Two modes serve the paper's two uses:
    - {b Enforce} — the proxy of Fig. 2: a request whose precondition
      fails is {e not} forwarded (403 with a diagnostic body); a
      postcondition violation turns the response into a 500-class
      diagnostic.  For developers deploying the monitor in front of the
      cloud.
    - {b Oracle} — the automated-testing use (§III-B, user 4): every
      request is forwarded and the monitor classifies the exchange,
      which is how authorization mutants are detected. *)

val log_src : Logs.src
(** The monitor's log source ("cloudmon.monitor"): violations at
    [Warning], every exchange at [Debug].  Enable a {!Logs} reporter in
    the host application to stream verdicts. *)

type mode =
  | Enforce
  | Oracle

type degradation =
  | Fail_closed
      (** when monitoring cannot complete (circuit open), reject the
          request with a 503 — certainty over availability *)
  | Fail_open_logged
      (** forward the request raw and unmonitored, logging the exchange
          as [Degraded] — availability over certainty (the default) *)

type pre_image = {
  pi_pre_verdict : Cm_ocl.Eval.verdict;
  pi_auth : Cm_ocl.Value.tribool option;
      (** authorization guard truth; [None] when the contract has no
          authorization guard *)
  pi_functional : Cm_ocl.Value.tribool;
  pi_covered : string list;
  pi_snapshot : (string * Cm_ocl.Value.t) list option;
      (** [Lean] snapshot slot values; [None] under the [Full] strategy
          (whose snapshots hold a live frame and cannot be persisted) *)
}
(** The pre-phase conclusion of a contracted request, in serializable
    form.  A crash-recovery journal persists this {e before} the
    request is forwarded (write-ahead); {!resume} finishes the exchange
    from it after a restart, because once the effect may have been
    applied the pre-state can no longer be observed truthfully. *)

type config = {
  mode : mode;
  strategy : Cm_contracts.Runtime.strategy;
  engine : Cm_contracts.Runtime.engine;
      (** [Compiled] (the default) checks contracts through staged
          closures; [Interpreted] walks the AST on every check.  Both
          produce identical verdicts — the interpreter remains as the
          executable semantics and benchmark baseline. *)
  eval : Cm_contracts.Runtime.eval_mode;
      (** [Incremental] (the default, effective with [Compiled]) keeps
          one persistent frame per contract, diffs re-observed values in
          and replays memoized verdicts when nothing a check depends on
          changed.  Verdict-equivalent to [Full_eval]: the diff is over
          observed {e values}, never trusted path deltas (see
          [trust_path_delta]). *)
  trust_path_delta : bool;
      (** Trust the {!Delta} touched-path analysis: roots whose
          templates no forwarded mutation overlapped since a contract's
          last observation are skipped without even value-diffing them.
          Saves the per-root diff, but assumes mutations only become
          visible through the monitor (stale or out-of-band reads may
          then be replayed) — off by default; the value diff alone
          already gives memoized replays. *)
  service_token : string;  (** the monitor's own cloud credentials *)
  service_token_for : (string -> string option) option;
      (** Per-project service credentials: clouds scope tokens to one
          project, so a monitor serving several tenants resolves the
          observation token from the classified project id ([None]
          falls back to [service_token]). *)
  resources : Cm_uml.Resource_model.t;
  behavior : Cm_uml.Behavior_model.t;
  security : Cm_contracts.Generate.security option;
  stability_check : bool;
      (** Monitoring is not transactional: another client writing between
          the monitored call and the post-state observation makes a
          correct cloud look like a postcondition violator.  With the
          stability check on, a would-be post violation triggers a second
          observation; if the two observations disagree the verdict is
          downgraded to [Undefined] ("concurrent interference") instead
          of a false alarm.  Off by default (two extra observation GETs
          per violation). *)
  resilience : Resilience.policy option;
      (** When set, every backend call — forwarded requests and
          observation GETs alike — goes through a {!Resilience} layer:
          per-attempt timeouts, bounded retries with deterministic
          backoff, idempotency keys on retried mutations, envelope
          validation on observation reads, and a per-route circuit
          breaker.  [None] (the default) forwards raw, as before. *)
  degradation : degradation;
  clock : Cm_core.Clock.t option;
      (** The virtual clock the resilience layer times against.  Pass
          the same clock the (simulated) backend advances; when [None] a
          private clock is created (fine for latency-free backends). *)
  footprint_pruning : bool;
      (** Restrict observation GETs to the matched contract's static
          read-set ({!Cm_ocl.Footprint}).  Verdict-preserving: pruned
          state is state no contract expression can read.  On by
          default. *)
  cache : Obs_cache.scope;
      (** Observation-cache scope.  [Per_request] (the default) reuses
          reads only within one exchange — sound under arbitrary
          out-of-band writers between requests.  [Cross_request] also
          reuses across exchanges (invalidated on forwarded mutations) —
          sound under the single-writer-per-tenant discipline the shard
          layer enforces; out-of-band writers must {!flush_cache}. *)
  timings : bool;
      (** Record per-phase timing into each outcome's
          [Outcome.phases] (wall clock, or the virtual [clock] when one
          is configured).  Off by default. *)
  journal_pre : (pre_image -> unit) option;
      (** Write-ahead hook: called with the pre-phase conclusion of a
          contracted request after evaluation and before forwarding.
          [Cm_journal.Jmonitor] appends the image to its event log
          here. *)
  journal_barrier : (unit -> unit) option;
      (** Called immediately before {e any} backend forward —
          monitored, uncontracted, and fail-open alike.  The journal
          syncs here, establishing the recovery invariant "forwarded
          implies durably journaled". *)
  crash : Cm_core.Crash.t option;
      (** Crash-point injection: when set, the monitor announces the
          sites [monitor.after-forward] and [monitor.after-invalidate]
          to it (the journal layer adds its own).  An armed instance
          kills the current request with [Cm_core.Crash.Crashed], which
          deliberately escapes exception containment. *)
}

val default_config :
  ?mode:mode ->
  ?strategy:Cm_contracts.Runtime.strategy ->
  ?engine:Cm_contracts.Runtime.engine ->
  ?eval:Cm_contracts.Runtime.eval_mode ->
  ?trust_path_delta:bool ->
  ?stability_check:bool ->
  ?resilience:Resilience.policy ->
  ?degradation:degradation ->
  ?clock:Cm_core.Clock.t ->
  ?footprint_pruning:bool ->
  ?cache:Obs_cache.scope ->
  ?timings:bool ->
  ?journal_pre:(pre_image -> unit) ->
  ?journal_barrier:(unit -> unit) ->
  ?crash:Cm_core.Crash.t ->
  service_token:string ->
  ?service_token_for:(string -> string option) ->
  ?security:Cm_contracts.Generate.security ->
  Cm_uml.Resource_model.t ->
  Cm_uml.Behavior_model.t ->
  config
(** Defaults: [Oracle] mode, [Lean] snapshots, [Compiled] engine,
    [Incremental] evaluation with untrusted deltas, no stability check,
    no resilience layer, [Fail_open_logged], footprint pruning on,
    [Per_request] observation cache, timings off. *)

type t

val create : config -> Observer.backend -> (t, string list) result
(** Validates the models, generates and typechecks the contracts,
    derives the URI table.  All problems are reported together. *)

val handle : t -> Cm_http.Request.t -> Outcome.t
(** Monitor one request.  The outcome's [response] is what the caller
    should see; the full exchange is also appended to {!outcomes}.

    Never raises (short of resource exhaustion): transport failures that
    escape the resilience layer become [Degraded] outcomes, and any
    internal exception is contained per-request as [Monitor_error] —
    a monitor bug is never reported as a cloud violation. *)

val resume : t -> Cm_http.Request.t -> pre_image -> Outcome.t
(** Crash recovery: finish an exchange whose pre-phase already ran (and
    was journaled as [pre_image]) before the process died.  The request
    is re-forwarded — idempotent when it carries the original
    [X-Request-Id], which the backend dedups — the post-state is
    observed fresh, and the verdict is classified exactly as {!handle}
    would have, using the journaled pre-image in place of a re-run
    pre-phase.  The outcome is logged like any other exchange. *)

val resilience : t -> Resilience.t option
(** The live resilience layer (breaker states, per-route metrics), when
    the configuration enabled one. *)

val cache_stats : t -> Obs_cache.stats option
(** Hit/miss/invalidation counters of the observation cache, when one
    is enabled. *)

val eval_stats : t -> Cm_contracts.Runtime.eval_stats
(** Aggregated incremental-evaluation counters over every prepared
    contract (zeros under [Full_eval] except [evals]). *)

val delta_stats : t -> Delta.stats option
(** Touched-path bookkeeping; [None] unless running incrementally. *)

val flush_cache : t -> unit
(** Drop all cached observations.  Out-of-band writers (anything that
    mutates the cloud without going through {!handle}) must call this
    before the next monitored request under [Cross_request] scope. *)

val project_of : t -> Cm_http.Request.t -> string option
(** The project/tenant id request classification binds for the path
    ([None] for unclassified requests) — the shard layer's partition
    key. *)

val project_extractor :
  config -> (Cm_http.Request.t -> string option, string list) result
(** A standalone classifier derived from the config's resource model —
    semantically {!project_of}, but without needing (or touching) any
    monitor instance.  The shard layer uses it so request admission
    never serializes on a replica. *)

val tenant_keyed_classifier :
  config -> (Cm_http.Request.t -> bool, string list) result
(** A standalone classifier derived from the config — like
    {!project_extractor} — answering "is this request's event
    tenant-keyed?" per the static write-effect analysis
    ({!Cm_analysis.Effects.events}).  [true] means every shard sees the
    event the same way no matter the partition; unclassified requests
    are conservatively [false] (cross-shard).  Tests use it to project a
    workload onto its shard-closed part without hand-listing the
    cross-shard operations. *)

val handle_response : t -> Cm_http.Request.t -> Cm_http.Response.t
(** [ (handle t req).response ] — lets a monitor instance itself be used
    as a backend (monitors compose). *)

val contracts : t -> Cm_contracts.Contract.t list

val subscriptions :
  t -> (Cm_uml.Behavior_model.trigger * Cm_contracts.Runtime.subscription) list
(** The per-contract event-subscription maps the monitor derived at
    {!create} from the static interference analysis and threaded into
    {!Cm_contracts.Runtime.prepare} — one entry per prepared contract
    that received a map (empty when the analysis could not run). *)

val analysis_events : t -> Cm_analysis.Effects.event list
(** The write-effect events computed at {!create} — the basis for both
    {!subscriptions} and the effect-driven cache-invalidation scopes.
    Empty when the analysis could not run. *)

val uri_table : t -> Cm_uml.Paths.entry list
(** The derived URI entries the monitor classifies against. *)

val entry_for_path : t -> string -> Cm_uml.Paths.entry option
(** The entry request classification selects for a concrete path: the
    most specific matching template (dispatch-table lookup).  Exposed so
    tests can assert the table agrees with the naive match-all + sort. *)

val configuration : t -> config

val trigger_for :
  t -> Cm_uml.Paths.entry -> Cm_http.Meth.t -> Cm_uml.Behavior_model.trigger
(** The trigger a request on the entry's URI with the method maps to
    (POST on a collection resolves to the contained item, as in request
    classification). *)

val contract_for_trigger :
  t -> Cm_uml.Behavior_model.trigger -> Cm_contracts.Contract.t option
val outcomes : t -> Outcome.t list
(** All logged outcomes, oldest first. *)

val coverage : t -> (string * int) list
(** Requirement id -> number of exchanges that exercised it (the
    traceability view of §IV-C), including ids never exercised (count
    0), sorted by id. *)

val reset_log : t -> unit
