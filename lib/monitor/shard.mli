(** Domain-parallel monitor serving: tenant-sharded monitor replicas.

    A shard pool holds [shards] independent {!Monitor.t} replicas of
    the same configuration over the same backend.  Every request is
    assigned to a shard by a deterministic hash of its project/tenant
    id (unclassified requests go to shard 0), so all requests touching
    one tenant's state are serialized on one replica — the
    single-writer-per-tenant discipline that makes per-shard
    [Cross_request] observation caches and the cloudsim's
    shard-ownership store sound.

    {b Determinism.}  The partition is a pure function of the request
    stream and the shard count — never of the domain count or the
    scheduler.  Each shard processes its subsequence in arrival order,
    so per-shard outcome sequences (and therefore verdicts) are
    bit-identical whether the pool runs on 1 domain or [shards]
    domains.  Only the interleaving {e between} shards varies, which
    contracts cannot observe (see DESIGN.md §8). *)

type t

val create :
  ?shards:int -> Monitor.config -> Observer.backend -> (t, string list) result
(** [create ~shards config backend] builds [shards] (default 1) monitor
    replicas.  For cross-exchange observation reuse pass a config with
    [cache = Obs_cache.Cross_request]; each replica's cache only ever
    holds state of the tenants hashed to it. *)

val shards : t -> int

val monitor : t -> int -> Monitor.t
(** The replica serving shard [i] — for per-shard outcome logs,
    coverage, and cache statistics. *)

val shard_of : t -> Cm_http.Request.t -> int
(** The shard that will serve this request: FNV-1a hash of the
    classified project id modulo {!shards}; [0] when classification
    binds no project.  Classification uses a config-derived extractor —
    no monitor replica (in particular not shard 0's) is involved — and
    the hash is memoized per project id.  Admission-side only: call it
    from the dispatching domain, before fan-out. *)

val shard_of_project : t -> string -> int
(** The shard owning a project id (same memoized hash {!shard_of}
    uses), for callers that already classified the request. *)

val tenant_keyed : t -> Cm_http.Request.t -> bool
(** Does the static write-effect analysis prove the request's event
    tenant-keyed ({!Monitor.tenant_keyed_classifier})?  [true] means the
    per-shard determinism contract covers it outright; [false] marks
    traffic — identity writes, unmodelled paths — whose verdicts may
    couple shards through shared state.  Config-derived at {!create},
    admission-side, no replica involved. *)

val subscriptions :
  t -> (Cm_uml.Behavior_model.trigger * Cm_contracts.Runtime.subscription) list
(** The per-contract event-subscription maps the replicas run with
    ({!Monitor.subscriptions}); identical across shards, so reported
    once.  A pool is fully shard-closed when every map has
    [sub_shard_closed = true]. *)

val handle_all :
  ?domains:int -> t -> Cm_http.Request.t list -> Outcome.t array
(** Serve a batch: partition by {!shard_of} preserving arrival order,
    run the shards on [domains] OCaml domains (default 1, clamped to
    [shards]), and return outcomes in the original request order.
    The result is identical for every [domains] value.  Batches run on
    the process-wide persistent {!Cm_core.Domain_pool} — domains are
    spawned on first use and parked between batches, so steady-state
    serving never pays [Domain.spawn]. *)

val outcomes_by_shard : t -> Outcome.t list array
(** Each shard's outcome log, in that shard's processing order. *)

val cache_stats : t -> Obs_cache.stats
(** Pool-wide observation-cache counters (zeros when caching is
    disabled). *)

val eval_stats : t -> Cm_contracts.Runtime.eval_stats
(** Pool-wide incremental-evaluation counters, summed over every
    replica's prepared contracts. *)

val flush_caches : t -> unit
(** {!Monitor.flush_cache} on every replica — required after any
    out-of-band write when the pool runs [Cross_request] caches. *)
