module Json = Cm_json.Json
module Request = Cm_http.Request
module Response = Cm_http.Response

let verdict_to_string = function
  | Cm_ocl.Eval.Holds -> "holds"
  | Cm_ocl.Eval.Violated -> "violated"
  | Cm_ocl.Eval.Undefined_verdict hint -> "undefined:" ^ hint

let verdict_of_string text =
  match text with
  | "holds" -> Some Cm_ocl.Eval.Holds
  | "violated" -> Some Cm_ocl.Eval.Violated
  | _ ->
    let prefix = "undefined:" in
    let plen = String.length prefix in
    if String.length text >= plen && String.sub text 0 plen = prefix then
      Some
        (Cm_ocl.Eval.Undefined_verdict
           (String.sub text plen (String.length text - plen)))
    else None

let opt_field name to_json = function
  | Some value -> [ (name, to_json value) ]
  | None -> []

let outcome_to_json (o : Outcome.t) =
  Json.obj
    ([ ("method", Json.string (Cm_http.Meth.to_string o.request.Request.meth));
       ("path", Json.string o.request.Request.path);
       ( "query",
         Json.obj
           (List.map (fun (k, v) -> (k, Json.string v)) o.request.Request.query)
       );
       ("status", Json.int o.response.Response.status)
     ]
    @ opt_field "response_body" (fun b -> b) o.response.Response.body
    @ opt_field "cloud_status"
        (fun (r : Response.t) -> Json.int r.Response.status)
        o.cloud_response
    @ [ ( "conformance",
          Json.string (Outcome.conformance_to_string o.conformance) )
      ]
    @ opt_field "pre_verdict"
        (fun v -> Json.string (verdict_to_string v))
        o.pre_verdict
    @ opt_field "post_verdict"
        (fun v -> Json.string (verdict_to_string v))
        o.post_verdict
    @ [ ( "requirements",
          Json.list (List.map Json.string o.covered_requirements) );
        ( "contract_requirements",
          Json.list (List.map Json.string o.contract_requirements) );
        ("snapshot_bytes", Json.int o.snapshot_bytes);
        ("detail", Json.string o.detail)
      ])

let ( let* ) r f = Result.bind r f

let require name json =
  match Json.member name json with
  | Some value -> Ok value
  | None -> Error (Printf.sprintf "trace record missing %S" name)

let as_string name json =
  match Json.to_string json with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "%S is not a string" name)

let as_int name json =
  match Json.to_int json with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%S is not an int" name)

let outcome_of_json json =
  let* meth_text = Result.bind (require "method" json) (as_string "method") in
  let* meth =
    match Cm_http.Meth.of_string meth_text with
    | Some m -> Ok m
    | None -> Error (Printf.sprintf "unknown method %S" meth_text)
  in
  let* path = Result.bind (require "path" json) (as_string "path") in
  let query =
    match Json.member "query" json with
    | Some (Json.Obj members) ->
      List.filter_map
        (fun (k, v) ->
          match Json.to_string v with Some s -> Some (k, s) | None -> None)
        members
    | Some _ | None -> []
  in
  let* status = Result.bind (require "status" json) (as_int "status") in
  let response_body = Json.member "response_body" json in
  let cloud_response =
    match Json.member "cloud_status" json with
    | Some (Json.Int s) -> Some (Response.make s)
    | Some _ | None -> None
  in
  let* conf_text =
    Result.bind (require "conformance" json) (as_string "conformance")
  in
  let* conformance =
    match Outcome.conformance_of_string conf_text with
    | Some c -> Ok c
    | None -> Error (Printf.sprintf "unknown conformance %S" conf_text)
  in
  let verdict_opt name =
    match Json.member name json with
    | Some (Json.String s) -> verdict_of_string s
    | Some _ | None -> None
  in
  let string_list name =
    match Json.member name json with
    | Some (Json.List items) -> List.filter_map Json.to_string items
    | Some _ | None -> []
  in
  let covered_requirements = string_list "requirements" in
  let contract_requirements = string_list "contract_requirements" in
  let snapshot_bytes =
    match Json.member "snapshot_bytes" json with
    | Some (Json.Int n) -> n
    | Some _ | None -> 0
  in
  let detail =
    match Json.member "detail" json with
    | Some (Json.String s) -> s
    | Some _ | None -> ""
  in
  Ok
    { Outcome.request = Request.make ~query meth path;
      response = Response.make ?body:response_body status;
      cloud_response;
      conformance;
      pre_verdict = verdict_opt "pre_verdict";
      post_verdict = verdict_opt "post_verdict";
      covered_requirements;
      contract_requirements;
      snapshot_bytes;
      detail;
      phases = None;
      lock_acquisitions = 0
    }

let to_jsonl outcomes =
  String.concat ""
    (List.map
       (fun o -> Cm_json.Printer.to_string (outcome_to_json o) ^ "\n")
       outcomes)

let of_jsonl text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  let rec loop acc i = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      (match Cm_json.Parser.parse line with
       | Error err -> Error (Fmt.str "line %d: %a" i Cm_json.Parser.pp_error err)
       | Ok json ->
         (match outcome_of_json json with
          | Ok outcome -> loop (outcome :: acc) (i + 1) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" i msg)))
  in
  loop [] 1 lines

(* ---- localization ---- *)

type suspect = {
  trigger : string;
  verdicts : (string * int) list;
  requirements : string list;
  example_detail : string;
}

let looks_like_id segment =
  (* vol-7, srv-12, tok-3-alice ... : letters, dash, then a digit *)
  match String.index_opt segment '-' with
  | Some i when i > 0 && i + 1 < String.length segment ->
    let c = segment.[i + 1] in
    c >= '0' && c <= '9'
  | Some _ | None -> false

let path_shape path =
  String.split_on_char '/' path
  |> List.map (fun seg -> if looks_like_id seg then "{id}" else seg)
  |> String.concat "/"

let localize outcomes =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (o : Outcome.t) ->
      if Outcome.is_violation o.conformance then begin
        let key =
          Cm_http.Meth.to_string o.request.Request.meth
          ^ " "
          ^ path_shape o.request.Request.path
        in
        let verdict = Outcome.conformance_to_string o.conformance in
        let existing =
          Option.value
            ~default:
              { trigger = key; verdicts = []; requirements = [];
                example_detail = o.detail
              }
            (Hashtbl.find_opt table key)
        in
        let verdicts =
          let count =
            1 + Option.value ~default:0 (List.assoc_opt verdict existing.verdicts)
          in
          (verdict, count) :: List.remove_assoc verdict existing.verdicts
        in
        let requirements =
          List.sort_uniq String.compare
            (o.covered_requirements @ o.contract_requirements
            @ existing.requirements)
        in
        Hashtbl.replace table key { existing with verdicts; requirements }
      end)
    outcomes;
  Hashtbl.fold (fun _ suspect acc -> suspect :: acc) table []
  |> List.sort (fun a b ->
         let total s = List.fold_left (fun acc (_, n) -> acc + n) 0 s.verdicts in
         Int.compare (total b) (total a))

let render_localization suspects =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  if suspects = [] then line "no violations: nothing to localize"
  else begin
    line "fault localization (most violating request shape first):";
    List.iter
      (fun s ->
        line "  %s" s.trigger;
        List.iter (fun (v, n) -> line "    %dx %s" n v) s.verdicts;
        if s.requirements <> [] then
          line "    security requirements implicated: %s"
            (String.concat ", " s.requirements);
        if s.example_detail <> "" then line "    e.g. %s" s.example_detail)
      suspects
  end;
  Buffer.contents buf
