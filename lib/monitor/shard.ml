type t = {
  monitors : Monitor.t array;
  project_of : Cm_http.Request.t -> string option;
      (* config-derived, independent of any monitor instance *)
  tenant_keyed : Cm_http.Request.t -> bool;
      (* config-derived like [project_of]: does the static write-effect
         analysis prove the request's event tenant-keyed?  [false] marks
         traffic whose verdicts may couple shards (identity writes,
         unmodelled paths). *)
  shard_memo : (string, int) Hashtbl.t;
      (* project id -> shard index.  Admission-side only: partitioning
         and [shard_of] run on the caller's domain before any fan-out,
         so the memo needs no lock. *)
}

let create ?(shards = 1) config backend =
  if shards < 1 then invalid_arg "Shard.create: shards must be >= 1";
  match
    (Monitor.project_extractor config, Monitor.tenant_keyed_classifier config)
  with
  | (Error _ as e), _ | _, (Error _ as e) -> e
  | Ok project_of, Ok tenant_keyed ->
    let rec build acc i =
      if i = shards then
        Ok
          { monitors = Array.of_list (List.rev acc);
            project_of;
            tenant_keyed;
            shard_memo = Hashtbl.create 64
          }
      else
        match Monitor.create config backend with
        | Ok m -> build (m :: acc) (i + 1)
        | Error _ as e -> e
    in
    build [] 0

let shards t = Array.length t.monitors
let monitor t i = t.monitors.(i)

(* FNV-1a, masked to a non-negative int.  Any stable string hash works;
   what matters is that the partition depends only on the project id
   and the shard count. *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    s;
  !h

(* Callers that already classified the request (or carry the tenant in
   hand) skip re-extraction; the hash itself is memoized because the
   same few project ids arrive millions of times. *)
let shard_of_project t project =
  match Hashtbl.find_opt t.shard_memo project with
  | Some s -> s
  | None ->
    let s = fnv1a project mod Array.length t.monitors in
    Hashtbl.add t.shard_memo project s;
    s

let shard_of t req =
  match t.project_of req with
  | None -> 0
  | Some project -> shard_of_project t project

let tenant_keyed t req = t.tenant_keyed req

let subscriptions t =
  match t.monitors with
  | [||] -> []
  | monitors -> Monitor.subscriptions monitors.(0)

let handle_all ?(domains = 1) t reqs =
  let reqs = Array.of_list reqs in
  let n = Array.length reqs in
  let shard_count = Array.length t.monitors in
  (* Partition by tenant, preserving arrival order within each shard. *)
  let queues = Array.make shard_count [] in
  for i = n - 1 downto 0 do
    let s = shard_of t reqs.(i) in
    queues.(s) <- i :: queues.(s)
  done;
  let results = Array.make n None in
  let serve s =
    List.iter
      (fun i -> results.(i) <- Some (Monitor.handle t.monitors.(s) reqs.(i)))
      queues.(s)
  in
  (* Each slot of [results] is written by exactly one shard and read
     only after every domain is joined, so the array needs no lock.
     Batches run on the process-wide persistent pool: domains are
     spawned the first time a count is requested and parked between
     batches, so steady-state serving never pays [Domain.spawn]. *)
  ignore (Cm_core.Domain_pool.run_shared ~domains shard_count serve);
  Array.map
    (function Some o -> o | None -> assert false (* every index queued *))
    results

let outcomes_by_shard t = Array.map Monitor.outcomes t.monitors

let cache_stats t =
  Array.fold_left
    (fun acc m ->
      match Monitor.cache_stats m with
      | None -> acc
      | Some s ->
        Obs_cache.
          { hits = acc.hits + s.hits;
            misses = acc.misses + s.misses;
            invalidated = acc.invalidated + s.invalidated
          })
    Obs_cache.{ hits = 0; misses = 0; invalidated = 0 }
    t.monitors

let eval_stats t =
  Array.fold_left
    (fun acc m ->
      let s = Monitor.eval_stats m in
      Cm_contracts.Runtime.
        { evals = acc.evals + s.evals;
          replays = acc.replays + s.replays;
          node_hits = acc.node_hits + s.node_hits;
          node_evals = acc.node_evals + s.node_evals;
          refreshes = acc.refreshes + s.refreshes;
          slots_changed = acc.slots_changed + s.slots_changed
        })
    Cm_contracts.Runtime.
      { evals = 0;
        replays = 0;
        node_hits = 0;
        node_evals = 0;
        refreshes = 0;
        slots_changed = 0
      }
    t.monitors

let flush_caches t = Array.iter Monitor.flush_cache t.monitors
