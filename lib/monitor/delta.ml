module Uri_template = Cm_http.Uri_template

(* Touched-root tracking: maps each forwarded mutation's path to the set
   of observation roots (the same vocabulary as {!Cm_ocl.Footprint} and
   the observer's bindings) whose observed value may have changed, and
   stamps those roots with a monotonically increasing generation.

   A root's document can reflect a mutation when the mutated path
   overlaps the root's URI template as a segment prefix in either
   direction (mutating an item rewrites its collection listing; mutating
   a collection rewrites its items), with template parameters matching
   any concrete segment — the same overlap rule as
   {!Obs_cache.invalidate_overlapping}, lifted from concrete cached
   paths to the model's templates.  The context root (the project
   document) grafts every child listing, so every classified mutation
   touches it.  Mutations the model cannot classify conservatively touch
   every root. *)

type t = {
  entries : (Uri_template.segment list * string) list;
      (* template segments, lowercased resource root *)
  context_root : string;
  root_gen : (string, int) Hashtbl.t;
  mutable gen : int;
  mutable mutations : int;
  mutable unclassified : int;
}

let create ~context (entries : Cm_uml.Paths.entry list) =
  { entries =
      List.map
        (fun (e : Cm_uml.Paths.entry) ->
          ( Uri_template.segments e.template,
            String.lowercase_ascii e.resource ))
        entries;
    context_root = String.lowercase_ascii context;
    root_gen = Hashtbl.create 16;
    gen = 0;
    mutations = 0;
    unclassified = 0
  }

(* Bidirectional segment-prefix overlap of a template against a concrete
   path; a parameter segment matches anything. *)
let rec template_overlaps tsegs psegs =
  match tsegs, psegs with
  | [], _ | _, [] -> true
  | Uri_template.Literal l :: ts, p :: ps ->
    String.equal l p && template_overlaps ts ps
  | Uri_template.Param _ :: ts, _ :: ps -> template_overlaps ts ps

let touch t root = Hashtbl.replace t.root_gen root t.gen

let note_all t =
  t.gen <- t.gen + 1;
  List.iter (fun (_, root) -> touch t root) t.entries;
  touch t t.context_root

let note t path =
  t.mutations <- t.mutations + 1;
  t.gen <- t.gen + 1;
  let psegs = Uri_template.split_path path in
  let matched = ref false in
  List.iter
    (fun (tsegs, root) ->
      if template_overlaps tsegs psegs then begin
        matched := true;
        touch t root
      end)
    t.entries;
  if !matched then touch t t.context_root
  else begin
    (* a write the model cannot place: assume everything moved *)
    t.unclassified <- t.unclassified + 1;
    List.iter (fun (_, root) -> touch t root) t.entries;
    touch t t.context_root
  end

let generation t = t.gen

(* Has [root] possibly changed after generation [seen]?  Roots the model
   does not track (e.g. the per-request [user] subject binding) are
   always treated as changed — only modelled resource documents may be
   skipped. *)
let changed_since t ~seen root =
  match Hashtbl.find_opt t.root_gen root with
  | Some g -> g > seen
  | None ->
    if
      String.equal root t.context_root
      || List.exists (fun (_, r) -> String.equal r root) t.entries
    then seen < 0  (* tracked, never mutated: sync only the first time *)
    else true

(* The concrete roots a single path maps to (stats / tests). *)
let roots_of_path t path =
  let psegs = Uri_template.split_path path in
  let hit =
    List.filter_map
      (fun (tsegs, root) ->
        if template_overlaps tsegs psegs then Some root else None)
      t.entries
  in
  match hit with
  | [] -> List.sort_uniq String.compare (t.context_root :: List.map snd t.entries)
  | hit -> List.sort_uniq String.compare (t.context_root :: hit)

type stats = { mutations : int; unclassified : int; generation : int }

let stats (t : t) =
  { mutations = t.mutations; unclassified = t.unclassified; generation = t.gen }
