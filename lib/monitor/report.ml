type summary = {
  total : int;
  conform : int;
  denied : int;
  violations : int;
  undefined : int;
  not_monitored : int;
  by_conformance : (string * int) list;
  timed : int;
  phase_means : Outcome.phases option;
  lock_acquisitions : int;
      (* instrumented-lock acquisitions attributed to these exchanges;
         0 across the board once the monitored path is lock-free *)
}

let mean_phases outcomes =
  let timed =
    List.filter_map (fun (o : Outcome.t) -> o.Outcome.phases) outcomes
  in
  match timed with
  | [] -> (0, None)
  | _ ->
    let n = float_of_int (List.length timed) in
    let sum f = List.fold_left (fun acc p -> acc +. f p) 0. timed /. n in
    ( List.length timed,
      Some
        Outcome.
          { observe_pre_ns = sum (fun p -> p.observe_pre_ns);
            eval_pre_ns = sum (fun p -> p.eval_pre_ns);
            forward_ns = sum (fun p -> p.forward_ns);
            observe_post_ns = sum (fun p -> p.observe_post_ns);
            eval_post_ns = sum (fun p -> p.eval_post_ns)
          } )

let summarize outcomes =
  let bump table key =
    Hashtbl.replace table key
      (1 + Option.value ~default:0 (Hashtbl.find_opt table key))
  in
  let table = Hashtbl.create 16 in
  let count pred = List.length (List.filter pred outcomes) in
  List.iter
    (fun (o : Outcome.t) ->
      bump table (Outcome.conformance_to_string o.conformance))
    outcomes;
  let timed, phase_means = mean_phases outcomes in
  { total = List.length outcomes;
    timed;
    phase_means;
    lock_acquisitions =
      List.fold_left
        (fun acc (o : Outcome.t) -> acc + o.Outcome.lock_acquisitions)
        0 outcomes;
    conform =
      count (fun (o : Outcome.t) -> o.conformance = Outcome.Conform);
    denied =
      count (fun (o : Outcome.t) -> o.conformance = Outcome.Conform_denied);
    violations =
      count (fun (o : Outcome.t) -> Outcome.is_violation o.conformance);
    undefined =
      count (fun (o : Outcome.t) ->
          match o.conformance with Outcome.Undefined _ -> true | _ -> false);
    not_monitored =
      count (fun (o : Outcome.t) -> o.conformance = Outcome.Not_monitored);
    by_conformance =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  }

let violations outcomes =
  List.filter (fun (o : Outcome.t) -> Outcome.is_violation o.conformance) outcomes

let render summary ~coverage =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "=== monitoring report ===";
  line "exchanges monitored : %d" summary.total;
  line "conform             : %d" summary.conform;
  line "conform (denied)    : %d" summary.denied;
  line "violations          : %d" summary.violations;
  line "undefined           : %d" summary.undefined;
  line "not monitored       : %d" summary.not_monitored;
  line "lock acquisitions   : %d" summary.lock_acquisitions;
  if summary.by_conformance <> [] then begin
    line "";
    line "by verdict:";
    List.iter
      (fun (verdict, count) -> line "  %-45s %d" verdict count)
      summary.by_conformance
  end;
  (match summary.phase_means with
   | None -> ()
   | Some p ->
     line "";
     line "mean phase cost over %d timed exchange(s):" summary.timed;
     let us label v = line "  %-14s %8.1f us" label (v /. 1e3) in
     us "observe-pre" p.Outcome.observe_pre_ns;
     us "eval-pre" p.Outcome.eval_pre_ns;
     us "forward" p.Outcome.forward_ns;
     us "observe-post" p.Outcome.observe_post_ns;
     us "eval-post" p.Outcome.eval_post_ns;
     us "total" (Outcome.phases_total p));
  line "";
  line "security requirement coverage:";
  List.iter
    (fun (req_id, count) ->
      if count = 0 then line "  SecReq %-6s NOT COVERED" req_id
      else line "  SecReq %-6s exercised %d time(s)" req_id count)
    coverage;
  Buffer.contents buf

let to_json summary ~coverage =
  let module Json = Cm_json.Json in
  Json.obj
    [ ("total", Json.int summary.total);
      ("conform", Json.int summary.conform);
      ("conform_denied", Json.int summary.denied);
      ("violations", Json.int summary.violations);
      ("undefined", Json.int summary.undefined);
      ("not_monitored", Json.int summary.not_monitored);
      ("lock_acquisitions", Json.int summary.lock_acquisitions);
      ( "by_conformance",
        Json.obj
          (List.map (fun (k, v) -> (k, Json.int v)) summary.by_conformance) );
      ( "phases",
        match summary.phase_means with
        | None -> Json.null
        | Some p ->
          Json.obj
            [ ("timed", Json.int summary.timed);
              ("observe_pre_ns", Json.float p.Outcome.observe_pre_ns);
              ("eval_pre_ns", Json.float p.Outcome.eval_pre_ns);
              ("forward_ns", Json.float p.Outcome.forward_ns);
              ("observe_post_ns", Json.float p.Outcome.observe_post_ns);
              ("eval_post_ns", Json.float p.Outcome.eval_post_ns);
              ("total_ns", Json.float (Outcome.phases_total p))
            ] );
      ( "coverage",
        Json.obj (List.map (fun (k, v) -> (k, Json.int v)) coverage) );
      ( "uncovered_requirements",
        Json.list
          (List.filter_map
             (fun (req_id, count) ->
               if count = 0 then Some (Json.string req_id) else None)
             coverage) )
    ]

let pp_summary ppf summary =
  Fmt.pf ppf "%d exchanges: %d conform, %d denied, %d violations, %d undefined"
    summary.total summary.conform summary.denied summary.violations
    summary.undefined
