(** Deriving the OCL environment from observable cloud state.

    The models define state invariants "as boolean expressions over the
    {e addressable} resources" (§IV-B): every value a contract mentions
    must be obtainable through GET requests.  The observer issues those
    GETs through the same backend the monitored request will travel —
    the monitor never peeks inside the cloud.

    Observation is {e model-driven}: the resource model says which URIs
    exist and how they compose, so the same observer works for any
    service (Cinder volumes, Glance-like images, …):

    - the context resource (the item contained in the root collection,
      e.g. [project]) is GET and its members become the [project]
      binding;
    - every collection reachable from it (role [volumes], [images], …)
      is GET and its listing becomes a member of the context binding
      under the role name — a failed listing simply leaves the member
      absent (size 0);
    - every singleton child (e.g. [quota_sets]) is GET and bound as a
      top-level variable under its definition name;
    - the specific item addressed by the monitored request, when given,
      is GET and bound under its definition name (e.g. [volume]).

    Response bodies are unwrapped from their single-key envelope
    ([{"volume": {...}}], [{"volumes": [...]}]) regardless of the key's
    exact spelling.

    Two per-request cost levers, both optional and both
    verdict-preserving:

    - {!with_footprint} restricts the fetches to a contract's static
      read-set ({!Cm_ocl.Footprint}) — unmentioned roots and members
      are never GET;
    - {!with_cache} reuses observation responses through an
      {!Obs_cache} (invalidated by the monitor on forwarded mutations;
      re-observations pass [~fresh:true] to bypass reads).

    Observation uses a service account (the monitor's own credentials),
    mirroring how OpenStack services authenticate to each other. *)

type backend = Cm_http.Request.t -> Cm_http.Response.t

type t

val create :
  backend:backend ->
  token:string ->
  model:Cm_uml.Resource_model.t ->
  project_id:string ->
  (t, string) result
(** [Error] when the model's URI scheme cannot be derived — a monitor
    that observes nothing would vacuously pass everything, so the
    failure must be surfaced, not swallowed. *)

val create_exn :
  backend:backend ->
  token:string ->
  model:Cm_uml.Resource_model.t ->
  project_id:string ->
  t
(** Raises [Invalid_argument] where {!create} returns [Error]. *)

val of_entries :
  backend:backend ->
  token:string ->
  model:Cm_uml.Resource_model.t ->
  project_id:string ->
  Cm_uml.Paths.entry list ->
  t
(** Build from already-derived path entries (the monitor derives them
    once and shares them across requests). *)

val with_project : t -> project_id:string -> t
(** Cheap per-request re-targeting; shares entries/index/cache. *)

val with_token : t -> token:string -> t
(** Swap the service credential — clouds scope tokens to one project,
    so multi-tenant monitors resolve a per-project service token. *)

val with_footprint : t -> Cm_ocl.Footprint.t option -> t
(** [Some fp] prunes observation to the footprint; [None] observes
    everything. *)

val with_cache : t -> Obs_cache.t option -> t

val project_id : t -> string
val context_def : t -> string

val observe :
  ?fresh:bool ->
  ?item:string * string ->
  ?bindings:(string * string) list ->
  t ->
  (string * Cm_json.Json.t) list
(** [?item:(resource_def_name, id)] additionally binds that one item.
    [?bindings] are the URI parameters of the monitored request: they
    let the observer reach {e nested} resources (an item whose URI needs
    its ancestors' ids, e.g.
    [/v3/{project_id}/volumes/{volume_id}/snapshots/{snapshot_id}]) —
    every ancestor item on the request's path is bound under its
    definition name, and each bound item additionally carries the
    listings of its own sub-collections as members under the role name.
    The context binding is produced even when the context GET fails
    (with only the members that could be observed).
    [~fresh:true] bypasses cache reads (still refreshing entries) — the
    stability re-observation uses it so the cache can never mask
    concurrent interference. *)

val subject_binding : backend -> token:string -> Cm_json.Json.t option
(** Introspect a {e user's} token into the ["user"] binding
    ([{"name"; "groups"; "roles"; "role"; "id": {"groups": role}}]).
    [None] when the token is invalid. *)

val env :
  ?fresh:bool ->
  ?item:string * string ->
  ?bindings:(string * string) list ->
  ?user_token:string ->
  ?request_body:Cm_json.Json.t ->
  t ->
  Cm_ocl.Eval.env
(** Full pre-/post-state environment: {!observe} plus the ["user"]
    binding when [user_token] is given, and the ["request"] binding
    (the monitored request's JSON body, read by cross-service guards as
    [request.<field>]) when [request_body] is given and some contract's
    footprint mentions it.  A token identity {e definitely} rejects
    (404: revoked or never issued) binds an empty subject — groups and
    roles [[]] — so authorization guards fail definitely instead of
    going Unknown; only transport-level introspection failures leave
    ["user"] unbound. *)
