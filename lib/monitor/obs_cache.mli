(** Observation cache with mutation-overlap invalidation.

    The observer's GETs are pure reads of cloud state; between
    mutations that state cannot change (per-tenant requests are
    serialized within a shard), so responses can be reused.  A
    forwarded POST/PUT/DELETE on path [M] invalidates exactly the
    entries whose path overlaps [M]'s write-set: cached path [P] is
    dropped iff [P] is a segment-prefix of [M] (a container listing or
    ancestor document that now includes/excludes the mutated resource)
    or [M] is a segment-prefix of [P] (the mutated resource itself or
    something beneath it).

    Scopes: [Per_request] reuses observations only within one
    monitored exchange (pre-state -> post-state of the same request) —
    always sound, even with out-of-band writers between requests.
    [Cross_request] keeps entries across exchanges and is sound under
    the single-writer-per-tenant discipline the shard layer enforces.

    Counters are plain (shard-local) ints: a cache belongs to exactly
    one monitor replica, which one domain serves at a time, so shared
    [Atomic]s would only buy cache-line bouncing.  Read {!stats}
    between batches, from the dispatching domain. *)

type scope = Disabled | Per_request | Cross_request

type t

type stats = { hits : int; misses : int; invalidated : int }

val create : scope -> t
val scope : t -> scope
val enabled : t -> bool

val find : t -> token:string option -> string -> Cm_http.Response.t option

val remember : t -> token:string option -> string -> Cm_http.Response.t -> unit
(** Stores only definite state answers (2xx and 404); transient
    failures (5xx, degraded responses) are never pinned. *)

val invalidate_overlapping : t -> string -> unit
(** Drop every entry whose path segment-prefix-overlaps the mutated
    path, in either direction. *)

val begin_request : t -> unit
(** Called at the top of each monitored exchange; clears the table
    under [Per_request] scope. *)

val clear : t -> unit
(** Drop all entries (out-of-band writers should call this). *)

val stats : t -> stats
val hit_rate : stats -> float
