type conformance =
  | Conform
  | Conform_denied
  | Security_unauthorized_allowed
  | Security_authorized_denied
  | Functional_wrongly_rejected
  | Functional_wrongly_accepted
  | Functional_bad_status
  | Post_violated
  | Undefined of string
  | Degraded of string
  | Monitor_error of string
  | Not_monitored

let is_violation = function
  | Security_unauthorized_allowed | Security_authorized_denied
  | Functional_wrongly_rejected | Functional_wrongly_accepted
  | Functional_bad_status | Post_violated -> true
  | Conform | Conform_denied | Undefined _ | Degraded _ | Monitor_error _
  | Not_monitored -> false

let is_definite = function
  | Undefined _ | Degraded _ | Monitor_error _ -> false
  | Conform | Conform_denied | Security_unauthorized_allowed
  | Security_authorized_denied | Functional_wrongly_rejected
  | Functional_wrongly_accepted | Functional_bad_status | Post_violated
  | Not_monitored -> true

let conformance_to_string = function
  | Conform -> "conform"
  | Conform_denied -> "conform-denied"
  | Security_unauthorized_allowed -> "SECURITY:unauthorized-request-allowed"
  | Security_authorized_denied -> "SECURITY:authorized-request-denied"
  | Functional_wrongly_rejected -> "FUNCTIONAL:wrongly-rejected"
  | Functional_wrongly_accepted -> "FUNCTIONAL:wrongly-accepted"
  | Functional_bad_status -> "FUNCTIONAL:unexpected-success-status"
  | Post_violated -> "FUNCTIONAL:postcondition-violated"
  | Undefined hint -> "undefined: " ^ hint
  | Degraded detail -> "degraded: " ^ detail
  | Monitor_error detail -> "monitor-error: " ^ detail
  | Not_monitored -> "not-monitored"

let conformance_of_string text =
  let fixed =
    [ Conform; Conform_denied; Security_unauthorized_allowed;
      Security_authorized_denied; Functional_wrongly_rejected;
      Functional_wrongly_accepted; Functional_bad_status; Post_violated;
      Not_monitored
    ]
  in
  let strip prefix =
    let plen = String.length prefix in
    if String.length text >= plen && String.sub text 0 plen = prefix then
      Some (String.sub text plen (String.length text - plen))
    else None
  in
  match
    List.find_opt (fun c -> conformance_to_string c = text) fixed
  with
  | Some c -> Some c
  | None ->
    (match strip "undefined: " with
     | Some hint -> Some (Undefined hint)
     | None ->
       (match strip "degraded: " with
        | Some detail -> Some (Degraded detail)
        | None ->
          (match strip "monitor-error: " with
           | Some detail -> Some (Monitor_error detail)
           | None -> None)))

let pp_conformance ppf c = Fmt.string ppf (conformance_to_string c)

type phases = {
  observe_pre_ns : float;
  eval_pre_ns : float;
  forward_ns : float;
  observe_post_ns : float;
  eval_post_ns : float;
}

let phases_total p =
  p.observe_pre_ns +. p.eval_pre_ns +. p.forward_ns +. p.observe_post_ns
  +. p.eval_post_ns

let pp_phases ppf p =
  Fmt.pf ppf
    "observe-pre %.0fns | eval-pre %.0fns | forward %.0fns | observe-post \
     %.0fns | eval-post %.0fns"
    p.observe_pre_ns p.eval_pre_ns p.forward_ns p.observe_post_ns
    p.eval_post_ns

type t = {
  request : Cm_http.Request.t;
  response : Cm_http.Response.t;
  cloud_response : Cm_http.Response.t option;
  conformance : conformance;
  pre_verdict : Cm_ocl.Eval.verdict option;
  post_verdict : Cm_ocl.Eval.verdict option;
  covered_requirements : string list;
  contract_requirements : string list;
  snapshot_bytes : int;
  detail : string;
  phases : phases option;
  lock_acquisitions : int;
      (* instrumented-lock acquisitions attributed to this exchange
         (process-global delta across the handle; exact on a
         single-domain run, an over-approximation under parallel
         serving — which only makes the zero-lock gate stricter) *)
}

let pp ppf outcome =
  Fmt.pf ppf "%a -> %d: %a%s"
    Cm_http.Request.pp outcome.request
    outcome.response.Cm_http.Response.status pp_conformance
    outcome.conformance
    (if outcome.detail = "" then "" else " (" ^ outcome.detail ^ ")")
