module Json = Cm_json.Json
module Request = Cm_http.Request
module Response = Cm_http.Response
module RM = Cm_uml.Resource_model
module Footprint = Cm_ocl.Footprint

type backend = Request.t -> Response.t

type t = {
  backend : backend;
  token : string;
  model : RM.t;
  project_id : string;
  entries : Cm_uml.Paths.entry list;
  entry_index : Cm_uml.Paths.index;
  context_def : string;  (* the item contained in the root collection *)
  context_param : string;  (* its id parameter name, e.g. "project_id" *)
  footprint : Footprint.t option;
      (* None = observe everything; Some fp = fetch only what fp reads *)
  cache : Obs_cache.t option;
  lc_names : (string, string) Hashtbl.t;
      (* interned lowercased resource names — root binding keys are
         produced on every observation, so don't re-derive the string
         each time (shared across [with_project] copies; each monitor
         shard owns its observer, so single-threaded) *)
}

let of_entries ~backend ~token ~model ~project_id entries =
  let context_def =
    match RM.outgoing model.RM.root model with
    | child :: _ -> child.RM.target
    | [] -> "project"
  in
  { backend;
    token;
    model;
    project_id;
    entries;
    entry_index = Cm_uml.Paths.index entries;
    context_def;
    context_param = Cm_uml.Paths.id_param context_def;
    footprint = None;
    cache = None;
    lc_names = Hashtbl.create 16
  }

let create ~backend ~token ~model ~project_id =
  match Cm_uml.Paths.derive model with
  | Ok entries -> Ok (of_entries ~backend ~token ~model ~project_id entries)
  | Error msg ->
    (* A model whose URI scheme cannot be derived would otherwise yield a
       monitor that observes nothing and vacuously passes everything. *)
    Error (Printf.sprintf "observer: cannot derive URI scheme: %s" msg)

let create_exn ~backend ~token ~model ~project_id =
  match create ~backend ~token ~model ~project_id with
  | Ok t -> t
  | Error msg -> invalid_arg msg

let lc t s =
  match Hashtbl.find_opt t.lc_names s with
  | Some v -> v
  | None ->
    let v = String.lowercase_ascii s in
    Hashtbl.add t.lc_names s v;
    v

let with_project t ~project_id = { t with project_id }
let with_token t ~token = { t with token }
let with_footprint t footprint = { t with footprint }
let with_cache t cache = { t with cache }
let project_id t = t.project_id
let context_def t = t.context_def

(* ---- footprint pruning ----------------------------------------------- *)

let wants_root t name =
  match t.footprint with
  | None -> true
  | Some fp -> Footprint.mentions fp (lc t name)

let wants_member t root field =
  match t.footprint with
  | None -> true
  | Some fp -> Footprint.needs_field fp ~root:(lc t root) field

(* The context document's own attributes vs. the members we graft from
   child listings: if the contracts only read grafted roles, the doc GET
   itself is dead weight. *)
let wants_own_attrs t root ~grafted_roles =
  match t.footprint with
  | None -> true
  | Some fp ->
    let root = lc t root in
    (match List.assoc_opt root fp with
     | None -> false
     | Some Footprint.All -> true
     | Some (Footprint.Fields fs) ->
       List.exists (fun f -> not (List.mem f grafted_roles)) fs)

(* ---- cached GETs ------------------------------------------------------ *)

let backend_get ?(subject_token = None) t path =
  let req =
    Request.make Cm_http.Meth.GET path |> Request.with_auth_token t.token
  in
  let req =
    match subject_token with
    | None -> req
    | Some token ->
      { req with
        Request.headers =
          Cm_http.Headers.replace "X-Subject-Token" token req.Request.headers
      }
  in
  t.backend req

(* [fresh] bypasses cache reads but still refreshes the entry: the
   stability re-observation must see the cloud, not the cache, or
   concurrent interference would be masked. *)
let get ?(fresh = false) ?(subject_token = None) t path =
  match t.cache with
  | Some cache when Obs_cache.enabled cache ->
    let cached =
      if fresh then None else Obs_cache.find cache ~token:subject_token path
    in
    (match cached with
     | Some resp -> resp
     | None ->
       let resp = backend_get ~subject_token t path in
       Obs_cache.remember cache ~token:subject_token path resp;
       resp)
  | _ -> backend_get ~subject_token t path

let successful_body resp =
  if Response.is_success resp then resp.Response.body else None

(* API bodies wrap the payload in a single-key envelope; the key's
   spelling varies (volume / quota_set / ...), so unwrap positionally. *)
let unwrap = function
  | Some (Json.Obj [ (_, payload) ]) -> Some payload
  | Some _ | None -> None

let template_for t ~resource ~item =
  Cm_uml.Paths.find t.entry_index ~resource ~item
  |> Option.map (fun (e : Cm_uml.Paths.entry) -> e.template)

let expand t template bindings =
  match
    Cm_http.Uri_template.expand template
      ((t.context_param, t.project_id) :: bindings)
  with
  | Ok path -> Some path
  | Error _ -> None

let get_unwrapped ?fresh t ~resource ~item bindings =
  match template_for t ~resource ~item with
  | None -> None
  | Some template ->
    (match expand t template bindings with
     | None -> None
     | Some path -> unwrap (successful_body (get ?fresh t path)))

(* Sub-collections of a bound item: graft each reachable listing into the
   item document as a member named by the role — this is what makes
   [volume.snapshots->size()] evaluable. *)
let graft_sub_collections ?fresh t request_bindings (def_name : string) doc =
  match doc with
  | Json.Obj members ->
    let extra =
      List.filter_map
        (fun (assoc : RM.association) ->
          if assoc.source <> def_name then None
          else if not (wants_member t def_name assoc.role) then None
          else
            match RM.find_resource assoc.target t.model with
            | None -> None
            | Some target_def ->
              let listing_resource =
                match target_def.kind with
                | RM.Collection ->
                  (* role points at a collection definition *)
                  Some target_def.def_name
                | RM.Normal
                  when Cm_uml.Multiplicity.is_collection assoc.multiplicity ->
                  Some target_def.def_name
                | RM.Normal -> None
              in
              (match listing_resource with
               | None -> None
               | Some resource ->
                 (match
                    get_unwrapped ?fresh t ~resource ~item:false
                      request_bindings
                  with
                  | Some (Json.List _ as items) -> Some (assoc.role, items)
                  | Some _ | None -> None)))
        t.model.RM.associations
    in
    Json.Obj (members @ extra)
  | other -> other

(* Items addressable with the available URI parameters: for each item
   entry whose every parameter is known, GET and bind it. The context
   resource is excluded (it gets richer treatment below). *)
let ancestor_bindings ?fresh t request_bindings =
  let available = (t.context_param, t.project_id) :: request_bindings in
  List.filter_map
    (fun (entry : Cm_uml.Paths.entry) ->
      if (not entry.is_item) || entry.resource = t.context_def then None
      else if not (wants_root t entry.resource) then None
      else begin
        let params = Cm_http.Uri_template.param_names entry.template in
        (* single-param items (the context's singleton children) are
           already bound by the context walk; ancestors proper need at
           least one id from the request *)
        let all_known =
          List.length params >= 2
          && List.for_all (fun p -> List.mem_assoc p available) params
        in
        if not all_known then None
        else
          match
            get_unwrapped ?fresh t ~resource:entry.resource ~item:true
              request_bindings
          with
          | Some doc ->
            Some
              ( lc t entry.resource,
                graft_sub_collections ?fresh t request_bindings entry.resource
                  doc )
          | None -> None
      end)
    t.entries

let observe ?(fresh = false) ?item ?(bindings = []) t =
  (* which roles the context walk can graft (for dead-doc elimination) *)
  let children = RM.outgoing t.context_def t.model in
  let collection_roles =
    List.filter_map
      (fun (assoc : RM.association) ->
        match RM.find_resource assoc.target t.model with
        | None -> None
        | Some target_def ->
          if
            target_def.kind = RM.Collection
            || Cm_uml.Multiplicity.is_collection assoc.multiplicity
          then Some assoc.role
          else None)
      children
  in
  (* 1. the context resource's own document *)
  let context_members =
    if not (wants_own_attrs t t.context_def ~grafted_roles:collection_roles)
    then []
    else
      match get_unwrapped ~fresh t ~resource:t.context_def ~item:true [] with
      | Some (Json.Obj members) -> members
      | Some _ | None -> []
  in
  (* 2. children of the context: collections become members under their
     role; singleton normals become top-level bindings *)
  let member_bindings, toplevel_bindings =
    List.fold_left
      (fun (members, toplevels) (assoc : RM.association) ->
        match RM.find_resource assoc.target t.model with
        | None -> (members, toplevels)
        | Some target_def ->
          let is_sub_collection =
            target_def.kind = RM.Collection
            || RM.Collection <> target_def.kind
               && Cm_uml.Multiplicity.is_collection assoc.multiplicity
          in
          if is_sub_collection then begin
            if not (wants_member t t.context_def assoc.role) then
              (members, toplevels)
            else
              let listing =
                get_unwrapped ~fresh t ~resource:target_def.def_name
                  ~item:false []
              in
              match listing with
              | Some (Json.List _ as items) ->
                ((assoc.role, items) :: members, toplevels)
              | Some _ | None -> (members, toplevels)
          end
          else if not (wants_root t target_def.def_name) then
            (members, toplevels)
          else begin
            match
              get_unwrapped ~fresh t ~resource:target_def.def_name ~item:true
                []
            with
            | Some doc ->
              ( members,
                (lc t target_def.def_name, doc) :: toplevels )
            | None -> (members, toplevels)
          end)
      ([], []) children
  in
  let context_binding =
    ( lc t t.context_def,
      Json.Obj (context_members @ List.rev member_bindings) )
  in
  (* 3. every item reachable with the request's URI parameters —
     including the addressed item itself and all its ancestors — each
     enriched with its own sub-collection listings *)
  let nested = ancestor_bindings ~fresh t bindings in
  (* 4. an explicitly requested item (used by drivers that know an id
     without having a full request path) *)
  let item_binding =
    match item with
    | None -> []
    | Some (resource, _) when not (wants_root t resource) -> []
    | Some (resource, id)
      when not (List.mem_assoc (lc t resource) nested) ->
      let id_param = Cm_uml.Paths.id_param resource in
      let request_bindings = (id_param, id) :: bindings in
      (match get_unwrapped ~fresh t ~resource ~item:true request_bindings with
       | Some doc ->
         [ ( lc t resource,
             graft_sub_collections ~fresh t request_bindings resource doc )
         ]
       | None -> [])
    | Some _ -> []
  in
  (context_binding :: List.rev toplevel_bindings) @ nested @ item_binding

let privilege = function "admin" -> 0 | "member" -> 1 | "user" -> 2 | _ -> 3

let introspection_path = "/identity/v3/auth/tokens"

let parse_subject_body body =
  let get_str field =
    match Cm_json.Pointer.get [ Key "token"; Key field ] body with
    | Some (Json.String s) -> Some s
    | Some _ | None -> None
  in
  let get_list field =
    match Cm_json.Pointer.get [ Key "token"; Key field ] body with
    | Some (Json.List items) -> items
    | Some _ | None -> []
  in
  let roles =
    List.filter_map
      (function Json.String s -> Some s | _ -> None)
      (get_list "roles")
  in
  let primary =
    match
      List.sort (fun a b -> Int.compare (privilege a) (privilege b)) roles
    with
    | strongest :: _ -> strongest
    | [] -> ""
  in
  Some
    (Json.obj
       [ ("name", Json.string (Option.value ~default:"" (get_str "user")));
         ("groups", Json.List (get_list "groups"));
         ("roles", Json.List (get_list "roles"));
         ("role", Json.string primary);
         ("id", Json.obj [ ("groups", Json.string primary) ])
       ])

let subject_binding backend ~token =
  let req =
    Request.make Cm_http.Meth.GET introspection_path
    |> fun r ->
    { r with
      Request.headers =
        Cm_http.Headers.replace "X-Subject-Token" token r.Request.headers
    }
  in
  match successful_body (backend req) with
  | None -> None
  | Some body -> parse_subject_body body

(* A token identity definitely does not know (revoked or never issued)
   binds an empty subject: groups/roles are [], so auth guards evaluate
   to a definite False rather than Unknown.  Transport-level failures
   stay [None] (Unknown) — we could not observe, so we must not judge. *)
let empty_subject =
  Json.obj
    [ ("name", Json.string "");
      ("groups", Json.List []);
      ("roles", Json.List []);
      ("role", Json.string "");
      ("id", Json.obj [ ("groups", Json.string "") ])
    ]

(* Token introspections are cached under the subject token.  Revocations
   flow through the monitored API as DELETEs on the introspection path,
   whose mutation invalidation clears the cached introspection. *)
let subject_binding_cached ?(fresh = false) t ~token =
  let resp = get ~fresh ~subject_token:(Some token) t introspection_path in
  if Response.is_success resp then
    Option.bind resp.Response.body parse_subject_body
  else if resp.Response.status = Cm_http.Status.not_found then
    Some empty_subject
  else None

let env ?fresh ?item ?bindings ?user_token ?request_body t =
  let observed = observe ?fresh ?item ?bindings t in
  let user_binding =
    match user_token with
    | None -> []
    | Some _ when not (wants_root t "user") -> []
    | Some token ->
      (match subject_binding_cached ?fresh t ~token with
       | Some user -> [ ("user", user) ]
       | None -> [])
  in
  (* The request body is evidence the monitor already holds — no
     observation needed; contracts navigate it as [request.<field>]. *)
  let request_binding =
    match request_body with
    | Some body when wants_root t "request" -> [ ("request", body) ]
    | Some _ | None -> []
  in
  Cm_ocl.Eval.env_of_bindings (observed @ user_binding @ request_binding)
