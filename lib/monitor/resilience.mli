(** Fault-tolerant forwarding: the policy engine between the monitor
    and an unreliable cloud.

    Every call the monitor makes — forwarding a monitored request,
    observation GETs, token introspection — goes through {!call}, which
    adds per-attempt timeout budgets, bounded retries with exponential
    backoff and deterministic jitter (all against the virtual clock, so
    tests are instant and bit-reproducible), idempotency-aware retry of
    mutations behind an [X-Request-Id] dedup key, response validation,
    and a per-route circuit breaker.

    Failure semantics matter more than the mechanics: {!call} only
    returns [Error] when the outcome of the request is {e unknown}
    (every retry lane was exhausted — the last attempt may have reached
    the cloud) or when the circuit is open (nothing was sent).  The
    caller maps the first to a three-valued [Undefined] verdict and the
    second to its degradation mode.  A {e persistent} 5xx, by contrast,
    is the backend's actual answer and comes back as [Ok], so verdicts
    under the resilience layer match verdicts without it. *)

type backend = Cm_http.Request.t -> Cm_http.Response.t

type policy = {
  attempt_timeout_ms : int;
      (** give up waiting on a single attempt after this long *)
  total_budget_ms : int;  (** overall budget for one logical call *)
  max_attempts : int;  (** first try + retries *)
  backoff_base_ms : int;
  backoff_multiplier : float;
  backoff_cap_ms : int;
  jitter : float;
      (** fraction of the nominal backoff spread around it (0 = none,
          1 = full jitter); drawn from the seeded PRNG *)
  retry_mutations : bool;
      (** retry POST/PUT/DELETE/PATCH — safe because an [X-Request-Id]
          idempotency key is attached and the backend dedups on it;
          when false only GET/HEAD/OPTIONS are retried *)
  verified_reads : bool;
      (** issue observation GETs twice and keep the later answer —
          defeats one-update-deep stale caches at the cost of doubling
          read traffic *)
  breaker_threshold : int;
      (** consecutive call failures that open a route's circuit;
          0 disables the breaker *)
  breaker_reset_ms : int;  (** open -> half-open after this long *)
  breaker_half_open_probes : int;  (** probes admitted while half-open *)
}

val default : policy
(** 1 s attempt timeout, 10 s budget, 6 attempts, 25 ms base backoff
    doubling to a 1.6 s cap with 50% jitter, mutation retry on,
    verified reads off, breaker at 8 consecutive failures / 30 s
    reset. *)

type failure =
  | Circuit_open of string  (** route; the request was {e not} sent *)
  | Exhausted of {
      route : string;
      attempts : int;
      elapsed_ms : int;
      last_error : string;
    }  (** retries exhausted; the request {e may} have executed *)

val failure_to_string : failure -> string

val executed_possible : failure -> bool
(** Whether the backend may have executed the request — [false] only
    for {!Circuit_open}. *)

type t

val create :
  ?seed:int ->
  ?route_key:(Cm_http.Request.t -> string) ->
  ?validate:(Cm_http.Request.t -> Cm_http.Response.t -> bool) ->
  policy ->
  Cm_core.Clock.t ->
  backend ->
  t
(** [route_key] buckets requests for the circuit breaker (default:
    method + first two path segments).  [validate] rejects corrupt
    responses — a successful attempt whose response fails validation is
    retried like a transport failure. *)

val call : t -> Cm_http.Request.t -> (Cm_http.Response.t, failure) result

val call_verified :
  t -> Cm_http.Request.t -> (Cm_http.Response.t, failure) result
(** {!call}, plus the double-read stale defense on GETs when the policy
    has [verified_reads]. *)

val backend : t -> backend
(** The layer as a plain backend: failures become synthetic 503/504
    responses (for consumers that treat any non-success as "value not
    observable", like the observer). *)

val request_id_header : string
(** ["X-Request-Id"]. *)

val backoff_ms : policy -> Cm_core.Prng.t -> attempt:int -> int
(** The jittered pause after the given (1-based) failed attempt. *)

val schedule : policy -> seed:int -> int list
(** The full deterministic backoff schedule a fresh layer with this
    seed would use: pauses after attempts [1 .. max_attempts-1]. *)

(** {1 Introspection} *)

type breaker_state = Closed | Open | Half_open

val breaker_state : t -> string -> breaker_state
(** State of the route's breaker ([Closed] if the route is unknown). *)

val breaker_state_to_string : breaker_state -> string

type route_metrics = {
  calls : int;
  attempts : int;
  retries : int;
  call_failures : int;  (** calls that returned [Error] *)
  short_circuited : int;  (** rejected by an open breaker *)
  breaker_opens : int;
}
(** An immutable snapshot; the live counters are [Atomic]-backed so
    they can be read from any domain while serving. *)

val metrics : t -> (string * route_metrics) list
(** Per-route health counters, sorted by route. *)
