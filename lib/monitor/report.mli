(** Summaries over monitoring logs: violation counts, requirement
    coverage, and a rendered validation report (the artifact a tester
    reads after a campaign). *)

type summary = {
  total : int;
  conform : int;
  denied : int;  (** conform-denied *)
  violations : int;
  undefined : int;
  not_monitored : int;
  by_conformance : (string * int) list;  (** verdict name -> count *)
  timed : int;  (** outcomes that carried a phase breakdown *)
  phase_means : Outcome.phases option;
      (** mean per-phase cost over the timed outcomes (monitors run
          with [timings = true]); [None] when nothing was timed *)
  lock_acquisitions : int;
      (** instrumented-lock acquisitions attributed to these exchanges
          (sum of [Outcome.lock_acquisitions]); 0 across the board once
          the monitored path is lock-free *)
}

val summarize : Outcome.t list -> summary

val violations : Outcome.t list -> Outcome.t list

val render : summary -> coverage:(string * int) list -> string
(** Human-readable report: verdict table plus SecReq coverage with
    uncovered requirements flagged. *)

val to_json : summary -> coverage:(string * int) list -> Cm_json.Json.t
(** Machine-readable form for CI gates:
    [{"total": …, "conform": …, "violations": …, "by_conformance": {…},
      "coverage": {…}, "uncovered_requirements": […]}]. *)

val pp_summary : Format.formatter -> summary -> unit
