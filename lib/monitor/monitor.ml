module Json = Cm_json.Json
module Clock = Cm_core.Clock
module Transport = Cm_core.Transport
module Request = Cm_http.Request
module Response = Cm_http.Response
module Status = Cm_http.Status
module Meth = Cm_http.Meth
module Behavior_model = Cm_uml.Behavior_model
module Resource_model = Cm_uml.Resource_model
module Contract = Cm_contracts.Contract
module Runtime = Cm_contracts.Runtime
module Generate = Cm_contracts.Generate

let log_src =
  Logs.Src.create "cloudmon.monitor" ~doc:"cloud monitor exchange verdicts"

module Log = (val Logs.src_log log_src : Logs.LOG)

type mode = Enforce | Oracle
type degradation = Fail_closed | Fail_open_logged

(* Everything the pre-phase concluded about a request, in serializable
   form: the crash-recovery journal persists this *before* the request
   is forwarded, so a monitor restarted mid-exchange can finish the
   verdict without re-running the pre-phase against a post-state world
   (re-observing after the effect would flip guards — e.g. a DELETE's
   item guard is false once the item is gone). *)
type pre_image = {
  pi_pre_verdict : Cm_ocl.Eval.verdict;
  pi_auth : Cm_ocl.Value.tribool option;  (* None: no authorization guard *)
  pi_functional : Cm_ocl.Value.tribool;
  pi_covered : string list;
  pi_snapshot : (string * Cm_ocl.Value.t) list option;
      (* Lean snapshot slots; None under the Full strategy *)
}

type config = {
  mode : mode;
  strategy : Runtime.strategy;
  engine : Runtime.engine;
  eval : Runtime.eval_mode;
  trust_path_delta : bool;
  service_token : string;
  service_token_for : (string -> string option) option;
  resources : Resource_model.t;
  behavior : Behavior_model.t;
  security : Generate.security option;
  stability_check : bool;
  resilience : Resilience.policy option;
  degradation : degradation;
  clock : Clock.t option;
  footprint_pruning : bool;
  cache : Obs_cache.scope;
  timings : bool;
  journal_pre : (pre_image -> unit) option;
      (* called with the pre-phase conclusion of a contracted request,
         after evaluation and before forwarding — the journal's
         write-ahead hook *)
  journal_barrier : (unit -> unit) option;
      (* called immediately before any backend forward (monitored,
         uncontracted, and fail-open alike) — where the journal makes
         everything appended so far durable *)
  crash : Cm_core.Crash.t option;  (* crash-point injection sites *)
}

let default_config ?(mode = Oracle) ?(strategy = Cm_contracts.Runtime.Lean)
    ?(engine = Cm_contracts.Runtime.Compiled)
    ?(eval = Cm_contracts.Runtime.Incremental) ?(trust_path_delta = false)
    ?(stability_check = false) ?resilience ?(degradation = Fail_open_logged)
    ?clock ?(footprint_pruning = true) ?(cache = Obs_cache.Per_request)
    ?(timings = false) ?journal_pre ?journal_barrier ?crash ~service_token
    ?service_token_for ?security resources behavior =
  { mode; strategy; engine; eval; trust_path_delta; service_token;
    service_token_for; resources; behavior; security; stability_check;
    resilience; degradation; clock; footprint_pruning; cache; timings;
    journal_pre; journal_barrier; crash
  }

type t = {
  config : config;
  backend : Observer.backend;  (* the raw transport *)
  resilient : Resilience.t option;
  obs_backend : Observer.backend;  (* what observation GETs go through *)
  mutable forward_seen : bool;
      (* whether the current [handle] already reached the backend — read
         by exception containment to say if the request may have run *)
  entries : Cm_uml.Paths.entry list;
  prepared : (Behavior_model.trigger * Runtime.prepared) list;
  (* Request-path dispatch tables, built once in [create]:
     - [dispatch] buckets URI entries by segment count, each bucket
       presorted by specificity (ties keep derivation order), so
       classification is one bucket scan instead of match-all + sort;
     - [by_trigger] replaces the linear scan over prepared contracts. *)
  dispatch : (int, Cm_uml.Paths.entry list) Hashtbl.t;
  by_trigger : (Behavior_model.trigger, Runtime.prepared) Hashtbl.t;
  analysis_events : Cm_analysis.Effects.event list;
      (* the static write-effect table; [] when underivable *)
  write_templates :
    (Behavior_model.trigger * Cm_http.Uri_template.t list) list;
      (* per trigger: URI templates locating every piece of state its
         write effect covers — expanded against the request's bindings
         they become the cache-invalidation scopes *)
  observer_base : Observer.t;
      (* path entries derived once; per request this is re-targeted with
         [with_project] (a cheap record copy) instead of re-deriving *)
  cache : Obs_cache.t option;
  delta : Delta.t option;  (* touched-path generations (incremental mode) *)
  delta_seen : (Behavior_model.trigger, int) Hashtbl.t;
      (* per contract: the delta generation its frame last synced at *)
  stopwatch : Cm_core.Stopwatch.source option;
  mutable lock_base : int;
      (* instrumented-lock acquisition total at the top of [handle];
         [record] differences against it to attribute lock traffic to
         the exchange *)
  (* per-request phase accumulators, reset at the top of [handle] *)
  mutable ph_observe_pre : float;
  mutable ph_eval_pre : float;
  mutable ph_forward : float;
  mutable ph_observe_post : float;
  mutable ph_eval_post : float;
  mutable log : Outcome.t list;  (* newest first *)
}

let contracts t = List.map (fun (_, p) -> Runtime.contract p) t.prepared
let resilience t = t.resilient
let cache_stats t = Option.map Obs_cache.stats t.cache

let eval_stats t =
  List.fold_left
    (fun (acc : Runtime.eval_stats) (_, p) ->
      let s = Runtime.eval_stats p in
      { Runtime.evals = acc.evals + s.Runtime.evals;
        replays = acc.replays + s.replays;
        node_hits = acc.node_hits + s.node_hits;
        node_evals = acc.node_evals + s.node_evals;
        refreshes = acc.refreshes + s.refreshes;
        slots_changed = acc.slots_changed + s.slots_changed
      })
    { Runtime.evals = 0; replays = 0; node_hits = 0; node_evals = 0;
      refreshes = 0; slots_changed = 0
    }
    t.prepared

let delta_stats t = Option.map Delta.stats t.delta
let flush_cache t = Option.iter Obs_cache.clear t.cache
let uri_table t = t.entries
let configuration t = t.config
let outcomes t = List.rev t.log
let reset_log t = t.log <- []

let coverage t =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (_, p) ->
      List.iter
        (fun req_id ->
          if not (Hashtbl.mem table req_id) then Hashtbl.add table req_id 0)
        (Runtime.contract p).Contract.requirements)
    t.prepared;
  List.iter
    (fun (outcome : Outcome.t) ->
      List.iter
        (fun req_id ->
          Hashtbl.replace table req_id
            (1 + Option.value ~default:0 (Hashtbl.find_opt table req_id)))
        outcome.covered_requirements)
    t.log;
  Hashtbl.fold (fun req_id count acc -> (req_id, count) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let dispatch_table entries =
  let table = Hashtbl.create 32 in
  let sorted =
    List.stable_sort
      (fun (a : Cm_uml.Paths.entry) b ->
        Int.compare
          (Cm_http.Uri_template.specificity b.template)
          (Cm_http.Uri_template.specificity a.template))
      entries
  in
  List.iter
    (fun (entry : Cm_uml.Paths.entry) ->
      let key = List.length (Cm_http.Uri_template.segments entry.template) in
      let bucket = Option.value ~default:[] (Hashtbl.find_opt table key) in
      Hashtbl.replace table key (entry :: bucket))
    (List.rev sorted);
  table

(* A successful observation GET must carry the single-key envelope
   [Observer.unwrap] expects; anything else is a corrupt read the
   resilience layer should retry rather than hand to contract
   evaluation.  Scoped to GETs so forwarded mutations are never
   re-judged by shape. *)
let observation_envelope (req : Request.t) (resp : Response.t) =
  match req.Request.meth with
  | Meth.GET when Response.is_success resp ->
    (match resp.Response.body with
     | Some (Json.Obj [ _ ]) -> true
     | Some _ | None -> false)
  | _ -> true

let create config backend =
  let issues = Cm_uml.Validate.all config.resources [ config.behavior ] in
  if issues <> [] then
    Error (List.map (Fmt.str "%a" Cm_lint.Lint.pp_finding) issues)
  else
    match Cm_uml.Paths.derive config.resources with
    | Error msg -> Error [ msg ]
    | Ok entries ->
      (match Generate.all ?security:config.security config.behavior with
       | Error msg -> Error [ msg ]
       | Ok contract_list ->
         let type_errors =
           List.concat_map
             (fun c ->
               List.map
                 (Fmt.str "contract %a: %a" Behavior_model.pp_trigger
                    c.Contract.trigger Cm_ocl.Typecheck.pp_error)
                 (Generate.typecheck config.resources c))
             contract_list
         in
         if type_errors <> [] then Error type_errors
         else begin
           (* The static analysis layer: per-trigger write effects feed
              the effect-driven cache invalidation, per-contract
              subscription maps let evaluation skip provably inert
              requests and give the sharded driver its closure proof.
              An underivable table (can't happen past the Paths.derive
              above, but kept total) degrades to the conservative
              pre-analysis behaviour. *)
           let analysis_input =
             { Cm_analysis.Input.resources = config.resources;
               behavior = config.behavior;
               security = config.security
             }
           in
           let analysis_events =
             match Cm_analysis.Effects.events analysis_input with
             | Ok events -> events
             | Error _ -> []
           in
           let subscription_for c =
             match analysis_events with
             | [] -> None
             | events ->
               Some
                 (Cm_analysis.Interference.to_runtime
                    (Cm_analysis.Interference.subscription_of events c))
           in
           let write_templates =
             List.filter_map
               (fun (ev : Cm_analysis.Effects.event) ->
                 if ev.ev_identity then None
                 else
                   Some
                     ( ev.ev_trigger,
                       List.concat_map
                         (fun (root, fields) ->
                           Cm_analysis.Monitorability.state_templates
                             analysis_input entries root fields)
                         ev.ev_writes ))
               analysis_events
           in
           let prepared =
             List.map
               (fun c ->
                 ( c.Contract.trigger,
                   Runtime.prepare ~strategy:config.strategy
                     ~engine:config.engine ~eval:config.eval
                     ?subscription:(subscription_for c) c ))
               contract_list
           in
           let by_trigger = Hashtbl.create (2 * List.length prepared + 1) in
           List.iter
             (fun (trigger, p) ->
               if not (Hashtbl.mem by_trigger trigger) then
                 Hashtbl.add by_trigger trigger p)
             prepared;
           let resilient =
             Option.map
               (fun policy ->
                 let clock =
                   match config.clock with
                   | Some clock -> clock
                   | None -> Clock.create ()
                 in
                 Resilience.create ~validate:observation_envelope policy clock
                   backend)
               config.resilience
           in
           let obs_backend =
             match resilient with
             | Some r -> Resilience.backend r
             | None -> backend
           in
           let cache =
             match config.cache with
             | Obs_cache.Disabled -> None
             | scope -> Some (Obs_cache.create scope)
           in
           let observer_base =
             Observer.of_entries ~backend:obs_backend
               ~token:config.service_token ~model:config.resources
               ~project_id:"" entries
             |> fun o -> Observer.with_cache o cache
           in
           let delta =
             if config.eval = Cm_contracts.Runtime.Incremental then
               Some
                 (Delta.create
                    ~context:(Observer.context_def observer_base)
                    entries)
             else None
           in
           let stopwatch =
             if not config.timings then None
             else
               Some
                 (match config.clock with
                 | Some clock -> Cm_core.Stopwatch.Virtual clock
                 | None -> Cm_core.Stopwatch.Wall)
           in
           Ok
             { config;
               backend;
               resilient;
               obs_backend;
               forward_seen = false;
               entries;
               prepared;
               dispatch = dispatch_table entries;
               by_trigger;
               analysis_events;
               write_templates;
               observer_base;
               cache;
               delta;
               delta_seen = Hashtbl.create 16;
               stopwatch;
               lock_base = 0;
               ph_observe_pre = 0.;
               ph_eval_pre = 0.;
               ph_forward = 0.;
               ph_observe_post = 0.;
               ph_eval_post = 0.;
               log = []
             }
         end)

(* ---- request classification ---- *)

type classified = {
  entry : Cm_uml.Paths.entry;
  bindings : (string * string) list;
  trigger : Behavior_model.trigger;
  item : (string * string) option;  (* addressed item: (resource, id) *)
  request_project : string option;
}

(* The resource definition contained in a collection (POST on the
   collection creates one of these). *)
let contained_item resources collection_name =
  match Resource_model.outgoing collection_name resources with
  | child :: _ -> Some child.Resource_model.target
  | [] -> None

let trigger_for_resources resources (entry : Cm_uml.Paths.entry) meth =
  let resource =
    if entry.is_item then
      match meth with
      | Meth.POST ->
        (* POST creates into a collection; on an item URI it matches no
           model trigger (the ":item" suffix can never equal a resource
           definition name), so it is blocked/judged uncontracted. *)
        entry.resource ^ ":item"
      | Meth.GET | Meth.PUT | Meth.DELETE | Meth.HEAD | Meth.PATCH
      | Meth.OPTIONS -> entry.resource
    else
      match meth with
      | Meth.POST ->
        Option.value
          (contained_item resources entry.resource)
          ~default:entry.resource
      | Meth.GET | Meth.PUT | Meth.DELETE | Meth.HEAD | Meth.PATCH
      | Meth.OPTIONS -> entry.resource
  in
  { Behavior_model.meth; resource }

let trigger_for t entry meth =
  trigger_for_resources t.config.resources entry meth

(* The dispatch table buckets by segment count — a template only ever
   matches paths with its own segment count, so the winning entry (most
   specific match, derivation order breaking ties) is the first match in
   the presorted bucket. *)
let entry_in_dispatch dispatch segments =
  match Hashtbl.find_opt dispatch (List.length segments) with
  | None -> None
  | Some bucket ->
    List.find_map
      (fun (entry : Cm_uml.Paths.entry) ->
        match Cm_http.Uri_template.matches_segments entry.template segments with
        | Some bindings -> Some (entry, bindings)
        | None -> None)
      bucket

let entry_for_segments t segments = entry_in_dispatch t.dispatch segments

(* Request → tenant project, derived from the configuration alone: the
   shard router partitions by project *before* any monitor instance is
   involved, so the extraction must not route through (or depend on)
   shard 0's monitor.  One dispatch table of its own, built once. *)
let project_extractor config =
  match Cm_uml.Paths.derive config.resources with
  | Error msg -> Error [ msg ]
  | Ok entries ->
    let dispatch = dispatch_table entries in
    Ok
      (fun (req : Request.t) ->
        match
          entry_in_dispatch dispatch
            (Cm_http.Uri_template.split_path req.Request.path)
        with
        | None -> None
        | Some (_, bindings) -> List.assoc_opt "project_id" bindings)

(* Request → tenant-keyedness, derived from the configuration alone
   (like {!project_extractor}): [true] iff the request classifies to a
   modelled trigger whose event the analysis proved tenant-keyed.
   Unclassified requests — token introspections, unmodelled paths — are
   conservatively cross-shard.  This is what replaces hand-written
   "drop the revocations" filters in shard-determinism harnesses. *)
let tenant_keyed_classifier config =
  match Cm_uml.Paths.derive config.resources with
  | Error msg -> Error [ msg ]
  | Ok entries ->
    let input =
      { Cm_analysis.Input.resources = config.resources;
        behavior = config.behavior;
        security = config.security
      }
    in
    (match Cm_analysis.Effects.events input with
     | Error msg -> Error [ msg ]
     | Ok events ->
       let dispatch = dispatch_table entries in
       Ok
         (fun (req : Request.t) ->
           match
             entry_in_dispatch dispatch
               (Cm_http.Uri_template.split_path req.Request.path)
           with
           | None -> false
           | Some (entry, _) ->
             let trigger =
               trigger_for_resources config.resources entry req.Request.meth
             in
             List.exists
               (fun (ev : Cm_analysis.Effects.event) ->
                 Behavior_model.trigger_equal ev.ev_trigger trigger
                 && ev.ev_tenant_keyed)
               events))

let entry_for_path t path =
  Option.map fst (entry_for_segments t (Cm_http.Uri_template.split_path path))

let classify t (req : Request.t) =
  match
    entry_for_segments t (Cm_http.Uri_template.split_path req.Request.path)
  with
  | None -> None
  | Some (entry, bindings) ->
    let id_param = Cm_uml.Paths.id_param entry.resource in
    Some
      { entry;
        bindings;
        trigger = trigger_for t entry req.Request.meth;
        item =
          (if entry.is_item then
             Option.map
               (fun id -> (entry.resource, id))
               (List.assoc_opt id_param bindings)
           else None);
        request_project = List.assoc_opt "project_id" bindings
      }

let prepared_for t trigger = Hashtbl.find_opt t.by_trigger trigger

let contract_for_trigger t trigger =
  Option.map Runtime.contract (prepared_for t trigger)

let subscriptions t =
  List.filter_map
    (fun (trigger, p) ->
      Option.map (fun s -> (trigger, s)) (Runtime.subscription p))
    t.prepared

let analysis_events t = t.analysis_events

let project_of t req = Option.bind (classify t req) (fun c -> c.request_project)

(* ---- phase timing ---- *)

let timed t slot f =
  match t.stopwatch with
  | None -> f ()
  | Some source ->
    let result, ns = Cm_core.Stopwatch.time_ns source f in
    (match slot with
    | `Observe_pre -> t.ph_observe_pre <- t.ph_observe_pre +. ns
    | `Eval_pre -> t.ph_eval_pre <- t.ph_eval_pre +. ns
    | `Forward -> t.ph_forward <- t.ph_forward +. ns
    | `Observe_post -> t.ph_observe_post <- t.ph_observe_post +. ns
    | `Eval_post -> t.ph_eval_post <- t.ph_eval_post +. ns);
    result

let reset_phases t =
  t.ph_observe_pre <- 0.;
  t.ph_eval_pre <- 0.;
  t.ph_forward <- 0.;
  t.ph_observe_post <- 0.;
  t.ph_eval_post <- 0.

let current_phases t =
  match t.stopwatch with
  | None -> None
  | Some _ ->
    Some
      { Outcome.observe_pre_ns = t.ph_observe_pre;
        eval_pre_ns = t.ph_eval_pre;
        forward_ns = t.ph_forward;
        observe_post_ns = t.ph_observe_post;
        eval_post_ns = t.ph_eval_post
      }

(* ---- observation ---- *)

let observe_env ?request_body t classified prepared =
  let project_id =
    Option.value ~default:"" classified.request_project
  in
  let observer = Observer.with_project t.observer_base ~project_id in
  let observer =
    match t.config.service_token_for with
    | Some resolve ->
      (match resolve project_id with
       | Some token -> Observer.with_token observer ~token
       | None -> observer)
    | None -> observer
  in
  let observer =
    if t.config.footprint_pruning then
      Observer.with_footprint observer (Some (Runtime.footprint prepared))
    else observer
  in
  fun ~fresh ~user_token ->
    Observer.env ~fresh ?item:classified.item ~bindings:classified.bindings
      ?user_token ?request_body observer

(* ---- verdict helpers ---- *)

let expected_success_codes = function
  | Meth.GET | Meth.HEAD | Meth.OPTIONS -> [ 200 ]
  | Meth.PUT | Meth.PATCH -> [ 200; 202 ]
  | Meth.POST -> [ 200; 201; 202 ]
  | Meth.DELETE -> [ 202; 204 ]

let is_auth_failure (resp : Response.t) =
  resp.Response.status = Status.unauthorized
  || resp.Response.status = Status.forbidden

let monitor_body conformance detail =
  Json.obj
    [ ( "monitor",
        Json.obj
          [ ("verdict", Json.string (Outcome.conformance_to_string conformance));
            ("detail", Json.string detail)
          ] )
    ]

let blocked_response conformance detail =
  Response.make
    ~headers:(Cm_http.Headers.content_type_json Cm_http.Headers.empty)
    ~body:(monitor_body conformance detail)
    Status.forbidden

let record t outcome =
  let outcome =
    { outcome with
      Outcome.phases = current_phases t;
      lock_acquisitions =
        Cm_core.Lockstat.total_acquisitions () - t.lock_base
    }
  in
  (if Outcome.is_violation outcome.Outcome.conformance then
     Log.warn (fun m -> m "%a" Outcome.pp outcome)
   else Log.debug (fun m -> m "%a" Outcome.pp outcome));
  t.log <- outcome :: t.log;
  outcome

let tri_of_verdict = function
  | Cm_ocl.Eval.Holds -> `True
  | Cm_ocl.Eval.Violated -> `False
  | Cm_ocl.Eval.Undefined_verdict hint -> `Unknown hint

(* A post-state violation is only trustworthy if the observation is
   stable: re-observe and compare.  Unequal observations mean another
   client is mutating the state concurrently — the verdict cannot be
   attributed to this exchange. *)
let envs_equal a b =
  let canon env =
    List.sort compare
      (List.map
         (fun (k, v) -> (k, Cm_json.Printer.to_string (Cm_json.Json.sort_keys v)))
         (Cm_ocl.Eval.bindings env))
  in
  canon a = canon b

let stable_post_verdict t ~make_env ~user_token post_env post_verdict =
  match post_verdict with
  | Cm_ocl.Eval.Violated when t.config.stability_check ->
    (* [~fresh:true]: the re-observation must reach the cloud, not the
       observation cache, or concurrent interference could be masked by
       replaying our own cached reads. *)
    let second_env =
      timed t `Observe_post (fun () -> make_env ~fresh:true ~user_token)
    in
    if envs_equal post_env second_env then post_verdict
    else
      Cm_ocl.Eval.Undefined_verdict
        "state changed between observations: concurrent interference \
         suspected"
  | verdict -> verdict

(* ---- the main flows ---- *)

let outcome_base req response cloud_response conformance detail =
  { Outcome.request = req;
    response;
    cloud_response;
    conformance;
    pre_verdict = None;
    post_verdict = None;
    covered_requirements = [];
    contract_requirements = [];
    snapshot_bytes = 0;
    detail;
    phases = None;
    lock_acquisitions = 0
  }

(* One forwarded request, three possible worlds: the backend answered;
   the breaker refused to send (the cloud definitely did not see it); or
   retries ran out (the last attempt may have reached the cloud). *)
type forwarded =
  | Delivered of Response.t
  | Not_delivered of Resilience.failure
  | Unknown_outcome of Resilience.failure

(* A forwarded mutation (or one that may have executed) invalidates the
   cache entries its write-set overlaps: the mutated path itself,
   anything beneath it, and every ancestor/listing whose document can
   reflect it.  Unmodelled mutations (e.g. POST .../action) pass through
   here too, so the cache never survives a write it cannot classify.

   Path overlap alone is too narrow across services: an attach under
   /v3/{p}/servers/{s}/attach writes *volume* state, whose cached
   listing lives under /v3/{p}/volumes.  For modelled triggers the
   static write-effect table supplies the precise scopes — the derived
   URI of every piece of state the effect covers, expanded against the
   request's own path bindings — so sibling caches the trigger provably
   cannot touch survive.  Mutations the model does not classify fall
   back to dropping the whole tenant scope (the path's first two
   segments).  Token introspections (a different first segment)
   survive either way. *)
let tenant_scope_of_path path =
  match String.split_on_char '/' path |> List.filter (fun s -> s <> "") with
  | base :: context :: _ :: _ -> Some ("/" ^ base ^ "/" ^ context)
  | _ -> None

(* Expand a scope template against the request's path bindings,
   truncating at the first unbound parameter: /v3/{p}/volumes/{vid}
   with only [p] bound becomes /v3/<p>/volumes — a prefix covering
   every concrete instance the write could have touched. *)
let expand_scope bindings template =
  let rec go acc = function
    | [] -> List.rev acc
    | Cm_http.Uri_template.Literal s :: rest -> go (s :: acc) rest
    | Cm_http.Uri_template.Param p :: rest ->
      (match List.assoc_opt p bindings with
       | Some v -> go (v :: acc) rest
       | None -> List.rev acc)
  in
  match go [] (Cm_http.Uri_template.segments template) with
  | [] -> None
  | segs -> Some ("/" ^ String.concat "/" segs)

let write_scopes t (req : Request.t) =
  match
    entry_for_segments t (Cm_http.Uri_template.split_path req.Request.path)
  with
  | None -> None
  | Some (entry, bindings) ->
    (match
       List.assoc_opt (trigger_for t entry req.Request.meth) t.write_templates
     with
     | None -> None
     | Some templates ->
       Some
         (List.sort_uniq String.compare
            (List.filter_map (expand_scope bindings) templates)))

let invalidate_after_mutation t (req : Request.t) =
  if not (Meth.is_safe req.Request.meth) then begin
    let paths =
      match write_scopes t req with
      | Some (_ :: _ as scopes) ->
        (* the mutated path itself is always dropped too: an effect can
           under-specify the addressed document even when the analysis
           classified the trigger *)
        List.sort_uniq String.compare (req.Request.path :: scopes)
      | Some [] | None ->
        (* unclassified mutation: the scope is a segment prefix of the
           path, so every entry the path itself overlaps is also
           overlapped by the scope — one invalidation covers both *)
        [ (match tenant_scope_of_path req.Request.path with
          | Some scope -> scope
          | None -> req.Request.path)
        ]
    in
    List.iter
      (fun path ->
        Option.iter
          (fun cache -> Obs_cache.invalidate_overlapping cache path)
          t.cache;
        (* the same write-set feeds the touched-path generations the
           incremental engine uses (stats always; root-skipping only
           when [trust_path_delta]) *)
        Option.iter (fun delta -> Delta.note delta path) t.delta)
      paths
  end

let forward t req =
  (* WAL barrier: before the backend can see the request, the journal
     (when one is attached) must have synced the request record and any
     pre-image appended for it — recovery depends on "forwarded implies
     durably journaled". *)
  Option.iter (fun barrier -> barrier ()) t.config.journal_barrier;
  let result =
    timed t `Forward (fun () ->
        match t.resilient with
        | None ->
          t.forward_seen <- true;
          Delivered (t.backend req)
        | Some r ->
          (* [call_verified] so the double-read stale defense also covers
             forwarded GETs (a stale 200 for a deleted resource would flip a
             definite verdict); for non-GETs it is exactly [call]. *)
          (match Resilience.call_verified r req with
           | Ok resp ->
             t.forward_seen <- true;
             Delivered resp
           | Error (Resilience.Circuit_open _ as failure) ->
             Not_delivered failure
           | Error (Resilience.Exhausted _ as failure) ->
             t.forward_seen <- true;
             Unknown_outcome failure))
  in
  (match result with
  | Delivered _ | Unknown_outcome _ ->
    Cm_core.Crash.at t.config.crash "monitor.after-forward";
    invalidate_after_mutation t req;
    Cm_core.Crash.at t.config.crash "monitor.after-invalidate"
  | Not_delivered _ -> ());
  result

(* The circuit is open: monitoring cannot complete, and nothing was
   sent.  [Fail_closed] rejects outright (availability sacrificed for
   certainty); [Fail_open_logged] forwards raw — one shot, unmonitored —
   so the cloud stays reachable behind a wedged monitor.  Either way the
   exchange is logged as [Degraded], never as a cloud verdict. *)
let degrade t req failure =
  let why = Resilience.failure_to_string failure in
  match t.config.degradation with
  | Fail_closed ->
    let detail = "fail-closed: " ^ why in
    let response =
      Response.make
        ~headers:(Cm_http.Headers.content_type_json Cm_http.Headers.empty)
        ~body:(monitor_body (Outcome.Degraded detail) detail)
        Status.service_unavailable
    in
    outcome_base req response None (Outcome.Degraded detail) detail
  | Fail_open_logged ->
    let detail = "fail-open: forwarded unmonitored (" ^ why ^ ")" in
    Option.iter (fun barrier -> barrier ()) t.config.journal_barrier;
    (match timed t `Forward (fun () -> t.backend req) with
     | response ->
       t.forward_seen <- true;
       invalidate_after_mutation t req;
       outcome_base req response (Some response) (Outcome.Degraded detail)
         detail
     | exception exn when Transport.is_failure exn ->
       let detail = detail ^ "; raw forward failed: " ^ Transport.describe exn in
       invalidate_after_mutation t req;
       outcome_base req
         (Response.error Status.bad_gateway detail)
         None (Outcome.Degraded detail) detail)

(* Retries exhausted after the request may have reached the cloud: the
   outcome of this exchange is genuinely three-valued. *)
let unknown_outcome req failure =
  let hint =
    "forwarding outcome unknown: " ^ Resilience.failure_to_string failure
  in
  outcome_base req
    (Response.error Status.gateway_timeout hint)
    None (Outcome.Undefined hint) hint

let not_monitored t req =
  match forward t req with
  | Not_delivered failure -> degrade t req failure
  | Unknown_outcome failure -> unknown_outcome req failure
  | Delivered response ->
    { Outcome.request = req;
      response;
      cloud_response = Some response;
      conformance = Outcome.Not_monitored;
      pre_verdict = None;
      post_verdict = None;
      covered_requirements = [];
      contract_requirements = [];
      snapshot_bytes = 0;
      detail = "no model entry for this URI";
      phases = None;
      lock_acquisitions = 0
    }

let no_contract t classified req =
  match t.config.mode with
  | Enforce ->
    let allowed =
      Behavior_model.methods_on classified.trigger.Behavior_model.resource
        t.config.behavior
      |> List.map Meth.to_string |> String.concat ", "
    in
    let response =
      Response.error Status.method_not_allowed
        (Printf.sprintf "method not permitted by the model (allowed: %s)"
           allowed)
    in
    { Outcome.request = req;
      response;
      cloud_response = None;
      conformance = Outcome.Conform_denied;
      pre_verdict = None;
      post_verdict = None;
      covered_requirements = [];
      contract_requirements = [];
      snapshot_bytes = 0;
      detail = "no contract for trigger";
      phases = None;
      lock_acquisitions = 0
    }
  | Oracle ->
    (match forward t req with
     | Not_delivered failure -> degrade t req failure
     | Unknown_outcome failure -> unknown_outcome req failure
     | Delivered response ->
       let conformance =
         if Response.is_success response then
           Outcome.Functional_wrongly_accepted
         else Outcome.Conform_denied
       in
       { Outcome.request = req;
         response;
         cloud_response = Some response;
         conformance;
         pre_verdict = None;
         post_verdict = None;
         covered_requirements = [];
         contract_requirements = [];
         snapshot_bytes = 0;
         detail = "method has no contract in the model";
         phases = None;
         lock_acquisitions = 0
       })

let tri_tag hint = function
  | Cm_ocl.Value.True -> `True
  | Cm_ocl.Value.False -> `False
  | Cm_ocl.Value.Unknown -> `Unknown hint

let auth_tag = function
  | None -> `True
  | Some tri -> tri_tag "authorization guard undefined" tri

let functional_tag tri = tri_tag "functional precondition undefined" tri

(* Timeout after forwarding, mid-contract: the request may or may not
   have executed.  Re-probe the observed state and record how it
   reconciles with the pre-snapshot, but keep the verdict three-valued —
   the presence (or absence) of the effect cannot be attributed to this
   request, so claiming [Conform] or [Post_violated] here would be a
   coin-flip dressed as a verdict. *)
let unknown_after_forward t ~prepared ~make_env ~user_token ~snapshot
    ~pre_verdict ~covered ~requirements req failure =
  let post_obs =
    timed t `Observe_post (fun () ->
        Runtime.observe prepared (make_env ~fresh:false ~user_token))
  in
  let post_verdict =
    timed t `Eval_post (fun () ->
        Runtime.check_post_observed prepared snapshot post_obs)
  in
  let hint =
    "forwarding outcome unknown: " ^ Resilience.failure_to_string failure
  in
  let reconcile =
    match post_verdict with
    | Cm_ocl.Eval.Holds -> "re-probe: post-state consistent with execution"
    | Cm_ocl.Eval.Violated ->
      "re-probe: post-state does not show the expected effect"
    | Cm_ocl.Eval.Undefined_verdict _ -> "re-probe: post-state unobservable"
  in
  let detail = hint ^ "; " ^ reconcile in
  { (outcome_base req
       (Response.error Status.gateway_timeout detail)
       None (Outcome.Undefined hint) detail)
    with
    pre_verdict = Some pre_verdict;
    post_verdict = Some post_verdict;
    covered_requirements = covered;
    contract_requirements = requirements;
    snapshot_bytes = Runtime.snapshot_bytes snapshot
  }

(* Everything downstream of the pre-phase: journal the pre-image,
   forward, observe the post-state, classify the exchange.  Shared by
   the live path ([monitored]) and crash recovery ([resume]), which
   re-enters here with the *journaled* pre-image instead of re-running
   the pre-phase — after the effect is applied, re-observed guards
   would lie about the pre-state (a DELETE's item guard is false once
   the item is gone). *)
let conclude t prepared req ~user_token ~make_env ~observe_now ~pre_verdict
    ~auth ~functional ~covered ~snapshot =
  Option.iter
    (fun sink ->
      sink
        { pi_pre_verdict = pre_verdict;
          pi_auth = auth;
          pi_functional = functional;
          pi_covered = covered;
          pi_snapshot = Runtime.snapshot_values snapshot
        })
    t.config.journal_pre;
  let contract = Runtime.contract prepared in
  let auth_tri = auth_tag auth in
  let functional_tri = functional_tag functional in
  match t.config.mode with
  | Enforce ->
    (match forward t req with
     | Not_delivered failure ->
       { (degrade t req failure) with
         pre_verdict = Some pre_verdict;
         covered_requirements = covered;
         contract_requirements = contract.Contract.requirements
       }
     | Unknown_outcome failure ->
       unknown_after_forward t ~prepared ~make_env ~user_token ~snapshot
         ~pre_verdict ~covered
         ~requirements:contract.Contract.requirements req failure
     | Delivered cloud_response ->
       let post_obs = timed t `Observe_post observe_now in
       let post_verdict =
         stable_post_verdict t ~make_env ~user_token
           (Runtime.observed_env post_obs)
           (timed t `Eval_post (fun () ->
                Runtime.check_post_observed prepared snapshot post_obs))
       in
       let snapshot_bytes = Runtime.snapshot_bytes snapshot in
       (match tri_of_verdict post_verdict with
        | `True ->
          { (outcome_base req cloud_response (Some cloud_response)
               Outcome.Conform "")
            with
            pre_verdict = Some pre_verdict;
            post_verdict = Some post_verdict;
            covered_requirements = covered;
            contract_requirements = contract.Contract.requirements;
            snapshot_bytes
          }
        | `False ->
          let detail = "postcondition violated after forwarding" in
          let response =
            Response.make
              ~headers:
                (Cm_http.Headers.content_type_json Cm_http.Headers.empty)
              ~body:(monitor_body Outcome.Post_violated detail)
              Status.internal_server_error
          in
          { (outcome_base req response (Some cloud_response)
               Outcome.Post_violated detail)
            with
            pre_verdict = Some pre_verdict;
            post_verdict = Some post_verdict;
            covered_requirements = covered;
            contract_requirements = contract.Contract.requirements;
            snapshot_bytes
          }
        | `Unknown hint ->
          let detail = "postcondition undefined: " ^ hint in
          let response =
            Response.make
              ~headers:
                (Cm_http.Headers.content_type_json Cm_http.Headers.empty)
              ~body:(monitor_body (Outcome.Undefined hint) detail)
              Status.internal_server_error
          in
          { (outcome_base req response (Some cloud_response)
               (Outcome.Undefined hint) detail)
            with
            pre_verdict = Some pre_verdict;
            post_verdict = Some post_verdict;
            covered_requirements = covered;
            contract_requirements = contract.Contract.requirements;
            snapshot_bytes
          }))
  | Oracle ->
    (match forward t req with
     | Not_delivered failure ->
       { (degrade t req failure) with
         pre_verdict = Some pre_verdict;
         covered_requirements = covered;
         contract_requirements = contract.Contract.requirements
       }
     | Unknown_outcome failure ->
       unknown_after_forward t ~prepared ~make_env ~user_token ~snapshot
         ~pre_verdict ~covered
         ~requirements:contract.Contract.requirements req failure
     | Delivered cloud_response ->
       let post_obs = timed t `Observe_post observe_now in
       let snapshot_bytes = Runtime.snapshot_bytes snapshot in
       let success = Response.is_success cloud_response in
       let conformance, post_verdict, detail =
         match auth_tri, functional_tri with
         | `Unknown hint, _ | _, `Unknown hint ->
           (Outcome.Undefined hint, None, "precondition undefined")
         | `False, _ ->
           if success then
             ( Outcome.Security_unauthorized_allowed,
               None,
               "specification forbids this subject, yet the cloud performed \
                the request" )
           else (Outcome.Conform_denied, None, "")
         | `True, `False ->
           if success then
             ( Outcome.Functional_wrongly_accepted,
               None,
               "behavioural precondition false, yet the cloud performed the \
                request" )
           else (Outcome.Conform_denied, None, "")
         | `True, `True ->
           if is_auth_failure cloud_response then
             ( Outcome.Security_authorized_denied,
               None,
               "specification permits this subject, yet the cloud denied" )
           else if not success then
             ( Outcome.Functional_wrongly_rejected,
               None,
               Printf.sprintf "expected success, got %d"
                 cloud_response.Response.status )
           else if
             not
               (List.mem cloud_response.Response.status
                  (expected_success_codes req.Request.meth))
           then
             ( Outcome.Functional_bad_status,
               None,
               Printf.sprintf "success status %d not in the expected set"
                 cloud_response.Response.status )
           else begin
             let post_verdict =
               stable_post_verdict t ~make_env ~user_token
                 (Runtime.observed_env post_obs)
                 (timed t `Eval_post (fun () ->
                      Runtime.check_post_observed prepared snapshot post_obs))
             in
             match tri_of_verdict post_verdict with
             | `True -> (Outcome.Conform, Some post_verdict, "")
             | `False ->
               ( Outcome.Post_violated,
                 Some post_verdict,
                 "postcondition violated" )
             | `Unknown hint ->
               ( Outcome.Undefined hint,
                 Some post_verdict,
                 "postcondition undefined" )
           end
       in
       { (outcome_base req cloud_response (Some cloud_response) conformance
            detail)
         with
         pre_verdict = Some pre_verdict;
         post_verdict;
         covered_requirements = covered;
         contract_requirements = contract.Contract.requirements;
         snapshot_bytes
       })

let monitored t classified prepared req =
  let user_token = Request.auth_token req in
  let make_env =
    observe_env ?request_body:req.Request.body t classified prepared
  in
  (* Trusted-delta mode: roots no mutation's template overlapped since
     this contract's frame last synced are skipped without diffing.
     [seen] is captured once — the forward in between bumps the
     generation, so the post-observation still re-syncs everything the
     mutation touched. *)
  let changed =
    match t.delta with
    | Some d when t.config.trust_path_delta ->
      let seen =
        Option.value ~default:(-1)
          (Hashtbl.find_opt t.delta_seen classified.trigger)
      in
      Some (fun root -> Delta.changed_since d ~seen root)
    | _ -> None
  in
  let observe_now () =
    let obs =
      Runtime.observe ?changed prepared (make_env ~fresh:false ~user_token)
    in
    Option.iter
      (fun d ->
        Hashtbl.replace t.delta_seen classified.trigger (Delta.generation d))
      t.delta;
    obs
  in
  let pre_obs = timed t `Observe_pre observe_now in
  let contract = Runtime.contract prepared in
  let pre_verdict =
    timed t `Eval_pre (fun () -> Runtime.check_pre_observed prepared pre_obs)
  in
  let covered =
    timed t `Eval_pre (fun () ->
        Runtime.covered_requirements_observed prepared pre_obs)
  in
  let auth =
    timed t `Eval_pre (fun () -> Runtime.auth_guard_tri prepared pre_obs)
  in
  let functional =
    timed t `Eval_pre (fun () -> Runtime.functional_pre_tri prepared pre_obs)
  in
  let conclude_now () =
    let snapshot =
      timed t `Eval_pre (fun () ->
          Runtime.take_snapshot_observed prepared pre_obs)
    in
    conclude t prepared req ~user_token ~make_env ~observe_now ~pre_verdict
      ~auth ~functional ~covered ~snapshot
  in
  match t.config.mode with
  | Enforce ->
    (match tri_of_verdict pre_verdict with
     | `False ->
       let detail =
         match auth_tag auth with
         | `False -> "precondition violated: authorization"
         | `True | `Unknown _ -> "precondition violated: behavioural guard"
       in
       let response = blocked_response Outcome.Conform_denied detail in
       { (outcome_base req response None Outcome.Conform_denied detail) with
         pre_verdict = Some pre_verdict;
         covered_requirements = covered;
         contract_requirements = contract.Contract.requirements
       }
     | `Unknown hint ->
       let detail = "precondition undefined: " ^ hint in
       let response = blocked_response (Outcome.Undefined hint) detail in
       { (outcome_base req response None (Outcome.Undefined hint) detail) with
         pre_verdict = Some pre_verdict;
         covered_requirements = covered;
         contract_requirements = contract.Contract.requirements
       }
     | `True -> conclude_now ())
  | Oracle -> conclude_now ()

let handle_inner t req =
  match classify t req with
  | None -> not_monitored t req
  | Some classified ->
    (match prepared_for t classified.trigger with
     | None -> no_contract t classified req
     | Some prepared -> monitored t classified prepared req)

(* Recovery re-entry: finish a request whose pre-phase already ran (and
   was journaled) before a crash.  Re-forwarding is idempotent by the
   request's X-Request-Id — the backend's dedup replays the original
   response if the first attempt got through — and the journaled
   pre-image stands in for the pre-phase, whose guards can no longer be
   observed truthfully once the effect may have been applied. *)
let resume_inner t req (image : pre_image) =
  match classify t req with
  | None -> not_monitored t req
  | Some classified ->
    (match prepared_for t classified.trigger with
     | None -> no_contract t classified req
     | Some prepared ->
       let user_token = Request.auth_token req in
       let make_env =
         observe_env ?request_body:req.Request.body t classified prepared
       in
       let observe_now () =
         Runtime.observe prepared (make_env ~fresh:false ~user_token)
       in
       let snapshot =
         match image.pi_snapshot with
         | Some values -> Runtime.snapshot_of_values values
         | None ->
           (* Full-strategy snapshots are not journalable; snapshot the
              current state instead (journaled monitors run Lean, so
              this arm is a fallback, not a correctness path). *)
           timed t `Eval_pre (fun () ->
               Runtime.take_snapshot_observed prepared
                 (timed t `Observe_pre observe_now))
       in
       conclude t prepared req ~user_token ~make_env ~observe_now
         ~pre_verdict:image.pi_pre_verdict ~auth:image.pi_auth
         ~functional:image.pi_functional ~covered:image.pi_covered ~snapshot)

(* Per-request exception containment.  A transport failure that escapes
   (no resilience layer configured) degrades the exchange; any other
   exception is a bug in the monitor itself and is reported as
   [Monitor_error] — a monitor bug must never surface as a cloud
   violation, and must never take the proxy down with it.  Resource
   exhaustion is not containable and is re-raised, and so is injected
   [Crash.Crashed]: a kill site must actually kill the monitor, or
   crash campaigns would measure the containment instead of recovery. *)
let contained t req run =
  t.forward_seen <- false;
  reset_phases t;
  t.lock_base <- Cm_core.Lockstat.total_acquisitions ();
  Option.iter Obs_cache.begin_request t.cache;
  match run () with
  | outcome -> record t outcome
  | exception
      ((Stack_overflow | Out_of_memory | Cm_core.Crash.Crashed _) as exn) ->
    raise exn
  | exception exn ->
    let suffix =
      if t.forward_seen then " (the request may have reached the cloud)"
      else " (before the request reached the cloud)"
    in
    if Transport.is_failure exn then begin
      let detail =
        "transport failure escaped monitoring: " ^ Transport.describe exn
        ^ suffix
      in
      record t
        (outcome_base req
           (Response.error Status.bad_gateway detail)
           None (Outcome.Degraded detail) detail)
    end
    else begin
      let detail =
        "internal monitor exception contained: " ^ Printexc.to_string exn
        ^ suffix
      in
      Log.err (fun m -> m "%s" detail);
      record t
        (outcome_base req
           (Response.error Status.internal_server_error detail)
           None (Outcome.Monitor_error detail) detail)
    end

let handle t req = contained t req (fun () -> handle_inner t req)
let resume t req image = contained t req (fun () -> resume_inner t req image)
let handle_response t req = (handle t req).Outcome.response
