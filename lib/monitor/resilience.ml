module Clock = Cm_core.Clock
module Prng = Cm_core.Prng
module Transport = Cm_core.Transport
module Request = Cm_http.Request
module Response = Cm_http.Response
module Status = Cm_http.Status
module Meth = Cm_http.Meth
module Headers = Cm_http.Headers

type backend = Request.t -> Response.t

type policy = {
  attempt_timeout_ms : int;
  total_budget_ms : int;
  max_attempts : int;
  backoff_base_ms : int;
  backoff_multiplier : float;
  backoff_cap_ms : int;
  jitter : float;
  retry_mutations : bool;
  verified_reads : bool;
  breaker_threshold : int;
  breaker_reset_ms : int;
  breaker_half_open_probes : int;
}

let default =
  { attempt_timeout_ms = 1_000;
    total_budget_ms = 10_000;
    max_attempts = 6;
    backoff_base_ms = 25;
    backoff_multiplier = 2.0;
    backoff_cap_ms = 1_600;
    jitter = 0.5;
    retry_mutations = true;
    verified_reads = false;
    breaker_threshold = 8;
    breaker_reset_ms = 30_000;
    breaker_half_open_probes = 1;
  }

type failure =
  | Circuit_open of string
  | Exhausted of {
      route : string;
      attempts : int;
      elapsed_ms : int;
      last_error : string;
    }

let failure_to_string = function
  | Circuit_open route -> Printf.sprintf "circuit open on %s" route
  | Exhausted { route; attempts; elapsed_ms; last_error } ->
    Printf.sprintf "%s after %d attempts / %d virtual ms on %s" last_error
      attempts elapsed_ms route

let executed_possible = function
  | Circuit_open _ -> false
  | Exhausted _ -> true

(* ---- circuit breaker ---- *)

type breaker_state = Closed | Open | Half_open

let breaker_state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type breaker = {
  mutable state : breaker_state;
  mutable consecutive_failures : int;
  mutable opened_at : int;
  mutable half_open_in_flight : int;
  mutable opens : int;
}

let new_breaker () =
  { state = Closed; consecutive_failures = 0; opened_at = 0;
    half_open_in_flight = 0; opens = 0
  }

(* Live counters are Atomic so shards can be polled from other domains
   while serving; [route_metrics] below is the immutable snapshot the
   API exposes. *)
type route_counters = {
  c_calls : int Atomic.t;
  c_attempts : int Atomic.t;
  c_retries : int Atomic.t;
  c_call_failures : int Atomic.t;
  c_short_circuited : int Atomic.t;
  c_breaker_opens : int Atomic.t;
}

type route_metrics = {
  calls : int;
  attempts : int;
  retries : int;
  call_failures : int;
  short_circuited : int;
  breaker_opens : int;
}

type t = {
  policy : policy;
  clock : Clock.t;
  inner : backend;
  rng : Prng.t;
  route_key : Request.t -> string;
  validate : Request.t -> Response.t -> bool;
  breakers : (string, breaker) Hashtbl.t;
  metrics : (string, route_counters) Hashtbl.t;
}

(* Process-global so ids stay unique across every monitor/shard sharing
   one idempotency table — two shards both minting "cm-1" would collide
   in the cloud's dedup cache and replay a stranger's response. *)
let next_request_id = Atomic.make 1

(* Method + first two path segments: one breaker per API route family
   (e.g. "POST /v3/myProject"), so a wedged volume service does not
   short-circuit identity traffic. *)
let default_route_key (req : Request.t) =
  let segments = Request.path_segments req in
  let prefix =
    match segments with
    | a :: b :: _ -> a ^ "/" ^ b
    | [ a ] -> a
    | [] -> "/"
  in
  Meth.to_string req.Request.meth ^ " /" ^ prefix

let create ?(seed = 0xBACC0FF) ?route_key ?(validate = fun _ _ -> true) policy
    clock inner =
  { policy;
    clock;
    inner;
    rng = Prng.of_seed seed;
    route_key = Option.value ~default:default_route_key route_key;
    validate;
    breakers = Hashtbl.create 16;
    metrics = Hashtbl.create 16
  }

let breaker_for t route =
  match Hashtbl.find_opt t.breakers route with
  | Some b -> b
  | None ->
    let b = new_breaker () in
    Hashtbl.add t.breakers route b;
    b

let metrics_for t route =
  match Hashtbl.find_opt t.metrics route with
  | Some m -> m
  | None ->
    let m =
      { c_calls = Atomic.make 0;
        c_attempts = Atomic.make 0;
        c_retries = Atomic.make 0;
        c_call_failures = Atomic.make 0;
        c_short_circuited = Atomic.make 0;
        c_breaker_opens = Atomic.make 0
      }
    in
    Hashtbl.add t.metrics route m;
    m

let snapshot_counters c =
  { calls = Atomic.get c.c_calls;
    attempts = Atomic.get c.c_attempts;
    retries = Atomic.get c.c_retries;
    call_failures = Atomic.get c.c_call_failures;
    short_circuited = Atomic.get c.c_short_circuited;
    breaker_opens = Atomic.get c.c_breaker_opens
  }

let metrics t =
  Hashtbl.fold (fun route m acc -> (route, snapshot_counters m) :: acc) t.metrics []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let breaker_state t route =
  match Hashtbl.find_opt t.breakers route with
  | None -> Closed
  | Some b -> b.state

(* Admission: Closed always admits; Open admits nothing until the reset
   window has elapsed, then flips to Half_open; Half_open admits up to
   [breaker_half_open_probes] concurrent probes. *)
let breaker_admit t b =
  if t.policy.breaker_threshold <= 0 then true
  else
    match b.state with
    | Closed -> true
    | Open ->
      if Clock.elapsed_since t.clock b.opened_at >= t.policy.breaker_reset_ms
      then begin
        b.state <- Half_open;
        b.half_open_in_flight <- 0;
        true
      end
      else false
    | Half_open -> b.half_open_in_flight < t.policy.breaker_half_open_probes

let breaker_success b =
  b.consecutive_failures <- 0;
  (match b.state with
   | Half_open | Open -> b.state <- Closed
   | Closed -> ());
  b.half_open_in_flight <- 0

let breaker_failure t b m =
  b.consecutive_failures <- b.consecutive_failures + 1;
  if
    t.policy.breaker_threshold > 0
    && (b.state = Half_open
        || b.consecutive_failures >= t.policy.breaker_threshold)
  then begin
    if b.state <> Open then begin
      b.opens <- b.opens + 1;
      Atomic.incr m.c_breaker_opens
    end;
    b.state <- Open;
    b.opened_at <- Clock.now t.clock;
    b.half_open_in_flight <- 0
  end

(* ---- backoff ---- *)

let backoff_ms policy rng ~attempt =
  let raw =
    float_of_int policy.backoff_base_ms
    *. (policy.backoff_multiplier ** float_of_int (attempt - 1))
  in
  let capped = Float.min raw (float_of_int policy.backoff_cap_ms) in
  let jittered =
    if policy.jitter <= 0.0 then capped
    else begin
      (* full-jitter around the nominal value: [(1-j/2) .. (1+j/2)] * capped *)
      let spread = policy.jitter *. capped in
      capped -. (spread /. 2.0) +. (Prng.float rng *. spread)
    end
  in
  max 1 (int_of_float jittered)

let schedule policy ~seed =
  let rng = Prng.of_seed seed in
  List.init
    (max 0 (policy.max_attempts - 1))
    (fun i -> backoff_ms policy rng ~attempt:(i + 1))

(* ---- retry loop ---- *)

let retryable_meth policy (req : Request.t) =
  match req.Request.meth with
  | Meth.GET | Meth.HEAD | Meth.OPTIONS -> true
  | Meth.POST | Meth.PUT | Meth.DELETE | Meth.PATCH -> policy.retry_mutations

let mutating (req : Request.t) =
  match req.Request.meth with
  | Meth.POST | Meth.PUT | Meth.DELETE | Meth.PATCH -> true
  | Meth.GET | Meth.HEAD | Meth.OPTIONS -> false

let request_id_header = "X-Request-Id"

(* Attach the idempotency key that makes retrying a mutation safe: the
   same id is reused on every attempt of this logical request, and the
   backend replays the first response instead of re-executing. *)
let ensure_request_id t req =
  if
    t.policy.retry_mutations && mutating req
    && Headers.get request_id_header req.Request.headers = None
  then
    { req with
      Request.headers =
        Headers.replace request_id_header
          (Printf.sprintf "cm-%d" (Atomic.fetch_and_add next_request_id 1))
          req.Request.headers
    }
  else req

(* A 502/503/504 is treated as a not-executed gateway blip (true in the
   simulation: both chaos blips and Flaky_action 503s fire before the
   service acts) and is retried for every method. *)
let retryable_5xx (resp : Response.t) =
  resp.Response.status = Status.bad_gateway
  || resp.Response.status = Status.service_unavailable
  || resp.Response.status = Status.gateway_timeout

type attempt_outcome =
  | Got of Response.t
  | Blip of Response.t
  | Attempt_failed of string

let one_attempt t req =
  let started = Clock.now t.clock in
  match t.inner req with
  | resp ->
    let elapsed = Clock.elapsed_since t.clock started in
    if elapsed > t.policy.attempt_timeout_ms then begin
      (* The response arrived after the caller stopped waiting: the
         caller's timeline resumes at its deadline, the response is
         discarded, and the outcome of the request is unknown. *)
      Clock.set t.clock (started + t.policy.attempt_timeout_ms);
      Attempt_failed
        (Printf.sprintf "attempt timed out (>%d virtual ms)"
           t.policy.attempt_timeout_ms)
    end
    else if retryable_5xx resp then Blip resp
    else if not (t.validate req resp) then
      Attempt_failed "response failed validation (corrupt body)"
    else Got resp
  | exception exn when Transport.is_failure exn ->
    let elapsed = Clock.elapsed_since t.clock started in
    if elapsed > t.policy.attempt_timeout_ms then
      Clock.set t.clock (started + t.policy.attempt_timeout_ms);
    Attempt_failed (Transport.describe exn)

let call t req =
  let route = t.route_key req in
  let b = breaker_for t route in
  let m = metrics_for t route in
  Atomic.incr m.c_calls;
  if not (breaker_admit t b) then begin
    Atomic.incr m.c_short_circuited;
    Error (Circuit_open route)
  end
  else begin
    if b.state = Half_open then
      b.half_open_in_flight <- b.half_open_in_flight + 1;
    let req = ensure_request_id t req in
    let started = Clock.now t.clock in
    let deadline = started + t.policy.total_budget_ms in
    let finish_failure attempts last_error =
      Atomic.incr m.c_call_failures;
      breaker_failure t b m;
      Error
        (Exhausted
           { route;
             attempts;
             elapsed_ms = Clock.elapsed_since t.clock started;
             last_error
           })
    in
    let rec loop attempt last_blip =
      Atomic.incr m.c_attempts;
      match one_attempt t req with
      | Got resp ->
        breaker_success b;
        Ok resp
      | (Blip _ | Attempt_failed _) as failed ->
        let last_error, last_blip =
          match failed with
          | Blip resp ->
            ( Printf.sprintf "gateway %d" resp.Response.status,
              Some resp )
          | Attempt_failed msg -> (msg, last_blip)
          | Got _ -> assert false
        in
        let retry_allowed =
          match failed with
          | Blip _ -> true (* not executed: safe for every method *)
          | _ -> retryable_meth t.policy req
        in
        if
          attempt >= t.policy.max_attempts
          || (not retry_allowed)
          || Clock.now t.clock >= deadline
        then begin
          match last_blip, failed with
          | Some resp, Blip _ ->
            (* A *persistent* 5xx is the backend's actual answer, not
               transport noise: pass it through as a definite response
               so verdicts match a run without the resilience layer. *)
            breaker_failure t b m;
            Ok resp
          | _ -> finish_failure attempt last_error
        end
        else begin
          Atomic.incr m.c_retries;
          let pause = backoff_ms t.policy t.rng ~attempt in
          let pause = min pause (max 1 (deadline - Clock.now t.clock)) in
          Clock.advance t.clock pause;
          loop (attempt + 1) last_blip
        end
    in
    loop 1 None
  end

(* Double-read defense against stale caches: read twice, keep the later
   answer (a one-update-deep stale cache cannot serve two stale reads of
   the same freshness in a row, so the second read is fresh). *)
let call_verified t req =
  match call t req with
  | Error _ as e -> e
  | Ok first when t.policy.verified_reads && req.Request.meth = Meth.GET ->
    (match call t req with
     | Ok second -> Ok second
     | Error _ -> Ok first)
  | ok -> ok

let degraded_response failure =
  let status =
    match failure with
    | Circuit_open _ -> Status.service_unavailable
    | Exhausted _ -> Status.gateway_timeout
  in
  Response.error status ("monitor transport: " ^ failure_to_string failure)

let backend t req =
  match call_verified t req with
  | Ok resp -> resp
  | Error failure -> degraded_response failure
