(** Monitoring verdicts.

    A {!conformance} classifies one monitored exchange by comparing what
    the specification demanded (contract pre/post over observed state)
    with what the cloud did (its response).  [Security_*] verdicts are
    the data-breach / privilege-escalation detections the paper targets;
    [Functional_*] are behavioural bugs; [Undefined] means the
    observation was insufficient to decide (never silently treated as
    success). *)

type conformance =
  | Conform  (** permitted request, succeeded, postcondition holds *)
  | Conform_denied
      (** request the specification forbids, and the cloud denied it *)
  | Security_unauthorized_allowed
      (** the cloud {e performed} a request the security policy forbids —
          privilege escalation *)
  | Security_authorized_denied
      (** the cloud rejected (401/403) a request the policy allows *)
  | Functional_wrongly_rejected
      (** behaviourally valid request rejected for a non-security reason *)
  | Functional_wrongly_accepted
      (** request that should be impossible (quota full, volume in use)
          but the cloud performed it *)
  | Functional_bad_status
      (** success, but with an unexpected success status code *)
  | Post_violated  (** success, but the postcondition does not hold *)
  | Undefined of string  (** contracts could not be evaluated *)
  | Degraded of string
      (** monitoring was degraded by transport trouble: the request was
          blocked (fail-closed) or forwarded unmonitored (fail-open) —
          never a definite claim about the cloud's conformance *)
  | Monitor_error of string
      (** the monitor {e itself} failed on this exchange (an internal
          exception was contained) — never reported as a cloud
          violation *)
  | Not_monitored  (** no model covers this request; forwarded verbatim *)

val is_violation : conformance -> bool
(** [true] exactly for the [Security_*], [Functional_*] and
    [Post_violated] verdicts — what "kills a mutant". *)

val is_definite : conformance -> bool
(** A definite claim about the exchange ([false] for [Undefined],
    [Degraded] and [Monitor_error]).  Verdict integrity under transport
    faults means: a definite verdict never {e flips} to a different
    definite verdict — it may only degrade to a non-definite one. *)

val conformance_to_string : conformance -> string

val conformance_of_string : string -> conformance option
(** Inverse of {!conformance_to_string} (used by trace replay). *)

val pp_conformance : Format.formatter -> conformance -> unit

type phases = {
  observe_pre_ns : float;
  eval_pre_ns : float;
  forward_ns : float;
  observe_post_ns : float;
  eval_post_ns : float;
}
(** Per-phase time attribution for one exchange, in nanoseconds of the
    monitor's {!Cm_core.Stopwatch} source (wall time normally, the
    virtual clock under simulation).  The stability re-observation
    counts toward [observe_post_ns]. *)

val phases_total : phases -> float

val pp_phases : Format.formatter -> phases -> unit

type t = {
  request : Cm_http.Request.t;
  response : Cm_http.Response.t;  (** what the monitor returned upstream *)
  cloud_response : Cm_http.Response.t option;
      (** the backend's answer; [None] when the call was blocked *)
  conformance : conformance;
  pre_verdict : Cm_ocl.Eval.verdict option;
  post_verdict : Cm_ocl.Eval.verdict option;
  covered_requirements : string list;
      (** SecReq ids of the branches active in the pre-state (coverage
          in the §IV-C sense) *)
  contract_requirements : string list;
      (** all SecReq ids of the matched contract — what a violation
          implicates, even when no branch was active (e.g. an
          authorization failure) *)
  snapshot_bytes : int;
  detail : string;
  phases : phases option;
      (** per-phase timing when the monitor's config enables it; not
          part of the exchange's semantics (excluded from trace
          serialization and verdict comparisons) *)
  lock_acquisitions : int;
      (** instrumented-lock acquisitions ({!Cm_core.Lockstat})
          attributed to this exchange: a process-global counter delta
          across the handle.  Exact on a single-domain run, an
          over-approximation under parallel serving — which only makes
          the "monitored reads take zero locks" gate stricter.  Like
          [phases], not part of the exchange's semantics. *)
}

val pp : Format.formatter -> t -> unit
