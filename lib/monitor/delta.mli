(** Touched-path deltas for the incremental engine.

    Every forwarded mutation is mapped to the set of observation roots
    (the footprint/observer vocabulary: lowercased resource definition
    names) whose documents may reflect it, using bidirectional
    segment-prefix overlap of the mutated path against the model's URI
    templates — the template-level analogue of
    {!Obs_cache.invalidate_overlapping}.  Each touched root is stamped
    with a monotonically increasing generation; a contract that last
    synchronized at generation [g] can skip re-diffing any root whose
    stamp is still [<= g].

    This is the {e trusted} delta: skipping a root means trusting that
    its observed value did not change, which under chaotic transports
    (stale reads becoming visible later) is an approximation.  The
    monitor therefore only consults it when [trust_path_delta] is
    explicitly enabled; the default incremental mode diffs every root's
    value instead, and uses this module's stamps purely as statistics. *)

type t

val create : context:string -> Cm_uml.Paths.entry list -> t
(** [context] is the context resource definition (the grafted project
    document's root); entries are the model's derived URI table. *)

val note : t -> string -> unit
(** Record a mutation of the given concrete path.  Paths no template
    overlaps conservatively touch every root. *)

val note_all : t -> unit
(** Record an unclassifiable state change (touches every root). *)

val generation : t -> int

val changed_since : t -> seen:int -> string -> bool
(** Has the root possibly changed after generation [seen]?  Untracked
    roots (e.g. the per-request [user] binding) are always changed. *)

val roots_of_path : t -> string -> string list
(** The roots a mutation of [path] would touch (sorted; for tests and
    diagnostics). *)

type stats = { mutations : int; unclassified : int; generation : int }

val stats : t -> stats
