module Response = Cm_http.Response

type scope = Disabled | Per_request | Cross_request

(* Two-level table keyed by subject token then path: lookups hash the
   strings the caller already holds instead of allocating a composite
   key record per probe — the observer probes this on every GET of
   every observation, so the allocation audit flattened it.

   Shard-local by construction: every cache instance belongs to exactly
   one [Monitor.t], which one shard owns, so the counters are plain
   mutable ints — an [Atomic] here would put a lock-prefixed RMW (and a
   potential cross-core cache-line bounce) on every probe of every
   observation for no consistency gain.  Aggregation across shards
   happens on demand ([Shard.cache_stats]) after serving quiesces. *)
type t = {
  scope : scope;
  tables : (string option, (string, Response.t) Hashtbl.t) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable invalidated : int;
}

type stats = { hits : int; misses : int; invalidated : int }

let create scope =
  { scope; tables = Hashtbl.create 4; hits = 0; misses = 0; invalidated = 0 }

let scope t = t.scope
let enabled t = t.scope <> Disabled

let find t ~token path =
  if not (enabled t) then None
  else
    match Hashtbl.find_opt t.tables token with
    | None ->
      t.misses <- t.misses + 1;
      None
    | Some inner ->
      (match Hashtbl.find_opt inner path with
       | Some _ as hit ->
         t.hits <- t.hits + 1;
         hit
       | None ->
         t.misses <- t.misses + 1;
         None)

(* Definite state answers only: a 2xx is the resource, a 404 is its
   definite absence (stable until an overlapping mutation).  Transient
   failures surfaced by the resilience layer (5xx, degraded responses)
   must be retried on the next observation, never replayed. *)
let cacheable (resp : Response.t) =
  Response.is_success resp || resp.Response.status = Cm_http.Status.not_found

let remember t ~token path resp =
  if enabled t && cacheable resp then begin
    let inner =
      match Hashtbl.find_opt t.tables token with
      | Some inner -> inner
      | None ->
        let inner = Hashtbl.create 16 in
        Hashtbl.add t.tables token inner;
        inner
    in
    Hashtbl.replace inner path resp
  end

let segments path =
  List.filter (fun s -> s <> "") (String.split_on_char '/' path)

let rec is_prefix xs ys =
  match xs, ys with
  | [], _ -> true
  | _, [] -> false
  | x :: xs', y :: ys' -> String.equal x y && is_prefix xs' ys'

let overlaps cached mutated =
  is_prefix cached mutated || is_prefix mutated cached

let invalidate_overlapping t mutated_path =
  if enabled t then begin
    let mutated = segments mutated_path in
    Hashtbl.iter
      (fun _token inner ->
        let stale =
          Hashtbl.fold
            (fun path _ acc ->
              if overlaps (segments path) mutated then path :: acc else acc)
            inner []
        in
        List.iter
          (fun path ->
            Hashtbl.remove inner path;
            t.invalidated <- t.invalidated + 1)
          stale)
      t.tables
  end

let clear t = Hashtbl.reset t.tables

let begin_request t = match t.scope with Per_request -> clear t | _ -> ()

let stats (cache : t) =
  { hits = cache.hits;
    misses = cache.misses;
    invalidated = cache.invalidated
  }

let hit_rate { hits; misses; _ } =
  let total = hits + misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total
