(** URI templates.

    REST resources are addressed by parameterised paths such as
    ["/v3/{project_id}/volumes/{volume_id}"].  A template matches a
    concrete path by binding each [{name}] placeholder to the
    corresponding segment.  Templates are the bridge between the resource
    model (associations compose paths, §IV-A of the paper) and the
    router. *)

type t

type segment =
  | Literal of string
  | Param of string

val parse : string -> (t, string) result
(** Parse a template.  Each path segment is either a literal or exactly
    one [{name}] placeholder; empty names, nested or unbalanced braces are
    errors. *)

val parse_exn : string -> t
val segments : t -> segment list
val to_string : t -> string

val param_names : t -> string list
(** Placeholder names in order of appearance. *)

val matches : t -> string -> (string * string) list option
(** [matches t path] is [Some bindings] when [path] has the same number
    of segments and all literals agree; placeholders bind to the concrete
    segments.  Trailing slashes are ignored on both sides. *)

val split_path : string -> string list
(** Path segmentation as used by {!matches} (empty segments dropped, so
    trailing slashes are ignored).  Lets a dispatcher split a request
    path once and try many templates via {!matches_segments}. *)

val matches_segments : t -> string list -> (string * string) list option
(** {!matches} against a pre-split path. *)

val expand : t -> (string * string) list -> (string, string) result
(** Substitute placeholders; [Error] names the first missing binding. *)

val expand_exn : t -> (string * string) list -> string

val specificity : t -> int
(** Number of literal segments — routers prefer more specific templates
    so that ["/v3/p/volumes/detail"] wins over
    ["/v3/p/volumes/{volume_id}"]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
