type t = int

let ok = 200
let created = 201
let accepted = 202
let no_content = 204
let bad_request = 400
let unauthorized = 401
let forbidden = 403
let not_found = 404
let method_not_allowed = 405
let conflict = 409
let request_entity_too_large = 413
let internal_server_error = 500
let not_implemented = 501
let bad_gateway = 502
let service_unavailable = 503
let gateway_timeout = 504

let reason_phrase = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 202 -> "Accepted"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 401 -> "Unauthorized"
  | 403 -> "Forbidden"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 413 -> "Request Entity Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 502 -> "Bad Gateway"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | code -> Printf.sprintf "Status %d" code

let is_success code = code >= 200 && code <= 299
let is_client_error code = code >= 400 && code <= 499
let is_server_error code = code >= 500 && code <= 599

let known =
  [ 200; 201; 202; 204; 400; 401; 403; 404; 405; 409; 413; 500; 501; 502;
    503; 504
  ]

let pp ppf code = Fmt.pf ppf "%d %s" code (reason_phrase code)
