(** HTTP status codes.

    The monitor's workflow (Fig. 2 of the paper) is driven by response
    codes: 200 means the request succeeded, 404 that the resource does not
    exist, 403 that the request was forbidden — the paper's state
    invariants are defined over exactly these observations. *)

type t = int
(** A status code; only the codes in {!known} carry a reason phrase but
    any integer in 100–599 is accepted. *)

val ok : t (** 200 *)

val created : t (** 201 *)

val accepted : t (** 202 *)

val no_content : t (** 204 *)

val bad_request : t (** 400 *)

val unauthorized : t (** 401 *)

val forbidden : t (** 403 *)

val not_found : t (** 404 *)

val method_not_allowed : t (** 405 *)

val conflict : t (** 409 *)

val request_entity_too_large : t (** 413 — OpenStack "OverLimit" for quota *)

val internal_server_error : t (** 500 *)

val not_implemented : t (** 501 *)

val bad_gateway : t (** 502 — transport blip in front of the cloud *)

val service_unavailable : t (** 503 *)

val gateway_timeout : t (** 504 — the monitor gave up waiting on the cloud *)

val reason_phrase : t -> string
val is_success : t -> bool (** 2xx *)

val is_client_error : t -> bool (** 4xx *)

val is_server_error : t -> bool (** 5xx *)

val known : t list
val pp : Format.formatter -> t -> unit
