type segment = Literal of string | Param of string
type t = segment list

let split_path path =
  List.filter (fun s -> s <> "") (String.split_on_char '/' path)

let parse_segment seg =
  let len = String.length seg in
  if len >= 2 && seg.[0] = '{' && seg.[len - 1] = '}' then begin
    let name = String.sub seg 1 (len - 2) in
    if name = "" then Error "empty placeholder name"
    else if String.contains name '{' || String.contains name '}' then
      Error (Printf.sprintf "nested braces in %S" seg)
    else Ok (Param name)
  end
  else if String.contains seg '{' || String.contains seg '}' then
    Error (Printf.sprintf "unbalanced braces in segment %S" seg)
  else Ok (Literal seg)

let parse text =
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | seg :: rest ->
      (match parse_segment seg with
       | Ok parsed -> build (parsed :: acc) rest
       | Error _ as err -> err)
  in
  build [] (split_path text)

let parse_exn text =
  match parse text with
  | Ok t -> t
  | Error msg -> invalid_arg (Printf.sprintf "Uri_template.parse_exn: %s" msg)

let segments t = t

let to_string t =
  "/"
  ^ String.concat "/"
      (List.map
         (function Literal s -> s | Param name -> "{" ^ name ^ "}")
         t)

let param_names t =
  List.filter_map (function Param name -> Some name | Literal _ -> None) t

let matches_segments t concrete =
  let rec walk acc template concrete =
    match template, concrete with
    | [], [] -> Some (List.rev acc)
    | Literal lit :: t', seg :: c' when lit = seg -> walk acc t' c'
    | Param name :: t', seg :: c' -> walk ((name, seg) :: acc) t' c'
    | _, _ -> None
  in
  walk [] t concrete

let matches t path = matches_segments t (split_path path)

let expand t bindings =
  let rec build acc = function
    | [] -> Ok ("/" ^ String.concat "/" (List.rev acc))
    | Literal s :: rest -> build (s :: acc) rest
    | Param name :: rest ->
      (match List.assoc_opt name bindings with
       | Some value -> build (value :: acc) rest
       | None -> Error (Printf.sprintf "missing binding for {%s}" name))
  in
  build [] t

let expand_exn t bindings =
  match expand t bindings with
  | Ok path -> path
  | Error msg -> invalid_arg (Printf.sprintf "Uri_template.expand_exn: %s" msg)

let specificity t =
  List.length (List.filter (function Literal _ -> true | Param _ -> false) t)

let equal a b = a = b
let pp ppf t = Fmt.string ppf (to_string t)
