(** Workload execution: turn symbolic {!Workload.trace}s into HTTP
    requests against a monitored cloud.

    Two modes.  {!run} drives a live handler step by step, resolving
    [Fresh]/[Live]/[Img] references from create responses and keeping
    per-role tokens current across {!Workload.Relogin} steps — the mode
    the mutation campaigns and scenario suites use.  {!requests}
    compiles a trace into a request list ahead of time for batch
    serving (the bench and the sharded server), resolving dynamic
    references to deterministic placeholders; it only supports traces
    that never read back their own creations, which all seeded mixes
    satisfy by construction. *)

type env = {
  project : string;  (** project id in request paths *)
  stable_volumes : string list;  (** ids behind [Stable k] (mod length) *)
  victim_volumes : string list;  (** ids behind [Victim k] *)
  handle : Cm_http.Request.t -> Cm_http.Response.t;
      (** the monitored entry point *)
  token : Workload.role -> string;  (** initial token per role *)
  relogin : (Workload.role -> string option) option;
      (** out-of-band re-authentication; [None] turns
          {!Workload.Relogin} steps into no-ops *)
  churn : (int -> unit) option;
      (** out-of-band tenant churn; [None] skips
          {!Workload.Churn_project} steps *)
  flush : unit -> unit;
      (** called after out-of-band cloud mutations so the monitor's
          caches resynchronise (typically [Monitor.flush_cache]) *)
}

val run : env -> Workload.trace -> int
(** Execute each step in order; returns the number of monitored
    requests actually issued (out-of-band steps don't count). *)

(** Static compilation for batch serving. *)
type static = {
  st_project : string;
  st_token : Workload.role -> string;
  st_stable_volumes : string list;
  st_victim_volumes : string list;
}

val requests : static -> Workload.trace -> Cm_http.Request.t list
(** Compile the trace to requests without executing anything.
    [Fresh]/[Live]/[Img] references resolve to deterministic
    placeholder ids ("missing-vol-k" etc. — requests that 404, with
    verdicts consistent under the generated contracts);
    [Relogin]/[Churn_project] steps are dropped. *)
