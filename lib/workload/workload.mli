(** A small DSL of named, seeded, composable traffic mixes.

    A {!trace} is pure data: a list of steps, each an actor (a role of
    the paper's three-user setup) plus an operation over the simulated
    cloud's volume, compute, image and identity surfaces.  Mixes
    {e compile} to traces deterministically — the same [(mix, seed)]
    pair always yields a bit-identical trace ({!render} equality, and
    {!fingerprint} as a short witness) — so every workload consumer
    (mutation campaigns, benches, property tests) replays exactly the
    same request stream.

    Resource references are symbolic: [Fresh k] names the volume made
    by the [k]-th {!Create_volume} of the same trace (resolved from the
    create response at execution time), [Stable]/[Victim] index
    pre-provisioned fixtures, [Absent]/[Ghost]/[No_such_image] name
    resources that deliberately do not exist.  Compile-time bookkeeping
    (victim stacks, image status tracking) guarantees a trace stays
    {e verdict-consistent} on a fault-free cloud: every step's expected
    outcome matches the generated contracts whether the operation is
    accepted or denied, so a baseline run is violation-free and any
    violation indicts the cloud, not the workload.

    Execution lives in {!Exec}; this module is purely symbolic. *)

type role = Admin | Member | User
(** The paper's alice (proj_administrator), bob (service_architect) and
    carol (business_analyst). *)

(** Volume references. *)
type vref =
  | Stable of int  (** pre-provisioned GET/PUT target, modulo fixture size *)
  | Fresh of int  (** the [k]-th volume created by this trace *)
  | Victim of int  (** pre-provisioned deletion target, used at most once *)
  | Absent of int  (** a volume id that never exists *)

(** Server references. *)
type sref =
  | Live of int  (** the [k]-th server created by this trace *)
  | Ghost of int  (** a server id that never exists *)

(** Image references. *)
type iref =
  | Img of int  (** the [k]-th image created by this trace *)
  | No_such_image of int  (** an image id that never exists *)

(** Backing source of a volume creation (req 3.3). *)
type source = No_image | From_image of iref

type op =
  | Create_volume of { idx : int; name : string; size : int; source : source }
      (** POST on the volumes collection; [idx] is the trace-wide
          creation index later [Fresh idx] references resolve to. *)
  | List_volumes
  | Show_volume of vref
  | Rename_volume of vref * string
  | Delete_volume of vref
  | Volume_action_attach of vref * string
      (** legacy [os-attach] volume action (unmodelled URI, forwarded) *)
  | Volume_action_detach of vref
  | Create_server of { idx : int; name : string }
  | List_servers
  | Show_server of sref
  | Delete_server of sref
  | Attach of sref * vref
      (** POST /v3/{p}/servers/{s}/attach {volume_id} — the monitored
          cross-service attachment (req 3.1) *)
  | Detach of sref * vref  (** its converse (req 3.2) *)
  | Create_image of { idx : int; name : string; size_mb : int }
  | List_images
  | Show_image of iref
  | Set_image_status of iref * string
  | Delete_image of iref
  | Revoke_token of role
      (** monitored DELETE on the introspection path with the target
          role's current token as X-Subject-Token *)
  | Relogin of role  (** out-of-band: issue the role a fresh token *)
  | Churn_project of int
      (** out-of-band tenant lifecycle churn in a throwaway project *)

type step = { actor : role; op : op }
type trace = step list

val render : trace -> string
(** Canonical textual form, one line per step.  Two traces are
    bit-identical iff their renderings are equal — this is the object
    of the determinism contract. *)

val fingerprint : trace -> string
(** MD5 hex of {!render} — a short witness for logs and CI output. *)

val role_to_string : role -> string

(** {1 Traces} *)

val standard_trace : trace
(** The 16-step validation workload of §VI-D (seed-independent): volume
    lifecycle to quota, denied escalations, updates, legacy
    attach/detach actions, deletion — kills M1..M10. *)

val cross_trace : trace
(** {!standard_trace} followed by the cross-service scenarios: server
    lifecycle with monitored attach/detach (live-server + available
    volume integrity, busy/absent/ghost denials, server-delete
    release), image-backed volume creation and backing-image
    protection, and token revocation visibility.  Kills M1..M10 and
    X1..X8; violation-free on a correct cloud. *)

val read_heavy_trace : steps:int -> victims:int -> seed:int -> trace
(** The serve-bench mix: per step d10 — 0-2 list, 3-5 show stable,
    6-7 rename stable, 8 create, 9 delete the next unused victim (a
    listing once [victims] are exhausted).  Reads dominate; mutations
    keep cache invalidation honest. *)

val churn_heavy_trace : steps:int -> seed:int -> trace
(** Tenant-lifecycle churn: volume create/delete waves, server
    create/delete, image status cycling and deletion, project churn,
    and token revoke/relogin races.  Compile-time tracking only emits
    image status moves and deletes that are legal for the tracked
    state, so the baseline stays clean. *)

val adversarial_trace : steps:int -> seed:int -> trace
(** Predicted-denial traffic: unauthorized creates/deletes/renames,
    attaches to ghost servers, image-backed creates naming missing
    images, deletes of absent volumes — plus enough allowed traffic to
    exercise the quota boundary from both sides. *)

(** {1 Named mixes} *)

type mix = {
  mix_name : string;
  description : string;
  compile : seed:int -> trace;
}

val standard : mix
val read_heavy : mix
val churn_heavy : mix
val adversarial : mix
val cross : mix

val mixes : mix list
val find : string -> mix option
