type role = Admin | Member | User

type vref = Stable of int | Fresh of int | Victim of int | Absent of int
type sref = Live of int | Ghost of int
type iref = Img of int | No_such_image of int
type source = No_image | From_image of iref

type op =
  | Create_volume of { idx : int; name : string; size : int; source : source }
  | List_volumes
  | Show_volume of vref
  | Rename_volume of vref * string
  | Delete_volume of vref
  | Volume_action_attach of vref * string
  | Volume_action_detach of vref
  | Create_server of { idx : int; name : string }
  | List_servers
  | Show_server of sref
  | Delete_server of sref
  | Attach of sref * vref
  | Detach of sref * vref
  | Create_image of { idx : int; name : string; size_mb : int }
  | List_images
  | Show_image of iref
  | Set_image_status of iref * string
  | Delete_image of iref
  | Revoke_token of role
  | Relogin of role
  | Churn_project of int

type step = { actor : role; op : op }
type trace = step list

let role_to_string = function
  | Admin -> "admin"
  | Member -> "member"
  | User -> "user"

let vref_to_string = function
  | Stable k -> Printf.sprintf "stable:%d" k
  | Fresh k -> Printf.sprintf "fresh:%d" k
  | Victim k -> Printf.sprintf "victim:%d" k
  | Absent k -> Printf.sprintf "absent:%d" k

let sref_to_string = function
  | Live k -> Printf.sprintf "live:%d" k
  | Ghost k -> Printf.sprintf "ghost:%d" k

let iref_to_string = function
  | Img k -> Printf.sprintf "img:%d" k
  | No_such_image k -> Printf.sprintf "noimg:%d" k

let op_to_string = function
  | Create_volume { idx; name; size; source } ->
    let src =
      match source with
      | No_image -> ""
      | From_image i -> Printf.sprintf " from=%s" (iref_to_string i)
    in
    Printf.sprintf "create-volume #%d %S size=%d%s" idx name size src
  | List_volumes -> "list-volumes"
  | Show_volume v -> Printf.sprintf "show-volume %s" (vref_to_string v)
  | Rename_volume (v, name) ->
    Printf.sprintf "rename-volume %s %S" (vref_to_string v) name
  | Delete_volume v -> Printf.sprintf "delete-volume %s" (vref_to_string v)
  | Volume_action_attach (v, instance) ->
    Printf.sprintf "volume-action-attach %s %S" (vref_to_string v) instance
  | Volume_action_detach v ->
    Printf.sprintf "volume-action-detach %s" (vref_to_string v)
  | Create_server { idx; name } ->
    Printf.sprintf "create-server #%d %S" idx name
  | List_servers -> "list-servers"
  | Show_server s -> Printf.sprintf "show-server %s" (sref_to_string s)
  | Delete_server s -> Printf.sprintf "delete-server %s" (sref_to_string s)
  | Attach (s, v) ->
    Printf.sprintf "attach %s %s" (sref_to_string s) (vref_to_string v)
  | Detach (s, v) ->
    Printf.sprintf "detach %s %s" (sref_to_string s) (vref_to_string v)
  | Create_image { idx; name; size_mb } ->
    Printf.sprintf "create-image #%d %S size_mb=%d" idx name size_mb
  | List_images -> "list-images"
  | Show_image i -> Printf.sprintf "show-image %s" (iref_to_string i)
  | Set_image_status (i, status) ->
    Printf.sprintf "set-image-status %s %S" (iref_to_string i) status
  | Delete_image i -> Printf.sprintf "delete-image %s" (iref_to_string i)
  | Revoke_token r -> Printf.sprintf "revoke-token %s" (role_to_string r)
  | Relogin r -> Printf.sprintf "relogin %s" (role_to_string r)
  | Churn_project k -> Printf.sprintf "churn-project %d" k

let render trace =
  let buf = Buffer.create (List.length trace * 32) in
  List.iteri
    (fun i { actor; op } ->
      Buffer.add_string buf
        (Printf.sprintf "%04d %-6s %s\n" i (role_to_string actor)
           (op_to_string op)))
    trace;
  Buffer.contents buf

let fingerprint trace = Digest.to_hex (Digest.string (render trace))

(* ------------------------------------------------------------------ *)
(* Scripted traces                                                     *)
(* ------------------------------------------------------------------ *)

(* The §VI-D validation workload (see Scenario.standard's original
   narration): a volume lifecycle driven to the quota boundary with
   denied escalations interleaved.  Seed-independent by design — it is
   a script, not a distribution. *)
let standard_trace =
  [ (* 1. admin creates a volume *)
    { actor = Admin;
      op = Create_volume { idx = 0; name = "data1"; size = 10; source = No_image }
    };
    (* 2. member lists volumes *)
    { actor = Member; op = List_volumes };
    (* 3. user reads the volume (allowed: read for everyone) *)
    { actor = User; op = Show_volume (Fresh 0) };
    (* 4. user tries to create a volume (denied) *)
    { actor = User;
      op =
        Create_volume
          { idx = 1; name = "forbidden"; size = 10; source = No_image }
    };
    (* 5. member tries to delete (denied: admin only) [kills M1] *)
    { actor = Member; op = Delete_volume (Fresh 0) };
    (* 6. user tries to rename (denied) [kills M2] *)
    { actor = User; op = Rename_volume (Fresh 0, "hacked") };
    (* 7. user reads again [kills M3 via wrongly-denied read] *)
    { actor = User; op = Show_volume (Fresh 0) };
    (* 8. member renames (allowed) *)
    { actor = Member; op = Rename_volume (Fresh 0, "data1b") };
    (* 9. admin fills the quota *)
    { actor = Admin;
      op = Create_volume { idx = 2; name = "data2"; size = 10; source = No_image }
    };
    { actor = Admin;
      op = Create_volume { idx = 3; name = "data3"; size = 10; source = No_image }
    };
    (* 10. admin exceeds the quota (denied by contract) [kills M4] *)
    { actor = Admin;
      op =
        Create_volume
          { idx = 4; name = "over-quota"; size = 10; source = No_image }
    };
    (* 11. admin deletes one [kills M6/M8] *)
    { actor = Admin; op = Delete_volume (Fresh 3) };
    (* 12. attach, then try deleting the in-use volume [kills M5] *)
    { actor = Admin; op = Volume_action_attach (Fresh 0, "srv-test") };
    { actor = Admin; op = Delete_volume (Fresh 0) };
    (* 14. detach and delete for real *)
    { actor = Admin; op = Volume_action_detach (Fresh 0) };
    { actor = Admin; op = Delete_volume (Fresh 0) };
    (* 15. final listings *)
    { actor = Admin; op = List_volumes };
    { actor = User; op = List_volumes }
  ]

(* The cross-service extension.  After standard_trace the project holds
   exactly one volume (Fresh 2 = "data2", 10 GB) — comfortably inside
   the 3-volume / 100 GB quota, so phases B..D never trip quota guards.

   Phase B exercises the monitored attach/detach path (reqs 3.1/3.2):
   the happy path, the already-attached 409 [X2], detach [X4], attach
   of an absent volume [X1], attach to a ghost server [X3], and
   server deletion releasing its attachments [X8].

   Phase C exercises image-backed volume creation (req 3.3) and
   backing-image protection (req 3.4): a create naming a live image, a
   create naming a missing image [X5], deletion of an active image,
   deletion of a deactivated-but-backing image [X6], and a clean
   delete of a scratch image.

   Phase D exercises token revocation visibility (req 3.7): after the
   admin revokes the user's token, the user's reads must be denied
   until relogin [X7]. *)
let cross_trace =
  standard_trace
  @ [ (* --- Phase B: compute / attachments --- *)
      { actor = Admin; op = Create_server { idx = 0; name = "app-1" } };
      { actor = Member; op = List_servers };
      { actor = Admin; op = Show_server (Live 0) };
      (* attach the surviving volume (available -> in-use) *)
      { actor = Admin; op = Attach (Live 0, Fresh 2) };
      (* attaching again: volume is busy, 409 [kills X2] *)
      { actor = Admin; op = Attach (Live 0, Fresh 2) };
      (* detach restores availability [kills X4] *)
      { actor = Admin; op = Detach (Live 0, Fresh 2) };
      (* attach of a volume that does not exist, 404 [kills X1] *)
      { actor = Admin; op = Attach (Live 0, Absent 0) };
      (* attach to a server that does not exist, 404 [kills X3] *)
      { actor = Admin; op = Attach (Ghost 0, Fresh 2) };
      (* detach of a volume that is not attached, 409 *)
      { actor = Member; op = Detach (Live 0, Fresh 2) };
      (* re-attach, then delete the server: must release [kills X8] *)
      { actor = Admin; op = Attach (Live 0, Fresh 2) };
      { actor = Admin; op = Delete_server (Live 0) };
      (* --- Phase C: images / backed volumes --- *)
      { actor = Admin; op = Create_image { idx = 0; name = "base-img"; size_mb = 512 } };
      { actor = Admin; op = Set_image_status (Img 0, "active") };
      { actor = Member; op = List_images };
      { actor = Admin; op = Show_image (Img 0) };
      (* image-backed create naming a live active image *)
      { actor = Admin;
        op =
          Create_volume
            { idx = 5; name = "from-image"; size = 10;
              source = From_image (Img 0) }
      };
      (* image-backed create naming a missing image, 400 [kills X5] *)
      { actor = Admin;
        op =
          Create_volume
            { idx = 6; name = "bad-backing"; size = 10;
              source = From_image (No_such_image 0) }
      };
      (* deleting an active image is denied *)
      { actor = Admin; op = Delete_image (Img 0) };
      { actor = Admin; op = Set_image_status (Img 0, "deactivated") };
      (* deleting the image backing "from-image", 409 [kills X6] *)
      { actor = Admin; op = Delete_image (Img 0) };
      (* a scratch image deletes cleanly *)
      { actor = Admin; op = Create_image { idx = 1; name = "scratch"; size_mb = 64 } };
      { actor = Admin; op = Delete_image (Img 1) };
      (* user may not create images *)
      { actor = User; op = Create_image { idx = 2; name = "no-way"; size_mb = 8 } };
      (* --- Phase D: token revocation visibility --- *)
      { actor = Admin; op = Revoke_token User };
      (* revoked token: reads denied until relogin [kills X7] *)
      { actor = User; op = List_volumes };
      { actor = User; op = Show_volume (Fresh 2) };
      { actor = User; op = Relogin User };
      { actor = User; op = List_volumes };
      (* final sweep *)
      { actor = Admin; op = List_volumes };
      { actor = Member; op = List_images };
      { actor = Admin; op = List_servers }
    ]

(* ------------------------------------------------------------------ *)
(* Seeded mixes                                                        *)
(* ------------------------------------------------------------------ *)

(* The serving benchmark's read-dominant mix, verbatim: per step one
   d10 draw — 0-2 list, 3-5 show a stable volume, 6-7 rename a stable
   volume, 8 create, 9 delete the next unused victim (falling back to a
   listing once the victim pool is dry). *)
let read_heavy_trace ~steps ~victims ~seed =
  let rng = Cm_core.Prng.of_seed seed in
  let next_victim = ref 0 in
  let next_fresh = ref 0 in
  List.init steps (fun step ->
      match Cm_core.Prng.int rng 10 with
      | 0 | 1 | 2 -> { actor = Member; op = List_volumes }
      | 3 | 4 | 5 ->
        { actor = Member; op = Show_volume (Stable (Cm_core.Prng.int rng 64)) }
      | 6 | 7 ->
        { actor = Member;
          op =
            Rename_volume
              ( Stable (Cm_core.Prng.int rng 64),
                Printf.sprintf "ren-%d" step )
        }
      | 8 ->
        let idx = !next_fresh in
        incr next_fresh;
        { actor = Member;
          op =
            Create_volume
              { idx; name = Printf.sprintf "new-%d" step; size = 1;
                source = No_image }
        }
      | _ ->
        if !next_victim < victims then begin
          let k = !next_victim in
          incr next_victim;
          { actor = Admin; op = Delete_volume (Victim k) }
        end
        else { actor = Member; op = List_volumes })

(* Tenant-lifecycle churn.  Compile-time bookkeeping (stacks of live
   fresh volumes / servers, image status tracking) keeps every emitted
   step verdict-consistent on a fault-free cloud: we only move images
   along legal status edges and only delete images whose tracked
   status is not "active", so contract guards and cloud behaviour
   agree whether a step is accepted or denied. *)
let churn_heavy_trace ~steps ~seed =
  let rng = Cm_core.Prng.of_seed seed in
  let next_fresh = ref 0 in
  let live_volumes = ref [] in
  let next_server = ref 0 in
  let live_servers = ref [] in
  let next_image = ref 0 in
  (* most-recent first: (idx, tracked status) *)
  let images = ref [] in
  let next_churn = ref 0 in
  List.init steps (fun step ->
      match Cm_core.Prng.int rng 16 with
      | 0 | 1 ->
        let idx = !next_fresh in
        incr next_fresh;
        live_volumes := idx :: !live_volumes;
        { actor = Admin;
          op =
            Create_volume
              { idx; name = Printf.sprintf "churn-%d" step; size = 1;
                source = No_image }
        }
      | 2 -> (
        match !live_volumes with
        | idx :: rest ->
          live_volumes := rest;
          { actor = Admin; op = Delete_volume (Fresh idx) }
        | [] -> { actor = Member; op = List_volumes })
      | 3 ->
        let idx = !next_fresh in
        incr next_fresh;
        live_volumes := idx :: !live_volumes;
        { actor = Member;
          op =
            Create_volume
              { idx; name = Printf.sprintf "mchurn-%d" step; size = 1;
                source = No_image }
        }
      | 4 ->
        let idx = !next_server in
        incr next_server;
        live_servers := idx :: !live_servers;
        { actor = Admin;
          op = Create_server { idx; name = Printf.sprintf "srv-%d" step } }
      | 5 -> (
        match !live_servers with
        | idx :: rest ->
          live_servers := rest;
          { actor = Admin; op = Delete_server (Live idx) }
        | [] -> { actor = Member; op = List_servers })
      | 6 ->
        let k = !next_churn in
        incr next_churn;
        { actor = Admin; op = Churn_project k }
      | 7 -> { actor = Admin; op = Revoke_token User }
      | 8 -> { actor = User; op = Relogin User }
      | 9 -> { actor = User; op = List_volumes }
      | 10 ->
        { actor = Member; op = Show_volume (Stable (Cm_core.Prng.int rng 64)) }
      | 11 ->
        let idx = !next_image in
        incr next_image;
        images := (idx, "queued") :: !images;
        { actor = Admin;
          op =
            Create_image
              { idx; name = Printf.sprintf "img-%d" step; size_mb = 16 } }
      | 12 -> (
        (* cycle the most recent image along a legal status edge *)
        match !images with
        | (idx, status) :: rest ->
          let next =
            match status with
            | "queued" -> "active"
            | "active" -> "deactivated"
            | _ -> "active"
          in
          images := (idx, next) :: rest;
          { actor = Admin; op = Set_image_status (Img idx, next) }
        | [] -> { actor = Member; op = List_images })
      | 13 -> (
        (* delete the most recent image that is not active *)
        let rec split acc = function
          | [] -> None
          | ((_, status) as hd) :: tl when status <> "active" ->
            Some (hd, List.rev_append acc tl)
          | hd :: tl -> split (hd :: acc) tl
        in
        match split [] !images with
        | Some ((idx, _), rest) ->
          images := rest;
          { actor = Admin; op = Delete_image (Img idx) }
        | None -> { actor = Member; op = List_images })
      | 14 -> { actor = Member; op = List_volumes }
      | _ ->
        { actor = User; op = Show_volume (Stable (Cm_core.Prng.int rng 64)) })

(* Predicted-denial traffic: nearly every step should be rejected, and
   the rejection must be verdict-consistent (cloud denies, guard is
   False or the RBAC entry excludes the actor).  The two "allowed"
   arms keep both sides of the quota boundary in play — the admin
   create is accepted while under quota and contract-denied at it,
   consistent either way. *)
let adversarial_trace ~steps ~seed =
  let rng = Cm_core.Prng.of_seed seed in
  let next_fresh = ref 0 in
  List.init steps (fun step ->
      match Cm_core.Prng.int rng 9 with
      | 0 ->
        let idx = !next_fresh in
        incr next_fresh;
        { actor = User;
          op =
            Create_volume
              { idx; name = Printf.sprintf "sneak-%d" step; size = 1;
                source = No_image }
        }
      | 1 ->
        { actor = Member;
          op = Delete_volume (Stable (Cm_core.Prng.int rng 64)) }
      | 2 ->
        { actor = User;
          op =
            Rename_volume
              ( Stable (Cm_core.Prng.int rng 64),
                Printf.sprintf "pwned-%d" step )
        }
      | 3 ->
        { actor = Admin;
          op =
            Attach (Ghost (Cm_core.Prng.int rng 8),
                    Stable (Cm_core.Prng.int rng 64)) }
      | 4 ->
        { actor = Admin;
          op =
            Detach (Ghost (Cm_core.Prng.int rng 8),
                    Stable (Cm_core.Prng.int rng 64)) }
      | 5 ->
        let idx = !next_fresh in
        incr next_fresh;
        { actor = Admin;
          op =
            Create_volume
              { idx; name = Printf.sprintf "ghost-backed-%d" step; size = 1;
                source = From_image (No_such_image (Cm_core.Prng.int rng 8)) }
        }
      | 6 -> { actor = User; op = List_volumes }
      | 7 ->
        let idx = !next_fresh in
        incr next_fresh;
        { actor = Admin;
          op =
            Create_volume
              { idx; name = Printf.sprintf "legit-%d" step; size = 1;
                source = No_image }
        }
      | _ ->
        { actor = Admin; op = Delete_volume (Absent (Cm_core.Prng.int rng 8)) })

(* ------------------------------------------------------------------ *)
(* Named mixes                                                         *)
(* ------------------------------------------------------------------ *)

type mix = {
  mix_name : string;
  description : string;
  compile : seed:int -> trace;
}

let standard =
  { mix_name = "standard";
    description =
      "the scripted validation workload of the paper's case study \
       (seed-independent)";
    compile = (fun ~seed:_ -> standard_trace)
  }

let cross =
  { mix_name = "cross";
    description =
      "standard plus cross-service scenarios: monitored attach/detach, \
       image-backed volumes, token revocation (seed-independent)";
    compile = (fun ~seed:_ -> cross_trace)
  }

let read_heavy =
  { mix_name = "read-heavy";
    description =
      "the serving benchmark's d10 mix: 30% list, 30% show, 20% rename, \
       10% create, 10% victim delete";
    compile = (fun ~seed -> read_heavy_trace ~steps:256 ~victims:16 ~seed)
  }

let churn_heavy =
  { mix_name = "churn-heavy";
    description =
      "tenant-lifecycle churn: volume/server create-delete waves, image \
       status cycling, project churn, token revoke/relogin races";
    compile = (fun ~seed -> churn_heavy_trace ~steps:256 ~seed)
  }

let adversarial =
  { mix_name = "adversarial";
    description =
      "predicted-denial traffic: privilege escalations, ghost-server \
       attaches, missing-image backings, absent-volume deletes";
    compile = (fun ~seed -> adversarial_trace ~steps:256 ~seed)
  }

let mixes = [ standard; cross; read_heavy; churn_heavy; adversarial ]

let find name =
  List.find_opt (fun m -> String.equal m.mix_name name) mixes
