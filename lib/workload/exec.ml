module Json = Cm_json.Json
module Request = Cm_http.Request
module Response = Cm_http.Response
module Headers = Cm_http.Headers

type env = {
  project : string;
  stable_volumes : string list;
  victim_volumes : string list;
  handle : Cm_http.Request.t -> Cm_http.Response.t;
  token : Workload.role -> string;
  relogin : (Workload.role -> string option) option;
  churn : (int -> unit) option;
  flush : unit -> unit;
}

(* Reference resolution shared by both modes.  [lookup] maps a creation
   index to the id parsed from the create response (dynamic mode) or
   to [None] (static mode); unresolved references fall back to
   deterministic placeholder ids that the cloud will 404 — which is
   verdict-consistent, since the contracts' existence guards are False
   for them too. *)

let nth_mod pool k fallback =
  match pool with
  | [] -> fallback
  | _ -> List.nth pool (k mod List.length pool)

let resolve_vref ~stable ~victims ~fresh = function
  | Workload.Stable k -> nth_mod stable k (Printf.sprintf "absent-stable-%d" k)
  | Workload.Fresh k -> (
    match fresh k with
    | Some id -> id
    | None -> Printf.sprintf "missing-vol-%d" k)
  | Workload.Victim k ->
    if k < List.length victims then List.nth victims k
    else Printf.sprintf "missing-victim-%d" k
  | Workload.Absent k -> Printf.sprintf "absent-vol-%d" k

let resolve_sref ~live = function
  | Workload.Live k -> (
    match live k with
    | Some id -> id
    | None -> Printf.sprintf "missing-srv-%d" k)
  | Workload.Ghost k -> Printf.sprintf "ghost-srv-%d" k

let resolve_iref ~img = function
  | Workload.Img k -> (
    match img k with
    | Some id -> id
    | None -> Printf.sprintf "missing-img-%d" k)
  | Workload.No_such_image k -> Printf.sprintf "absent-img-%d" k

(* Pure request construction for every in-band operation.  Returns
   [None] for out-of-band steps (relogin, churn) which have no HTTP
   shape of their own. *)
let request_of_op ~project ~token ~resolve_v ~resolve_s ~resolve_i
    ~token_of_role (step : Workload.step) : Request.t option =
  let open Cm_http.Meth in
  let v = Printf.sprintf "/v3/%s/volumes" project in
  let s = Printf.sprintf "/v3/%s/servers" project in
  let i = Printf.sprintf "/v3/%s/images" project in
  let make ?body meth path =
    Some (Request.make ?body meth path |> Request.with_auth_token token)
  in
  match step.Workload.op with
  | Workload.Create_volume { name; size; source; _ } ->
    let fields =
      [ ("name", Json.string name); ("size", Json.int size) ]
      @
      match source with
      | Workload.No_image -> []
      | Workload.From_image iref ->
        [ ("imageRef", Json.string (resolve_i iref)) ]
    in
    make POST v ~body:(Json.obj [ ("volume", Json.obj fields) ])
  | Workload.List_volumes -> make GET v
  | Workload.Show_volume vref -> make GET (v ^ "/" ^ resolve_v vref)
  | Workload.Rename_volume (vref, name) ->
    make PUT
      (v ^ "/" ^ resolve_v vref)
      ~body:(Json.obj [ ("volume", Json.obj [ ("name", Json.string name) ]) ])
  | Workload.Delete_volume vref -> make DELETE (v ^ "/" ^ resolve_v vref)
  | Workload.Volume_action_attach (vref, instance) ->
    make POST
      (v ^ "/" ^ resolve_v vref ^ "/action")
      ~body:
        (Json.obj
           [ ( "os-attach",
               Json.obj [ ("instance_uuid", Json.string instance) ] )
           ])
  | Workload.Volume_action_detach vref ->
    make POST
      (v ^ "/" ^ resolve_v vref ^ "/action")
      ~body:(Json.obj [ ("os-detach", Json.obj []) ])
  | Workload.Create_server { name; _ } ->
    make POST s
      ~body:(Json.obj [ ("server", Json.obj [ ("name", Json.string name) ]) ])
  | Workload.List_servers -> make GET s
  | Workload.Show_server sref -> make GET (s ^ "/" ^ resolve_s sref)
  | Workload.Delete_server sref -> make DELETE (s ^ "/" ^ resolve_s sref)
  | Workload.Attach (sref, vref) ->
    make POST
      (s ^ "/" ^ resolve_s sref ^ "/attach")
      ~body:(Json.obj [ ("volume_id", Json.string (resolve_v vref)) ])
  | Workload.Detach (sref, vref) ->
    make POST
      (s ^ "/" ^ resolve_s sref ^ "/detach")
      ~body:(Json.obj [ ("volume_id", Json.string (resolve_v vref)) ])
  | Workload.Create_image { name; size_mb; _ } ->
    make POST i
      ~body:
        (Json.obj
           [ ( "image",
               Json.obj
                 [ ("name", Json.string name); ("size", Json.int size_mb) ] )
           ])
  | Workload.List_images -> make GET i
  | Workload.Show_image iref -> make GET (i ^ "/" ^ resolve_i iref)
  | Workload.Set_image_status (iref, status) ->
    make PUT
      (i ^ "/" ^ resolve_i iref)
      ~body:
        (Json.obj [ ("image", Json.obj [ ("status", Json.string status) ]) ])
  | Workload.Delete_image iref -> make DELETE (i ^ "/" ^ resolve_i iref)
  | Workload.Revoke_token target ->
    Some
      (Request.make DELETE "/identity/v3/auth/tokens"
      |> Request.with_auth_token token
      |> fun req ->
      { req with
        Request.headers =
          Headers.replace "X-Subject-Token" (token_of_role target)
            req.Request.headers
      })
  | Workload.Relogin _ | Workload.Churn_project _ -> None

let id_of response wrapper =
  match response.Response.body with
  | None -> None
  | Some body -> (
    match Cm_json.Pointer.get [ Key wrapper; Key "id" ] body with
    | Some (Json.String id) -> Some id
    | Some _ | None -> None)

let run env trace =
  let tokens = Hashtbl.create 4 in
  let current_token role =
    match Hashtbl.find_opt tokens role with
    | Some tok -> tok
    | None -> env.token role
  in
  let fresh_ids = Hashtbl.create 16 in
  let live_ids = Hashtbl.create 8 in
  let img_ids = Hashtbl.create 8 in
  let resolve_v =
    resolve_vref ~stable:env.stable_volumes ~victims:env.victim_volumes
      ~fresh:(Hashtbl.find_opt fresh_ids)
  in
  let resolve_s = resolve_sref ~live:(Hashtbl.find_opt live_ids) in
  let resolve_i = resolve_iref ~img:(Hashtbl.find_opt img_ids) in
  let issued = ref 0 in
  List.iter
    (fun (step : Workload.step) ->
      match step.Workload.op with
      | Workload.Relogin role ->
        Option.iter
          (fun relogin ->
            match relogin role with
            | Some tok -> Hashtbl.replace tokens role tok
            | None -> ())
          env.relogin
      | Workload.Churn_project k ->
        Option.iter
          (fun churn ->
            churn k;
            env.flush ())
          env.churn
      | op -> (
        match
          request_of_op ~project:env.project
            ~token:(current_token step.Workload.actor)
            ~resolve_v ~resolve_s ~resolve_i ~token_of_role:current_token step
        with
        | None -> ()
        | Some req ->
          incr issued;
          let response = env.handle req in
          (* record ids of successful creations so later references
             resolve to the real resource *)
          if Response.is_success response then begin
            match op with
            | Workload.Create_volume { idx; _ } ->
              Option.iter (Hashtbl.replace fresh_ids idx) (id_of response "volume")
            | Workload.Create_server { idx; _ } ->
              Option.iter (Hashtbl.replace live_ids idx) (id_of response "server")
            | Workload.Create_image { idx; _ } ->
              Option.iter (Hashtbl.replace img_ids idx) (id_of response "image")
            | _ -> ()
          end))
    trace;
  !issued

type static = {
  st_project : string;
  st_token : Workload.role -> string;
  st_stable_volumes : string list;
  st_victim_volumes : string list;
}

let requests st trace =
  let resolve_v =
    resolve_vref ~stable:st.st_stable_volumes ~victims:st.st_victim_volumes
      ~fresh:(fun _ -> None)
  in
  let resolve_s = resolve_sref ~live:(fun _ -> None) in
  let resolve_i = resolve_iref ~img:(fun _ -> None) in
  List.filter_map
    (fun (step : Workload.step) ->
      request_of_op ~project:st.st_project
        ~token:(st.st_token step.Workload.actor)
        ~resolve_v ~resolve_s ~resolve_i ~token_of_role:st.st_token step)
    trace
