(* Instrumented named mutexes: every lock the serving stack still owns
   is created here, so "the monitored read path acquires zero locks" is
   a measurable property, not a comment.  Each lock counts acquisitions,
   contended acquisitions (the fast [try_lock] failed and the caller had
   to block), and cumulative wait/hold nanoseconds; a global registry
   sums them so a bench can snapshot the totals around a serving phase
   and divide by requests.

   The counters are [Atomic] — deliberately: after the shard-local
   refactor no instrumented lock sits on the per-request read path, so
   the atomics only see setup-phase and mutation-path traffic, where a
   cache-line bounce per acquisition is irrelevant next to the lock
   itself. *)

type t = {
  name : string;
  mutex : Mutex.t;
  acquisitions : int Atomic.t;
  contended : int Atomic.t;
  wait_ns : int Atomic.t;
  hold_ns : int Atomic.t;
  mutable acquired_at : int;  (* write-protected by [mutex] itself *)
}

type stats = {
  st_name : string;
  st_acquisitions : int;
  st_contended : int;
  st_wait_ns : int;
  st_hold_ns : int;
}

(* The registry only grows (locks live as long as the structures that
   own them); registration is rare, so one plain mutex suffices. *)
let registry : t list ref = ref []
let registry_lock = Mutex.create ()

(* Process-wide acquisition total, bumped on every instrumented lock:
   the per-request attribution in the monitor reads this twice per
   exchange, so it must be an O(1) [Atomic.get], not a registry fold
   (the registry grows with every cloud a long campaign creates). *)
let global_acquisitions = Atomic.make 0

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let create name =
  let t =
    { name;
      mutex = Mutex.create ();
      acquisitions = Atomic.make 0;
      contended = Atomic.make 0;
      wait_ns = Atomic.make 0;
      hold_ns = Atomic.make 0;
      acquired_at = 0
    }
  in
  Mutex.protect registry_lock (fun () -> registry := t :: !registry);
  t

let lock t =
  (if Mutex.try_lock t.mutex then ()
   else begin
     (* Slow path: somebody else holds it.  Only this path pays for a
        timestamp pair, so uncontended setup locking stays cheap. *)
     Atomic.incr t.contended;
     let t0 = now_ns () in
     Mutex.lock t.mutex;
     ignore (Atomic.fetch_and_add t.wait_ns (now_ns () - t0))
   end);
  Atomic.incr t.acquisitions;
  Atomic.incr global_acquisitions;
  t.acquired_at <- now_ns ()

let unlock t =
  ignore (Atomic.fetch_and_add t.hold_ns (now_ns () - t.acquired_at));
  Mutex.unlock t.mutex

let protect t f =
  lock t;
  Fun.protect ~finally:(fun () -> unlock t) f

let stats t =
  { st_name = t.name;
    st_acquisitions = Atomic.get t.acquisitions;
    st_contended = Atomic.get t.contended;
    st_wait_ns = Atomic.get t.wait_ns;
    st_hold_ns = Atomic.get t.hold_ns
  }

let all () =
  Mutex.protect registry_lock (fun () -> List.rev_map stats !registry)
  |> List.sort (fun a b -> String.compare a.st_name b.st_name)

(* Total acquisitions across every instrumented lock in the process —
   the number the contention gate differences around a serving phase.
   Monotone, never reset: concurrent phases must snapshot-and-subtract
   rather than fight over a reset. *)
let total_acquisitions () = Atomic.get global_acquisitions

(* Collapse per-lock stats by name (several clouds in one process create
   one lock instance each for the same role). *)
let by_name () =
  let table = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let prev =
        Option.value
          ~default:
            { st_name = s.st_name; st_acquisitions = 0; st_contended = 0;
              st_wait_ns = 0; st_hold_ns = 0
            }
          (Hashtbl.find_opt table s.st_name)
      in
      Hashtbl.replace table s.st_name
        { prev with
          st_acquisitions = prev.st_acquisitions + s.st_acquisitions;
          st_contended = prev.st_contended + s.st_contended;
          st_wait_ns = prev.st_wait_ns + s.st_wait_ns;
          st_hold_ns = prev.st_hold_ns + s.st_hold_ns
        })
    (all ());
  Hashtbl.fold (fun _ s acc -> s :: acc) table []
  |> List.sort (fun a b -> String.compare a.st_name b.st_name)
