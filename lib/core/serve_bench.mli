(** Throughput harness for the sharded monitor: replay a seeded
    multi-tenant workload at several domain counts and report req/s
    scaling, observation-cache hit rates, observation GETs per request
    under footprint pruning, and the single-domain handle cost (the CI
    regression gate against BENCH_fastpath.json).

    The workload is a pure function of the spec — round-robin over the
    tenants with a PRNG-chosen mix of listings, item reads, renames,
    creations and deletions against pre-created volumes — so every
    measurement config replays the identical request stream, and the
    harness cross-checks that verdict sequences agree at every domain
    count. *)

type spec = {
  projects : int;  (** tenant count; also the shard count *)
  requests_per_project : int;
  seed : int;
}

val default_spec : spec
(** 8 projects x 50 requests, seed 42. *)

type scaling_point = {
  sp_domains : int;
  sp_requests : int;
  sp_elapsed_ns : float;
  sp_req_per_s : float;
  sp_hit_rate : float;
  sp_verdicts : string list;  (** conformance per request, arrival order *)
}

type report = {
  rp_projects : int;
  rp_requests_per_project : int;
  rp_seed : int;
  rp_shards : int;
  rp_available_domains : int;
      (** hardware parallelism of the measurement host
          ({!Cm_core.Domain_pool.available}) — on a single-core host
          extra domains only add contention *)
  rp_scaling : scaling_point list;
  rp_speedup : float;  (** best req/s over the 1-domain req/s *)
  rp_verdicts_consistent : bool;
      (** verdict sequences identical at every measured domain count *)
  rp_gets_baseline : float;
      (** observation GETs per monitored request, no pruning, no cache *)
  rp_gets_pruned : float;  (** with footprint pruning *)
  rp_gets_cached : float;  (** pruning + cross-request cache *)
  rp_cache : Cm_monitor.Obs_cache.stats;
  rp_handle_ns : float;  (** single-domain ns per monitored request *)
}

val run :
  ?spec:spec -> ?domains_list:int list -> unit -> (report, string list) result
(** Fresh cloud + shard pool per measurement (default domain counts
    1, 2 and 4). *)

val verdict_run :
  spec ->
  domains:int ->
  (string list * string list array, string list) result
(** Fresh world, one serving pass: the conformance names in arrival
    order plus each shard's conformance sequence — the determinism
    tests assert both are identical at every domain count. *)

val render : report -> string

val to_json : report -> Cm_json.Json.t
(** The BENCH_throughput.json document. *)

val check_against_baseline :
  report ->
  baseline:Cm_json.Json.t ->
  max_regression_pct:float ->
  (unit, string) result
(** Compare [rp_handle_ns] against the
    [fastpath/cinder-handle-compiled] entry of a BENCH_fastpath.json
    document. *)
