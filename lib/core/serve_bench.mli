(** Throughput harness for the sharded monitor: replay a seeded
    multi-tenant workload at several domain counts and report req/s
    scaling, observation-cache hit rates, observation GETs per request
    under footprint pruning, and the single-domain handle cost (the CI
    regression gate against BENCH_fastpath.json).

    The workload is a pure function of the spec — round-robin over the
    tenants with a PRNG-chosen mix of listings, item reads, renames,
    creations and deletions against pre-created volumes — so every
    measurement config replays the identical request stream, and the
    harness cross-checks that verdict sequences agree at every domain
    count. *)

type spec = {
  projects : int;  (** tenant count; also the shard count *)
  requests_per_project : int;
  seed : int;
}

val default_spec : spec
(** 8 projects x 50 requests, seed 42. *)

type invalid_reason =
  | Host_single_core
      (** more domains than the host has: the point measures
          oversubscription contention, not parallel speedup *)
  | Gate_failed
      (** the speedup gate was active and this point missed the floor *)

val invalid_reason_to_string : invalid_reason -> string
(** ["host_single_core"] / ["gate_failed"] — the machine-readable
    labels BENCH_throughput.json carries. *)

type scaling_point = {
  sp_domains : int;
  sp_requests : int;
  sp_elapsed_ns : float;
  sp_req_per_s : float;
  sp_hit_rate : float;
  mutable sp_invalid : invalid_reason option;
      (** [None] = the row counts toward [rp_speedup];
          {!check_speedup} may relabel rows after measurement *)
  sp_lock_per_req : float;
      (** instrumented-lock acquisitions per request during this
          serving phase ({!Cm_core.Lockstat} global delta / requests) *)
  sp_verdicts : string list;  (** conformance per request, arrival order *)
}

type latency = {
  lat_rate_per_s : float;  (** offered (open-loop) arrival rate *)
  lat_requests : int;
  lat_achieved_per_s : float;  (** completions over the makespan *)
  lat_p50_ns : float;
  lat_p95_ns : float;
  lat_p99_ns : float;
  lat_max_ns : float;
}
(** Open-loop latency distribution: requests arrive on a fixed schedule
    and latency is completion minus {e scheduled} arrival, so queueing
    delay is measured instead of throttling the offered load. *)

type eval_comparison = {
  ev_full_per_req : float;
      (** contract evaluations per request under [Full_eval] *)
  ev_inc_per_req : float;  (** same workload under [Incremental] *)
  ev_reduction : float;  (** full/incremental — the >= 3x target *)
  ev_replays : int;  (** memoized verdict replays, incremental run *)
  ev_node_hit_rate : float;  (** inner connective cache hit rate *)
  ev_hit_ns : float;  (** one memoized-hit precondition check *)
  ev_hit_minor_words : float;
      (** minor-heap words allocated per such check; target 0 *)
}

type report = {
  rp_projects : int;
  rp_requests_per_project : int;
  rp_seed : int;
  rp_shards : int;
  rp_available_domains : int;
      (** hardware parallelism of the measurement host
          ({!Cm_core.Domain_pool.available}) — on a single-core host
          extra domains only add contention *)
  rp_scaling : scaling_point list;
  rp_speedup : float;
      (** best {e valid} multi-domain req/s over the 1-domain req/s
          (can be below 1.0); 1.0 when no multi-domain point is valid *)
  rp_verdicts_consistent : bool;
      (** verdict sequences identical at every measured domain count *)
  rp_gets_baseline : float;
      (** observation GETs per monitored request, no pruning, no cache *)
  rp_gets_pruned : float;  (** with footprint pruning *)
  rp_gets_cached : float;  (** pruning + cross-request cache *)
  rp_cache : Cm_monitor.Obs_cache.stats;
  rp_handle_ns : float;  (** single-domain ns per monitored request *)
  rp_latency : latency;
  rp_eval : eval_comparison;
  rp_get_locks_per_req : float;
      (** instrumented-lock acquisitions per request on a monitored
          GET-only stream — [global_lock_acquisitions_per_request] in
          the JSON, the contention gate's subject (target: exactly 0).
          Counted, not timed, so a single-core host measures it just as
          well as a many-core one. *)
  rp_min_speedup : float;  (** the conditional speedup gate's floor *)
  rp_lock_stats : Cm_core.Lockstat.stats list;
      (** per-lock process totals (collapsed by name, setup included) —
          where acquisitions went, not just how many *)
}

val run :
  ?spec:spec ->
  ?domains_list:int list ->
  ?rate:float ->
  ?min_speedup:float ->
  unit ->
  (report, string list) result
(** Fresh cloud + shard pool per measurement (default domain counts
    1, 2 and 4).  [rate] pins the open-loop arrival rate in req/s;
    omitted (or non-positive) it self-calibrates to ~70% of the
    measured closed-loop capacity.  [min_speedup] (default 1.6) is
    recorded as the speedup gate's floor. *)

val check_contention : report -> (unit, string) result
(** The contention gate: fails unless [rp_get_locks_per_req] is exactly
    0 — the monitored read path must be lock-free.  Active on every
    host, single-core included. *)

val check_speedup : report -> (string, string) result
(** The conditional speedup gate: when the host has >= 2 hardware
    domains and a valid multi-domain point exists, [rp_speedup] must
    reach [rp_min_speedup].  [Ok] carries the pass/skip explanation
    (a single-core host skips, explicitly, instead of passing
    vacuously).  On failure the multi-domain rows are relabeled
    [Gate_failed] so a subsequent {!to_json} records the reason. *)

val run_open_loop : spec -> rate_per_s:float -> (latency, string list) result
(** One open-loop pass at a fixed arrival rate (serving is sequential
    in arrival order).  Raises [Invalid_argument] when the rate is not
    positive. *)

val run_eval_comparison : spec -> (eval_comparison, string list) result
(** Replay the workload under [Full_eval] and [Incremental] and compare
    evaluation counts; also runs the memoized-hit microbench. *)

val run_resilience_overhead :
  ?spec:spec -> unit -> (float * float * float, string list) result
(** [(off_ns, on_ns, overhead_percent)]: the per-request handle cost of
    the serve workload raw and through the default resilience layer,
    and the relative overhead.  The backend is latency-free, so the
    difference is the layer's pure bookkeeping cost. *)

val measure_hit : ?checks:int -> unit -> float * float
(** [(ns, minor_words)] per memoized-hit precondition check of the
    paper's DELETE(volume) contract against an unchanged observed
    state. *)

val verdict_run :
  spec ->
  domains:int ->
  (string list * string list array, string list) result
(** Fresh world, one serving pass: the conformance names in arrival
    order plus each shard's conformance sequence — the determinism
    tests assert both are identical at every domain count. *)

val render : report -> string

val to_json : report -> Cm_json.Json.t
(** The BENCH_throughput.json document. *)

val check_resilience_baseline :
  overhead_percent:float ->
  baseline:Cm_json.Json.t ->
  max_overhead_pct:float ->
  (float, string) result
(** Gate a measured resilience overhead against the ceiling (the CI
    gate uses 10%).  The baseline is a BENCH_resilience.json document;
    its recorded [overhead_percent] is returned for drift reporting,
    and a baseline without the field is an error (the gate must never
    pass vacuously). *)

val check_against_baseline :
  report ->
  baseline:Cm_json.Json.t ->
  max_regression_pct:float ->
  (unit, string) result
(** Compare [rp_handle_ns] against the
    [fastpath/cinder-handle-compiled] entry of a BENCH_fastpath.json
    document; when the document also carries an
    [incremental/memoized-hit-check] row, additionally gate the
    memoized-hit check latency ([ns_per_run], +100 ns absolute slack)
    and its allocation rate ([minor_words_per_check], +2 words slack)
    at the same percentage.  Baselines without incremental rows skip
    those gates (back-compatible). *)
