(** Small deterministic PRNG (splitmix64) for the fault simulators.

    The chaos transport and the resilience layer's backoff jitter must
    be pure functions of their seeds — never [Stdlib.Random] — so every
    chaos campaign replays identically from [--seed].  (The fuzzer has
    its own splittable generator in [Cm_proptest.Rng]; this one is the
    dependency-free core variant for the simulation layers.) *)

type t

val of_seed : int -> t
val bits64 : t -> int64

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val int : t -> int -> int
(** [int t bound] uniform-ish in [\[0, bound)]; [bound] positive. *)

val int_in : t -> int -> int -> int
(** Inclusive range. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p].  [p <= 0.] never draws
    (and never advances the stream); [p >= 1.] always fires. *)
