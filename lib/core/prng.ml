type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_seed seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

(* 53 uniform bits into [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive"
  else
    let r = Int64.shift_right_logical (bits64 t) 1 in
    Int64.to_int (Int64.rem r (Int64.of_int bound))

let int_in t lo hi = lo + int t (hi - lo + 1)

let chance t p = p > 0.0 && (p >= 1.0 || float t < p)
