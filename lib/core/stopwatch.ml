type source = Wall | Virtual of Clock.t

let now_ns = function
  | Wall -> Unix.gettimeofday () *. 1e9
  | Virtual clock -> float_of_int (Clock.now clock) *. 1e6

let time_ns source f =
  let start = now_ns source in
  let result = f () in
  (result, now_ns source -. start)

(* Linear-interpolated percentile over a copy of the samples; [p] in
   [0, 100].  NaN on an empty array rather than an exception — latency
   reports degrade gracefully when a run produced no samples. *)
let percentile samples p =
  let n = Array.length samples in
  if n = 0 then Float.nan
  else begin
    let sorted = Array.copy samples in
    Array.sort Float.compare sorted;
    let rank = p /. 100. *. float_of_int (n - 1) in
    let rank = Float.max 0. (Float.min rank (float_of_int (n - 1))) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let w = rank -. float_of_int lo in
      (sorted.(lo) *. (1. -. w)) +. (sorted.(hi) *. w)
    end
  end

let percentiles samples ps = List.map (percentile samples) ps
