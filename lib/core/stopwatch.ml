type source = Wall | Virtual of Clock.t

let now_ns = function
  | Wall -> Unix.gettimeofday () *. 1e9
  | Virtual clock -> float_of_int (Clock.now clock) *. 1e6

let time_ns source f =
  let start = now_ns source in
  let result = f () in
  (result, now_ns source -. start)
