module Json = Cm_json.Json
module Json_parser = Cm_json.Parser
module Json_printer = Cm_json.Printer
module Xml = Cm_xml.Xml
module Http = Cm_http
module Ocl = Cm_ocl
module Uml = Cm_uml
module Rbac = Cm_rbac
module Contracts = Cm_contracts
module Clock = Cm_core.Clock
module Transport = Cm_core.Transport
module Cloudsim = Cm_cloudsim.Cloud
module Identity = Cm_cloudsim.Identity
module Store = Cm_cloudsim.Store
module Faults = Cm_cloudsim.Faults
module Chaos = Cm_cloudsim.Chaos
module Monitor = Cm_monitor.Monitor
module Resilience = Cm_monitor.Resilience
module Outcome = Cm_monitor.Outcome
module Report = Cm_monitor.Report
module Codegen = Cm_codegen
module Mutation = Cm_mutation
module Workload = Cm_workload.Workload
module Workload_exec = Cm_workload.Exec
module Testgen = Cm_testgen
module Lint = Cm_lint.Lint
module Analysis = Cm_analysis
module Serve_bench = Serve_bench

let cinder_security =
  { Cm_contracts.Generate.table = Cm_rbac.Security_table.cinder;
    assignment = Cm_rbac.Security_table.cinder_assignment
  }

let glance_security =
  { Cm_contracts.Generate.table = Cm_rbac.Security_table.glance;
    assignment = Cm_rbac.Security_table.cinder_assignment
  }

let snapshot_security =
  { Cm_contracts.Generate.table = Cm_uml.Snapshot_model.security_table;
    assignment = Cm_rbac.Security_table.cinder_assignment
  }

let cross_security =
  { Cm_contracts.Generate.table = Cm_rbac.Security_table.cross;
    assignment = Cm_rbac.Security_table.cinder_assignment
  }

let monitor_of_models ?mode ?strategy ~service_token ?security resources
    behavior backend =
  let config =
    Monitor.default_config ?mode ?strategy ~service_token ?security resources
      behavior
  in
  Monitor.create config backend

let monitor_of_xmi ?mode ?strategy ~service_token ?security xmi_text backend =
  match Cm_uml.Xmi.read xmi_text with
  | Error msg -> Error [ msg ]
  | Ok doc ->
    (match doc.Cm_uml.Xmi.behavior_models with
     | [] -> Error [ "XMI document contains no state machine" ]
     | behavior :: _ ->
       monitor_of_models ?mode ?strategy ~service_token ?security
         doc.Cm_uml.Xmi.resource_model behavior backend)

let django_of_xmi ~project_name ?cloud_base ?security xmi_text =
  match Cm_uml.Xmi.read xmi_text with
  | Error msg -> Error msg
  | Ok doc ->
    (match doc.Cm_uml.Xmi.behavior_models with
     | [] -> Error "XMI document contains no state machine"
     | behavior :: _ ->
       Cm_codegen.Django_project.generate ~project_name ?cloud_base ?security
         doc.Cm_uml.Xmi.resource_model behavior)

let validate_cloud ?(mutants = Cm_mutation.Mutant.paper_mutants) () =
  Cm_mutation.Campaign.run mutants

let version = "1.0.0"
