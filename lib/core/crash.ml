exception Crashed of string

type t = {
  counts : (string, int) Hashtbl.t;
  mutable armed : (string * int) option;
  mutable fired : string option;
}

let create () = { counts = Hashtbl.create 16; armed = None; fired = None }

let arm t ~site ~nth =
  t.armed <- Some (site, nth);
  t.fired <- None

let disarm t = t.armed <- None

let at opt site =
  match opt with
  | None -> ()
  | Some t ->
    let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.counts site) in
    Hashtbl.replace t.counts site n;
    (match t.armed with
     | Some (armed_site, nth) when String.equal armed_site site && n = nth ->
       t.fired <- Some site;
       t.armed <- None;
       raise (Crashed site)
     | Some _ | None -> ())

let fired t = t.fired

let hits t =
  Hashtbl.fold (fun site n acc -> (site, n) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset_counts t = Hashtbl.reset t.counts
