module Cloud = Cm_cloudsim.Cloud
module Store = Cm_cloudsim.Store
module Identity = Cm_cloudsim.Identity
module Request = Cm_http.Request
module Meth = Cm_http.Meth
module Json = Cm_json.Json
module Monitor = Cm_monitor.Monitor
module Shard = Cm_monitor.Shard
module Obs_cache = Cm_monitor.Obs_cache
module Outcome = Cm_monitor.Outcome
module Prng = Cm_core.Prng

type spec = { projects : int; requests_per_project : int; seed : int }

let default_spec = { projects = 8; requests_per_project = 50; seed = 42 }

(* ---- world: one cloud, N tenants, pre-created volumes --------------- *)

type tenant = {
  tn_project : string;
  tn_service : string;  (* project-scoped service token *)
  tn_admin : string;
  tn_member : string;
  tn_volumes : string list;  (* stable targets for GET/PUT *)
  mutable tn_victims : string list;  (* each DELETEd at most once *)
}

type world = {
  cloud : Cloud.t;
  service_token : string;
  tenants : tenant array;
}

let project_name i = Printf.sprintf "proj-%02d" i

(* How many volumes each tenant starts with: a handful of stable
   GET/PUT targets plus one deletion victim per expected DELETE. *)
let stable_volumes = 4

let created_volume_id resp =
  match resp.Cm_http.Response.body with
  | None -> None
  | Some body ->
    (match Cm_json.Pointer.get [ Key "volume"; Key "id" ] body with
     | Some (Json.String id) -> Some id
     | Some _ | None -> None)

let volume_body name =
  Json.obj
    [ ("volume", Json.obj [ ("name", Json.string name); ("size", Json.int 1) ])
    ]

let setup spec =
  let cloud = Cloud.create () in
  let identity = Cloud.identity cloud in
  let login user password project_id =
    match Cloud.login cloud ~user ~password ~project_id with
    | Ok t -> t
    | Error e -> failwith ("serve_bench: login failed: " ^ e)
  in
  let victims_per_tenant = max 1 (spec.requests_per_project / 10) in
  let tenants =
    Array.init spec.projects (fun i ->
        let pid = project_name i in
        ignore
          (Store.add_project (Cloud.store cloud) ~id:pid ~name:pid
             ~quota_volumes:(stable_volumes + spec.requests_per_project + 8)
             ~quota_gigabytes:1_000_000 ~quota_images:8 ());
        Identity.set_assignment identity ~project_id:pid
          Cm_rbac.Security_table.cinder_assignment;
        let add name groups =
          Identity.add_user identity ~password:"pw"
            (Cm_rbac.Subject.make name groups)
        in
        add (Printf.sprintf "svc-%d" i) [ "proj_administrator" ];
        add (Printf.sprintf "admin-%d" i) [ "proj_administrator" ];
        add (Printf.sprintf "member-%d" i) [ "service_architect" ];
        let tn_service = login (Printf.sprintf "svc-%d" i) "pw" pid in
        let tn_admin = login (Printf.sprintf "admin-%d" i) "pw" pid in
        let tn_member = login (Printf.sprintf "member-%d" i) "pw" pid in
        let create name =
          let resp =
            Cloud.handle cloud
              (Request.make ~body:(volume_body name) Meth.POST
                 (Printf.sprintf "/v3/%s/volumes" pid)
              |> Request.with_auth_token tn_member)
          in
          match created_volume_id resp with
          | Some id -> id
          | None -> failwith "serve_bench: seeding volume creation failed"
        in
        let tn_volumes =
          List.init stable_volumes (fun v ->
              create (Printf.sprintf "base-%d" v))
        in
        let tn_victims =
          List.init victims_per_tenant (fun v ->
              create (Printf.sprintf "victim-%d" v))
        in
        { tn_project = pid; tn_service; tn_admin; tn_member; tn_volumes;
          tn_victims
        })
  in
  { cloud; service_token = tenants.(0).tn_service; tenants }

let service_token_for world =
  let table =
    Array.to_list world.tenants
    |> List.map (fun tn -> (tn.tn_project, tn.tn_service))
  in
  fun project -> List.assoc_opt project table

(* ---- workload: a pure function of the spec -------------------------- *)

(* Round-robin over tenants (so every shard gets work) with a
   PRNG-chosen operation mix: reads dominate, with enough mutations to
   keep cache invalidation honest.  Request paths only reference
   pre-created ids, so the stream is identical however it is served. *)
let workload spec world =
  let prng = Prng.of_seed spec.seed in
  let total = spec.projects * spec.requests_per_project in
  List.init total (fun step ->
      let tn = world.tenants.(step mod spec.projects) in
      let base = Printf.sprintf "/v3/%s/volumes" tn.tn_project in
      let stable n = List.nth tn.tn_volumes (n mod stable_volumes) in
      match Prng.int prng 10 with
      | 0 | 1 | 2 ->
        Request.make Meth.GET base |> Request.with_auth_token tn.tn_member
      | 3 | 4 | 5 ->
        Request.make Meth.GET (base ^ "/" ^ stable (Prng.int prng 64))
        |> Request.with_auth_token tn.tn_member
      | 6 | 7 ->
        Request.make
          ~body:
            (Json.obj
               [ ( "volume",
                   Json.obj
                     [ ("name", Json.string (Printf.sprintf "ren-%d" step)) ]
                 )
               ])
          Meth.PUT
          (base ^ "/" ^ stable (Prng.int prng 64))
        |> Request.with_auth_token tn.tn_member
      | 8 ->
        Request.make ~body:(volume_body (Printf.sprintf "new-%d" step))
          Meth.POST base
        |> Request.with_auth_token tn.tn_member
      | _ ->
        (match tn.tn_victims with
         | id :: rest ->
           tn.tn_victims <- rest;
           Request.make Meth.DELETE (base ^ "/" ^ id)
           |> Request.with_auth_token tn.tn_admin
         | [] ->
           Request.make Meth.GET base |> Request.with_auth_token tn.tn_member))

(* ---- monitor pools --------------------------------------------------- *)

let pool_config ?(footprint_pruning = true) ?(cache = Obs_cache.Cross_request)
    world =
  Monitor.default_config ~footprint_pruning ~cache
    ~service_token:world.service_token
    ~service_token_for:(service_token_for world)
    ~security:
      { Cm_contracts.Generate.table = Cm_rbac.Security_table.cinder;
        assignment = Cm_rbac.Security_table.cinder_assignment
      }
    Cm_uml.Cinder_model.resources Cm_uml.Cinder_model.behavior

let make_pool ?footprint_pruning ?cache ~shards world backend =
  Shard.create ~shards (pool_config ?footprint_pruning ?cache world) backend

(* ---- measurements ---------------------------------------------------- *)

type scaling_point = {
  sp_domains : int;
  sp_requests : int;
  sp_elapsed_ns : float;
  sp_req_per_s : float;
  sp_hit_rate : float;
  sp_verdicts : string list;  (* conformance per request, arrival order *)
}

type report = {
  rp_projects : int;
  rp_requests_per_project : int;
  rp_seed : int;
  rp_shards : int;
  rp_available_domains : int;
      (* hardware parallelism of the measurement host: on a single-core
         host extra domains only add contention, so speedup must be read
         against this *)
  rp_scaling : scaling_point list;
  rp_speedup : float;  (* best req/s over the 1-domain req/s *)
  rp_verdicts_consistent : bool;
  rp_gets_baseline : float;  (* observation GETs per monitored request *)
  rp_gets_pruned : float;
  rp_gets_cached : float;
  rp_cache : Obs_cache.stats;
  rp_handle_ns : float;  (* single-domain ns per monitored request *)
}

let now_ns () = Unix.gettimeofday () *. 1e9

let run_scaling spec domains =
  let world = setup spec in
  let reqs = workload spec world in
  match make_pool ~shards:spec.projects world (Cloud.handle world.cloud) with
  | Error msgs -> Error msgs
  | Ok pool ->
    let n = List.length reqs in
    let t0 = now_ns () in
    let outcomes = Shard.handle_all ~domains pool reqs in
    let elapsed = now_ns () -. t0 in
    let stats = Shard.cache_stats pool in
    Ok
      { sp_domains = domains;
        sp_requests = n;
        sp_elapsed_ns = elapsed;
        sp_req_per_s = float_of_int n /. (elapsed /. 1e9);
        sp_hit_rate = Obs_cache.hit_rate stats;
        sp_verdicts =
          Array.to_list
            (Array.map
               (fun (o : Outcome.t) ->
                 Outcome.conformance_to_string o.Outcome.conformance)
               outcomes)
      }

(* GETs the monitor adds per monitored request: count every GET the
   backend sees, minus the workload's own forwarded GETs. *)
let run_gets spec ~footprint_pruning ~cache =
  let world = setup spec in
  let reqs = workload spec world in
  let gets = Atomic.make 0 in
  let backend req =
    if req.Request.meth = Meth.GET then Atomic.incr gets;
    Cloud.handle world.cloud req
  in
  match make_pool ~footprint_pruning ~cache ~shards:1 world backend with
  | Error msgs -> Error msgs
  | Ok pool ->
    let workload_gets =
      List.length (List.filter (fun r -> r.Request.meth = Meth.GET) reqs)
    in
    ignore (Shard.handle_all ~domains:1 pool reqs);
    let observation_gets = Atomic.get gets - workload_gets in
    Ok
      ( float_of_int observation_gets /. float_of_int (List.length reqs),
        Shard.cache_stats pool )

(* Arrival-order verdicts plus per-shard verdict sequences at a given
   domain count — the raw material of the determinism tests. *)
let verdict_run spec ~domains =
  let world = setup spec in
  let reqs = workload spec world in
  match make_pool ~shards:spec.projects world (Cloud.handle world.cloud) with
  | Error msgs -> Error msgs
  | Ok pool ->
    let outcomes = Shard.handle_all ~domains pool reqs in
    let names arr =
      List.map
        (fun (o : Outcome.t) ->
          Outcome.conformance_to_string o.Outcome.conformance)
        arr
    in
    Ok
      ( names (Array.to_list outcomes),
        Array.map names (Shard.outcomes_by_shard pool) )

let run_handle_ns spec =
  let world = setup spec in
  let reqs = workload spec world in
  match make_pool ~shards:spec.projects world (Cloud.handle world.cloud) with
  | Error msgs -> Error msgs
  | Ok pool ->
    let n = List.length reqs in
    let t0 = now_ns () in
    ignore (Shard.handle_all ~domains:1 pool reqs);
    let elapsed = now_ns () -. t0 in
    Ok (elapsed /. float_of_int n)

let run ?(spec = default_spec) ?(domains_list = [ 1; 2; 4 ]) () =
  let ( let* ) = Result.bind in
  let rec scale acc = function
    | [] -> Ok (List.rev acc)
    | d :: rest ->
      let* point = run_scaling spec d in
      scale (point :: acc) rest
  in
  let* scaling = scale [] domains_list in
  let* gets_baseline, _ =
    run_gets spec ~footprint_pruning:false ~cache:Obs_cache.Disabled
  in
  let* gets_pruned, _ =
    run_gets spec ~footprint_pruning:true ~cache:Obs_cache.Disabled
  in
  let* gets_cached, cache_stats =
    run_gets spec ~footprint_pruning:true ~cache:Obs_cache.Cross_request
  in
  let* handle_ns = run_handle_ns spec in
  let base_rate = match scaling with p :: _ -> p.sp_req_per_s | [] -> nan in
  let best_rate =
    List.fold_left (fun acc p -> Float.max acc p.sp_req_per_s) 0. scaling
  in
  let verdicts_consistent =
    match scaling with
    | [] -> true
    | p :: rest -> List.for_all (fun q -> q.sp_verdicts = p.sp_verdicts) rest
  in
  Ok
    { rp_projects = spec.projects;
      rp_requests_per_project = spec.requests_per_project;
      rp_seed = spec.seed;
      rp_shards = spec.projects;
      rp_available_domains = Cm_core.Domain_pool.available ();
      rp_scaling = scaling;
      rp_speedup = best_rate /. base_rate;
      rp_verdicts_consistent = verdicts_consistent;
      rp_gets_baseline = gets_baseline;
      rp_gets_pruned = gets_pruned;
      rp_gets_cached = gets_cached;
      rp_cache = cache_stats;
      rp_handle_ns = handle_ns
    }

(* ---- reporting ------------------------------------------------------- *)

let render report =
  let buf = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  line
    "serve-bench: %d projects x %d requests (seed %d), %d shards, %d \
     hardware domain%s"
    report.rp_projects report.rp_requests_per_project report.rp_seed
    report.rp_shards report.rp_available_domains
    (if report.rp_available_domains = 1 then "" else "s");
  line "";
  line "%-8s %-10s %-12s %-10s %s" "domains" "requests" "req/s" "hit rate"
    "verdicts";
  line "%s" (String.make 60 '-');
  List.iter
    (fun p ->
      line "%-8d %-10d %-12.0f %-10.2f %s" p.sp_domains p.sp_requests
        p.sp_req_per_s p.sp_hit_rate
        (if report.rp_verdicts_consistent then "consistent" else "DIVERGED"))
    report.rp_scaling;
  line "";
  line "speedup (best vs 1 domain):     %.2fx" report.rp_speedup;
  line "observation GETs per request:";
  line "  unpruned, uncached:           %.2f" report.rp_gets_baseline;
  line "  footprint-pruned:             %.2f" report.rp_gets_pruned;
  line "  pruned + cross-request cache: %.2f" report.rp_gets_cached;
  line "cache: %d hits / %d misses / %d invalidated (%.0f%% hit rate)"
    report.rp_cache.Obs_cache.hits report.rp_cache.Obs_cache.misses
    report.rp_cache.Obs_cache.invalidated
    (100. *. Obs_cache.hit_rate report.rp_cache);
  line "single-domain handle:           %.1f us/request"
    (report.rp_handle_ns /. 1e3);
  Buffer.contents buf

let to_json report =
  Json.obj
    [ ("projects", Json.int report.rp_projects);
      ("requests_per_project", Json.int report.rp_requests_per_project);
      ("seed", Json.int report.rp_seed);
      ("shards", Json.int report.rp_shards);
      ("available_domains", Json.int report.rp_available_domains);
      ( "scaling",
        Json.list
          (List.map
             (fun p ->
               Json.obj
                 [ ("domains", Json.int p.sp_domains);
                   ("requests", Json.int p.sp_requests);
                   ("elapsed_ns", Json.float p.sp_elapsed_ns);
                   ("req_per_s", Json.float p.sp_req_per_s);
                   ("cache_hit_rate", Json.float p.sp_hit_rate)
                 ])
             report.rp_scaling) );
      ("speedup", Json.float report.rp_speedup);
      ("verdicts_consistent", Json.bool report.rp_verdicts_consistent);
      ( "gets_per_request",
        Json.obj
          [ ("baseline", Json.float report.rp_gets_baseline);
            ("pruned", Json.float report.rp_gets_pruned);
            ("pruned_cached", Json.float report.rp_gets_cached)
          ] );
      ( "cache",
        Json.obj
          [ ("hits", Json.int report.rp_cache.Obs_cache.hits);
            ("misses", Json.int report.rp_cache.Obs_cache.misses);
            ("invalidated", Json.int report.rp_cache.Obs_cache.invalidated);
            ("hit_rate", Json.float (Obs_cache.hit_rate report.rp_cache))
          ] );
      ("handle_ns_per_run", Json.float report.rp_handle_ns)
    ]

(* ---- CI regression gate ---------------------------------------------- *)

let fastpath_handle_ns baseline =
  match baseline with
  | Json.List entries ->
    List.find_map
      (fun entry ->
        match
          ( Cm_json.Pointer.get [ Key "benchmark" ] entry,
            Cm_json.Pointer.get [ Key "ns_per_run" ] entry )
        with
        | Some (Json.String "fastpath/cinder-handle-compiled"), Some ns ->
          (match ns with
           | Json.Float f -> Some f
           | Json.Int i -> Some (float_of_int i)
           | _ -> None)
        | _ -> None)
      entries
  | _ -> None

let check_against_baseline report ~baseline ~max_regression_pct =
  match fastpath_handle_ns baseline with
  | None ->
    Error "baseline has no fastpath/cinder-handle-compiled ns_per_run entry"
  | Some base_ns ->
    let limit = base_ns *. (1. +. (max_regression_pct /. 100.)) in
    if report.rp_handle_ns > limit then
      Error
        (Printf.sprintf
           "handle regression: %.0f ns/request exceeds %.0f ns (baseline \
            %.0f ns + %.0f%%)"
           report.rp_handle_ns limit base_ns max_regression_pct)
    else Ok ()
