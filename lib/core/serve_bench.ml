module Cloud = Cm_cloudsim.Cloud
module Store = Cm_cloudsim.Store
module Identity = Cm_cloudsim.Identity
module Request = Cm_http.Request
module Meth = Cm_http.Meth
module Json = Cm_json.Json
module Monitor = Cm_monitor.Monitor
module Shard = Cm_monitor.Shard
module Obs_cache = Cm_monitor.Obs_cache
module Outcome = Cm_monitor.Outcome
module Prng = Cm_core.Prng

type spec = { projects : int; requests_per_project : int; seed : int }

let default_spec = { projects = 8; requests_per_project = 50; seed = 42 }

(* ---- world: one cloud, N tenants, pre-created volumes --------------- *)

type tenant = {
  tn_project : string;
  tn_service : string;  (* project-scoped service token *)
  tn_admin : string;
  tn_member : string;
  tn_volumes : string list;  (* stable targets for GET/PUT *)
  mutable tn_victims : string list;  (* each DELETEd at most once *)
}

type world = {
  cloud : Cloud.t;
  service_token : string;
  tenants : tenant array;
}

let project_name i = Printf.sprintf "proj-%02d" i

(* How many volumes each tenant starts with: a handful of stable
   GET/PUT targets plus one deletion victim per expected DELETE. *)
let stable_volumes = 4

let created_volume_id resp =
  match resp.Cm_http.Response.body with
  | None -> None
  | Some body ->
    (match Cm_json.Pointer.get [ Key "volume"; Key "id" ] body with
     | Some (Json.String id) -> Some id
     | Some _ | None -> None)

let volume_body name =
  Json.obj
    [ ("volume", Json.obj [ ("name", Json.string name); ("size", Json.int 1) ])
    ]

let setup spec =
  let cloud = Cloud.create () in
  let identity = Cloud.identity cloud in
  let login user password project_id =
    match Cloud.login cloud ~user ~password ~project_id with
    | Ok t -> t
    | Error e -> failwith ("serve_bench: login failed: " ^ e)
  in
  let victims_per_tenant = max 1 (spec.requests_per_project / 10) in
  let tenants =
    Array.init spec.projects (fun i ->
        let pid = project_name i in
        ignore
          (Store.add_project (Cloud.store cloud) ~id:pid ~name:pid
             ~quota_volumes:(stable_volumes + spec.requests_per_project + 8)
             ~quota_gigabytes:1_000_000 ~quota_images:8 ());
        Identity.set_assignment identity ~project_id:pid
          Cm_rbac.Security_table.cinder_assignment;
        let add name groups =
          Identity.add_user identity ~password:"pw"
            (Cm_rbac.Subject.make name groups)
        in
        add (Printf.sprintf "svc-%d" i) [ "proj_administrator" ];
        add (Printf.sprintf "admin-%d" i) [ "proj_administrator" ];
        add (Printf.sprintf "member-%d" i) [ "service_architect" ];
        let tn_service = login (Printf.sprintf "svc-%d" i) "pw" pid in
        let tn_admin = login (Printf.sprintf "admin-%d" i) "pw" pid in
        let tn_member = login (Printf.sprintf "member-%d" i) "pw" pid in
        let create name =
          let resp =
            Cloud.handle cloud
              (Request.make ~body:(volume_body name) Meth.POST
                 (Printf.sprintf "/v3/%s/volumes" pid)
              |> Request.with_auth_token tn_member)
          in
          match created_volume_id resp with
          | Some id -> id
          | None -> failwith "serve_bench: seeding volume creation failed"
        in
        let tn_volumes =
          List.init stable_volumes (fun v ->
              create (Printf.sprintf "base-%d" v))
        in
        let tn_victims =
          List.init victims_per_tenant (fun v ->
              create (Printf.sprintf "victim-%d" v))
        in
        { tn_project = pid; tn_service; tn_admin; tn_member; tn_volumes;
          tn_victims
        })
  in
  { cloud; service_token = tenants.(0).tn_service; tenants }

let service_token_for world =
  let table =
    Array.to_list world.tenants
    |> List.map (fun tn -> (tn.tn_project, tn.tn_service))
  in
  fun project -> List.assoc_opt project table

(* ---- workload: a pure function of the spec -------------------------- *)

(* Determinism contract: the request stream is a pure function of
   [(spec.projects, spec.requests_per_project, spec.seed)] — same spec,
   same stream, bit for bit, however it is later served.

   Each tenant compiles the workload DSL's read-heavy mix (the same d10
   distribution the mutation campaigns and the CLI expose) with its own
   derived seed, statically resolved against that tenant's
   pre-provisioned stable and victim volumes; the per-tenant request
   lists are then interleaved round-robin so every shard gets work. *)
let workload spec world =
  let per_tenant =
    Array.mapi
      (fun i tn ->
        let trace =
          Cm_workload.Workload.read_heavy_trace
            ~steps:spec.requests_per_project
            ~victims:(List.length tn.tn_victims) ~seed:(spec.seed + i)
        in
        let st =
          { Cm_workload.Exec.st_project = tn.tn_project;
            st_token =
              (function
              | Cm_workload.Workload.Admin -> tn.tn_admin
              | Cm_workload.Workload.Member | Cm_workload.Workload.User ->
                tn.tn_member);
            st_stable_volumes = tn.tn_volumes;
            st_victim_volumes = tn.tn_victims
          }
        in
        Array.of_list (Cm_workload.Exec.requests st trace))
      world.tenants
  in
  let total = spec.projects * spec.requests_per_project in
  List.init total (fun step ->
      per_tenant.(step mod spec.projects).(step / spec.projects))

(* ---- monitor pools --------------------------------------------------- *)

let pool_config ?(footprint_pruning = true) ?(cache = Obs_cache.Cross_request)
    ?eval ?resilience world =
  Monitor.default_config ~footprint_pruning ~cache ?eval ?resilience
    ~service_token:world.service_token
    ~service_token_for:(service_token_for world)
    ~security:
      { Cm_contracts.Generate.table = Cm_rbac.Security_table.cinder;
        assignment = Cm_rbac.Security_table.cinder_assignment
      }
    Cm_uml.Cinder_model.resources Cm_uml.Cinder_model.behavior

let make_pool ?footprint_pruning ?cache ?eval ?resilience ~shards world backend
    =
  Shard.create ~shards
    (pool_config ?footprint_pruning ?cache ?eval ?resilience world)
    backend

(* ---- measurements ---------------------------------------------------- *)

type invalid_reason =
  | Host_single_core
      (* more domains requested than the host has: the point measures
         oversubscription contention, not parallel speedup *)
  | Gate_failed
      (* the speedup gate was active and this point missed the floor *)

let invalid_reason_to_string = function
  | Host_single_core -> "host_single_core"
  | Gate_failed -> "gate_failed"

type scaling_point = {
  sp_domains : int;
  sp_requests : int;
  sp_elapsed_ns : float;
  sp_req_per_s : float;
  sp_hit_rate : float;
  mutable sp_invalid : invalid_reason option;
      (* [None] = the row counts toward speedup; gating may relabel a
         row after measurement *)
  sp_lock_per_req : float;
      (* instrumented-lock acquisitions per request during this serving
         phase (process-global Lockstat delta / requests) *)
  sp_verdicts : string list;  (* conformance per request, arrival order *)
}

type latency = {
  lat_rate_per_s : float;  (* offered (open-loop) arrival rate *)
  lat_requests : int;
  lat_achieved_per_s : float;  (* completions over the makespan *)
  lat_p50_ns : float;
  lat_p95_ns : float;
  lat_p99_ns : float;
  lat_max_ns : float;
}

type eval_comparison = {
  ev_full_per_req : float;  (* contract evaluations/request, Full_eval *)
  ev_inc_per_req : float;  (* same workload, Incremental *)
  ev_reduction : float;  (* full/incremental — the >= 3x target *)
  ev_replays : int;  (* memoized verdict replays in the incremental run *)
  ev_node_hit_rate : float;  (* inner connective cache hit rate *)
  ev_hit_ns : float;  (* one memoized-hit precondition check *)
  ev_hit_minor_words : float;  (* minor-heap words per such check; target 0 *)
}

type report = {
  rp_projects : int;
  rp_requests_per_project : int;
  rp_seed : int;
  rp_shards : int;
  rp_available_domains : int;
      (* hardware parallelism of the measurement host: on a single-core
         host extra domains only add contention, so speedup must be read
         against this *)
  rp_scaling : scaling_point list;
  rp_speedup : float;
      (* best *valid* multi-domain req/s over the 1-domain req/s; 1.0
         when the host cannot run any multi-domain point *)
  rp_verdicts_consistent : bool;
  rp_gets_baseline : float;  (* observation GETs per monitored request *)
  rp_gets_pruned : float;
  rp_gets_cached : float;
  rp_cache : Obs_cache.stats;
  rp_handle_ns : float;  (* single-domain ns per monitored request *)
  rp_latency : latency;  (* open-loop latency distribution *)
  rp_eval : eval_comparison;  (* incremental vs full re-evaluation *)
  rp_get_locks_per_req : float;
      (* instrumented-lock acquisitions per request on a monitored
         GET-only stream — the contention gate's subject; the RCU store
         and lock-free identity reads make the target exactly 0 *)
  rp_min_speedup : float;  (* the conditional speedup gate's floor *)
  rp_lock_stats : Cm_core.Lockstat.stats list;
      (* per-lock totals (collapsed by name) at the end of the run —
         where acquisitions went, not just how many *)
}

let now_ns () = Unix.gettimeofday () *. 1e9

let run_scaling spec domains =
  let world = setup spec in
  let reqs = workload spec world in
  match make_pool ~shards:spec.projects world (Cloud.handle world.cloud) with
  | Error msgs -> Error msgs
  | Ok pool ->
    let n = List.length reqs in
    let locks0 = Cm_core.Lockstat.total_acquisitions () in
    let t0 = now_ns () in
    let outcomes = Shard.handle_all ~domains pool reqs in
    let elapsed = now_ns () -. t0 in
    let locks = Cm_core.Lockstat.total_acquisitions () - locks0 in
    let stats = Shard.cache_stats pool in
    Ok
      { sp_domains = domains;
        sp_requests = n;
        sp_elapsed_ns = elapsed;
        sp_req_per_s = float_of_int n /. (elapsed /. 1e9);
        sp_hit_rate = Obs_cache.hit_rate stats;
        sp_invalid =
          (if domains > Cm_core.Domain_pool.available () then
             Some Host_single_core
           else None);
        sp_lock_per_req = float_of_int locks /. float_of_int (max 1 n);
        sp_verdicts =
          Array.to_list
            (Array.map
               (fun (o : Outcome.t) ->
                 Outcome.conformance_to_string o.Outcome.conformance)
               outcomes)
      }

(* GETs the monitor adds per monitored request: count every GET the
   backend sees, minus the workload's own forwarded GETs. *)
let run_gets spec ~footprint_pruning ~cache =
  let world = setup spec in
  let reqs = workload spec world in
  let gets = Atomic.make 0 in
  let backend req =
    if req.Request.meth = Meth.GET then Atomic.incr gets;
    Cloud.handle world.cloud req
  in
  match make_pool ~footprint_pruning ~cache ~shards:1 world backend with
  | Error msgs -> Error msgs
  | Ok pool ->
    let workload_gets =
      List.length (List.filter (fun r -> r.Request.meth = Meth.GET) reqs)
    in
    ignore (Shard.handle_all ~domains:1 pool reqs);
    let observation_gets = Atomic.get gets - workload_gets in
    Ok
      ( float_of_int observation_gets /. float_of_int (List.length reqs),
        Shard.cache_stats pool )

(* The contention gate's subject: instrumented-lock acquisitions per
   request on the monitored {e read} path.  Serve the workload's GETs
   (listings and item reads) through a fresh pool and difference the
   process-global Lockstat counter around the serving phase — setup
   (logins, seeding, contract generation) locks freely, the window
   starts after it.  A warm-up pass first, so one-time lazy
   initialization is not billed to the reads.  With the RCU store and
   lock-free identity validation the delta must be exactly zero; any
   nonzero value means a lock crept back onto the hot path. *)
let run_get_locks spec =
  let world = setup spec in
  let reqs =
    List.filter
      (fun r -> r.Request.meth = Meth.GET)
      (workload spec world)
  in
  match make_pool ~shards:spec.projects world (Cloud.handle world.cloud) with
  | Error msgs -> Error msgs
  | Ok pool ->
    ignore (Shard.handle_all ~domains:1 pool reqs);
    let locks0 = Cm_core.Lockstat.total_acquisitions () in
    ignore (Shard.handle_all ~domains:1 pool reqs);
    let locks = Cm_core.Lockstat.total_acquisitions () - locks0 in
    Ok (float_of_int locks /. float_of_int (max 1 (List.length reqs)))

(* Arrival-order verdicts plus per-shard verdict sequences at a given
   domain count — the raw material of the determinism tests. *)
let verdict_run spec ~domains =
  let world = setup spec in
  let reqs = workload spec world in
  match make_pool ~shards:spec.projects world (Cloud.handle world.cloud) with
  | Error msgs -> Error msgs
  | Ok pool ->
    let outcomes = Shard.handle_all ~domains pool reqs in
    let names arr =
      List.map
        (fun (o : Outcome.t) ->
          Outcome.conformance_to_string o.Outcome.conformance)
        arr
    in
    Ok
      ( names (Array.to_list outcomes),
        Array.map names (Shard.outcomes_by_shard pool) )

let run_handle_ns spec =
  let world = setup spec in
  let reqs = workload spec world in
  match make_pool ~shards:spec.projects world (Cloud.handle world.cloud) with
  | Error msgs -> Error msgs
  | Ok pool ->
    let n = List.length reqs in
    let t0 = now_ns () in
    ignore (Shard.handle_all ~domains:1 pool reqs);
    let elapsed = now_ns () -. t0 in
    Ok (elapsed /. float_of_int n)

(* Resilience overhead, measured the same way the resilience benchmark
   section does but on the serve workload: the identical request stream
   served once raw and once through the retry/timeout/breaker layer.
   Latency-free backend, so the difference is pure bookkeeping cost. *)
let run_resilience_overhead ?(spec = default_spec) () =
  let handle_ns ?resilience () =
    let world = setup spec in
    let reqs = workload spec world in
    match
      make_pool ?resilience ~shards:spec.projects world
        (Cloud.handle world.cloud)
    with
    | Error msgs -> Error msgs
    | Ok pool ->
      let n = List.length reqs in
      let t0 = now_ns () in
      ignore (Shard.handle_all ~domains:1 pool reqs);
      let elapsed = now_ns () -. t0 in
      Ok (elapsed /. float_of_int n)
  in
  match handle_ns () with
  | Error msgs -> Error msgs
  | Ok off_ns ->
    (match handle_ns ~resilience:Cm_monitor.Resilience.default () with
     | Error msgs -> Error msgs
     | Ok on_ns -> Ok (off_ns, on_ns, (on_ns -. off_ns) /. off_ns *. 100.))

(* Open-loop latency: requests arrive on a fixed schedule regardless of
   how fast the server drains them, so queueing delay shows up in the
   measured latency (completion minus scheduled arrival) instead of
   silently throttling the offered load, as a closed loop would.
   Serving is sequential in arrival order on the caller's domain — the
   same deterministic order as [handle_all ~domains:1]. *)
let run_open_loop spec ~rate_per_s =
  if rate_per_s <= 0. then invalid_arg "run_open_loop: rate must be positive";
  let world = setup spec in
  let reqs = Array.of_list (workload spec world) in
  match make_pool ~shards:spec.projects world (Cloud.handle world.cloud) with
  | Error msgs -> Error msgs
  | Ok pool ->
    let n = Array.length reqs in
    let interval_ns = 1e9 /. rate_per_s in
    let latencies = Array.make n 0. in
    let t0 = now_ns () in
    for i = 0 to n - 1 do
      let arrival = t0 +. (float_of_int i *. interval_ns) in
      let now = now_ns () in
      if now < arrival then Unix.sleepf ((arrival -. now) /. 1e9);
      let req = reqs.(i) in
      ignore (Monitor.handle (Shard.monitor pool (Shard.shard_of pool req)) req);
      latencies.(i) <- Float.max 0. (now_ns () -. arrival)
    done;
    let makespan = now_ns () -. t0 in
    Ok
      { lat_rate_per_s = rate_per_s;
        lat_requests = n;
        lat_achieved_per_s = float_of_int n /. (makespan /. 1e9);
        lat_p50_ns = Cm_core.Stopwatch.percentile latencies 50.;
        lat_p95_ns = Cm_core.Stopwatch.percentile latencies 95.;
        lat_p99_ns = Cm_core.Stopwatch.percentile latencies 99.;
        lat_max_ns = Array.fold_left Float.max 0. latencies
      }

(* ---- incremental vs full re-evaluation ------------------------------- *)

let run_eval_count spec eval =
  let world = setup spec in
  let reqs = workload spec world in
  match make_pool ~eval ~shards:spec.projects world (Cloud.handle world.cloud)
  with
  | Error msgs -> Error msgs
  | Ok pool ->
    ignore (Shard.handle_all ~domains:1 pool reqs);
    Ok (Shard.eval_stats pool, List.length reqs)

(* One memoized-hit check, timed and allocation-audited: prepare the
   paper's DELETE(volume) contract incrementally, observe once, then
   re-check the (unchanged) precondition in a tight loop.  The loop body
   is the monitor's replay path; the audit target is zero minor-heap
   words per iteration. *)
let measure_hit ?(checks = 200_000) () =
  let module Runtime = Cm_contracts.Runtime in
  let security =
    { Cm_contracts.Generate.table = Cm_rbac.Security_table.cinder;
      assignment = Cm_rbac.Security_table.cinder_assignment
    }
  in
  let contract =
    match
      Cm_contracts.Generate.contract_for ~security Cm_uml.Cinder_model.behavior
        { Cm_uml.Behavior_model.meth = Meth.DELETE; resource = "volume" }
    with
    | Ok c -> c
    | Error msg -> failwith ("serve_bench: contract generation failed: " ^ msg)
  in
  let env =
    Cm_ocl.Eval.env_of_bindings
      [ ( "project",
          Json.obj
            [ ("id", Json.string "p");
              ( "volumes",
                Json.list
                  [ Json.obj
                      [ ("id", Json.string "v-0");
                        ("status", Json.string "available")
                      ]
                  ] )
            ] );
        ("quota_sets", Json.obj [ ("volumes", Json.int 20) ]);
        ("volume", Json.obj [ ("status", Json.string "available") ]);
        ( "user",
          Json.obj
            [ ("groups", Json.list [ Json.string "proj_administrator" ]) ] )
      ]
  in
  let prepared = Runtime.prepare ~eval:Runtime.Incremental contract in
  let obs = Runtime.observe prepared env in
  ignore (Runtime.check_pre_observed prepared obs);
  (* warm *)
  let words0 = Gc.minor_words () in
  let t0 = now_ns () in
  for _ = 1 to checks do
    ignore (Sys.opaque_identity (Runtime.check_pre_observed prepared obs))
  done;
  let elapsed = now_ns () -. t0 in
  let words = Gc.minor_words () -. words0 in
  ( elapsed /. float_of_int checks,
    Float.max 0. (words /. float_of_int checks) )

let run_eval_comparison spec =
  let ( let* ) = Result.bind in
  let* full_stats, n = run_eval_count spec Cm_contracts.Runtime.Full_eval in
  let* inc_stats, _ = run_eval_count spec Cm_contracts.Runtime.Incremental in
  let per_req (s : Cm_contracts.Runtime.eval_stats) =
    float_of_int s.evals /. float_of_int n
  in
  let hit_ns, hit_words = measure_hit () in
  let node_total = inc_stats.node_hits + inc_stats.node_evals in
  Ok
    { ev_full_per_req = per_req full_stats;
      ev_inc_per_req = per_req inc_stats;
      ev_reduction =
        (if inc_stats.evals = 0 then Float.infinity
         else float_of_int full_stats.evals /. float_of_int inc_stats.evals);
      ev_replays = inc_stats.replays;
      ev_node_hit_rate =
        (if node_total = 0 then 0.
         else float_of_int inc_stats.node_hits /. float_of_int node_total);
      ev_hit_ns = hit_ns;
      ev_hit_minor_words = hit_words
    }

(* Speedup must compare parallel serving to serial serving, and only
   over points the host can actually parallelize: a point asking for
   more domains than the hardware has measures oversubscription, and
   including the 1-domain row in the "best" silently clamps the ratio
   to 1.0 on any host where parallelism loses. *)
let speedup_of scaling =
  let base =
    List.find_opt (fun p -> p.sp_domains = 1) scaling
    |> Option.map (fun p -> p.sp_req_per_s)
  in
  let multi =
    List.filter (fun p -> p.sp_domains > 1 && p.sp_invalid = None) scaling
  in
  match base, multi with
  | Some base_rate, _ :: _ when base_rate > 0. ->
    let best =
      List.fold_left (fun acc p -> Float.max acc p.sp_req_per_s) 0. multi
    in
    best /. base_rate
  | _ -> 1.0

let run ?(spec = default_spec) ?(domains_list = [ 1; 2; 4 ]) ?rate
    ?(min_speedup = 1.6) () =
  let ( let* ) = Result.bind in
  let rec scale acc = function
    | [] -> Ok (List.rev acc)
    | d :: rest ->
      let* point = run_scaling spec d in
      scale (point :: acc) rest
  in
  let* scaling = scale [] domains_list in
  (* Everything after the scaling phase measures single-domain cost;
     parked pool workers would tax it (minor GCs rendezvous across all
     live domains), so drain the shared pool before measuring. *)
  Cm_core.Domain_pool.shutdown_shared ();
  let* gets_baseline, _ =
    run_gets spec ~footprint_pruning:false ~cache:Obs_cache.Disabled
  in
  let* gets_pruned, _ =
    run_gets spec ~footprint_pruning:true ~cache:Obs_cache.Disabled
  in
  let* gets_cached, cache_stats =
    run_gets spec ~footprint_pruning:true ~cache:Obs_cache.Cross_request
  in
  let* handle_ns = run_handle_ns spec in
  (* Self-calibrate the open-loop rate to ~70% of the closed-loop
     capacity unless the caller pins one: past capacity the queue only
     grows and every percentile is the makespan. *)
  let rate_per_s =
    match rate with
    | Some r when r > 0. -> r
    | Some _ | None -> 0.7 *. (1e9 /. handle_ns)
  in
  let* latency = run_open_loop spec ~rate_per_s in
  let* eval_cmp = run_eval_comparison spec in
  let* get_locks = run_get_locks spec in
  let verdicts_consistent =
    match scaling with
    | [] -> true
    | p :: rest -> List.for_all (fun q -> q.sp_verdicts = p.sp_verdicts) rest
  in
  Ok
    { rp_projects = spec.projects;
      rp_requests_per_project = spec.requests_per_project;
      rp_seed = spec.seed;
      rp_shards = spec.projects;
      rp_available_domains = Cm_core.Domain_pool.available ();
      rp_scaling = scaling;
      rp_speedup = speedup_of scaling;
      rp_verdicts_consistent = verdicts_consistent;
      rp_gets_baseline = gets_baseline;
      rp_gets_pruned = gets_pruned;
      rp_gets_cached = gets_cached;
      rp_cache = cache_stats;
      rp_handle_ns = handle_ns;
      rp_latency = latency;
      rp_eval = eval_cmp;
      rp_get_locks_per_req = get_locks;
      rp_min_speedup = min_speedup;
      rp_lock_stats = Cm_core.Lockstat.by_name ()
    }

(* ---- gates ----------------------------------------------------------- *)

(* Contention gate: the monitored read path must be lock-free.  Always
   meaningful — lock acquisitions are counted, not timed, so a
   single-core host measures them just as well as a many-core one. *)
let contention_gate_passed report = report.rp_get_locks_per_req <= 0.

let check_contention report =
  if contention_gate_passed report then Ok ()
  else
    Error
      (Printf.sprintf
         "contention gate failed: %.4f instrumented-lock acquisitions per \
          request on the monitored GET path (must be 0 — a lock is back on \
          the hot read path)"
         report.rp_get_locks_per_req)

(* Conditional speedup gate: only a host that can actually run 2
   domains in parallel can fail it; a single-core host skips it (and
   says so) instead of passing vacuously. *)
let speedup_gate_active report =
  report.rp_available_domains >= 2
  && List.exists
       (fun p -> p.sp_domains > 1 && p.sp_invalid = None)
       report.rp_scaling

let check_speedup report =
  if not (speedup_gate_active report) then
    Ok
      (Printf.sprintf
         "speedup gate skipped: host has %d hardware domain(s), no valid \
          multi-domain point to gate (host_single_core)"
         report.rp_available_domains)
  else if report.rp_speedup >= report.rp_min_speedup then
    Ok
      (Printf.sprintf "speedup gate passed: %.2fx >= %.2fx required"
         report.rp_speedup report.rp_min_speedup)
  else begin
    (* Relabel the rows that missed the floor so the emitted JSON
       carries the reason, not just a boolean. *)
    List.iter
      (fun p ->
        if p.sp_domains > 1 && p.sp_invalid = None then
          p.sp_invalid <- Some Gate_failed)
      report.rp_scaling;
    Error
      (Printf.sprintf
         "speedup gate failed: best valid multi-domain speedup %.2fx is \
          below the %.2fx floor (host has %d domains)"
         report.rp_speedup report.rp_min_speedup report.rp_available_domains)
  end

(* ---- reporting ------------------------------------------------------- *)

let render report =
  let buf = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  line
    "serve-bench: %d projects x %d requests (seed %d), %d shards, %d \
     hardware domain%s"
    report.rp_projects report.rp_requests_per_project report.rp_seed
    report.rp_shards report.rp_available_domains
    (if report.rp_available_domains = 1 then "" else "s");
  line "";
  line "%-8s %-10s %-12s %-10s %-10s %-18s %s" "domains" "requests" "req/s"
    "hit rate" "locks/req" "valid" "verdicts";
  line "%s" (String.make 78 '-');
  List.iter
    (fun p ->
      line "%-8d %-10d %-12.0f %-10.2f %-10.3f %-18s %s" p.sp_domains
        p.sp_requests p.sp_req_per_s p.sp_hit_rate p.sp_lock_per_req
        (match p.sp_invalid with
         | None -> "yes"
         | Some r -> "INVALID:" ^ invalid_reason_to_string r)
        (if report.rp_verdicts_consistent then "consistent" else "DIVERGED"))
    report.rp_scaling;
  line "";
  let valid_multi =
    List.exists
      (fun p -> p.sp_domains > 1 && p.sp_invalid = None)
      report.rp_scaling
  in
  if valid_multi then
    line "speedup (best valid multi-domain vs 1 domain): %.2fx"
      report.rp_speedup
  else
    line
      "speedup: n/a (host has %d domain%s; multi-domain rows are invalid)"
      report.rp_available_domains
      (if report.rp_available_domains = 1 then "" else "s");
  line "observation GETs per request:";
  line "  unpruned, uncached:           %.2f" report.rp_gets_baseline;
  line "  footprint-pruned:             %.2f" report.rp_gets_pruned;
  line "  pruned + cross-request cache: %.2f" report.rp_gets_cached;
  line "cache: %d hits / %d misses / %d invalidated (%.0f%% hit rate)"
    report.rp_cache.Obs_cache.hits report.rp_cache.Obs_cache.misses
    report.rp_cache.Obs_cache.invalidated
    (100. *. Obs_cache.hit_rate report.rp_cache);
  line "single-domain handle:           %.1f us/request"
    (report.rp_handle_ns /. 1e3);
  line "";
  line "lock acquisitions per monitored GET: %.4f (gate target 0: %s)"
    report.rp_get_locks_per_req
    (if contention_gate_passed report then "pass" else "FAIL");
  if report.rp_lock_stats <> [] then begin
    line "instrumented locks (whole process, setup included):";
    List.iter
      (fun (s : Cm_core.Lockstat.stats) ->
        line "  %-22s %8d acq  %6d contended  wait %6.1f us  hold %8.1f us"
          s.st_name s.st_acquisitions s.st_contended
          (float_of_int s.st_wait_ns /. 1e3)
          (float_of_int s.st_hold_ns /. 1e3))
      report.rp_lock_stats
  end;
  line "";
  let lt = report.rp_latency in
  line "open-loop latency (offered %.0f req/s, achieved %.0f req/s):"
    lt.lat_rate_per_s lt.lat_achieved_per_s;
  line "  p50 %.1f us   p95 %.1f us   p99 %.1f us   max %.1f us"
    (lt.lat_p50_ns /. 1e3) (lt.lat_p95_ns /. 1e3) (lt.lat_p99_ns /. 1e3)
    (lt.lat_max_ns /. 1e3);
  line "";
  let ev = report.rp_eval in
  line "incremental evaluation (same workload, 1 domain):";
  line "  contract evaluations/request: %.2f full -> %.2f incremental (%.1fx \
        fewer)"
    ev.ev_full_per_req ev.ev_inc_per_req ev.ev_reduction;
  line "  memoized replays: %d; inner-node cache hit rate: %.0f%%"
    ev.ev_replays (100. *. ev.ev_node_hit_rate);
  line "  memoized-hit check: %.0f ns, %.2f minor words/check (target 0)"
    ev.ev_hit_ns ev.ev_hit_minor_words;
  Buffer.contents buf

let to_json report =
  Json.obj
    [ ("projects", Json.int report.rp_projects);
      ("requests_per_project", Json.int report.rp_requests_per_project);
      ("seed", Json.int report.rp_seed);
      ("shards", Json.int report.rp_shards);
      ("available_domains", Json.int report.rp_available_domains);
      ( "scaling",
        Json.list
          (List.map
             (fun p ->
               Json.obj
                 [ ("domains", Json.int p.sp_domains);
                   ("requests", Json.int p.sp_requests);
                   ("elapsed_ns", Json.float p.sp_elapsed_ns);
                   ("req_per_s", Json.float p.sp_req_per_s);
                   ("cache_hit_rate", Json.float p.sp_hit_rate);
                   ("lock_acquisitions_per_request",
                    Json.float p.sp_lock_per_req);
                   ("invalid", Json.bool (p.sp_invalid <> None));
                   ( "invalid_reason",
                     match p.sp_invalid with
                     | None -> Json.null
                     | Some r -> Json.string (invalid_reason_to_string r) )
                 ])
             report.rp_scaling) );
      ("speedup", Json.float report.rp_speedup);
      ( "global_lock_acquisitions_per_request",
        Json.float report.rp_get_locks_per_req );
      ( "contention_gate",
        Json.obj
          [ ("target", Json.float 0.);
            ("passed", Json.bool (contention_gate_passed report))
          ] );
      ( "speedup_gate",
        Json.obj
          [ ("min_speedup", Json.float report.rp_min_speedup);
            ("active", Json.bool (speedup_gate_active report));
            ( "passed",
              (* vacuous pass is reported as pass, but [active] says it
                 never ran; host_single_core rows carry the reason *)
              Json.bool
                ((not (speedup_gate_active report))
                || report.rp_speedup >= report.rp_min_speedup) )
          ] );
      ( "locks",
        Json.list
          (List.map
             (fun (s : Cm_core.Lockstat.stats) ->
               Json.obj
                 [ ("name", Json.string s.st_name);
                   ("acquisitions", Json.int s.st_acquisitions);
                   ("contended", Json.int s.st_contended);
                   ("wait_ns", Json.int s.st_wait_ns);
                   ("hold_ns", Json.int s.st_hold_ns)
                 ])
             report.rp_lock_stats) );
      ("verdicts_consistent", Json.bool report.rp_verdicts_consistent);
      ( "gets_per_request",
        Json.obj
          [ ("baseline", Json.float report.rp_gets_baseline);
            ("pruned", Json.float report.rp_gets_pruned);
            ("pruned_cached", Json.float report.rp_gets_cached)
          ] );
      ( "cache",
        Json.obj
          [ ("hits", Json.int report.rp_cache.Obs_cache.hits);
            ("misses", Json.int report.rp_cache.Obs_cache.misses);
            ("invalidated", Json.int report.rp_cache.Obs_cache.invalidated);
            ("hit_rate", Json.float (Obs_cache.hit_rate report.rp_cache))
          ] );
      ("handle_ns_per_run", Json.float report.rp_handle_ns);
      ( "latency",
        let lt = report.rp_latency in
        Json.obj
          [ ("rate_per_s", Json.float lt.lat_rate_per_s);
            ("requests", Json.int lt.lat_requests);
            ("achieved_per_s", Json.float lt.lat_achieved_per_s);
            ("p50_ns", Json.float lt.lat_p50_ns);
            ("p95_ns", Json.float lt.lat_p95_ns);
            ("p99_ns", Json.float lt.lat_p99_ns);
            ("max_ns", Json.float lt.lat_max_ns)
          ] );
      ( "incremental",
        let ev = report.rp_eval in
        Json.obj
          [ ("evals_per_request_full", Json.float ev.ev_full_per_req);
            ("evals_per_request_incremental", Json.float ev.ev_inc_per_req);
            ("reeval_reduction", Json.float ev.ev_reduction);
            ("replays", Json.int ev.ev_replays);
            ("node_hit_rate", Json.float ev.ev_node_hit_rate);
            ("hit_check_ns", Json.float ev.ev_hit_ns);
            ("minor_words_per_check", Json.float ev.ev_hit_minor_words)
          ] )
    ]

(* ---- CI regression gate ---------------------------------------------- *)

let number = function
  | Json.Float f -> Some f
  | Json.Int i -> Some (float_of_int i)
  | _ -> None

(* [field] of the row whose "benchmark" is [bench] in a
   BENCH_fastpath.json document. *)
let baseline_field baseline ~bench ~field =
  match baseline with
  | Json.List entries ->
    List.find_map
      (fun entry ->
        match
          ( Cm_json.Pointer.get [ Key "benchmark" ] entry,
            Cm_json.Pointer.get [ Key field ] entry )
        with
        | Some (Json.String name), Some v when String.equal name bench ->
          number v
        | _ -> None)
      entries
  | _ -> None

let fastpath_handle_ns baseline =
  baseline_field baseline ~bench:"fastpath/cinder-handle-compiled"
    ~field:"ns_per_run"

(* [measured] may not exceed [base] by more than the percentage, with a
   small absolute [slack] so near-zero baselines (0 minor words) do not
   turn measurement noise into failures. *)
let gate ~what ~unit ~measured ~base ~max_regression_pct ~slack =
  let limit = (base *. (1. +. (max_regression_pct /. 100.))) +. slack in
  if measured > limit then
    Error
      (Printf.sprintf
         "%s regression: %.2f %s exceeds %.2f %s (baseline %.2f %s + %.0f%% \
          + %.2f slack)"
         what measured unit limit unit base unit max_regression_pct slack)
  else Ok ()

(* The resilience gate is an absolute ceiling, not a relative one: the
   committed BENCH_resilience.json anchors what the overhead *was*, and
   the gate fails when the live measurement crosses [max_overhead_pct]
   — resilience must stay a thin layer regardless of history. *)
let check_resilience_baseline ~overhead_percent ~baseline ~max_overhead_pct =
  match Cm_json.Pointer.get [ Key "overhead_percent" ] baseline with
  | None -> Error "baseline has no overhead_percent field"
  | Some v ->
    (match number v with
     | None -> Error "baseline overhead_percent is not a number"
     | Some base ->
       if overhead_percent > max_overhead_pct then
         Error
           (Printf.sprintf
              "resilience overhead %.2f%% exceeds the %.0f%% ceiling \
               (committed baseline: %.2f%%)"
              overhead_percent max_overhead_pct base)
       else Ok base)

let check_against_baseline report ~baseline ~max_regression_pct =
  let ( let* ) = Result.bind in
  let* () =
    match fastpath_handle_ns baseline with
    | None ->
      Error "baseline has no fastpath/cinder-handle-compiled ns_per_run entry"
    | Some base_ns ->
      gate ~what:"handle" ~unit:"ns/request" ~measured:report.rp_handle_ns
        ~base:base_ns ~max_regression_pct ~slack:0.
  in
  (* The incremental rows only gate when the committed baseline has
     them: older BENCH_fastpath.json documents predate the incremental
     engine and must keep passing. *)
  let inc = "incremental/memoized-hit-check" in
  let* () =
    match baseline_field baseline ~bench:inc ~field:"ns_per_run" with
    | None -> Ok ()
    | Some base_ns ->
      gate ~what:"memoized-hit check" ~unit:"ns"
        ~measured:report.rp_eval.ev_hit_ns ~base:base_ns ~max_regression_pct
        ~slack:100.
  in
  match baseline_field baseline ~bench:inc ~field:"minor_words_per_check" with
  | None -> Ok ()
  | Some base_words ->
    gate ~what:"memoized-hit allocation" ~unit:"minor words/check"
      ~measured:report.rp_eval.ev_hit_minor_words ~base:base_words
      ~max_regression_pct ~slack:2.
