(** Deterministic fan-out of independent tasks over OCaml 5 domains.

    Task [i] of [n] is always executed by worker [i mod domains], and
    each worker runs its tasks in ascending index order.  The
    assignment — and therefore any per-worker side-effect order —
    depends only on [(n, domains)], never on the scheduler, which is
    what lets sharded monitor runs stay seed-deterministic.

    Two execution modes share that contract: the historical
    spawn-per-batch path, and a persistent {!type-t} worker pool whose
    domains are spawned once and parked between batches, so
    steady-state serving never pays [Domain.spawn]. *)

val available : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val spawn_count : unit -> int
(** Total domains this module has ever spawned (pool workers and
    fallback stripes alike).  Monotone; tests difference it around a
    steady-state phase to prove the pool is actually reused. *)

exception
  Task_failures of {
    first : exn;  (** the lowest-indexed failed task's exception *)
    failed : int;
    total : int;
  }
(** Raised when {e several} tasks of one batch fail.  A single failure
    re-raises the original exception unchanged, so existing handlers
    keep working; with more than one, no failure is silently dropped. *)

type t
(** A persistent worker pool.  Workers are spawned on first use, grown
    on demand, and parked on condition variables between batches. *)

val create : size:int -> t
(** [create ~size] starts a pool with [size] parked workers (0 is fine;
    the pool grows when a batch needs more). *)

val size : t -> int
(** Current worker count. *)

val shutdown : t -> unit
(** Stop and join every worker.  The pool is empty afterwards (a later
    batch would grow it again). *)

val run : ?pool:t -> domains:int -> int -> (int -> 'a) -> 'a array
(** [run ~domains n f] computes [|f 0; ...; f (n-1)|].  [domains] is
    clamped to [1 <= domains <= n]; with [domains = 1] everything runs
    on the calling domain.  Tasks must be independent: [f] is called
    concurrently from different domains.

    With [?pool], the [domains - 1] helper stripes run on parked pool
    workers (one handoff per worker per batch); the calling domain
    serves stripe 0 itself.  Batches on one pool are serialized by an
    admission lock — a caller finding it contended (nested parallelism)
    falls back to spawn-per-batch rather than queueing.  Without
    [?pool], helpers are spawned per batch as before.

    Exceptions: one failed task re-raises its exception after all
    stripes finished; several raise {!Task_failures}. *)

val run_shared : domains:int -> int -> (int -> 'a) -> 'a array
(** {!run} on the process-wide shared pool (lazily created, grown to
    the largest domain count ever requested, joined at exit). *)

val shutdown_shared : unit -> unit
(** Join the shared pool's parked workers; the pool regrows on the next
    multi-domain batch.  Parked domains are not free — every minor
    collection rendezvouses across live domains — so single-domain
    measurement phases drain the pool first. *)

val map_array : ?pool:t -> domains:int -> ('a -> 'b) -> 'a array -> 'b array

val map_list : ?pool:t -> domains:int -> ('a -> 'b) -> 'a list -> 'b list
