(** Deterministic fan-out of independent tasks over OCaml 5 domains.

    Task [i] of [n] is always executed by worker [i mod domains], and
    each worker runs its tasks in ascending index order.  The
    assignment — and therefore any per-worker side-effect order —
    depends only on [(n, domains)], never on the scheduler, which is
    what lets sharded monitor runs stay seed-deterministic. *)

val available : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val run : domains:int -> int -> (int -> 'a) -> 'a array
(** [run ~domains n f] computes [|f 0; ...; f (n-1)|].  [domains] is
    clamped to [1 <= domains <= n]; with [domains = 1] everything runs
    on the calling domain.  Tasks must be independent: [f] is called
    concurrently from different domains.  An exception in any task is
    re-raised after all workers have been joined. *)

val map_array : domains:int -> ('a -> 'b) -> 'a array -> 'b array

val map_list : domains:int -> ('a -> 'b) -> 'a list -> 'b list
