type t = { mutable now_ms : int }

let create ?(now_ms = 0) () = { now_ms }
let now t = t.now_ms
let advance t ms = if ms > 0 then t.now_ms <- t.now_ms + ms

let set t ms = t.now_ms <- ms

let elapsed_since t start = t.now_ms - start
