(** Cloudmon: generating cloud monitors from models.

    The umbrella API of the reproduction of {e Generating Cloud Monitors
    from Models to Secure Clouds} (Rauf & Troubitsyna, DSN 2018).  The
    subsystem libraries are re-exported under stable names, and the
    common end-to-end flows are packaged as single calls:

    - {!monitor_of_models}: models + security table -> running monitor
      over a backend;
    - {!monitor_of_xmi}: the paper's file-driven pipeline (Fig. 4);
    - {!django_of_xmi}: the [uml2django] generation step;
    - {!validate_cloud}: the §VI-D experiment — run the standard
      workload against a (possibly mutated) simulated cloud and report.

    Quickstart:
    {[
      let cloud = Cloudmon.Cloudsim.create () in
      Cloudmon.Cloudsim.seed cloud Cloudmon.Cloudsim.my_project;
      (* ... obtain a service token ... *)
      let monitor =
        Cloudmon.monitor_of_models ~service_token
          ~security:Cloudmon.cinder_security
          Cloudmon.Uml.Cinder_model.resources
          Cloudmon.Uml.Cinder_model.behavior
          (Cloudmon.Cloudsim.handle cloud)
        |> Result.get_ok
      in
      let outcome = Cloudmon.Monitor.handle monitor request in
      ...
    ]} *)

(** {1 Subsystems} *)

module Json = Cm_json.Json
module Json_parser = Cm_json.Parser
module Json_printer = Cm_json.Printer
module Xml = Cm_xml.Xml
module Http = Cm_http
module Ocl = Cm_ocl
module Uml = Cm_uml
module Rbac = Cm_rbac
module Contracts = Cm_contracts
module Cloudsim = Cm_cloudsim.Cloud
module Identity = Cm_cloudsim.Identity
module Store = Cm_cloudsim.Store
module Faults = Cm_cloudsim.Faults
module Monitor = Cm_monitor.Monitor
module Outcome = Cm_monitor.Outcome
module Report = Cm_monitor.Report
module Codegen = Cm_codegen
module Mutation = Cm_mutation
module Testgen = Cm_testgen

module Workload = Cm_workload.Workload
(** The seeded traffic-mix DSL: named mixes compiling deterministically
    to symbolic request traces. *)

module Workload_exec = Cm_workload.Exec
(** Trace execution: dynamic (through a monitor, resolving created
    ids) and static (batch request compilation for the benches). *)

module Lint = Cm_lint.Lint
(** The unified finding/rule/waiver vocabulary shared by validation and
    design-time analysis. *)

module Analysis = Cm_analysis
(** Design-time contract verification: the satisfiability solver, the
    AN001..AN015 rule registry (vacuity/RBAC/footprint plus the
    monitorability and interference passes), the seeded defect corpus
    and the dynamic cross-checks (the [analyze] subcommand). *)

module Serve_bench = Serve_bench
(** Sharded-serving throughput harness (the [serve-bench]
    subcommand). *)

(** {1 End-to-end flows} *)

val cinder_security : Cm_contracts.Generate.security
(** Table I with its usergroup/role assignment. *)

val glance_security : Cm_contracts.Generate.security
(** The image-service table (2.x requirements) with the same
    assignment. *)

val snapshot_security : Cm_contracts.Generate.security
(** The snapshot table (3.x requirements) with the same assignment. *)

val cross_security : Cm_contracts.Generate.security
(** The cross-service table (cinder + glance + compute attach rows)
    with the same assignment — pairs with
    {!Cm_uml.Cross_model}. *)

val monitor_of_models :
  ?mode:Cm_monitor.Monitor.mode ->
  ?strategy:Cm_contracts.Runtime.strategy ->
  service_token:string ->
  ?security:Cm_contracts.Generate.security ->
  Cm_uml.Resource_model.t ->
  Cm_uml.Behavior_model.t ->
  (Cm_http.Request.t -> Cm_http.Response.t) ->
  (Cm_monitor.Monitor.t, string list) result

val monitor_of_xmi :
  ?mode:Cm_monitor.Monitor.mode ->
  ?strategy:Cm_contracts.Runtime.strategy ->
  service_token:string ->
  ?security:Cm_contracts.Generate.security ->
  string ->
  (Cm_http.Request.t -> Cm_http.Response.t) ->
  (Cm_monitor.Monitor.t, string list) result
(** Parse XMI text (one resource model, at least one state machine) and
    build the monitor from the first state machine. *)

val django_of_xmi :
  project_name:string ->
  ?cloud_base:string ->
  ?security:Cm_contracts.Generate.security ->
  string ->
  (Cm_codegen.Django_project.file list, string) result
(** The [uml2django ProjectName DiagramsFileinXML] flow. *)

val validate_cloud :
  ?mutants:Cm_mutation.Mutant.t list ->
  unit ->
  (Cm_mutation.Campaign.result list, string list) result
(** The paper's validation: baseline plus each mutant (default: the
    three paper mutants) under the standard workload. *)

val version : string
