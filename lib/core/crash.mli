(** Deterministic crash-point injection.

    A {!t} is a set of named {e sites} threaded through the monitor and
    the journal ("the process could die here").  Each call to {!at}
    counts one occurrence of its site; when the instance is {e armed}
    at [(site, nth)] the nth occurrence raises {!Crashed} — modelling
    the process being killed at exactly that point — and disarms the
    instance, so the recovery path that follows cannot crash again at
    the same arming.  Everything is a pure function of the call
    sequence: campaigns replay bit-identically.

    The injected exception deliberately escapes the monitor's
    per-request exception containment (which re-raises it, like
    resource exhaustion): a kill must kill. *)

exception Crashed of string
(** Carries the site name.  Raised by {!at}, never caught internally. *)

type t

val create : unit -> t
(** A disarmed instance: {!at} only counts. *)

val arm : t -> site:string -> nth:int -> unit
(** Crash at the [nth] occurrence (1-based) of [site].  Re-arming
    replaces the previous arming and clears {!fired}. *)

val disarm : t -> unit

val at : t option -> string -> unit
(** [at (Some t) site] counts an occurrence and raises {!Crashed} if it
    is the armed one.  [at None _] is free — production configurations
    pass no instance. *)

val fired : t -> string option
(** The site that crashed, once it has. *)

val hits : t -> (string * int) list
(** Occurrence counts per site seen so far, sorted by site name. *)

val reset_counts : t -> unit
(** Zero the occurrence counters (keeps the arming). *)
