let available () = max 1 (Domain.recommended_domain_count ())

(* Every domain this module ever starts goes through [spawn], so "the
   steady state spawns nothing" is a testable claim: snapshot
   [spawn_count], run more batches, snapshot again. *)
let spawns = Atomic.make 0
let spawn_count () = Atomic.get spawns

let spawn f =
  Atomic.incr spawns;
  Domain.spawn f

(* A worker failure no longer erases its peers': every stripe's
   exception is collected, one failure re-raises as itself (existing
   handlers keep working), several raise the aggregate. *)
exception
  Task_failures of {
    first : exn;  (* lowest failed task index *)
    failed : int;
    total : int;
  }

let () =
  Printexc.register_printer (function
    | Task_failures { first; failed; total } ->
      Some
        (Printf.sprintf "Domain_pool.Task_failures (%d of %d tasks: %s)"
           failed total (Printexc.to_string first))
    | _ -> None)

let collect_results results =
  let errors = ref [] in
  let values =
    Array.map
      (function
        | Some (Ok v) -> Some v
        | Some (Error exn) ->
          errors := exn :: !errors;
          None
        | None -> failwith "Domain_pool: task not executed")
      results
  in
  match List.rev !errors with
  | [] -> Array.map Option.get values
  | [ exn ] -> raise exn
  | first :: _ as all ->
    raise
      (Task_failures
         { first; failed = List.length all; total = Array.length results })

(* ---- persistent worker pool ------------------------------------------ *)

(* Domains are spawned once and parked on a condition variable; a batch
   hands each worker one closure covering its whole stripe (batched
   admission: one lock/signal round per worker per batch, not per task)
   and blocks until all stripes report done.  Reused across batches, so
   steady-state serving pays a condition signal where it used to pay
   [Domain.spawn]. *)

type worker = {
  w_mutex : Mutex.t;
  w_cond : Condition.t;  (* signals both job arrival and completion *)
  mutable w_job : (unit -> unit) option;
  mutable w_busy : bool;  (* a submitted job has not completed yet *)
  mutable w_stop : bool;
  mutable w_domain : unit Domain.t option;  (* None only during creation *)
}

type t = {
  mutable workers : worker array;  (* grown on demand, never shrunk *)
  admission : Mutex.t;
      (* one batch at a time; a contended caller falls back to inline
         serving rather than queueing behind an unrelated batch *)
}

let worker_loop w () =
  let rec next () =
    Mutex.lock w.w_mutex;
    let rec wait () =
      match w.w_job with
      | None when not w.w_stop ->
        Condition.wait w.w_cond w.w_mutex;
        wait ()
      | job -> job
    in
    let job = wait () in
    Mutex.unlock w.w_mutex;
    match job with
    | None -> ()  (* stop *)
    | Some job ->
      (* Stripe closures trap their own exceptions; a raise here would
         be a pool bug, and taking the domain down makes it visible. *)
      job ();
      Mutex.lock w.w_mutex;
      w.w_job <- None;
      w.w_busy <- false;
      Condition.signal w.w_cond;
      Mutex.unlock w.w_mutex;
      next ()
  in
  next ()

let make_worker () =
  let w =
    { w_mutex = Mutex.create ();
      w_cond = Condition.create ();
      w_job = None;
      w_busy = false;
      w_stop = false;
      w_domain = None
    }
  in
  w.w_domain <- Some (spawn (worker_loop w));
  w

let create ~size =
  if size < 0 then invalid_arg "Domain_pool.create: negative size";
  { workers = Array.init size (fun _ -> make_worker ());
    admission = Mutex.create ()
  }

let size pool = Array.length pool.workers

(* Grow to at least [size] workers.  Caller holds [admission]. *)
let ensure_capacity pool size =
  let have = Array.length pool.workers in
  if have < size then
    pool.workers <-
      Array.append pool.workers
        (Array.init (size - have) (fun _ -> make_worker ()))

let submit w job =
  Mutex.lock w.w_mutex;
  w.w_job <- Some job;
  w.w_busy <- true;
  Condition.signal w.w_cond;
  Mutex.unlock w.w_mutex

let await w =
  Mutex.lock w.w_mutex;
  while w.w_busy do
    Condition.wait w.w_cond w.w_mutex
  done;
  Mutex.unlock w.w_mutex

let shutdown pool =
  Mutex.protect pool.admission (fun () ->
      Array.iter
        (fun w ->
          Mutex.lock w.w_mutex;
          w.w_stop <- true;
          Condition.signal w.w_cond;
          Mutex.unlock w.w_mutex)
        pool.workers;
      Array.iter (fun w -> Option.iter Domain.join w.w_domain) pool.workers;
      pool.workers <- [||])

(* Striped execution shared by the pooled and inline paths: domain [d]
   of [domains] owns indices d, d+domains, ...; each slot is written by
   exactly one domain and read only after every stripe completed. *)
let stripe ~domains n f results d () =
  let i = ref d in
  while !i < n do
    let r = try Ok (f !i) with exn -> Error exn in
    results.(!i) <- Some r;
    i := !i + domains
  done

(* Inline fallback: the pre-pool behavior, one spawn per helper stripe.
   Used when no pool is available or its admission lock is taken by a
   concurrent batch (nested parallelism). *)
let run_spawning ~domains n f =
  let results = Array.make n None in
  let spawned =
    List.init (domains - 1) (fun k -> spawn (stripe ~domains n f results (k + 1)))
  in
  stripe ~domains n f results 0 ();
  List.iter Domain.join spawned;
  collect_results results

let run_pooled pool ~domains n f =
  ensure_capacity pool (domains - 1);
  let results = Array.make n None in
  let used = Array.sub pool.workers 0 (domains - 1) in
  Array.iteri
    (fun k w -> submit w (stripe ~domains n f results (k + 1)))
    used;
  stripe ~domains n f results 0 ();
  Array.iter await used;
  collect_results results

let run ?pool ~domains n f =
  if n < 0 then invalid_arg "Domain_pool.run: negative task count";
  let domains = max 1 (min domains (max 1 n)) in
  if domains = 1 || n <= 1 then Array.init n f
  else
    match pool with
    | None -> run_spawning ~domains n f
    | Some pool ->
      if Mutex.try_lock pool.admission then
        Fun.protect
          ~finally:(fun () -> Mutex.unlock pool.admission)
          (fun () -> run_pooled pool ~domains n f)
      else run_spawning ~domains n f

(* The process-wide shared pool: lazily created, grown to the largest
   domain count ever requested, torn down at exit so spawned domains
   never outlive the program. *)
let shared : t option ref = ref None
let shared_lock = Mutex.create ()

let shared_pool () =
  Mutex.protect shared_lock (fun () ->
      match !shared with
      | Some pool -> pool
      | None ->
        let pool = create ~size:0 in
        at_exit (fun () -> shutdown pool);
        shared := Some pool;
        pool)

let run_shared ~domains n f = run ~pool:(shared_pool ()) ~domains n f

(* Join the shared pool's parked workers (the pool regrows on the next
   multi-domain batch).  Parked domains are not free to the rest of the
   process — every minor collection is a stop-the-world rendezvous
   across live domains — so measurement phases that must run truly
   single-domain drain the pool first. *)
let shutdown_shared () =
  Mutex.protect shared_lock (fun () ->
      match !shared with None -> () | Some pool -> shutdown pool)

let map_array ?pool ~domains f arr =
  run ?pool ~domains (Array.length arr) (fun i -> f arr.(i))

let map_list ?pool ~domains f xs =
  let arr = Array.of_list xs in
  Array.to_list (map_array ?pool ~domains f arr)
