let available () = max 1 (Domain.recommended_domain_count ())

let run ~domains n f =
  if n < 0 then invalid_arg "Domain_pool.run: negative task count";
  let domains = max 1 (min domains (max 1 n)) in
  if domains = 1 || n <= 1 then Array.init n f
  else begin
    let results = Array.make n None in
    (* Striped assignment: worker d owns indices d, d+domains, ... so
       the task->worker map is a pure function of (n, domains).  Each
       slot is written by exactly one domain and read only after join. *)
    let worker d () =
      let i = ref d in
      while !i < n do
        let r = try Ok (f !i) with exn -> Error exn in
        results.(!i) <- Some r;
        i := !i + domains
      done
    in
    let spawned =
      List.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1)))
    in
    worker 0 ();
    List.iter Domain.join spawned;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error exn) -> raise exn
        | None -> failwith "Domain_pool.run: task not executed")
      results
  end

let map_array ~domains f arr = run ~domains (Array.length arr) (fun i -> f arr.(i))

let map_list ~domains f xs =
  let arr = Array.of_list xs in
  Array.to_list (map_array ~domains f arr)
