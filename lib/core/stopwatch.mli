(** Phase timing with a pluggable time source.

    Wall time for real benchmarking; the shared virtual {!Clock} for
    chaos/deterministic runs, so per-phase attribution stays meaningful
    (and reproducible) when latency itself is simulated. *)

type source =
  | Wall  (** monotonic-enough wall clock, nanosecond floats *)
  | Virtual of Clock.t  (** the simulation clock, milliseconds -> ns *)

val now_ns : source -> float

val time_ns : source -> (unit -> 'a) -> 'a * float
(** Run the thunk and return its result with the elapsed nanoseconds.
    Exceptions propagate (nothing is recorded for the failed phase). *)

val percentile : float array -> float -> float
(** [percentile samples p] is the [p]-th percentile ([0 <= p <= 100])
    of the samples, linearly interpolated between order statistics (the
    array is not modified).  NaN when [samples] is empty. *)

val percentiles : float array -> float list -> float list
(** {!percentile} at several points (each sorts a fresh copy; fine for
    report-sized sample sets). *)
