exception Timeout of int
exception Connection_reset

let is_failure = function
  | Timeout _ | Connection_reset -> true
  | _ -> false

let describe = function
  | Timeout ms -> Printf.sprintf "transport timeout after %d virtual ms" ms
  | Connection_reset -> "connection reset"
  | exn -> Printexc.to_string exn
