(** Transport-level failures between the monitor and the cloud.

    A backend is [Request.t -> Response.t]; crash faults that have no
    well-formed HTTP answer (the connection died, the wait was
    abandoned) surface as these exceptions.  They are defined here — in
    the dependency-free core — so the unreliable-transport simulator
    ({!Cm_cloudsim.Chaos}) can raise them and the monitor's resilience
    layer ({!Cm_monitor.Resilience}) can catch them without either
    library depending on the other. *)

exception Timeout of int
(** The caller stopped waiting after the given virtual milliseconds.
    The request {e may or may not} have reached the backend. *)

exception Connection_reset
(** The connection dropped.  The request {e may or may not} have been
    executed before the drop. *)

val is_failure : exn -> bool
(** True exactly for the exceptions of this module. *)

val describe : exn -> string
(** Human-readable description (falls back to [Printexc.to_string]). *)
