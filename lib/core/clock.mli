(** Virtual monotonic clock (milliseconds).

    All timing in the simulation — injected latency, timeout budgets,
    retry backoff, circuit-breaker reset windows — is measured against a
    shared virtual clock instead of wall time.  Components {e advance}
    the clock to model time passing (a slow backend, a backoff sleep),
    so an entire fault campaign runs in microseconds of real time and is
    bit-reproducible: the "time" a test observes is a pure function of
    the call sequence. *)

type t

val create : ?now_ms:int -> unit -> t
(** A fresh clock, at [now_ms] (default 0). *)

val now : t -> int
(** Current virtual time in ms. *)

val advance : t -> int -> unit
(** Model [ms] of time passing (sleeps, network latency, processing).
    Non-positive amounts are ignored. *)

val set : t -> int -> unit
(** Force the clock to an absolute time.  Used by the resilience layer
    when a caller {e abandons} a slow call at its deadline: the latency
    the transport simulated past the deadline never happened from the
    caller's point of view, so the caller's timeline resumes at
    [start + timeout].  (Single-threaded simulation: no other observer
    saw the rolled-back interval.) *)

val elapsed_since : t -> int -> int
(** [elapsed_since t start] = [now t - start]. *)
