(** Dynamic cross-validation of the static verdicts.

    The solver's claims are falsifiable: a branch flagged {e dead}
    (AN002/AN008-style: its precondition is unsatisfiable) must never
    see its precondition evaluate to [True], and a branch flagged
    {e vacuous} (AN003-style: its consequent can never be [False]) must
    never see that consequent evaluate to [False] — over {e any}
    randomly generated observation.  This module replays both claims
    against a deterministic fuzz run driven by the resource model's
    signature: one disagreement is a soundness bug in the solver, not a
    flaky test. *)

type result = {
  cases : int;  (** observations generated *)
  branches : int;  (** transitions examined *)
  flagged_dead : int;  (** branches with statically unsatisfiable pre *)
  flagged_vacuous : int;  (** branches with tautological consequent *)
  live_witnessed : int;
      (** unflagged branches whose precondition held in at least one
          generated case — evidence the generator exercises the space *)
  violations : string list;
      (** each entry is a human-readable description of a static verdict
          contradicted by a concrete evaluation *)
}

val ok : result -> bool
(** No violations. *)

val pp_result : Format.formatter -> result -> unit

val run :
  ?cases:int -> ?seed:int -> Rules.input -> (result, string) Stdlib.result
(** [run input] classifies every transition branch statically, then
    replays [cases] (default 10_000) signature-driven random
    observations through {!Cm_ocl.Eval} against every branch.
    [Error] when the resource model's signature cannot be derived. *)

(** {2 Subscription soundness}

    The same adversarial treatment for {!Interference}: its subscription
    maps claim every event {e outside} a contract's map commutes with
    the contract.  Per case the oracle draws an environment, picks an
    event, regenerates exactly the state the event's write effect covers
    (field-precise), and demands bit-identical pre/post verdicts from
    every contract not subscribed to that event. *)

type subscription_result = {
  sub_cases : int;
  sub_contracts : int;
  sub_checks : int;
      (** (case, event, unsubscribed contract) verdict pairs compared *)
  sub_violations : string list;
}

val sub_ok : subscription_result -> bool

val pp_subscription_result : Format.formatter -> subscription_result -> unit

val run_subscriptions :
  ?cases:int -> ?seed:int -> Rules.input ->
  (subscription_result, string) Stdlib.result
(** Default 10_000 cases, seed 42 — the CI configuration.  [Error] when
    contracts or events cannot be derived from the input. *)
