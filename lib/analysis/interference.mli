(** Interference analysis: read footprints crossed with write effects
    (AN013–AN015).

    Crossing {!Cm_ocl.Footprint} (what a contract reads) with
    {!Effects} (what a trigger writes) yields, per contract, the
    {e minimal event subscription map}: the set of events able to change
    its verdict.  Everything outside the map provably commutes with the
    contract — the dynamic oracle {!Crosscheck.run_subscriptions}
    cross-checks exactly this claim.

    When every subscribed event is tenant-keyed the contract is
    {e shard-closed}: its verdicts are a function of one tenant's event
    stream, so a per-tenant sharded monitor evaluates it bit-identically
    at any domain count.  Auth-guarded contracts subscribe to the
    identity pseudo-event (token revocation carries no tenant key) and
    are therefore reported cross-shard — the static justification for
    the monitor's identity-event broadcast.

    - {b AN013} (error): a safe method's effect writes state.
    - {b AN014} (warning): a functional expression (invariant, guard or
      effect — not the generated auth guard) reads the identity subject.
    - {b AN015} (error): a contract subscribes to a {e model} event
      whose URI carries no tenant key — per-tenant sharding would drop
      another tenant's verdict-changing traffic. *)

type subscription = {
  sub_trigger : Cm_uml.Behavior_model.trigger;
  sub_events : Effects.event list;
      (** events able to change the contract's verdict, in event order
          (sorted by resource then method, identity last) *)
  sub_shard_closed : bool;
}

val contract_reads : Cm_contracts.Contract.t -> Cm_ocl.Footprint.t
(** Read footprint over every expression of the contract (pre,
    functional pre, auth guard, branches, post) — the same set
    {!Cm_contracts.Runtime.footprint} serves at run time. *)

val subscription_of :
  Effects.event list -> Cm_contracts.Contract.t -> subscription

val subscriptions : Input.t -> (subscription list, string) result
(** One subscription per generated contract, in trigger order. *)

val subscription_for :
  subscription list -> Cm_uml.Behavior_model.trigger -> subscription option

val cross_shard_events : subscription -> Effects.event list
(** The subscribed events that are not tenant-keyed (empty iff
    [sub_shard_closed]). *)

val to_runtime : subscription -> Cm_contracts.Runtime.subscription
(** The runtime-facing image: triggers flattened to
    [(method, lowercased resource, tenant-keyed)] triples. *)

val findings : Input.t -> Cm_lint.Lint.finding list
(** AN013/AN014/AN015.  Inputs whose contracts cannot be generated
    yield only the model-level AN013/AN014 findings. *)

val subscription_to_json : subscription -> Cm_json.Json.t

val to_json : subscription list -> Cm_json.Json.t
(** Stable dump — the golden subscription-map format committed under
    [test/golden/]. *)
