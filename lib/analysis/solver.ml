module Ast = Cm_ocl.Ast
module Simplify = Cm_ocl.Simplify
module Eval = Cm_ocl.Eval
module Value = Cm_ocl.Value
module J = Cm_json.Json

type outcome =
  | Unsat
  | Sat of Eval.env
  | Unknown

let pp_outcome ppf = function
  | Unsat -> Fmt.string ppf "unsat"
  | Sat _ -> Fmt.string ppf "sat"
  | Unknown -> Fmt.string ppf "unknown"

let atom_budget = 24
let node_budget = 20000
let neq_budget = 6

(* ------------------------------------------------------------------ *)
(* Normalization: distribute [At_pre] down to variable leaves.  All
   operators of the fragment are pure, so [pre(f(x, y)) = f(pre(x),
   pre(y))]; after the pass, pre-state reads are ordinary variables
   with a reserved prefix and the formula is [At_pre]-free.  Iterator
   binders are local to the body and must not be renamed. *)

let pre_prefix = "pre$"

let push_pre expr =
  let rec go inpre bound e =
    match e with
    | Ast.Var v ->
      if inpre && not (List.mem v bound) then Ast.Var (pre_prefix ^ v) else e
    | Ast.Bool_lit _ | Ast.Int_lit _ | Ast.String_lit _ | Ast.Null_lit -> e
    | Ast.At_pre inner -> go true bound inner
    | Ast.Nav (inner, p) -> Ast.Nav (go inpre bound inner, p)
    | Ast.Coll (inner, op) -> Ast.Coll (go inpre bound inner, op)
    | Ast.Member (a, incl, b) ->
      Ast.Member (go inpre bound a, incl, go inpre bound b)
    | Ast.Count (a, b) -> Ast.Count (go inpre bound a, go inpre bound b)
    | Ast.Iter (src, kind, v, body) ->
      Ast.Iter (go inpre bound src, kind, v, go inpre (v :: bound) body)
    | Ast.Unop (op, inner) -> Ast.Unop (op, go inpre bound inner)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, go inpre bound a, go inpre bound b)
  in
  go false [] expr

(* ------------------------------------------------------------------ *)
(* Atoms.  Integer comparisons are canonicalized to difference
   constraints [a - b <= k] / [a - b = k] over term nodes ([Zero] is
   the constant origin); string/enum equalities and collection
   membership of string constants get their own theories; everything
   else is an opaque boolean atom the search may assign freely but the
   realizer cannot construct values for. *)

type node_t = Zero | T of Ast.expr

type cmp = CLe | CEq

type eqrhs = R_str of string | R_null | R_term of Ast.expr

type atom =
  | A_cmp of node_t * node_t * cmp * int  (* a - b op k *)
  | A_eq of Ast.expr * eqrhs
  | A_mem of Ast.expr * string  (* coll->includes('s') *)
  | A_truth of Ast.expr

type skel =
  | S_true
  | S_false
  | S_lit of bool * int
  | S_and of skel * skel
  | S_or of skel * skel

(* Linearize one comparison side into (term, constant, definitely-int).
   Only the single-term-plus-constant shape is supported; anything else
   stays opaque. *)
let rec lin e =
  match e with
  | Ast.Int_lit n -> Some (None, n, true)
  | Ast.Unop (Ast.Neg, inner) ->
    (match lin inner with
     | Some (None, n, _) -> Some (None, -n, true)
     | _ -> None)
  | Ast.Binop (Ast.Add, a, b) ->
    (match (lin a, lin b) with
     | Some (t, c1, i1), Some (None, c2, i2)
     | Some (None, c1, i1), Some (t, c2, i2) -> Some (t, c1 + c2, i1 || i2)
     | _ -> None)
  | Ast.Binop (Ast.Sub, a, b) ->
    (match (lin a, lin b) with
     | Some (t, c1, i1), Some (None, c2, i2) -> Some (t, c1 - c2, i1 || i2)
     | _ -> None)
  | Ast.Coll (_, (Ast.Size | Ast.Sum)) | Ast.Count _ -> Some (Some e, 0, true)
  | Ast.Var _ | Ast.Nav _ | Ast.Coll (_, (Ast.First | Ast.Last)) ->
    Some (Some e, 0, false)
  | _ -> None

let node_of = function None -> Zero | Some t -> T t
let node_eq a b = a = b

(* ------------------------------------------------------------------ *)
(* Skeleton construction with a deduplicating atom table. *)

type builder = { mutable atoms : atom list; mutable count : int }

let intern b atom =
  let rec find i = function
    | [] -> None
    | a :: _ when a = atom -> Some (b.count - 1 - i)
    | _ :: rest -> find (i + 1) rest
  in
  match find 0 b.atoms with
  | Some idx -> idx
  | None ->
    b.atoms <- atom :: b.atoms;
    b.count <- b.count + 1;
    b.count - 1

let lit b polarity atom = S_lit (polarity, intern b atom)

(* [a - b op k] with constant folding and canonical orientation. *)
let cmp_atom b polarity na nb op k =
  if node_eq na nb then
    let holds = match op with CLe -> 0 <= k | CEq -> 0 = k in
    if holds = polarity then S_true else S_false
  else
    match op with
    | CLe -> lit b polarity (A_cmp (na, nb, CLe, k))
    | CEq ->
      if compare na nb <= 0 then lit b polarity (A_cmp (na, nb, CEq, k))
      else lit b polarity (A_cmp (nb, na, CEq, -k))

let int_cmp b polarity op (ta, ca, _) (tb, cb, _) =
  let a = node_of ta and bb = node_of tb in
  let k = cb - ca in
  match op with
  | Ast.Le -> cmp_atom b polarity a bb CLe k
  | Ast.Lt -> cmp_atom b polarity a bb CLe (k - 1)
  | Ast.Ge -> cmp_atom b polarity bb a CLe (-k)
  | Ast.Gt -> cmp_atom b polarity bb a CLe (-k - 1)
  | Ast.Eq -> cmp_atom b polarity a bb CEq k
  | Ast.Neq -> cmp_atom b (not polarity) a bb CEq k
  | _ -> assert false

let size_of e = Ast.Coll (e, Ast.Size)

(* Classify one boolean leaf (possibly negated) into a literal. *)
let rec classify b polarity e =
  match e with
  | Ast.Bool_lit bl -> if bl = polarity then S_true else S_false
  | Ast.Unop (Ast.Not, inner) -> classify b (not polarity) inner
  | Ast.Coll (c, Ast.Is_empty) ->
    cmp_atom b polarity (T (size_of c)) Zero CEq 0
  | Ast.Coll (c, Ast.Not_empty) ->
    cmp_atom b (not polarity) (T (size_of c)) Zero CEq 0
  | Ast.Member (coll, incl, Ast.String_lit s) ->
    lit b (if incl then polarity else not polarity) (A_mem (coll, s))
  | Ast.Binop (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), x, y) ->
    (match (lin x, lin y) with
     | Some la, Some lb -> int_cmp b polarity op la lb
     | _ -> lit b polarity (A_truth e))
  | Ast.Binop (((Ast.Eq | Ast.Neq) as op), x, y) ->
    let polarity = if op = Ast.Neq then not polarity else polarity in
    classify_eq b polarity e x y
  | _ -> lit b polarity (A_truth e)

and classify_eq b polarity whole x y =
  match (x, y) with
  | Ast.Bool_lit bl, other | other, Ast.Bool_lit bl ->
    classify b (if bl then polarity else not polarity) other
  | Ast.String_lit s1, Ast.String_lit s2 ->
    if String.equal s1 s2 = polarity then S_true else S_false
  | Ast.String_lit s, t | t, Ast.String_lit s ->
    (match lin t with
     | Some (Some term, 0, false) -> lit b polarity (A_eq (term, R_str s))
     | _ -> lit b polarity (A_truth whole))
  | Ast.Null_lit, Ast.Null_lit -> if polarity then S_true else S_false
  | Ast.Null_lit, t | t, Ast.Null_lit ->
    (match lin t with
     | Some (Some term, 0, false) -> lit b polarity (A_eq (term, R_null))
     | _ -> lit b polarity (A_truth whole))
  | _ ->
    (match (lin x, lin y) with
     | Some ((_, _, ia) as la), Some ((_, _, ib) as lb) when ia || ib ->
       int_cmp b polarity Ast.Eq la lb
     | Some (Some ta, 0, false), Some (Some tb, 0, false) ->
       if Ast.equal ta tb then if polarity then S_true else S_false
       else if compare ta tb <= 0 then lit b polarity (A_eq (ta, R_term tb))
       else lit b polarity (A_eq (tb, R_term ta))
     | Some la, Some lb -> int_cmp b polarity Ast.Eq la lb
     | _ -> lit b polarity (A_truth whole))

let rec build b e =
  match e with
  | Ast.Binop (Ast.And, x, y) -> S_and (build b x, build b y)
  | Ast.Binop (Ast.Or, x, y) -> S_or (build b x, build b y)
  | _ -> classify b true e

(* ------------------------------------------------------------------ *)
(* Three-valued evaluation of the skeleton under a partial
   assignment. *)

let rec eval_skel assign = function
  | S_true -> Some true
  | S_false -> Some false
  | S_lit (pol, i) ->
    (match assign.(i) with Some v -> Some (v = pol) | None -> None)
  | S_and (a, b) ->
    (match (eval_skel assign a, eval_skel assign b) with
     | Some false, _ | _, Some false -> Some false
     | Some true, Some true -> Some true
     | _ -> None)
  | S_or (a, b) ->
    (match (eval_skel assign a, eval_skel assign b) with
     | Some true, _ | _, Some true -> Some true
     | Some false, Some false -> Some false
     | _ -> None)

let rec skel_atoms acc = function
  | S_true | S_false -> acc
  | S_lit (_, i) -> if List.mem i acc then acc else i :: acc
  | S_and (a, b) | S_or (a, b) -> skel_atoms (skel_atoms acc a) b

(* ------------------------------------------------------------------ *)
(* Theory: difference bounds over the assigned integer atoms
   (Bellman-Ford negative-cycle detection, with the [size() >= 0] and
   membership-count axioms) plus union-find equality over enum
   atoms. *)

type theory_result =
  | Refuted
  | Model of (string * J.t) list * (string * J.t) list  (* main, pre *)
  | Gaveup

(* Union-find over a flat element list. *)
type uf_elem = E_term of Ast.expr | E_str of string | E_null

let theory_and_model atoms assign =
  (* Partition the assigned atoms. *)
  let assigned = ref [] in
  Array.iteri
    (fun i a ->
      match a with
      | Some v -> assigned := (atoms.(i), v) :: !assigned
      | None -> ())
    assign;
  let assigned = !assigned in
  let cmps =
    List.filter_map
      (function A_cmp (a, b, op, k), v -> Some (a, b, op, k, v) | _ -> None)
      assigned
  and eqs =
    List.filter_map
      (function A_eq (t, r), v -> Some (t, r, v) | _ -> None)
      assigned
  and mems =
    List.filter_map
      (function A_mem (c, s), v -> Some (c, s, v) | _ -> None)
      assigned
  and truths =
    List.filter_map
      (function A_truth t, v -> Some (t, v) | _ -> None)
      assigned
  in
  (* --- equality / enum theory --- *)
  let uf_elems = ref [] in
  let uf_add e = if not (List.mem e !uf_elems) then uf_elems := e :: !uf_elems in
  List.iter
    (fun (t, r, _) ->
      uf_add (E_term t);
      uf_add
        (match r with
         | R_str s -> E_str s
         | R_null -> E_null
         | R_term t' -> E_term t'))
    eqs;
  let elems = Array.of_list !uf_elems in
  let n_elems = Array.length elems in
  let parent = Array.init n_elems (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  let index_of e =
    let rec go i = if elems.(i) = e then i else go (i + 1) in
    go 0
  in
  List.iter
    (fun (t, r, v) ->
      if v then
        union (index_of (E_term t))
          (index_of
             (match r with
              | R_str s -> E_str s
              | R_null -> E_null
              | R_term t' -> E_term t')))
    eqs;
  let eq_conflict =
    (* two distinct constants in one class, or an assigned disequality
       within one class *)
    let const_clash =
      let seen = Hashtbl.create 8 in
      Array.to_list (Array.mapi (fun i e -> (i, e)) elems)
      |> List.exists (fun (i, e) ->
             match e with
             | E_str _ | E_null ->
               let r = find i in
               (match Hashtbl.find_opt seen r with
                | Some e' when e' <> e -> true
                | Some _ -> false
                | None ->
                  Hashtbl.add seen r e;
                  false)
             | E_term _ -> false)
    in
    const_clash
    || List.exists
         (fun (t, r, v) ->
           (not v)
           && find (index_of (E_term t))
              = find
                  (index_of
                     (match r with
                      | R_str s -> E_str s
                      | R_null -> E_null
                      | R_term t' -> E_term t')))
         eqs
  in
  if eq_conflict then Refuted
  else begin
    (* --- difference-bound theory --- *)
    (* Nodes mentioned in comparison atoms, plus the origin. *)
    let nodes = ref [ Zero ] in
    let node_add n = if not (List.mem n !nodes) then nodes := n :: !nodes in
    List.iter
      (fun (a, b, _, _, _) ->
        node_add a;
        node_add b)
      cmps;
    (* membership-count axiom needs the size node of each collection
       that already participates in integer reasoning *)
    let nodes_arr = Array.of_list !nodes in
    let n_nodes = Array.length nodes_arr in
    let node_index n =
      let rec go i = if nodes_arr.(i) = n then i else go (i + 1) in
      go 0
    in
    let zero = node_index Zero in
    (* Constraint [a - b <= k] becomes edge b -> a of weight k. *)
    let base_edges = ref [] in
    let constr a b k = base_edges := (node_index b, node_index a, k) :: !base_edges in
    (* axioms: sizes and counts are non-negative *)
    Array.iter
      (function
        | T (Ast.Coll (_, Ast.Size) | Ast.Count _) as n -> constr Zero n 0
        | _ -> ())
      nodes_arr;
    (* membership-count axiom: a collection observed to include m
       distinct constants has size at least m *)
    let mem_colls =
      List.sort_uniq compare (List.filter_map
        (fun (c, _, v) -> if v then Some c else None) mems)
    in
    List.iter
      (fun c ->
        let m =
          List.length
            (List.sort_uniq compare
               (List.filter_map
                  (fun (c', s, v) -> if v && c' = c then Some s else None)
                  mems))
        in
        let size_node = T (size_of c) in
        if List.mem size_node !nodes then constr Zero size_node (-m))
      mem_colls;
    (* assigned comparison atoms; false equalities are non-convex and
       enumerated by sign choice *)
    let false_eqs = ref [] in
    List.iter
      (fun (a, b, op, k, v) ->
        match (op, v) with
        | CLe, true -> constr a b k
        | CLe, false -> constr b a (-k - 1)
        | CEq, true ->
          constr a b k;
          constr b a (-k)
        | CEq, false -> false_eqs := (a, b, k) :: !false_eqs)
      cmps;
    let false_eqs = !false_eqs in
    if List.length false_eqs > neq_budget then Gaveup
    else begin
      (* Bellman-Ford from a virtual source (all distances 0). *)
      let solve edges =
        let dist = Array.make n_nodes 0 in
        let changed = ref true in
        let rounds = ref 0 in
        while !changed && !rounds <= n_nodes do
          changed := false;
          incr rounds;
          List.iter
            (fun (u, v, w) ->
              if dist.(u) + w < dist.(v) then begin
                dist.(v) <- dist.(u) + w;
                changed := true
              end)
            edges
        done;
        if !changed then None else Some dist
      in
      let rec enumerate pending extra =
        match pending with
        | [] -> solve (extra @ !base_edges)
        | (a, b, k) :: rest ->
          (* a - b <> k:  a - b <= k-1  or  b - a <= -k-1 *)
          (match
             enumerate rest ((node_index b, node_index a, k - 1) :: extra)
           with
           | Some dist -> Some dist
           | None ->
             enumerate rest ((node_index a, node_index b, -k - 1) :: extra))
      in
      match enumerate false_eqs [] with
      | None -> Refuted
      | Some dist ->
        (* ---- model construction ---- *)
        let int_value n = dist.(node_index n) - dist.(zero) in
        (* constants already mentioned anywhere; fresh strings avoid
           them *)
        let const_pool = ref [] in
        let pool_add s =
          if not (List.mem s !const_pool) then const_pool := s :: !const_pool
        in
        List.iter (fun (_, r, _) ->
            match r with R_str s -> pool_add s | _ -> ()) eqs;
        List.iter (fun (_, s, _) -> pool_add s) mems;
        let fresh_counter = ref 0 in
        let fresh prefix =
          let rec go () =
            let s = Printf.sprintf "%s%d" prefix !fresh_counter in
            incr fresh_counter;
            if List.mem s !const_pool then go () else s
          in
          go ()
        in
        (* value of each equality class *)
        let class_val = Hashtbl.create 8 in
        Array.iteri
          (fun i e ->
            let r = find i in
            match e with
            | E_str s -> Hashtbl.replace class_val r (J.String s)
            | E_null -> Hashtbl.replace class_val r J.Null
            | E_term _ ->
              if not (Hashtbl.mem class_val r) then
                Hashtbl.add class_val r (J.String (fresh "w")))
          elems;
        (* path trees *)
        let module Tree = struct
          type tnode = {
            mutable tval : J.t option;
            mutable tfields : (string * tnode) list;
            mutable tsize : int option;
            mutable tincl : string list;
            mutable texcl : string list;
          }

          let mk () =
            { tval = None; tfields = []; tsize = None; tincl = []; texcl = [] }
        end in
        let open Tree in
        let roots : (string, tnode) Hashtbl.t = Hashtbl.create 8 in
        let root name =
          match Hashtbl.find_opt roots name with
          | Some n -> n
          | None ->
            let n = mk () in
            Hashtbl.add roots name n;
            n
        in
        let rec descend node = function
          | [] -> node
          | f :: rest ->
            let child =
              match List.assoc_opt f node.tfields with
              | Some c -> c
              | None ->
                let c = mk () in
                node.tfields <- node.tfields @ [ (f, c) ];
                c
            in
            descend child rest
        in
        let path_of e =
          let rec go acc = function
            | Ast.Var v -> Some (v, acc)
            | Ast.Nav (inner, p) -> go (p :: acc) inner
            | _ -> None
          in
          go [] e
        in
        let at e =
          match path_of e with
          | Some (r, fields) -> Some (descend (root r) fields)
          | None -> None
        in
        (* integer witnesses *)
        Array.iter
          (fun n ->
            match n with
            | Zero -> ()
            | T (Ast.Coll (c, Ast.Size)) ->
              (match at c with
               | Some node -> node.tsize <- Some (int_value n)
               | None -> ())
            | T e ->
              (match at e with
               | Some node -> node.tval <- Some (J.Int (int_value n))
               | None -> ()))
          nodes_arr;
        (* enum witnesses: both sides of every assigned equality get
           their class value *)
        let set_class_val t =
          match at t with
          | Some node ->
            (match Hashtbl.find_opt class_val (find (index_of (E_term t))) with
             | Some v -> node.tval <- Some v
             | None -> ())
          | None -> ()
        in
        List.iter
          (fun (t, r, _) ->
            set_class_val t;
            match r with R_term t' -> set_class_val t' | _ -> ())
          eqs;
        (* membership witnesses *)
        List.iter
          (fun (c, s, v) ->
            match at c with
            | Some node ->
              if v then node.tincl <- List.sort_uniq compare (s :: node.tincl)
              else node.texcl <- s :: node.texcl
            | None -> ())
          mems;
        (* opaque boolean atoms that are plain navigation paths can
           still be realized as boolean leaves *)
        List.iter
          (fun (t, v) ->
            match at t with
            | Some node -> node.tval <- Some (J.Bool v)
            | None -> ())
          truths;
        (* realize the trees *)
        let rec realize node =
          if node.tfields <> [] then
            J.Obj (List.map (fun (f, c) -> (f, realize c)) node.tfields)
          else if node.tsize <> None || node.tincl <> [] || node.texcl <> []
          then begin
            let members = node.tincl in
            let target =
              match node.tsize with
              | Some n -> max n (List.length members)
              | None -> List.length members
            in
            let rec pad acc k =
              if k <= 0 then List.rev acc
              else
                let rec pick () =
                  let s = fresh "e" in
                  if List.mem s node.texcl || List.mem s members then pick ()
                  else s
                in
                pad (pick () :: acc) (k - 1)
            in
            J.List
              (List.map (fun s -> J.String s) members
              @ List.map (fun s -> J.String s)
                  (pad [] (target - List.length members)))
          end
          else match node.tval with Some v -> v | None -> J.Obj []
        in
        let main = ref [] and pre = ref [] in
        Hashtbl.iter
          (fun name node ->
            let value = realize node in
            let plen = String.length pre_prefix in
            if
              String.length name > plen
              && String.sub name 0 plen = pre_prefix
            then
              pre :=
                (String.sub name plen (String.length name - plen), value)
                :: !pre
            else main := (name, value) :: !main)
          roots;
        let main = List.sort compare !main and pre = List.sort compare !pre in
        Model (main, pre)
    end
  end

(* ------------------------------------------------------------------ *)
(* The search. *)

let env_of ~original (main, pre) =
  let env = Eval.env_of_bindings main in
  if pre <> [] || Ast.has_pre original then
    Eval.with_pre ~pre:(Eval.env_of_bindings pre) env
  else env

let satisfiable expr =
  let original = expr in
  let normalized = Simplify.nnf (Simplify.simplify (push_pre expr)) in
  let b = { atoms = []; count = 0 } in
  let skel = build b normalized in
  let atoms = Array.of_list (List.rev b.atoms) in
  let n = Array.length atoms in
  if n > atom_budget then Unknown
  else begin
    let order = List.rev (skel_atoms [] skel) in
    let assign = Array.make (max n 1) None in
    let budget = ref node_budget in
    let leaky = ref false in
    let found = ref None in
    let verify env = Eval.check env original = Value.True in
    let handle_leaf () =
      match theory_and_model atoms assign with
      | Refuted -> ()
      | Gaveup -> leaky := true
      | Model (main, pre) ->
        let env = env_of ~original (main, pre) in
        if verify env then found := Some env else leaky := true
    in
    let rec go remaining =
      if !found <> None then ()
      else begin
        decr budget;
        if !budget <= 0 then leaky := true
        else
          match eval_skel assign skel with
          | Some false -> ()
          | Some true -> handle_leaf ()
          | None ->
            (match remaining with
             | [] -> assert false
             | i :: rest ->
               (match assign.(i) with
                | Some _ -> go rest
                | None ->
                  assign.(i) <- Some true;
                  go rest;
                  assign.(i) <- Some false;
                  go rest;
                  assign.(i) <- None))
      end
    in
    go order;
    match !found with
    | Some env -> Sat env
    | None -> if !leaky then Unknown else Unsat
  end

let never_false expr = satisfiable (Ast.Unop (Ast.Not, expr))

let witness_summary env =
  let bindings = Eval.bindings env in
  let s =
    String.concat "; "
      (List.map
         (fun (name, json) ->
           Printf.sprintf "%s=%s" name (Cm_json.Printer.to_string json))
         bindings)
  in
  if String.length s > 240 then String.sub s 0 237 ^ "..." else s
