(** The seeded defective-model corpus.

    Ten deliberate modelling mistakes, each a minimal mutation of the
    Cinder models, each annotated with exactly the [AN00x] rule codes
    the analyzer is expected to raise.  The corpus is both the unit-test
    bed for the rules and the `cmonitor analyze --selftest` payload: a
    rule that stops firing (or starts over-firing) on its seeded defect
    is a regression. *)

type entry = {
  name : string;
  description : string;
  input : Rules.input;
  expected : string list;  (** sorted AN rule codes *)
}

val corpus : entry list
(** The ten entries, in a stable order. *)

val an_codes : Cm_lint.Lint.finding list -> string list
(** The distinct [AN00x] codes among the findings, sorted — VAL
    well-formedness codes are ignored so the corpus pins down analysis
    behavior only. *)

val check : entry -> (unit, string) result
(** Run {!Rules.analyze} and compare {!an_codes} against [expected];
    [Error] carries a human-readable mismatch description. *)

val check_all : unit -> (string * (unit, string) result) list
