(** The seeded defective-model corpus.

    Sixteen deliberate modelling mistakes — one per analysis rule, a few
    raising rule pairs — each a minimal mutation of the Cinder models
    (the AN012 entry uses the cross-service model, whose sibling-URI
    writes are the stale-cache shape), each annotated with exactly the
    [AN0xx] rule codes the analyzer is expected to raise.  The corpus is
    both the unit-test bed for the rules and the
    `cmonitor analyze --selftest` payload: a rule that stops firing (or
    starts over-firing) on its seeded defect is a regression. *)

type entry = {
  name : string;
  description : string;
  input : Rules.input;
  visibility : Monitorability.visibility option;
      (** observer visibility the defect manifests under; [None] means
          the shipped default (AN012 needs [Path_prefix] caching) *)
  expected : string list;  (** sorted AN rule codes *)
}

val corpus : entry list
(** The sixteen entries, in a stable order. *)

val an_codes : Cm_lint.Lint.finding list -> string list
(** The distinct [AN00x] codes among the findings, sorted — VAL
    well-formedness codes are ignored so the corpus pins down analysis
    behavior only. *)

val check : entry -> (unit, string) result
(** Run {!Rules.analyze} and compare {!an_codes} against [expected];
    [Error] carries a human-readable mismatch description. *)

val check_all : unit -> (string * (unit, string) result) list
