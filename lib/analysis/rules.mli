(** The design-time analysis rules.

    Satisfiability-based vacuity/dead-code analysis over the behavior
    model, an RBAC coverage audit over the security table, and a
    footprint observability check over the generated contracts.  All
    findings are reported through {!Cm_lint.Lint} under stable [AN00x]
    codes:

    - [AN001] unsatisfiable state invariant (Error)
    - [AN002] dead transition: source invariant and guard jointly
      unsatisfiable (Error) — also the antecedent-unsatisfiable form of
      a vacuous postcondition, reported once at its root cause
    - [AN003] vacuous postcondition: the consequent
      [inv(target) and effect] can never evaluate to false (Error)
    - [AN004] guard-overlap nondeterminism: two same-trigger transitions
      from one state with a satisfiable guard conjunction but different
      targets or effects (Error, with witness)
    - [AN005] trigger with no security-table row: the generated
      contract is fail-closed and rejects every request (Error)
    - [AN006] security row references a role with no usergroup
      assignment (Error)
    - [AN007] dangling security row: unknown resource, or a
      (resource, method) pair no transition exercises (Warning)
    - [AN008] role-unreachable transition: functionally satisfiable but
      unsatisfiable once the authorization guard is conjoined (Error)
    - [AN009] footprint blind spot: a generated contract reads state the
      observer never binds (Error) or a member no resource-model path
      produces (Warning)
    - [AN010] unsnapshotable pre(): an iterator binder captured under
      pre() — non-monitorable by any observer (Error, {!Monitorability})
    - [AN011] pre() in a guard or state invariant (Error,
      {!Monitorability})
    - [AN012] undischarged fresh-read obligation under path-prefix cache
      invalidation (Warning, {!Monitorability}; only with a
      [Path_prefix] visibility)
    - [AN013] mutating safe method (Error, {!Interference})
    - [AN014] identity read in a functional expression (Warning,
      {!Interference})
    - [AN015] cross-tenant interference: subscription to a
      non-tenant-keyed model event (Error, {!Interference})

    Rules that depend on the solver treat {!Solver.Unknown}
    conservatively: no finding. *)

type input = Input.t = {
  resources : Cm_uml.Resource_model.t;
  behavior : Cm_uml.Behavior_model.t;
  security : Cm_contracts.Generate.security option;
}

val catalogue : Cm_lint.Lint.rule list
(** Metadata for AN001..AN015 (see {!Cm_uml.Validate.catalogue} for the
    VAL side). *)

val full_catalogue : Cm_lint.Lint.rule list
(** [catalogue] plus the well-formedness VAL rules — everything
    `cmonitor analyze` can emit. *)

val analyze :
  ?include_validate:bool ->
  ?waivers:Cm_lint.Lint.waiver list ->
  ?visibility:Monitorability.visibility ->
  input ->
  Cm_lint.Lint.finding list
(** Run every rule.  [include_validate] (default [true]) prepends the
    {!Cm_uml.Validate} well-formedness findings so one report covers
    both layers; waivers demote accepted findings to Info.
    [visibility] (default {!Monitorability.default_visibility}, the
    shipped observer) parameterises the AN010–AN012 monitorability
    pass. *)
