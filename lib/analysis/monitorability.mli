(** Monitorability classification (AN010–AN012).

    A generated contract is only as checkable as the observer's view of
    the system.  This module labels every contract against an explicit
    {e visibility} — can the observer snapshot the pre-state, and how
    does its response cache learn about staleness — instead of assuming
    the idealised observer of the paper.

    - {b AN010} (error): [pre(e)] where [e] captures an iterator binder.
      The binder ranges over a post-state collection, so there is no
      pre-call value to snapshot; the contract is non-monitorable no
      matter the observer.
    - {b AN011} (error): [pre()] inside a guard or a state invariant —
      pre-state contexts with no earlier state to refer to.
    - {b AN012} (warning): a contract reads state that some other
      trigger mutates from a non-overlapping URI; under plain
      path-prefix cache invalidation the cached copy goes stale, so the
      fresh-read obligation is undischarged.  Effect-driven invalidation
      ({!Write_effects}, the shipped monitor) discharges it. *)

(** How the observer's cross-request cache learns about staleness. *)
type cache =
  | No_cache  (** every read is fresh *)
  | Path_prefix
      (** mutations invalidate cached documents whose URI prefix-overlaps
          the mutated URI — and nothing else *)
  | Write_effects
      (** mutations invalidate every document the trigger's statically
          computed write effect can reach *)

type visibility = {
  pre_state : bool;  (** can the observer snapshot state before the call? *)
  cache : cache;
}

val default_visibility : visibility
(** The shipped monitor: [{ pre_state = true; cache = Write_effects }]. *)

val cache_to_string : cache -> string

type label =
  | Fully
  | Partially  (** some verdicts may be computed over stale or unbound state *)
  | Non_monitorable  (** no observer can evaluate the contract *)

val label_to_string : label -> string

type report = {
  rep_trigger : Cm_uml.Behavior_model.trigger;
  rep_label : label;
  rep_reasons : string list;  (** sorted, deduplicated; empty for {!Fully} *)
}

val captured_pre_binders : Cm_ocl.Ast.expr -> string list
(** Iterator binders mentioned under some [pre(...)] inside their own
    iterator's body — the AN010 witness.  Sorted, deduplicated. *)

val templates_overlap : Cm_http.Uri_template.t -> Cm_http.Uri_template.t -> bool
(** Segment-wise bidirectional prefix overlap with parameters as
    wildcards — the static image of the cache's
    [invalidate_overlapping]. *)

val state_templates :
  Input.t -> Cm_uml.Paths.entry list -> string -> Cm_ocl.Footprint.fields ->
  Cm_http.Uri_template.t list
(** Where the observer's copy of [root.{fields}] lives: the root's own
    derived URIs for attributes, the association target's URIs for role
    fields (reading [project.volumes] means reading the Volumes
    collection document).  The monitor expands these templates into its
    effect-driven cache-invalidation scopes. *)

val reports :
  ?visibility:visibility -> Input.t -> (report list, string) result
(** One report per generated contract, in trigger order.  [Error] when
    contracts cannot be generated or the URI table cannot be derived. *)

val findings : ?visibility:visibility -> Input.t -> Cm_lint.Lint.finding list
(** AN010/AN011/AN012 findings.  Inputs whose contracts cannot be
    generated yield only the model-level AN011 findings — the
    generation problems are reported elsewhere. *)

val report_to_json : report -> Cm_json.Json.t

val to_json :
  ?visibility:visibility -> report list -> Cm_json.Json.t
(** Stable dump: the visibility the reports were computed under plus one
    entry per contract. *)
