(* The unit of analysis: one modelled service — its resource tree, its
   protocol state machine, and (optionally) its security table.  Hoisted
   out of {!Rules} so the effect/monitorability/interference layers can
   share it without a module cycle. *)

type t = {
  resources : Cm_uml.Resource_model.t;
  behavior : Cm_uml.Behavior_model.t;
  security : Cm_contracts.Generate.security option;
}
