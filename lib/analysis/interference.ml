module Lint = Cm_lint.Lint
module Ast = Cm_ocl.Ast
module Footprint = Cm_ocl.Footprint
module BM = Cm_uml.Behavior_model
module Meth = Cm_http.Meth
module J = Cm_json.Json

type subscription = {
  sub_trigger : BM.trigger;
  sub_events : Effects.event list;
  sub_shard_closed : bool;
}

(* ---- subscription maps ---- *)

(* A contract must re-evaluate on event [T] iff [T]'s write effect meets
   the contract's read footprint (field-granular), or [T] is the
   contract's own trigger.  The identity pseudo-event writes [user], so
   every auth-guarded contract subscribes to it through plain
   interference — no special case.  Everything else is provably inert:
   the dynamic oracle in {!Crosscheck.run_subscriptions} perturbs
   exactly the non-subscribed events and asserts verdict stability. *)
let contract_reads (c : Cm_contracts.Contract.t) =
  Footprint.of_exprs
    ([ c.pre; c.functional_pre; c.post ]
    @ Option.to_list c.auth_guard
    @ List.concat_map
        (fun (b : Cm_contracts.Contract.branch) ->
          [ b.branch_pre; b.branch_post ])
        c.branches)

let subscription_of events (c : Cm_contracts.Contract.t) =
  let reads = contract_reads c in
  let subscribed =
    List.filter
      (fun (ev : Effects.event) ->
        BM.trigger_equal ev.ev_trigger c.trigger
        || Effects.footprints_interfere reads ev.ev_writes)
      events
  in
  { sub_trigger = c.trigger;
    sub_events = subscribed;
    sub_shard_closed =
      List.for_all (fun (ev : Effects.event) -> ev.ev_tenant_keyed) subscribed
  }

let subscriptions (input : Input.t) =
  match
    (Cm_contracts.Generate.all ?security:input.security input.behavior,
     Effects.events input)
  with
  | Error e, _ | _, Error e -> Error e
  | Ok contracts, Ok events ->
    Ok (List.map (subscription_of events) contracts)

let subscription_for subs trigger =
  List.find_opt (fun s -> BM.trigger_equal s.sub_trigger trigger) subs

let cross_shard_events s =
  List.filter (fun (ev : Effects.event) -> not ev.ev_tenant_keyed) s.sub_events

(* ---- conversion for the runtime ---- *)

let to_runtime s : Cm_contracts.Runtime.subscription =
  { Cm_contracts.Runtime.sub_events =
      List.map
        (fun (ev : Effects.event) ->
          ( ev.Effects.ev_trigger.BM.meth,
            String.lowercase_ascii ev.Effects.ev_trigger.BM.resource,
            ev.Effects.ev_tenant_keyed ))
        s.sub_events;
    sub_identity =
      List.exists (fun (ev : Effects.event) -> ev.ev_identity) s.sub_events;
    sub_shard_closed = s.sub_shard_closed
  }

(* ---- AN013/AN014/AN015 ---- *)

let findings (input : Input.t) =
  let an013 =
    (* Safe methods must be observationally pure: a GET whose effect
       writes state breaks every cache and every commutation argument
       built on Meth.is_safe. *)
    match Effects.events input with
    | Error _ -> []
    | Ok events ->
      List.filter_map
        (fun (ev : Effects.event) ->
          if
            (not ev.ev_identity)
            && Meth.is_safe ev.ev_trigger.BM.meth
            && ev.ev_writes <> Footprint.empty
          then
            Some
              (Lint.finding ~rule:"AN013" ~severity:Lint.Error
                 ~where:(Fmt.str "trigger %a" BM.pp_trigger ev.ev_trigger)
                 (Fmt.str
                    "safe method has a non-frame write effect %a: the \
                     observer assumes safe methods mutate nothing"
                    Footprint.pp ev.ev_writes))
          else None)
        events
  in
  let an014 =
    (* The identity subject inside functional expressions (not the
       generated auth guard) couples the contract to the cross-shard
       token stream even where the modeller only meant behaviour. *)
    let check where expr =
      if List.mem "user" (Ast.free_vars expr) then
        Some
          (Lint.finding ~rule:"AN014" ~severity:Lint.Warning ~where
             "functional expression reads the identity subject [user]: \
              the contract subscribes to the cross-shard token stream \
              beyond its authorization guard")
      else None
    in
    List.filter_map
      (fun (s : BM.state) -> check s.state_name s.invariant)
      input.behavior.BM.states
    @ List.concat
        (List.mapi
           (fun i (tr : BM.transition) ->
             let where part =
               Fmt.str "%s of transition #%d %s->%s on %a" part i tr.source
                 tr.target BM.pp_trigger tr.trigger
             in
             List.filter_map
               (fun x -> x)
               [ Option.bind tr.guard (check (where "guard"));
                 Option.bind tr.effect (check (where "effect"))
               ])
           input.behavior.BM.transitions)
  in
  let an015 =
    (* Cross-tenant interference: a contract subscribed to a model event
       whose URI carries no tenant key can see verdict changes from
       another tenant's traffic — sharding by project would silently
       drop those events. *)
    match subscriptions input with
    | Error _ -> []
    | Ok subs ->
      List.concat_map
        (fun s ->
          List.filter_map
            (fun (ev : Effects.event) ->
              if ev.ev_identity || ev.ev_tenant_keyed then None
              else
                Some
                  (Lint.finding ~rule:"AN015" ~severity:Lint.Error
                     ~where:
                       (Fmt.str "contract %a" BM.pp_trigger s.sub_trigger)
                     (Fmt.str
                        "subscribes to %a whose URI carries no tenant \
                         key: another tenant's traffic can change this \
                         contract's verdict, so per-tenant sharding is \
                         unsound"
                        BM.pp_trigger ev.ev_trigger)))
            s.sub_events)
        subs
  in
  an013 @ an014 @ an015

(* ---- stable JSON (the golden subscription map) ---- *)

let subscription_to_json s =
  J.Obj
    [ ("trigger", J.String (Fmt.str "%a" BM.pp_trigger s.sub_trigger));
      ( "subscribes",
        J.List
          (List.map
             (fun (ev : Effects.event) ->
               J.Obj
                 [ ( "event",
                     J.String (Fmt.str "%a" BM.pp_trigger ev.ev_trigger) );
                   ("tenant_keyed", J.Bool ev.ev_tenant_keyed);
                   ("identity", J.Bool ev.ev_identity)
                 ])
             s.sub_events) );
      ("shard_closed", J.Bool s.sub_shard_closed);
      ( "cross_shard_events",
        J.List
          (List.map
             (fun (ev : Effects.event) ->
               J.String (Fmt.str "%a" BM.pp_trigger ev.ev_trigger))
             (cross_shard_events s)) )
    ]

let to_json subs = J.List (List.map subscription_to_json subs)
