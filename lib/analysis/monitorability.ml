module Lint = Cm_lint.Lint
module Ast = Cm_ocl.Ast
module Footprint = Cm_ocl.Footprint
module BM = Cm_uml.Behavior_model
module RM = Cm_uml.Resource_model
module Paths = Cm_uml.Paths
module Ut = Cm_http.Uri_template
module J = Cm_json.Json

(* ---- observer visibility ---- *)

type cache =
  | No_cache
  | Path_prefix
  | Write_effects

type visibility = {
  pre_state : bool;
  cache : cache;
}

let default_visibility = { pre_state = true; cache = Write_effects }

let cache_to_string = function
  | No_cache -> "no-cache"
  | Path_prefix -> "path-prefix"
  | Write_effects -> "write-effects"

(* ---- labels ---- *)

type label =
  | Fully
  | Partially
  | Non_monitorable

let label_to_string = function
  | Fully -> "fully"
  | Partially -> "partially"
  | Non_monitorable -> "non-monitorable"

type report = {
  rep_trigger : BM.trigger;
  rep_label : label;
  rep_reasons : string list;
}

(* ---- AN010: pre() capturing an iterator binder ---- *)

(* [pre(e)] asks the monitor to snapshot [e] before forwarding the call.
   When [e] mentions an iterator binder, there is no single value to
   snapshot: the binder ranges over a collection whose membership is
   itself post-state.  Returns the captured binder names, sorted. *)
let captured_pre_binders expr =
  let rec go bound acc e =
    match e with
    | Ast.At_pre inner ->
      let caught =
        List.filter (fun v -> List.mem v bound) (Ast.free_vars inner)
      in
      go bound (caught @ acc) inner
    | Ast.Iter (src, _, binder, body) ->
      go bound (go (binder :: bound) acc body) src
    | Ast.Nav (e, _) | Ast.Coll (e, _) | Ast.Unop (_, e) -> go bound acc e
    | Ast.Member (a, _, b) | Ast.Count (a, b) | Ast.Binop (_, a, b) ->
      go bound (go bound acc b) a
    | Ast.Bool_lit _ | Ast.Int_lit _ | Ast.String_lit _ | Ast.Null_lit
    | Ast.Var _ ->
      acc
  in
  List.sort_uniq String.compare (go [] [] expr)

(* ---- AN011: pre() in a pre-state context ---- *)

(* Guards and state invariants are evaluated against the state the call
   arrives in; [pre(...)] inside them is at best the identity and at
   worst a sign the modeller meant a two-state constraint where only one
   state exists.  The generated precondition would silently drop the
   operator's meaning, so it is flagged at the model. *)
let pre_in_pre_context (input : Input.t) =
  let findings = ref [] in
  List.iter
    (fun (s : BM.state) ->
      if Ast.has_pre s.invariant then
        findings :=
          Lint.finding ~rule:"AN011" ~severity:Lint.Error ~where:s.state_name
            "state invariant uses pre(): invariants describe one state, \
             there is no earlier state to refer to"
          :: !findings)
    input.behavior.BM.states;
  List.iteri
    (fun i (tr : BM.transition) ->
      match tr.guard with
      | Some g when Ast.has_pre g ->
        findings :=
          Lint.finding ~rule:"AN011" ~severity:Lint.Error
            ~where:
              (Fmt.str "transition #%d %s->%s on %a" i tr.source tr.target
                 BM.pp_trigger tr.trigger)
            "guard uses pre(): guards are evaluated on the pre-state \
             itself, the operator is meaningless here and the generated \
             precondition would drop it"
          :: !findings
      | _ -> ())
    input.behavior.BM.transitions;
  List.rev !findings

(* ---- AN012: fresh-read obligations under degraded cache visibility ---- *)

(* Segment-wise template overlap with parameters as wildcards: one
   template's segments are a (bidirectional) prefix of the other's.
   This is the static image of {!Obs_cache.invalidate_overlapping}. *)
let templates_overlap a b =
  let rec go xs ys =
    match (xs, ys) with
    | [], _ | _, [] -> true
    | x :: xs', y :: ys' ->
      (match (x, y) with
       | Ut.Literal la, Ut.Literal lb -> String.equal la lb && go xs' ys'
       | _ -> go xs' ys')
  in
  go (Ut.segments a) (Ut.segments b)

let entries_for entries resource =
  let wanted = String.lowercase_ascii resource in
  List.filter
    (fun (e : Paths.entry) ->
      String.equal (String.lowercase_ascii e.resource) wanted)
    entries

(* Where does the observer's cached copy of [root.field] live?  An
   attribute lives in the root's own document; an association role binds
   from the target resource's document (reading [project.volumes] means
   reading the Volumes collection at /v3/{p}/volumes). *)
let state_templates (input : Input.t) entries root fields =
  let own = List.map (fun (e : Paths.entry) -> e.template) (entries_for entries root) in
  let via_role f =
    RM.outgoing root input.resources
    |> List.find_opt (fun (a : RM.association) -> String.equal a.role f)
    |> function
    | Some a ->
      (match entries_for entries a.RM.target with
       | [] -> own
       | es -> List.map (fun (e : Paths.entry) -> e.template) es)
    | None -> own
  in
  match fields with
  | Footprint.All ->
    own
    @ List.concat_map
        (fun (a : RM.association) ->
          List.map
            (fun (e : Paths.entry) -> e.template)
            (entries_for entries a.RM.target))
        (RM.outgoing root input.resources)
  | Footprint.Fields fs -> List.concat_map via_role fs

(* A write event discharges the fresh-read obligation for a cached read
   path iff its own URI overlaps that path — then prefix invalidation
   drops the stale document.  A write whose URI is a sibling (the
   cross-service attach writing project.volumes from under /servers)
   leaves the cache stale. *)
let stale_reads (input : Input.t) entries (events : Effects.event list)
    (c : Cm_contracts.Contract.t) =
  let reads = Footprint.of_exprs [ c.pre; c.post ] in
  let stale = ref [] in
  List.iter
    (fun (root, fields) ->
      let lroot = String.lowercase_ascii root in
      match entries_for entries lroot with
      | [] -> ()  (* request body / identity: never path-cached *)
      | _ ->
        let read_paths = state_templates input entries lroot fields in
        List.iter
          (fun (ev : Effects.event) ->
            if
              (not ev.ev_identity)
              && (not (BM.trigger_equal ev.ev_trigger c.trigger))
              && Effects.footprints_interfere [ (root, fields) ] ev.ev_writes
            then
              let write_paths =
                List.map
                  (fun (e : Paths.entry) -> e.template)
                  (entries_for entries ev.ev_trigger.BM.resource)
              in
              let covered p =
                List.exists (fun w -> templates_overlap p w) write_paths
              in
              match List.find_opt (fun p -> not (covered p)) read_paths with
              | Some missed ->
                stale :=
                  Fmt.str
                    "%s cached at %a is mutated by %a at a non-overlapping \
                     URI"
                    root Ut.pp missed BM.pp_trigger ev.ev_trigger
                  :: !stale
              | None -> ())
          events)
    reads;
  List.sort_uniq String.compare !stale

(* ---- per-contract classification ---- *)

let observable_roots entries =
  (* [user] is bound from the validated token, [request] from the
     request body — both observable without a derived path. *)
  "user" :: "request"
  :: List.map
       (fun (e : Paths.entry) -> String.lowercase_ascii e.resource)
       entries

let classify visibility (input : Input.t) entries events
    (c : Cm_contracts.Contract.t) =
  let non = ref [] and partial = ref [] in
  (match captured_pre_binders c.post with
   | [] -> ()
   | binders ->
     non :=
       Fmt.str "pre() captures iterator binder%s %s: no pre-call snapshot \
                exists"
         (if List.length binders > 1 then "s" else "")
         (String.concat ", " binders)
       :: !non);
  if (not visibility.pre_state) && Ast.has_pre c.post then
    non :=
      "postcondition depends on pre(), but the observer cannot snapshot \
       the pre-state"
      :: !non;
  (match visibility.cache with
   | Path_prefix ->
     partial := stale_reads input entries events c @ !partial
   | No_cache | Write_effects -> ());
  let roots = observable_roots entries in
  List.iter
    (fun (root, _) ->
      if not (List.mem (String.lowercase_ascii root) roots) then
        partial :=
          Fmt.str "reads %S outside the observable API surface" root
          :: !partial)
    (Footprint.of_exprs [ c.pre; c.post ]);
  let label =
    if !non <> [] then Non_monitorable
    else if !partial <> [] then Partially
    else Fully
  in
  { rep_trigger = c.trigger;
    rep_label = label;
    rep_reasons = List.sort_uniq String.compare (!non @ !partial)
  }

let generate (input : Input.t) =
  Cm_contracts.Generate.all ?security:input.security input.behavior

let reports ?(visibility = default_visibility) (input : Input.t) =
  match (generate input, Paths.derive input.resources, Effects.events input)
  with
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
  | Ok contracts, Ok entries, Ok events ->
    Ok (List.map (classify visibility input entries events) contracts)

(* ---- findings ---- *)

let findings ?(visibility = default_visibility) (input : Input.t) =
  let an011 = pre_in_pre_context input in
  let contract_findings =
    match
      (generate input, Paths.derive input.resources, Effects.events input)
    with
    | Error _, _, _ | _, Error _, _ | _, _, Error _ ->
      []  (* generation/derivation problems are reported elsewhere *)
    | Ok contracts, Ok entries, Ok events ->
      List.concat_map
        (fun (c : Cm_contracts.Contract.t) ->
          let where = Fmt.str "contract %a" BM.pp_trigger c.trigger in
          let an010 =
            match captured_pre_binders c.post with
            | [] -> []
            | binders ->
              [ Lint.finding ~rule:"AN010" ~severity:Lint.Error ~where
                  (Printf.sprintf
                     "pre() captures iterator binder%s %s: the binder \
                      ranges over post-state, no pre-call snapshot exists \
                      and the contract cannot be monitored"
                     (if List.length binders > 1 then "s" else "")
                     (String.concat ", " binders))
              ]
          in
          let an012 =
            match visibility.cache with
            | No_cache | Write_effects -> []
            | Path_prefix ->
              List.map
                (fun reason ->
                  Lint.finding ~rule:"AN012" ~severity:Lint.Warning ~where
                    (Printf.sprintf
                       "fresh-read obligation undischarged under \
                        path-prefix cache invalidation: %s"
                       reason))
                (stale_reads input entries events c)
          in
          an010 @ an012)
        contracts
  in
  an011 @ contract_findings

(* ---- stable JSON ---- *)

let report_to_json r =
  J.Obj
    [ ("trigger", J.String (Fmt.str "%a" BM.pp_trigger r.rep_trigger));
      ("label", J.String (label_to_string r.rep_label));
      ("reasons", J.List (List.map (fun s -> J.String s) r.rep_reasons))
    ]

let to_json ?(visibility = default_visibility) reports =
  J.Obj
    [ ( "visibility",
        J.Obj
          [ ("pre_state", J.Bool visibility.pre_state);
            ("cache", J.String (cache_to_string visibility.cache))
          ] );
      ("contracts", J.List (List.map report_to_json reports))
    ]
