module Lint = Cm_lint.Lint
module Ast = Cm_ocl.Ast
module BM = Cm_uml.Behavior_model
module RM = Cm_uml.Resource_model
module ST = Cm_rbac.Security_table

let ocl = Cm_ocl.Ocl_parser.parse_exn

type entry = {
  name : string;
  description : string;
  input : Rules.input;
  visibility : Monitorability.visibility option;
      (** observer visibility the defect manifests under; [None] means
          the shipped default *)
  expected : string list;
}

let base = Cm_uml.Cinder_model.behavior
let base_resources = Cm_uml.Cinder_model.resources

let security ?(table = ST.cinder) () =
  Some { Cm_contracts.Generate.table; assignment = ST.cinder_assignment }

let input ?(resources = base_resources) ?table behavior =
  { Rules.resources; behavior; security = security ?table () }

let with_transitions f = { base with BM.transitions = f base.BM.transitions }

(* Replace the invariant of one state. *)
let with_invariant name inv =
  { base with
    BM.states =
      List.map
        (fun (s : BM.state) ->
          if String.equal s.state_name name then { s with BM.invariant = inv }
          else s)
        base.BM.states
  }

let s_no_volume = "project_with_no_volume"
let s_not_full = "project_with_volume_and_not_full_quota"
let s_full = "project_with_volume_and_full_quota"

let corpus =
  [ { name = "unsat_invariant";
      description =
        "the full-quota state demands >= 1 and = 0 volumes at once: the \
         state is uninhabitable";
      input =
        input
          (with_invariant s_full
             (ocl
                "project.volumes->size() >= 1 and project.volumes->size() = 0"));
      visibility = None;
      expected = [ "AN001" ]
    };
    { name = "dead_guard_vs_invariant";
      description =
        "a create transition out of the full state guarded by 'count < \
         quota' contradicts the full-state invariant count = quota";
      input =
        input
          (with_transitions (fun ts ->
               ts
               @ [ BM.transition ~source:s_full ~target:s_full
                     ~guard:(ocl "project.volumes->size() < quota_sets.volumes")
                     ~effect:
                       (ocl
                          "project.volumes->size() = \
                           pre(project.volumes->size()) + 1")
                     ~requirements:[ "1.3" ] Cm_http.Meth.POST "volume"
                 ]));
      visibility = None;
      expected = [ "AN002" ]
    };
    { name = "contradictory_guard";
      description =
        "an update transition guarded by status = 'in-use' and status <> \
         'in-use' can never fire";
      input =
        input
          (with_transitions (fun ts ->
               ts
               @ [ BM.transition ~source:s_not_full ~target:s_not_full
                     ~guard:
                       (ocl
                          "volume.status = 'in-use' and volume.status <> \
                           'in-use'")
                     ~effect:
                       (ocl
                          "project.volumes->size() = \
                           pre(project.volumes->size())")
                     ~requirements:[ "1.2" ] Cm_http.Meth.PUT "volume"
                 ]));
      visibility = None;
      expected = [ "AN002" ]
    };
    { name = "vacuous_post_tautology";
      description =
        "a transition into a state whose invariant is 'count >= 0' (with \
         no effect) can never be violated: collection sizes are always \
         non-negative";
      input =
        (let anything = "anything_goes" in
         input
           { base with
             BM.states =
               base.BM.states
               @ [ BM.state anything (ocl "project.volumes->size() >= 0") ];
             BM.transitions =
               base.BM.transitions
               @ [ BM.transition ~source:s_no_volume ~target:anything
                     ~requirements:[ "1.2" ] Cm_http.Meth.PUT "volume"
                 ]
           });
      visibility = None;
      expected = [ "AN003" ]
    };
    { name = "guard_overlap";
      description =
        "weakening the quota = 1 create guard to quota >= 1 makes the two \
         creation branches from the empty state overlap while targeting \
         different states";
      input =
        input
          (with_transitions
             (List.map (fun (tr : BM.transition) ->
                  match tr.guard with
                  | Some g
                    when Ast.equal g (ocl "quota_sets.volumes = 1")
                         && String.equal tr.source s_no_volume ->
                    { tr with BM.guard = Some (ocl "quota_sets.volumes >= 1") }
                  | _ -> tr)));
      visibility = None;
      expected = [ "AN004" ]
    };
    { name = "rbac_missing_row";
      description =
        "a PATCH(volume) transition has no security-table row: the \
         generated contract is fail-closed and rejects every PATCH";
      input =
        input
          (with_transitions (fun ts ->
               ts
               @ [ BM.transition ~source:s_not_full ~target:s_not_full
                     ~guard:(ocl "volume.id->size() = 1")
                     ~effect:
                       (ocl
                          "project.volumes->size() = \
                           pre(project.volumes->size())")
                     ~requirements:[ "1.2" ] Cm_http.Meth.PATCH "volume"
                 ]));
      visibility = None;
      expected = [ "AN005" ]
    };
    { name = "rbac_unknown_role";
      description =
        "the delete row grants 'superuser', a role no usergroup is \
         assigned: the grant is unusable";
      input =
        input
          ~table:
            (List.map
               (fun (e : ST.entry) ->
                 if e.meth = Cm_http.Meth.DELETE then
                   { e with ST.roles = [ "admin"; "superuser" ] }
                 else e)
               ST.cinder)
          base;
      visibility = None;
      expected = [ "AN006" ]
    };
    { name = "rbac_dangling_row";
      description =
        "a security row covers GET(backup) but the resource model defines \
         no backup resource";
      input =
        input
          ~table:
            (ST.cinder
            @ [ ST.entry ~resource:"backup" ~req:"9.9" Cm_http.Meth.GET
                  [ "admin" ]
              ])
          base;
      visibility = None;
      expected = [ "AN007" ]
    };
    { name = "rbac_unreachable";
      description =
        "the delete row grants only the unassigned 'auditor' role: the \
         authorization guard is false, so no authorized subject can ever \
         delete a volume";
      input =
        input
          ~table:
            (List.map
               (fun (e : ST.entry) ->
                 if e.meth = Cm_http.Meth.DELETE then
                   { e with ST.roles = [ "auditor" ] }
                 else e)
               ST.cinder)
          base;
      visibility = None;
      expected = [ "AN006"; "AN008" ]
    };
    { name = "footprint_blind_spot";
      description =
        "the empty-state invariant reads orphan.flag, but 'orphan' has no \
         association from the root: the observer can never bind it";
      input =
        (let resources =
           { base_resources with
             RM.resources =
               base_resources.RM.resources
               @ [ RM.normal "orphan" [ ("flag", RM.A_string) ] ]
           }
         in
         { Rules.resources;
           behavior =
             with_invariant s_no_volume
               (Ast.conj
                  [ (BM.find_state s_no_volume base |> Option.get).BM.invariant;
                    ocl "orphan.flag = orphan.flag"
                  ]);
           security = security ()
         });
      visibility = None;
      expected = [ "AN009" ]
    };
    { name = "pre_under_iterator";
      description =
        "the update effect asserts v.size = pre(v.size) under a forAll \
         binder: the binder ranges over post-state, so no pre-call \
         snapshot of v exists and the contract cannot be monitored";
      input =
        input
          (with_transitions
             (List.map (fun (tr : BM.transition) ->
                  if
                    tr.trigger.BM.meth = Cm_http.Meth.PUT
                    && String.equal tr.trigger.BM.resource "volume"
                  then
                    { tr with
                      BM.effect =
                        Some
                          (ocl
                             "project.volumes->forAll(v | v.size = \
                              pre(v.size))")
                    }
                  else tr)));
      visibility = None;
      expected = [ "AN010" ]
    };
    { name = "pre_in_guard";
      description =
        "the read guard wraps its existence check in pre(): guards are \
         evaluated on the pre-state itself, the operator is meaningless \
         and the generated precondition would silently drop it";
      input =
        input
          (with_transitions
             (List.map (fun (tr : BM.transition) ->
                  if
                    tr.trigger.BM.meth = Cm_http.Meth.GET
                    && String.equal tr.trigger.BM.resource "volume"
                  then
                    { tr with BM.guard = Some (ocl "pre(volume.id->size()) = 1") }
                  else tr)));
      visibility = None;
      expected = [ "AN011" ]
    };
    { name = "stale_read_under_caching";
      description =
        "the cross-service model's attach mutates project.volumes from \
         under /servers: with plain path-prefix cache invalidation the \
         cached volume listing goes stale, so every contract reading it \
         carries an undischarged fresh-read obligation";
      input =
        { Rules.resources = Cm_uml.Cross_model.resources;
          behavior = Cm_uml.Cross_model.behavior;
          security = security ~table:ST.cross ()
        };
      visibility =
        Some
          { Monitorability.default_visibility with
            Monitorability.cache = Monitorability.Path_prefix
          };
      expected = [ "AN012" ]
    };
    { name = "mutating_safe_method";
      description =
        "the collection listing claims count = pre(count) + 1: a GET with \
         a non-empty write effect breaks safe-method semantics (and \
         every cache the monitor maintains)";
      input =
        input
          (with_transitions
             (List.map (fun (tr : BM.transition) ->
                  if
                    tr.trigger.BM.meth = Cm_http.Meth.GET
                    && String.equal tr.trigger.BM.resource "Volumes"
                    && String.equal tr.source s_not_full
                  then
                    { tr with
                      BM.effect =
                        Some
                          (ocl
                             "project.volumes->size() = \
                              pre(project.volumes->size()) + 1")
                    }
                  else tr)));
      visibility = None;
      expected = [ "AN013" ]
    };
    { name = "auth_in_functional_guard";
      description =
        "the read guard re-checks user.groups by hand: identity belongs \
         to the generated authorization guard, functional expressions \
         reading it duplicate (and can contradict) the security table";
      input =
        input
          (with_transitions
             (List.map (fun (tr : BM.transition) ->
                  if
                    tr.trigger.BM.meth = Cm_http.Meth.GET
                    && String.equal tr.trigger.BM.resource "volume"
                  then
                    { tr with
                      BM.guard =
                        Some
                          (ocl
                             "volume.id->size() = 1 and user.groups->size() \
                              >= 1")
                    }
                  else tr)));
      visibility = None;
      expected = [ "AN014" ]
    };
    { name = "cross_tenant_interference";
      description =
        "flavors live at /v3/{flavor_id}, outside any tenant scope: the \
         PUT(flavor) contract subscribes to a non-tenant-keyed event, so \
         its verdicts couple shards";
      input =
        (let resources =
           { base_resources with
             RM.resources =
               base_resources.RM.resources
               @ [ RM.normal "flavor" [ ("id", RM.A_string) ] ];
             RM.associations =
               base_resources.RM.associations
               @ [ RM.assoc ~role:"flavors" "Projects" "flavor" ]
           }
         in
         { Rules.resources;
           behavior =
             with_transitions (fun ts ->
                 ts
                 @ [ BM.transition ~source:s_not_full ~target:s_not_full
                       ~effect:
                         (ocl
                            "project.volumes->size() = \
                             pre(project.volumes->size())")
                       ~requirements:[ "9.1" ] Cm_http.Meth.PUT "flavor"
                   ]);
           security =
             security
               ~table:
                 (ST.cinder
                 @ [ ST.entry ~resource:"flavor" ~req:"9.1" Cm_http.Meth.PUT
                       [ "admin" ]
                   ])
               ()
         });
      visibility = None;
      expected = [ "AN015" ]
    }
  ]

let an_codes findings =
  findings
  |> List.filter_map (fun (f : Lint.finding) ->
         if String.length f.rule >= 2 && String.sub f.rule 0 2 = "AN" then
           Some f.rule
         else None)
  |> List.sort_uniq String.compare

let check entry =
  let got = an_codes (Rules.analyze ?visibility:entry.visibility entry.input) in
  if got = List.sort_uniq String.compare entry.expected then Ok ()
  else
    Error
      (Printf.sprintf "%s: expected [%s], analyzer raised [%s]" entry.name
         (String.concat "; " entry.expected)
         (String.concat "; " got))

let check_all () = List.map (fun e -> (e.name, check e)) corpus
