module Lint = Cm_lint.Lint
module Ast = Cm_ocl.Ast
module BM = Cm_uml.Behavior_model
module RM = Cm_uml.Resource_model
module Footprint = Cm_ocl.Footprint

type input = Input.t = {
  resources : RM.t;
  behavior : BM.t;
  security : Cm_contracts.Generate.security option;
}

let catalogue =
  [ Lint.rule ~code:"AN001" ~title:"unsatisfiable state invariant"
      ~severity:Lint.Error
      "No observable state can satisfy the invariant: the state is \
       uninhabitable, every outgoing transition is dead and every \
       incoming postcondition is unsatisfiable.";
    Lint.rule ~code:"AN002" ~title:"dead transition" ~severity:Lint.Error
      "The source invariant and the guard are jointly unsatisfiable: \
       the transition can never fire, its disjunct in Pre(m) is noise \
       and its implication in Post(m) is vacuously true.";
    Lint.rule ~code:"AN003" ~title:"vacuous postcondition"
      ~severity:Lint.Error
      "The consequent inv(target) and effect can never evaluate to \
       false: monitoring this transition can never report a violation.";
    Lint.rule ~code:"AN004" ~title:"guard-overlap nondeterminism"
      ~severity:Lint.Error
      "Two transitions with the same trigger leave one state under \
       jointly satisfiable guards but disagree on target or effect: the \
       generated postcondition demands both outcomes at once in the \
       overlap.";
    Lint.rule ~code:"AN005" ~title:"trigger without security row"
      ~severity:Lint.Error
      "The behavior model fires a method with no security-table row; \
       generation is fail-closed, so the contract rejects every request \
       on this trigger.";
    Lint.rule ~code:"AN006" ~title:"role without usergroup"
      ~severity:Lint.Error
      "A security row grants a role that no usergroup is assigned: no \
       token can ever prove it, so the grant is unusable.";
    Lint.rule ~code:"AN007" ~title:"dangling security row"
      ~severity:Lint.Warning
      "A security row references a resource the model does not define, \
       or a (resource, method) pair no transition exercises.";
    Lint.rule ~code:"AN008" ~title:"role-unreachable transition"
      ~severity:Lint.Error
      "The transition is functionally satisfiable but becomes \
       unsatisfiable once the authorization guard is conjoined: no \
       authorized subject can ever exercise it.";
    Lint.rule ~code:"AN009" ~title:"footprint blind spot"
      ~severity:Lint.Error
      "A generated contract reads state the observer never binds (or a \
       member no resource-model path produces): the monitor would \
       evaluate over permanently undefined values.";
    Lint.rule ~code:"AN010" ~title:"unsnapshotable pre()"
      ~severity:Lint.Error
      "pre() captures an iterator binder: the binder ranges over a \
       post-state collection, so no pre-call snapshot exists and the \
       contract cannot be monitored by any observer.";
    Lint.rule ~code:"AN011" ~title:"pre() in a pre-state context"
      ~severity:Lint.Error
      "A guard or state invariant uses pre(): these expressions are \
       evaluated against the state the call arrives in, there is no \
       earlier state to refer to and generation would silently drop the \
       operator's meaning.";
    Lint.rule ~code:"AN012" ~title:"undischarged fresh-read obligation"
      ~severity:Lint.Warning
      "Under path-prefix cache invalidation a contract reads state that \
       another trigger mutates from a non-overlapping URI: the cached \
       copy goes stale and verdicts may be computed over old values. \
       Effect-driven invalidation discharges the obligation.";
    Lint.rule ~code:"AN013" ~title:"mutating safe method"
      ~severity:Lint.Error
      "A safe (read-only) HTTP method has a non-frame write effect: \
       caching and commutation arguments built on method safety are \
       unsound for this model.";
    Lint.rule ~code:"AN014" ~title:"identity read in functional expression"
      ~severity:Lint.Warning
      "An invariant, guard or effect (not the generated authorization \
       guard) reads the identity subject: the contract subscribes to \
       the cross-shard token stream beyond its auth guard.";
    Lint.rule ~code:"AN015" ~title:"cross-tenant interference"
      ~severity:Lint.Error
      "A contract subscribes to a model event whose URI carries no \
       tenant key: another tenant's traffic can change its verdict, so \
       per-tenant sharding would be unsound."
  ]

let full_catalogue = Cm_uml.Validate.catalogue @ catalogue

let err ?witness ~rule ~where msg =
  Lint.finding ?witness ~rule ~severity:Lint.Error ~where msg

let warn ~rule ~where msg =
  Lint.finding ~rule ~severity:Lint.Warning ~where msg

let guard_of (tr : BM.transition) =
  Option.value tr.guard ~default:(Ast.Bool_lit true)

let inv_of behavior name =
  match BM.find_state name behavior with
  | Some s -> s.BM.invariant
  | None -> Ast.Bool_lit true

let where_of_transition i (tr : BM.transition) =
  Fmt.str "transition #%d %s->%s on %a" i tr.source tr.target BM.pp_trigger
    tr.trigger

let where_of_row (e : Cm_rbac.Security_table.entry) =
  Fmt.str "security row %s %a %s" e.req_id Cm_http.Meth.pp e.meth e.resource

(* ---- AN001: unsatisfiable state invariants ---- *)

let unsat_invariants (input : input) =
  List.fold_left
    (fun (findings, bad) (s : BM.state) ->
      match Solver.satisfiable s.invariant with
      | Solver.Unsat ->
        ( err ~rule:"AN001" ~where:s.state_name
            "state invariant is unsatisfiable: no observable state can \
             inhabit this state"
          :: findings,
          s.state_name :: bad )
      | Solver.Sat _ | Solver.Unknown -> (findings, bad))
    ([], []) input.behavior.BM.states
  |> fun (fs, bad) -> (List.rev fs, bad)

(* ---- AN002: dead transitions ---- *)

let dead_transitions (input : input) ~bad_states =
  let findings = ref [] and dead = ref [] in
  List.iteri
    (fun i (tr : BM.transition) ->
      if not (List.mem tr.source bad_states) then begin
        let f = Ast.conj [ inv_of input.behavior tr.source; guard_of tr ] in
        match Solver.satisfiable f with
        | Solver.Unsat ->
          dead := i :: !dead;
          findings :=
            err ~rule:"AN002" ~where:(where_of_transition i tr)
              "transition can never fire: the source invariant and the \
               guard are jointly unsatisfiable"
            :: !findings
        | Solver.Sat _ | Solver.Unknown -> ()
      end
      else dead := i :: !dead)
    input.behavior.BM.transitions;
  (List.rev !findings, !dead)

(* ---- AN003: vacuous postconditions (tautological consequent) ---- *)

let vacuous_posts (input : input) =
  let findings = ref [] in
  List.iteri
    (fun i (tr : BM.transition) ->
      let consequent =
        Ast.conj
          (inv_of input.behavior tr.target
          :: (match tr.effect with Some e -> [ e ] | None -> []))
      in
      match Solver.never_false consequent with
      | Solver.Unsat ->
        findings :=
          err ~rule:"AN003" ~where:(where_of_transition i tr)
            "postcondition consequent (target invariant and effect) can \
             never evaluate to false: the transition's implication in \
             Post is vacuous"
          :: !findings
      | Solver.Sat _ | Solver.Unknown -> ())
    input.behavior.BM.transitions;
  List.rev !findings

(* ---- AN004: guard-overlap nondeterminism ---- *)

let same_outcome (a : BM.transition) (b : BM.transition) =
  String.equal a.target b.target
  &&
  match (a.effect, b.effect) with
  | None, None -> true
  | Some ea, Some eb -> Ast.equal ea eb
  | _ -> false

let guard_overlaps (input : input) ~bad_states =
  let findings = ref [] in
  let indexed =
    List.mapi (fun i tr -> (i, tr)) input.behavior.BM.transitions
  in
  let rec pairs = function
    | [] -> ()
    | (i, (a : BM.transition)) :: rest ->
      List.iter
        (fun (j, (b : BM.transition)) ->
          if
            String.equal a.source b.source
            && BM.trigger_equal a.trigger b.trigger
            && (not (same_outcome a b))
            && not (List.mem a.source bad_states)
          then begin
            let f =
              Ast.conj
                [ inv_of input.behavior a.source; guard_of a; guard_of b ]
            in
            match Solver.satisfiable f with
            | Solver.Sat env ->
              findings :=
                err ~rule:"AN004"
                  ~witness:(Solver.witness_summary env)
                  ~where:
                    (Fmt.str "transitions #%d and #%d from %s on %a" i j
                       a.source BM.pp_trigger a.trigger)
                  "guards overlap but the transitions disagree on target \
                   or effect: the generated postcondition is \
                   contradictory in the overlap"
                :: !findings
            | Solver.Unsat | Solver.Unknown -> ()
          end)
        rest;
      pairs rest
  in
  pairs indexed;
  List.rev !findings

(* ---- AN005/AN006/AN007/AN008: the RBAC coverage audit ---- *)

let rbac_audit (input : input) ~bad_states ~dead =
  match input.security with
  | None -> []
  | Some { Cm_contracts.Generate.table; assignment } ->
    let findings = ref [] in
    (* AN005: every trigger needs a row (fail-closed otherwise) *)
    List.iter
      (fun (t : BM.trigger) ->
        match
          Cm_rbac.Security_table.find ~resource:t.resource ~meth:t.meth table
        with
        | Some _ -> ()
        | None ->
          findings :=
            err ~rule:"AN005"
              ~where:(Fmt.str "trigger %a" BM.pp_trigger t)
              "no security-table row covers this trigger: the generated \
               contract is fail-closed and rejects every request"
            :: !findings)
      (BM.triggers input.behavior);
    (* AN006: every granted role must be assigned to some usergroup *)
    List.iter
      (fun (e : Cm_rbac.Security_table.entry) ->
        List.iter
          (fun role ->
            if Cm_rbac.Role_assignment.groups_of_role role assignment = []
            then
              findings :=
                err ~rule:"AN006" ~where:(where_of_row e)
                  (Printf.sprintf
                     "role %S has no usergroup assignment: no token can \
                      ever prove it"
                     role)
                :: !findings)
          e.roles)
      table;
    (* AN007: dangling rows *)
    let def_names =
      List.map
        (fun (r : RM.resource_def) -> String.lowercase_ascii r.def_name)
        input.resources.RM.resources
    in
    let exercised (e : Cm_rbac.Security_table.entry) =
      List.exists
        (fun (tr : BM.transition) ->
          Cm_http.Meth.equal tr.trigger.meth e.meth
          && String.equal
               (String.lowercase_ascii tr.trigger.resource)
               (String.lowercase_ascii e.resource))
        input.behavior.BM.transitions
    in
    List.iter
      (fun (e : Cm_rbac.Security_table.entry) ->
        if not (List.mem (String.lowercase_ascii e.resource) def_names) then
          findings :=
            warn ~rule:"AN007" ~where:(where_of_row e)
              (Printf.sprintf
                 "row references resource %S which the resource model \
                  does not define"
                 e.resource)
            :: !findings
        else if not (exercised e) then
          findings :=
            warn ~rule:"AN007" ~where:(where_of_row e)
              "no transition of the behavior model exercises this \
               (resource, method) pair"
            :: !findings)
      table;
    (* AN008: authorization makes a live transition unreachable *)
    List.iteri
      (fun i (tr : BM.transition) ->
        if (not (List.mem tr.source bad_states)) && not (List.mem i dead)
        then
          match
            Cm_rbac.Security_table.find ~resource:tr.trigger.resource
              ~meth:tr.trigger.meth table
          with
          | None -> ()
          | Some entry ->
            let auth =
              Cm_rbac.Security_table.auth_guard entry assignment
            in
            let functional =
              Ast.conj [ inv_of input.behavior tr.source; guard_of tr ]
            in
            (match Solver.satisfiable (Ast.conj [ functional; auth ]) with
             | Solver.Unsat ->
               findings :=
                 err ~rule:"AN008" ~where:(where_of_transition i tr)
                   "transition is functionally satisfiable but no \
                    authorized subject can exercise it once the \
                    authorization guard is conjoined"
                 :: !findings
             | Solver.Sat _ | Solver.Unknown -> ()))
      input.behavior.BM.transitions;
    List.rev !findings

(* ---- AN009: footprint blind spots ---- *)

let user_fields = [ "id"; "name"; "groups"; "roles"; "role" ]

let footprint_blind_spots (input : input) =
  match Cm_contracts.Generate.all ?security:input.security input.behavior with
  | Error _ -> []  (* generation problems are reported elsewhere *)
  | Ok contracts ->
    let observable =
      match Cm_uml.Paths.derive input.resources with
      | Error _ -> None  (* VAL003 covers underivable models *)
      | Ok entries ->
        (* [user] is bound from the validated token, [request] from the
           request body (observer.ml) — both observable without a path. *)
        Some
          ("user" :: "request"
          :: List.map
               (fun (e : Cm_uml.Paths.entry) ->
                 String.lowercase_ascii e.resource)
               entries)
    in
    let known_fields root =
      if String.equal root "user" then Some user_fields
      else
        List.find_opt
          (fun (r : RM.resource_def) ->
            String.equal (String.lowercase_ascii r.def_name) root)
          input.resources.RM.resources
        |> Option.map (fun (r : RM.resource_def) ->
               List.map (fun (a : RM.attribute) -> a.attr_name) r.attributes
               @ List.map
                   (fun (a : RM.association) -> a.role)
                   (RM.outgoing r.def_name input.resources))
    in
    let findings = ref [] in
    List.iter
      (fun (c : Cm_contracts.Contract.t) ->
        let where = Fmt.str "contract %a" BM.pp_trigger c.trigger in
        let fp = Footprint.of_exprs [ c.pre; c.post ] in
        List.iter
          (fun (root, fields) ->
            match observable with
            | None -> ()
            | Some roots ->
              if not (List.mem (String.lowercase_ascii root) roots) then
                findings :=
                  err ~rule:"AN009" ~where
                    (Printf.sprintf
                       "footprint reads %S which the observer never \
                        binds (not an addressable resource reachable \
                        from the root)"
                       root)
                  :: !findings
              else
                (match (fields, known_fields (String.lowercase_ascii root))
                 with
                 | Footprint.All, _ | _, None -> ()
                 | Footprint.Fields fs, Some known ->
                   List.iter
                     (fun f ->
                       if not (List.mem f known) then
                         findings :=
                           warn ~rule:"AN009" ~where
                             (Printf.sprintf
                                "footprint reads %s.%s which no \
                                 resource-model path produces"
                                root f)
                           :: !findings)
                     fs))
          fp)
      contracts;
    List.rev !findings

(* ---- the registry ---- *)

let analyze ?(include_validate = true) ?(waivers = []) ?visibility
    (input : input) =
  let validate =
    if include_validate then
      Cm_uml.Validate.all input.resources [ input.behavior ]
    else []
  in
  let an001, bad_states = unsat_invariants input in
  let an002, dead = dead_transitions input ~bad_states in
  let an003 = vacuous_posts input in
  let an004 = guard_overlaps input ~bad_states in
  let rbac = rbac_audit input ~bad_states ~dead in
  let an009 = footprint_blind_spots input in
  let monitorability = Monitorability.findings ?visibility input in
  let interference = Interference.findings input in
  Lint.apply_waivers waivers
    (validate @ an001 @ an002 @ an003 @ an004 @ rbac @ an009 @ monitorability
   @ interference)
