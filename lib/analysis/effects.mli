(** Static write-effect analysis — the dual of
    {!Cm_ocl.Footprint}.

    A transition's effect expression relates post-state to pre-state;
    the roots and fields its non-frame conjuncts constrain {e outside}
    [pre(...)] are what the trigger mutates.  Frame conjuncts
    ([e = pre(e)], or pre()-free conjuncts the solver proves are already
    implied by [inv(source) /\ guard]) document non-change and
    contribute nothing.  Unsafe methods additionally write their own
    addressed resource, so an under-specified effect still
    over-approximates.  Everything here over-approximates writes — the
    sound direction for event subscription and cache invalidation.

    The event vocabulary is the model's triggers plus one distinguished
    {e identity} pseudo-event (token revocation: [DELETE] on the token
    store), which writes the [user] binding and carries no tenant key. *)

type event = {
  ev_trigger : Cm_uml.Behavior_model.trigger;
  ev_tenant_keyed : bool;
      (** some derived URI template for the resource binds the project
          id parameter — the event is addressed to one tenant *)
  ev_identity : bool;  (** the token-revocation pseudo-event *)
  ev_writes : Cm_ocl.Footprint.t;
}

val identity_resource : string
val identity_trigger : Cm_uml.Behavior_model.trigger
val identity_writes : Cm_ocl.Footprint.t

val conjuncts : Cm_ocl.Ast.expr -> Cm_ocl.Ast.expr list
(** Top-level [and]-split, in source order. *)

val is_frame_conjunct : pre:Cm_ocl.Ast.expr -> Cm_ocl.Ast.expr -> bool
(** Is the conjunct a frame condition under the given transition
    precondition?  {!Solver.Unknown} counts as "no". *)

val post_footprint : Cm_ocl.Ast.expr -> Cm_ocl.Footprint.t
(** Footprint of the conjunct with every [pre(...)] subtree erased —
    the post-state part only. *)

val transition_writes :
  Cm_uml.Behavior_model.t -> Cm_uml.Behavior_model.transition ->
  Cm_ocl.Footprint.t

val events : Input.t -> (event list, string) result
(** One event per distinct trigger (write footprints unioned over its
    transitions), sorted by (resource, method), with the identity
    pseudo-event appended.  [Error] when the resource model's URI table
    cannot be derived. *)

val writes_of_trigger :
  event list -> Cm_uml.Behavior_model.trigger -> Cm_ocl.Footprint.t option

val footprints_interfere : Cm_ocl.Footprint.t -> Cm_ocl.Footprint.t -> bool
(** [footprints_interfere reads writes]: do they meet on some root at
    field granularity ([All] meets anything on the same root)? *)

val tenant_keyed : Cm_uml.Paths.entry list -> string -> bool

val compare_trigger :
  Cm_uml.Behavior_model.trigger -> Cm_uml.Behavior_model.trigger -> int

val event_to_json : event -> Cm_json.Json.t
val to_json : event list -> Cm_json.Json.t
