(** A small decision procedure for the quantifier-free fragment of our
    OCL: boolean structure over integer difference constraints,
    string/enum equalities and collection membership of string
    constants.

    The solver is {e three-valued sound}:

    - {!Unsat} is only reported when {e no} environment can make the
      expression evaluate to [True] under {!Cm_ocl.Eval} — every branch
      of the search closed either propositionally or by a theory
      conflict whose reasoning is valid for all total models;
    - [Sat env] is only reported after the candidate witness [env] has
      been {e replayed through the evaluator} and the original
      expression checked to yield [Value.True] — the theory's model
      construction never has the last word;
    - everything else — opaque atoms (iterators, arbitrary navigations
      used as booleans), exceeded budgets, witnesses the evaluator
      rejects — degrades to {!Unknown}, never to a wrong verdict.

    Incompleteness is by design: the analysis rules treat [Unknown] as
    "cannot tell", so a conservative solver produces fewer findings,
    never wrong ones. *)

type outcome =
  | Unsat
  | Sat of Cm_ocl.Eval.env  (** a verified witness *)
  | Unknown

val pp_outcome : Format.formatter -> outcome -> unit

val satisfiable : Cm_ocl.Ast.expr -> outcome
(** Can the expression evaluate to [True] in some environment? *)

val never_false : Cm_ocl.Ast.expr -> outcome
(** Dually: [never_false e] is [satisfiable (not e)] — {!Unsat} means
    the expression can never evaluate to [False] (it is a tautology up
    to undefinedness, i.e. monitoring it can never report a violation).
    [Sat env] carries an environment falsifying [e]. *)

val witness_summary : Cm_ocl.Eval.env -> string
(** Compact one-line rendering of a witness environment for reports. *)

(** {2 Introspection — exposed for tests} *)

val atom_budget : int
(** Maximum number of distinct atoms before the solver gives up with
    {!Unknown}. *)
