module Ast = Cm_ocl.Ast
module Footprint = Cm_ocl.Footprint
module BM = Cm_uml.Behavior_model
module RM = Cm_uml.Resource_model
module Paths = Cm_uml.Paths
module Meth = Cm_http.Meth
module J = Cm_json.Json

(* The identity service's token store is the one piece of monitored
   state that carries no tenant key: a revocation's URI names a token,
   not a project, so its effect is visible from every shard.  The
   analysis models it as one pseudo-resource written by DELETE. *)
let identity_resource = "token"
let identity_trigger = { BM.meth = Meth.DELETE; resource = identity_resource }
let identity_writes : Footprint.t = [ ("user", Footprint.All) ]

type event = {
  ev_trigger : BM.trigger;
  ev_tenant_keyed : bool;
  ev_identity : bool;
  ev_writes : Footprint.t;
}

(* ---- write footprint of one effect expression ---- *)

let conjuncts expr =
  let rec go acc = function
    | Ast.Binop (Ast.And, a, b) -> go (go acc b) a
    | e -> e :: acc
  in
  go [] expr

(* ---- frame detection ---- *)

(* A conjunct of an effect is a *frame condition* — it documents that
   nothing changed — in exactly two shapes:

   - [e = pre(e)] (either orientation): post-state value pinned to the
     pre-state value;
   - a pre()-free conjunct already implied by the transition's
     precondition [inv(source) /\ guard]: it holds of the unmodified
     state, so asserting it of the post-state constrains nothing new
     (e.g. [project.volumes->size() = 0] on a GET out of the empty
     state).  Implication is checked with the solver
     ([pre /\ not conjunct] unsatisfiable); {!Solver.Unknown} is treated
     as "not a frame", which over-approximates writes — the sound
     direction for subscriptions and cache invalidation. *)
let is_frame_conjunct ~pre conjunct =
  let pre_equality a b =
    match b with Ast.At_pre b' -> Ast.equal a b' | _ -> false
  in
  match conjunct with
  | Ast.Binop (Ast.Eq, a, b) when pre_equality a b || pre_equality b a -> true
  | c when not (Ast.has_pre c) ->
    (match Solver.satisfiable (Ast.conj [ pre; Ast.Unop (Ast.Not, c) ]) with
     | Solver.Unsat -> true
     | Solver.Sat _ | Solver.Unknown -> false)
  | _ -> false

(* [pre(e)] reads the pre-state; only what the conjunct says about the
   post-state is a write.  Erase every pre-subtree before taking the
   footprint, so [x = pre(x) + 1] writes {x} and nothing else. *)
let post_footprint conjunct =
  let rec go = function
    | Ast.At_pre _ -> Ast.Null_lit
    | Ast.Nav (e, f) -> Ast.Nav (go e, f)
    | Ast.Coll (e, op) -> Ast.Coll (go e, op)
    | Ast.Member (e, incl, x) -> Ast.Member (go e, incl, go x)
    | Ast.Count (e, x) -> Ast.Count (go e, go x)
    | Ast.Iter (e, k, v, body) -> Ast.Iter (go e, k, v, go body)
    | Ast.Unop (op, e) -> Ast.Unop (op, go e)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, go a, go b)
    | (Ast.Bool_lit _ | Ast.Int_lit _ | Ast.String_lit _ | Ast.Null_lit
      | Ast.Var _) as e ->
      e
  in
  Footprint.of_expr (go conjunct)

(* Write footprint of one transition: the non-frame conjuncts of its
   effect, plus — for unsafe methods — the addressed resource itself
   (the HTTP semantics of the method: a POST/PUT/DELETE on [r] changes
   [r]'s state even when the model's effect under-specifies it). *)
let transition_writes behavior (tr : BM.transition) =
  let inv =
    match BM.find_state tr.source behavior with
    | Some s -> s.BM.invariant
    | None -> Ast.Bool_lit true
  in
  let pre =
    Ast.conj (inv :: (match tr.guard with Some g -> [ g ] | None -> []))
  in
  let from_effect =
    match tr.effect with
    | None -> Footprint.empty
    | Some effect ->
      List.fold_left
        (fun acc c ->
          if is_frame_conjunct ~pre c then acc
          else Footprint.union acc (post_footprint c))
        Footprint.empty (conjuncts effect)
      (* The request body is per-call input, not system state: an effect
         mentioning [request.x] reads it, nothing can write it. *)
      |> List.filter (fun (root, _) -> not (String.equal root "request"))
  in
  if Meth.is_safe tr.trigger.meth then from_effect
  else
    Footprint.union from_effect
      [ (String.lowercase_ascii tr.trigger.resource, Footprint.All) ]

(* ---- per-trigger events ---- *)

(* A trigger's event keys on the tenant iff its URI path passes through
   the project item — i.e. some derived template for the resource binds
   the project id parameter.  Resources outside the derived surface
   (and the identity pseudo-event) are conservatively cross-shard. *)
let tenant_keyed entries resource =
  let param = Paths.id_param "project" in
  let wanted = String.lowercase_ascii resource in
  List.exists
    (fun (e : Paths.entry) ->
      String.equal (String.lowercase_ascii e.resource) wanted
      && List.mem param (Cm_http.Uri_template.param_names e.template))
    entries

let compare_trigger (a : BM.trigger) (b : BM.trigger) =
  let c = String.compare a.resource b.resource in
  if c <> 0 then c else Meth.compare a.meth b.meth

let events (input : Input.t) =
  match Paths.derive input.resources with
  | Error msg -> Error msg
  | Ok entries ->
    let by_trigger = Hashtbl.create 16 in
    List.iter
      (fun (tr : BM.transition) ->
        let w = transition_writes input.behavior tr in
        let acc =
          Option.value ~default:Footprint.empty
            (Hashtbl.find_opt by_trigger tr.trigger)
        in
        Hashtbl.replace by_trigger tr.trigger (Footprint.union acc w))
      input.behavior.BM.transitions;
    let model_events =
      Hashtbl.fold
        (fun trigger writes acc ->
          { ev_trigger = trigger;
            ev_tenant_keyed = tenant_keyed entries trigger.BM.resource;
            ev_identity = false;
            ev_writes = writes
          }
          :: acc)
        by_trigger []
      |> List.sort (fun a b -> compare_trigger a.ev_trigger b.ev_trigger)
    in
    let identity =
      { ev_trigger = identity_trigger;
        ev_tenant_keyed = false;
        ev_identity = true;
        ev_writes = identity_writes
      }
    in
    Ok (model_events @ [ identity ])

let writes_of_trigger evs trigger =
  List.find_opt (fun e -> BM.trigger_equal e.ev_trigger trigger) evs
  |> Option.map (fun e -> e.ev_writes)

(* Field-aware footprint intersection: a write to [root.f] interferes
   with a read of [root.g] only when [f = g] or either side is [All]. *)
let footprints_interfere (reads : Footprint.t) (writes : Footprint.t) =
  List.exists
    (fun (root, wfs) ->
      match List.assoc_opt root reads with
      | None -> false
      | Some Footprint.All -> true
      | Some (Footprint.Fields rfs) ->
        (match wfs with
         | Footprint.All -> true
         | Footprint.Fields fs -> List.exists (fun f -> List.mem f rfs) fs))
    writes

let event_to_json e =
  J.Obj
    [ ("trigger", J.String (Fmt.str "%a" BM.pp_trigger e.ev_trigger));
      ("tenant_keyed", J.Bool e.ev_tenant_keyed);
      ("identity", J.Bool e.ev_identity);
      ("writes", Footprint.to_json e.ev_writes)
    ]

let to_json evs = J.List (List.map event_to_json evs)
